// The generalized walker-transfer superstep driver (RunPartitionedWalks):
// DeepWalk / node2vec / PPR steppers must produce results that are
// deterministic across shard counts 1/2/8, bit-identical to the
// shared-memory engine driving the same stepper (PartitionedBingoStore
// samples bit-identically to BingoStore per the store.h contract), and
// chi-square-consistent with the exact edge-weight distribution. Also the
// regression coverage for the per-walker RNG stream derivation: one
// persistent ForStream(seed, id) stream per walker, so distinct walkers can
// never share a variate sequence.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/partitioned.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

constexpr VertexId kNumVertices = 256;

graph::WeightedEdgeList TestGraph(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2500, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(kNumVertices, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

void ExpectSameAsEngine(const WalkResult& engine,
                        const PartitionedWalkResult& superstep) {
  EXPECT_EQ(superstep.total_steps, engine.total_steps);
  EXPECT_EQ(superstep.finished_walkers, engine.finished_walkers);
  EXPECT_EQ(superstep.path_offsets, engine.path_offsets);
  EXPECT_EQ(superstep.paths, engine.paths);
  EXPECT_EQ(superstep.visit_counts, engine.visit_counts);
}

// ------------------------------------------ engine bit-identity, per app --

TEST(PartitionedWalksTest, DeepWalkMatchesEngineAcrossShardCounts) {
  const auto edges = TestGraph(21);
  BingoStore reference(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  WalkConfig cfg;
  cfg.walk_length = 20;
  cfg.record_paths = true;
  cfg.count_visits = true;
  const WalkResult engine = RunDeepWalk(reference, cfg, nullptr);

  util::ThreadPool pool(4);
  for (const int shards : {1, 2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    PartitionedBingoStore store(edges, kNumVertices, shards);
    const auto serial = RunPartitionedDeepWalk(store, cfg, nullptr);
    const auto parallel = RunPartitionedDeepWalk(store, cfg, &pool);
    ExpectSameAsEngine(engine, serial);
    ExpectSameAsEngine(engine, parallel);
    if (shards == 1) {
      EXPECT_EQ(serial.walker_migrations, 0u);
    }
    EXPECT_EQ(serial.walker_migrations, parallel.walker_migrations);
    EXPECT_LE(serial.supersteps, cfg.walk_length);
  }
}

TEST(PartitionedWalksTest, Node2vecMatchesEngineAcrossShardCounts) {
  const auto edges = TestGraph(22);
  BingoStore reference(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  WalkConfig cfg;
  cfg.walk_length = 16;
  cfg.num_walkers = 400;
  cfg.record_paths = true;
  Node2vecParams params;
  params.p = 0.25;
  params.q = 4.0;
  const WalkResult engine = RunNode2vec(reference, cfg, params, nullptr);
  EXPECT_GT(engine.total_steps, 0u);

  util::ThreadPool pool(4);
  for (const int shards : {1, 2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    PartitionedBingoStore store(edges, kNumVertices, shards);
    // Second-order state survives shard hops: the walker record carries
    // prev, and HasEdge(prev, ·) routes to prev's owning shard.
    ExpectSameAsEngine(engine,
                       RunPartitionedNode2vec(store, cfg, params, nullptr));
    ExpectSameAsEngine(engine,
                       RunPartitionedNode2vec(store, cfg, params, &pool));
  }
}

TEST(PartitionedWalksTest, PprMatchesEngineAcrossShardCounts) {
  const auto edges = TestGraph(23);
  BingoStore reference(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  WalkConfig cfg;
  cfg.walk_length = 40;  // cap becomes 40 * 16 on both paths
  cfg.num_walkers = 600;
  const double stop = 1.0 / 20.0;
  const WalkResult engine = RunPpr(reference, cfg, stop, nullptr);

  for (const int shards : {1, 2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    PartitionedBingoStore store(edges, kNumVertices, shards);
    const auto superstep = RunPartitionedPpr(store, cfg, stop, nullptr);
    // Terminate() draws consume the same per-walker stream positions as the
    // engine, so the geometric stopping times — and hence the visit counts —
    // are identical, not just identically distributed.
    EXPECT_EQ(superstep.total_steps, engine.total_steps);
    EXPECT_EQ(superstep.finished_walkers, engine.finished_walkers);
    EXPECT_EQ(superstep.visit_counts, engine.visit_counts);
    EXPECT_LE(superstep.walker_migrations, superstep.total_steps);
  }
}

TEST(PartitionedWalksTest, StartVertexOverrideMatchesEngine) {
  const auto edges = TestGraph(24);
  BingoStore reference(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  // Single-source PPR query on the walker-transfer path.
  VertexId hub = 0;
  for (VertexId v = 0; v < kNumVertices; ++v) {
    if (reference.Graph().Degree(v) > reference.Graph().Degree(hub)) {
      hub = v;
    }
  }
  WalkConfig cfg;
  cfg.num_walkers = 500;
  cfg.walk_length = 64;
  cfg.count_visits = true;
  cfg.start_vertex = hub;
  internal::PprStepper<BingoStore> engine_stepper{reference, 1.0 / 16.0};
  const WalkResult engine = RunWalks(reference, cfg, engine_stepper, nullptr);

  PartitionedBingoStore store(edges, kNumVertices, 4);
  internal::PprStepper<PartitionedBingoStore> stepper{store, 1.0 / 16.0};
  const auto superstep = RunPartitionedWalks(store, cfg, stepper, nullptr);
  EXPECT_EQ(superstep.total_steps, engine.total_steps);
  EXPECT_EQ(superstep.visit_counts, engine.visit_counts);
  EXPECT_GT(superstep.visit_counts[hub], 0u);
}

// ------------------------------------------------- RNG stream regression --

// The driver derives exactly one persistent stream per walker. Regression
// for the old per-step re-seeding (seed ^ (steps << 40)): no two walkers may
// ever share a variate sequence.
TEST(PartitionedWalksTest, WalkerStreamsNeverCollide) {
  constexpr uint64_t kWalkers = 4096;
  constexpr uint64_t kSeed = 42;
  std::set<std::vector<uint64_t>> prefixes;
  for (uint64_t w = 0; w < kWalkers; ++w) {
    util::Rng rng = util::Rng::ForStream(kSeed, w);
    prefixes.insert({rng.Next(), rng.Next(), rng.Next(), rng.Next()});
  }
  EXPECT_EQ(prefixes.size(), kWalkers);
}

// A walker's stream advances across supersteps instead of being re-derived:
// two consecutive hops of one walker must consume different variates. Pinned
// through the path corpus — on a graph with no 1-cycles, a frozen stream
// would walk A->B->A->B; the persistent stream makes revisits statistical,
// not structural. Cheap structural proxy: the driver's paths equal the
// engine's (already asserted above), so here just pin stream progression.
TEST(PartitionedWalksTest, WalkerStreamAdvancesAcrossSupersteps) {
  util::Rng a = util::Rng::ForStream(7, 3);
  util::Rng b = util::Rng::ForStream(7, 3);
  const uint64_t first = a.Next();
  (void)b.Next();
  EXPECT_NE(b.Next(), first);  // position 2 differs from position 1
}

// ------------------------------------------------ chi-square consistency --

// Transition frequencies out of the busiest vertex across a superstep-path
// corpus must fit the exact edge-weight distribution — the same ground truth
// the shared-memory engine's corpus fits (TransitionTest in walk_test.cc).
TEST(PartitionedWalksTest, SuperstepTransitionsMatchBiases) {
  const auto edges = TestGraph(25);
  PartitionedBingoStore store(edges, kNumVertices, 4);
  WalkConfig cfg;
  cfg.walk_length = 40;
  cfg.num_walkers = 4096;
  cfg.record_paths = true;
  const auto result = RunPartitionedDeepWalk(store, cfg, nullptr);

  VertexId hub = 0;
  std::size_t hub_degree = 0;
  for (VertexId v = 0; v < kNumVertices; ++v) {
    if (store.NeighborsOf(v).size() > hub_degree) {
      hub_degree = store.NeighborsOf(v).size();
      hub = v;
    }
  }
  std::map<VertexId, uint64_t> transitions;
  uint64_t total = 0;
  for (std::size_t w = 0; w < cfg.num_walkers; ++w) {
    for (uint64_t i = result.path_offsets[w];
         i + 1 < result.path_offsets[w + 1]; ++i) {
      if (result.paths[i] == hub) {
        ++transitions[result.paths[i + 1]];
        ++total;
      }
    }
  }
  ASSERT_GT(total, 5000u);
  const auto adj = store.NeighborsOf(hub);
  double bias_total = 0;
  for (const auto& e : adj) {
    bias_total += e.bias;
  }
  std::vector<uint64_t> counts;
  std::vector<double> expected;
  for (const auto& e : adj) {
    counts.push_back(transitions[e.dst]);
    expected.push_back(e.bias / bias_total);
  }
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected, 1e-4));
}

// -------------------------------------------------------------- edge cases --

TEST(PartitionedWalksTest, ZeroLengthWalksRecordStartsOnly) {
  const auto edges = TestGraph(26);
  BingoStore reference(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  PartitionedBingoStore store(edges, kNumVertices, 3);
  WalkConfig cfg;
  cfg.walk_length = 0;
  cfg.num_walkers = 10;
  cfg.record_paths = true;
  cfg.count_visits = true;
  const WalkResult engine = RunDeepWalk(reference, cfg, nullptr);
  const auto superstep = RunPartitionedDeepWalk(store, cfg, nullptr);
  ExpectSameAsEngine(engine, superstep);
  EXPECT_EQ(superstep.total_steps, 0u);
  EXPECT_EQ(superstep.supersteps, 0u);
  ASSERT_EQ(superstep.path_offsets.size(), 11u);
  EXPECT_EQ(superstep.path_offsets.back(), 10u);  // one start vertex each
}

TEST(PartitionedWalksTest, AccountingInvariantsHold) {
  const auto edges = TestGraph(27);
  for (const int shards : {1, 2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    PartitionedBingoStore store(edges, kNumVertices, shards);
    WalkConfig cfg;
    cfg.walk_length = 25;
    const auto result = RunPartitionedDeepWalk(store, cfg, nullptr);
    EXPECT_GT(result.total_steps, 0u);
    EXPECT_LE(result.finished_walkers, uint64_t{kNumVertices});
    EXPECT_LE(result.walker_migrations, result.total_steps);
    EXPECT_GE(result.supersteps, 1u);
    EXPECT_LE(result.supersteps, cfg.walk_length);
    if (shards == 1) {
      EXPECT_EQ(result.walker_migrations, 0u);
    }
  }
}

}  // namespace
}  // namespace bingo::walk
