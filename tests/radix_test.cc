// Tests for the radix-based bias decomposition (§4.1, §4.3 — Eq 3/4).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "src/core/radix.h"
#include "src/util/rng.h"

namespace bingo::core {
namespace {

TEST(RadixTest, IntegerBiasSplitsToItsBits) {
  const BiasParts parts = SplitBias(13.0, 1.0);  // 1101b
  EXPECT_EQ(parts.int_bits, 13u);
  EXPECT_EQ(parts.dec_fixed, 0u);
  EXPECT_EQ(NumGroupsOf(parts), 3);
  EXPECT_EQ(HighestGroupOf(parts), 3);
}

TEST(RadixTest, ZeroBiasYieldsNothing) {
  const BiasParts parts = SplitBias(0.0, 1.0);
  EXPECT_EQ(parts.int_bits, 0u);
  EXPECT_EQ(parts.dec_fixed, 0u);
  EXPECT_EQ(parts.FixedWeight(), 0u);
  EXPECT_EQ(HighestGroupOf(parts), -1);
}

TEST(RadixTest, FractionGoesToDecimalPart) {
  const BiasParts parts = SplitBias(5.25, 1.0);
  EXPECT_EQ(parts.int_bits, 5u);
  EXPECT_EQ(parts.dec_fixed, uint32_t{1} << 30);  // 0.25 * 2^32
}

TEST(RadixTest, LambdaScalesBeforeSplitting) {
  // The paper's Fig 7 example: bias 0.554 with lambda 10 -> 5.54.
  const BiasParts parts = SplitBias(0.554, 10.0);
  EXPECT_EQ(parts.int_bits, 5u);
  EXPECT_NEAR(static_cast<double>(parts.dec_fixed) / 4294967296.0, 0.54, 1e-9);
}

TEST(RadixTest, Fig7ExampleGroupAssignment) {
  // (2,1,0.554), (2,4,0.726), (2,5,0.320) with lambda = 10 give integer
  // parts 5, 7, 3: groups 2^0 = {1,4,5}, 2^1 = {4,5}, 2^2 = {1,4}.
  const BiasParts e1 = SplitBias(0.554, 10.0);
  const BiasParts e4 = SplitBias(0.726, 10.0);
  const BiasParts e5 = SplitBias(0.320, 10.0);
  EXPECT_EQ(e1.int_bits, 5u);
  EXPECT_EQ(e4.int_bits, 7u);
  EXPECT_EQ(e5.int_bits, 3u);
  // Group 2^0 membership:
  EXPECT_TRUE(e1.int_bits & 1);
  EXPECT_TRUE(e4.int_bits & 1);
  EXPECT_TRUE(e5.int_bits & 1);
  // Group 2^1: only 7 (=111b) and 3 (=11b).
  EXPECT_FALSE((e1.int_bits >> 1) & 1);
  EXPECT_TRUE((e4.int_bits >> 1) & 1);
  EXPECT_TRUE((e5.int_bits >> 1) & 1);
  // Group 2^2: 5 (=101b) and 7.
  EXPECT_TRUE((e1.int_bits >> 2) & 1);
  EXPECT_TRUE((e4.int_bits >> 2) & 1);
  EXPECT_FALSE((e5.int_bits >> 2) & 1);
}

TEST(RadixTest, FractionNearOneCarriesIntoInteger) {
  // 2^-33 below 3.0: the fixed-point rounding must carry, not produce
  // dec_fixed == 2^32.
  const double w = std::nextafter(3.0, 0.0);
  const BiasParts parts = SplitBias(w, 1.0);
  EXPECT_EQ(parts.int_bits, 3u);
  EXPECT_EQ(parts.dec_fixed, 0u);
}

TEST(RadixTest, FixedWeightIsExactSum) {
  const BiasParts parts = SplitBias(6.5, 1.0);
  EXPECT_EQ(parts.FixedWeight(), (uint64_t{6} << 32) + (uint64_t{1} << 31));
}

TEST(RadixTest, GroupWeightIsPow2TimesCount) {
  EXPECT_DOUBLE_EQ(GroupWeight(0, 5), 5.0);
  EXPECT_DOUBLE_EQ(GroupWeight(3, 2), 16.0);
  EXPECT_DOUBLE_EQ(GroupWeight(10, 0), 0.0);
}

// Property sweep: reconstruction. For random biases and lambdas, the split
// must satisfy int_bits + dec/2^32 ~= w * lambda to fixed-point precision.
TEST(RadixTest, SplitReconstructsScaledBias) {
  util::Rng rng(123);
  for (int trial = 0; trial < 20000; ++trial) {
    const double w = rng.NextUnit() * 1000.0;
    const double lambda = 1.0 + rng.NextBounded(100);
    const BiasParts parts = SplitBias(w, lambda);
    const double reconstructed = static_cast<double>(parts.int_bits) +
                                 static_cast<double>(parts.dec_fixed) / 4294967296.0;
    EXPECT_NEAR(reconstructed, w * lambda, 1e-6 * std::max(1.0, w * lambda));
    EXPECT_LT(parts.dec_fixed, uint64_t{1} << 32);
  }
}

// Property: Eq 4 — summing the group weights over all neighbors recovers the
// total integer mass: sum_k 2^k * |G_k| == sum_i int_bits_i.
TEST(RadixTest, GroupWeightsSumToTotalIntegerMass) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t counts[64] = {};
    uint64_t total = 0;
    for (int i = 0; i < 50; ++i) {
      const uint64_t bias = 1 + rng.NextBounded(1 << 20);
      total += bias;
      util::ForEachSetBit(bias, [&](int k) { ++counts[k]; });
    }
    double group_sum = 0;
    for (int k = 0; k < 64; ++k) {
      group_sum += GroupWeight(k, counts[k]);
    }
    EXPECT_DOUBLE_EQ(group_sum, static_cast<double>(total));
  }
}

}  // namespace
}  // namespace bingo::core
