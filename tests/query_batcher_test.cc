// Fused walk passes (walk/fused.h) and the QueryBatcher front-end
// (walk/query_batcher.h).
//
// The contract under test is bit-identity: a fused pass — walkers advancing
// step-synchronously with lane-batched SIMD draws and prefetch — must
// return exactly the WalkResult the scalar per-query engine returns for the
// same WalkConfig, for every application, chunking, and SIMD level. The
// batcher inherits that contract, so its futures are compared against the
// direct service path.

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/cpu_features.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/fused.h"
#include "src/walk/query_batcher.h"
#include "src/walk/service.h"
#include "src/walk/sharded_service.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

constexpr VertexId kNumVertices = 256;

graph::WeightedEdgeList TestGraph(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2500, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(kNumVertices, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

void ExpectSameResult(const WalkResult& fused, const WalkResult& engine,
                      const std::string& context) {
  EXPECT_EQ(fused.total_steps, engine.total_steps) << context;
  EXPECT_EQ(fused.finished_walkers, engine.finished_walkers) << context;
  EXPECT_EQ(fused.path_offsets, engine.path_offsets) << context;
  EXPECT_EQ(fused.paths, engine.paths) << context;
  EXPECT_EQ(fused.visit_counts, engine.visit_counts) << context;
}

// A spread of configs covering the engine's branchy corners: sub-chunk and
// multi-chunk walker counts, single-source starts, paths and visits on and
// off, and the invalid-start early return.
std::vector<WalkConfig> CoveringConfigs() {
  std::vector<WalkConfig> cfgs;
  {
    WalkConfig cfg;  // one walker per vertex, exactly one chunk
    cfg.walk_length = 20;
    cfg.record_paths = true;
    cfg.count_visits = true;
    cfgs.push_back(cfg);
  }
  {
    WalkConfig cfg;  // multi-chunk, uneven tail
    cfg.num_walkers = 700;
    cfg.walk_length = 15;
    cfg.record_paths = true;
    cfg.seed = 7;
    cfgs.push_back(cfg);
  }
  {
    WalkConfig cfg;  // single walker
    cfg.num_walkers = 1;
    cfg.walk_length = 40;
    cfg.record_paths = true;
    cfg.count_visits = true;
    cfg.seed = 9;
    cfgs.push_back(cfg);
  }
  {
    WalkConfig cfg;  // single-source (all walkers share one start vertex)
    cfg.num_walkers = 512;
    cfg.walk_length = 12;
    cfg.start_vertex = 3;
    cfg.count_visits = true;
    cfg.seed = 11;
    cfgs.push_back(cfg);
  }
  {
    WalkConfig cfg;  // out-of-range start: the empty-result early return
    cfg.num_walkers = 64;
    cfg.record_paths = true;
    cfg.start_vertex = kNumVertices + 5;
    cfgs.push_back(cfg);
  }
  return cfgs;
}

// ----------------------------------------------------- fused vs engine --

TEST(FusedWalksTest, DeepWalkBitIdenticalToEngine) {
  const auto edges = TestGraph(301);
  BingoStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  util::ThreadPool pool(4);
  for (const WalkConfig& cfg : CoveringConfigs()) {
    const WalkResult engine = RunDeepWalk(store, cfg);
    WalkResult serial;
    RunDeepWalkFused(store, std::span<const WalkConfig>(&cfg, 1),
                     std::span<WalkResult>(&serial, 1));
    ExpectSameResult(serial, engine, "serial fused");
    WalkResult pooled;
    RunDeepWalkFused(store, std::span<const WalkConfig>(&cfg, 1),
                     std::span<WalkResult>(&pooled, 1), &pool);
    ExpectSameResult(pooled, engine, "pooled fused");
  }
}

TEST(FusedWalksTest, PprBitIdenticalToEngine) {
  const auto edges = TestGraph(302);
  BingoStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  util::ThreadPool pool(4);
  for (double stop : {1.0 / 80.0, 0.25}) {
    WalkConfig cfg;
    cfg.num_walkers = 600;
    cfg.walk_length = 10;  // PPR caps to 160 internally on both paths
    cfg.start_vertex = 17;
    cfg.seed = 21;
    const WalkResult engine = RunPpr(store, cfg, stop);
    WalkResult fused;
    RunPprFused(store, std::span<const WalkConfig>(&cfg, 1),
                std::span<WalkResult>(&fused, 1), stop, &pool);
    ExpectSameResult(fused, engine, "ppr fused");
  }
}

TEST(FusedWalksTest, Node2vecBitIdenticalToEngine) {
  // Second-order stepper: the fused driver must keep it scalar per walker
  // (no batched draws) yet still match through its chunked apply path.
  const auto edges = TestGraph(303);
  BingoStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  util::ThreadPool pool(4);
  const Node2vecParams params{0.25, 4.0};
  WalkConfig cfg;
  cfg.num_walkers = 520;
  cfg.walk_length = 12;
  cfg.record_paths = true;
  cfg.seed = 31;
  const WalkResult engine = RunNode2vec(store, cfg, params);
  WalkResult fused;
  RunNode2vecFused(store, std::span<const WalkConfig>(&cfg, 1),
                   std::span<WalkResult>(&fused, 1), params, &pool);
  ExpectSameResult(fused, engine, "node2vec fused");
}

TEST(FusedWalksTest, ForcedScalarMatchesSimdAndEngine) {
  const auto edges = TestGraph(304);
  BingoStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  WalkConfig cfg;
  cfg.num_walkers = 900;
  cfg.walk_length = 25;
  cfg.record_paths = true;
  cfg.count_visits = true;
  cfg.seed = 41;
  const WalkResult engine = RunDeepWalk(store, cfg);
  WalkResult simd;
  RunDeepWalkFused(store, std::span<const WalkConfig>(&cfg, 1),
                   std::span<WalkResult>(&simd, 1));
  WalkResult scalar;
  {
    util::ScopedForceScalar force_scalar;
    RunDeepWalkFused(store, std::span<const WalkConfig>(&cfg, 1),
                     std::span<WalkResult>(&scalar, 1));
  }
  ExpectSameResult(simd, engine, "simd lanes");
  ExpectSameResult(scalar, engine, "forced scalar");
}

TEST(FusedWalksTest, MultiQueryPassMatchesPerQueryRuns) {
  const auto edges = TestGraph(305);
  BingoStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  util::ThreadPool pool(4);
  const auto cfgs_vec = CoveringConfigs();
  const std::span<const WalkConfig> cfgs(cfgs_vec);
  std::vector<WalkResult> fused(cfgs.size());
  RunDeepWalkFused(store, cfgs, std::span<WalkResult>(fused), &pool);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const WalkResult engine = RunDeepWalk(store, cfgs[i]);
    ExpectSameResult(fused[i], engine, "query " + std::to_string(i));
  }
}

TEST(FusedWalksTest, LongRecordedWalksFallBackBitIdentically) {
  // Recorded paths beyond the fused slab bound route through the scalar
  // engine; the caller must not be able to tell.
  const auto edges = TestGraph(306);
  BingoStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  WalkConfig cfg;
  cfg.num_walkers = 40;
  cfg.walk_length = 5000;
  cfg.record_paths = true;
  cfg.seed = 51;
  const WalkResult engine = RunDeepWalk(store, cfg);
  WalkResult fused;
  RunDeepWalkFused(store, std::span<const WalkConfig>(&cfg, 1),
                   std::span<WalkResult>(&fused, 1));
  ExpectSameResult(fused, engine, "long-walk fallback");
}

// ------------------------------------------------ batcher vs direct path --

WalkQuery DeepWalkQuery(WalkConfig cfg) {
  WalkQuery q;
  q.app = WalkApp::kDeepWalk;
  q.cfg = cfg;
  return q;
}

TEST(QueryBatcherTest, ResultsMatchDirectServiceQueries) {
  const auto edges = TestGraph(401);
  const auto service = MakeWalkService(edges, kNumVertices);
  util::ThreadPool pool(4);
  QueryBatcherOptions options;
  options.max_delay_seconds = 0.01;
  QueryBatcher batcher(*service, options, &pool);

  std::vector<WalkQuery> queries;
  for (const WalkConfig& cfg : CoveringConfigs()) {
    queries.push_back(DeepWalkQuery(cfg));
  }
  {
    WalkQuery q;
    q.app = WalkApp::kPpr;
    q.cfg.num_walkers = 300;
    q.cfg.walk_length = 8;
    q.cfg.start_vertex = 5;
    q.stop_probability = 0.1;
    queries.push_back(q);
  }
  {
    WalkQuery q;
    q.app = WalkApp::kNode2vec;
    q.cfg.num_walkers = 280;
    q.cfg.walk_length = 10;
    q.cfg.record_paths = true;
    q.node2vec = {0.5, 2.0};
    queries.push_back(q);
  }

  std::vector<std::future<WalkResult>> futures;
  for (const WalkQuery& q : queries) {
    futures.push_back(batcher.Submit(q));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const WalkQuery& q = queries[i];
    WalkResult direct;
    switch (q.app) {
      case WalkApp::kDeepWalk:
        direct = service->DeepWalk(q.cfg);
        break;
      case WalkApp::kPpr:
        direct = service->Ppr(q.cfg, q.stop_probability);
        break;
      case WalkApp::kNode2vec:
        direct = service->Node2vec(q.cfg, q.node2vec);
        break;
    }
    ExpectSameResult(futures[i].get(), direct, "query " + std::to_string(i));
  }
  const auto stats = batcher.Stats();
  EXPECT_EQ(stats.submitted, queries.size());
  EXPECT_EQ(stats.completed, queries.size());
  EXPECT_GE(stats.dispatches, 1u);
  EXPECT_GE(stats.fused_groups, 3u);  // at least one group per application
}

class ShardedQueryBatcherTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedQueryBatcherTest, ResultsMatchDirectShardedQueries) {
  const int shards = GetParam();
  const auto edges = TestGraph(402);
  const auto service = MakeShardedWalkService(edges, kNumVertices, shards);
  util::ThreadPool pool(4);
  QueryBatcherOptions options;
  options.max_delay_seconds = 0.01;
  ShardedQueryBatcher batcher(*service, options, &pool);

  std::vector<WalkQuery> queries;
  for (const WalkConfig& cfg : CoveringConfigs()) {
    queries.push_back(DeepWalkQuery(cfg));
  }
  {
    WalkQuery q;
    q.app = WalkApp::kPpr;
    q.cfg.num_walkers = 256;
    q.cfg.walk_length = 6;
    q.cfg.start_vertex = 9;
    queries.push_back(q);
  }
  std::vector<std::future<WalkResult>> futures;
  for (const WalkQuery& q : queries) {
    futures.push_back(batcher.Submit(q));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const WalkQuery& q = queries[i];
    const WalkResult direct = q.app == WalkApp::kPpr
                                  ? service->Ppr(q.cfg, q.stop_probability)
                                  : service->DeepWalk(q.cfg);
    ExpectSameResult(futures[i].get(), direct,
                     "shards=" + std::to_string(shards) + " query " +
                         std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedQueryBatcherTest,
                         ::testing::Values(1, 2, 8));

TEST(QueryBatcherTest, ConcurrentSubmittersAllComplete) {
  const auto edges = TestGraph(403);
  const auto service = MakeWalkService(edges, kNumVertices);
  util::ThreadPool pool(4);
  QueryBatcher batcher(*service, {}, &pool);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  std::vector<std::vector<uint64_t>> totals(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WalkConfig cfg;
        cfg.num_walkers = 64;
        cfg.walk_length = 10;
        cfg.seed = static_cast<uint64_t>(t * 1000 + i);
        totals[t].push_back(batcher.Run(DeepWalkQuery(cfg)).total_steps);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  batcher.Flush();
  const auto stats = batcher.Stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, kThreads * kPerThread);
  EXPECT_EQ(stats.queue_depth, 0u);
  // Determinism: re-running any of the queries directly reproduces the
  // total the batcher returned.
  WalkConfig probe;
  probe.num_walkers = 64;
  probe.walk_length = 10;
  probe.seed = 3 * 1000 + 7;
  EXPECT_EQ(totals[3][7], service->DeepWalk(probe).total_steps);
}

TEST(QueryBatcherTest, CoalescesBurstsIntoFewDispatches) {
  const auto edges = TestGraph(404);
  const auto service = MakeWalkService(edges, kNumVertices);
  QueryBatcherOptions options;
  options.max_batch_queries = 16;
  options.max_delay_seconds = 0.05;  // wide window so the burst coalesces
  QueryBatcher batcher(*service, options);

  std::vector<std::future<WalkResult>> futures;
  for (int i = 0; i < 16; ++i) {
    WalkConfig cfg;
    cfg.num_walkers = 32;
    cfg.walk_length = 5;
    cfg.seed = static_cast<uint64_t>(i);
    futures.push_back(batcher.Submit(DeepWalkQuery(cfg)));
  }
  for (auto& f : futures) {
    f.get();
  }
  // Futures resolve before the dispatcher re-locks to publish stats;
  // Flush() synchronizes with that publication.
  batcher.Flush();
  const auto stats = batcher.Stats();
  EXPECT_EQ(stats.completed, 16u);
  // All 16 DeepWalk queries share one group identity, so however the
  // dispatcher slices the burst, coalescing must beat one-by-one.
  EXPECT_LT(stats.dispatches, 16u);
  EXPECT_GT(stats.CoalesceRatio(), 1.0);
}

TEST(QueryBatcherTest, DestructorDrainsPendingQueries) {
  const auto edges = TestGraph(405);
  const auto service = MakeWalkService(edges, kNumVertices);
  std::vector<std::future<WalkResult>> futures;
  {
    QueryBatcherOptions options;
    options.max_batch_queries = 1000;   // never size-triggered
    options.max_delay_seconds = 30.0;   // never time-triggered in-test
    QueryBatcher batcher(*service, options);
    for (int i = 0; i < 5; ++i) {
      WalkConfig cfg;
      cfg.num_walkers = 16;
      cfg.walk_length = 4;
      cfg.seed = static_cast<uint64_t>(i);
      futures.push_back(batcher.Submit(DeepWalkQuery(cfg)));
    }
  }  // destructor must complete every future, not abandon them
  for (auto& f : futures) {
    EXPECT_GT(f.get().total_steps, 0u);
  }
}

// ----------------------------------------------------- allocation pins --

TEST(FusedWalksTest, SteadyStateFusedPassesAllocateNothing) {
  // The fused SoA buffers are ephemeral per chunk (peak demand follows how
  // many chunks overlap), so the pin is convergence: once two consecutive
  // passes take no fresh pool memory, every lease is served from free
  // lists.
  const auto edges = TestGraph(501);
  BingoStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  util::ThreadPool pool(4);
  WalkConfig cfg;
  cfg.num_walkers = 2048;
  cfg.walk_length = 20;
  cfg.record_paths = true;
  cfg.count_visits = true;
  std::vector<WalkConfig> cfgs(4, cfg);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    cfgs[i].seed = 100 + i;
  }
  std::vector<WalkResult> results(cfgs.size());
  uint64_t fresh_before = pool.ScratchMemory().Stats().FreshAllocations();
  int consecutive_clean = 0;
  for (int attempt = 0; attempt < 32 && consecutive_clean < 2; ++attempt) {
    RunDeepWalkFused(store, std::span<const WalkConfig>(cfgs),
                     std::span<WalkResult>(results), &pool);
    const uint64_t fresh_after =
        pool.ScratchMemory().Stats().FreshAllocations();
    consecutive_clean = fresh_after == fresh_before ? consecutive_clean + 1 : 0;
    fresh_before = fresh_after;
  }
  EXPECT_EQ(consecutive_clean, 2) << "fused scratch demand never converged";
  EXPECT_GT(pool.ScratchMemory().Stats().free_list_hits, 0u);
  EXPECT_EQ(pool.ScratchMemory().LiveBytes(), 0u)
      << "every fused-pass buffer must be returned to the pool";
}

}  // namespace
}  // namespace bingo::walk
