// Tests for the per-vertex Bingo sampler (§4, §5.1).
//
// The central correctness property (Theorem 4.1): at any point in any
// update sequence, the distribution the structure implies — reconstructed
// exactly from the inter-group alias table and the group member lists, with
// no sampling noise — must equal bias_i / sum(bias).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/radix.h"
#include "src/core/vertex_sampler.h"
#include "src/graph/dynamic_graph.h"
#include "src/sampling/exact.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace bingo::core {
namespace {

// Drives one vertex's sampler exactly the way BingoStore does, against a
// real DynamicGraph holding the adjacency.
class Harness {
 public:
  Harness(BingoConfig config, const std::vector<double>& biases)
      : config_(config), graph_(100000) {
    config_.conversion_stats = &stats_;
    for (double b : biases) {
      graph_.Insert(0, next_dst_++, b);
    }
    sampler_.SetConfig(&config_);
    sampler_.Build(Adj());
  }

  std::span<const graph::Edge> Adj() const { return graph_.Neighbors(0); }
  VertexSampler& Sampler() { return sampler_; }
  const ConversionStats& Stats() const { return stats_; }
  uint32_t Degree() const { return graph_.Degree(0); }

  void Insert(double bias) {
    const uint32_t idx = graph_.Insert(0, next_dst_++, bias);
    sampler_.InsertEdge(Adj(), idx);
    sampler_.FinishUpdate(Adj());
  }

  void DeleteIndex(uint32_t idx) {
    sampler_.RemoveEdge(Adj(), idx);
    const auto result = graph_.SwapRemove(0, idx);
    if (result.moved) {
      sampler_.RenameIndex(result.moved_edge.bias, result.moved_from,
                           result.moved_to);
    }
    sampler_.FinishUpdate(Adj());
  }

  // Batched removal, driven the way BingoStore::ApplyVertexBatch does it.
  void BatchDelete(std::vector<uint32_t> idxs) {
    std::sort(idxs.begin(), idxs.end());
    sampler_.RemoveEdgesBatch(Adj(), idxs);
    const auto moves = graph_.BatchSwapRemove(0, idxs);
    for (const auto& move : moves) {
      sampler_.RenameIndex(move.edge.bias, move.from, move.to);
    }
    sampler_.FinishUpdate(Adj());
  }

  double BiasAt(uint32_t idx) const { return Adj()[idx].bias; }

  // Ground truth from the adjacency through the same fixed-point
  // quantization the sampler uses.
  std::vector<double> Expected() const {
    std::vector<double> weights;
    for (const graph::Edge& e : Adj()) {
      weights.push_back(
          static_cast<double>(SplitBias(e.bias, config_.lambda).FixedWeight()));
    }
    return util::Normalize(weights);
  }

  // Asserts the exact implied distribution and the structural audit.
  void ExpectConsistent(const std::string& context) const {
    const std::string err = sampler_.CheckInvariants(Adj());
    ASSERT_TRUE(err.empty()) << context << ": " << err;
    const auto implied = sampler_.ImpliedDistribution(Adj());
    const auto expected = Expected();
    ASSERT_EQ(implied.size(), expected.size());
    for (std::size_t i = 0; i < implied.size(); ++i) {
      ASSERT_NEAR(implied[i], expected[i], 1e-9)
          << context << " at neighbor index " << i;
    }
  }

 private:
  BingoConfig config_;
  ConversionStats stats_;
  graph::DynamicGraph graph_;
  VertexSampler sampler_;
  graph::VertexId next_dst_ = 1;
};

BingoConfig GaConfig() { return BingoConfig{}; }
BingoConfig BsConfig() {
  BingoConfig config;
  config.adaptive.adaptive = false;
  return config;
}

// --------------------------------------------------- paper running example --

TEST(VertexSamplerTest, PaperRunningExampleGroups) {
  // Vertex 2 of Fig 4: edges (2,1,5), (2,4,4), (2,5,3) -> neighbor indices
  // 0, 1, 2. Groups: 2^0 = {0, 2}, 2^1 = {2}, 2^2 = {0, 1} with weights
  // 2, 2, 8 — all in BS mode so every group is regular and enumerable.
  Harness h(BsConfig(), {5.0, 4.0, 3.0});
  const VertexSampler& s = h.Sampler();
  ASSERT_NE(s.GroupAt(0), nullptr);
  EXPECT_EQ(s.GroupAt(0)->Count(), 2u);
  EXPECT_TRUE(s.GroupAt(0)->Contains(0));
  EXPECT_TRUE(s.GroupAt(0)->Contains(2));
  EXPECT_EQ(s.GroupAt(1)->Count(), 1u);
  EXPECT_TRUE(s.GroupAt(1)->Contains(2));
  EXPECT_EQ(s.GroupAt(2)->Count(), 2u);
  EXPECT_TRUE(s.GroupAt(2)->Contains(0));
  EXPECT_TRUE(s.GroupAt(2)->Contains(1));
  EXPECT_EQ(GroupWeight(0, 2) + GroupWeight(1, 1) + GroupWeight(2, 2), 12.0);
  h.ExpectConsistent("paper example");
}

TEST(VertexSamplerTest, PaperInsertionExample) {
  // Fig 5: inserting (2,3,3) splits into groups 2^0 and 2^1.
  Harness h(BsConfig(), {5.0, 4.0, 3.0});
  h.Insert(3.0);  // new neighbor index 3
  const VertexSampler& s = h.Sampler();
  EXPECT_EQ(s.GroupAt(0)->Count(), 3u);
  EXPECT_TRUE(s.GroupAt(0)->Contains(3));
  EXPECT_EQ(s.GroupAt(1)->Count(), 2u);
  EXPECT_TRUE(s.GroupAt(1)->Contains(3));
  EXPECT_EQ(s.GroupAt(2)->Count(), 2u);
  h.ExpectConsistent("after insertion");
}

TEST(VertexSamplerTest, PaperDeletionExample) {
  // Fig 6: deleting (2,1,5) (neighbor index 0) removes it from groups 2^0
  // and 2^2; the tail neighbor is swapped into index 0.
  Harness h(BsConfig(), {5.0, 4.0, 3.0, 3.0});
  h.DeleteIndex(0);
  EXPECT_EQ(h.Degree(), 3u);
  h.ExpectConsistent("after deletion");
}

// ----------------------------------------------------- exact distributions --

class DistributionParamTest
    : public ::testing::TestWithParam<std::tuple<bool, int>> {};

std::vector<double> BiasPattern(int pattern, std::size_t n, util::Rng& rng) {
  std::vector<double> biases(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case 0:  // uniform integers
        biases[i] = 1 + rng.NextBounded(255);
        break;
      case 1:  // all odd (group 2^0 is 100% dense)
        biases[i] = 1 + 2 * rng.NextBounded(128);
        break;
      case 2:  // powers of two (every group one-element-ish)
        biases[i] = std::ldexp(1.0, static_cast<int>(rng.NextBounded(16)));
        break;
      case 3:  // heavy skew
        biases[i] = i == 0 ? (1 << 20) : 1 + rng.NextBounded(3);
        break;
      case 4:  // floating point
        biases[i] = 1 + rng.NextBounded(100) + rng.NextUnit();
        break;
      case 5:  // sub-integer floats (everything decimal after lambda=1)
        biases[i] = 0.01 + rng.NextUnit();
        break;
      default:
        biases[i] = 1;
    }
  }
  return biases;
}

TEST_P(DistributionParamTest, BuildImpliesExactDistribution) {
  const auto [adaptive, pattern] = GetParam();
  util::Rng rng(1000 + pattern);
  for (const std::size_t n : {1u, 2u, 5u, 37u, 200u}) {
    BingoConfig config = adaptive ? GaConfig() : BsConfig();
    if (pattern == 5) {
      config.lambda = 64.0;  // the paper's amortization for tiny floats
    }
    Harness h(config, BiasPattern(pattern, n, rng));
    h.ExpectConsistent("build n=" + std::to_string(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributionParamTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Range(0, 6)));

// ------------------------------------------------------- streaming churn --

class ChurnParamTest
    : public ::testing::TestWithParam<std::tuple<bool, int, int>> {};

TEST_P(ChurnParamTest, RandomInsertDeleteSequencesStayExact) {
  const auto [adaptive, pattern, seed] = GetParam();
  util::Rng rng(seed * 7919 + pattern);
  BingoConfig config = adaptive ? GaConfig() : BsConfig();
  if (pattern == 5) {
    config.lambda = 64.0;
  }
  Harness h(config, BiasPattern(pattern, 20, rng));
  for (int op = 0; op < 300; ++op) {
    const bool do_insert = h.Degree() == 0 || rng.NextBool(0.5);
    if (do_insert) {
      h.Insert(BiasPattern(pattern, 1, rng)[0]);
    } else {
      h.DeleteIndex(static_cast<uint32_t>(rng.NextBounded(h.Degree())));
    }
    if (op % 10 == 0 || op > 290) {
      h.ExpectConsistent("op " + std::to_string(op));
    }
  }
  h.ExpectConsistent("final");
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChurnParamTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(0, 1, 3, 4, 5),
                                            ::testing::Range(0, 4)));

TEST(VertexSamplerTest, DeleteEverythingThenReinsert) {
  Harness h(GaConfig(), {5.0, 4.0, 3.0});
  h.DeleteIndex(0);
  h.DeleteIndex(0);
  h.DeleteIndex(0);
  EXPECT_EQ(h.Degree(), 0u);
  util::Rng rng(1);
  EXPECT_EQ(h.Sampler().SampleIndex(h.Adj(), rng), VertexSampler::kNoNeighbor);
  h.Insert(7.0);
  h.Insert(2.5);
  h.ExpectConsistent("reinserted");
}

// --------------------------------------------------------- real sampling --

class SamplingParamTest
    : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(SamplingParamTest, EmpiricalSamplesPassChiSquare) {
  const auto [adaptive, pattern] = GetParam();
  util::Rng rng(500 + pattern);
  BingoConfig config = adaptive ? GaConfig() : BsConfig();
  if (pattern == 5) {
    config.lambda = 64.0;
  }
  Harness h(config, BiasPattern(pattern, 40, rng));
  util::Rng sample_rng(9999);
  const auto counts = sampling::Histogram(h.Degree(), 300000, [&] {
    return h.Sampler().SampleIndex(h.Adj(), sample_rng);
  });
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, h.Expected()))
      << "adaptive=" << adaptive << " pattern=" << pattern;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SamplingParamTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Range(0, 6)));

// ------------------------------------------------------ group adaptation --

TEST(VertexSamplerTest, AllOddBiasesMakeGroupZeroDense) {
  util::Rng rng(3);
  std::vector<double> biases(50);
  for (auto& b : biases) {
    b = 1 + 2 * rng.NextBounded(8);  // odd, so every neighbor is in 2^0
  }
  Harness h(GaConfig(), biases);
  ASSERT_NE(h.Sampler().GroupAt(0), nullptr);
  EXPECT_EQ(h.Sampler().GroupAt(0)->Kind(), GroupKind::kDense);
  EXPECT_EQ(h.Sampler().GroupAt(0)->Count(), 50u);
  EXPECT_EQ(h.Sampler().GroupAt(0)->MemoryBytes(), 0u);  // no structure
  h.ExpectConsistent("dense");
}

TEST(VertexSamplerTest, SingleHugeBiasMakesOneElementGroup) {
  std::vector<double> biases(30, 2.0);
  biases[7] = 2.0 + 1024.0;  // bit 10 only set for neighbor 7
  Harness h(GaConfig(), biases);
  ASSERT_NE(h.Sampler().GroupAt(10), nullptr);
  EXPECT_EQ(h.Sampler().GroupAt(10)->Kind(), GroupKind::kOneElement);
  EXPECT_TRUE(h.Sampler().GroupAt(10)->Contains(7));
  h.ExpectConsistent("one-element");
}

TEST(VertexSamplerTest, SmallFractionMakesSparseGroup) {
  // 100 neighbors, 3 of them carry bit 5 -> 3% < beta.
  std::vector<double> biases(100, 2.0);
  biases[10] += 32.0;
  biases[50] += 32.0;
  biases[90] += 32.0;
  Harness h(GaConfig(), biases);
  ASSERT_NE(h.Sampler().GroupAt(5), nullptr);
  EXPECT_EQ(h.Sampler().GroupAt(5)->Kind(), GroupKind::kSparse);
  h.ExpectConsistent("sparse");
}

TEST(VertexSamplerTest, ConversionsAreRecorded) {
  // Start with a one-element group, then add members until it converts.
  std::vector<double> biases(100, 2.0);
  biases[0] += 32.0;
  Harness h(GaConfig(), biases);
  ASSERT_EQ(h.Sampler().GroupAt(5)->Kind(), GroupKind::kOneElement);
  h.Insert(32.0);
  h.Insert(32.0 + 2.0);
  EXPECT_EQ(h.Sampler().GroupAt(5)->Kind(), GroupKind::kSparse);
  EXPECT_GT(h.Stats().Get(GroupKind::kOneElement, GroupKind::kSparse) +
                h.Stats().Get(GroupKind::kRegular, GroupKind::kSparse),
            0u);
  h.ExpectConsistent("converted");
}

TEST(VertexSamplerTest, BsModeKeepsEverythingRegular) {
  util::Rng rng(4);
  Harness h(BsConfig(), BiasPattern(0, 60, rng));
  for (int k = 0; k < 12; ++k) {
    const RadixGroup* g = h.Sampler().GroupAt(k);
    if (g != nullptr && g->Count() > 0) {
      EXPECT_EQ(g->Kind(), GroupKind::kRegular) << "group " << k;
    }
  }
}

// GA and BS must imply the same distribution for identical input.
TEST(VertexSamplerTest, GaAndBsAgreeExactly) {
  util::Rng rng(5);
  const auto biases = BiasPattern(0, 80, rng);
  Harness ga(GaConfig(), biases);
  Harness bs(BsConfig(), biases);
  const auto pga = ga.Sampler().ImpliedDistribution(ga.Adj());
  const auto pbs = bs.Sampler().ImpliedDistribution(bs.Adj());
  ASSERT_EQ(pga.size(), pbs.size());
  for (std::size_t i = 0; i < pga.size(); ++i) {
    EXPECT_NEAR(pga[i], pbs[i], 1e-9);
  }
}

// GA memory must be below BS memory on skewed bias sets (Fig 11 property).
TEST(VertexSamplerTest, GaUsesLessMemoryThanBs) {
  util::Rng rng(6);
  std::vector<double> biases(400);
  for (auto& b : biases) {
    b = 1 + 2 * rng.NextBounded(127);  // odd biases: 2^0 fully dense
  }
  Harness ga(GaConfig(), biases);
  Harness bs(BsConfig(), biases);
  EXPECT_LT(ga.Sampler().MemoryBreakdown().Total(),
            bs.Sampler().MemoryBreakdown().Total());
}

// ------------------------------------------------------- batched removal --

TEST(VertexSamplerTest, BatchRemovalLeavesExactDistribution) {
  util::Rng rng(7);
  for (const bool adaptive : {true, false}) {
    const auto biases = BiasPattern(0, 60, rng);
    Harness h(adaptive ? GaConfig() : BsConfig(), biases);
    // Mix of front, middle, and tail victims (exercises both phases of the
    // two-phase delete-and-swap).
    h.BatchDelete({3, 10, 11, 50, 58, 59});
    EXPECT_EQ(h.Degree(), 54u);
    h.ExpectConsistent(adaptive ? "GA batch" : "BS batch");
  }
}

TEST(VertexSamplerTest, BatchRemovalMatchesStreamingSurvivors) {
  util::Rng rng(8);
  const auto biases = BiasPattern(3, 40, rng);
  Harness batched(GaConfig(), biases);
  Harness streaming(GaConfig(), biases);
  const std::vector<uint32_t> victims = {0, 1, 5, 20, 38, 39};
  batched.BatchDelete(victims);
  // Streaming removals of the same *edges* (delete from the highest index
  // down so earlier removals do not rename later victims).
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
    streaming.DeleteIndex(*it);
  }
  ASSERT_EQ(batched.Degree(), streaming.Degree());
  // The surviving bias multisets must agree (adjacency order may differ).
  std::vector<double> a, b;
  for (uint32_t i = 0; i < batched.Degree(); ++i) {
    a.push_back(batched.BiasAt(i));
    b.push_back(streaming.BiasAt(i));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  batched.ExpectConsistent("batched side");
  streaming.ExpectConsistent("streaming side");
}

class BatchChurnParamTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchChurnParamTest, RandomBatchDeletionsStayExact) {
  util::Rng rng(GetParam() * 31 + 11);
  Harness h(GaConfig(), BiasPattern(0, 120, rng));
  while (h.Degree() > 4) {
    std::vector<uint32_t> victims;
    for (uint32_t i = 0; i < h.Degree(); ++i) {
      if (rng.NextBool(0.3)) {
        victims.push_back(i);
      }
    }
    if (victims.empty()) {
      victims.push_back(static_cast<uint32_t>(rng.NextBounded(h.Degree())));
    }
    h.BatchDelete(victims);
    h.ExpectConsistent("degree " + std::to_string(h.Degree()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchChurnParamTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace bingo::core
