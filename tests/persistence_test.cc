// Crash-recovery tests for the WAL-backed checkpointing of WalkService and
// ShardedWalkService (the PR acceptance criteria):
//
//   * A service that is checkpointed, "crashed" (destroyed), and Recovered
//     mid-update-stream walks bit-identically — DeepWalk, node2vec, and
//     PPR — to an uninterrupted reference store, at shard counts 1/2/8,
//     and keeps doing so under further updates.
//   * An incremental checkpoint after a small delta writes O(delta) bytes
//     (asserted against the base size), not O(E).
//   * A WAL segment truncated mid-record recovers exactly the prefix of
//     complete records.
//
// The reference store mirrors the service's canonicalization points
// (AttachWal / compaction rebuild the replicas from the canonical edge
// list; see walk/service.h), which is precisely the contract that makes
// recovery deterministic: live state == bulk-load(base) + replay(WAL).
//
// BINGO_PERSIST_ROUNDS scales the long compaction/recovery loop (nightly
// profile via `ctest -L persistence`).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/core/snapshot.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/rng.h"
#include "src/walk/apps.h"
#include "src/walk/batcher.h"
#include "src/walk/sharded_service.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

int PersistRounds() {
  const char* env = std::getenv("BINGO_PERSIST_ROUNDS");
  const int rounds = env == nullptr ? 0 : std::atoi(env);
  return rounds > 0 ? rounds : 6;
}

std::string FreshDir(const std::string& name) {
  // Per-process uniqueness: ctest runs this binary twice concurrently (the
  // short profile and the BINGO_PERSIST_ROUNDS-scaled persistence_long).
  const std::string dir = ::testing::TempDir() + "/bingo_persist_" +
                          std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct TestGraph {
  VertexId num_vertices = 0;
  graph::WeightedEdgeList edges;
};

TestGraph MakeGraph(uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  const int scale = 7;
  const VertexId n = VertexId{1} << scale;
  auto pairs = graph::GenerateRmat(scale, n * 6, rng);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return {n, graph::ToWeightedEdges(csr, biases)};
}

graph::UpdateList RandomBatch(util::Rng& rng, VertexId n, std::size_t count) {
  graph::UpdateList updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(n));
    const auto dst = static_cast<VertexId>(rng.NextBounded(n));
    if (rng.NextBool(1.0 / 3.0)) {
      updates.push_back({graph::Update::Kind::kDelete, src, dst, 0.0});
    } else {
      updates.push_back(
          {graph::Update::Kind::kInsert, src, dst, 1.0 + rng.NextUnit() * 7.0});
    }
  }
  return updates;
}

// Mirrors the service's canonicalization point on the plain reference
// store: rebuild from the canonical edge list (per-vertex timestamp order).
void Canonicalize(std::unique_ptr<BingoStore>& store) {
  const VertexId n = store->NumVertices();
  const graph::WeightedEdgeList edges = core::CanonicalEdgeList(store->Graph());
  store = std::make_unique<BingoStore>(graph::DynamicGraph::FromEdges(n, edges),
                                       store->Config());
}

// DeepWalk + node2vec + PPR on the service snapshot vs the reference store;
// paths and visit counts must match bit for bit.
void ExpectBitIdenticalWalks(const ShardedWalkService& service,
                             const BingoStore& reference, uint64_t seed,
                             int round) {
  SCOPED_TRACE("walk seed=" + std::to_string(seed) +
               " round=" + std::to_string(round));
  WalkConfig cfg;
  cfg.num_walkers = 48;
  cfg.walk_length = 10;
  cfg.seed = seed ^ (static_cast<uint64_t>(round) << 24);
  cfg.record_paths = true;

  const auto snap = service.Acquire();
  ASSERT_TRUE(snap.Consistent());

  const WalkResult dw_s = RunDeepWalk(snap, cfg);
  const WalkResult dw_r = RunDeepWalk(reference, cfg);
  ASSERT_EQ(dw_s.total_steps, dw_r.total_steps);
  ASSERT_EQ(dw_s.paths, dw_r.paths);

  const WalkResult n2v_s = RunNode2vec(snap, cfg, {});
  const WalkResult n2v_r = RunNode2vec(reference, cfg, {});
  ASSERT_EQ(n2v_s.paths, n2v_r.paths);

  WalkConfig ppr_cfg = cfg;
  ppr_cfg.record_paths = false;
  const WalkResult ppr_s = RunPpr(snap, ppr_cfg, 1.0 / 20.0);
  const WalkResult ppr_r = RunPpr(reference, ppr_cfg, 1.0 / 20.0);
  ASSERT_EQ(ppr_s.visit_counts, ppr_r.visit_counts);
  ASSERT_EQ(ppr_s.finished_walkers, ppr_r.finished_walkers);
}

// The acceptance scenario: checkpoint, crash, recover mid-update-stream;
// walks stay bit-identical to an uninterrupted reference at 1/2/8 shards.
void RunCheckpointCrashRecover(int num_shards, uint64_t seed) {
  SCOPED_TRACE("shards=" + std::to_string(num_shards) +
               " seed=" + std::to_string(seed));
  const TestGraph g = MakeGraph(seed);
  const std::string dir =
      FreshDir("ccr_" + std::to_string(num_shards) + "_" + std::to_string(seed));

  auto service = MakeShardedWalkService(g.edges, g.num_vertices, num_shards);
  auto reference = std::make_unique<BingoStore>(
      graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));
  util::Rng rng(seed ^ 0xfeedULL);

  // Pre-durability churn, then attach: the service canonicalizes its
  // replicas when it writes the base; mirror that on the reference.
  for (int round = 0; round < 2; ++round) {
    const auto batch = RandomBatch(rng, g.num_vertices, 120);
    service->ApplyBatch(batch);
    reference->ApplyBatch(batch);
  }
  const CheckpointResult base = service->AttachWal(dir);
  ASSERT_TRUE(base.ok);
  ASSERT_TRUE(base.compacted);
  ASSERT_GT(base.bytes_written, 0u);
  Canonicalize(reference);
  ExpectBitIdenticalWalks(*service, *reference, seed, 100);

  // Journaled updates + an incremental checkpoint mid-stream.
  for (int round = 0; round < 3; ++round) {
    const auto batch = RandomBatch(rng, g.num_vertices, 90);
    service->ApplyBatch(batch);
    reference->ApplyBatch(batch);
  }
  const CheckpointResult inc = service->Checkpoint();
  ASSERT_TRUE(inc.ok);
  ASSERT_FALSE(inc.compacted);

  // More journaled updates that are never explicitly checkpointed, then
  // "crash": destroy the service. The WAL already holds the records.
  for (int round = 0; round < 2; ++round) {
    const auto batch = RandomBatch(rng, g.num_vertices, 70);
    service->ApplyBatch(batch);
    reference->ApplyBatch(batch);
  }
  service.reset();

  RecoveryReport report;
  auto recovered = RecoverShardedWalkService(dir, {}, 0, nullptr, nullptr, {},
                                             &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.num_vertices, g.num_vertices);
  EXPECT_EQ(report.wal_updates_replayed, 3u * 90u + 2u * 70u)
      << "3 batches of 90 + 2 batches of 70 were journaled";
  EXPECT_TRUE(recovered->CheckInvariants().empty())
      << recovered->CheckInvariants();
  ExpectBitIdenticalWalks(*recovered, *reference, seed, 200);

  // The recovered service journals and serves like the crashed one would
  // have: further updates stay bit-identical.
  for (int round = 0; round < 2; ++round) {
    const auto batch = RandomBatch(rng, g.num_vertices, 80);
    recovered->ApplyBatch(batch);
    reference->ApplyBatch(batch);
    ExpectBitIdenticalWalks(*recovered, *reference, seed, 300 + round);
  }
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, CheckpointCrashRecoverOneShard) {
  RunCheckpointCrashRecover(1, 11);
}

TEST(PersistenceTest, CheckpointCrashRecoverTwoShards) {
  RunCheckpointCrashRecover(2, 22);
}

TEST(PersistenceTest, CheckpointCrashRecoverEightShards) {
  RunCheckpointCrashRecover(8, 33);
}

// Temporal churn: inserts stamped with the batch's logical epoch, plus the
// usual deletes. Mirrors what a live temporal feed submits between ticks.
graph::UpdateList TemporalBatch(util::Rng& rng, VertexId n, std::size_t count,
                                uint32_t epoch) {
  graph::UpdateList updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(n));
    const auto dst = static_cast<VertexId>(rng.NextBounded(n));
    if (rng.NextBool(1.0 / 3.0)) {
      updates.push_back({graph::Update::Kind::kDelete, src, dst, 0.0});
    } else {
      updates.push_back({graph::Update::Kind::kInsert, src, dst,
                         1.0 + rng.NextUnit() * 7.0, epoch});
    }
  }
  return updates;
}

// The temporal acceptance scenario: a decaying service is checkpointed,
// crashes with an AdvanceTime tick (and churn) journaled but never
// checkpointed, and recovers bit-identically at 1/2/8 shards. The tick is
// an ordinary WAL record, so replay rescales exactly like the live apply
// did; the snapshot header's logical epoch seeds the clock so the replayed
// ages — and every decay^k multiply — line up with the reference.
void RunTemporalCrashRecover(int num_shards, uint64_t seed) {
  SCOPED_TRACE("temporal shards=" + std::to_string(num_shards) +
               " seed=" + std::to_string(seed));
  TestGraph g = MakeGraph(seed);
  for (graph::WeightedEdge& e : g.edges) {
    e.timestamp = static_cast<uint32_t>((e.src + e.dst) % 3);
  }
  core::BingoConfig config;
  config.pipeline.decay = 0.85;
  const std::string dir = FreshDir("temporal_" + std::to_string(num_shards));

  auto service =
      MakeShardedWalkService(g.edges, g.num_vertices, num_shards, config);
  auto reference = std::make_unique<BingoStore>(
      graph::DynamicGraph::FromEdges(g.num_vertices, g.edges), config);
  util::Rng rng(seed ^ 0x7e3aULL);
  uint32_t epoch = 3;  // timestamps run 0..2; first tick ages them 1..3

  // Pre-durability: churn plus a tick, so the base snapshot is written at a
  // nonzero logical epoch (the header must carry it through recovery).
  {
    const auto batch = TemporalBatch(rng, g.num_vertices, 120, 0);
    service->ApplyBatch(batch);
    reference->ApplyBatch(batch);
  }
  service->AdvanceTime(epoch);
  reference->ApplyBatch({graph::MakeAdvanceTime(epoch)});
  ASSERT_TRUE(service->AttachWal(dir).ok);
  Canonicalize(reference);
  ExpectBitIdenticalWalks(*service, *reference, seed, 900);

  // Journaled but never checkpointed: churn, a tick (the re-bucketing
  // batch), more churn. Then crash.
  {
    const auto batch = TemporalBatch(rng, g.num_vertices, 90, epoch);
    service->ApplyBatch(batch);
    reference->ApplyBatch(batch);
  }
  ++epoch;
  service->AdvanceTime(epoch);
  reference->ApplyBatch({graph::MakeAdvanceTime(epoch)});
  {
    const auto batch = TemporalBatch(rng, g.num_vertices, 70, epoch);
    service->ApplyBatch(batch);
    reference->ApplyBatch(batch);
  }
  service.reset();

  // Recovery needs the matching pipeline config: the fingerprint covers
  // decay/horizon/gate, so a mismatched pipeline must refuse to load.
  core::BingoConfig mismatched = config;
  mismatched.pipeline.decay = 0.5;
  EXPECT_EQ(RecoverShardedWalkService(dir, mismatched), nullptr);

  RecoveryReport report;
  auto recovered = RecoverShardedWalkService(dir, config, 0, nullptr, nullptr,
                                             {}, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(report.ok);
  // Churn updates plus the broadcast tick (journaled once per shard).
  EXPECT_EQ(report.wal_updates_replayed,
            90u + 70u + static_cast<uint64_t>(num_shards));
  EXPECT_TRUE(recovered->CheckInvariants().empty())
      << recovered->CheckInvariants();
  ExpectBitIdenticalWalks(*recovered, *reference, seed, 901);

  // The decisive check for the recovered clock: another tick must rescale
  // from the REPLAYED epoch. A service that lost the epoch would compute
  // wrong age deltas here and diverge from the reference.
  ++epoch;
  recovered->AdvanceTime(epoch);
  reference->ApplyBatch({graph::MakeAdvanceTime(epoch)});
  {
    const auto batch = TemporalBatch(rng, g.num_vertices, 80, epoch);
    recovered->ApplyBatch(batch);
    reference->ApplyBatch(batch);
  }
  ExpectBitIdenticalWalks(*recovered, *reference, seed, 902);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, TemporalCrashRecoverOneShard) {
  RunTemporalCrashRecover(1, 311);
}

TEST(PersistenceTest, TemporalCrashRecoverTwoShards) {
  RunTemporalCrashRecover(2, 322);
}

TEST(PersistenceTest, TemporalCrashRecoverEightShards) {
  RunTemporalCrashRecover(8, 333);
}

TEST(PersistenceTest, IncrementalCheckpointWritesDeltaNotBase) {
  const TestGraph g = MakeGraph(44);
  const std::string dir = FreshDir("odelta");
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, 4);

  const CheckpointResult base = service->AttachWal(dir);
  ASSERT_TRUE(base.ok);
  // O(E) base: at least one packed 20-byte v3 record per edge (the
  // in-memory struct is padded wider, so sizeof() is not the disk bound).
  ASSERT_GT(base.bytes_written, g.edges.size() * 20u);

  // A small delta: ~20 updates against ~768 edges.
  util::Rng rng(4444);
  const auto batch = RandomBatch(rng, g.num_vertices, 20);
  service->ApplyBatch(batch);
  const CheckpointResult inc = service->Checkpoint();
  ASSERT_TRUE(inc.ok);
  EXPECT_FALSE(inc.compacted);
  EXPECT_GT(inc.bytes_written, 0u);
  // O(delta), not O(E): framing + ~17 bytes per update, far below the base.
  EXPECT_LT(inc.bytes_written, base.bytes_written / 8);
  EXPECT_LT(inc.bytes_written, 2048u);

  // A checkpoint with nothing new journaled writes (almost) nothing.
  const CheckpointResult idle = service->Checkpoint();
  ASSERT_TRUE(idle.ok);
  EXPECT_EQ(idle.bytes_written, 0u);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, CompactionRewritesBaseAndStaysBitIdentical) {
  const TestGraph g = MakeGraph(55);
  const std::string dir = FreshDir("compact");
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, 2);
  auto reference = std::make_unique<BingoStore>(
      graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));

  WalPersistenceOptions options;
  options.compact_fraction = 0.05;  // compact after a ~5% delta
  ASSERT_TRUE(service->AttachWal(dir, options).ok);
  Canonicalize(reference);

  util::Rng rng(5555);
  for (int round = 0; round < 3; ++round) {
    const auto batch = RandomBatch(rng, g.num_vertices, 100);
    service->ApplyBatch(batch);
    reference->ApplyBatch(batch);
  }
  const CheckpointResult compact = service->Checkpoint();
  ASSERT_TRUE(compact.ok);
  EXPECT_TRUE(compact.compacted);
  // Compaction canonicalizes the live replicas; mirror on the reference.
  Canonicalize(reference);
  ExpectBitIdenticalWalks(*service, *reference, 55, 400);

  // Post-compaction updates land in the fresh WAL segment; crash + recover
  // must replay only those.
  RecoveryReport report;
  const auto batch = RandomBatch(rng, g.num_vertices, 60);
  service->ApplyBatch(batch);
  reference->ApplyBatch(batch);
  service.reset();
  auto recovered = RecoverShardedWalkService(dir, {}, 0, nullptr, nullptr,
                                             options, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.wal_updates_replayed, 60u);
  ExpectBitIdenticalWalks(*recovered, *reference, 55, 401);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, TruncatedWalReplaysExactPrefixOfRecords) {
  const TestGraph g = MakeGraph(66);
  const std::string dir = FreshDir("torn");
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, 1);
  auto reference = std::make_unique<BingoStore>(
      graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));

  ASSERT_TRUE(service->AttachWal(dir).ok);
  Canonicalize(reference);

  util::Rng rng(6666);
  std::vector<graph::UpdateList> batches;
  for (int round = 0; round < 5; ++round) {
    batches.push_back(RandomBatch(rng, g.num_vertices, 50));
    service->ApplyBatch(batches.back());
  }
  service.reset();  // crash

  // Tear the tail of the (single) shard's WAL mid-record: the last batch's
  // record loses its final bytes, as if the crash hit during the append.
  const std::string wal_path = ShardWalDir(dir, 0) + "/wal.log";
  const auto full = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, full - 7);

  RecoveryReport report;
  auto recovered =
      RecoverShardedWalkService(dir, {}, 0, nullptr, nullptr, {}, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(report.wal_tail_truncated);
  EXPECT_EQ(report.wal_records_replayed, 4u);
  EXPECT_EQ(report.wal_updates_replayed, 200u);

  // Reference fed exactly the surviving prefix walks identically.
  for (int round = 0; round < 4; ++round) {
    reference->ApplyBatch(batches[round]);
  }
  ExpectBitIdenticalWalks(*recovered, *reference, 66, 500);

  // And the torn tail was dropped for good: new updates append cleanly.
  const auto fresh = RandomBatch(rng, g.num_vertices, 40);
  recovered->ApplyBatch(fresh);
  reference->ApplyBatch(fresh);
  ExpectBitIdenticalWalks(*recovered, *reference, 66, 501);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, RecoveryRejectsConfigMismatchAndMissingDir) {
  const TestGraph g = MakeGraph(77);
  const std::string dir = FreshDir("cfg");
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, 2);
  ASSERT_TRUE(service->AttachWal(dir).ok);
  service.reset();

  core::BingoConfig other;
  other.lambda = 2.0;  // different factorization => different structures
  EXPECT_EQ(RecoverShardedWalkService(dir, other), nullptr);
  EXPECT_NE(RecoverShardedWalkService(dir), nullptr);
  EXPECT_EQ(RecoverShardedWalkService(FreshDir("nonexistent")), nullptr);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, CrashBetweenCompactionRenamesRecovers) {
  // Simulate the narrow compaction window: the new base landed (rename 1)
  // but the old WAL segment survived (crash before rename 2). Replay must
  // skip every old record — the base already covers them.
  const TestGraph g = MakeGraph(88);
  const std::string dir = FreshDir("midcompact");
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, 1);
  auto reference = std::make_unique<BingoStore>(
      graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));
  WalPersistenceOptions force;
  force.compact_fraction = 0.0;  // any delta compacts
  ASSERT_TRUE(service->AttachWal(dir, force).ok);
  Canonicalize(reference);

  util::Rng rng(8888);
  const auto batch1 = RandomBatch(rng, g.num_vertices, 60);
  service->ApplyBatch(batch1);
  reference->ApplyBatch(batch1);

  // Stash the pre-compaction segment (one record, seq 1).
  const std::string wal_path = ShardWalDir(dir, 0) + "/wal.log";
  const std::string stash = wal_path + ".stash";
  std::filesystem::copy_file(wal_path, stash);

  const auto batch2 = RandomBatch(rng, g.num_vertices, 60);
  service->ApplyBatch(batch2);
  reference->ApplyBatch(batch2);
  const CheckpointResult compacted = service->Checkpoint();
  ASSERT_TRUE(compacted.ok);
  ASSERT_TRUE(compacted.compacted);
  Canonicalize(reference);
  service.reset();

  // Put the stale segment back: its last seq (1) < the base's wal_seq (2).
  std::filesystem::rename(stash, wal_path);

  RecoveryReport report;
  auto recovered =
      RecoverShardedWalkService(dir, {}, 0, nullptr, nullptr, {}, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.wal_records_replayed, 0u);
  ExpectBitIdenticalWalks(*recovered, *reference, 88, 600);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, ReattachOverOldWalDirSurvivesCrashBeforeWalReset) {
  // Regression: re-attaching into a directory that already holds journaled
  // records used to stamp the new base with wal_seq=0; a crash between the
  // base rename and the WAL reset then made recovery double-apply every
  // stale record. The base must be stamped past the old segment's last seq.
  const TestGraph g = MakeGraph(111);
  const std::string dir = FreshDir("reattach");
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, 1);
  auto reference = std::make_unique<BingoStore>(
      graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));
  ASSERT_TRUE(service->AttachWal(dir).ok);
  Canonicalize(reference);

  util::Rng rng(1111);
  for (int round = 0; round < 3; ++round) {
    const auto batch = RandomBatch(rng, g.num_vertices, 50);
    service->ApplyBatch(batch);
    reference->ApplyBatch(batch);
  }
  // Stash the populated segment (records seq 1..3), then re-attach: the
  // fresh base subsumes those records and must be stamped past them.
  const std::string wal_path = ShardWalDir(dir, 0) + "/wal.log";
  const std::string stash = wal_path + ".stash";
  std::filesystem::copy_file(wal_path, stash);
  ASSERT_TRUE(service->AttachWal(dir).ok);
  Canonicalize(reference);
  service.reset();

  // Crash window: the old segment survived the re-attach's WAL reset.
  std::filesystem::rename(stash, wal_path);
  RecoveryReport report;
  auto recovered =
      RecoverShardedWalkService(dir, {}, 0, nullptr, nullptr, {}, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.wal_records_replayed, 0u)
      << "stale pre-re-attach records must not be re-applied";
  ExpectBitIdenticalWalks(*recovered, *reference, 111, 800);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, BatcherSubmitsSurviveCrashAfterFlush) {
  const TestGraph g = MakeGraph(99);
  const std::string dir = FreshDir("batcher");
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, 4);
  auto reference = std::make_unique<BingoStore>(
      graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));
  ASSERT_TRUE(service->AttachWal(dir).ok);
  Canonicalize(reference);

  // Single-edge submits, coalesced per shard, journaled before apply.
  BatcherOptions options;
  options.max_batch_updates = 1 << 20;
  options.auto_flush = false;
  options.sync_wal_on_flush = true;
  util::Rng rng(9999);
  graph::UpdateList all;
  {
    UpdateBatcher batcher(*service, options);
    for (int round = 0; round < 3; ++round) {
      const auto batch = RandomBatch(rng, g.num_vertices, 64);
      for (const graph::Update& u : batch) {
        batcher.Submit(u);
      }
      batcher.Flush();  // applied + journaled + fsync'd past this point
      all.insert(all.end(), batch.begin(), batch.end());
    }
  }
  service.reset();  // crash after the last durable flush

  RecoveryReport report;
  auto recovered =
      RecoverShardedWalkService(dir, {}, 0, nullptr, nullptr, {}, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.wal_updates_replayed, all.size());

  // The reference applies the same updates with the batcher's coalescing:
  // per-shard, in submit order, one batch per Flush round. With a plain
  // store that is equivalent to applying each round's slice per shard.
  const int num_shards = 4;
  std::size_t offset = 0;
  for (int round = 0; round < 3; ++round) {
    graph::UpdateList window(all.begin() + offset, all.begin() + offset + 64);
    offset += 64;
    for (int s = 0; s < num_shards; ++s) {
      graph::UpdateList slice;
      for (const graph::Update& u : window) {
        if (static_cast<int>(u.src % num_shards) == s) {
          slice.push_back(u);
        }
      }
      if (!slice.empty()) {
        reference->ApplyBatch(slice);
      }
    }
  }
  ExpectBitIdenticalWalks(*recovered, *reference, 99, 700);
  std::filesystem::remove_all(dir);
}

// Queries must keep serving — and stay consistent — while AttachWal and a
// compacting Checkpoint rebuild the replicas (the canonicalization path
// follows the same drain/publish protocol as ApplyBatch). Run under TSan in
// CI alongside the other protocol stress tests.
TEST(PersistenceTest, QueriesServeThroughCheckpointCanonicalization) {
  const TestGraph g = MakeGraph(222);
  const std::string dir = FreshDir("concurrent");
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, 4);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inconsistent{0};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      uint64_t iteration = 0;
      while (!stop.load(std::memory_order_acquire) || iteration == 0) {
        WalkConfig cfg;
        cfg.num_walkers = 64;
        cfg.walk_length = 8;
        cfg.seed = 222 + static_cast<uint64_t>(t) * 0x9e3779b9ULL + iteration;
        const auto snap = service->Acquire();
        RunDeepWalk(snap, cfg);
        if (!snap.Consistent()) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
        ++iteration;
      }
    });
  }

  WalPersistenceOptions options;
  options.compact_fraction = 0.0;  // every checkpoint compacts (rebuilds)
  ASSERT_TRUE(service->AttachWal(dir, options).ok);
  util::Rng rng(2222);
  for (int round = 0; round < 5; ++round) {
    service->ApplyBatch(RandomBatch(rng, g.num_vertices, 80));
    const CheckpointResult ckpt = service->Checkpoint();
    ASSERT_TRUE(ckpt.ok);
    ASSERT_TRUE(ckpt.compacted);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GT(queries.load(), 0u);
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
  std::filesystem::remove_all(dir);
}

// The long compaction/recovery loop (nightly: BINGO_PERSIST_ROUNDS high).
TEST(PersistenceTest, CompactionRecoveryLoop) {
  const TestGraph g = MakeGraph(123);
  const std::string dir = FreshDir("loop");
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, 4);
  auto reference = std::make_unique<BingoStore>(
      graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));

  WalPersistenceOptions options;
  options.compact_fraction = 0.25;
  ASSERT_TRUE(service->AttachWal(dir, options).ok);
  Canonicalize(reference);

  util::Rng rng(321);
  const int rounds = PersistRounds();
  for (int round = 0; round < rounds; ++round) {
    const auto batch =
        RandomBatch(rng, g.num_vertices, 60 + rng.NextBounded(90));
    service->ApplyBatch(batch);
    reference->ApplyBatch(batch);
    const CheckpointResult ckpt = service->Checkpoint();
    ASSERT_TRUE(ckpt.ok) << "round " << round;
    if (ckpt.compacted) {
      Canonicalize(reference);
    }
    if (round % 3 == 2) {
      service.reset();  // crash + recover mid-loop
      RecoveryReport report;
      service = RecoverShardedWalkService(dir, {}, 0, nullptr, nullptr,
                                          options, &report);
      ASSERT_NE(service, nullptr) << "round " << round;
      ASSERT_TRUE(report.ok);
    }
    ExpectBitIdenticalWalks(*service, *reference, 123, round);
    ASSERT_TRUE(service->CheckInvariants().empty())
        << service->CheckInvariants();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bingo::walk
