// Differential fuzzing for the sharded service (and its batcher front-end):
// seeded random streams of interleaved inserts / deletes / walk queries
// replayed against ShardedWalkService at shard counts {1, 2, 8} and against
// one plain BingoStore. At every flush point the BatchResult accounting
// must be identical, and every walk query must be bit-identical to the
// unsharded store — the determinism contract of src/walk/store.h extended
// through the service, snapshot, and batcher layers.
//
// Profile: each shard count replays BINGO_FUZZ_SEEDS seeded interleavings
// (default 17, so the default suite covers 51; the `fuzz`-labeled ctest
// target raises it for the nightly run — see CMakeLists.txt).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "src/core/bingo_store.h"
#include "src/core/snapshot.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/rng.h"
#include "src/walk/apps.h"
#include "src/walk/batcher.h"
#include "src/walk/partitioned.h"
#include "src/walk/sharded_service.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

int FuzzSeeds() {
  const char* env = std::getenv("BINGO_FUZZ_SEEDS");
  const int seeds = env == nullptr ? 0 : std::atoi(env);
  return seeds > 0 ? seeds : 17;
}

struct FuzzGraph {
  VertexId num_vertices = 0;
  graph::WeightedEdgeList edges;
};

FuzzGraph MakeGraph(uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  // Vary the shape per seed: 64..256 vertices, avg degree ~4..8.
  const int scale = 6 + static_cast<int>(rng.NextBounded(3));
  const VertexId n = VertexId{1} << scale;
  auto pairs = graph::GenerateRmat(scale, n * (4 + rng.NextBounded(5)), rng);
  if (rng.NextBool(0.5)) {
    graph::MakeUndirected(pairs);
  }
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return {n, graph::ToWeightedEdges(csr, biases)};
}

graph::UpdateList RandomBatch(util::Rng& rng, VertexId n, std::size_t count) {
  graph::UpdateList updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(n));
    const auto dst = static_cast<VertexId>(rng.NextBounded(n));
    if (rng.NextBool(1.0 / 3.0)) {
      // Some deletes hit live edges, some miss (skipped_deletes coverage).
      updates.push_back({graph::Update::Kind::kDelete, src, dst, 0.0});
    } else {
      updates.push_back(
          {graph::Update::Kind::kInsert, src, dst, 1.0 + rng.NextUnit() * 7.0});
    }
  }
  return updates;
}

// One walk query on both sides; paths must match bit for bit.
void ExpectIdenticalWalks(const ShardedWalkService& service,
                          const BingoStore& reference, uint64_t seed,
                          int round) {
  WalkConfig cfg;
  cfg.num_walkers = 64;
  cfg.walk_length = 12;
  cfg.seed = seed ^ (static_cast<uint64_t>(round) << 32);
  cfg.record_paths = true;

  const auto snap = service.Acquire();
  ASSERT_TRUE(snap.Consistent());
  const WalkResult sharded = RunDeepWalk(snap, cfg);
  const WalkResult plain = RunDeepWalk(reference, cfg);
  ASSERT_EQ(sharded.total_steps, plain.total_steps)
      << "seed=" << seed << " round=" << round;
  ASSERT_EQ(sharded.paths, plain.paths) << "seed=" << seed << " round=" << round;

  // Second-order walks exercise the snapshot's adjacency surface too.
  if (round % 3 == 0) {
    cfg.num_walkers = 32;
    const WalkResult sharded_n2v = RunNode2vec(snap, cfg, {});
    const WalkResult plain_n2v = RunNode2vec(reference, cfg, {});
    ASSERT_EQ(sharded_n2v.paths, plain_n2v.paths)
        << "node2vec seed=" << seed << " round=" << round;
  }
  ASSERT_TRUE(snap.Consistent());
}

// Walker-transfer superstep driver vs the shared-memory engine on the same
// updated graph state: bit-identical walks (the steppers consume identical
// per-walker streams), plus PartitionedWalkResult accounting invariants —
// migrations bounded by steps (and zero at one shard), supersteps bounded by
// the walk length, finished walkers bounded by the walker count.
void ExpectSuperstepMatchesEngine(const PartitionedBingoStore& part,
                                  const BingoStore& reference, int num_shards,
                                  uint64_t seed, int round) {
  WalkConfig cfg;
  cfg.num_walkers = 64;
  cfg.walk_length = 12;
  cfg.seed = seed ^ (static_cast<uint64_t>(round) << 32) ^ 0x5fbe57e9ULL;
  cfg.record_paths = true;

  const WalkResult engine = RunDeepWalk(reference, cfg);
  const PartitionedWalkResult super = RunPartitionedDeepWalk(part, cfg);
  ASSERT_EQ(super.total_steps, engine.total_steps)
      << "seed=" << seed << " round=" << round;
  ASSERT_EQ(super.finished_walkers, engine.finished_walkers);
  ASSERT_EQ(super.path_offsets, engine.path_offsets);
  ASSERT_EQ(super.paths, engine.paths);
  ASSERT_LE(super.finished_walkers, cfg.num_walkers);
  ASSERT_LE(super.walker_migrations, super.total_steps);
  ASSERT_LE(super.supersteps, uint64_t{cfg.walk_length});
  if (num_shards == 1) {
    ASSERT_EQ(super.walker_migrations, 0u);
  }

  // Second-order and terminating steppers ride the same superstep driver.
  if (round % 3 == 0) {
    cfg.num_walkers = 32;
    const WalkResult engine_n2v = RunNode2vec(reference, cfg, {});
    const PartitionedWalkResult super_n2v = RunPartitionedNode2vec(part, cfg, {});
    ASSERT_EQ(super_n2v.paths, engine_n2v.paths)
        << "superstep node2vec seed=" << seed << " round=" << round;

    cfg.record_paths = false;
    const WalkResult engine_ppr = RunPpr(reference, cfg, 1.0 / 20.0);
    const PartitionedWalkResult super_ppr =
        RunPartitionedPpr(part, cfg, 1.0 / 20.0);
    ASSERT_EQ(super_ppr.visit_counts, engine_ppr.visit_counts)
        << "superstep ppr seed=" << seed << " round=" << round;
    ASSERT_EQ(super_ppr.finished_walkers, engine_ppr.finished_walkers);
  }
}

// Replays one seeded interleaving through ShardedWalkService::ApplyBatch.
// With `with_checkpoint`, a WAL is attached mid-stream and the service is
// later "crashed" (destroyed) and Recovered from disk: accounting, walks,
// and the superstep driver must stay differential through the checkpoint,
// canonicalization, and recovery points.
void RunDirectInterleaving(int num_shards, uint64_t seed,
                           bool with_checkpoint = false) {
  SCOPED_TRACE("shards=" + std::to_string(num_shards) +
               " seed=" + std::to_string(seed) +
               (with_checkpoint ? " checkpointed" : ""));
  const FuzzGraph g = MakeGraph(seed);
  auto service = MakeShardedWalkService(g.edges, g.num_vertices, num_shards);
  auto reference = std::make_unique<BingoStore>(
      graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));
  auto partitioned = std::make_unique<PartitionedBingoStore>(
      g.edges, g.num_vertices, num_shards);
  // getpid: the short and long (ctest -L fuzz) profiles of this binary run
  // concurrently and must not share durability directories.
  const std::string wal_dir = ::testing::TempDir() + "/bingo_fuzz_wal_" +
                              std::to_string(::getpid()) + "_" +
                              std::to_string(num_shards) + "_" +
                              std::to_string(seed);

  util::Rng rng(seed);
  const int rounds = 5 + static_cast<int>(rng.NextBounded(4));
  const int attach_round = rounds / 3;
  const int crash_round = (2 * rounds) / 3 + 1;
  for (int round = 0; round < rounds; ++round) {
    if (with_checkpoint && round == attach_round) {
      std::filesystem::remove_all(wal_dir);
      ASSERT_TRUE(service->AttachWal(wal_dir).ok);
      // Attaching canonicalizes the service's replicas (that is what makes
      // recovery bit-identical); mirror the rebuild on both references.
      const auto canonical = core::CanonicalEdgeList(reference->Graph());
      reference = std::make_unique<BingoStore>(
          graph::DynamicGraph::FromEdges(g.num_vertices, canonical));
      partitioned = std::make_unique<PartitionedBingoStore>(
          canonical, g.num_vertices, num_shards);
    }
    if (with_checkpoint && round == crash_round) {
      if (rng.NextBool(0.5)) {
        const walk::CheckpointResult ckpt = service->Checkpoint();
        ASSERT_TRUE(ckpt.ok);
        if (ckpt.compacted) {
          const auto canonical = core::CanonicalEdgeList(reference->Graph());
          reference = std::make_unique<BingoStore>(
              graph::DynamicGraph::FromEdges(g.num_vertices, canonical));
          partitioned = std::make_unique<PartitionedBingoStore>(
              canonical, g.num_vertices, num_shards);
        }
      }
      service.reset();  // crash: journaled but un-checkpointed rounds too
      service = RecoverShardedWalkService(wal_dir);
      ASSERT_NE(service, nullptr) << "recovery failed at round " << round;
      ExpectIdenticalWalks(*service, *reference, seed, 1000 + round);
    }
    const auto batch =
        RandomBatch(rng, g.num_vertices, 50 + rng.NextBounded(150));
    const core::BatchResult sharded_result = service->ApplyBatch(batch);
    const core::BatchResult plain_result = reference->ApplyBatch(batch);
    ASSERT_EQ(sharded_result, plain_result)
        << "accounting diverged at round " << round;
    ASSERT_EQ(partitioned->ApplyBatch(batch), plain_result)
        << "partitioned accounting diverged at round " << round;
    ASSERT_EQ(sharded_result.inserted + sharded_result.deleted +
                  sharded_result.skipped_deletes,
              batch.size());
    ExpectIdenticalWalks(*service, *reference, seed, round);
    ExpectSuperstepMatchesEngine(*partitioned, *reference, num_shards, seed,
                                 round);
  }
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
  EXPECT_TRUE(reference->CheckInvariants().empty());

  if (!with_checkpoint) {
    // Per-shard epochs: each batch bumps only the shards it touched. (The
    // checkpoint variant skips this: attach/compaction publish extra epochs
    // and recovery resets them.)
    const auto stats = service->Stats();
    EXPECT_LE(stats.epoch, static_cast<uint64_t>(rounds) *
                               static_cast<uint64_t>(num_shards));
    EXPECT_GE(stats.epoch, static_cast<uint64_t>(rounds));
  } else {
    std::filesystem::remove_all(wal_dir);
  }
}

// Same differential check, but updates flow one edge at a time through the
// UpdateBatcher; every Flush() is a flush point.
void RunBatcherInterleaving(int num_shards, uint64_t seed) {
  SCOPED_TRACE("batcher shards=" + std::to_string(num_shards) +
               " seed=" + std::to_string(seed));
  const FuzzGraph g = MakeGraph(seed);
  const auto service =
      MakeShardedWalkService(g.edges, g.num_vertices, num_shards);
  BingoStore reference(graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));

  // No timer and a high size bound: flush points are exactly our Flush()
  // calls, so the coalesced per-shard batches are deterministic.
  BatcherOptions options;
  options.max_batch_updates = 1 << 20;
  options.auto_flush = false;
  UpdateBatcher batcher(*service, options);

  util::Rng rng(seed ^ 0xb10c0b10c0ULL);
  core::BatchResult expected_total;
  const int rounds = 4 + static_cast<int>(rng.NextBounded(3));
  for (int round = 0; round < rounds; ++round) {
    const auto batch =
        RandomBatch(rng, g.num_vertices, 40 + rng.NextBounded(120));
    for (const graph::Update& u : batch) {
      batcher.Submit(u);
    }
    batcher.Flush();
    expected_total += reference.ApplyBatch(batch);

    const BatcherStats stats = batcher.Stats();
    ASSERT_EQ(stats.queue_depth, 0u);
    ASSERT_TRUE(stats.applied == expected_total)
        << "batcher accounting diverged at round " << round;
    ExpectIdenticalWalks(*service, reference, seed, round);
  }
  const BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.submitted, stats.flushed_updates);
  // Each round flushes >= 1 shard and <= every shard.
  EXPECT_GE(stats.manual_flushes, static_cast<uint64_t>(rounds));
  EXPECT_LE(stats.manual_flushes,
            static_cast<uint64_t>(rounds) * static_cast<uint64_t>(num_shards));
  EXPECT_GT(stats.CoalesceRatio(), 1.0);  // whole rounds coalesced per shard
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
}

TEST(ShardedFuzzTest, DifferentialOneShard) {
  for (int seed = 0; seed < FuzzSeeds(); ++seed) {
    RunDirectInterleaving(1, static_cast<uint64_t>(seed));
  }
}

TEST(ShardedFuzzTest, DifferentialTwoShards) {
  for (int seed = 0; seed < FuzzSeeds(); ++seed) {
    RunDirectInterleaving(2, 1000 + static_cast<uint64_t>(seed));
  }
}

TEST(ShardedFuzzTest, DifferentialEightShards) {
  for (int seed = 0; seed < FuzzSeeds(); ++seed) {
    RunDirectInterleaving(8, 2000 + static_cast<uint64_t>(seed));
  }
}

TEST(ShardedFuzzTest, DifferentialWithCheckpointRecovery) {
  const int seeds = std::max(1, FuzzSeeds() / 3);
  for (const int num_shards : {1, 2, 8}) {
    for (int seed = 0; seed < seeds; ++seed) {
      RunDirectInterleaving(num_shards, 4000 + static_cast<uint64_t>(seed),
                            /*with_checkpoint=*/true);
    }
  }
}

TEST(ShardedFuzzTest, DifferentialThroughBatcher) {
  const int seeds = std::max(1, FuzzSeeds() / 3);
  for (const int num_shards : {1, 2, 8}) {
    for (int seed = 0; seed < seeds; ++seed) {
      RunBatcherInterleaving(num_shards, 3000 + static_cast<uint64_t>(seed));
    }
  }
}

}  // namespace
}  // namespace bingo::walk
