// Statistical sampling validation: chi-square goodness-of-fit of
// SampleNeighbor frequencies against the exact edge-weight distribution,
// on every shipped backend, before and after update batches.
//
// Bit-identity tests (cross_backend_test, sharded_fuzz_test) prove two
// backends agree with each other; they are structurally blind to a bias
// bug both sides share (e.g. a sampler that ignores weights entirely still
// produces identical paths everywhere). This harness checks each backend
// against ground truth instead: the store's own adjacency multiset defines
// the target distribution P(dst | v) = sum of biases of (v -> dst) edges /
// total out-weight, and the empirical sampling frequencies must fit it.
// All draws use fixed seeds, so the test is deterministic — alpha controls
// the one-time risk of pinning an unlucky seed, not run-to-run flakiness.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/walk/apps.h"
#include "src/walk/baseline_stores.h"
#include "src/walk/partitioned.h"
#include "src/walk/sharded_service.h"

namespace bingo::walk {
namespace {

using graph::VertexId;

constexpr VertexId kNumVertices = 64;
constexpr uint64_t kSamplesPerVertex = 20000;
constexpr int kVerticesToTest = 5;

graph::WeightedEdgeList TestGraph(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(6, 700, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(kNumVertices, pairs);
  // Spread the weights so a bias bug shifts frequencies detectably.
  graph::BiasParams params;
  params.distribution = graph::BiasDistribution::kUniform;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

graph::UpdateList MixedUpdates(uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  graph::UpdateList updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(kNumVertices));
    const auto dst = static_cast<VertexId>(rng.NextBounded(kNumVertices));
    if (i % 3 == 0) {
      updates.push_back({graph::Update::Kind::kDelete, src, dst, 0.0});
    } else {
      updates.push_back(
          {graph::Update::Kind::kInsert, src, dst, 1.0 + rng.NextUnit() * 9.0});
    }
  }
  return updates;
}

// Checks the sampling frequencies of `store`'s busiest vertices against the
// exact distribution implied by its adjacency. `adjacency_of` and
// `sample_of` abstract over the store surface so the service snapshot view
// plugs in next to plain stores.
template <typename AdjacencyFn, typename SampleFn>
void ExpectSamplingMatchesWeights(VertexId num_vertices,
                                  const AdjacencyFn& adjacency_of,
                                  const SampleFn& sample_of,
                                  const std::string& label, uint64_t seed) {
  // Deterministic pick: the kVerticesToTest highest out-degree vertices.
  std::vector<VertexId> order(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    order[v] = v;
  }
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return adjacency_of(a).size() > adjacency_of(b).size();
  });

  int tested = 0;
  for (VertexId v : order) {
    const std::span<const graph::Edge> adj = adjacency_of(v);
    if (adj.size() < 3) {
      break;  // sorted by degree: nothing interesting left
    }
    // Aggregate parallel edges: P(dst) is the summed bias share.
    std::map<VertexId, double> weight_of;
    double total = 0.0;
    for (const graph::Edge& e : adj) {
      weight_of[e.dst] += e.bias;
      total += e.bias;
    }
    ASSERT_GT(total, 0.0) << label << " vertex " << v;
    std::vector<VertexId> cells;
    std::vector<double> expected;
    for (const auto& [dst, weight] : weight_of) {
      cells.push_back(dst);
      expected.push_back(weight / total);
    }

    std::vector<uint64_t> observed(cells.size(), 0);
    util::Rng rng(seed ^ (uint64_t{v} << 20));
    for (uint64_t s = 0; s < kSamplesPerVertex; ++s) {
      const VertexId drawn = sample_of(v, rng);
      const auto it = std::lower_bound(cells.begin(), cells.end(), drawn);
      ASSERT_TRUE(it != cells.end() && *it == drawn)
          << label << ": vertex " << v << " sampled non-neighbor " << drawn;
      ++observed[static_cast<std::size_t>(it - cells.begin())];
    }
    EXPECT_TRUE(util::ChiSquareTestPasses(observed, expected))
        << label << ": sampling frequencies of vertex " << v
        << " reject the edge-weight distribution (chi2="
        << util::ChiSquareStatistic(observed, expected) << ", cells="
        << cells.size() << ")";
    if (++tested == kVerticesToTest) {
      break;
    }
  }
  EXPECT_GE(tested, 3) << label << ": graph too sparse to test";
}

// Store backends share one driver: check, apply a batch, check again.
template <typename Store>
void RunStoreDistributionCheck(Store& store, const std::string& label) {
  const auto adjacency = [&](VertexId v) { return store.NeighborsOf(v); };
  const auto sample = [&](VertexId v, util::Rng& rng) {
    return store.SampleNeighbor(v, rng);
  };
  ExpectSamplingMatchesWeights(kNumVertices, adjacency, sample,
                               label + " (initial)", 0xd15731bu);
  store.ApplyBatch(MixedUpdates(77, 600), nullptr);
  ExpectSamplingMatchesWeights(kNumVertices, adjacency, sample,
                               label + " (after updates)", 0xd15732bu);
}

TEST(DistributionTest, BingoStore) {
  core::BingoStore store(
      graph::DynamicGraph::FromEdges(kNumVertices, TestGraph(91)));
  RunStoreDistributionCheck(store, "bingo");
}

TEST(DistributionTest, AliasStore) {
  AliasStore store(graph::DynamicGraph::FromEdges(kNumVertices, TestGraph(92)));
  RunStoreDistributionCheck(store, "alias");
}

TEST(DistributionTest, ItsStore) {
  ItsStore store(graph::DynamicGraph::FromEdges(kNumVertices, TestGraph(93)));
  RunStoreDistributionCheck(store, "its");
}

TEST(DistributionTest, ReservoirStore) {
  ReservoirStore store(
      graph::DynamicGraph::FromEdges(kNumVertices, TestGraph(94)));
  RunStoreDistributionCheck(store, "reservoir");
}

TEST(DistributionTest, PartitionedBingoStore) {
  PartitionedBingoStore store(TestGraph(95), kNumVertices, 4);
  RunStoreDistributionCheck(store, "partitioned");
}

// ---------------------------------------------------------------------------
// Temporal decay: the stored bias must equal static_weight x decay^age, and
// sampling frequencies must follow it. Ground truth is computed OUTSIDE the
// store from the original timestamped edge list and the pipeline math, so a
// store that forgot to rescale (or rescaled twice) fails the fit even though
// its own adjacency would self-consistently pass ExpectSamplingMatchesWeights.

// Chi-square fit of sampling frequencies against externally supplied
// per-source weight maps (dst -> expected weight; weight 0 = ineligible).
template <typename SampleFn>
void ExpectSamplingMatchesModel(
    const std::vector<std::map<VertexId, double>>& weight_of,
    const SampleFn& sample_of, const std::string& label, uint64_t seed) {
  std::vector<VertexId> order(weight_of.size());
  for (VertexId v = 0; v < static_cast<VertexId>(weight_of.size()); ++v) {
    order[v] = v;
  }
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return weight_of[a].size() > weight_of[b].size();
  });

  int tested = 0;
  for (VertexId v : order) {
    if (weight_of[v].size() < 3) {
      break;  // sorted by cell count: nothing interesting left
    }
    double total = 0.0;
    for (const auto& [dst, weight] : weight_of[v]) {
      total += weight;
    }
    ASSERT_GT(total, 0.0) << label << " vertex " << v;
    std::vector<VertexId> cells;
    std::vector<double> expected;
    for (const auto& [dst, weight] : weight_of[v]) {
      cells.push_back(dst);
      expected.push_back(weight / total);
    }

    std::vector<uint64_t> observed(cells.size(), 0);
    util::Rng rng(seed ^ (uint64_t{v} << 20));
    for (uint64_t s = 0; s < kSamplesPerVertex; ++s) {
      const VertexId drawn = sample_of(v, rng);
      const auto it = std::lower_bound(cells.begin(), cells.end(), drawn);
      ASSERT_TRUE(it != cells.end() && *it == drawn)
          << label << ": vertex " << v << " sampled ineligible " << drawn;
      ++observed[static_cast<std::size_t>(it - cells.begin())];
    }
    EXPECT_TRUE(util::ChiSquareTestPasses(observed, expected))
        << label << ": sampling frequencies of vertex " << v
        << " reject the model distribution (chi2="
        << util::ChiSquareStatistic(observed, expected) << ", cells="
        << cells.size() << ")";
    if (++tested == kVerticesToTest) {
      break;
    }
  }
  EXPECT_GE(tested, 3) << label << ": graph too sparse to test";
}

// Timestamps 0..4 over the standard test graph: after advancing to epoch 6
// the per-edge decay factors span decay^2..decay^6, a detectable spread.
graph::WeightedEdgeList TemporalTestGraph(uint64_t seed) {
  graph::WeightedEdgeList edges = TestGraph(seed);
  for (graph::WeightedEdge& e : edges) {
    e.timestamp = static_cast<uint32_t>((e.src + e.dst) % 5);
  }
  return edges;
}

std::vector<std::map<VertexId, double>> DecayedWeights(
    const graph::WeightedEdgeList& edges, const core::BiasPipeline& pipeline,
    uint64_t epoch) {
  std::vector<std::map<VertexId, double>> weight_of(kNumVertices);
  for (const graph::WeightedEdge& e : edges) {
    weight_of[e.src][e.dst] += e.bias * pipeline.DecayFactor(epoch, e.timestamp);
  }
  return weight_of;
}

// At epoch 0 every edge is fresh (factor 1); after AdvanceTime(6) each bias
// must carry decay^(6 - timestamp). Both phases check against the model.
template <typename Store>
void RunDecayedDistributionCheck(Store& store,
                                 const graph::WeightedEdgeList& edges,
                                 const core::BiasPipeline& pipeline,
                                 const std::string& label) {
  const auto sample = [&](VertexId v, util::Rng& rng) {
    return store.SampleNeighbor(v, rng);
  };
  ExpectSamplingMatchesModel(DecayedWeights(edges, pipeline, 0), sample,
                             label + " (epoch 0)", 0xdecaf00du);
  store.ApplyBatch({graph::MakeAdvanceTime(6)}, nullptr);
  ExpectSamplingMatchesModel(DecayedWeights(edges, pipeline, 6), sample,
                             label + " (epoch 6)", 0xdecaf11du);
}

core::BingoConfig DecayConfig() {
  core::BingoConfig config;
  config.pipeline.decay = 0.7;
  return config;
}

TEST(DistributionTest, DecayedBingoStore) {
  const auto edges = TemporalTestGraph(191);
  core::BingoStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges),
                         DecayConfig());
  RunDecayedDistributionCheck(store, edges, DecayConfig().pipeline,
                              "bingo-decayed");
}

TEST(DistributionTest, DecayedBaselineStores) {
  {
    const auto edges = TemporalTestGraph(192);
    AliasStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges),
                     DecayConfig());
    RunDecayedDistributionCheck(store, edges, DecayConfig().pipeline,
                                "alias-decayed");
  }
  {
    const auto edges = TemporalTestGraph(193);
    ItsStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges),
                   DecayConfig());
    RunDecayedDistributionCheck(store, edges, DecayConfig().pipeline,
                                "its-decayed");
  }
  {
    const auto edges = TemporalTestGraph(194);
    ReservoirStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges),
                         DecayConfig());
    RunDecayedDistributionCheck(store, edges, DecayConfig().pipeline,
                                "reservoir-decayed");
  }
}

TEST(DistributionTest, DecayedPartitionedStore) {
  const auto edges = TemporalTestGraph(195);
  PartitionedBingoStore store(edges, kNumVertices, 4, DecayConfig());
  RunDecayedDistributionCheck(store, edges, DecayConfig().pipeline,
                              "partitioned-decayed");
}

// ---------------------------------------------------------------------------
// Metapath-constrained steps: at step s the walker must land on a vertex of
// type pattern[(s + 1) % |pattern|], drawn proportionally to bias among the
// type-matching neighbors only. The eligible set flips between steps, and
// wrong-type draws are hard failures (the model map omits them).

template <typename Store>
void RunMetapathDistributionCheck(const Store& store,
                                  const graph::WeightedEdgeList& edges,
                                  const std::string& label) {
  const MetapathParams params;  // two types, pattern {0, 1}
  const internal::MetapathStepper<Store> stepper{store, params};
  for (const uint32_t step : {0u, 1u}) {
    const uint32_t want = params.pattern[(step + 1) % params.pattern.size()];
    std::vector<std::map<VertexId, double>> weight_of(kNumVertices);
    for (const graph::WeightedEdge& e : edges) {
      if (params.TypeOf(e.dst) == want) {
        weight_of[e.src][e.dst] += e.bias;
      }
    }
    const auto sample = [&](VertexId v, util::Rng& rng) {
      return stepper.Next(v, graph::kInvalidVertex, step, rng);
    };
    ExpectSamplingMatchesModel(
        weight_of, sample,
        label + " (step " + std::to_string(step) + ")", 0x3e7a9a7ull + step);
  }
}

TEST(DistributionTest, MetapathBingoStore) {
  const auto edges = TestGraph(291);
  const core::BingoStore store(
      graph::DynamicGraph::FromEdges(kNumVertices, edges));
  RunMetapathDistributionCheck(store, edges, "bingo-metapath");
}

TEST(DistributionTest, MetapathBaselineStores) {
  {
    const auto edges = TestGraph(292);
    const AliasStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
    RunMetapathDistributionCheck(store, edges, "alias-metapath");
  }
  {
    const auto edges = TestGraph(293);
    const ItsStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
    RunMetapathDistributionCheck(store, edges, "its-metapath");
  }
  {
    const auto edges = TestGraph(294);
    const ReservoirStore store(
        graph::DynamicGraph::FromEdges(kNumVertices, edges));
    RunMetapathDistributionCheck(store, edges, "reservoir-metapath");
  }
}

TEST(DistributionTest, MetapathPartitionedStore) {
  const auto edges = TestGraph(295);
  const PartitionedBingoStore store(edges, kNumVertices, 4);
  RunMetapathDistributionCheck(store, edges, "partitioned-metapath");
}

// The sharded service samples through its composite snapshot view; a fresh
// snapshot is acquired per phase, exactly as a serving client would.
TEST(DistributionTest, ShardedWalkServiceSnapshot) {
  const auto edges = TestGraph(96);
  const auto service = MakeShardedWalkService(edges, kNumVertices, 4);

  const auto check = [&](const std::string& label, uint64_t seed) {
    const auto snap = service->Acquire();
    ASSERT_TRUE(snap.Consistent());
    const auto adjacency = [&](VertexId v) { return snap.NeighborsOf(v); };
    const auto sample = [&](VertexId v, util::Rng& rng) {
      return snap.SampleNeighbor(v, rng);
    };
    ExpectSamplingMatchesWeights(kNumVertices, adjacency, sample, label, seed);
    ASSERT_TRUE(snap.Consistent());
  };

  check("sharded-service (initial)", 0xd15733bu);
  service->ApplyBatch(MixedUpdates(78, 600));
  check("sharded-service (after updates)", 0xd15734bu);
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
}

}  // namespace
}  // namespace bingo::walk
