// Statistical sampling validation: chi-square goodness-of-fit of
// SampleNeighbor frequencies against the exact edge-weight distribution,
// on every shipped backend, before and after update batches.
//
// Bit-identity tests (cross_backend_test, sharded_fuzz_test) prove two
// backends agree with each other; they are structurally blind to a bias
// bug both sides share (e.g. a sampler that ignores weights entirely still
// produces identical paths everywhere). This harness checks each backend
// against ground truth instead: the store's own adjacency multiset defines
// the target distribution P(dst | v) = sum of biases of (v -> dst) edges /
// total out-weight, and the empirical sampling frequencies must fit it.
// All draws use fixed seeds, so the test is deterministic — alpha controls
// the one-time risk of pinning an unlucky seed, not run-to-run flakiness.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/walk/baseline_stores.h"
#include "src/walk/partitioned.h"
#include "src/walk/sharded_service.h"

namespace bingo::walk {
namespace {

using graph::VertexId;

constexpr VertexId kNumVertices = 64;
constexpr uint64_t kSamplesPerVertex = 20000;
constexpr int kVerticesToTest = 5;

graph::WeightedEdgeList TestGraph(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(6, 700, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(kNumVertices, pairs);
  // Spread the weights so a bias bug shifts frequencies detectably.
  graph::BiasParams params;
  params.distribution = graph::BiasDistribution::kUniform;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

graph::UpdateList MixedUpdates(uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  graph::UpdateList updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(kNumVertices));
    const auto dst = static_cast<VertexId>(rng.NextBounded(kNumVertices));
    if (i % 3 == 0) {
      updates.push_back({graph::Update::Kind::kDelete, src, dst, 0.0});
    } else {
      updates.push_back(
          {graph::Update::Kind::kInsert, src, dst, 1.0 + rng.NextUnit() * 9.0});
    }
  }
  return updates;
}

// Checks the sampling frequencies of `store`'s busiest vertices against the
// exact distribution implied by its adjacency. `adjacency_of` and
// `sample_of` abstract over the store surface so the service snapshot view
// plugs in next to plain stores.
template <typename AdjacencyFn, typename SampleFn>
void ExpectSamplingMatchesWeights(VertexId num_vertices,
                                  const AdjacencyFn& adjacency_of,
                                  const SampleFn& sample_of,
                                  const std::string& label, uint64_t seed) {
  // Deterministic pick: the kVerticesToTest highest out-degree vertices.
  std::vector<VertexId> order(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    order[v] = v;
  }
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return adjacency_of(a).size() > adjacency_of(b).size();
  });

  int tested = 0;
  for (VertexId v : order) {
    const std::span<const graph::Edge> adj = adjacency_of(v);
    if (adj.size() < 3) {
      break;  // sorted by degree: nothing interesting left
    }
    // Aggregate parallel edges: P(dst) is the summed bias share.
    std::map<VertexId, double> weight_of;
    double total = 0.0;
    for (const graph::Edge& e : adj) {
      weight_of[e.dst] += e.bias;
      total += e.bias;
    }
    ASSERT_GT(total, 0.0) << label << " vertex " << v;
    std::vector<VertexId> cells;
    std::vector<double> expected;
    for (const auto& [dst, weight] : weight_of) {
      cells.push_back(dst);
      expected.push_back(weight / total);
    }

    std::vector<uint64_t> observed(cells.size(), 0);
    util::Rng rng(seed ^ (uint64_t{v} << 20));
    for (uint64_t s = 0; s < kSamplesPerVertex; ++s) {
      const VertexId drawn = sample_of(v, rng);
      const auto it = std::lower_bound(cells.begin(), cells.end(), drawn);
      ASSERT_TRUE(it != cells.end() && *it == drawn)
          << label << ": vertex " << v << " sampled non-neighbor " << drawn;
      ++observed[static_cast<std::size_t>(it - cells.begin())];
    }
    EXPECT_TRUE(util::ChiSquareTestPasses(observed, expected))
        << label << ": sampling frequencies of vertex " << v
        << " reject the edge-weight distribution (chi2="
        << util::ChiSquareStatistic(observed, expected) << ", cells="
        << cells.size() << ")";
    if (++tested == kVerticesToTest) {
      break;
    }
  }
  EXPECT_GE(tested, 3) << label << ": graph too sparse to test";
}

// Store backends share one driver: check, apply a batch, check again.
template <typename Store>
void RunStoreDistributionCheck(Store& store, const std::string& label) {
  const auto adjacency = [&](VertexId v) { return store.NeighborsOf(v); };
  const auto sample = [&](VertexId v, util::Rng& rng) {
    return store.SampleNeighbor(v, rng);
  };
  ExpectSamplingMatchesWeights(kNumVertices, adjacency, sample,
                               label + " (initial)", 0xd15731bu);
  store.ApplyBatch(MixedUpdates(77, 600), nullptr);
  ExpectSamplingMatchesWeights(kNumVertices, adjacency, sample,
                               label + " (after updates)", 0xd15732bu);
}

TEST(DistributionTest, BingoStore) {
  core::BingoStore store(
      graph::DynamicGraph::FromEdges(kNumVertices, TestGraph(91)));
  RunStoreDistributionCheck(store, "bingo");
}

TEST(DistributionTest, AliasStore) {
  AliasStore store(graph::DynamicGraph::FromEdges(kNumVertices, TestGraph(92)));
  RunStoreDistributionCheck(store, "alias");
}

TEST(DistributionTest, ItsStore) {
  ItsStore store(graph::DynamicGraph::FromEdges(kNumVertices, TestGraph(93)));
  RunStoreDistributionCheck(store, "its");
}

TEST(DistributionTest, ReservoirStore) {
  ReservoirStore store(
      graph::DynamicGraph::FromEdges(kNumVertices, TestGraph(94)));
  RunStoreDistributionCheck(store, "reservoir");
}

TEST(DistributionTest, PartitionedBingoStore) {
  PartitionedBingoStore store(TestGraph(95), kNumVertices, 4);
  RunStoreDistributionCheck(store, "partitioned");
}

// The sharded service samples through its composite snapshot view; a fresh
// snapshot is acquired per phase, exactly as a serving client would.
TEST(DistributionTest, ShardedWalkServiceSnapshot) {
  const auto edges = TestGraph(96);
  const auto service = MakeShardedWalkService(edges, kNumVertices, 4);

  const auto check = [&](const std::string& label, uint64_t seed) {
    const auto snap = service->Acquire();
    ASSERT_TRUE(snap.Consistent());
    const auto adjacency = [&](VertexId v) { return snap.NeighborsOf(v); };
    const auto sample = [&](VertexId v, util::Rng& rng) {
      return snap.SampleNeighbor(v, rng);
    };
    ExpectSamplingMatchesWeights(kNumVertices, adjacency, sample, label, seed);
    ASSERT_TRUE(snap.Consistent());
  };

  check("sharded-service (initial)", 0xd15733bu);
  service->ApplyBatch(MixedUpdates(78, 600));
  check("sharded-service (after updates)", 0xd15734bu);
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
}

}  // namespace
}  // namespace bingo::walk
