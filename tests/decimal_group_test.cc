// Tests for the decimal group (§4.3) under both intra-group policies.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/decimal_group.h"
#include "src/sampling/exact.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace bingo::core {
namespace {

using Policy = DecimalGroup::Policy;

class DecimalGroupPolicyTest : public ::testing::TestWithParam<Policy> {};

TEST_P(DecimalGroupPolicyTest, InsertRemoveTracksTotals) {
  DecimalGroup g(GetParam());
  g.Insert(0, 100);
  g.Insert(5, 200);
  g.Insert(2, 300);
  EXPECT_EQ(g.Count(), 3u);
  EXPECT_EQ(g.TotalFixed(), 600u);
  EXPECT_TRUE(g.Contains(5));
  EXPECT_EQ(g.DecOf(5), 200u);
  g.Remove(5);
  EXPECT_EQ(g.Count(), 2u);
  EXPECT_EQ(g.TotalFixed(), 400u);
  EXPECT_FALSE(g.Contains(5));
  EXPECT_TRUE(g.CheckInvariants().empty()) << g.CheckInvariants();
}

TEST_P(DecimalGroupPolicyTest, RenameMovesIndexKeepsWeight) {
  DecimalGroup g(GetParam());
  g.Insert(7, 1000);
  g.Insert(3, 2000);
  g.Rename(7, 12);
  EXPECT_FALSE(g.Contains(7));
  EXPECT_TRUE(g.Contains(12));
  EXPECT_EQ(g.DecOf(12), 1000u);
  EXPECT_EQ(g.TotalFixed(), 3000u);
  EXPECT_TRUE(g.CheckInvariants().empty());
}

TEST_P(DecimalGroupPolicyTest, SamplingMatchesWeights) {
  DecimalGroup g(GetParam());
  // Deliberately skewed fixed-point weights.
  const std::vector<std::pair<uint32_t, uint32_t>> members = {
      {0, 1u << 30}, {1, 1u << 28}, {2, 3u << 28}, {3, 1u << 31}, {4, 1u << 20}};
  std::vector<double> weights;
  for (const auto& [idx, dec] : members) {
    g.Insert(idx, dec);
    weights.push_back(static_cast<double>(dec));
  }
  util::Rng rng(404);
  const auto counts = sampling::Histogram(
      members.size(), 300000, [&] { return g.Sample(rng); });
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, util::Normalize(weights)));
}

TEST_P(DecimalGroupPolicyTest, ChurnAgainstReferenceMap) {
  DecimalGroup g(GetParam());
  std::map<uint32_t, uint32_t> reference;
  util::Rng rng(55);
  for (int round = 0; round < 5000; ++round) {
    const uint32_t idx = static_cast<uint32_t>(rng.NextBounded(200));
    if (reference.count(idx)) {
      g.Remove(idx);
      reference.erase(idx);
    } else {
      const uint32_t dec = 1 + rng.NextU32() / 2;
      g.Insert(idx, dec);
      reference[idx] = dec;
    }
  }
  EXPECT_EQ(g.Count(), reference.size());
  uint64_t total = 0;
  for (const auto& [idx, dec] : reference) {
    EXPECT_TRUE(g.Contains(idx));
    EXPECT_EQ(g.DecOf(idx), dec);
    total += dec;
  }
  EXPECT_EQ(g.TotalFixed(), total);
  EXPECT_TRUE(g.CheckInvariants().empty()) << g.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Policies, DecimalGroupPolicyTest,
                         ::testing::Values(Policy::kRejection, Policy::kIts));

TEST(DecimalGroupTest, SetPolicySwitchesMidstream) {
  DecimalGroup g(Policy::kRejection);
  g.Insert(0, 500);
  g.Insert(1, 1500);
  g.SetPolicy(Policy::kIts);
  EXPECT_TRUE(g.CheckInvariants().empty()) << g.CheckInvariants();
  util::Rng rng(9);
  const auto counts = sampling::Histogram(2, 100000, [&] { return g.Sample(rng); });
  const std::vector<double> expected = {0.25, 0.75};
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected));
  g.SetPolicy(Policy::kRejection);
  EXPECT_TRUE(g.CheckInvariants().empty());
}

TEST(DecimalGroupTest, ClearReleasesEverything) {
  DecimalGroup g(Policy::kIts);
  g.Insert(0, 10);
  g.Insert(1, 20);
  g.Clear();
  EXPECT_EQ(g.Count(), 0u);
  EXPECT_EQ(g.TotalFixed(), 0u);
  EXPECT_EQ(g.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace bingo::core
