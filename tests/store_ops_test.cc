// Tests for the vertex-level store operations of §4.2's closing remark:
// edge-bias updates, vertex out-edge deletion, and vertex insertion.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/generators.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace bingo::core {
namespace {

using graph::VertexId;

BingoStore SmallStore() {
  graph::WeightedEdgeList edges;
  for (VertexId i = 1; i <= 10; ++i) {
    edges.push_back({0, i, static_cast<double>(i)});
  }
  return BingoStore(graph::DynamicGraph::FromEdges(32, edges));
}

TEST(StoreOpsTest, UpdateBiasRewritesDistributionExactly) {
  BingoStore store = SmallStore();
  ASSERT_TRUE(store.UpdateBias(0, 3, 100.0));
  ASSERT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  const auto implied =
      store.SamplerAt(0).ImpliedDistribution(store.Graph().Neighbors(0));
  // New total: 55 - 3 + 100 = 152; edge at index 2 carries bias 100.
  double total = 0;
  for (const graph::Edge& e : store.Graph().Neighbors(0)) {
    total += e.bias;
  }
  EXPECT_DOUBLE_EQ(total, 152.0);
  for (uint32_t i = 0; i < store.Graph().Degree(0); ++i) {
    EXPECT_NEAR(implied[i], store.Graph().NeighborAt(0, i).bias / total, 1e-9);
  }
}

TEST(StoreOpsTest, UpdateBiasMissingEdgeFails) {
  BingoStore store = SmallStore();
  EXPECT_FALSE(store.UpdateBias(0, 99, 5.0));
  EXPECT_FALSE(store.UpdateBias(5, 1, 5.0));
}

TEST(StoreOpsTest, UpdateBiasOnDuplicateHitsEarliest) {
  BingoStore store(graph::DynamicGraph(4));
  store.StreamingInsert(0, 1, 2.0);
  store.StreamingInsert(0, 1, 4.0);
  ASSERT_TRUE(store.UpdateBias(0, 1, 32.0));
  // The earliest copy (bias 2) became 32; the later copy is untouched.
  std::vector<double> biases;
  for (const graph::Edge& e : store.Graph().Neighbors(0)) {
    biases.push_back(e.bias);
  }
  std::sort(biases.begin(), biases.end());
  EXPECT_EQ(biases, (std::vector<double>{4.0, 32.0}));
  EXPECT_TRUE(store.CheckInvariants().empty());
}

TEST(StoreOpsTest, UpdateBiasChurnKeepsInvariants) {
  BingoStore store = SmallStore();
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const VertexId dst = 1 + static_cast<VertexId>(rng.NextBounded(10));
    ASSERT_TRUE(store.UpdateBias(0, dst, 1.0 + rng.NextBounded(1 << 12)));
    ASSERT_TRUE(store.CheckInvariants().empty()) << i;
  }
}

TEST(StoreOpsTest, UpdateBiasIntegerToFloatAndBack) {
  BingoStore store = SmallStore();
  ASSERT_TRUE(store.UpdateBias(0, 2, 3.75));  // gains a decimal part
  ASSERT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  EXPECT_GT(store.SamplerAt(0).Decimal().TotalFixed(), 0u);
  ASSERT_TRUE(store.UpdateBias(0, 2, 6.0));  // decimal part withdrawn
  ASSERT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  EXPECT_EQ(store.SamplerAt(0).Decimal().TotalFixed(), 0u);
}

TEST(StoreOpsTest, DeleteVertexOutEdgesClearsVertexOnly) {
  BingoStore store = SmallStore();
  store.StreamingInsert(5, 6, 2.0);
  EXPECT_EQ(store.DeleteVertexOutEdges(0), 10u);
  EXPECT_EQ(store.Graph().Degree(0), 0u);
  EXPECT_EQ(store.Graph().Degree(5), 1u);  // other vertices untouched
  EXPECT_EQ(store.Graph().NumEdges(), 1u);
  EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  util::Rng rng(1);
  EXPECT_EQ(store.SampleNeighbor(0, rng), graph::kInvalidVertex);
  // The vertex is immediately reusable.
  store.StreamingInsert(0, 7, 3.0);
  EXPECT_EQ(store.SampleNeighbor(0, rng), 7u);
}

TEST(StoreOpsTest, DeleteVertexOutEdgesOnEmptyVertex) {
  BingoStore store = SmallStore();
  EXPECT_EQ(store.DeleteVertexOutEdges(17), 0u);
  EXPECT_TRUE(store.CheckInvariants().empty());
}

TEST(StoreOpsTest, AddVerticesExtendsStore) {
  BingoStore store = SmallStore();
  const VertexId old_n = store.Graph().NumVertices();
  store.AddVertices(8);
  EXPECT_EQ(store.Graph().NumVertices(), old_n + 8);
  // New vertices work end to end.
  store.StreamingInsert(old_n + 3, 1, 4.0);
  util::Rng rng(2);
  EXPECT_EQ(store.SampleNeighbor(old_n + 3, rng), 1u);
  EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
}

TEST(StoreOpsTest, SamplingAfterBiasUpdateFollowsNewWeights) {
  BingoStore store = SmallStore();
  // Collapse all mass onto one edge.
  for (VertexId i = 1; i <= 10; ++i) {
    ASSERT_TRUE(store.UpdateBias(0, i, i == 4 ? 1e6 : 1.0));
  }
  util::Rng rng(3);
  int hits = 0;
  for (int s = 0; s < 1000; ++s) {
    hits += store.SampleNeighbor(0, rng) == 4 ? 1 : 0;
  }
  EXPECT_GT(hits, 990);
}

}  // namespace
}  // namespace bingo::core
