// Tests for the out-of-core walk path: the tiered store, the block-
// scheduled driver, and the streamed service recovery.
//
// The load-bearing contract is bit-identity: a TieredStore walk of a given
// history produces the SAME output through every driver (engine, block-
// scheduled OOC, superstep, fused), at every memory budget (unconstrained
// down to a single resident block), at every thread count, with or without
// walker spill. Everything here compares full outputs — paths, offsets,
// visit counts — not statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/graph/update_stream.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/fused.h"
#include "src/walk/ooc.h"
#include "src/walk/ooc_service.h"
#include "src/walk/ooc_store.h"
#include "src/walk/partitioned.h"
#include "src/walk/service.h"

namespace bingo::walk {
namespace {

using graph::VertexId;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// XOR-flips one byte so the content is guaranteed to change.
void FlipByte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x5a;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

graph::WeightedEdgeList RmatEdges(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(9, 6000, rng);
  graph::Canonicalize(pairs);
  graph::WeightedEdgeList edges;
  edges.reserve(pairs.size());
  uint32_t ts = 0;
  for (const auto& [src, dst] : pairs) {
    graph::WeightedEdge e;
    e.src = src;
    e.dst = dst;
    e.bias = 1.0 + (ts % 5);
    e.timestamp = ts++;
    edges.push_back(e);
  }
  return edges;
}

// Writes a multi-block container for `edges` and returns its path. A 4 KiB
// block target yields dozens of blocks at this scale, so fractional budgets
// exercise real eviction.
std::string WriteCsr(const graph::WeightedEdgeList& edges, const char* name) {
  const std::string path = TempPath(name);
  const VertexId n =
      std::max<VertexId>(512, graph::ImpliedVertexCount(edges));
  std::string error;
  EXPECT_TRUE(graph::WriteCsrFile(path, n, edges, 4096, &error)) << error;
  return path;
}

std::unique_ptr<TieredStore> OpenTiered(const std::string& csr_path,
                                        std::size_t budget_bytes,
                                        util::ThreadPool* pool = nullptr) {
  TieredStoreOptions options;
  options.memory_budget_bytes = budget_bytes;
  std::string error;
  auto store = TieredStore::Open(csr_path, {}, options, pool, &error);
  EXPECT_NE(store, nullptr) << error;
  return store;
}

// Full-output equality (not a hash): any divergence names its first index.
void ExpectSameResult(const WalkResult& a, const WalkResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.total_steps, b.total_steps) << what;
  EXPECT_EQ(a.finished_walkers, b.finished_walkers) << what;
  ASSERT_EQ(a.path_offsets, b.path_offsets) << what;
  ASSERT_EQ(a.paths, b.paths) << what;
  ASSERT_EQ(a.visit_counts, b.visit_counts) << what;
}

WalkConfig SmallConfig() {
  WalkConfig cfg;
  cfg.walk_length = 20;
  cfg.record_paths = true;
  cfg.seed = 99;
  return cfg;
}

std::size_t EdgeBytes(const graph::WeightedEdgeList& edges) {
  return edges.size() * sizeof(graph::Edge);
}

TEST(OocWalkTest, MatchesEngineAcrossBudgetsThreadsAndApps) {
  const auto edges = RmatEdges(21);
  const std::string csr = WriteCsr(edges, "ooc_matrix.csr");
  const WalkConfig cfg = SmallConfig();

  // References: the shared-memory engine over the unconstrained tier.
  const auto reference_store = OpenTiered(csr, 0);
  const WalkResult ref_deepwalk = RunDeepWalk(*reference_store, cfg);
  const WalkResult ref_node2vec = RunNode2vec(*reference_store, cfg);
  const WalkResult ref_ppr = RunPpr(*reference_store, cfg);

  const std::size_t eb = EdgeBytes(edges);
  for (const std::size_t budget : {std::size_t{0}, eb / 2, eb / 4}) {
    for (const std::size_t threads : {1u, 4u, 16u}) {
      util::PoolOptions pool_options;
      pool_options.num_threads = threads;
      util::ThreadPool pool(pool_options);
      const auto store = OpenTiered(csr, budget);
      const std::string what = "budget=" + std::to_string(budget) +
                               " threads=" + std::to_string(threads);
      const OocWalkResult dw = RunOocDeepWalk(*store, cfg, &pool);
      ASSERT_TRUE(dw.error.empty()) << what << ": " << dw.error;
      ExpectSameResult(dw, ref_deepwalk, "deepwalk " + what);
      const OocWalkResult n2v = RunOocNode2vec(*store, cfg, {}, &pool);
      ASSERT_TRUE(n2v.error.empty()) << what << ": " << n2v.error;
      ExpectSameResult(n2v, ref_node2vec, "node2vec " + what);
      const OocWalkResult ppr = RunOocPpr(*store, cfg, 1.0 / 80.0, &pool);
      ASSERT_TRUE(ppr.error.empty()) << what << ": " << ppr.error;
      ExpectSameResult(ppr, ref_ppr, "ppr " + what);
      if (budget > 0) {
        EXPECT_GT(dw.block_loads, 0u) << what;
      }
    }
  }
  std::remove(csr.c_str());
}

TEST(OocWalkTest, IdentityHoldsAfterUpdatesIncludingBaseDeletes) {
  const auto edges = RmatEdges(22);
  const std::string csr = WriteCsr(edges, "ooc_updates.csr");
  util::ThreadPool pool;

  // A batch that inserts fresh edges and deletes base edges — deletions
  // force promotion of CSR-resident vertices into the overlay.
  graph::UpdateList batch;
  for (int i = 0; i < 200; ++i) {
    graph::Update ins;
    ins.kind = graph::Update::Kind::kInsert;
    ins.src = static_cast<VertexId>((i * 37) % 512);
    ins.dst = static_cast<VertexId>((i * 101 + 5) % 512);
    ins.bias = 2.5;
    batch.push_back(ins);
  }
  for (int i = 0; i < 64; ++i) {
    const graph::WeightedEdge& victim = edges[(i * 89) % edges.size()];
    graph::Update del;
    del.kind = graph::Update::Kind::kDelete;
    del.src = victim.src;
    del.dst = victim.dst;
    batch.push_back(del);
  }

  const auto apply = [&](TieredStore& store) {
    const auto result = store.ApplyBatch(batch, &pool);
    EXPECT_GT(result.inserted, 0u);
    EXPECT_GT(result.deleted, 0u);
    EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  };

  const WalkConfig cfg = SmallConfig();
  const auto reference_store = OpenTiered(csr, 0);
  apply(*reference_store);
  const WalkResult reference = RunDeepWalk(*reference_store, cfg);

  const auto budgeted = OpenTiered(csr, EdgeBytes(edges) / 4);
  apply(*budgeted);
  const OocWalkResult ooc = RunOocDeepWalk(*budgeted, cfg, &pool);
  ASSERT_TRUE(ooc.error.empty()) << ooc.error;
  ExpectSameResult(ooc, reference, "post-update deepwalk");
  std::remove(csr.c_str());
}

TEST(OocWalkTest, ResidentBytesStayWithinBudgetPlusOneBlock) {
  const auto edges = RmatEdges(23);
  const std::string csr = WriteCsr(edges, "ooc_budget.csr");
  const std::size_t budget = EdgeBytes(edges) / 8;
  const auto store = OpenTiered(csr, budget);

  std::size_t max_block = 0;
  for (uint32_t b = 0; b < store->Csr().NumBlocks(); ++b) {
    max_block = std::max(max_block, store->Csr().BlockPayloadBytes(b));
  }

  util::ThreadPool pool;
  const OocWalkResult result = RunOocDeepWalk(*store, SmallConfig(), &pool);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_GT(result.block_evictions, 0u);
  // The cache loads the incoming block before evicting, so the transient
  // ceiling is the budget plus one block.
  EXPECT_LE(result.peak_resident_bytes, budget + max_block);
  std::remove(csr.c_str());
}

TEST(OocWalkTest, SpilledParkingQueuesProduceIdenticalOutput) {
  const auto edges = RmatEdges(24);
  const std::string csr = WriteCsr(edges, "ooc_spill.csr");
  const std::string spill_dir = TempPath("ooc_spill_dir");
  std::filesystem::create_directories(spill_dir);
  const WalkConfig cfg = SmallConfig();

  const auto reference_store = OpenTiered(csr, 0);
  const WalkResult reference = RunDeepWalk(*reference_store, cfg);

  util::ThreadPool pool;
  const auto store = OpenTiered(csr, EdgeBytes(edges) / 4);
  OocWalkOptions options;
  options.spill_threshold_walkers = 1;  // spill every parked queue
  options.spill_dir = spill_dir;
  const OocWalkResult spilled = RunOocDeepWalk(*store, cfg, &pool, options);
  ASSERT_TRUE(spilled.error.empty()) << spilled.error;
  EXPECT_GT(spilled.spilled_walkers, 0u);
  ExpectSameResult(spilled, reference, "spilled deepwalk");
  // The spill files are transient: nothing survives the walk.
  EXPECT_TRUE(std::filesystem::is_empty(spill_dir));
  std::filesystem::remove_all(spill_dir);
  std::remove(csr.c_str());
}

TEST(OocWalkTest, SuperstepAndFusedDriversMatchOnTieredStore) {
  const auto edges = RmatEdges(25);
  const std::string csr = WriteCsr(edges, "ooc_drivers.csr");
  const WalkConfig cfg = SmallConfig();
  util::ThreadPool pool;

  const auto reference_store = OpenTiered(csr, 0);
  const WalkResult reference = RunDeepWalk(*reference_store, cfg);

  // Superstep driver, budgeted: TieredStore models ShardPreparableStore, so
  // the driver runs shards one at a time, most-loaded first, preparing each
  // block just before its pass.
  const auto budgeted = OpenTiered(csr, EdgeBytes(edges) / 4);
  const PartitionedWalkResult superstep =
      RunPartitionedDeepWalk(*budgeted, cfg, &pool);
  ExpectSameResult(superstep, reference, "superstep on tiered");
  EXPECT_GT(superstep.walker_migrations, 0u);

  // Fused driver, unconstrained: the batched front-end over the same store.
  const WalkResult fused = RunFusedWalks(
      *reference_store, cfg,
      internal::FirstOrderStepper<TieredStore>{*reference_store}, &pool);
  ExpectSameResult(fused, reference, "fused on tiered");
  std::remove(csr.c_str());
}

TEST(OocWalkTest, ConcurrentWalksOnBudgetedStoreAreRejected) {
  const auto edges = RmatEdges(26);
  const std::string csr = WriteCsr(edges, "ooc_exclusive.csr");
  const auto store = OpenTiered(csr, EdgeBytes(edges) / 4);
  ASSERT_TRUE(store->TryBeginExclusiveWalk());  // someone else is walking
  const OocWalkResult result = RunOocDeepWalk(*store, SmallConfig());
  EXPECT_FALSE(result.error.empty());
  store->EndExclusiveWalk();
  const OocWalkResult retry = RunOocDeepWalk(*store, SmallConfig());
  EXPECT_TRUE(retry.error.empty()) << retry.error;
  std::remove(csr.c_str());
}

TEST(OocWalkTest, CorruptBlockSurfacesAsErrorNotCrash) {
  const auto edges = RmatEdges(27);
  const std::string csr = WriteCsr(edges, "ooc_corrupt_block.csr");
  const auto store = OpenTiered(csr, EdgeBytes(edges) / 4);
  // Damage the last edge record on disk after Open: the per-block CRC
  // catches it at map time and the walk reports, it does not fault.
  FlipByte(csr, std::filesystem::file_size(csr) - 4);
  util::ThreadPool pool;
  const OocWalkResult result = RunOocDeepWalk(*store, SmallConfig(), &pool);
  EXPECT_FALSE(result.error.empty());
  std::remove(csr.c_str());
}

TEST(OocServiceTest, StreamedRecoveryMatchesFreshBuildPlusReplay) {
  const std::string dir = TempPath("ooc_recover");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto edges = RmatEdges(28);
  const VertexId n =
      std::max<VertexId>(512, graph::ImpliedVertexCount(edges));
  util::ThreadPool pool;

  // In-memory service writes the durability state: a base checkpoint, then
  // two journaled-but-not-checkpointed batches (the WAL suffix).
  graph::UpdateWorkloadParams params;
  params.batch_size = 300;
  params.num_batches = 2;
  util::Rng rng(5);
  auto workload = graph::BuildUpdateWorkload(edges, params, rng);
  const auto batches =
      graph::SplitIntoBatches(workload.updates, params.batch_size);
  {
    auto service = MakeWalkService(workload.initial_edges, n, {}, &pool,
                                   &pool);
    ASSERT_TRUE(service->AttachWal(dir).ok);
    ASSERT_TRUE(service->Checkpoint().ok);
    for (const auto& batch : batches) {
      service->ApplyBatch(batch);
    }
    // Destroyed without a checkpoint: recovery must replay the suffix.
  }

  RecoveryReport report;
  std::string error;
  OocServiceOptions options;
  options.store.memory_budget_bytes = 1 << 16;
  auto recovered = RecoverOocWalkService(dir, {}, options, &pool, &pool,
                                         &report, &error);
  ASSERT_NE(recovered, nullptr) << error;
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.wal_records_replayed, batches.size());
  EXPECT_TRUE(recovered->CheckInvariants().empty())
      << recovered->CheckInvariants();

  // Fresh build + manual replay over the same base.
  const std::string csr2 = TempPath("ooc_recover_fresh.csr");
  core::SnapshotInfo info;
  ASSERT_TRUE(BuildCsrFromSnapshot(dir + "/base.snapshot", csr2, 4096, &info,
                                   &error))
      << error;
  EXPECT_EQ(info.num_edges, workload.initial_edges.size());
  const auto fresh = OpenTiered(csr2, 0, &pool);
  for (const auto& batch : batches) {
    fresh->ApplyBatch(batch, &pool);
  }

  const WalkConfig cfg = SmallConfig();
  const WalkResult via_recovery = recovered->DeepWalk(cfg);
  const WalkResult via_fresh = RunDeepWalk(*fresh, cfg);
  ExpectSameResult(via_recovery, via_fresh, "recovered vs fresh");

  // The adopted WAL keeps journaling: one more batch round-trips into an
  // in-memory recovery later.
  recovered->ApplyBatch(batches.front());
  EXPECT_TRUE(recovered->CheckInvariants().empty());

  std::remove(csr2.c_str());
  std::filesystem::remove_all(dir);
}

TEST(OocServiceTest, CorruptOrTruncatedSnapshotFailsRecoveryCleanly) {
  const std::string dir = TempPath("ooc_recover_corrupt");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto edges = RmatEdges(29);
  const VertexId n =
      std::max<VertexId>(512, graph::ImpliedVertexCount(edges));
  util::ThreadPool pool;
  {
    auto service = MakeWalkService(edges, n, {}, &pool, &pool);
    ASSERT_TRUE(service->AttachWal(dir).ok);
    ASSERT_TRUE(service->Checkpoint().ok);
  }
  const std::string snapshot = dir + "/base.snapshot";
  const uint64_t full = std::filesystem::file_size(snapshot);
  const auto recover = [&]() {
    std::string error;
    auto service =
        RecoverOocWalkService(dir, {}, {}, &pool, &pool, nullptr, &error);
    if (service == nullptr) {
      EXPECT_FALSE(error.empty());
    }
    return service;
  };

  // Baseline sanity: the untouched directory recovers.
  ASSERT_NE(recover(), nullptr);

  // Payload corruption in the current-version snapshot: the streamed pass's
  // CRC check rejects it, and the v1 fallback cannot parse it either.
  FlipByte(snapshot, full / 2);
  EXPECT_EQ(recover(), nullptr);

  // Truncation sweep: every prefix fails cleanly.
  for (const uint64_t len : {uint64_t{0}, uint64_t{10}, full / 3, full - 1}) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    auto service = MakeWalkService(edges, n, {}, &pool, &pool);
    ASSERT_TRUE(service->AttachWal(dir).ok);
    ASSERT_TRUE(service->Checkpoint().ok);
    service.reset();
    std::filesystem::resize_file(snapshot, len);
    EXPECT_EQ(recover(), nullptr) << "length " << len;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bingo::walk
