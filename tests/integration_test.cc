// Cross-system integration tests: the full §6.1 evaluation workflow run
// against all four sampler stores, with ground-truth distribution audits
// after every round, plus failure-injection cases.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/core/radix_base.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/baseline_stores.h"

namespace bingo {
namespace {

using core::BingoStore;
using graph::Update;
using graph::VertexId;

graph::WeightedEdgeList MakeEdges(int scale, uint64_t num_edges, uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(scale, num_edges, rng);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(VertexId{1} << scale, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

// Ground-truth per-vertex distribution from a graph.
std::map<VertexId, double> GroundTruth(const graph::DynamicGraph& g, VertexId v) {
  std::map<VertexId, double> mass;
  double total = 0;
  for (const graph::Edge& e : g.Neighbors(v)) {
    mass[e.dst] += e.bias;
    total += e.bias;
  }
  for (auto& [dst, m] : mass) {
    m /= total;
  }
  return mass;
}

// Empirical per-vertex distribution via a store's SampleNeighbor.
template <typename Store>
bool StoreMatchesGroundTruth(const Store& store, VertexId v, uint64_t seed) {
  const auto truth = GroundTruth(store.Graph(), v);
  if (truth.empty()) {
    return true;
  }
  util::Rng rng(seed);
  std::map<VertexId, uint64_t> histogram;
  constexpr int kSamples = 60000;
  for (int s = 0; s < kSamples; ++s) {
    ++histogram[store.SampleNeighbor(v, rng)];
  }
  std::vector<uint64_t> counts;
  std::vector<double> expected;
  for (const auto& [dst, p] : truth) {
    const auto it = histogram.find(dst);
    counts.push_back(it == histogram.end() ? 0 : it->second);
    expected.push_back(p);
  }
  return util::ChiSquareTestPasses(counts, expected, 1e-5);
}

// The full paper workflow (rounds of updates + walks) against every store,
// with per-round distribution audits on probe vertices.
class WorkflowParamTest : public ::testing::TestWithParam<graph::UpdateKind> {};

TEST_P(WorkflowParamTest, AllStoresTrackTheGraphThroughRounds) {
  const graph::UpdateKind kind = GetParam();
  const auto edges = MakeEdges(8, 2600, 71);
  util::Rng rng(72);
  graph::UpdateWorkloadParams wparams;
  wparams.kind = kind;
  wparams.batch_size = 120;
  wparams.num_batches = 5;
  const auto workload = graph::BuildUpdateWorkload(edges, wparams, rng);
  const auto batches = graph::SplitIntoBatches(workload.updates, 120);

  util::ThreadPool pool(3);
  BingoStore bingo(graph::DynamicGraph::FromEdges(1 << 8, workload.initial_edges),
                   core::BingoConfig{}, &pool);
  walk::AliasStore alias(
      graph::DynamicGraph::FromEdges(1 << 8, workload.initial_edges), &pool);
  walk::ItsStore its(
      graph::DynamicGraph::FromEdges(1 << 8, workload.initial_edges), &pool);
  walk::ReservoirStore reservoir(
      graph::DynamicGraph::FromEdges(1 << 8, workload.initial_edges));

  uint64_t round = 0;
  for (const auto& batch : batches) {
    bingo.ApplyBatch(batch, &pool);
    alias.ApplyBatch(batch, &pool);
    its.ApplyBatch(batch, &pool);
    reservoir.ApplyBatch(batch);
    ASSERT_TRUE(bingo.CheckInvariants().empty()) << bingo.CheckInvariants();
    ASSERT_EQ(bingo.Graph().NumEdges(), alias.Graph().NumEdges());
    ASSERT_EQ(bingo.Graph().NumEdges(), its.Graph().NumEdges());
    ASSERT_EQ(bingo.Graph().NumEdges(), reservoir.Graph().NumEdges());

    // Probe a couple of vertices per round for distribution agreement.
    for (const VertexId v :
         {VertexId{0}, static_cast<VertexId>(100 + 7 * round)}) {
      if (bingo.Graph().Degree(v) == 0) {
        continue;
      }
      EXPECT_TRUE(StoreMatchesGroundTruth(bingo, v, 10 + round)) << "bingo v=" << v;
      EXPECT_TRUE(StoreMatchesGroundTruth(alias, v, 20 + round)) << "alias v=" << v;
      EXPECT_TRUE(StoreMatchesGroundTruth(its, v, 30 + round)) << "its v=" << v;
      EXPECT_TRUE(StoreMatchesGroundTruth(reservoir, v, 40 + round))
          << "reservoir v=" << v;
    }
    ++round;
  }
  EXPECT_EQ(round, 5u);

  // All stores still run every application after the churn.
  walk::WalkConfig cfg;
  cfg.walk_length = 20;
  cfg.num_walkers = 128;
  EXPECT_GT(walk::RunDeepWalk(bingo, cfg, &pool).total_steps, 0u);
  EXPECT_GT(walk::RunNode2vec(alias, cfg, {}, &pool).total_steps, 0u);
  EXPECT_GT(walk::RunPpr(its, cfg, 1.0 / 20.0, &pool).total_steps, 0u);
  EXPECT_GT(walk::RunSimpleSampling(reservoir, cfg, &pool).total_steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, WorkflowParamTest,
                         ::testing::Values(graph::UpdateKind::kInsertion,
                                           graph::UpdateKind::kDeletion,
                                           graph::UpdateKind::kMixed));

// Base-2 generalized-radix sampler and the main sampler imply identical
// distributions over the same adjacency.
TEST(IntegrationTest, RadixBase2MatchesMainSampler) {
  const auto edges = MakeEdges(7, 900, 81);
  BingoStore bingo(graph::DynamicGraph::FromEdges(1 << 7, edges));
  core::RadixBaseStore base2(graph::DynamicGraph::FromEdges(1 << 7, edges), 1);
  for (VertexId v = 0; v < (1 << 7); ++v) {
    if (bingo.Graph().Degree(v) == 0) {
      continue;
    }
    ASSERT_TRUE(StoreMatchesGroundTruth(base2, v, v + 1)) << "v=" << v;
  }
  EXPECT_TRUE(base2.CheckInvariants().empty());
}

// ------------------------------------------------------ failure injection --

TEST(FailureInjectionTest, SelfLoopsAreSampledLikeAnyEdge) {
  BingoStore store(graph::DynamicGraph(4));
  store.StreamingInsert(1, 1, 8.0);  // self loop
  store.StreamingInsert(1, 2, 8.0);
  util::Rng rng(5);
  int self = 0;
  for (int i = 0; i < 10000; ++i) {
    self += store.SampleNeighbor(1, rng) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(self / 10000.0, 0.5, 0.05);
  EXPECT_TRUE(store.CheckInvariants().empty());
}

TEST(FailureInjectionTest, MassDuplicateChurn) {
  // Many duplicates of a single endpoint pair; deletes must consume them
  // earliest-first and never corrupt the structure.
  BingoStore store(graph::DynamicGraph(4));
  for (int i = 0; i < 64; ++i) {
    store.StreamingInsert(0, 1, 1.0 + i);
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store.StreamingDelete(0, 1)) << i;
    ASSERT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  }
  EXPECT_FALSE(store.StreamingDelete(0, 1));
  EXPECT_EQ(store.Graph().NumEdges(), 0u);
}

TEST(FailureInjectionTest, BatchOfOnlyMissingDeletes) {
  BingoStore store(graph::DynamicGraph(8));
  graph::UpdateList batch;
  for (VertexId v = 0; v < 8; ++v) {
    batch.push_back({Update::Kind::kDelete, v, VertexId((v + 1) % 8), 0.0});
  }
  const auto result = store.ApplyBatch(batch);
  EXPECT_EQ(result.deleted, 0u);
  EXPECT_EQ(result.skipped_deletes, 8u);
  EXPECT_TRUE(store.CheckInvariants().empty());
}

TEST(FailureInjectionTest, AlternatingGrowShrinkAroundPowerOfTwo) {
  // Oscillating right at a capacity boundary stresses the pool's grow /
  // free-list recycling path.
  BingoStore store(graph::DynamicGraph(4));
  for (VertexId i = 0; i < 8; ++i) {
    store.StreamingInsert(0, 1 + (i % 3), static_cast<double>(i + 1));
  }
  for (int cycle = 0; cycle < 200; ++cycle) {
    store.StreamingInsert(0, 2, 5.0);  // degree 8 -> 9 (grow past 8)
    ASSERT_TRUE(store.StreamingDelete(0, 2));
    ASSERT_TRUE(store.CheckInvariants().empty()) << "cycle " << cycle;
  }
}

TEST(FailureInjectionTest, HugeBiasNextToTinyBias) {
  // 2^40 vs 1: forty-one groups, most one-element; the distribution must
  // still be exact and sampling must hit the tiny neighbor eventually.
  BingoStore store(graph::DynamicGraph(4));
  store.StreamingInsert(0, 1, std::ldexp(1.0, 40));
  store.StreamingInsert(0, 2, 1.0);
  ASSERT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  const auto implied =
      store.SamplerAt(0).ImpliedDistribution(store.Graph().Neighbors(0));
  EXPECT_NEAR(implied[0], std::ldexp(1.0, 40) / (std::ldexp(1.0, 40) + 1.0), 1e-12);
  EXPECT_NEAR(implied[1], 1.0 / (std::ldexp(1.0, 40) + 1.0), 1e-15);
}

TEST(FailureInjectionTest, EmptyBatchIsNoOp) {
  BingoStore store(graph::DynamicGraph(4));
  const auto result = store.ApplyBatch({});
  EXPECT_EQ(result.inserted + result.deleted + result.skipped_deletes, 0u);
}

TEST(FailureInjectionTest, WalksOnEmptyAndDisconnectedGraphs) {
  BingoStore empty(graph::DynamicGraph(16));
  walk::WalkConfig cfg;
  cfg.walk_length = 10;
  const auto result = walk::RunDeepWalk(empty, cfg, nullptr);
  EXPECT_EQ(result.total_steps, 0u);
  EXPECT_EQ(result.finished_walkers, 0u);

  // One component walks, the rest are isolated.
  BingoStore partial(graph::DynamicGraph(16));
  partial.StreamingInsert(0, 1, 1.0);
  partial.StreamingInsert(1, 0, 1.0);
  const auto partial_result = walk::RunDeepWalk(partial, cfg, nullptr);
  EXPECT_EQ(partial_result.finished_walkers, 2u);
  EXPECT_EQ(partial_result.total_steps, 20u);
}

}  // namespace
}  // namespace bingo
