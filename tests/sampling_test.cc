// Unit + property tests for the classical Monte Carlo samplers (§2.3).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sampling/alias_table.h"
#include "src/sampling/exact.h"
#include "src/sampling/its.h"
#include "src/sampling/rejection.h"
#include "src/sampling/reservoir.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace bingo::sampling {
namespace {

std::vector<double> MakeWeights(int pattern, std::size_t n) {
  std::vector<double> w(n);
  util::Rng rng(1000 + pattern);
  for (std::size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case 0:  // uniform
        w[i] = 1.0;
        break;
      case 1:  // linear ramp
        w[i] = static_cast<double>(i + 1);
        break;
      case 2:  // heavy skew
        w[i] = i == 0 ? 1000.0 : 1.0;
        break;
      case 3:  // random
        w[i] = 1.0 + rng.NextBounded(100);
        break;
      case 4:  // powers of two
        w[i] = std::ldexp(1.0, static_cast<int>(i % 10));
        break;
      default:
        w[i] = 1.0;
    }
  }
  return w;
}

// ------------------------------------------------------------- AliasTable --

class AliasTableParamTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AliasTableParamTest, ImpliedProbabilitiesMatchWeightsExactly) {
  const auto [pattern, size] = GetParam();
  const auto weights = MakeWeights(pattern, size);
  AliasTable table;
  table.Build(weights);
  const auto implied = table.ImpliedProbabilities();
  const auto expected = util::Normalize(weights);
  ASSERT_EQ(implied.size(), expected.size());
  for (std::size_t i = 0; i < implied.size(); ++i) {
    EXPECT_NEAR(implied[i], expected[i], 1e-9) << "pattern " << pattern
                                               << " index " << i;
  }
}

TEST_P(AliasTableParamTest, EmpiricalDistributionPassesChiSquare) {
  const auto [pattern, size] = GetParam();
  const auto weights = MakeWeights(pattern, size);
  AliasTable table;
  table.Build(weights);
  util::Rng rng(77);
  const auto counts =
      Histogram(weights.size(), 200000, [&] { return table.Sample(rng); });
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, util::Normalize(weights)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AliasTableParamTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(1, 2, 7, 64, 500)));

TEST(AliasTableTest, EmptyAndZeroWeightsAreSafe) {
  AliasTable table;
  table.Build({});
  EXPECT_TRUE(table.Empty());
  const std::vector<double> zeros(4, 0.0);
  table.Build(zeros);
  EXPECT_DOUBLE_EQ(table.TotalWeight(), 0.0);
}

TEST(AliasTableTest, SingleElementAlwaysSelected) {
  AliasTable table;
  table.Build(std::vector<double>{42.0});
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Sample(rng), 0u);
  }
}

TEST(AliasTableTest, ZeroWeightEntryIsNeverSampled) {
  AliasTable table;
  table.Build(std::vector<double>{1.0, 0.0, 3.0});
  util::Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(table.Sample(rng), 1u);
  }
}

// ------------------------------------------------------------- ItsSampler --

class ItsParamTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ItsParamTest, ImpliedProbabilitiesMatchWeights) {
  const auto [pattern, size] = GetParam();
  const auto weights = MakeWeights(pattern, size);
  ItsSampler its;
  its.Build(weights);
  const auto implied = its.ImpliedProbabilities();
  const auto expected = util::Normalize(weights);
  for (std::size_t i = 0; i < implied.size(); ++i) {
    EXPECT_NEAR(implied[i], expected[i], 1e-9);
  }
}

TEST_P(ItsParamTest, EmpiricalDistributionPassesChiSquare) {
  const auto [pattern, size] = GetParam();
  const auto weights = MakeWeights(pattern, size);
  ItsSampler its;
  its.Build(weights);
  util::Rng rng(88);
  const auto counts =
      Histogram(weights.size(), 200000, [&] { return its.Sample(rng); });
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, util::Normalize(weights)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ItsParamTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 2, 33, 256)));

TEST(ItsTest, AppendExtendsDistribution) {
  ItsSampler its;
  its.Build(std::vector<double>{1.0, 2.0});
  its.Append(3.0);
  EXPECT_EQ(its.Size(), 3u);
  EXPECT_DOUBLE_EQ(its.TotalWeight(), 6.0);
  EXPECT_DOUBLE_EQ(its.WeightAt(2), 3.0);
}

TEST(ItsTest, RemoveAtShiftsSuffix) {
  ItsSampler its;
  its.Build(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  its.RemoveAt(1);
  EXPECT_EQ(its.Size(), 3u);
  EXPECT_DOUBLE_EQ(its.TotalWeight(), 8.0);
  EXPECT_DOUBLE_EQ(its.WeightAt(0), 1.0);
  EXPECT_DOUBLE_EQ(its.WeightAt(1), 3.0);
  EXPECT_DOUBLE_EQ(its.WeightAt(2), 4.0);
}

// ------------------------------------------------------- RejectionSampler --

class RejectionParamTest : public ::testing::TestWithParam<int> {};

TEST_P(RejectionParamTest, EmpiricalDistributionPassesChiSquare) {
  const auto weights = MakeWeights(GetParam(), 40);
  RejectionSampler sampler;
  sampler.Build(weights);
  util::Rng rng(99);
  const auto counts =
      Histogram(weights.size(), 200000, [&] { return sampler.Sample(rng); });
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, util::Normalize(weights)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RejectionParamTest, ::testing::Values(0, 1, 2, 3));

TEST(RejectionTest, AppendAndRemoveMaintainAggregates) {
  RejectionSampler sampler;
  sampler.Build(std::vector<double>{1.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(sampler.MaxWeight(), 5.0);
  EXPECT_DOUBLE_EQ(sampler.TotalWeight(), 8.0);
  sampler.Append(9.0);
  EXPECT_DOUBLE_EQ(sampler.MaxWeight(), 9.0);
  sampler.RemoveAt(3);  // removes the 9.0 -> max must be recomputed
  EXPECT_DOUBLE_EQ(sampler.MaxWeight(), 5.0);
  EXPECT_DOUBLE_EQ(sampler.TotalWeight(), 8.0);
}

TEST(RejectionTest, ExpectedTrialsReflectsSkew) {
  RejectionSampler uniform;
  uniform.Build(MakeWeights(0, 100));
  EXPECT_NEAR(uniform.ExpectedTrials(), 1.0, 1e-9);
  RejectionSampler skewed;
  skewed.Build(MakeWeights(2, 100));  // one 1000, rest 1
  EXPECT_GT(skewed.ExpectedTrials(), 50.0);
}

// --------------------------------------------------------------- Reservoir --

class ReservoirParamTest : public ::testing::TestWithParam<int> {};

TEST_P(ReservoirParamTest, EmpiricalDistributionPassesChiSquare) {
  const auto weights = MakeWeights(GetParam(), 30);
  util::Rng rng(123);
  const auto counts = Histogram(weights.size(), 200000, [&] {
    return WeightedReservoirPick(weights, rng);
  });
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, util::Normalize(weights)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReservoirParamTest, ::testing::Values(0, 1, 2, 3, 4));

TEST(ReservoirTest, AllZeroWeightsReturnsSentinel) {
  const std::vector<double> zeros(5, 0.0);
  util::Rng rng(1);
  EXPECT_EQ(WeightedReservoirPick(zeros, rng), 0xFFFFFFFFu);
}

TEST(ReservoirTest, SkipsZeroWeightEntries) {
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(WeightedReservoirPick(weights, rng), 1u);
  }
}

// Cross-sampler agreement: all four methods must draw from the same
// distribution for the same weights.
TEST(CrossSamplerTest, AllMethodsAgree) {
  const auto weights = MakeWeights(3, 64);
  const auto expected = util::Normalize(weights);
  util::Rng rng(31337);

  AliasTable alias;
  alias.Build(weights);
  ItsSampler its;
  its.Build(weights);
  RejectionSampler rejection;
  rejection.Build(weights);

  constexpr uint64_t kSamples = 150000;
  const auto alias_counts =
      Histogram(weights.size(), kSamples, [&] { return alias.Sample(rng); });
  const auto its_counts =
      Histogram(weights.size(), kSamples, [&] { return its.Sample(rng); });
  const auto rejection_counts =
      Histogram(weights.size(), kSamples, [&] { return rejection.Sample(rng); });
  const auto reservoir_counts = Histogram(weights.size(), kSamples, [&] {
    return WeightedReservoirPick(weights, rng);
  });
  EXPECT_TRUE(util::ChiSquareTestPasses(alias_counts, expected));
  EXPECT_TRUE(util::ChiSquareTestPasses(its_counts, expected));
  EXPECT_TRUE(util::ChiSquareTestPasses(rejection_counts, expected));
  EXPECT_TRUE(util::ChiSquareTestPasses(reservoir_counts, expected));
}

}  // namespace
}  // namespace bingo::sampling
