// Tests for the walk engine, the four applications, the baseline stores,
// and the partitioned store.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/baseline_stores.h"
#include "src/walk/engine.h"
#include "src/walk/partitioned.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

graph::WeightedEdgeList SmallWeightedGraph(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2500, rng);
  graph::MakeUndirected(pairs);  // no dead ends in practice
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(256, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

graph::DynamicGraph MakeGraph(const graph::WeightedEdgeList& edges,
                              VertexId n = 256) {
  return graph::DynamicGraph::FromEdges(n, edges);
}

// ----------------------------------------------------------------- engine --

TEST(EngineTest, DeterministicAcrossThreadCounts) {
  const auto edges = SmallWeightedGraph(1);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.walk_length = 20;
  cfg.record_paths = true;
  util::ThreadPool pool(4);
  const auto serial = RunDeepWalk(store, cfg, nullptr);
  const auto parallel = RunDeepWalk(store, cfg, &pool);
  EXPECT_EQ(serial.total_steps, parallel.total_steps);
  ASSERT_EQ(serial.path_offsets, parallel.path_offsets);
  EXPECT_EQ(serial.paths, parallel.paths);
}

TEST(EngineTest, SteadyStateChunkBuffersAllocateNothing) {
  // The PR acceptance criterion: after a warm-up pass, repeated engine
  // walk calls lease every chunk buffer from the executor's scratch
  // MemoryPool free lists — zero fresh allocations. The engine's chunk
  // buffers have a DETERMINISTIC peak demand (reserved exactly once per
  // chunk, every chunk's buffer coexists until the stitch), so the
  // assertion is exact. Buffers with scheduling-dependent transient demand
  // (growth doublings in the superstep driver's outboxes, ephemeral visit
  // accumulators) are covered by the convergence test below.
  const auto edges = SmallWeightedGraph(4);
  BingoStore store(MakeGraph(edges));
  util::ThreadPool pool(4);
  WalkConfig cfg;
  cfg.walk_length = 20;
  cfg.record_paths = true;
  cfg.num_walkers = 2048;  // several chunks per call, not the serial path
  // Warm up: the first calls carve arena space for every size class used.
  for (int i = 0; i < 3; ++i) {
    RunDeepWalk(store, cfg, &pool);
  }
  const auto warm = pool.ScratchMemory().Stats();
  const std::size_t reserved = pool.ScratchMemory().ReservedBytes();
  for (int i = 0; i < 5; ++i) {
    RunDeepWalk(store, cfg, &pool);
  }
  const auto steady = pool.ScratchMemory().Stats();
  EXPECT_EQ(steady.FreshAllocations(), warm.FreshAllocations())
      << "steady-state walk calls must not take fresh memory for chunk "
         "buffers";
  EXPECT_GT(steady.free_list_hits, warm.free_list_hits);
  EXPECT_EQ(pool.ScratchMemory().ReservedBytes(), reserved);
  EXPECT_EQ(pool.ScratchMemory().LiveBytes(), 0u)
      << "every leased chunk buffer must be returned";
}

TEST(EngineTest, TransientScratchDemandConvergesToReuse) {
  // Two buffer families have scheduling-dependent peak demand: per-chunk
  // visit accumulators are EPHEMERAL (alive only while their chunk
  // executes, so the peak follows how many chunks overlap), and the
  // superstep driver's queues/outboxes transiently hold old+new blocks
  // while growing (concurrent shard growth stacks). Both are bounded by
  // workers + caller, so the pool must CONVERGE: once two consecutive
  // passes take no fresh memory, demand is provisioned and reuse is total.
  const auto edges = SmallWeightedGraph(4);
  BingoStore store(MakeGraph(edges));
  const PartitionedBingoStore sharded(edges, 256, 4);
  util::ThreadPool pool(4);
  WalkConfig cfg;
  cfg.walk_length = 20;
  cfg.record_paths = true;
  cfg.count_visits = true;
  cfg.num_walkers = 2048;
  uint64_t fresh_before = pool.ScratchMemory().Stats().FreshAllocations();
  int consecutive_clean = 0;
  for (int attempt = 0; attempt < 32 && consecutive_clean < 2; ++attempt) {
    RunDeepWalk(store, cfg, &pool);
    RunPartitionedDeepWalk(sharded, cfg, &pool);
    const uint64_t fresh_after =
        pool.ScratchMemory().Stats().FreshAllocations();
    consecutive_clean = fresh_after == fresh_before ? consecutive_clean + 1 : 0;
    fresh_before = fresh_after;
  }
  EXPECT_EQ(consecutive_clean, 2) << "scratch demand never stopped growing";
  EXPECT_EQ(pool.ScratchMemory().LiveBytes(), 0u);
}

TEST(EngineTest, PathsRespectLengthBound) {
  const auto edges = SmallWeightedGraph(2);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.walk_length = 10;
  cfg.record_paths = true;
  const auto result = RunDeepWalk(store, cfg, nullptr);
  ASSERT_EQ(result.path_offsets.size(), 257u);
  for (std::size_t w = 0; w < 256; ++w) {
    const uint64_t len = result.path_offsets[w + 1] - result.path_offsets[w];
    EXPECT_GE(len, 1u);
    EXPECT_LE(len, 11u);  // start + 10 steps
  }
}

TEST(EngineTest, PathsFollowExistingEdges) {
  const auto edges = SmallWeightedGraph(3);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.walk_length = 15;
  cfg.record_paths = true;
  const auto result = RunDeepWalk(store, cfg, nullptr);
  for (std::size_t w = 0; w < 256; ++w) {
    for (uint64_t i = result.path_offsets[w] + 1; i < result.path_offsets[w + 1];
         ++i) {
      EXPECT_TRUE(store.Graph().HasEdge(result.paths[i - 1], result.paths[i]))
          << "walker " << w;
    }
  }
}

TEST(EngineTest, VisitCountsMatchStepsPlusStarts) {
  const auto edges = SmallWeightedGraph(4);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.walk_length = 12;
  cfg.count_visits = true;
  const auto result = RunWalks(
      store.Graph().NumVertices(), cfg,
      internal::FirstOrderStepper<BingoStore>{store}, nullptr);
  const uint64_t total_visits =
      std::accumulate(result.visit_counts.begin(), result.visit_counts.end(),
                      uint64_t{0});
  EXPECT_EQ(total_visits, result.total_steps + 256);
}

TEST(EngineTest, ZeroVertexGraphProducesEmptyResult) {
  BingoStore store(graph::DynamicGraph(0));
  WalkConfig cfg;
  cfg.num_walkers = 5;  // walkers requested but nowhere to start
  cfg.walk_length = 10;
  cfg.record_paths = true;
  cfg.count_visits = true;
  const auto result = RunDeepWalk(store, cfg, nullptr);
  EXPECT_EQ(result.total_steps, 0u);
  EXPECT_EQ(result.finished_walkers, 0u);
  EXPECT_TRUE(result.paths.empty());
  ASSERT_EQ(result.path_offsets.size(), 6u);
  EXPECT_EQ(result.path_offsets.back(), 0u);
}

TEST(EngineTest, NumWalkersOverridesDefault) {
  const auto edges = SmallWeightedGraph(5);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.num_walkers = 10;
  cfg.walk_length = 5;
  cfg.record_paths = true;
  const auto result = RunDeepWalk(store, cfg, nullptr);
  EXPECT_EQ(result.path_offsets.size(), 11u);
}

// ------------------------------------------------------------- transitions --

// Aggregated transition frequencies out of one vertex across a big walk
// corpus must match the vertex's bias distribution.
TEST(TransitionTest, DeepWalkTransitionsMatchBiases) {
  const auto edges = SmallWeightedGraph(6);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.walk_length = 40;
  cfg.num_walkers = 4096;  // many walkers -> dense transition statistics
  cfg.record_paths = true;
  const auto result = RunDeepWalk(store, cfg, nullptr);

  // Pick the highest-degree vertex for statistics.
  VertexId hub = 0;
  for (VertexId v = 0; v < 256; ++v) {
    if (store.Graph().Degree(v) > store.Graph().Degree(hub)) {
      hub = v;
    }
  }
  std::map<VertexId, uint64_t> transitions;
  uint64_t total = 0;
  for (std::size_t w = 0; w < cfg.num_walkers; ++w) {
    for (uint64_t i = result.path_offsets[w];
         i + 1 < result.path_offsets[w + 1]; ++i) {
      if (result.paths[i] == hub) {
        ++transitions[result.paths[i + 1]];
        ++total;
      }
    }
  }
  ASSERT_GT(total, 5000u);
  // Expected: bias-proportional across hub's neighbors (neighbors are
  // unique after Canonicalize).
  const auto adj = store.Graph().Neighbors(hub);
  double bias_total = 0;
  for (const auto& e : adj) {
    bias_total += e.bias;
  }
  std::vector<uint64_t> counts;
  std::vector<double> expected;
  for (const auto& e : adj) {
    counts.push_back(transitions[e.dst]);
    expected.push_back(e.bias / bias_total);
  }
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected, 1e-4));
}

// ---------------------------------------------------------------- node2vec --

TEST(Node2vecTest, StepperDistributionMatchesSecondOrderProbabilities) {
  // Tiny fixed graph: cur = 0 with neighbors {1, 2, 3}; prev = 1;
  // edge (1, 2) exists so distance(1, 2) = 1; distance(1, 1) = 0;
  // distance(1, 3) = 2.
  graph::WeightedEdgeList edges = {
      {0, 1, 2.0}, {0, 2, 3.0}, {0, 3, 5.0}, {1, 2, 1.0}, {1, 0, 1.0}};
  BingoStore store(MakeGraph(edges, 4));
  Node2vecParams params;
  params.p = 0.5;
  params.q = 2.0;
  const double f_max = std::max({1.0 / params.p, 1.0, 1.0 / params.q});
  internal::Node2vecStepper<BingoStore> stepper{store, params, f_max};
  util::Rng rng(77);
  std::vector<uint64_t> counts(4, 0);
  constexpr int kSamples = 200000;
  for (int s = 0; s < kSamples; ++s) {
    const VertexId next = stepper.Next(0, 1, rng);
    ASSERT_NE(next, graph::kInvalidVertex);
    ++counts[next];
  }
  // Unnormalized: w * f -> 1: 2 * (1/p) = 4; 2: 3 * 1 = 3; 3: 5 * (1/q) = 2.5.
  std::vector<double> expected = {0.0, 4.0, 3.0, 2.5};
  const double total = 9.5;
  for (auto& e : expected) {
    e /= total;
  }
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected, 1e-4));
}

TEST(Node2vecTest, SmallPEncouragesBacktracking) {
  const auto edges = SmallWeightedGraph(7);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.walk_length = 30;
  cfg.num_walkers = 2000;
  cfg.record_paths = true;

  const auto count_backtracks = [&](double p) {
    Node2vecParams params;
    params.p = p;
    params.q = 1.0;
    const auto result = RunNode2vec(store, cfg, params, nullptr);
    uint64_t backtracks = 0;
    uint64_t steps = 0;
    for (std::size_t w = 0; w < cfg.num_walkers; ++w) {
      for (uint64_t i = result.path_offsets[w] + 2;
           i < result.path_offsets[w + 1]; ++i) {
        ++steps;
        backtracks += result.paths[i] == result.paths[i - 2] ? 1 : 0;
      }
    }
    return static_cast<double>(backtracks) / static_cast<double>(steps);
  };
  EXPECT_GT(count_backtracks(0.1), count_backtracks(10.0) * 1.5);
}

// Pathological (huge p, q): per-trial acceptance probability is ~1e-9, so
// all kMaxTrials rejection trials exhaust on essentially every draw. The
// stepper must fall back to an exact f-weighted draw over the adjacency
// instead of silently killing the walker (the old behavior, which biased
// corpora toward truncated walks).
TEST(Node2vecTest, RejectionExhaustionFallsBackToExactDraw) {
  // cur = 0 with neighbors {1, 2, 3, 4}; prev = 4 (edge 4 -> 0 exists, and
  // 4 is not adjacent to 1/2/3): candidates 1/2/3 are at distance 2
  // (f = 1/q), candidate 4 is prev (f = 1/p).
  graph::WeightedEdgeList edges = {
      {0, 1, 2.0}, {0, 2, 3.0}, {0, 3, 5.0}, {0, 4, 1.0}, {4, 0, 1.0}};
  BingoStore store(MakeGraph(edges, 8));
  Node2vecParams params;
  params.p = 1e9;
  params.q = 1e9;
  const double f_max = std::max({1.0 / params.p, 1.0, 1.0 / params.q});
  ASSERT_EQ(f_max, 1.0);
  internal::Node2vecStepper<BingoStore> stepper{store, params, f_max};
  util::Rng rng(123);
  std::vector<uint64_t> counts(5, 0);
  constexpr int kSamples = 100000;
  for (int s = 0; s < kSamples; ++s) {
    const VertexId next = stepper.Next(0, 4, rng);
    ASSERT_NE(next, graph::kInvalidVertex);  // regression: walker survives
    ++counts[next];
  }
  // Exact second-order distribution: weight * f, with the common 1e-9
  // factor cancelling -> {2, 3, 5, 1} / 11 over {1, 2, 3, 4}.
  std::vector<double> expected = {0.0, 2.0 / 11, 3.0 / 11, 5.0 / 11,
                                  1.0 / 11};
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected, 1e-4));
}

TEST(Node2vecTest, ExhaustedWalkerOnDeadEndStillRetires) {
  // cur = 1's only neighbor is prev = 0 with p huge: every trial rejects,
  // and the exact fallback draws the only neighbor (never kInvalidVertex).
  graph::WeightedEdgeList edges = {{0, 1, 1.0}, {1, 0, 1.0}};
  BingoStore store(MakeGraph(edges, 2));
  Node2vecParams params;
  params.p = 1e12;
  params.q = 1.0;
  internal::Node2vecStepper<BingoStore> stepper{store, params, 1.0};
  util::Rng rng(9);
  for (int s = 0; s < 100; ++s) {
    EXPECT_EQ(stepper.Next(1, 0, rng), 0u);
  }
}

TEST(Node2vecTest, FirstHopIsFirstOrder) {
  graph::WeightedEdgeList edges = {{0, 1, 1.0}};
  BingoStore store(MakeGraph(edges, 2));
  internal::Node2vecStepper<BingoStore> stepper{store, Node2vecParams{}, 2.0};
  util::Rng rng(1);
  EXPECT_EQ(stepper.Next(0, graph::kInvalidVertex, rng), 1u);
}

// --------------------------------------------------------------------- PPR --

TEST(PprTest, ExpectedWalkLengthMatchesStopProbability) {
  const auto edges = SmallWeightedGraph(8);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.walk_length = 80;  // cap becomes 80 * 16 inside RunPpr
  cfg.num_walkers = 20000;
  const auto result = RunPpr(store, cfg, 1.0 / 80.0, nullptr);
  const double mean_length = static_cast<double>(result.total_steps) /
                             static_cast<double>(cfg.num_walkers);
  // Geometric(1/80) expected value is 80; dead ends only shorten it.
  EXPECT_GT(mean_length, 60.0);
  EXPECT_LT(mean_length, 100.0);
  EXPECT_FALSE(result.visit_counts.empty());
}

TEST(PprTest, VisitCountsConcentrateAroundHubs) {
  const auto edges = SmallWeightedGraph(9);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.num_walkers = 4000;
  const auto result = RunPpr(store, cfg, 1.0 / 40.0, nullptr);
  // A power-law graph's most-visited vertex should far exceed the median.
  std::vector<uint32_t> sorted = result.visit_counts;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(sorted.back(), sorted[sorted.size() / 2] * 3);
}

// The 16x geometric-tail cap must saturate, not wrap: walk_length = 2^29
// would overflow to a cap of 0 steps (2^29 * 16 = 2^33 = 0 mod 2^32) and
// silently produce an empty PPR result.
TEST(PprTest, HugeWalkLengthSaturatesInsteadOfWrapping) {
  graph::WeightedEdgeList edges = {{0, 1, 1.0}, {1, 0, 1.0}};
  BingoStore store(MakeGraph(edges, 2));
  WalkConfig cfg;
  cfg.num_walkers = 64;
  cfg.walk_length = uint32_t{1} << 29;
  const auto result = RunPpr(store, cfg, 0.5, nullptr);
  EXPECT_GT(result.total_steps, 0u);  // stop probability ends walks, not cap
}

// ------------------------------------------------------ start-vertex mode --

TEST(EngineTest, StartVertexOverrideStartsEveryWalkerThere) {
  const auto edges = SmallWeightedGraph(15);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.num_walkers = 50;
  cfg.walk_length = 8;
  cfg.record_paths = true;
  cfg.start_vertex = 7;
  const auto result = RunDeepWalk(store, cfg, nullptr);
  ASSERT_EQ(result.path_offsets.size(), 51u);
  for (std::size_t w = 0; w < 50; ++w) {
    EXPECT_EQ(result.paths[result.path_offsets[w]], 7u) << "walker " << w;
  }
}

// An out-of-range start vertex yields an empty (but well-formed) result on
// both execution models rather than out-of-bounds visit/path writes.
TEST(EngineTest, OutOfRangeStartVertexProducesEmptyResult) {
  const auto edges = SmallWeightedGraph(16);
  BingoStore store(MakeGraph(edges));
  WalkConfig cfg;
  cfg.num_walkers = 5;
  cfg.walk_length = 8;
  cfg.record_paths = true;
  cfg.count_visits = true;
  cfg.start_vertex = 100000;
  const auto engine = RunDeepWalk(store, cfg, nullptr);
  EXPECT_EQ(engine.total_steps, 0u);
  EXPECT_TRUE(engine.paths.empty());
  EXPECT_TRUE(engine.visit_counts.empty());

  PartitionedBingoStore partitioned(edges, 256, 4);
  const auto superstep = RunPartitionedDeepWalk(partitioned, cfg, nullptr);
  EXPECT_EQ(superstep.total_steps, 0u);
  EXPECT_TRUE(superstep.paths.empty());
}

// ----------------------------------------------------------- simple walks --

TEST(SimpleSamplingTest, TransitionsAreUniform) {
  graph::WeightedEdgeList edges;
  for (VertexId i = 1; i <= 10; ++i) {
    edges.push_back({0, i, static_cast<double>(i * i)});  // biases ignored
    edges.push_back({i, 0, 1.0});
  }
  BingoStore store(MakeGraph(edges, 16));
  WalkConfig cfg;
  cfg.num_walkers = 30000;
  cfg.walk_length = 1;
  cfg.record_paths = true;
  // All walkers start on vertices 0..15; only those at 0 have 10 choices.
  const auto result = RunSimpleSampling(store, cfg, nullptr);
  std::vector<uint64_t> counts(11, 0);
  uint64_t total = 0;
  for (std::size_t w = 0; w < cfg.num_walkers; ++w) {
    if (result.paths[result.path_offsets[w]] == 0 &&
        result.path_offsets[w + 1] - result.path_offsets[w] == 2) {
      ++counts[result.paths[result.path_offsets[w] + 1]];
      ++total;
    }
  }
  ASSERT_GT(total, 1000u);
  std::vector<double> expected(11, 0.0);
  for (VertexId i = 1; i <= 10; ++i) {
    expected[i] = 0.1;
  }
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected, 1e-4));
}

// --------------------------------------------------------- baseline stores --

template <typename Store>
void ExpectStoreSamplesBiases(Store& store, VertexId hub,
                              const std::vector<double>& weights) {
  util::Rng rng(55);
  std::vector<uint64_t> counts(weights.size(), 0);
  for (int s = 0; s < 200000; ++s) {
    const VertexId dst = store.SampleNeighbor(hub, rng);
    ASSERT_NE(dst, graph::kInvalidVertex);
    ++counts[dst - 1];
  }
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, util::Normalize(weights), 1e-4));
}

class BaselineStoreTest : public ::testing::Test {
 protected:
  graph::WeightedEdgeList StarEdges() {
    graph::WeightedEdgeList edges;
    weights_.clear();
    for (VertexId i = 1; i <= 25; ++i) {
      const double w = 1.0 + (i % 7) * 3.0;
      edges.push_back({0, i, w});
      weights_.push_back(w);
    }
    return edges;
  }
  std::vector<double> weights_;
};

TEST_F(BaselineStoreTest, AliasStoreSamplesBiases) {
  AliasStore store(MakeGraph(StarEdges(), 32));
  ExpectStoreSamplesBiases(store, 0, weights_);
}

TEST_F(BaselineStoreTest, ItsStoreSamplesBiases) {
  ItsStore store(MakeGraph(StarEdges(), 32));
  ExpectStoreSamplesBiases(store, 0, weights_);
}

TEST_F(BaselineStoreTest, ReservoirStoreSamplesBiases) {
  ReservoirStore store(MakeGraph(StarEdges(), 32));
  ExpectStoreSamplesBiases(store, 0, weights_);
}

TEST_F(BaselineStoreTest, StoresReflectStreamingUpdates) {
  // After inserting a dominating edge and deleting the rest, every store
  // must route all samples to the new edge.
  const auto run = [](auto& store) {
    store.StreamingInsert(1, 2, 100.0);
    util::Rng rng(5);
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(store.SampleNeighbor(1, rng), 2u);
    }
    EXPECT_TRUE(store.StreamingDelete(1, 2));
    EXPECT_EQ(store.SampleNeighbor(1, rng), graph::kInvalidVertex);
  };
  AliasStore alias(MakeGraph(StarEdges(), 32));
  run(alias);
  ItsStore its(MakeGraph(StarEdges(), 32));
  run(its);
  ReservoirStore reservoir(MakeGraph(StarEdges(), 32));
  run(reservoir);
}

TEST_F(BaselineStoreTest, ApplyBatchMatchesStreamingEndState) {
  graph::UpdateList updates;
  updates.push_back({graph::Update::Kind::kInsert, 0, 30, 9.0});
  updates.push_back({graph::Update::Kind::kDelete, 0, 1, 0.0});
  updates.push_back({graph::Update::Kind::kInsert, 1, 5, 4.0});

  AliasStore batched(MakeGraph(StarEdges(), 32));
  AliasStore streamed(MakeGraph(StarEdges(), 32));
  batched.ApplyBatch(updates);
  for (const auto& u : updates) {
    if (u.kind == graph::Update::Kind::kInsert) {
      streamed.StreamingInsert(u.src, u.dst, u.bias);
    } else {
      streamed.StreamingDelete(u.src, u.dst);
    }
  }
  EXPECT_EQ(batched.Graph().NumEdges(), streamed.Graph().NumEdges());
  EXPECT_TRUE(batched.Graph().HasEdge(0, 30));
  EXPECT_FALSE(batched.Graph().HasEdge(0, 1));
  EXPECT_TRUE(batched.Graph().HasEdge(1, 5));
}

// All four stores draw the same distribution on the same graph.
TEST(StoreAgreementTest, AllStoresAgreeOnTransitions) {
  const auto edges = SmallWeightedGraph(10);
  VertexId hub = 0;
  {
    BingoStore probe(MakeGraph(edges));
    for (VertexId v = 0; v < 256; ++v) {
      if (probe.Graph().Degree(v) > probe.Graph().Degree(hub)) {
        hub = v;
      }
    }
  }
  const auto histogram_for = [&](auto& store) {
    util::Rng rng(999);
    std::map<VertexId, uint64_t> counts;
    for (int s = 0; s < 120000; ++s) {
      ++counts[store.SampleNeighbor(hub, rng)];
    }
    return counts;
  };
  BingoStore bingo(MakeGraph(edges));
  AliasStore alias(MakeGraph(edges));
  ItsStore its(MakeGraph(edges));
  ReservoirStore reservoir(MakeGraph(edges));

  const auto adj = bingo.Graph().Neighbors(hub);
  double total = 0;
  for (const auto& e : adj) {
    total += e.bias;
  }
  std::vector<double> expected;
  for (const auto& e : adj) {
    expected.push_back(e.bias / total);
  }
  const std::vector<std::map<VertexId, uint64_t>> histograms = {
      histogram_for(bingo), histogram_for(alias), histogram_for(its),
      histogram_for(reservoir)};
  for (const auto& counts_map : histograms) {
    std::vector<uint64_t> counts;
    for (const auto& e : adj) {
      const auto it = counts_map.find(e.dst);
      counts.push_back(it == counts_map.end() ? 0 : it->second);
    }
    EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected, 1e-4));
  }
}

// ------------------------------------------------------- partitioned store --

TEST(PartitionedTest, ShardsPassInvariantsAndSampleCorrectly) {
  const auto edges = SmallWeightedGraph(11);
  PartitionedBingoStore store(edges, 256, 4);
  EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();

  // Per-vertex sampling distribution equals the unpartitioned store's.
  BingoStore reference(MakeGraph(edges));
  VertexId hub = 0;
  for (VertexId v = 0; v < 256; ++v) {
    if (reference.Graph().Degree(v) > reference.Graph().Degree(hub)) {
      hub = v;
    }
  }
  const auto adj = reference.Graph().Neighbors(hub);
  double total = 0;
  for (const auto& e : adj) {
    total += e.bias;
  }
  std::vector<double> expected;
  for (const auto& e : adj) {
    expected.push_back(e.bias / total);
  }
  util::Rng rng(31);
  std::map<VertexId, uint64_t> histogram;
  for (int s = 0; s < 150000; ++s) {
    ++histogram[store.SampleNeighbor(hub, rng)];
  }
  std::vector<uint64_t> counts;
  for (const auto& e : adj) {
    counts.push_back(histogram[e.dst]);
  }
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected, 1e-4));
}

TEST(PartitionedTest, UpdatesRouteToOwningShard) {
  const auto edges = SmallWeightedGraph(12);
  PartitionedBingoStore store(edges, 256, 3);
  store.StreamingInsert(5, 9, 7.0);
  EXPECT_TRUE(store.Shard(store.ShardOf(5)).Graph().HasEdge(5, 9));
  EXPECT_TRUE(store.StreamingDelete(5, 9));
  EXPECT_FALSE(store.Shard(store.ShardOf(5)).Graph().HasEdge(5, 9));

  graph::UpdateList batch;
  for (VertexId v = 0; v < 30; ++v) {
    batch.push_back({graph::Update::Kind::kInsert, v, (v + 1) % 256, 2.0});
  }
  const auto result = store.ApplyBatch(batch);
  EXPECT_EQ(result.inserted, 30u);
  EXPECT_TRUE(store.CheckInvariants().empty());
}

TEST(PartitionedTest, WalkerTransferWalksMatchExpectedVolume) {
  const auto edges = SmallWeightedGraph(13);
  PartitionedBingoStore store(edges, 256, 4);
  WalkConfig cfg;
  cfg.walk_length = 20;
  const auto result = RunPartitionedDeepWalk(store, cfg, nullptr);
  // The undirected R-MAT graph has few dead ends; most walkers should walk
  // most of their length, and cross-shard transfers must dominate with
  // round-robin partitioning.
  EXPECT_GT(result.total_steps, 256u * 10);
  EXPECT_GT(result.walker_migrations, result.total_steps / 2);
  EXPECT_GE(result.supersteps, 20u);
}

TEST(PartitionedTest, ShardCountsPreserveEdgeTotals) {
  const auto edges = SmallWeightedGraph(14);
  for (const int shards : {1, 2, 5, 8}) {
    PartitionedBingoStore store(edges, 256, shards);
    uint64_t total = 0;
    for (int s = 0; s < shards; ++s) {
      total += store.Shard(s).Graph().NumEdges();
    }
    EXPECT_EQ(total, edges.size());
  }
}

}  // namespace
}  // namespace bingo::walk
