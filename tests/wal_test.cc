// Unit tests for the write-ahead log: framing, CRCs, prefix replay under
// torn tails and corruption, and append-after-recovery.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/wal.h"
#include "src/util/rng.h"

namespace bingo::core {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

graph::UpdateList MakeBatch(uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  graph::UpdateList updates;
  for (std::size_t i = 0; i < count; ++i) {
    graph::Update u;
    u.kind = rng.NextBool(0.3) ? graph::Update::Kind::kDelete
                               : graph::Update::Kind::kInsert;
    u.src = static_cast<graph::VertexId>(rng.NextBounded(64));
    u.dst = static_cast<graph::VertexId>(rng.NextBounded(64));
    u.bias = 1.0 + rng.NextUnit() * 7.0;
    updates.push_back(u);
  }
  return updates;
}

bool SameUpdates(const graph::UpdateList& a, const graph::UpdateList& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].src != b[i].src || a[i].dst != b[i].dst ||
        a[i].bias != b[i].bias) {
      return false;
    }
  }
  return true;
}

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("wal_roundtrip.log");
  std::vector<graph::UpdateList> batches = {MakeBatch(1, 5), MakeBatch(2, 0),
                                            MakeBatch(3, 17)};
  {
    auto wal = WalWriter::Create(path, 0);
    ASSERT_NE(wal, nullptr);
    for (const auto& b : batches) {
      ASSERT_TRUE(wal->Append(b));
    }
    ASSERT_TRUE(wal->Sync());
    EXPECT_EQ(wal->LastSeq(), 3u);
    EXPECT_EQ(wal->BytesWritten(), FileSize(path));
  }
  std::vector<std::pair<uint64_t, graph::UpdateList>> replayed;
  const WalReplayResult result = ReplayWal(
      path, 0, [&](uint64_t seq, const graph::UpdateList& batch) {
        replayed.emplace_back(seq, batch);
      });
  EXPECT_TRUE(result.opened);
  EXPECT_TRUE(result.header_ok);
  EXPECT_FALSE(result.truncated_tail);
  EXPECT_EQ(result.records, 3u);
  EXPECT_EQ(result.records_replayed, 3u);
  EXPECT_EQ(result.updates_replayed, 22u);
  EXPECT_EQ(result.last_seq, 3u);
  EXPECT_EQ(result.valid_bytes, FileSize(path));
  ASSERT_EQ(replayed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(replayed[i].first, i + 1);
    EXPECT_TRUE(SameUpdates(replayed[i].second, batches[i]));
  }
  std::remove(path.c_str());
}

TEST(WalTest, ReplayAfterSeqSkipsCoveredRecords) {
  const std::string path = TempPath("wal_afterseq.log");
  auto wal = WalWriter::Create(path, 10);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->Append(MakeBatch(1, 3)));  // seq 11
  ASSERT_TRUE(wal->Append(MakeBatch(2, 4)));  // seq 12
  wal.reset();

  const WalReplayResult all = ReplayWal(path, 10, nullptr);
  EXPECT_EQ(all.records_replayed, 2u);
  const WalReplayResult tail = ReplayWal(path, 11, nullptr);
  EXPECT_EQ(tail.records, 2u);
  EXPECT_EQ(tail.records_replayed, 1u);
  EXPECT_EQ(tail.updates_replayed, 4u);
  const WalReplayResult none = ReplayWal(path, 12, nullptr);
  EXPECT_EQ(none.records_replayed, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, TruncatedTailReplaysExactPrefixAndResumes) {
  const std::string path = TempPath("wal_torn.log");
  std::vector<graph::UpdateList> batches = {MakeBatch(4, 8), MakeBatch(5, 8),
                                            MakeBatch(6, 8)};
  {
    auto wal = WalWriter::Create(path, 0);
    ASSERT_NE(wal, nullptr);
    for (const auto& b : batches) {
      ASSERT_TRUE(wal->Append(b));
    }
  }
  // Tear the last record mid-payload: a crash during the third append.
  const uint64_t full = FileSize(path);
  std::filesystem::resize_file(path, full - 5);

  int replayed = 0;
  const WalReplayResult result = ReplayWal(
      path, 0, [&](uint64_t seq, const graph::UpdateList& batch) {
        ASSERT_LE(seq, 2u);
        EXPECT_TRUE(SameUpdates(batch, batches[seq - 1]));
        ++replayed;
      });
  EXPECT_TRUE(result.header_ok);
  EXPECT_TRUE(result.truncated_tail);
  EXPECT_EQ(result.records, 2u);
  EXPECT_EQ(replayed, 2);
  EXPECT_LT(result.valid_bytes, full - 5);

  // Resume: the torn tail is dropped and appends continue at seq 3.
  auto wal = WalWriter::OpenForAppend(path, result);
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->LastSeq(), 2u);
  const graph::UpdateList fresh = MakeBatch(7, 6);
  ASSERT_TRUE(wal->Append(fresh));
  wal.reset();

  const WalReplayResult again = ReplayWal(path, 2, nullptr);
  EXPECT_FALSE(again.truncated_tail);
  EXPECT_EQ(again.records, 3u);
  EXPECT_EQ(again.records_replayed, 1u);
  EXPECT_EQ(again.updates_replayed, 6u);
  std::remove(path.c_str());
}

TEST(WalTest, CorruptPayloadStopsReplayAtPrefix) {
  const std::string path = TempPath("wal_corrupt.log");
  {
    auto wal = WalWriter::Create(path, 0);
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(wal->Append(MakeBatch(8, 10)));
    ASSERT_TRUE(wal->Append(MakeBatch(9, 10)));
  }
  // Flip one byte in the middle of the second record's payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4, std::ios::end);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-4, std::ios::end);
    byte ^= 0x5A;
    f.write(&byte, 1);
  }
  const WalReplayResult result = ReplayWal(path, 0, nullptr);
  EXPECT_TRUE(result.header_ok);
  EXPECT_TRUE(result.truncated_tail);
  EXPECT_EQ(result.records, 1u);
  EXPECT_EQ(result.last_seq, 1u);
  std::remove(path.c_str());
}

TEST(WalTest, MissingTornAndCorruptHeaders) {
  const WalReplayResult missing = ReplayWal(TempPath("wal_nope.log"), 0, nullptr);
  EXPECT_FALSE(missing.opened);

  // Torn creation: fewer bytes than a file header.
  const std::string torn_path = TempPath("wal_tornhdr.log");
  {
    std::ofstream out(torn_path, std::ios::binary);
    out.write("BINGOWA", 7);
  }
  const WalReplayResult torn = ReplayWal(torn_path, 0, nullptr);
  EXPECT_TRUE(torn.opened);
  EXPECT_FALSE(torn.header_ok);
  EXPECT_TRUE(torn.header_torn);
  EXPECT_EQ(WalWriter::OpenForAppend(torn_path, torn), nullptr);

  // Full-size but invalid header: corruption, not a torn create.
  const std::string bad_path = TempPath("wal_badhdr.log");
  {
    std::ofstream out(bad_path, std::ios::binary);
    const std::string junk(64, '\x42');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  const WalReplayResult bad = ReplayWal(bad_path, 0, nullptr);
  EXPECT_TRUE(bad.opened);
  EXPECT_FALSE(bad.header_ok);
  EXPECT_FALSE(bad.header_torn);
  std::remove(torn_path.c_str());
  std::remove(bad_path.c_str());
}

TEST(WalTest, FsyncOnCommitAppends) {
  const std::string path = TempPath("wal_fsync.log");
  WalOptions options;
  options.fsync_on_commit = true;
  auto wal = WalWriter::Create(path, 0, options);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->Append(MakeBatch(10, 3)));
  ASSERT_TRUE(wal->Append(MakeBatch(11, 3)));
  wal.reset();
  const WalReplayResult result = ReplayWal(path, 0, nullptr);
  EXPECT_EQ(result.records, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bingo::core
