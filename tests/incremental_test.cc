// Tests for incremental walk-corpus maintenance (Wharf/FIRM-style walk
// tracking with Bingo's O(K) update + O(1) resampling underneath).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/stats.h"
#include "src/walk/incremental.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::Update;
using graph::VertexId;

graph::WeightedEdgeList DenseEdges(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2600, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(256, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

IncrementalWalkCorpus::Config SmallConfig() {
  IncrementalWalkCorpus::Config config;
  config.walk_length = 24;
  return config;
}

TEST(IncrementalTest, GeneratedCorpusIsValid) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(1)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);
  EXPECT_EQ(corpus.NumWalks(), 256u);
  EXPECT_GT(corpus.TotalSteps(), 0u);
  EXPECT_TRUE(corpus.CheckWalksValid(store).empty())
      << corpus.CheckWalksValid(store);
}

TEST(IncrementalTest, GenerateIsDeterministicAcrossThreadCounts) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(2)));
  util::ThreadPool pool(4);
  IncrementalWalkCorpus serial(store, SmallConfig());
  serial.Generate(store, nullptr);
  IncrementalWalkCorpus parallel(store, SmallConfig());
  parallel.Generate(store, &pool);
  ASSERT_EQ(serial.NumWalks(), parallel.NumWalks());
  for (uint64_t w = 0; w < serial.NumWalks(); ++w) {
    EXPECT_EQ(serial.Walk(w), parallel.Walk(w)) << "walk " << w;
  }
}

TEST(IncrementalTest, RepairedCorpusStaysValidUnderChurn) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(3)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);

  util::Rng rng(9);
  for (int round = 0; round < 10; ++round) {
    graph::UpdateList updates;
    for (int i = 0; i < 60; ++i) {
      const auto u = static_cast<VertexId>(rng.NextBounded(256));
      if (rng.NextBool(0.5)) {
        updates.push_back({Update::Kind::kInsert, u,
                           static_cast<VertexId>(rng.NextBounded(256)),
                           1.0 + rng.NextBounded(32)});
      } else if (store.Graph().Degree(u) > 0) {
        const auto adj = store.Graph().Neighbors(u);
        updates.push_back({Update::Kind::kDelete, u,
                           adj[rng.NextBounded(adj.size())].dst, 0.0});
      }
    }
    const auto stats = corpus.ApplyUpdates(store, updates);
    EXPECT_GE(stats.candidate_walks, stats.walks_repaired);
    ASSERT_TRUE(corpus.CheckWalksValid(store).empty())
        << "round " << round << ": " << corpus.CheckWalksValid(store);
    ASSERT_TRUE(store.CheckInvariants().empty());
  }
}

TEST(IncrementalTest, UntouchedWalksAreNotModified) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(4)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);

  // Snapshot, then update a single vertex far from some walks.
  std::vector<std::vector<VertexId>> before;
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    before.push_back(corpus.Walk(w));
  }
  graph::UpdateList updates;
  updates.push_back({Update::Kind::kInsert, 7, 11, 50.0});
  const auto stats = corpus.ApplyUpdates(store, updates);
  EXPECT_GT(stats.walks_repaired, 0u);  // vertex 7 is on some walks

  uint64_t unchanged = 0;
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    const bool visits_7 =
        std::find(before[w].begin(), before[w].end(), VertexId{7}) !=
        before[w].end();
    if (!visits_7) {
      EXPECT_EQ(corpus.Walk(w), before[w]) << "walk " << w;
      ++unchanged;
    }
  }
  EXPECT_GT(unchanged, 0u);
}

TEST(IncrementalTest, RepairStartsAtFirstTouchedVisit) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(5)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);
  std::vector<std::vector<VertexId>> before;
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    before.push_back(corpus.Walk(w));
  }
  graph::UpdateList updates;
  updates.push_back({Update::Kind::kInsert, 42, 43, 99.0});
  corpus.ApplyUpdates(store, updates);
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    const auto& old_walk = before[w];
    const auto it = std::find(old_walk.begin(), old_walk.end(), VertexId{42});
    if (it == old_walk.end()) {
      continue;
    }
    const std::size_t first = static_cast<std::size_t>(it - old_walk.begin());
    const auto& new_walk = corpus.Walk(w);
    ASSERT_GE(new_walk.size(), first + 1);
    for (std::size_t p = 0; p <= first; ++p) {
      EXPECT_EQ(new_walk[p], old_walk[p]) << "walk " << w << " pos " << p;
    }
  }
}

TEST(IncrementalTest, RepairedSuffixesFollowNewDistribution) {
  // Make one vertex's distribution collapse onto a single new neighbor; all
  // repaired walks must leave that vertex through the new edge afterwards.
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(6)));
  IncrementalWalkCorpus::Config config = SmallConfig();
  config.num_walks = 2048;  // denser statistics
  IncrementalWalkCorpus corpus(store, config);
  corpus.Generate(store);

  const VertexId hub = [&] {
    VertexId best = 0;
    for (VertexId v = 0; v < 256; ++v) {
      if (store.Graph().Degree(v) > store.Graph().Degree(best)) {
        best = v;
      }
    }
    return best;
  }();
  // Overwhelm the hub's mass with one huge edge.
  graph::UpdateList updates;
  updates.push_back({Update::Kind::kInsert, hub, 0, 1e9});
  corpus.ApplyUpdates(store, updates);

  uint64_t exits = 0;
  uint64_t to_new_edge = 0;
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    const auto& walk = corpus.Walk(w);
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      if (walk[i] == hub) {
        ++exits;
        to_new_edge += walk[i + 1] == 0 ? 1 : 0;
      }
    }
  }
  ASSERT_GT(exits, 50u);
  EXPECT_GT(static_cast<double>(to_new_edge) / static_cast<double>(exits), 0.95);
}

TEST(IncrementalTest, IndexRebuildCompactsStaleEntries) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(7)));
  IncrementalWalkCorpus::Config config = SmallConfig();
  config.index_rebuild_threshold = 0.05;  // rebuild aggressively
  IncrementalWalkCorpus corpus(store, config);
  corpus.Generate(store);
  util::Rng rng(11);
  bool saw_rebuild = false;
  for (int round = 0; round < 15; ++round) {
    graph::UpdateList updates;
    for (int i = 0; i < 40; ++i) {
      updates.push_back({Update::Kind::kInsert,
                         static_cast<VertexId>(rng.NextBounded(256)),
                         static_cast<VertexId>(rng.NextBounded(256)),
                         1.0 + rng.NextBounded(8)});
    }
    saw_rebuild = corpus.ApplyUpdates(store, updates).index_rebuilt || saw_rebuild;
    ASSERT_TRUE(corpus.CheckWalksValid(store).empty());
  }
  EXPECT_TRUE(saw_rebuild);
}

TEST(IncrementalTest, MemoryAccountingIsPositive) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(8)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);
  EXPECT_GT(corpus.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace bingo::walk
