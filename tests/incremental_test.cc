// Tests for incremental walk-corpus maintenance (Wharf/FIRM-style walk
// tracking with Bingo's O(K) update + O(1) resampling underneath).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/stats.h"
#include "src/walk/incremental.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::Update;
using graph::VertexId;

graph::WeightedEdgeList DenseEdges(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2600, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(256, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

IncrementalWalkCorpus::Config SmallConfig() {
  IncrementalWalkCorpus::Config config;
  config.walk_length = 24;
  return config;
}

TEST(IncrementalTest, GeneratedCorpusIsValid) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(1)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);
  EXPECT_EQ(corpus.NumWalks(), 256u);
  EXPECT_GT(corpus.TotalSteps(), 0u);
  EXPECT_TRUE(corpus.CheckWalksValid(store).empty())
      << corpus.CheckWalksValid(store);
}

TEST(IncrementalTest, GenerateIsDeterministicAcrossThreadCounts) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(2)));
  util::ThreadPool pool(4);
  IncrementalWalkCorpus serial(store, SmallConfig());
  serial.Generate(store, nullptr);
  IncrementalWalkCorpus parallel(store, SmallConfig());
  parallel.Generate(store, &pool);
  ASSERT_EQ(serial.NumWalks(), parallel.NumWalks());
  for (uint64_t w = 0; w < serial.NumWalks(); ++w) {
    EXPECT_EQ(serial.Walk(w), parallel.Walk(w)) << "walk " << w;
  }
}

TEST(IncrementalTest, RepairedCorpusStaysValidUnderChurn) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(3)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);

  util::Rng rng(9);
  for (int round = 0; round < 10; ++round) {
    graph::UpdateList updates;
    for (int i = 0; i < 60; ++i) {
      const auto u = static_cast<VertexId>(rng.NextBounded(256));
      if (rng.NextBool(0.5)) {
        updates.push_back({Update::Kind::kInsert, u,
                           static_cast<VertexId>(rng.NextBounded(256)),
                           1.0 + rng.NextBounded(32)});
      } else if (store.Graph().Degree(u) > 0) {
        const auto adj = store.Graph().Neighbors(u);
        updates.push_back({Update::Kind::kDelete, u,
                           adj[rng.NextBounded(adj.size())].dst, 0.0});
      }
    }
    const auto stats = corpus.ApplyUpdates(store, updates);
    EXPECT_GE(stats.candidate_walks, stats.walks_repaired);
    ASSERT_TRUE(corpus.CheckWalksValid(store).empty())
        << "round " << round << ": " << corpus.CheckWalksValid(store);
    ASSERT_TRUE(store.CheckInvariants().empty());
  }
}

TEST(IncrementalTest, UntouchedWalksAreNotModified) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(4)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);

  // Snapshot, then update a single vertex far from some walks.
  std::vector<std::vector<VertexId>> before;
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    before.push_back(corpus.Walk(w));
  }
  graph::UpdateList updates;
  updates.push_back({Update::Kind::kInsert, 7, 11, 50.0});
  const auto stats = corpus.ApplyUpdates(store, updates);
  EXPECT_GT(stats.walks_repaired, 0u);  // vertex 7 is on some walks

  uint64_t unchanged = 0;
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    const bool visits_7 =
        std::find(before[w].begin(), before[w].end(), VertexId{7}) !=
        before[w].end();
    if (!visits_7) {
      EXPECT_EQ(corpus.Walk(w), before[w]) << "walk " << w;
      ++unchanged;
    }
  }
  EXPECT_GT(unchanged, 0u);
}

TEST(IncrementalTest, RepairStartsAtFirstTouchedVisit) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(5)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);
  std::vector<std::vector<VertexId>> before;
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    before.push_back(corpus.Walk(w));
  }
  graph::UpdateList updates;
  updates.push_back({Update::Kind::kInsert, 42, 43, 99.0});
  corpus.ApplyUpdates(store, updates);
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    const auto& old_walk = before[w];
    const auto it = std::find(old_walk.begin(), old_walk.end(), VertexId{42});
    if (it == old_walk.end()) {
      continue;
    }
    const std::size_t first = static_cast<std::size_t>(it - old_walk.begin());
    const auto& new_walk = corpus.Walk(w);
    ASSERT_GE(new_walk.size(), first + 1);
    for (std::size_t p = 0; p <= first; ++p) {
      EXPECT_EQ(new_walk[p], old_walk[p]) << "walk " << w << " pos " << p;
    }
  }
}

TEST(IncrementalTest, RepairedSuffixesFollowNewDistribution) {
  // Make one vertex's distribution collapse onto a single new neighbor; all
  // repaired walks must leave that vertex through the new edge afterwards.
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(6)));
  IncrementalWalkCorpus::Config config = SmallConfig();
  config.num_walks = 2048;  // denser statistics
  IncrementalWalkCorpus corpus(store, config);
  corpus.Generate(store);

  const VertexId hub = [&] {
    VertexId best = 0;
    for (VertexId v = 0; v < 256; ++v) {
      if (store.Graph().Degree(v) > store.Graph().Degree(best)) {
        best = v;
      }
    }
    return best;
  }();
  // Overwhelm the hub's mass with one huge edge.
  graph::UpdateList updates;
  updates.push_back({Update::Kind::kInsert, hub, 0, 1e9});
  corpus.ApplyUpdates(store, updates);

  uint64_t exits = 0;
  uint64_t to_new_edge = 0;
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    const auto& walk = corpus.Walk(w);
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      if (walk[i] == hub) {
        ++exits;
        to_new_edge += walk[i + 1] == 0 ? 1 : 0;
      }
    }
  }
  ASSERT_GT(exits, 50u);
  EXPECT_GT(static_cast<double>(to_new_edge) / static_cast<double>(exits), 0.95);
}

TEST(IncrementalTest, IndexRebuildCompactsStaleEntries) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(7)));
  IncrementalWalkCorpus::Config config = SmallConfig();
  config.index_rebuild_threshold = 0.05;  // rebuild aggressively
  IncrementalWalkCorpus corpus(store, config);
  corpus.Generate(store);
  util::Rng rng(11);
  bool saw_rebuild = false;
  for (int round = 0; round < 15; ++round) {
    graph::UpdateList updates;
    for (int i = 0; i < 40; ++i) {
      updates.push_back({Update::Kind::kInsert,
                         static_cast<VertexId>(rng.NextBounded(256)),
                         static_cast<VertexId>(rng.NextBounded(256)),
                         1.0 + rng.NextBounded(8)});
    }
    saw_rebuild = corpus.ApplyUpdates(store, updates).index_rebuilt || saw_rebuild;
    ASSERT_TRUE(corpus.CheckWalksValid(store).empty());
  }
  EXPECT_TRUE(saw_rebuild);
}

TEST(IncrementalTest, MemoryAccountingIsPositive) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(8)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);
  EXPECT_GT(corpus.MemoryBytes(), 0u);
}

// Regression: an update batch may reference vertex ids the store has never
// seen. The store must grow, and the corpus's vertex-indexed tables must
// grow with it — the old code indexed repaired suffixes straight into
// index_[v] for v >= index_.size() (heap overflow under ASan).
TEST(IncrementalTest, RepairThroughBrandNewVerticesGrowsIndex) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(9)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);

  // A chain of fresh ids hanging off a well-visited hub, each edge heavy
  // enough that repaired walks actually route through the new vertices.
  const VertexId hub = [&] {
    VertexId best = 0;
    for (VertexId v = 0; v < 256; ++v) {
      if (store.Graph().Degree(v) > store.Graph().Degree(best)) {
        best = v;
      }
    }
    return best;
  }();
  graph::UpdateList updates;
  updates.push_back({Update::Kind::kInsert, hub, 300, 1e9});
  updates.push_back({Update::Kind::kInsert, 300, 301, 1.0});
  updates.push_back({Update::Kind::kInsert, 301, 302, 1.0});
  const auto stats = corpus.ApplyUpdates(store, updates);
  EXPECT_GT(stats.walks_repaired, 0u);
  ASSERT_GE(store.NumVertices(), 303u);
  ASSERT_TRUE(corpus.CheckWalksValid(store).empty())
      << corpus.CheckWalksValid(store);

  // Walks really went through the fresh ids, and a follow-up batch touching
  // one of them repairs through the grown index.
  const auto& counts = corpus.VisitCounts();
  ASSERT_GE(counts.size(), 303u);
  EXPECT_GT(counts[300], 0u);
  graph::UpdateList second;
  second.push_back({Update::Kind::kInsert, 300, 303, 1e9});
  const auto stats2 = corpus.ApplyUpdates(store, second);
  EXPECT_GT(stats2.walks_repaired, 0u);
  ASSERT_TRUE(corpus.CheckWalksValid(store).empty())
      << corpus.CheckWalksValid(store);
}

// The visit-count table is maintained incrementally under repairs; it must
// match a from-scratch recount, including for vertices born mid-stream.
TEST(IncrementalTest, VisitCountsStayExactUnderChurn) {
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(10)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);
  util::Rng rng(13);
  for (int round = 0; round < 8; ++round) {
    graph::UpdateList updates;
    for (int i = 0; i < 50; ++i) {
      // Mostly existing ids, occasionally a brand-new one.
      const auto span = rng.NextBool(0.1) ? 280u : 256u;
      updates.push_back({Update::Kind::kInsert,
                         static_cast<VertexId>(rng.NextBounded(span)),
                         static_cast<VertexId>(rng.NextBounded(span)),
                         1.0 + rng.NextBounded(8)});
    }
    corpus.ApplyUpdates(store, updates);

    std::vector<uint64_t> expected(corpus.VisitCounts().size(), 0);
    uint64_t expected_total = 0;
    for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
      for (const VertexId v : corpus.Walk(w)) {
        ASSERT_LT(v, expected.size());
        ++expected[v];
        ++expected_total;
      }
    }
    ASSERT_EQ(corpus.VisitCounts(), expected) << "round " << round;
    ASSERT_EQ(corpus.TotalVisits(), expected_total);
  }
}

// Index accounting: the pivot walk[first] keeps its live entry across a
// repair — it must be neither counted stale nor re-appended as a duplicate.
TEST(IncrementalTest, RepairAccountingExcludesPivot) {
  // Two-vertex cycle: every walk alternates a<->b forever, so a repair at
  // vertex a pivots at position 0 or 1 and resamples a suffix that revisits
  // only {a, b}.
  graph::WeightedEdgeList edges;
  edges.push_back({0, 1, 1.0});
  edges.push_back({1, 0, 1.0});
  IncrementalWalkCorpus::Config config;
  config.num_walks = 4;
  config.walk_length = 8;
  BingoStore store(graph::DynamicGraph::FromEdges(2, edges));
  IncrementalWalkCorpus corpus(store, config);
  corpus.Generate(store);
  // 4 walks x 2 distinct vertices, one entry each.
  EXPECT_EQ(corpus.live_index_entries(), 8u);
  EXPECT_EQ(corpus.stale_index_entries(), 0u);

  graph::UpdateList updates;
  updates.push_back({Update::Kind::kInsert, 0, 1, 2.0});  // reweight only
  const auto stats = corpus.ApplyUpdates(store, updates);
  EXPECT_EQ(stats.walks_repaired, 4u);
  // Per walk: the old suffix's only non-pivot vertex (1) goes stale and the
  // new suffix re-indexes it — +4 stale, +4 appended. The pivot (vertex 0)
  // is neither: its entry stays live and IndexWalkSuffix skips it, so the
  // old code's +1 stale (pivot miscount) and duplicate pivot append would
  // show up here as stale == 8 and live == 16.
  EXPECT_EQ(corpus.live_index_entries(), 12u);
  EXPECT_EQ(corpus.stale_index_entries(), 4u);
  ASSERT_TRUE(corpus.CheckWalksValid(store).empty());
}

// Checkpoint round-trip: SaveTo/LoadFrom restores walks, epoch, fence, and
// the derived tables bit-identically.
TEST(IncrementalTest, CorpusCheckpointRoundTrips) {
  const std::string path = ::testing::TempDir() + "corpus_roundtrip_" +
                           std::to_string(::getpid()) + ".walks";
  BingoStore store(graph::DynamicGraph::FromEdges(256, DenseEdges(11)));
  IncrementalWalkCorpus corpus(store, SmallConfig());
  corpus.Generate(store);
  graph::UpdateList updates;
  updates.push_back({Update::Kind::kInsert, 3, 9, 4.0});
  corpus.ApplyUpdates(store, updates);

  std::string error;
  uint64_t bytes = 0;
  ASSERT_TRUE(corpus.SaveTo(path, /*wal_seq=*/77, &bytes, &error)) << error;
  EXPECT_GT(bytes, 0u);

  IncrementalWalkCorpus restored(store, SmallConfig());
  const auto fence = restored.LoadFrom(path, &error);
  ASSERT_TRUE(fence.has_value()) << error;
  EXPECT_EQ(*fence, 77u);
  EXPECT_EQ(restored.repair_epoch(), corpus.repair_epoch());
  ASSERT_EQ(restored.NumWalks(), corpus.NumWalks());
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    ASSERT_EQ(restored.Walk(w), corpus.Walk(w)) << "walk " << w;
  }
  EXPECT_EQ(restored.VisitCounts(), corpus.VisitCounts());
  EXPECT_EQ(restored.TotalVisits(), corpus.TotalVisits());

  // Config mismatches are rejected without touching the corpus.
  IncrementalWalkCorpus::Config other = SmallConfig();
  other.walk_length = 7;
  IncrementalWalkCorpus mismatched(store, other);
  EXPECT_FALSE(mismatched.LoadFrom(path).has_value());

  // A truncated file fails its checksum, not the process.
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
  }
  IncrementalWalkCorpus truncated(store, SmallConfig());
  EXPECT_FALSE(truncated.LoadFrom(path, &error).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bingo::walk
