// Tests for amortization-factor selection (§4.3/§4.4).

#include <gtest/gtest.h>

#include <vector>

#include "src/core/lambda.h"
#include "src/util/rng.h"

namespace bingo::core {
namespace {

TEST(LambdaTest, IntegerBiasesHaveZeroDecimalShare) {
  const std::vector<double> biases = {1.0, 2.0, 7.0, 100.0};
  EXPECT_DOUBLE_EQ(DecimalShare(biases, 1.0), 0.0);
  const LambdaChoice choice = SuggestLambda(biases, 0.1);
  EXPECT_DOUBLE_EQ(choice.lambda, 1.0);
  EXPECT_DOUBLE_EQ(choice.decimal_share, 0.0);
}

TEST(LambdaTest, PaperFig7Example) {
  // (0.554, 0.726, 0.320) with lambda 10 gives integer mass 5+7+3 = 15 and
  // decimal mass 0.54+0.26+0.20 = 1.0 -> share 1/16, below 1/d = 1/3.
  const std::vector<double> biases = {0.554, 0.726, 0.320};
  EXPECT_NEAR(DecimalShare(biases, 10.0), 1.0 / 16.0, 1e-9);
  EXPECT_LT(DecimalShare(biases, 10.0), 1.0 / 3.0);
}

TEST(LambdaTest, SubUnitBiasesNeedScaling) {
  // All-fractional biases: at lambda = 1 everything is decimal (share 1).
  util::Rng rng(3);
  std::vector<double> biases(100);
  for (auto& b : biases) {
    b = 0.01 + 0.98 * rng.NextUnit();
  }
  EXPECT_DOUBLE_EQ(DecimalShare(biases, 1.0), 1.0);
  const LambdaChoice choice = SuggestLambda(biases, 1.0 / 50.0);
  EXPECT_GT(choice.lambda, 1.0);
  EXPECT_LT(choice.decimal_share, 1.0 / 50.0);
}

TEST(LambdaTest, ShareDecreasesMonotonicallyEnough) {
  // Doubling lambda halves the relative weight of the (bounded) fractional
  // remainders, so the suggested lambda always meets a feasible target.
  util::Rng rng(7);
  std::vector<double> biases(500);
  for (auto& b : biases) {
    b = 1.0 + rng.NextBounded(100) + rng.NextUnit();
  }
  for (const double target : {0.5, 0.1, 0.01, 0.001}) {
    const LambdaChoice choice = SuggestLambda(biases, target);
    EXPECT_LT(choice.decimal_share, target) << "target " << target;
  }
}

TEST(LambdaTest, CapsAtRepresentableRange) {
  // Huge biases leave no room to scale; the helper must not overflow the
  // 2^52 contract even when the target is unreachable.
  std::vector<double> biases = {1e15, 0.5};
  const LambdaChoice choice = SuggestLambda(biases, 1e-12);
  EXPECT_LT(biases[0] * choice.lambda, 0x1p52);
}

}  // namespace
}  // namespace bingo::core
