// Tests for store snapshot/restore.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "src/core/snapshot.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/rng.h"

namespace bingo::core {
namespace {

using graph::VertexId;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

BingoStore RmatStore(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2000, rng);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(256, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return BingoStore(graph::DynamicGraph::FromCsr(csr, biases));
}

std::multiset<std::tuple<VertexId, VertexId, double>> AllEdges(
    const BingoStore& store) {
  std::multiset<std::tuple<VertexId, VertexId, double>> edges;
  for (VertexId v = 0; v < store.Graph().NumVertices(); ++v) {
    for (const graph::Edge& e : store.Graph().Neighbors(v)) {
      edges.insert({v, e.dst, e.bias});
    }
  }
  return edges;
}

TEST(SnapshotTest, RoundTripPreservesEdgesAndDistributions) {
  const std::string path = TempPath("snap_roundtrip.bin");
  BingoStore original = RmatStore(1);
  // Churn a little so the store is not in pristine bulk-load shape.
  original.StreamingInsert(3, 9, 17.0);
  original.StreamingDelete(0, original.Graph().Neighbors(0)[0].dst);
  ASSERT_TRUE(SaveSnapshot(original, path));

  const auto loaded = LoadSnapshot(path, BingoConfig{}, 256);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->Graph().NumVertices(), 256u);
  EXPECT_EQ(AllEdges(*loaded), AllEdges(original));
  EXPECT_TRUE(loaded->CheckInvariants().empty()) << loaded->CheckInvariants();

  // Per-vertex implied distributions agree (keyed by dst+bias; adjacency
  // order may differ).
  for (VertexId v = 0; v < 256; ++v) {
    std::map<std::pair<VertexId, double>, double> lhs, rhs;
    const auto pa =
        original.SamplerAt(v).ImpliedDistribution(original.Graph().Neighbors(v));
    for (std::size_t i = 0; i < pa.size(); ++i) {
      const auto& e = original.Graph().NeighborAt(v, static_cast<uint32_t>(i));
      lhs[{e.dst, e.bias}] += pa[i];
    }
    const auto pb =
        loaded->SamplerAt(v).ImpliedDistribution(loaded->Graph().Neighbors(v));
    for (std::size_t i = 0; i < pb.size(); ++i) {
      const auto& e = loaded->Graph().NeighborAt(v, static_cast<uint32_t>(i));
      rhs[{e.dst, e.bias}] += pb[i];
    }
    ASSERT_EQ(lhs.size(), rhs.size()) << "vertex " << v;
    for (const auto& [key, p] : lhs) {
      ASSERT_NEAR(p, rhs.at(key), 1e-9) << "vertex " << v;
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, DuplicateDeletionOrderSurvivesRoundTrip) {
  const std::string path = TempPath("snap_dups.bin");
  BingoStore original(graph::DynamicGraph(4));
  original.StreamingInsert(0, 1, 2.0);   // earliest
  original.StreamingInsert(0, 1, 16.0);  // later duplicate
  ASSERT_TRUE(SaveSnapshot(original, path));
  auto loaded = LoadSnapshot(path, BingoConfig{}, 4);
  ASSERT_NE(loaded, nullptr);
  ASSERT_TRUE(loaded->StreamingDelete(0, 1));
  // The earliest copy (bias 2) must be the one deleted after the round trip.
  ASSERT_EQ(loaded->Graph().Degree(0), 1u);
  EXPECT_DOUBLE_EQ(loaded->Graph().NeighborAt(0, 0).bias, 16.0);
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadMissingFileReturnsNull) {
  EXPECT_EQ(LoadSnapshot("/nonexistent/never.bin"), nullptr);
}

TEST(SnapshotTest, IsolatedTrailingVerticesSurviveViaHeaderCount) {
  const std::string path = TempPath("snap_isolated.bin");
  BingoStore original(graph::DynamicGraph(100));
  original.StreamingInsert(0, 1, 1.0);
  ASSERT_TRUE(SaveSnapshot(original, path));
  // The v2 header records the true vertex count, so no override is needed.
  const auto implicit = LoadSnapshot(path);
  ASSERT_NE(implicit, nullptr);
  EXPECT_EQ(implicit->Graph().NumVertices(), 100u);
  // An explicit larger count still wins (e.g. growing the id space on load).
  const auto larger = LoadSnapshot(path, BingoConfig{}, 200);
  ASSERT_NE(larger, nullptr);
  EXPECT_EQ(larger->Graph().NumVertices(), 200u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, FailedSaveLeavesOldSnapshotReadable) {
  // Regression: snapshots used to be written in place, so a crash (or any
  // failure) mid-save destroyed the previous good snapshot. Saves now land
  // in a temp file and rename atomically.
  const std::string path = TempPath("snap_atomic.bin");
  BingoStore original = RmatStore(7);
  ASSERT_TRUE(SaveSnapshot(original, path));
  const auto before = AllEdges(original);

  // Block the temp path with a directory so the next save fails.
  const std::string tmp = path + ".tmp";
  std::filesystem::create_directory(tmp);
  BingoStore other(graph::DynamicGraph(4));
  other.StreamingInsert(0, 1, 1.0);
  EXPECT_FALSE(SaveSnapshot(other, path));
  std::filesystem::remove(tmp);

  const auto loaded = LoadSnapshot(path, BingoConfig{}, 256);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(AllEdges(*loaded), before);
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncatedOrCorruptSnapshotFailsToLoad) {
  const std::string path = TempPath("snap_corrupt.bin");
  BingoStore original = RmatStore(8);
  ASSERT_TRUE(SaveSnapshot(original, path));

  // Truncation (e.g. torn copy): the edge-count/size validation refuses it.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 3);
  EXPECT_EQ(LoadSnapshot(path, BingoConfig{}, 256), nullptr);

  // Payload corruption: the section CRC refuses it.
  ASSERT_TRUE(SaveSnapshot(original, path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(300, std::ios::beg);
    const char garbage = '\x55';
    f.write(&garbage, 1);
  }
  EXPECT_EQ(LoadSnapshot(path, BingoConfig{}, 256), nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotTest, ConfigFingerprintMismatchRefusesLoad) {
  const std::string path = TempPath("snap_config.bin");
  BingoStore original = RmatStore(9);  // default config
  ASSERT_TRUE(SaveSnapshot(original, path));
  BingoConfig other;
  other.adaptive.adaptive = false;  // BS baseline: different structures
  EXPECT_EQ(LoadSnapshot(path, other, 256), nullptr);
  EXPECT_NE(LoadSnapshot(path, BingoConfig{}, 256), nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotTest, WalSeqAndHeaderRoundTrip) {
  const std::string path = TempPath("snap_header.bin");
  BingoStore original = RmatStore(10);
  ASSERT_TRUE(SaveSnapshot(original, path, /*wal_seq=*/41));
  graph::WeightedEdgeList edges;
  SnapshotInfo info;
  ASSERT_TRUE(LoadSnapshotEdges(path, edges, &info));
  EXPECT_EQ(info.version, 3u);
  EXPECT_EQ(info.wal_seq, 41u);
  EXPECT_EQ(info.num_vertices, 256u);
  EXPECT_EQ(info.num_edges, edges.size());
  EXPECT_EQ(info.config_fingerprint, ConfigFingerprint(original.Config()));
  EXPECT_EQ(edges.size(), original.Graph().NumEdges());
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadedStoreAcceptsFurtherUpdates) {
  const std::string path = TempPath("snap_updates.bin");
  BingoStore original = RmatStore(2);
  ASSERT_TRUE(SaveSnapshot(original, path));
  auto loaded = LoadSnapshot(path, BingoConfig{}, 256);
  ASSERT_NE(loaded, nullptr);
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    loaded->StreamingInsert(static_cast<VertexId>(rng.NextBounded(256)),
                            static_cast<VertexId>(rng.NextBounded(256)),
                            1.0 + rng.NextBounded(64));
  }
  EXPECT_TRUE(loaded->CheckInvariants().empty()) << loaded->CheckInvariants();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bingo::core
