// Tests for the on-disk CSR container (src/graph/csr_mmap): write/read
// roundtrip, and — the persistence-critical half — that corrupt, truncated,
// or fabricated containers fail Open/MapBlock with a clean error, never a
// SIGBUS or an unbounded allocation.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/graph/csr_mmap.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/util/checksum.h"
#include "src/util/rng.h"
#include "src/util/serial.h"

namespace bingo::graph {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

WeightedEdgeList RmatEdges(uint64_t seed, int scale, uint64_t edges) {
  util::Rng rng(seed);
  auto pairs = GenerateRmat(scale, edges, rng);
  Canonicalize(pairs);
  WeightedEdgeList out;
  out.reserve(pairs.size());
  uint32_t ts = 0;
  for (const auto& [src, dst] : pairs) {
    WeightedEdge e;
    e.src = src;
    e.dst = dst;
    e.bias = 1.0 + (ts % 7);
    e.timestamp = ts++;
    out.push_back(e);
  }
  return out;
}

// Writes a small multi-block container and returns its edges.
WeightedEdgeList WriteSample(const std::string& path,
                             uint64_t block_bytes = 4096) {
  const WeightedEdgeList edges = RmatEdges(7, 9, 6000);
  const VertexId n = std::max<VertexId>(512, ImpliedVertexCount(edges));
  std::string error;
  EXPECT_TRUE(WriteCsrFile(path, n, edges, block_bytes, &error)) << error;
  return edges;
}

void FlipByte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x5a;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

TEST(CsrMmapTest, RoundTripPreservesDegreesTotalsAndEdges) {
  const std::string path = TempPath("csr_roundtrip.bin");
  const WeightedEdgeList edges = WriteSample(path);

  CsrMmap csr;
  std::string error;
  ASSERT_TRUE(CsrMmap::Open(path, &csr, &error)) << error;
  EXPECT_EQ(csr.NumEdges(), edges.size());
  EXPECT_GT(csr.NumBlocks(), 1u);  // multi-block at a 4 KiB target

  // Degrees and bias totals match an independent tally.
  std::vector<uint64_t> degree(csr.NumVertices(), 0);
  std::vector<double> total(csr.NumVertices(), 0.0);
  for (const WeightedEdge& e : edges) {
    degree[e.src]++;
    total[e.src] += e.bias;
  }
  for (VertexId v = 0; v < csr.NumVertices(); ++v) {
    EXPECT_EQ(csr.Degree(v), degree[v]) << "vertex " << v;
    EXPECT_DOUBLE_EQ(csr.TotalBias(v), total[v]) << "vertex " << v;
  }

  // The block table partitions the vertex range, and every mapped block's
  // records agree with a pread of the same range.
  uint64_t mapped_edges = 0;
  for (uint32_t b = 0; b < csr.NumBlocks(); ++b) {
    EXPECT_EQ(csr.BlockFirstEdge(b), csr.EdgeOffset(csr.BlockFirstVertex(b)));
    CsrMapHandle handle;
    const Edge* block = nullptr;
    ASSERT_TRUE(csr.MapBlock(b, /*verify_crc=*/true, &handle, &block, &error))
        << error;
    const uint64_t count = csr.BlockEdgeCount(b);
    std::vector<Edge> via_pread(count);
    ASSERT_TRUE(csr.ReadEdges(csr.BlockFirstEdge(b), count, via_pread.data()));
    for (uint64_t i = 0; i < count; ++i) {
      EXPECT_EQ(block[i].dst, via_pread[i].dst);
      EXPECT_EQ(block[i].bias, via_pread[i].bias);
    }
    mapped_edges += count;
    CsrMmap::Unmap(handle);
  }
  EXPECT_EQ(mapped_edges, edges.size());
  std::remove(path.c_str());
}

TEST(CsrMmapTest, WriterRejectsNonVertexMajorAppends) {
  const std::string path = TempPath("csr_order.bin");
  CsrFileWriter writer(path, 8);
  ASSERT_TRUE(writer.Append(3, Edge{1, 0, 1.0}));
  EXPECT_FALSE(writer.Append(2, Edge{0, 0, 1.0}));  // src decreased
  EXPECT_FALSE(writer.Append(9, Edge{0, 0, 1.0}));  // out of range
  std::string error;
  EXPECT_FALSE(writer.Finish(&error));
  EXPECT_FALSE(std::filesystem::exists(path));  // nothing committed
}

TEST(CsrMmapTest, CorruptHeaderFieldsFailCleanly) {
  const std::string path = TempPath("csr_header.bin");
  WriteSample(path);
  CsrMmap csr;
  std::string error;

  // Magic, version, and an arbitrary header count: every flip must be
  // caught (magic/version by their own checks, counts by the header CRC).
  for (const std::uint64_t offset : {0ull, 8ull, 16ull, 24ull, 60ull}) {
    WriteSample(path);
    FlipByte(path, offset);
    error.clear();
    EXPECT_FALSE(CsrMmap::Open(path, &csr, &error)) << "offset " << offset;
    EXPECT_FALSE(error.empty());
  }
  std::remove(path.c_str());
}

TEST(CsrMmapTest, CorruptIndexAndBlockPayloadFailCleanly) {
  const std::string path = TempPath("csr_payload.bin");
  WriteSample(path);
  CsrMmap csr;
  std::string error;

  // Index section (offsets/totals/block table): index CRC refuses Open.
  FlipByte(path, 64 + 128);
  EXPECT_FALSE(CsrMmap::Open(path, &csr, &error));
  EXPECT_NE(error.find("index"), std::string::npos) << error;

  // Edge payload: Open succeeds (the index is intact), but mapping the
  // damaged block under verify_crc reports a checksum mismatch — and
  // mapping with verification off still never faults.
  WriteSample(path);
  ASSERT_TRUE(CsrMmap::Open(path, &csr, &error)) << error;
  const uint64_t file_size = std::filesystem::file_size(path);
  FlipByte(path, file_size - sizeof(Edge) / 2);  // inside the last block
  const uint32_t last = csr.NumBlocks() - 1;
  CsrMapHandle handle;
  const Edge* block = nullptr;
  EXPECT_FALSE(csr.MapBlock(last, /*verify_crc=*/true, &handle, &block,
                            &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  ASSERT_TRUE(csr.MapBlock(last, /*verify_crc=*/false, &handle, &block,
                           &error))
      << error;
  volatile uint32_t sink = 0;
  for (uint64_t i = 0; i < csr.BlockEdgeCount(last); ++i) {
    sink += block[i].dst;  // touches every record: must not SIGBUS
  }
  CsrMmap::Unmap(handle);
  std::remove(path.c_str());
}

TEST(CsrMmapTest, EveryTruncationLengthFailsOpenCleanly) {
  const std::string path = TempPath("csr_truncate.bin");
  WriteSample(path);
  const uint64_t full = std::filesystem::file_size(path);
  // A dense sweep near the interesting boundaries (header edge, index edge)
  // plus coarse steps through the payload. Open validates the exact file
  // size against the header, so a short map can never be constructed.
  std::vector<uint64_t> lengths = {0, 1, 16, 63, 64, 65, 100};
  for (uint64_t len = 128; len < full; len += full / 37 + 1) {
    lengths.push_back(len);
  }
  lengths.push_back(full - 1);
  for (const uint64_t len : lengths) {
    WriteSample(path);
    std::filesystem::resize_file(path, len);
    CsrMmap csr;
    std::string error;
    EXPECT_FALSE(CsrMmap::Open(path, &csr, &error)) << "length " << len;
    EXPECT_FALSE(error.empty()) << "length " << len;
  }
  std::remove(path.c_str());
}

// A header whose CRCs are valid but whose counts are absurd must be
// rejected by the plausibility checks, not trusted into a giant allocation
// or an out-of-bounds map.
TEST(CsrMmapTest, FabricatedHeaderWithValidCrcIsRejected) {
  const std::string path = TempPath("csr_fabricated.bin");
  const auto craft = [&](uint64_t num_vertices, uint64_t num_edges,
                         uint64_t num_blocks, uint64_t index_bytes) {
    std::string header;
    util::AppendPod(header, uint64_t{0x42494e474f435231ULL});  // magic
    util::AppendPod(header, uint32_t{1});                      // version
    util::AppendPod(header, uint32_t{0});                      // reserved
    util::AppendPod(header, num_vertices);
    util::AppendPod(header, num_edges);
    util::AppendPod(header, uint64_t{4096});  // block target
    util::AppendPod(header, num_blocks);
    util::AppendPod(header, index_bytes);
    util::AppendPod(header, uint32_t{0});  // index crc (index is absent)
    util::AppendPod(header, util::Crc32c(header.data(), header.size()));
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(header.data(), static_cast<std::streamoff>(header.size()));
  };
  CsrMmap csr;
  std::string error;

  craft(/*vertices=*/1ull << 40, 10, 1, 64);  // vertex id overflow
  EXPECT_FALSE(CsrMmap::Open(path, &csr, &error));
  craft(16, /*edges=*/1ull << 60, 1, 64);  // implausible edge count
  EXPECT_FALSE(CsrMmap::Open(path, &csr, &error));
  craft(16, 10, /*blocks=*/17, 64);  // more blocks than vertices
  EXPECT_FALSE(CsrMmap::Open(path, &csr, &error));
  craft(16, 10, 1, /*index_bytes=*/1ull << 50);  // index larger than disk
  EXPECT_FALSE(CsrMmap::Open(path, &csr, &error));
  // Consistent-looking index size (PadTo16(8*17 + 8*16 + 4*2 + 4*1) = 288)
  // but the index and edge sections are missing: the exact file-size check
  // refuses it before anything is read or mapped.
  craft(16, 10, 1, 288);
  EXPECT_FALSE(CsrMmap::Open(path, &csr, &error));
  std::remove(path.c_str());
}

TEST(CsrMmapTest, EmptyGraphContainerRoundTrips) {
  const std::string path = TempPath("csr_empty.bin");
  std::string error;
  ASSERT_TRUE(WriteCsrFile(path, 0, {}, 4096, &error)) << error;
  CsrMmap csr;
  ASSERT_TRUE(CsrMmap::Open(path, &csr, &error)) << error;
  EXPECT_EQ(csr.NumVertices(), 0u);
  EXPECT_EQ(csr.NumEdges(), 0u);
  EXPECT_EQ(csr.NumBlocks(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bingo::graph
