// Work-stealing executor invariants: chunk-plan determinism, nested
// submission, exception contracts, destruction with queued work, placement
// planning, worker-id-keyed memory-pool sharding, and scratch reuse.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/memory_pool.h"
#include "src/util/numa.h"
#include "src/util/scratch.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"

namespace bingo::util {
namespace {

// ------------------------------------------------------------ chunk plan --

TEST(ChunkPlanTest, IsAPureFunctionOfItsInputs) {
  const ChunkPlan a = ComputeChunkPlan(10000, 256, 8);
  const ChunkPlan b = ComputeChunkPlan(10000, 256, 8);
  EXPECT_EQ(a.num_chunks, b.num_chunks);
  EXPECT_EQ(a.chunk_size, b.chunk_size);
  EXPECT_GE(a.num_chunks, 1u);
  EXPECT_LE(a.num_chunks, 8u * 4u);
}

TEST(ChunkPlanTest, ChunksCoverTheRangeExactly) {
  // 131073 @ 128 threads and 66821 @ 66 threads are the double-ceil
  // overshoot cases: without the re-derived chunk count the last chunk
  // would start past the range end (lo > hi, unsigned underflow downstream).
  for (const std::size_t total :
       {1uL, 255uL, 256uL, 257uL, 10000uL, 66821uL, 131073uL}) {
    for (const std::size_t threads : {1uL, 4uL, 16uL, 66uL, 128uL}) {
      const ChunkPlan plan = ComputeChunkPlan(total, 256, threads);
      std::size_t covered = 0;
      for (std::size_t c = 0; c < plan.num_chunks; ++c) {
        const std::size_t lo = c * plan.chunk_size;
        const std::size_t hi = std::min(total, lo + plan.chunk_size);
        EXPECT_LT(lo, hi) << "empty chunk " << c;
        covered += hi - lo;
      }
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ChunkPlanTest, EmptyRangeHasNoChunks) {
  EXPECT_EQ(ComputeChunkPlan(0, 256, 8).num_chunks, 0u);
}

// -------------------------------------------------- ParallelForChunks ids --

TEST(ExecutorTest, ParallelForChunksHandsOutEveryChunkIdOnce) {
  ThreadPool pool(4);
  const ChunkPlan plan = ComputeChunkPlan(5000, 64, pool.NumThreads());
  ASSERT_GT(plan.num_chunks, 1u);
  std::vector<std::atomic<int>> seen(plan.num_chunks);
  pool.ParallelForChunks(
      0, 5000,
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        ASSERT_LT(chunk, plan.num_chunks);
        EXPECT_EQ(lo, chunk * plan.chunk_size);
        EXPECT_EQ(hi, std::min<std::size_t>(5000, lo + plan.chunk_size));
        seen[chunk].fetch_add(1, std::memory_order_relaxed);
      },
      64);
  for (std::size_t c = 0; c < plan.num_chunks; ++c) {
    EXPECT_EQ(seen[c].load(), 1) << "chunk " << c;
  }
}

// --------------------------------------------------------------- nesting --

TEST(ExecutorTest, NestedParallelForInsidePoolTaskCompletes) {
  // The caller of the inner ParallelFor is a pool worker; it claims the
  // inner chunks itself, so this completes even on a 1-thread pool.
  for (const std::size_t threads : {1uL, 4uL}) {
    ThreadPool pool(threads);
    std::atomic<uint64_t> total{0};
    pool.ParallelFor(0, 8, [&](std::size_t) {
      pool.ParallelFor(0, 100, [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(total.load(), 800u);
  }
}

TEST(ExecutorTest, PostFromPostedTaskRuns) {
  ThreadPool pool(2);
  Mutex mutex;
  CondVar cv;
  int stage = 0;
  pool.Post([&] {
    {
      MutexLock lock(mutex);
      stage = 1;
    }
    pool.Post([&] {
      MutexLock lock(mutex);
      stage = 2;
      cv.NotifyAll();
    });
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  MutexLock lock(mutex);
  while (stage != 2 &&
         cv.WaitUntil(mutex, deadline) != std::cv_status::timeout) {
  }
  EXPECT_EQ(stage, 2);
}

TEST(ExecutorTest, DestructionRunsQueuedWorkIncludingNestedPosts) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Post([&ran, &pool] {
        ran.fetch_add(1, std::memory_order_relaxed);
        pool.Post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      });
    }
    // Destructor must drain: every posted task, and every task those
    // tasks post in turn, runs before the workers exit.
  }
  EXPECT_EQ(ran.load(), 128);
}

// ------------------------------------------------------------ exceptions --

TEST(ExecutorTest, ParallelForExceptionPropagatesUnderStealing) {
  ThreadPool pool(8);
  std::atomic<int> attempts{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 10000,
                       [&](std::size_t i) {
                         attempts.fetch_add(1, std::memory_order_relaxed);
                         if (i % 1000 == 500) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The pool survives the throw and keeps executing.
  std::atomic<int> after{0};
  pool.ParallelFor(0, 100, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 100);
}

TEST(ExecutorTest, ThrowingPostedTaskIsCountedNotFatal) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.PostErrors(), 0u);
  Mutex mutex;
  CondVar cv;
  bool follow_up_ran = false;
  pool.Post([] { throw std::runtime_error("fire-and-forget boom"); });
  pool.Post([] { throw 42; });  // non-std exceptions too
  pool.Post([&] {
    MutexLock lock(mutex);
    follow_up_ran = true;
    cv.NotifyAll();
  });
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    MutexLock lock(mutex);
    while (!follow_up_ran &&
           cv.WaitUntil(mutex, deadline) != std::cv_status::timeout) {
    }
    EXPECT_TRUE(follow_up_ran);
  }
  // The follow-up Post ran on a surviving worker; both throwers counted.
  // (Ordering: the counting happens before the next task is dequeued on
  // that worker, but the two throwers may run on different workers, so
  // wait for the count rather than asserting it immediately.)
  for (int spin = 0; spin < 1000 && pool.PostErrors() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.PostErrors(), 2u);
}

// ----------------------------------------------------- worker identities --

TEST(ExecutorTest, WorkerIdsAreDenseAndOffPoolThreadsHaveNone) {
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);
  EXPECT_EQ(ThreadPool::CurrentPool(), nullptr);
  ThreadPool pool(4);
  Mutex mutex;
  std::set<int> ids;
  pool.ParallelFor(0, 1000, [&](std::size_t) {
    const int id = ThreadPool::CurrentWorkerId();
    ThreadPool* current = ThreadPool::CurrentPool();
    // The caller participates in its own ParallelFor, so off-pool ids
    // (-1, null pool) are legal here; worker ids must be dense.
    if (id >= 0) {
      EXPECT_LT(id, 4);
      EXPECT_EQ(current, &pool);
      MutexLock lock(mutex);
      ids.insert(id);
    } else {
      EXPECT_EQ(current, nullptr);
    }
  });
  for (const int id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 4);
  }
}

// -------------------------------------------------- placement / topology --

TEST(NumaTest, ParseCpuListHandlesRangesAndSingles) {
  EXPECT_EQ(ParseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ParseCpuList("0,2,4"), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(ParseCpuList("0-1,8,10-11"), (std::vector<int>{0, 1, 8, 10, 11}));
  EXPECT_EQ(ParseCpuList("5"), (std::vector<int>{5}));
  EXPECT_EQ(ParseCpuList("0-3\n"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("garbage").empty());
  EXPECT_EQ(ParseCpuList("1-x"), (std::vector<int>{}));  // bad range: drop it
}

TEST(NumaTest, DetectTopologyNeverReportsZeroCpus) {
  const CpuTopology topology = DetectCpuTopology();
  ASSERT_GE(topology.NumNodes(), 1);
  EXPECT_GE(topology.NumCpus(), 1);
}

TEST(NumaTest, PlanInterleavesAcrossNodesAndWraps) {
  CpuTopology two_nodes;
  two_nodes.cpus_of_node = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  // Interleaved: alternate nodes.
  EXPECT_EQ(PlanWorkerCpus(two_nodes, 6, true),
            (std::vector<int>{0, 4, 1, 5, 2, 6}));
  // Dense: fill node 0 first.
  EXPECT_EQ(PlanWorkerCpus(two_nodes, 6, false),
            (std::vector<int>{0, 1, 2, 3, 4, 5}));
  // Oversubscription wraps within the topology.
  EXPECT_EQ(PlanWorkerCpus(two_nodes, 10, false).size(), 10u);
  EXPECT_EQ(PlanWorkerCpus(two_nodes, 10, false)[8], 0);
  EXPECT_EQ(NodeOfCpu(two_nodes, 5), 1);
  EXPECT_EQ(NodeOfCpu(two_nodes, 0), 0);
}

TEST(ExecutorTest, PinnedNumaPoolStillExecutes) {
  // Single-node machines exercise the graceful fallback; multi-node ones
  // the real interleave. Either way the pool must work and report a plan.
  PoolOptions options;
  options.num_threads = 4;
  options.pin_threads = true;
  options.numa_interleave = true;
  ThreadPool pool(options);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 1000, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000);
  for (std::size_t w = 0; w < pool.NumThreads(); ++w) {
    EXPECT_GE(pool.WorkerNumaNode(w), 0);
  }
}

// --------------------------------------- memory-pool sharding contention --

TEST(ExecutorTest, MemoryPoolShardFollowsWorkerId) {
  // The contention story of the scratch path: on an executor worker the
  // shard is the worker id mod kNumShards — an exact round-robin, so the
  // workers of one pool can never all collide onto one shard (the old
  // process-wide thread stripe could). Assert the mapping on whichever
  // workers execute, plus the off-pool fallback's stability.
  ThreadPool pool(MemoryPool::kNumShards);
  std::atomic<int> violations{0};
  pool.ParallelFor(0, 4096, [&](std::size_t) {
    const int worker = ThreadPool::CurrentWorkerId();
    if (worker >= 0 &&
        MemoryPool::CurrentShardIndex() != worker % MemoryPool::kNumShards) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(violations.load(), 0);
  const int off_pool = MemoryPool::CurrentShardIndex();
  EXPECT_EQ(MemoryPool::CurrentShardIndex(), off_pool);  // stable per thread
}

// ------------------------------------------------------- scratch leasing --

TEST(ScratchTest, VectorGrowsAppendsAndRecyclesThroughThePool) {
  MemoryPool backing;
  {
    ScratchVector<uint32_t> v(&backing);
    for (uint32_t i = 0; i < 1000; ++i) {
      v.push_back(i);
    }
    ASSERT_EQ(v.size(), 1000u);
    for (uint32_t i = 0; i < 1000; ++i) {
      EXPECT_EQ(v[i], i);
    }
    const uint32_t extra[3] = {7, 8, 9};
    v.append(extra, extra + 3);
    EXPECT_EQ(v.size(), 1003u);
    EXPECT_EQ(v.back(), 9u);
    v.assign(5, 42u);
    EXPECT_EQ(v.size(), 5u);
    EXPECT_EQ(v[4], 42u);
    EXPECT_GT(backing.LiveBytes(), 0u);
  }
  EXPECT_EQ(backing.LiveBytes(), 0u);  // destructor returned the block

  // Steady state: a second identical build is pure free-list reuse.
  const MemoryPool::AllocStats warm = backing.Stats();
  {
    ScratchVector<uint32_t> v(&backing);
    for (uint32_t i = 0; i < 1000; ++i) {
      v.push_back(i);
    }
  }
  const MemoryPool::AllocStats after = backing.Stats();
  EXPECT_EQ(after.FreshAllocations(), warm.FreshAllocations());
  EXPECT_GT(after.free_list_hits, warm.free_list_hits);
}

TEST(ScratchTest, NullBackingFallsBackToOperatorNew) {
  ScratchVector<uint64_t> v;  // serial path: no pool, no MemoryPool
  for (uint64_t i = 0; i < 100; ++i) {
    v.push_back(i * 3);
  }
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 297u);
  ScratchVector<uint64_t> moved(std::move(v));
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_EQ(v.size(), 0u);
}

// ---------------------------------------------------------------- stress --
//
// The TSan CI job runs this target: concurrent ParallelFor callers and
// Post submitters hammering one pool exercise steal paths, the sleep
// protocol, and scratch-pool sharding under race detection.

TEST(ExecutorStressTest, ConcurrentParallelForAndPostSubmitters) {
  ThreadPool pool(4);
  std::atomic<uint64_t> parallel_work{0};
  std::atomic<uint64_t> posted_work{0};
  std::atomic<uint64_t> posted_expected{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        if (t % 2 == 0) {
          pool.ParallelFor(0, 500, [&](std::size_t) {
            parallel_work.fetch_add(1, std::memory_order_relaxed);
          });
        } else {
          posted_expected.fetch_add(1, std::memory_order_relaxed);
          pool.Post([&] {
            ScratchVector<uint32_t> scratch(&pool.ScratchMemory());
            scratch.assign(256, 1);
            posted_work.fetch_add(scratch[0], std::memory_order_relaxed);
          });
        }
      }
    });
  }
  for (auto& caller : callers) {
    caller.join();
  }
  EXPECT_EQ(parallel_work.load(), 2u * 20u * 500u);
  // Posted tasks are fire-and-forget; wait for them to drain.
  for (int spin = 0; spin < 10000 &&
                     posted_work.load() < posted_expected.load();
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(posted_work.load(), posted_expected.load());
  EXPECT_EQ(pool.ScratchMemory().LiveBytes(), 0u);
}

}  // namespace
}  // namespace bingo::util
