// Tests for the arbitrary-radix-base extension (§9.2).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/radix_base.h"
#include "src/graph/dynamic_graph.h"
#include "src/sampling/exact.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace bingo::core {
namespace {

graph::DynamicGraph StarGraph(const std::vector<double>& biases) {
  graph::DynamicGraph g(4096);
  for (std::size_t i = 0; i < biases.size(); ++i) {
    g.Insert(0, static_cast<graph::VertexId>(i + 1), biases[i]);
  }
  return g;
}

std::vector<double> ExpectedProbs(const std::vector<double>& biases) {
  return util::Normalize(biases);
}

class RadixBaseParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RadixBaseParamTest, ImpliedDistributionIsExact) {
  const auto [log2_base, seed] = GetParam();
  util::Rng rng(seed);
  std::vector<double> biases(60);
  for (auto& b : biases) {
    b = 1 + rng.NextBounded(1 << 12);
  }
  auto g = StarGraph(biases);
  RadixBaseVertexSampler sampler(log2_base);
  sampler.Build(g.Neighbors(0));
  EXPECT_TRUE(sampler.CheckInvariants(g.Neighbors(0)).empty())
      << sampler.CheckInvariants(g.Neighbors(0));
  const auto implied = sampler.ImpliedDistribution(g.Neighbors(0));
  const auto expected = ExpectedProbs(biases);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(implied[i], expected[i], 1e-9) << i;
  }
}

TEST_P(RadixBaseParamTest, StreamingChurnStaysExact) {
  const auto [log2_base, seed] = GetParam();
  util::Rng rng(100 + seed);
  std::vector<double> biases(20);
  for (auto& b : biases) {
    b = 1 + rng.NextBounded(255);
  }
  graph::DynamicGraph g = StarGraph(biases);
  RadixBaseVertexSampler sampler(log2_base);
  sampler.Build(g.Neighbors(0));
  graph::VertexId next_dst = 1000;
  for (int op = 0; op < 150; ++op) {
    if (g.Degree(0) == 0 || rng.NextBool(0.5)) {
      const uint32_t idx =
          g.Insert(0, next_dst++, 1.0 + rng.NextBounded(1 << 10));
      sampler.InsertEdge(g.Neighbors(0), idx);
    } else {
      const uint32_t idx = static_cast<uint32_t>(rng.NextBounded(g.Degree(0)));
      sampler.RemoveEdge(g.Neighbors(0), idx);
      const auto result = g.SwapRemove(0, idx);
      if (result.moved) {
        sampler.RenameIndex(result.moved_edge.bias, result.moved_from,
                            result.moved_to);
      }
    }
    sampler.FinishUpdate();
    ASSERT_TRUE(sampler.CheckInvariants(g.Neighbors(0)).empty())
        << "op " << op << ": " << sampler.CheckInvariants(g.Neighbors(0));
  }
  // Final exact-distribution audit.
  std::vector<double> current;
  for (const auto& e : g.Neighbors(0)) {
    current.push_back(e.bias);
  }
  if (!current.empty()) {
    const auto implied = sampler.ImpliedDistribution(g.Neighbors(0));
    const auto expected = ExpectedProbs(current);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(implied[i], expected[i], 1e-9) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RadixBaseParamTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Range(0, 4)));

TEST(RadixBaseTest, EmpiricalSamplingMatches) {
  util::Rng rng(7);
  std::vector<double> biases(30);
  for (auto& b : biases) {
    b = 1 + rng.NextBounded(1000);
  }
  auto g = StarGraph(biases);
  for (const int r : {1, 2, 4}) {
    RadixBaseVertexSampler sampler(r);
    sampler.Build(g.Neighbors(0));
    util::Rng sample_rng(1234);
    const auto counts = sampling::Histogram(
        biases.size(), 200000, [&] { return sampler.SampleIndex(sample_rng); });
    EXPECT_TRUE(util::ChiSquareTestPasses(counts, ExpectedProbs(biases)))
        << "base 2^" << r;
  }
}

TEST(RadixBaseTest, LargerBaseMeansFewerGroups) {
  util::Rng rng(9);
  std::vector<double> biases(100);
  for (auto& b : biases) {
    b = 1 + rng.NextBounded(1 << 16);
  }
  auto g = StarGraph(biases);
  int last = 1 << 30;
  for (const int r : {1, 2, 4, 8}) {
    RadixBaseVertexSampler sampler(r);
    sampler.Build(g.Neighbors(0));
    const int active = sampler.NumActiveGroups();
    EXPECT_LE(active, last) << "base 2^" << r;
    last = active;
  }
}

TEST(RadixBaseStoreTest, EndToEndStreaming) {
  util::Rng rng(21);
  graph::WeightedEdgeList edges;
  for (graph::VertexId v = 0; v < 50; ++v) {
    for (int i = 0; i < 6; ++i) {
      edges.push_back({v, static_cast<graph::VertexId>(rng.NextBounded(50)),
                       1.0 + rng.NextBounded(500)});
    }
  }
  RadixBaseStore store(graph::DynamicGraph::FromEdges(50, edges), 2);
  EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  for (int op = 0; op < 100; ++op) {
    const graph::VertexId src = static_cast<graph::VertexId>(rng.NextBounded(50));
    if (rng.NextBool(0.5)) {
      store.StreamingInsert(src, static_cast<graph::VertexId>(rng.NextBounded(50)),
                            1.0 + rng.NextBounded(500));
    } else if (store.Graph().Degree(src) > 0) {
      const auto adj = store.Graph().Neighbors(src);
      store.StreamingDelete(src, adj[rng.NextBounded(adj.size())].dst);
    }
  }
  EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  EXPECT_GT(store.AverageActiveGroups(), 0.0);
  EXPECT_GT(store.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace bingo::core
