// Dedicated PartitionedBingoStore coverage: batched-update equivalence
// against a single whole-graph BingoStore, walker-transfer accounting, and
// invariant checks across mixed insert/delete streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/thread_pool.h"
#include "src/walk/partitioned.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

constexpr VertexId kNumVertices = 256;

graph::WeightedEdgeList TestGraph(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2500, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(kNumVertices, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

graph::UpdateList MixedUpdates(const graph::WeightedEdgeList& edges,
                               uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  graph::UpdateList updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (i % 4) {
      case 0: {  // delete a (probably) live edge
        const auto& e = edges[rng.NextBounded(edges.size())];
        updates.push_back({graph::Update::Kind::kDelete, e.src, e.dst, 0.0});
        break;
      }
      case 1: {  // delete request that may have no match
        const auto src = static_cast<VertexId>(rng.NextBounded(kNumVertices));
        const auto dst = static_cast<VertexId>(rng.NextBounded(kNumVertices));
        updates.push_back({graph::Update::Kind::kDelete, src, dst, 0.0});
        break;
      }
      default: {
        const auto src = static_cast<VertexId>(rng.NextBounded(kNumVertices));
        const auto dst = static_cast<VertexId>(rng.NextBounded(kNumVertices));
        updates.push_back({graph::Update::Kind::kInsert, src, dst,
                           1.0 + rng.NextUnit() * 5.0});
        break;
      }
    }
  }
  return updates;
}

// Sorted (dst, bias) view of a vertex's adjacency for order-insensitive
// comparison.
std::vector<std::pair<VertexId, double>> AdjacencyMultiset(
    std::span<const graph::Edge> adj) {
  std::vector<std::pair<VertexId, double>> entries;
  entries.reserve(adj.size());
  for (const auto& e : adj) {
    entries.emplace_back(e.dst, e.bias);
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

// --------------------------------------------- ApplyBatch equivalence --

TEST(PartitionedStoreTest, ApplyBatchMatchesSingleStore) {
  const auto edges = TestGraph(41);
  const auto updates = MixedUpdates(edges, 5, 800);

  BingoStore reference(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  const auto reference_result = reference.ApplyBatch(updates);

  util::ThreadPool pool(4);
  for (const int shards : {1, 2, 5}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    PartitionedBingoStore store(edges, kNumVertices, shards);
    const auto result = store.ApplyBatch(updates, &pool);
    EXPECT_EQ(result, reference_result);
    EXPECT_EQ(store.NumEdges(), reference.Graph().NumEdges());
    for (VertexId v = 0; v < kNumVertices; ++v) {
      ASSERT_EQ(AdjacencyMultiset(store.NeighborsOf(v)),
                AdjacencyMultiset(reference.Graph().Neighbors(v)))
          << "vertex " << v;
    }
  }
}

// ------------------------------------------- walker-transfer accounting --

// Replays the exact per-walker persistent RNG streams the partitioned
// driver uses (one ForStream(seed, id) stream per walker, carried across
// supersteps) and counts expected steps, finishers, and cross-shard hops;
// the driver's accounting must match exactly.
TEST(PartitionedStoreTest, WalkerMigrationAccountingIsExact) {
  const auto edges = TestGraph(42);
  const int shards = 4;
  PartitionedBingoStore store(edges, kNumVertices, shards);
  WalkConfig cfg;
  cfg.walk_length = 15;
  const auto result = RunPartitionedDeepWalk(store, cfg, nullptr);

  uint64_t expected_steps = 0;
  uint64_t expected_finished = 0;
  uint64_t expected_migrations = 0;
  for (uint64_t w = 0; w < kNumVertices; ++w) {
    util::Rng rng = util::Rng::ForStream(cfg.seed, w);
    VertexId cur = static_cast<VertexId>(w % kNumVertices);
    uint32_t step = 0;
    for (; step < cfg.walk_length; ++step) {
      const VertexId next = store.SampleNeighbor(cur, rng);
      if (next == graph::kInvalidVertex) {
        break;
      }
      ++expected_steps;
      // A migration is a walker delivered to a different shard with steps
      // remaining (the deepwalk stepper never self-terminates).
      if (step + 1 < cfg.walk_length &&
          store.ShardOf(next) != store.ShardOf(cur)) {
        ++expected_migrations;
      }
      cur = next;
    }
    expected_finished += step > 0 ? 1 : 0;
  }
  EXPECT_EQ(result.total_steps, expected_steps);
  EXPECT_EQ(result.finished_walkers, expected_finished);
  EXPECT_EQ(result.walker_migrations, expected_migrations);
}

TEST(PartitionedStoreTest, SingleShardNeverMigrates) {
  const auto edges = TestGraph(43);
  PartitionedBingoStore store(edges, kNumVertices, 1);
  WalkConfig cfg;
  cfg.walk_length = 12;
  const auto result = RunPartitionedDeepWalk(store, cfg, nullptr);
  EXPECT_GT(result.total_steps, 0u);
  EXPECT_EQ(result.walker_migrations, 0u);
}

// ------------------------------------------------ invariants under churn --

TEST(PartitionedStoreTest, InvariantsHoldAcrossMixedUpdateRounds) {
  const auto edges = TestGraph(44);
  PartitionedBingoStore store(edges, kNumVertices, 3);
  uint64_t live_edges = edges.size();
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    const auto updates = MixedUpdates(edges, 100 + round, 400);
    const auto result = store.ApplyBatch(updates);
    live_edges += result.inserted;
    live_edges -= result.deleted;
    EXPECT_EQ(store.NumEdges(), live_edges);
    ASSERT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  }
  // Streaming single-edge path keeps invariants too.
  store.StreamingInsert(1, 2, 3.5);
  EXPECT_TRUE(store.StreamingDelete(1, 2));
  EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
}

TEST(PartitionedStoreTest, MemoryStatsAggregateShards) {
  const auto edges = TestGraph(45);
  PartitionedBingoStore store(edges, kNumVertices, 4);
  const auto stats = store.MemoryStats();
  EXPECT_GT(stats.graph_bytes, 0u);
  EXPECT_GT(stats.SamplerBytes(), 0u);
  EXPECT_EQ(stats.TotalBytes(), store.MemoryBytes());
}

}  // namespace
}  // namespace bingo::walk
