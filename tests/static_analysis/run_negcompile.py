#!/usr/bin/env python3
"""Negative-compile driver for the thread-safety annotations.

Every fail_*.cc in this directory must FAIL to compile under
  clang++ -std=c++20 -fsyntax-only -Wthread-safety -Werror
with a diagnostic that mentions thread safety (so a syntax error can't
masquerade as a passing test), and every pass_*.cc must compile cleanly.

Clang is the only compiler that implements the analysis. When no clang is
on PATH the suite exits 77 (the ctest SKIP_RETURN_CODE), so GCC-only
environments skip rather than fail; CI's static-analysis job installs
clang and runs it for real.

Usage: run_negcompile.py [--clang CLANG] [--repo-root DIR]
"""

import argparse
import pathlib
import shutil
import subprocess
import sys

SKIP = 77
HERE = pathlib.Path(__file__).resolve().parent

THREAD_SAFETY_MARKERS = (
    '-Wthread-safety', 'thread safety', 'requires holding',
    'must not be held', 'excludes',
)


def find_clang(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ('clang++', 'clang++-19', 'clang++-18', 'clang++-17',
                 'clang++-16', 'clang++-15', 'clang++-14'):
        if shutil.which(name):
            return name
    return None


def compile_case(clang, repo_root, path):
    cmd = [clang, '-std=c++20', '-fsyntax-only', '-Wthread-safety',
           '-Werror', f'-I{repo_root}', str(path)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument('--clang', default=None)
    parser.add_argument('--repo-root', default=str(HERE.parent.parent))
    args = parser.parse_args()

    clang = find_clang(args.clang)
    if clang is None:
        print('run_negcompile: no clang on PATH; thread-safety analysis '
              'is clang-only — SKIPPED (CI runs it with clang installed)')
        return SKIP

    failures = []
    for path in sorted(HERE.glob('fail_*.cc')):
        rc, stderr = compile_case(clang, args.repo_root, path)
        if rc == 0:
            failures.append(f'{path.name}: compiled, but must be REJECTED '
                            'by -Wthread-safety -Werror')
        elif not any(m in stderr for m in THREAD_SAFETY_MARKERS):
            failures.append(f'{path.name}: rejected, but not for a '
                            f'thread-safety reason:\n{stderr}')
        else:
            print(f'ok (rejected as intended): {path.name}')
    for path in sorted(HERE.glob('pass_*.cc')):
        rc, stderr = compile_case(clang, args.repo_root, path)
        if rc != 0:
            failures.append(f'{path.name}: must compile cleanly under '
                            f'-Wthread-safety -Werror but failed:\n{stderr}')
        else:
            print(f'ok (compiled cleanly): {path.name}')

    for failure in failures:
        print(f'FAIL: {failure}')
    if failures:
        return 1
    print('run_negcompile: all cases behave as expected')
    return 0


if __name__ == '__main__':
    sys.exit(main())
