// Negative-compile case: calling a BINGO_REQUIRES method without holding
// the mutex must fail under clang -Wthread-safety -Werror.
#include "src/util/sync.h"

namespace {

class Queue {
 public:
  void Drain() {
    DrainLocked();  // error: DrainLocked requires holding mu_
  }

 private:
  void DrainLocked() BINGO_REQUIRES(mu_) { ++drained_; }

  bingo::util::Mutex mu_;
  int drained_ BINGO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Drain();
  return 0;
}
