// Negative-compile case: calling a BINGO_EXCLUDES entry point while already
// holding the excluded mutex (self-deadlock by re-entry) must fail under
// clang -Wthread-safety -Werror.
#include "src/util/sync.h"

namespace {

class Service {
 public:
  void Flush() BINGO_EXCLUDES(mu_) {
    bingo::util::MutexLock lock(mu_);
    ++flushes_;
  }

  void FlushWhileLocked() {
    bingo::util::MutexLock lock(mu_);
    Flush();  // error: Flush must not be entered with mu_ held
  }

 private:
  bingo::util::Mutex mu_;
  int flushes_ BINGO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Service s;
  s.FlushWhileLocked();
  return 0;
}
