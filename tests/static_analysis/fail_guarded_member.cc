// Negative-compile case: reading/writing a BINGO_GUARDED_BY member without
// holding its mutex must fail under clang -Wthread-safety -Werror.
// run_negcompile.py asserts this file does NOT compile and that the error
// mentions thread safety.
#include "src/util/sync.h"

namespace {

class Counter {
 public:
  void BumpUnlocked() {
    ++value_;  // error: writing value_ requires holding mu_
  }

 private:
  bingo::util::Mutex mu_;
  int value_ BINGO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.BumpUnlocked();
  return 0;
}
