// Positive case: reader/writer discipline on SharedMutex — shared reads
// under ReaderLock, writes under WriterLock, REQUIRES helpers — must
// compile cleanly under clang -Wthread-safety -Werror.
#include "src/util/sync.h"

namespace {

class Corpus {
 public:
  int Size() const {
    bingo::util::ReaderLock lock(mu_);
    return size_;
  }

  void Apply(int delta) {
    bingo::util::WriterLock lock(mu_);
    size_ += delta;
    RepairLocked();
  }

 private:
  void RepairLocked() BINGO_REQUIRES(mu_) {
    if (size_ < 0) {
      size_ = 0;
    }
  }

  mutable bingo::util::SharedMutex mu_;
  int size_ BINGO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Corpus c;
  c.Apply(3);
  return c.Size() == 3 ? 0 : 1;
}
