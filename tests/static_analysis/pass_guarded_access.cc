// Positive case: the idioms the codebase actually uses — scoped guards,
// REQUIRES helpers called under the lock, explicit condition-wait loops,
// and a relockable MutexLock — must compile CLEANLY under clang
// -Wthread-safety -Werror. Guards the wrappers against annotation bugs
// that would reject correct code.
#include "src/util/sync.h"

namespace {

class Queue {
 public:
  void Push() {
    bingo::util::MutexLock lock(mu_);
    ++size_;
    cv_.NotifyOne();
  }

  void AwaitNonEmptyThenDrain() {
    bingo::util::MutexLock lock(mu_);
    while (size_ == 0) {
      cv_.Wait(mu_);
    }
    DrainLocked();
  }

  // The dispatcher idiom: drop the lock around external work, re-take it.
  void DrainThenWork() {
    bingo::util::MutexLock lock(mu_);
    DrainLocked();
    lock.Unlock();
    // ... lock-free work ...
    lock.Lock();
    ++size_;
  }

 private:
  void DrainLocked() BINGO_REQUIRES(mu_) { size_ = 0; }

  bingo::util::Mutex mu_;
  bingo::util::CondVar cv_;
  int size_ BINGO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Push();
  q.AwaitNonEmptyThenDrain();
  q.DrainThenWork();
  return 0;
}
