// Negative-compile case: writing a guarded member while holding only the
// SHARED (reader) side of a SharedMutex must fail under clang
// -Wthread-safety -Werror.
#include "src/util/sync.h"

namespace {

class Stats {
 public:
  void BumpUnderReaderLock() {
    bingo::util::ReaderLock lock(mu_);
    ++count_;  // error: writing count_ requires the EXCLUSIVE lock
  }

 private:
  mutable bingo::util::SharedMutex mu_;
  int count_ BINGO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Stats s;
  s.BumpUnderReaderLock();
  return 0;
}
