// Tests for walk-derived analytics: PPR queries, SimRank estimates, and
// random-walk domination.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/walk/analytics.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

// ------------------------------------------------------------------- PPR --

TEST(PprQueryTest, ScoresConcentrateNearTheSource) {
  // Two cliques joined by one bridge edge; PPR from clique A must put far
  // more mass on A than on B.
  graph::WeightedEdgeList edges;
  const auto add_clique = [&edges](VertexId base) {
    for (VertexId i = 0; i < 8; ++i) {
      for (VertexId j = 0; j < 8; ++j) {
        if (i != j) {
          edges.push_back({base + i, base + j, 1.0});
        }
      }
    }
  };
  add_clique(0);
  add_clique(8);
  edges.push_back({0, 8, 0.05});
  edges.push_back({8, 0, 0.05});
  BingoStore store(graph::DynamicGraph::FromEdges(16, edges));

  PprQueryConfig config;
  config.num_walkers = 4000;
  config.stop_probability = 1.0 / 10.0;
  const auto scores = PersonalizedPageRank(store, 3, config);
  double mass_a = 0;
  double mass_b = 0;
  for (VertexId v = 0; v < 8; ++v) {
    mass_a += scores[v];
  }
  for (VertexId v = 8; v < 16; ++v) {
    mass_b += scores[v];
  }
  EXPECT_GT(mass_a, mass_b * 5);
  EXPECT_NEAR(mass_a + mass_b, 1.0, 1e-9);
}

TEST(PprQueryTest, ParallelMatchesSerialTotals) {
  util::Rng rng(4);
  auto pairs = graph::GenerateRmat(8, 2000, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(256, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  BingoStore store(graph::DynamicGraph::FromCsr(csr, biases));

  util::ThreadPool pool(4);
  PprQueryConfig config;
  config.num_walkers = 3000;
  const auto serial = PersonalizedPageRank(store, 5, config, nullptr);
  const auto parallel = PersonalizedPageRank(store, 5, config, &pool);
  // Per-walker RNG streams make the two runs identical, not just similar.
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t v = 0; v < serial.size(); ++v) {
    EXPECT_DOUBLE_EQ(serial[v], parallel[v]) << "vertex " << v;
  }
}

// Unlike WalkConfig (0 = one walker per vertex), a zero-walker PPR query
// means "no walks": all-zero scores, no work.
TEST(PprQueryTest, ZeroWalkersYieldsZeroScores) {
  graph::WeightedEdgeList edges = {{0, 1, 1.0}, {1, 0, 1.0}};
  BingoStore store(graph::DynamicGraph::FromEdges(4, edges));
  PprQueryConfig config;
  config.num_walkers = 0;
  const auto scores = PersonalizedPageRank(store, 0, config);
  ASSERT_EQ(scores.size(), 4u);
  for (const double s : scores) {
    EXPECT_EQ(s, 0.0);
  }
}

TEST(TopKTest, OrdersAndExcludes) {
  const std::vector<double> scores = {0.1, 0.5, 0.0, 0.3, 0.5};
  const auto top = TopK(scores, 3, /*exclude=*/1);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 4u);  // 0.5 (vertex 1 excluded; tie-break by id)
  EXPECT_EQ(top[1].first, 3u);  // 0.3
  EXPECT_EQ(top[2].first, 0u);  // 0.1
}

TEST(TopKTest, KLargerThanCandidates) {
  const std::vector<double> scores = {0.0, 0.2};
  const auto top = TopK(scores, 10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, 1u);
}

// --------------------------------------------------------------- SimRank --

TEST(SimRankTest, IdenticalVerticesScoreOne) {
  BingoStore store(graph::DynamicGraph(4));
  EXPECT_DOUBLE_EQ(SimRankEstimate(store, 2, 2), 1.0);
}

TEST(SimRankTest, SharedNeighborhoodBeatsDisjoint) {
  // a and b both point only at {x, y}; c points at {p, q}. s(a,b) must far
  // exceed s(a,c).
  graph::WeightedEdgeList edges = {
      {0, 10, 1.0}, {0, 11, 1.0},   // a
      {1, 10, 1.0}, {1, 11, 1.0},   // b
      {2, 12, 1.0}, {2, 13, 1.0},   // c
      // sinks loop to themselves so walks can continue
      {10, 10, 1.0}, {11, 11, 1.0}, {12, 12, 1.0}, {13, 13, 1.0}};
  BingoStore store(graph::DynamicGraph::FromEdges(16, edges));
  const double same = SimRankEstimate(store, 0, 1, 0.8, 30000);
  const double different = SimRankEstimate(store, 0, 2, 0.8, 30000);
  // Analytically, the a/b pair meets at t=1 with probability 1/2: s ~ 0.4+.
  EXPECT_GT(same, 0.3);
  EXPECT_LT(different, 0.05);
}

TEST(SimRankTest, DecayReducesScores) {
  graph::WeightedEdgeList edges = {{0, 2, 1.0}, {1, 2, 1.0}, {2, 2, 1.0}};
  BingoStore store(graph::DynamicGraph::FromEdges(4, edges));
  const double high_decay = SimRankEstimate(store, 0, 1, 0.9, 20000);
  const double low_decay = SimRankEstimate(store, 0, 1, 0.3, 20000);
  EXPECT_GT(high_decay, low_decay);
  // Both walkers hit vertex 2 at t=1 deterministically: estimate = decay.
  EXPECT_NEAR(high_decay, 0.9, 0.01);
  EXPECT_NEAR(low_decay, 0.3, 0.01);
}

// ------------------------------------------------------------- domination --

TEST(DominationTest, HubCoversStarGraph) {
  // Star: every leaf points to the hub, hub points to all leaves. Walks
  // from any leaf pass through the hub, so one seed (the hub) covers all.
  graph::WeightedEdgeList edges;
  for (VertexId leaf = 1; leaf <= 20; ++leaf) {
    edges.push_back({leaf, 0, 1.0});
    edges.push_back({0, leaf, 1.0});
  }
  BingoStore store(graph::DynamicGraph::FromEdges(21, edges));
  const auto seeds = RandomWalkDomination(store, 3, /*walk_length=*/4);
  ASSERT_FALSE(seeds.empty());
  EXPECT_EQ(seeds[0], 0u);  // hub first
  // The hub alone covers every walk; the greedy loop stops early.
  EXPECT_EQ(seeds.size(), 1u);
}

// num_walks is derived from the corpus itself (path_offsets), so a
// zero-vertex store — whose corpus has no walks — must yield no seeds
// rather than desync against a stale walker-count computation.
TEST(DominationTest, EmptyGraphYieldsNoSeeds) {
  BingoStore store(graph::DynamicGraph(0));
  const auto seeds = RandomWalkDomination(store, 4, /*walk_length=*/4);
  EXPECT_TRUE(seeds.empty());
}

TEST(DominationTest, SeedsAreDistinctAndCoverageGrows) {
  util::Rng rng(8);
  auto pairs = graph::GenerateRmat(8, 2200, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(256, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  BingoStore store(graph::DynamicGraph::FromCsr(csr, biases));
  const auto seeds = RandomWalkDomination(store, 6, 6);
  ASSERT_GE(seeds.size(), 2u);
  std::vector<VertexId> unique(seeds.begin(), seeds.end());
  std::sort(unique.begin(), unique.end());
  EXPECT_EQ(std::adjacent_find(unique.begin(), unique.end()), unique.end());
}

}  // namespace
}  // namespace bingo::walk
