// Concurrency stress for the batcher + sharded service: many submitter
// threads race single-edge Submit()s against walk queries across shards,
// with Snapshot::Consistent() asserted after every query. The CI TSan job
// runs this binary — it is the data-race canary for the per-shard epoch
// protocol and the batcher's drain machinery.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/rng.h"
#include "src/walk/apps.h"
#include "src/walk/batcher.h"
#include "src/walk/sharded_service.h"

namespace bingo::walk {
namespace {

using graph::VertexId;

constexpr VertexId kNumVertices = 256;

graph::WeightedEdgeList TestGraph(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2500, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(kNumVertices, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

graph::Update RandomUpdate(util::Rng& rng) {
  const auto src = static_cast<VertexId>(rng.NextBounded(kNumVertices));
  const auto dst = static_cast<VertexId>(rng.NextBounded(kNumVertices));
  if (rng.NextBool(1.0 / 3.0)) {
    return {graph::Update::Kind::kDelete, src, dst, 0.0};
  }
  return {graph::Update::Kind::kInsert, src, dst, 1.0 + rng.NextUnit() * 4.0};
}

TEST(ShardedStressTest, SubmittersRaceQueriesAcrossShards) {
  constexpr int kShards = 4;
  constexpr int kSubmitters = 4;
  constexpr int kQueryThreads = 3;
  constexpr int kUpdatesPerSubmitter = 2500;

  const auto edges = TestGraph(71);
  const auto service = MakeShardedWalkService(edges, kNumVertices, kShards);

  BatcherOptions options;
  options.max_batch_updates = 64;   // frequent size-triggered drains
  options.max_delay_seconds = 10.0; // time trigger can't fire: the first
                                    // drain of a shard must be size-driven
                                    // even under sanitizer slowdown
  UpdateBatcher batcher(*service, options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inconsistent{0};
  std::atomic<uint64_t> queries{0};

  std::vector<std::thread> query_threads;
  query_threads.reserve(kQueryThreads);
  for (int t = 0; t < kQueryThreads; ++t) {
    query_threads.emplace_back([&, t] {
      uint64_t iteration = 0;
      while (!stop.load(std::memory_order_acquire) || iteration == 0) {
        WalkConfig cfg;
        cfg.num_walkers = 64;
        cfg.walk_length = 8;
        cfg.seed = 100 + static_cast<uint64_t>(t) * 7919 + iteration;
        const auto snap = service->Acquire();
        RunDeepWalk(snap, cfg, nullptr);
        if (!snap.Consistent()) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
        ++iteration;
      }
    });
  }

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      util::Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kUpdatesPerSubmitter; ++i) {
        batcher.Submit(RandomUpdate(rng));
      }
    });
  }
  for (std::thread& s : submitters) {
    s.join();
  }

  // One direct multi-shard batch racing the batcher's drains: the per-shard
  // writer locks serialize them, and queries must stay consistent through
  // both paths.
  util::Rng rng(4242);
  graph::UpdateList direct;
  for (int i = 0; i < 500; ++i) {
    direct.push_back(RandomUpdate(rng));
  }
  const core::BatchResult direct_result = service->ApplyBatch(direct);
  EXPECT_EQ(direct_result.inserted + direct_result.deleted +
                direct_result.skipped_deletes,
            direct.size());

  batcher.Flush();
  stop.store(true, std::memory_order_release);
  for (std::thread& q : query_threads) {
    q.join();
  }

  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GE(queries.load(), static_cast<uint64_t>(kQueryThreads));

  const BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kSubmitters) * kUpdatesPerSubmitter);
  EXPECT_EQ(stats.flushed_updates, stats.submitted);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.applied.inserted + stats.applied.deleted +
                stats.applied.skipped_deletes,
            stats.submitted);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.size_flushes, 0u);  // 64-update trigger must have fired

  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
  const auto service_stats = service->Stats();
  EXPECT_EQ(service_stats.updates_applied, stats.submitted + direct.size());
}

// The time trigger, in isolation: a trickle far below the size threshold
// must still be applied within the staleness bound by the background
// flusher — no Flush() call, no size trigger.
TEST(ShardedStressTest, PoolPostErrorsSurfaceThroughBatcherStats) {
  // The executor's Post exception contract (thread_pool.h): a throwing
  // fire-and-forget task is swallowed and counted, never fatal. The
  // batcher surfaces its writer pool's counter so a deployment can alarm
  // on it — assert the plumbing end to end with a caller-provided pool.
  const auto edges = TestGraph(73);
  const auto service = MakeShardedWalkService(edges, kNumVertices, 4);
  util::ThreadPool writer_pool(2);
  BatcherOptions options;
  options.auto_flush = false;
  {
    UpdateBatcher batcher(*service, options, &writer_pool);
    writer_pool.Post([] { throw std::runtime_error("writer task boom"); });
    util::Rng rng(5);
    for (int i = 0; i < 100; ++i) {
      batcher.Submit(RandomUpdate(rng));
    }
    batcher.Flush();  // the pool survived the throw: drains still complete
    for (int spin = 0; spin < 10000 && writer_pool.PostErrors() == 0; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const BatcherStats stats = batcher.Stats();
    EXPECT_EQ(stats.flushed_updates, 100u);
    EXPECT_EQ(stats.drain_errors, 0u);
    EXPECT_EQ(stats.dropped_updates, 0u);
    EXPECT_EQ(stats.pool_post_errors, 1u);
  }
  EXPECT_TRUE(service->CheckInvariants().empty());
}

TEST(ShardedStressTest, TimeTriggerDrainsTrickle) {
  const auto edges = TestGraph(73);
  const auto service = MakeShardedWalkService(edges, kNumVertices, 4);

  BatcherOptions options;
  options.max_batch_updates = 1000;  // never reached
  options.max_delay_seconds = 0.005;
  UpdateBatcher batcher(*service, options);

  util::Rng rng(5150);
  constexpr uint64_t kTrickle = 10;
  for (uint64_t i = 0; i < kTrickle; ++i) {
    batcher.Submit(RandomUpdate(rng));
  }
  // The flusher is the only possible trigger; give it ample time even on a
  // loaded sanitizer runner.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (batcher.Stats().flushed_updates < kTrickle &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  const BatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.flushed_updates, kTrickle);
  EXPECT_GE(stats.time_flushes, 1u);
  EXPECT_EQ(stats.size_flushes, 0u);
  EXPECT_EQ(stats.manual_flushes, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
}

// The shared stress harness itself (used by serve-bench and the bench
// sweep), in batcher mode: every window's updates are applied when the
// flush returns, and snapshots stay consistent throughout.
TEST(ShardedStressTest, StressHarnessBatcherMode) {
  const auto edges = TestGraph(72);
  const auto service = MakeShardedWalkService(edges, kNumVertices, 4);

  util::Rng rng(9);
  graph::UpdateList updates;
  for (int i = 0; i < 3000; ++i) {
    updates.push_back(RandomUpdate(rng));
  }

  ShardedStressOptions options;
  options.query_threads = 3;
  options.batch_size = 500;
  options.walkers_per_query = 128;
  options.walk_length = 8;
  options.use_batcher = true;
  const auto report = RunShardedServiceStress(*service, updates, options);

  EXPECT_EQ(report.inconsistent_snapshots, 0u);
  EXPECT_EQ(report.batches, 6u);
  EXPECT_EQ(report.batch_seconds.size(), 6u);
  EXPECT_GT(report.walk_steps, 0u);
  EXPECT_GE(report.UpdateSecondsQuantile(0.99),
            report.UpdateSecondsQuantile(0.50));
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
  EXPECT_EQ(service->Stats().updates_applied, updates.size());
}

}  // namespace
}  // namespace bingo::walk
