// Determinism guarantees across all walk applications, thread counts,
// pinning modes, and both execution models: per-walker RNG streams make
// every result reproducible byte-for-byte, and the executor's chunk plan
// keeps results independent of steal order and CPU placement.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/csr_mmap.h"
#include "src/graph/generators.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/fused.h"
#include "src/walk/incremental.h"
#include "src/walk/ooc.h"
#include "src/walk/ooc_store.h"
#include "src/walk/partitioned.h"

namespace bingo::walk {
namespace {

using core::BingoStore;

BingoStore TestStore(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2400, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(256, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return BingoStore(graph::DynamicGraph::FromCsr(csr, biases));
}

void ExpectIdentical(const WalkResult& a, const WalkResult& b) {
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.finished_walkers, b.finished_walkers);
  EXPECT_EQ(a.path_offsets, b.path_offsets);
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.visit_counts, b.visit_counts);
}

TEST(DeterminismTest, Node2vecAcrossThreadCounts) {
  const BingoStore store = TestStore(1);
  WalkConfig cfg;
  cfg.walk_length = 16;
  cfg.record_paths = true;
  Node2vecParams params;
  util::ThreadPool pool3(3);
  util::ThreadPool pool7(7);
  const auto serial = RunNode2vec(store, cfg, params, nullptr);
  ExpectIdentical(serial, RunNode2vec(store, cfg, params, &pool3));
  ExpectIdentical(serial, RunNode2vec(store, cfg, params, &pool7));
}

TEST(DeterminismTest, PprAcrossThreadCounts) {
  const BingoStore store = TestStore(2);
  WalkConfig cfg;
  cfg.walk_length = 40;
  cfg.num_walkers = 1000;
  util::ThreadPool pool4(4);
  const auto serial = RunPpr(store, cfg, 1.0 / 20.0, nullptr);
  ExpectIdentical(serial, RunPpr(store, cfg, 1.0 / 20.0, &pool4));
}

TEST(DeterminismTest, SimpleSamplingAcrossThreadCounts) {
  const BingoStore store = TestStore(3);
  WalkConfig cfg;
  cfg.walk_length = 12;
  cfg.record_paths = true;
  cfg.count_visits = true;
  util::ThreadPool pool5(5);
  const auto serial = RunSimpleSampling(store, cfg, nullptr);
  ExpectIdentical(serial, RunSimpleSampling(store, cfg, &pool5));
}

TEST(DeterminismTest, SeedChangesResults) {
  const BingoStore store = TestStore(4);
  WalkConfig a;
  a.walk_length = 16;
  a.record_paths = true;
  WalkConfig b = a;
  b.seed = a.seed + 1;
  const auto ra = RunDeepWalk(store, a, nullptr);
  const auto rb = RunDeepWalk(store, b, nullptr);
  EXPECT_NE(ra.paths, rb.paths);
}

// The PR acceptance matrix: threads {1, 4, 16} x pinning {off, on} x apps
// {DeepWalk, node2vec, PPR} x drivers {shared-memory engine, superstep
// walker-transfer} — every cell bit-identical to the serial reference.
// Walk output depends only on the seed: never on thread count, steal
// order, CPU placement, or execution model.
TEST(DeterminismTest, MatrixAcrossThreadsPinningAndDrivers) {
  util::Rng rng(7);
  auto pairs = graph::GenerateRmat(8, 2400, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::VertexId n = 256;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams bias_params;
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);
  const auto edges = graph::ToWeightedEdges(csr, biases);

  const BingoStore store(graph::DynamicGraph::FromEdges(n, edges));
  const PartitionedBingoStore sharded(edges, n, 4);

  WalkConfig cfg;
  cfg.walk_length = 16;
  cfg.record_paths = true;
  cfg.count_visits = true;
  // More walkers than the engine's 256-walker grain, so the parallel cells
  // exercise the multi-chunk slot-array stitch (several chunks per pool),
  // not the single-chunk serial early-return.
  cfg.num_walkers = 2048;

  const char* apps[] = {"deepwalk", "node2vec", "ppr"};
  for (const char* app : apps) {
    const auto run_engine = [&](util::ThreadPool* pool) -> WalkResult {
      if (app == std::string("node2vec")) {
        return RunNode2vec(store, cfg, {}, pool);
      }
      if (app == std::string("ppr")) {
        return RunPpr(store, cfg, 1.0 / 20.0, pool);
      }
      return RunDeepWalk(store, cfg, pool);
    };
    const auto run_superstep = [&](util::ThreadPool* pool) -> WalkResult {
      if (app == std::string("node2vec")) {
        return RunPartitionedNode2vec(sharded, cfg, {}, pool);
      }
      if (app == std::string("ppr")) {
        return RunPartitionedPpr(sharded, cfg, 1.0 / 20.0, pool);
      }
      return RunPartitionedDeepWalk(sharded, cfg, pool);
    };

    const WalkResult reference = run_engine(nullptr);
    EXPECT_GT(reference.total_steps, 0u) << app;
    ExpectIdentical(reference, run_superstep(nullptr));

    for (const std::size_t threads : {1uL, 4uL, 16uL}) {
      for (const bool pin : {false, true}) {
        util::PoolOptions options;
        options.num_threads = threads;
        options.pin_threads = pin;
        options.numa_interleave = pin;
        util::ThreadPool pool(options);
        SCOPED_TRACE(std::string(app) + " threads=" +
                     std::to_string(threads) + " pin=" + (pin ? "on" : "off"));
        ExpectIdentical(reference, run_engine(&pool));
        ExpectIdentical(reference, run_superstep(&pool));
      }
    }
  }
}

// The out-of-core row of the acceptance matrix: the block-scheduled driver
// over the tiered store at budgets {unconstrained, 1/2, 1/4 of the edge
// bytes} x threads {1, 4, 16} pinned and unpinned x apps {DeepWalk,
// node2vec, PPR} — every cell bit-identical to the serial unconstrained
// engine walk of the same store. Scheduling order (which block runs when)
// is budget- and load-dependent; walker variate streams are not.
TEST(DeterminismTest, OocMatrixAcrossBudgetsThreadsAndPinning) {
  util::Rng rng(11);
  auto pairs = graph::GenerateRmat(8, 2400, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::VertexId n = 256;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams bias_params;
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);
  const auto edges = graph::ToWeightedEdges(csr, biases);

  const std::string path = ::testing::TempDir() + "/determinism_ooc.csr";
  std::string error;
  ASSERT_TRUE(graph::WriteCsrFile(path, n, edges, 4096, &error)) << error;
  const std::size_t edge_bytes = edges.size() * sizeof(graph::Edge);

  WalkConfig cfg;
  cfg.walk_length = 16;
  cfg.record_paths = true;
  cfg.count_visits = true;
  cfg.num_walkers = 2048;

  const auto open = [&](std::size_t budget) {
    TieredStoreOptions options;
    options.memory_budget_bytes = budget;
    auto store = TieredStore::Open(path, {}, options, nullptr, &error);
    EXPECT_NE(store, nullptr) << error;
    return store;
  };
  const auto run = [&](const char* app, const TieredStore& store,
                       util::ThreadPool* pool) -> WalkResult {
    if (app == std::string("node2vec")) {
      return RunOocNode2vec(store, cfg, {}, pool);
    }
    if (app == std::string("ppr")) {
      return RunOocPpr(store, cfg, 1.0 / 20.0, pool);
    }
    return RunOocDeepWalk(store, cfg, pool);
  };

  const auto reference_store = open(0);
  for (const char* app : {"deepwalk", "node2vec", "ppr"}) {
    WalkResult reference;
    if (app == std::string("node2vec")) {
      reference = RunNode2vec(*reference_store, cfg, {});
    } else if (app == std::string("ppr")) {
      reference = RunPpr(*reference_store, cfg, 1.0 / 20.0);
    } else {
      reference = RunDeepWalk(*reference_store, cfg);
    }
    EXPECT_GT(reference.total_steps, 0u) << app;

    for (const std::size_t budget :
         {std::size_t{0}, edge_bytes / 2, edge_bytes / 4}) {
      const auto store = open(budget);
      for (const std::size_t threads : {1uL, 4uL, 16uL}) {
        for (const bool pin : {false, true}) {
          util::PoolOptions options;
          options.num_threads = threads;
          options.pin_threads = pin;
          util::ThreadPool pool(options);
          SCOPED_TRACE(std::string(app) + " budget=" +
                       std::to_string(budget) + " threads=" +
                       std::to_string(threads) + " pin=" +
                       (pin ? "on" : "off"));
          ExpectIdentical(reference, run(app, *store, &pool));
        }
      }
    }
  }
  std::remove(path.c_str());
}

// The temporal row of the acceptance matrix: walks over a decaying store —
// threads {1, 4, 16} x drivers {engine, superstep, fused} — stay
// bit-identical to the serial engine reference, both before and after an
// AdvanceTime tick lands mid-run. The tick is an ordinary ApplyBatch, so
// every replica (plain and sharded) rescales to identical bits.
TEST(DeterminismTest, TemporalMatrixAcrossThreadsAndDrivers) {
  util::Rng rng(13);
  auto pairs = graph::GenerateRmat(8, 2400, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::VertexId n = 256;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams bias_params;
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);
  auto edges = graph::ToWeightedEdges(csr, biases);
  for (graph::WeightedEdge& e : edges) {
    e.timestamp = static_cast<uint32_t>((e.src + e.dst) % 5);
  }

  core::BingoConfig config;
  config.pipeline.decay = 0.9;
  BingoStore store(graph::DynamicGraph::FromEdges(n, edges), config);
  PartitionedBingoStore sharded(edges, n, 4, config);

  WalkConfig cfg;
  cfg.walk_length = 16;
  cfg.record_paths = true;
  cfg.count_visits = true;
  cfg.num_walkers = 2048;

  const auto check_phase = [&](const std::string& phase) {
    SCOPED_TRACE(phase);
    const WalkResult reference = RunDeepWalk(store, cfg, nullptr);
    EXPECT_GT(reference.total_steps, 0u);
    ExpectIdentical(reference, RunPartitionedDeepWalk(sharded, cfg, nullptr));
    WalkResult fused_serial;
    RunDeepWalkFused(store, std::span<const WalkConfig>(&cfg, 1),
                     std::span<WalkResult>(&fused_serial, 1), nullptr);
    ExpectIdentical(reference, fused_serial);
    for (const std::size_t threads : {1uL, 4uL, 16uL}) {
      util::ThreadPool pool(threads);
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ExpectIdentical(reference, RunDeepWalk(store, cfg, &pool));
      ExpectIdentical(reference, RunPartitionedDeepWalk(sharded, cfg, &pool));
      WalkResult fused;
      RunDeepWalkFused(store, std::span<const WalkConfig>(&cfg, 1),
                       std::span<WalkResult>(&fused, 1), &pool);
      ExpectIdentical(reference, fused);
    }
  };

  check_phase("epoch 0");
  // The mid-run clock tick: a deterministic synthetic batch, applied to the
  // plain store and broadcast across the sharded store's partitions.
  store.ApplyBatch({graph::MakeAdvanceTime(5)}, nullptr);
  sharded.ApplyBatch({graph::MakeAdvanceTime(5)}, nullptr);
  check_phase("epoch 5");
}

// Metapath (typed / bipartite) walks across the same driver x thread grid:
// the stepper is step-aware (the eligible type is a function of the walk
// position), so this row proves all three drivers feed identical step
// indices — engine loop counter, superstep walker.len, fused lockstep step.
TEST(DeterminismTest, MetapathMatrixAcrossThreadsAndDrivers) {
  util::Rng rng(17);
  auto pairs = graph::GenerateRmat(8, 2400, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::VertexId n = 256;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams bias_params;
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);
  const auto edges = graph::ToWeightedEdges(csr, biases);

  const BingoStore store(graph::DynamicGraph::FromEdges(n, edges));
  const PartitionedBingoStore sharded(edges, n, 4);

  WalkConfig cfg;
  cfg.walk_length = 16;
  cfg.record_paths = true;
  cfg.count_visits = true;
  cfg.num_walkers = 2048;

  for (const MetapathParams& params :
       {MetapathParams{},                      // bipartite {0, 1}
        MetapathParams{3, {0, 1, 2, 1}}}) {    // longer cyclic pattern
    ASSERT_TRUE(params.Valid());
    SCOPED_TRACE("pattern size=" + std::to_string(params.pattern.size()));
    const WalkResult reference = RunMetapath(store, cfg, params, nullptr);
    EXPECT_GT(reference.total_steps, 0u);
    ExpectIdentical(reference,
                    RunPartitionedMetapath(sharded, cfg, params, nullptr));
    for (const std::size_t threads : {1uL, 4uL, 16uL}) {
      util::ThreadPool pool(threads);
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ExpectIdentical(reference, RunMetapath(store, cfg, params, &pool));
      ExpectIdentical(reference,
                      RunPartitionedMetapath(sharded, cfg, params, &pool));
      WalkResult fused;
      RunMetapathFused(store, std::span<const WalkConfig>(&cfg, 1),
                       std::span<WalkResult>(&fused, 1), params, &pool);
      ExpectIdentical(reference, fused);
    }
  }
}

// The incremental walk corpus carries the same contract: corpus contents
// depend only on (seed, update sequence) — never on the repair thread
// count, and never on whether the corpus lived through a checkpoint/
// restore cycle mid-stream.
TEST(DeterminismTest, CorpusMatrixAcrossThreadsAndCheckpointRestore) {
  const uint64_t kSeed = 6;
  IncrementalWalkCorpus::Config config;
  config.walk_length = 16;

  // Shared update stream: 4 mixed batches, fixed ahead of the matrix.
  std::vector<graph::UpdateList> batches;
  {
    util::Rng rng(99);
    for (int round = 0; round < 4; ++round) {
      graph::UpdateList batch;
      for (int i = 0; i < 50; ++i) {
        const auto src = static_cast<graph::VertexId>(rng.NextBounded(256));
        const auto dst = static_cast<graph::VertexId>(rng.NextBounded(256));
        if (rng.NextBool(0.25)) {
          batch.push_back({graph::Update::Kind::kDelete, src, dst, 0.0});
        } else {
          batch.push_back({graph::Update::Kind::kInsert, src, dst,
                           1.0 + rng.NextBounded(16)});
        }
      }
      batches.push_back(std::move(batch));
    }
  }

  const auto corpus_walks = [&](util::ThreadPool* pool,
                                bool checkpoint_mid_stream) {
    BingoStore store = TestStore(kSeed);
    IncrementalWalkCorpus corpus(store, config);
    corpus.Generate(store, pool);
    for (std::size_t round = 0; round < batches.size(); ++round) {
      corpus.ApplyUpdates(store, batches[round], pool);
      if (checkpoint_mid_stream && round == 1) {
        const std::string path = ::testing::TempDir() +
                                 "corpus_matrix_" +
                                 std::to_string(::getpid()) + ".walks";
        EXPECT_TRUE(corpus.SaveTo(path, /*wal_seq=*/round + 1));
        IncrementalWalkCorpus restored(store, config);
        EXPECT_TRUE(restored.LoadFrom(path).has_value());
        corpus = std::move(restored);
        std::remove(path.c_str());
      }
    }
    std::vector<std::vector<graph::VertexId>> walks;
    walks.reserve(corpus.NumWalks());
    for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
      walks.push_back(corpus.Walk(w));
    }
    return walks;
  };

  const auto reference = corpus_walks(nullptr, false);
  for (const int threads : {1, 4, 16}) {
    util::ThreadPool pool(threads);
    for (const bool restore : {false, true}) {
      EXPECT_EQ(reference, corpus_walks(&pool, restore))
          << threads << " threads, restore=" << restore;
    }
  }
}

TEST(DeterminismTest, SamplingDoesNotMutateStore) {
  // SampleNeighbor is const; a heavy concurrent read workload must leave
  // the structure byte-identical (checked via the exact audit).
  const BingoStore store = TestStore(5);
  util::ThreadPool pool(4);
  WalkConfig cfg;
  cfg.walk_length = 40;
  RunDeepWalk(store, cfg, &pool);
  RunNode2vec(store, cfg, {}, &pool);
  EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
}

}  // namespace
}  // namespace bingo::walk
