// Determinism guarantees across all walk applications and thread counts:
// per-walker RNG streams make every result reproducible byte-for-byte.

#include <gtest/gtest.h>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"

namespace bingo::walk {
namespace {

using core::BingoStore;

BingoStore TestStore(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2400, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(256, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return BingoStore(graph::DynamicGraph::FromCsr(csr, biases));
}

void ExpectIdentical(const WalkResult& a, const WalkResult& b) {
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.finished_walkers, b.finished_walkers);
  EXPECT_EQ(a.path_offsets, b.path_offsets);
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.visit_counts, b.visit_counts);
}

TEST(DeterminismTest, Node2vecAcrossThreadCounts) {
  const BingoStore store = TestStore(1);
  WalkConfig cfg;
  cfg.walk_length = 16;
  cfg.record_paths = true;
  Node2vecParams params;
  util::ThreadPool pool3(3);
  util::ThreadPool pool7(7);
  const auto serial = RunNode2vec(store, cfg, params, nullptr);
  ExpectIdentical(serial, RunNode2vec(store, cfg, params, &pool3));
  ExpectIdentical(serial, RunNode2vec(store, cfg, params, &pool7));
}

TEST(DeterminismTest, PprAcrossThreadCounts) {
  const BingoStore store = TestStore(2);
  WalkConfig cfg;
  cfg.walk_length = 40;
  cfg.num_walkers = 1000;
  util::ThreadPool pool4(4);
  const auto serial = RunPpr(store, cfg, 1.0 / 20.0, nullptr);
  ExpectIdentical(serial, RunPpr(store, cfg, 1.0 / 20.0, &pool4));
}

TEST(DeterminismTest, SimpleSamplingAcrossThreadCounts) {
  const BingoStore store = TestStore(3);
  WalkConfig cfg;
  cfg.walk_length = 12;
  cfg.record_paths = true;
  cfg.count_visits = true;
  util::ThreadPool pool5(5);
  const auto serial = RunSimpleSampling(store, cfg, nullptr);
  ExpectIdentical(serial, RunSimpleSampling(store, cfg, &pool5));
}

TEST(DeterminismTest, SeedChangesResults) {
  const BingoStore store = TestStore(4);
  WalkConfig a;
  a.walk_length = 16;
  a.record_paths = true;
  WalkConfig b = a;
  b.seed = a.seed + 1;
  const auto ra = RunDeepWalk(store, a, nullptr);
  const auto rb = RunDeepWalk(store, b, nullptr);
  EXPECT_NE(ra.paths, rb.paths);
}

TEST(DeterminismTest, SamplingDoesNotMutateStore) {
  // SampleNeighbor is const; a heavy concurrent read workload must leave
  // the structure byte-identical (checked via the exact audit).
  const BingoStore store = TestStore(5);
  util::ThreadPool pool(4);
  WalkConfig cfg;
  cfg.walk_length = 40;
  RunDeepWalk(store, cfg, &pool);
  RunNode2vec(store, cfg, {}, &pool);
  EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
}

}  // namespace
}  // namespace bingo::walk
