// WalkService: snapshot isolation, epoch publication, and concurrent
// queries racing batched updates (the CI sanitizer job runs this under
// ASan/UBSan; the stress path is the data-race canary).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/service.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

constexpr VertexId kNumVertices = 256;

graph::WeightedEdgeList TestGraph(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2500, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(kNumVertices, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

graph::UpdateList MixedUpdates(uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  graph::UpdateList updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(kNumVertices));
    const auto dst = static_cast<VertexId>(rng.NextBounded(kNumVertices));
    if (i % 3 == 0) {
      updates.push_back({graph::Update::Kind::kDelete, src, dst, 0.0});
    } else {
      updates.push_back(
          {graph::Update::Kind::kInsert, src, dst, 1.0 + rng.NextUnit() * 4.0});
    }
  }
  return updates;
}

// ------------------------------------------------------ basic behavior --

TEST(WalkServiceTest, QueriesMatchPlainStore) {
  const auto edges = TestGraph(61);
  const auto service = MakeWalkService(edges, kNumVertices);
  BingoStore reference(graph::DynamicGraph::FromEdges(kNumVertices, edges));

  WalkConfig cfg;
  cfg.walk_length = 20;
  cfg.record_paths = true;
  const auto from_service = service->DeepWalk(cfg);
  const auto from_store = RunDeepWalk(reference, cfg);
  EXPECT_EQ(from_service.paths, from_store.paths);
  EXPECT_EQ(from_service.total_steps, from_store.total_steps);
  EXPECT_EQ(service->Stats().queries_served, 1u);
}

TEST(WalkServiceTest, ApplyBatchAdvancesEpochAndBothReplicas) {
  const auto edges = TestGraph(62);
  const auto service = MakeWalkService(edges, kNumVertices);
  EXPECT_EQ(service->Epoch(), 0u);

  const auto updates = MixedUpdates(11, 300);
  const auto result = service->ApplyBatch(updates);
  EXPECT_EQ(result.inserted + result.deleted + result.skipped_deletes,
            updates.size());
  EXPECT_EQ(service->Epoch(), 1u);
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();

  // The service's post-update state matches a store that applied the same
  // batch directly (both replicas replayed the identical stream).
  BingoStore reference(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  reference.ApplyBatch(updates);
  WalkConfig cfg;
  cfg.walk_length = 15;
  cfg.record_paths = true;
  EXPECT_EQ(service->DeepWalk(cfg).paths, RunDeepWalk(reference, cfg).paths);

  // Two consecutive epochs: the second batch must land on top of the first
  // on *both* replicas.
  const auto more = MixedUpdates(12, 300);
  service->ApplyBatch(more);
  reference.ApplyBatch(more);
  EXPECT_EQ(service->Epoch(), 2u);
  EXPECT_EQ(service->DeepWalk(cfg).paths, RunDeepWalk(reference, cfg).paths);
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
}

// ------------------------------------------------- snapshot isolation --

TEST(WalkServiceTest, SnapshotSurvivesConcurrentUpdateUnchanged) {
  const auto edges = TestGraph(63);
  const auto service = MakeWalkService(edges, kNumVertices);

  WalkConfig cfg;
  cfg.walk_length = 12;
  cfg.record_paths = true;

  auto snap = service->Acquire();
  EXPECT_EQ(snap.epoch(), 0u);
  const auto before = RunDeepWalk(snap.store(), cfg);

  // Publish a new epoch while the snapshot is live. The writer thread
  // finishes phase one (back replica) and publishes; it then blocks
  // draining our pinned replica until the snapshot dies.
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    service->ApplyBatch(MixedUpdates(21, 400));
    writer_done.store(true, std::memory_order_release);
  });
  while (service->Epoch() == 0) {
    std::this_thread::yield();
  }

  // New queries see the new epoch; our snapshot still serves the old one,
  // bit-identically, and stays consistent.
  EXPECT_EQ(service->Acquire().epoch(), 1u);
  const auto after = RunDeepWalk(snap.store(), cfg);
  EXPECT_EQ(before.paths, after.paths);
  EXPECT_TRUE(snap.Consistent());
  EXPECT_FALSE(writer_done.load(std::memory_order_acquire));

  { auto release = std::move(snap); }  // drop the pin; writer may finish
  writer.join();
  EXPECT_TRUE(writer_done.load(std::memory_order_acquire));
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();
}

// ------------------------------------------------------- concurrency --

TEST(WalkServiceTest, ConcurrentQueriesDuringUpdatesStayConsistent) {
  const auto edges = TestGraph(64);
  util::ThreadPool pool(2);
  const auto service = MakeWalkService(edges, kNumVertices, {}, &pool, nullptr);

  const auto updates = MixedUpdates(31, 4000);
  ServiceStressOptions options;
  options.query_threads = 4;
  options.batch_size = 500;
  options.walkers_per_query = 128;
  options.walk_length = 8;
  const auto report = RunWalkServiceStress(*service, updates, options);

  EXPECT_EQ(report.inconsistent_snapshots, 0u);
  EXPECT_EQ(report.batches, 8u);
  EXPECT_GE(report.queries, static_cast<uint64_t>(options.query_threads));
  EXPECT_GT(report.walk_steps, 0u);
  EXPECT_LE(report.max_epoch_observed, 8u);
  EXPECT_EQ(service->Epoch(), 8u);
  EXPECT_TRUE(service->CheckInvariants().empty()) << service->CheckInvariants();

  // Deterministic end state: same as replaying the stream on a plain store
  // with the same batch boundaries (a batch reorders insert-before-delete
  // per vertex, so boundaries are semantically significant).
  BingoStore reference(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  for (std::size_t begin = 0; begin < updates.size();
       begin += options.batch_size) {
    const std::size_t end = std::min<std::size_t>(updates.size(),
                                                  begin + options.batch_size);
    reference.ApplyBatch(
        graph::UpdateList(updates.begin() + begin, updates.begin() + end));
  }
  WalkConfig cfg;
  cfg.walk_length = 10;
  cfg.record_paths = true;
  EXPECT_EQ(service->DeepWalk(cfg).paths, RunDeepWalk(reference, cfg).paths);

  const auto stats = service->Stats();
  EXPECT_EQ(stats.batches_applied, 8u);
  EXPECT_EQ(stats.updates_applied, updates.size());
  EXPECT_GE(stats.queries_served, report.queries);
}

}  // namespace
}  // namespace bingo::walk
