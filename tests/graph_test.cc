// Unit tests for src/graph: dynamic graph, CSR, generators, biases,
// update streams, and I/O.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/graph/types.h"
#include "src/graph/update_stream.h"

namespace bingo::graph {
namespace {

WeightedEdgeList StarEdges(VertexId center, VertexId leaves) {
  WeightedEdgeList edges;
  for (VertexId i = 1; i <= leaves; ++i) {
    edges.push_back(WeightedEdge{center, i, static_cast<double>(i)});
  }
  return edges;
}

// Collects (dst, bias) pairs of a vertex into a canonical multiset.
std::multiset<std::pair<VertexId, double>> AdjacencySet(const DynamicGraph& g,
                                                        VertexId v) {
  std::multiset<std::pair<VertexId, double>> result;
  for (const Edge& e : g.Neighbors(v)) {
    result.insert({e.dst, e.bias});
  }
  return result;
}

// ---------------------------------------------------------- DynamicGraph --

TEST(DynamicGraphTest, FromEdgesPreservesAdjacency) {
  const auto edges = StarEdges(0, 5);
  auto g = DynamicGraph::FromEdges(6, edges);
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_EQ(g.NumEdges(), 5u);
  EXPECT_EQ(g.Degree(0), 5u);
  EXPECT_EQ(g.Degree(1), 0u);
  const auto adj = AdjacencySet(g, 0);
  EXPECT_EQ(adj.size(), 5u);
  EXPECT_TRUE(adj.count({3, 3.0}) == 1);
}

TEST(DynamicGraphTest, InsertAppendsAndReturnsIndex) {
  DynamicGraph g(4);
  EXPECT_EQ(g.Insert(0, 1, 2.0), 0u);
  EXPECT_EQ(g.Insert(0, 2, 3.0), 1u);
  EXPECT_EQ(g.Insert(1, 0, 1.0), 0u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.NeighborAt(0, 1).dst, 2u);
  EXPECT_DOUBLE_EQ(g.NeighborAt(0, 1).bias, 3.0);
}

TEST(DynamicGraphTest, TimestampsIncreaseWithInsertionOrder) {
  DynamicGraph g(2);
  g.Insert(0, 1, 1.0);
  g.Insert(0, 1, 1.0);
  EXPECT_LT(g.NeighborAt(0, 0).timestamp, g.NeighborAt(0, 1).timestamp);
}

TEST(DynamicGraphTest, SwapRemoveMiddleMovesTail) {
  DynamicGraph g(8);
  for (VertexId i = 1; i <= 4; ++i) {
    g.Insert(0, i, i);
  }
  const auto result = g.SwapRemove(0, 1);  // removes dst=2
  EXPECT_EQ(result.removed.dst, 2u);
  EXPECT_TRUE(result.moved);
  EXPECT_EQ(result.moved_from, 3u);
  EXPECT_EQ(result.moved_to, 1u);
  EXPECT_EQ(result.moved_edge.dst, 4u);
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.NeighborAt(0, 1).dst, 4u);
}

TEST(DynamicGraphTest, SwapRemoveLastDoesNotMove) {
  DynamicGraph g(8);
  g.Insert(0, 1, 1.0);
  g.Insert(0, 2, 2.0);
  const auto result = g.SwapRemove(0, 1);
  EXPECT_FALSE(result.moved);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(DynamicGraphTest, FindEarliestPrefersOldestDuplicate) {
  DynamicGraph g(4);
  g.Insert(0, 3, 1.0);
  g.Insert(0, 2, 1.0);
  g.Insert(0, 3, 9.0);  // duplicate of (0,3), later timestamp
  const auto idx = g.FindEarliest(0, 3);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
  // After deleting the earliest, the later duplicate is found.
  g.SwapRemove(0, *idx);
  const auto idx2 = g.FindEarliest(0, 3);
  ASSERT_TRUE(idx2.has_value());
  EXPECT_DOUBLE_EQ(g.NeighborAt(0, *idx2).bias, 9.0);
}

TEST(DynamicGraphTest, FindEarliestMissingReturnsNullopt) {
  DynamicGraph g(4);
  g.Insert(0, 1, 1.0);
  EXPECT_FALSE(g.FindEarliest(0, 2).has_value());
  EXPECT_FALSE(g.FindEarliest(1, 0).has_value());
}

TEST(DynamicGraphTest, HasEdgeTracksMutations) {
  DynamicGraph g(4);
  EXPECT_FALSE(g.HasEdge(0, 1));
  g.Insert(0, 1, 1.0);
  EXPECT_TRUE(g.HasEdge(0, 1));
  g.SwapRemove(0, 0);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(DynamicGraphTest, FinderKicksInForHighDegreeAndStaysConsistent) {
  DynamicGraph g(1000);
  // Push degree well past the finder threshold.
  for (VertexId i = 1; i <= 200; ++i) {
    g.Insert(0, i, 1.0);
  }
  for (VertexId i = 1; i <= 200; ++i) {
    EXPECT_TRUE(g.HasEdge(0, i)) << i;
  }
  // Random deletions keep the finder in sync.
  for (VertexId i = 1; i <= 100; ++i) {
    const auto idx = g.FindEarliest(0, i);
    ASSERT_TRUE(idx.has_value()) << i;
    g.SwapRemove(0, *idx);
    EXPECT_FALSE(g.HasEdge(0, i));
  }
  for (VertexId i = 101; i <= 200; ++i) {
    EXPECT_TRUE(g.HasEdge(0, i)) << i;
  }
}

TEST(DynamicGraphTest, CollectMatchesSortedByTimestamp) {
  DynamicGraph g(4);
  g.Insert(0, 1, 1.0);
  g.Insert(0, 2, 1.0);
  g.Insert(0, 1, 2.0);
  g.Insert(0, 1, 3.0);
  const auto matches = g.CollectMatches(0, 1);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_LT(g.NeighborAt(0, matches[0]).timestamp,
            g.NeighborAt(0, matches[1]).timestamp);
  EXPECT_LT(g.NeighborAt(0, matches[1]).timestamp,
            g.NeighborAt(0, matches[2]).timestamp);
}

TEST(DynamicGraphTest, BatchSwapRemoveMatchesSequentialSemantics) {
  // Remove a mix of front/middle/tail indices and verify the surviving
  // multiset is exactly the complement.
  DynamicGraph g(64);
  for (VertexId i = 0; i < 20; ++i) {
    g.Insert(0, 100 + i, i + 1.0);
  }
  const std::vector<uint32_t> victims = {0, 3, 4, 17, 18, 19};
  std::multiset<std::pair<VertexId, double>> expected;
  for (uint32_t i = 0; i < 20; ++i) {
    if (std::find(victims.begin(), victims.end(), i) == victims.end()) {
      expected.insert({100 + i, i + 1.0});
    }
  }
  const auto moves = g.BatchSwapRemove(0, victims);
  EXPECT_EQ(g.Degree(0), 14u);
  EXPECT_EQ(AdjacencySet(g, 0), expected);
  // Every move's target must be a victim slot in the front region, and no
  // moved edge may itself be a victim.
  for (const auto& m : moves) {
    EXPECT_LT(m.to, 14u);
    EXPECT_GE(m.from, 14u);
    EXPECT_EQ(g.NeighborAt(0, m.to).dst, m.edge.dst);
  }
}

TEST(DynamicGraphTest, BatchSwapRemoveAllEdges) {
  DynamicGraph g(8);
  std::vector<uint32_t> all;
  for (VertexId i = 0; i < 10; ++i) {
    g.Insert(0, i, 1.0);
    all.push_back(i);
  }
  g.BatchSwapRemove(0, all);
  EXPECT_EQ(g.Degree(0), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(DynamicGraphTest, BatchSwapRemoveKeepsFinderConsistent) {
  DynamicGraph g(512);
  for (VertexId i = 0; i < 100; ++i) {
    g.Insert(7, i, 1.0);
  }
  std::vector<uint32_t> victims;
  for (uint32_t i = 0; i < 100; i += 3) {
    victims.push_back(i);
  }
  g.BatchSwapRemove(7, victims);
  for (VertexId i = 0; i < 100; ++i) {
    const bool deleted = i % 3 == 0;
    EXPECT_EQ(g.HasEdge(7, i), !deleted) << i;
  }
}

TEST(DynamicGraphTest, AddVerticesGrowsVertexSet) {
  DynamicGraph g(2);
  g.AddVertices(3);
  EXPECT_EQ(g.NumVertices(), 5u);
  g.Insert(4, 0, 1.0);
  EXPECT_EQ(g.Degree(4), 1u);
}

TEST(DynamicGraphTest, MemoryBytesGrowsWithEdges) {
  DynamicGraph g(100);
  const std::size_t before = g.MemoryBytes();
  for (VertexId i = 0; i < 50; ++i) {
    g.Insert(0, i, 1.0);
  }
  EXPECT_GT(g.MemoryBytes(), before);
}

// -------------------------------------------------------------------- Csr --

TEST(CsrTest, FromPairsBuildsCorrectRanges) {
  const EdgePairList pairs = {{0, 1}, {0, 2}, {2, 0}, {2, 1}, {2, 3}};
  const Csr csr = Csr::FromPairs(4, pairs);
  EXPECT_EQ(csr.NumVertices(), 4u);
  EXPECT_EQ(csr.NumEdges(), 5u);
  EXPECT_EQ(csr.Degree(0), 2u);
  EXPECT_EQ(csr.Degree(1), 0u);
  EXPECT_EQ(csr.Degree(2), 3u);
  EXPECT_EQ(csr.MaxDegree(), 3u);
}

TEST(CsrTest, DedupRemovesDuplicates) {
  const EdgePairList pairs = {{0, 1}, {0, 1}, {0, 2}, {1, 0}, {1, 0}};
  const Csr csr = Csr::FromPairs(3, pairs, /*dedup=*/true);
  EXPECT_EQ(csr.NumEdges(), 3u);
  EXPECT_EQ(csr.Degree(0), 2u);
  EXPECT_EQ(csr.Degree(1), 1u);
}

// ------------------------------------------------------------- generators --

TEST(GeneratorsTest, RmatProducesRequestedEdgeCountInRange) {
  util::Rng rng(1);
  const auto edges = GenerateRmat(10, 5000, rng);
  EXPECT_EQ(edges.size(), 5000u);
  for (const EdgePair& e : edges) {
    EXPECT_LT(e.src, 1024u);
    EXPECT_LT(e.dst, 1024u);
  }
}

TEST(GeneratorsTest, RmatIsSkewed) {
  util::Rng rng(2);
  const auto edges = GenerateRmat(12, 40000, rng);
  const Csr csr = Csr::FromPairs(1 << 12, edges);
  // Power-law-ish: the max degree far exceeds the average degree.
  const double avg = 40000.0 / (1 << 12);
  EXPECT_GT(csr.MaxDegree(), avg * 5);
}

TEST(GeneratorsTest, UniformGeneratorInRange) {
  util::Rng rng(3);
  const auto edges = GenerateUniform(100, 1000, rng);
  EXPECT_EQ(edges.size(), 1000u);
  for (const EdgePair& e : edges) {
    EXPECT_LT(e.src, 100u);
    EXPECT_LT(e.dst, 100u);
  }
}

TEST(GeneratorsTest, RingHasUniformDegree) {
  const auto edges = GenerateRing(10, 3);
  const Csr csr = Csr::FromPairs(10, edges);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_EQ(csr.Degree(v), 3u);
  }
}

TEST(GeneratorsTest, MakeUndirectedDoublesEdges) {
  EdgePairList edges = {{0, 1}, {2, 3}};
  MakeUndirected(edges);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[2].src, 1u);
  EXPECT_EQ(edges[2].dst, 0u);
}

TEST(GeneratorsTest, CanonicalizeDropsLoopsAndDuplicates) {
  EdgePairList edges = {{0, 0}, {0, 1}, {0, 1}, {1, 2}};
  Canonicalize(edges);
  EXPECT_EQ(edges.size(), 2u);
}

// ------------------------------------------------------------------ bias --

TEST(BiasTest, DegreeBiasMatchesOutDegrees) {
  const EdgePairList pairs = {{0, 1}, {0, 2}, {1, 2}, {2, 0}, {2, 1}, {2, 2}};
  const Csr csr = Csr::FromPairs(3, pairs);
  util::Rng rng(1);
  BiasParams params;
  params.distribution = BiasDistribution::kDegree;
  const auto biases = GenerateBiases(csr, params, rng);
  ASSERT_EQ(biases.size(), 6u);
  // Edge 0: (0 -> 1): degree(1) == 1. Edge 1: (0 -> 2): degree(2) == 3.
  EXPECT_DOUBLE_EQ(biases[0], 1.0);
  EXPECT_DOUBLE_EQ(biases[1], 3.0);
}

TEST(BiasTest, SyntheticDistributionsRespectBounds) {
  const Csr csr = Csr::FromPairs(50, GenerateRing(50, 4));
  util::Rng rng(7);
  for (const auto dist : {BiasDistribution::kUniform, BiasDistribution::kGauss,
                          BiasDistribution::kPowerLaw}) {
    BiasParams params;
    params.distribution = dist;
    params.max_bias = 100;
    const auto biases = GenerateBiases(csr, params, rng);
    for (double b : biases) {
      EXPECT_GE(b, 1.0);
      EXPECT_LE(b, 100.0);
      EXPECT_EQ(b, std::floor(b));  // integer-valued
    }
  }
}

TEST(BiasTest, FloatingPointAddsFraction) {
  const Csr csr = Csr::FromPairs(10, GenerateRing(10, 2));
  util::Rng rng(9);
  BiasParams params;
  params.distribution = BiasDistribution::kUniform;
  params.max_bias = 10;
  params.floating_point = true;
  const auto biases = GenerateBiases(csr, params, rng);
  bool any_fraction = false;
  for (double b : biases) {
    EXPECT_GE(b, 1.0);
    any_fraction = any_fraction || b != std::floor(b);
  }
  EXPECT_TRUE(any_fraction);
}

TEST(BiasTest, PowerLawIsSkewedTowardSmallValues) {
  const Csr csr = Csr::FromPairs(2000, GenerateRing(2000, 5));
  util::Rng rng(11);
  BiasParams params;
  params.distribution = BiasDistribution::kPowerLaw;
  params.max_bias = 1000;
  const auto biases = GenerateBiases(csr, params, rng);
  uint64_t small = 0;
  for (double b : biases) {
    small += b <= 10 ? 1 : 0;
  }
  // Far more than 10/1000 of the mass sits at <= 10.
  EXPECT_GT(small, biases.size() / 4);
}

// --------------------------------------------------------- update streams --

TEST(UpdateStreamTest, InsertionWorkloadHasOnlyInserts) {
  util::Rng rng(5);
  const Csr csr = Csr::FromPairs(100, GenerateRing(100, 10));
  const auto edges = ToWeightedEdges(csr, std::vector<double>(1000, 1.0));
  UpdateWorkloadParams params;
  params.kind = UpdateKind::kInsertion;
  params.batch_size = 20;
  params.num_batches = 10;
  const auto workload = BuildUpdateWorkload(edges, params, rng);
  EXPECT_EQ(workload.initial_edges.size(), 800u);
  EXPECT_EQ(workload.updates.size(), 200u);
  for (const Update& u : workload.updates) {
    EXPECT_EQ(u.kind, Update::Kind::kInsert);
  }
}

TEST(UpdateStreamTest, DeletionWorkloadDeletesLiveEdges) {
  util::Rng rng(6);
  const Csr csr = Csr::FromPairs(100, GenerateRing(100, 10));
  const auto edges = ToWeightedEdges(csr, std::vector<double>(1000, 1.0));
  UpdateWorkloadParams params;
  params.kind = UpdateKind::kDeletion;
  params.batch_size = 30;
  params.num_batches = 10;
  const auto workload = BuildUpdateWorkload(edges, params, rng);
  EXPECT_EQ(workload.initial_edges.size(), 1000u);
  EXPECT_EQ(workload.updates.size(), 300u);
  // Every delete must target a distinct live edge: replaying against a
  // multiset must always find its target.
  std::multiset<std::pair<VertexId, VertexId>> live;
  for (const auto& e : workload.initial_edges) {
    live.insert({e.src, e.dst});
  }
  for (const Update& u : workload.updates) {
    EXPECT_EQ(u.kind, Update::Kind::kDelete);
    const auto it = live.find({u.src, u.dst});
    ASSERT_NE(it, live.end());
    live.erase(it);
  }
}

TEST(UpdateStreamTest, MixedWorkloadIsBalancedAndReplayable) {
  util::Rng rng(7);
  const Csr csr = Csr::FromPairs(200, GenerateRing(200, 10));
  const auto edges = ToWeightedEdges(csr, std::vector<double>(2000, 2.0));
  UpdateWorkloadParams params;
  params.kind = UpdateKind::kMixed;
  params.batch_size = 50;
  params.num_batches = 10;
  const auto workload = BuildUpdateWorkload(edges, params, rng);
  uint64_t inserts = 0;
  std::multiset<std::pair<VertexId, VertexId>> live;
  for (const auto& e : workload.initial_edges) {
    live.insert({e.src, e.dst});
  }
  for (const Update& u : workload.updates) {
    if (u.kind == Update::Kind::kInsert) {
      ++inserts;
      live.insert({u.src, u.dst});
    } else {
      const auto it = live.find({u.src, u.dst});
      ASSERT_NE(it, live.end()) << "delete of non-live edge";
      live.erase(it);
    }
  }
  EXPECT_EQ(inserts, 250u);
}

TEST(UpdateStreamTest, SplitIntoBatchesPreservesOrder) {
  UpdateList updates(25);
  for (std::size_t i = 0; i < 25; ++i) {
    updates[i].src = static_cast<VertexId>(i);
  }
  const auto batches = SplitIntoBatches(updates, 10);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 10u);
  EXPECT_EQ(batches[2].size(), 5u);
  EXPECT_EQ(batches[2][4].src, 24u);
}

// -------------------------------------------------------------------- io --

TEST(IoTest, TextRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bingo_io_text.txt";
  const WeightedEdgeList edges = {{0, 1, 2.5}, {3, 4, 1.0}, {2, 2, 7.0}};
  ASSERT_TRUE(SaveWeightedEdgesText(path, edges));
  WeightedEdgeList loaded;
  ASSERT_TRUE(LoadWeightedEdgesText(path, loaded));
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].src, 0u);
  EXPECT_EQ(loaded[0].dst, 1u);
  EXPECT_DOUBLE_EQ(loaded[0].bias, 2.5);
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bingo_io_bin.dat";
  WeightedEdgeList edges;
  for (uint32_t i = 0; i < 1000; ++i) {
    edges.push_back(WeightedEdge{i, i * 2 + 1, i * 0.5});
  }
  ASSERT_TRUE(SaveWeightedEdgesBinary(path, edges));
  WeightedEdgeList loaded;
  ASSERT_TRUE(LoadWeightedEdgesBinary(path, loaded));
  ASSERT_EQ(loaded.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(loaded[i].src, edges[i].src);
    EXPECT_EQ(loaded[i].dst, edges[i].dst);
    EXPECT_DOUBLE_EQ(loaded[i].bias, edges[i].bias);
  }
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  WeightedEdgeList edges;
  EXPECT_FALSE(LoadWeightedEdgesText("/nonexistent/nope.txt", edges));
  EXPECT_FALSE(LoadWeightedEdgesBinary("/nonexistent/nope.bin", edges));
}

TEST(IoTest, TruncatedBinaryFileFailsInsteadOfHugeResize) {
  // Regression: the on-disk count used to be trusted and resize()d before
  // reading, so a truncated file could demand a multi-GB allocation. Now
  // the count is validated against the bytes actually present.
  const std::string path = ::testing::TempDir() + "/bingo_io_trunc.dat";
  WeightedEdgeList edges;
  for (uint32_t i = 0; i < 500; ++i) {
    edges.push_back(WeightedEdge{i, i + 1, 1.0});
  }
  ASSERT_TRUE(SaveWeightedEdgesBinary(path, edges));
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  WeightedEdgeList loaded;
  EXPECT_FALSE(LoadWeightedEdgesBinary(path, loaded));

  // A fabricated header claiming ~2^60 records must fail fast, not OOM.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const uint64_t magic = 0x42494e474f454447ULL;  // legacy "BINGOEDG"
    const uint64_t absurd = uint64_t{1} << 60;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  }
  EXPECT_FALSE(LoadWeightedEdgesBinary(path, loaded));
  std::remove(path.c_str());
}

TEST(IoTest, LegacyUnchecksummedBinaryStillLoads) {
  const std::string path = ::testing::TempDir() + "/bingo_io_legacy.dat";
  const WeightedEdgeList edges = {{0, 1, 2.0}, {1, 2, 5.5}};
  {
    // Hand-write the pre-v2 format: magic, count, packed 16-byte records
    // {src, dst, bias}, no CRCs. (The in-memory struct has since grown a
    // timestamp + padding, so the legacy layout is written field-wise.)
    std::ofstream out(path, std::ios::binary);
    const uint64_t magic = 0x42494e474f454447ULL;
    const uint64_t count = edges.size();
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const WeightedEdge& e : edges) {
      out.write(reinterpret_cast<const char*>(&e.src), sizeof(e.src));
      out.write(reinterpret_cast<const char*>(&e.dst), sizeof(e.dst));
      out.write(reinterpret_cast<const char*>(&e.bias), sizeof(e.bias));
    }
  }
  WeightedEdgeList loaded;
  ASSERT_TRUE(LoadWeightedEdgesBinary(path, loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].dst, 2u);
  EXPECT_DOUBLE_EQ(loaded[1].bias, 5.5);
  std::remove(path.c_str());
}

TEST(IoTest, CorruptedBinaryPayloadFailsCrc) {
  const std::string path = ::testing::TempDir() + "/bingo_io_crc.dat";
  WeightedEdgeList edges;
  for (uint32_t i = 0; i < 100; ++i) {
    edges.push_back(WeightedEdge{i, i + 1, 3.0});
  }
  ASSERT_TRUE(SaveWeightedEdgesBinary(path, edges));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200, std::ios::beg);  // inside the edge payload
    const char garbage = 0x7F;
    f.write(&garbage, 1);
  }
  WeightedEdgeList loaded;
  EXPECT_FALSE(LoadWeightedEdgesBinary(path, loaded));
  std::remove(path.c_str());
}

TEST(IoTest, AtomicSaveFailureLeavesOldFileIntact) {
  const std::string path = ::testing::TempDir() + "/bingo_io_atomic.dat";
  const WeightedEdgeList good = {{0, 1, 2.0}, {3, 4, 1.0}};
  ASSERT_TRUE(SaveWeightedEdgesBinary(path, good));

  // Block the writer's temp file with a directory: the save must fail
  // without touching the existing good file.
  const std::string tmp = path + ".tmp";
  std::filesystem::create_directory(tmp);
  const WeightedEdgeList other = {{7, 8, 9.0}};
  EXPECT_FALSE(SaveWeightedEdgesBinary(path, other));
  std::filesystem::remove(tmp);

  WeightedEdgeList loaded;
  ASSERT_TRUE(LoadWeightedEdgesBinary(path, loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].dst, 4u);
  std::remove(path.c_str());
}

TEST(IoTest, TextRejectsMalformedAndInvalidBias) {
  const std::string path = ::testing::TempDir() + "/bingo_io_badtext.txt";
  const auto write_and_load = [&](const char* body) {
    {
      std::ofstream out(path);
      out << body;
    }
    WeightedEdgeList loaded;
    return LoadWeightedEdgesText(path, loaded);
  };
  // Regression: a malformed third column used to be silently dropped,
  // loading the edge with bias 1.0.
  EXPECT_FALSE(write_and_load("1 2 abc\n"));
  EXPECT_FALSE(write_and_load("1 2 3.5garbage\n"));
  EXPECT_FALSE(write_and_load("1 2 3.5 4\n"));
  EXPECT_FALSE(write_and_load("1 2 -3.0\n"));
  EXPECT_FALSE(write_and_load("1 2 nan\n"));
  EXPECT_FALSE(write_and_load("1 2 inf\n"));
  // Still-valid shapes: missing bias defaults to 1.0; zero is legal.
  EXPECT_TRUE(write_and_load("1 2\n# comment\n3 4 0.0\n5 6 2.25\n"));
  WeightedEdgeList loaded;
  ASSERT_TRUE(LoadWeightedEdgesText(path, loaded));
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded[0].bias, 1.0);
  EXPECT_DOUBLE_EQ(loaded[1].bias, 0.0);
  std::remove(path.c_str());
}

TEST(IoTest, ImpliedVertexCount) {
  EXPECT_EQ(ImpliedVertexCount({}), 0u);
  EXPECT_EQ(ImpliedVertexCount({{0, 5, 1.0}, {3, 2, 1.0}}), 6u);
}

}  // namespace
}  // namespace bingo::graph
