// Cross-backend walk equivalence through the store-generic engine.
//
// The engine assigns every walker its own RNG stream, so a workload's
// output is a pure function of (seed, store). That gives two testable
// guarantees:
//
//   1. Bit-identity across backends that share sampler semantics:
//      PartitionedBingoStore builds the same per-vertex sampler over the
//      same adjacency as a whole-graph BingoStore, so DeepWalk, node2vec,
//      and PPR must produce byte-equal WalkResults at any shard count —
//      before and after applying the same update batch.
//
//   2. Per-backend reproducibility: on every backend (Bingo, alias, ITS,
//      reservoir, partitioned), each workload is bit-identical across
//      repeated runs and across thread counts.
//
// Backends with different sampling algorithms (alias tables vs. CDF search
// vs. radix rejection) map the same RNG stream to different — identically
// distributed — neighbor choices, so across *those* the test asserts
// distributional agreement (chi-square on hub transitions) rather than
// byte equality.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/baseline_stores.h"
#include "src/walk/partitioned.h"
#include "src/walk/store.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

constexpr VertexId kNumVertices = 256;

graph::WeightedEdgeList TestGraph(uint64_t seed) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(8, 2500, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(kNumVertices, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

graph::UpdateList MixedUpdates(const graph::WeightedEdgeList& edges,
                               uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  graph::UpdateList updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 3 == 0 && !edges.empty()) {
      const auto& e = edges[rng.NextBounded(edges.size())];
      updates.push_back({graph::Update::Kind::kDelete, e.src, e.dst, 0.0});
    } else {
      const auto src = static_cast<VertexId>(rng.NextBounded(kNumVertices));
      const auto dst = static_cast<VertexId>(rng.NextBounded(kNumVertices));
      updates.push_back(
          {graph::Update::Kind::kInsert, src, dst, 1.0 + rng.NextUnit() * 7.0});
    }
  }
  return updates;
}

void ExpectResultsEqual(const WalkResult& a, const WalkResult& b) {
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.finished_walkers, b.finished_walkers);
  EXPECT_EQ(a.path_offsets, b.path_offsets);
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.visit_counts, b.visit_counts);
}

// Runs all three workloads on one backend with fixed seeds.
template <AdjacencyStore Store>
std::vector<WalkResult> AllWorkloads(const Store& store,
                                     util::ThreadPool* pool) {
  WalkConfig cfg;
  cfg.walk_length = 20;
  cfg.record_paths = true;
  std::vector<WalkResult> results;
  results.push_back(RunDeepWalk(store, cfg, pool));
  results.push_back(RunNode2vec(store, cfg, Node2vecParams{}, pool));
  WalkConfig ppr_cfg;
  ppr_cfg.walk_length = 20;
  results.push_back(RunPpr(store, ppr_cfg, 1.0 / 20.0, pool));
  return results;
}

// ------------------------------------- Bingo vs partitioned bit-identity --

TEST(CrossBackendTest, PartitionedMatchesWholeGraphBitExactly) {
  const auto edges = TestGraph(21);
  BingoStore whole(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  const auto reference = AllWorkloads(whole, nullptr);

  for (const int shards : {1, 2, 4, 8}) {
    PartitionedBingoStore partitioned(edges, kNumVertices, shards);
    const auto results = AllWorkloads(partitioned, nullptr);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " workload=" +
                   std::to_string(i));
      ExpectResultsEqual(reference[i], results[i]);
    }
  }
}

TEST(CrossBackendTest, PartitionedMatchesWholeGraphAfterUpdates) {
  const auto edges = TestGraph(22);
  const auto updates = MixedUpdates(edges, 7, 600);

  BingoStore whole(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  PartitionedBingoStore partitioned(edges, kNumVertices, 3);

  const auto whole_result = whole.ApplyBatch(updates);
  const auto part_result = partitioned.ApplyBatch(updates);
  EXPECT_EQ(whole_result, part_result);
  EXPECT_TRUE(whole.CheckInvariants().empty()) << whole.CheckInvariants();
  EXPECT_TRUE(partitioned.CheckInvariants().empty())
      << partitioned.CheckInvariants();

  const auto a = AllWorkloads(whole, nullptr);
  const auto b = AllWorkloads(partitioned, nullptr);
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("workload=" + std::to_string(i));
    ExpectResultsEqual(a[i], b[i]);
  }
}

// --------------------------------------- per-backend walk reproducibility --

template <AdjacencyStore Store>
void ExpectBackendDeterministic(const Store& store) {
  util::ThreadPool pool(4);
  const auto serial = AllWorkloads(store, nullptr);
  const auto repeat = AllWorkloads(store, nullptr);
  const auto parallel = AllWorkloads(store, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("workload=" + std::to_string(i));
    ExpectResultsEqual(serial[i], repeat[i]);
    ExpectResultsEqual(serial[i], parallel[i]);
  }
}

TEST(CrossBackendTest, EveryBackendIsDeterministicAcrossThreadCounts) {
  const auto edges = TestGraph(23);
  {
    BingoStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
    ExpectBackendDeterministic(store);
  }
  {
    AliasStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
    ExpectBackendDeterministic(store);
  }
  {
    ItsStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
    ExpectBackendDeterministic(store);
  }
  {
    ReservoirStore store(graph::DynamicGraph::FromEdges(kNumVertices, edges));
    ExpectBackendDeterministic(store);
  }
  {
    PartitionedBingoStore store(edges, kNumVertices, 4);
    ExpectBackendDeterministic(store);
  }
}

// ------------------------------------ cross-algorithm distribution parity --

// DeepWalk transition frequencies out of the hub must match the hub's bias
// distribution on every backend (the backends differ in sampling algorithm
// but must draw the same distribution).
TEST(CrossBackendTest, WalkTransitionsAgreeAcrossSamplingAlgorithms) {
  const auto edges = TestGraph(24);
  BingoStore probe(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  VertexId hub = 0;
  for (VertexId v = 0; v < kNumVertices; ++v) {
    if (probe.Graph().Degree(v) > probe.Graph().Degree(hub)) {
      hub = v;
    }
  }
  const auto adj = probe.Graph().Neighbors(hub);
  double bias_total = 0;
  for (const auto& e : adj) {
    bias_total += e.bias;
  }
  std::vector<double> expected;
  for (const auto& e : adj) {
    expected.push_back(e.bias / bias_total);
  }

  const auto hub_histogram = [&](const auto& store) {
    WalkConfig cfg;
    cfg.walk_length = 40;
    cfg.num_walkers = 4096;
    cfg.record_paths = true;
    const WalkResult result = RunDeepWalk(store, cfg, nullptr);
    std::map<VertexId, uint64_t> transitions;
    for (std::size_t w = 0; w < cfg.num_walkers; ++w) {
      for (uint64_t i = result.path_offsets[w];
           i + 1 < result.path_offsets[w + 1]; ++i) {
        if (result.paths[i] == hub) {
          ++transitions[result.paths[i + 1]];
        }
      }
    }
    std::vector<uint64_t> counts;
    for (const auto& e : adj) {
      const auto it = transitions.find(e.dst);
      counts.push_back(it == transitions.end() ? 0 : it->second);
    }
    return counts;
  };

  BingoStore bingo(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  AliasStore alias(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  ItsStore its(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  ReservoirStore reservoir(graph::DynamicGraph::FromEdges(kNumVertices, edges));
  PartitionedBingoStore partitioned(edges, kNumVertices, 4);

  int backend = 0;
  for (const auto& counts :
       {hub_histogram(bingo), hub_histogram(alias), hub_histogram(its),
        hub_histogram(reservoir), hub_histogram(partitioned)}) {
    SCOPED_TRACE("backend=" + std::to_string(backend++));
    EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected, 1e-4));
  }
}

// -------------------------------------------------- concept conformance --

static_assert(WalkStore<BingoStore> && AdjacencyStore<BingoStore>);
static_assert(WalkStore<AliasStore> && AdjacencyStore<AliasStore>);
static_assert(WalkStore<ItsStore> && AdjacencyStore<ItsStore>);
static_assert(WalkStore<ReservoirStore> && AdjacencyStore<ReservoirStore>);
static_assert(WalkStore<PartitionedBingoStore> &&
              AdjacencyStore<PartitionedBingoStore>);

}  // namespace
}  // namespace bingo::walk
