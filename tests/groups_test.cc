// Tests for radix-group storage: classification (Eq 9), the inverted index,
// swap-with-tail deletion, index renaming, and the two-phase parallel
// delete-and-swap (Fig 10b).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/core/groups.h"
#include "src/util/rng.h"

namespace bingo::core {
namespace {

AdaptiveConfig Ga() { return AdaptiveConfig{true, 40.0, 10.0}; }
AdaptiveConfig Bs() { return AdaptiveConfig{false, 40.0, 10.0}; }

// ---------------------------------------------------------- classification --

TEST(ClassifyTest, EmptyGroup) {
  EXPECT_EQ(ClassifyGroup(0, 100, Ga()), GroupKind::kEmpty);
  EXPECT_EQ(ClassifyGroup(0, 100, Bs()), GroupKind::kEmpty);
}

TEST(ClassifyTest, BsModeIsAlwaysRegular) {
  EXPECT_EQ(ClassifyGroup(1, 100, Bs()), GroupKind::kRegular);
  EXPECT_EQ(ClassifyGroup(99, 100, Bs()), GroupKind::kRegular);
  EXPECT_EQ(ClassifyGroup(5, 100, Bs()), GroupKind::kRegular);
}

TEST(ClassifyTest, DenseBeatsOneElement) {
  // Eq 9 order: a 1-of-2 group is 50% > alpha -> dense, not one-element.
  EXPECT_EQ(ClassifyGroup(1, 2, Ga()), GroupKind::kDense);
}

TEST(ClassifyTest, PaperExampleFig8) {
  // Fig 8: d = 8. Groups 2^0 and 2^1 with 4+ members are dense (> 40%);
  // group 2^4 with one member (12.5%) is one-element; a 2-member group
  // (25%) is regular; with d = 100 a 5-member group (5% < 10%) is sparse.
  EXPECT_EQ(ClassifyGroup(4, 8, Ga()), GroupKind::kDense);
  EXPECT_EQ(ClassifyGroup(5, 8, Ga()), GroupKind::kDense);
  EXPECT_EQ(ClassifyGroup(1, 8, Ga()), GroupKind::kOneElement);
  EXPECT_EQ(ClassifyGroup(2, 8, Ga()), GroupKind::kRegular);
  EXPECT_EQ(ClassifyGroup(5, 100, Ga()), GroupKind::kSparse);
}

TEST(ClassifyTest, BoundariesAreExclusive) {
  // Exactly alpha% is NOT dense; exactly beta% is NOT sparse.
  EXPECT_EQ(ClassifyGroup(40, 100, Ga()), GroupKind::kRegular);
  EXPECT_EQ(ClassifyGroup(41, 100, Ga()), GroupKind::kDense);
  EXPECT_EQ(ClassifyGroup(10, 100, Ga()), GroupKind::kRegular);
  EXPECT_EQ(ClassifyGroup(9, 100, Ga()), GroupKind::kSparse);
}

// ---------------------------------------------------------------- IndexMap --

TEST(IndexMapTest, InsertFindErase) {
  IndexMap map;
  map.Insert(10, 0);
  map.Insert(20, 1);
  map.Insert(30, 2);
  EXPECT_EQ(map.Size(), 3u);
  EXPECT_EQ(map.Find(20).value(), 1u);
  EXPECT_FALSE(map.Find(40).has_value());
  EXPECT_TRUE(map.Erase(20));
  EXPECT_FALSE(map.Find(20).has_value());
  EXPECT_FALSE(map.Erase(20));
  EXPECT_EQ(map.Size(), 2u);
}

TEST(IndexMapTest, UpdateRewritesValue) {
  IndexMap map;
  map.Insert(5, 100);
  EXPECT_TRUE(map.Update(5, 200));
  EXPECT_EQ(map.Find(5).value(), 200u);
  EXPECT_FALSE(map.Update(6, 1));
}

TEST(IndexMapTest, SurvivesGrowthAndTombstoneChurn) {
  IndexMap map;
  util::Rng rng(3);
  std::set<uint32_t> live;
  for (int round = 0; round < 5000; ++round) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(500));
    if (live.count(key)) {
      EXPECT_TRUE(map.Erase(key));
      live.erase(key);
    } else {
      map.Insert(key, key * 2);
      live.insert(key);
    }
  }
  EXPECT_EQ(map.Size(), live.size());
  for (uint32_t key : live) {
    ASSERT_TRUE(map.Find(key).has_value()) << key;
    EXPECT_EQ(map.Find(key).value(), key * 2);
  }
  for (uint32_t key = 0; key < 500; ++key) {
    if (!live.count(key)) {
      EXPECT_FALSE(map.Find(key).has_value()) << key;
    }
  }
}

// -------------------------------------------------------------- RadixGroup --

std::vector<uint32_t> Sorted(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<uint32_t> MembersOf(const RadixGroup& g) {
  std::vector<uint32_t> members;
  g.CollectMembers(members);
  return Sorted(members);
}

TEST(RadixGroupTest, EmptyToOneElementToRegularEscalation) {
  RadixGroup g;
  EXPECT_EQ(g.Kind(), GroupKind::kEmpty);
  g.Insert(7, 10);
  EXPECT_EQ(g.Kind(), GroupKind::kOneElement);
  EXPECT_EQ(g.Count(), 1u);
  g.Insert(3, 10);
  EXPECT_EQ(g.Kind(), GroupKind::kRegular);
  EXPECT_EQ(g.Count(), 2u);
  EXPECT_EQ(MembersOf(g), (std::vector<uint32_t>{3, 7}));
  EXPECT_TRUE(g.CheckInvariants().empty());
}

TEST(RadixGroupTest, RegularRemoveKeepsInvariants) {
  RadixGroup g;
  std::vector<uint32_t> members = {0, 1, 2, 3, 4, 5};
  g.RebuildAs(GroupKind::kRegular, members, 6);
  g.Remove(2);
  g.Remove(5);
  EXPECT_EQ(g.Count(), 4u);
  EXPECT_EQ(MembersOf(g), (std::vector<uint32_t>{0, 1, 3, 4}));
  EXPECT_TRUE(g.CheckInvariants().empty()) << g.CheckInvariants();
}

TEST(RadixGroupTest, RemoveLastMemberClearsGroup) {
  RadixGroup g;
  g.Insert(4, 5);
  g.Remove(4);
  EXPECT_EQ(g.Kind(), GroupKind::kEmpty);
  EXPECT_EQ(g.Count(), 0u);
  EXPECT_EQ(g.MemoryBytes(), 0u);
}

TEST(RadixGroupTest, RenameRegular) {
  RadixGroup g;
  std::vector<uint32_t> members = {0, 5, 9};
  g.RebuildAs(GroupKind::kRegular, members, 10);
  g.Rename(9, 2);
  EXPECT_TRUE(g.Contains(2));
  EXPECT_FALSE(g.Contains(9));
  EXPECT_TRUE(g.CheckInvariants().empty()) << g.CheckInvariants();
}

TEST(RadixGroupTest, RenameSparseAndOneElement) {
  RadixGroup sparse;
  std::vector<uint32_t> members = {10, 40};
  sparse.RebuildAs(GroupKind::kSparse, members, 100);
  sparse.Rename(40, 3);
  EXPECT_TRUE(sparse.Contains(3));
  EXPECT_FALSE(sparse.Contains(40));
  EXPECT_TRUE(sparse.CheckInvariants().empty());

  RadixGroup one;
  std::vector<uint32_t> single = {10};
  one.RebuildAs(GroupKind::kOneElement, single, 100);
  one.Rename(10, 0);
  EXPECT_TRUE(one.Contains(0));
}

TEST(RadixGroupTest, DenseStoresOnlyCount) {
  RadixGroup g;
  std::vector<uint32_t> members = {1, 2, 3, 4, 5};
  g.RebuildAs(GroupKind::kDense, members, 8);
  EXPECT_EQ(g.Count(), 5u);
  EXPECT_EQ(g.MemoryBytes(), 0u);
  g.Insert(6, 9);
  EXPECT_EQ(g.Count(), 6u);
  g.Remove(3);
  EXPECT_EQ(g.Count(), 5u);
  g.Rename(4, 0);  // no-op, must not crash
}

TEST(RadixGroupTest, PickUniformCoversAllMembers) {
  RadixGroup g;
  std::vector<uint32_t> members = {2, 4, 8, 16};
  g.RebuildAs(GroupKind::kRegular, members, 20);
  util::Rng rng(1);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint32_t pick = g.PickUniform(rng);
    EXPECT_TRUE(std::find(members.begin(), members.end(), pick) != members.end());
    seen.insert(pick);
  }
  EXPECT_EQ(seen.size(), members.size());
}

TEST(RadixGroupTest, RebuildAsRoundTripsAcrossKinds) {
  std::vector<uint32_t> members = {3, 6, 9, 12};
  for (const GroupKind kind :
       {GroupKind::kRegular, GroupKind::kSparse, GroupKind::kDense}) {
    RadixGroup g;
    g.RebuildAs(kind, members, 16);
    EXPECT_EQ(g.Kind(), kind);
    EXPECT_EQ(g.Count(), 4u);
    if (kind != GroupKind::kDense) {
      EXPECT_EQ(MembersOf(g), members);
      EXPECT_TRUE(g.CheckInvariants().empty());
    }
  }
}

// Two-phase delete-and-swap property sweep: for random member sets and
// random victim subsets, BatchRemove must retain exactly the complement and
// keep the inverted index coherent.
class BatchRemoveParamTest
    : public ::testing::TestWithParam<std::tuple<GroupKind, int>> {};

TEST_P(BatchRemoveParamTest, RemovesExactlyTheVictims) {
  const auto [kind, seed] = GetParam();
  util::Rng rng(seed);
  const uint32_t size = 2 + static_cast<uint32_t>(rng.NextBounded(60));
  std::vector<uint32_t> members;
  for (uint32_t i = 0; i < size; ++i) {
    members.push_back(i * 3);  // arbitrary distinct neighbor indices
  }
  // Shuffle so member order differs from index order.
  for (std::size_t i = members.size(); i > 1; --i) {
    std::swap(members[i - 1], members[rng.NextBounded(i)]);
  }
  RadixGroup g;
  g.RebuildAs(kind, members, size * 3 + 1);

  std::vector<uint32_t> victims;
  std::vector<uint32_t> survivors;
  for (uint32_t m : members) {
    (rng.NextBool(0.4) ? victims : survivors).push_back(m);
  }
  if (victims.empty()) {
    victims.push_back(members[0]);
    survivors.erase(std::find(survivors.begin(), survivors.end(), members[0]));
  }
  g.BatchRemove(victims);
  EXPECT_EQ(g.Count(), survivors.size());
  if (kind != GroupKind::kDense && !survivors.empty()) {
    EXPECT_EQ(MembersOf(g), Sorted(survivors));
    EXPECT_TRUE(g.CheckInvariants().empty()) << g.CheckInvariants();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchRemoveParamTest,
    ::testing::Combine(::testing::Values(GroupKind::kRegular, GroupKind::kSparse,
                                         GroupKind::kDense),
                       ::testing::Range(0, 25)));

TEST(RadixGroupTest, BatchRemoveAllClears) {
  RadixGroup g;
  std::vector<uint32_t> members = {1, 2, 3};
  g.RebuildAs(GroupKind::kRegular, members, 4);
  g.BatchRemove(members);
  EXPECT_EQ(g.Kind(), GroupKind::kEmpty);
}

// Random streaming churn against a reference std::set.
TEST(RadixGroupTest, StreamingChurnMatchesReferenceSet) {
  for (const GroupKind kind : {GroupKind::kRegular, GroupKind::kSparse}) {
    RadixGroup g;
    std::vector<uint32_t> init;
    g.RebuildAs(kind, init, 1);
    std::set<uint32_t> reference;
    util::Rng rng(kind == GroupKind::kRegular ? 5 : 6);
    for (int round = 0; round < 4000; ++round) {
      const uint32_t idx = static_cast<uint32_t>(rng.NextBounded(128));
      if (reference.count(idx)) {
        g.Remove(idx);
        reference.erase(idx);
      } else {
        g.Insert(idx, 128);
        reference.insert(idx);
      }
      ASSERT_EQ(g.Count(), reference.size());
    }
    if (!reference.empty()) {
      // After heavy churn the group may have escalated kinds; verify content.
      EXPECT_EQ(MembersOf(g),
                std::vector<uint32_t>(reference.begin(), reference.end()));
      EXPECT_TRUE(g.CheckInvariants().empty()) << g.CheckInvariants();
    }
  }
}

}  // namespace
}  // namespace bingo::core
