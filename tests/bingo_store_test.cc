// Integration tests for BingoStore: streaming vs batched vs
// rebuilt-from-scratch equivalence, duplicate-edge semantics, parallel
// batched updates, memory accounting, and full-graph invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/core/radix.h"
#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/sampling/exact.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace bingo::core {
namespace {

using graph::Update;
using graph::VertexId;

graph::WeightedEdgeList TestEdges(int scale, uint64_t num_edges, uint64_t seed,
                                  bool float_bias = false) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(scale, num_edges, rng);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(VertexId{1} << scale, pairs);
  graph::BiasParams params;
  params.floating_point = float_bias;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return graph::ToWeightedEdges(csr, biases);
}

BingoConfig Ga() { return BingoConfig{}; }
BingoConfig Bs() {
  BingoConfig config;
  config.adaptive.adaptive = false;
  return config;
}

// Canonical multiset view of one vertex's adjacency.
std::multiset<std::pair<VertexId, double>> AdjacencyOf(const BingoStore& store,
                                                       VertexId v) {
  std::multiset<std::pair<VertexId, double>> result;
  for (const graph::Edge& e : store.Graph().Neighbors(v)) {
    result.insert({e.dst, e.bias});
  }
  return result;
}

void ExpectStoresEquivalent(const BingoStore& a, const BingoStore& b) {
  ASSERT_EQ(a.Graph().NumVertices(), b.Graph().NumVertices());
  ASSERT_EQ(a.Graph().NumEdges(), b.Graph().NumEdges());
  for (VertexId v = 0; v < a.Graph().NumVertices(); ++v) {
    ASSERT_EQ(AdjacencyOf(a, v), AdjacencyOf(b, v)) << "vertex " << v;
  }
  ASSERT_TRUE(a.CheckInvariants().empty()) << a.CheckInvariants();
  ASSERT_TRUE(b.CheckInvariants().empty()) << b.CheckInvariants();
}

TEST(BingoStoreTest, BuildOnRmatPassesFullAudit) {
  for (const bool adaptive : {true, false}) {
    BingoStore store(
        graph::DynamicGraph::FromEdges(1 << 9, TestEdges(9, 4000, 1)),
        adaptive ? Ga() : Bs());
    EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
  }
}

TEST(BingoStoreTest, ParallelBuildMatchesSerialBuild) {
  util::ThreadPool pool(4);
  const auto edges = TestEdges(9, 4000, 2);
  BingoStore serial(graph::DynamicGraph::FromEdges(1 << 9, edges), Ga());
  BingoStore parallel(graph::DynamicGraph::FromEdges(1 << 9, edges), Ga(), &pool);
  ExpectStoresEquivalent(serial, parallel);
}

TEST(BingoStoreTest, SampleNeighborMatchesBiases) {
  // Star graph with known biases; chi-square on the sampled dst.
  graph::WeightedEdgeList edges;
  std::vector<double> weights;
  for (VertexId i = 1; i <= 30; ++i) {
    const double bias = static_cast<double>(i * 3 + (i % 2));
    edges.push_back({0, i, bias});
    weights.push_back(bias);
  }
  BingoStore store(graph::DynamicGraph::FromEdges(64, edges), Ga());
  util::Rng rng(17);
  std::vector<uint64_t> counts(31, 0);
  for (int s = 0; s < 300000; ++s) {
    ++counts[store.SampleNeighbor(0, rng)];
  }
  std::vector<double> expected(31, 0.0);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  for (VertexId i = 1; i <= 30; ++i) {
    expected[i] = weights[i - 1] / total;
  }
  EXPECT_TRUE(util::ChiSquareTestPasses(counts, expected));
}

TEST(BingoStoreTest, SampleOnIsolatedVertexReturnsInvalid) {
  BingoStore store(graph::DynamicGraph(4), Ga());
  util::Rng rng(1);
  EXPECT_EQ(store.SampleNeighbor(2, rng), graph::kInvalidVertex);
}

TEST(BingoStoreTest, StreamingInsertDeleteKeepsInvariants) {
  BingoStore store(
      graph::DynamicGraph::FromEdges(1 << 8, TestEdges(8, 2000, 3)), Ga());
  util::Rng rng(5);
  for (int op = 0; op < 500; ++op) {
    const VertexId src = static_cast<VertexId>(rng.NextBounded(256));
    if (rng.NextBool(0.5)) {
      store.StreamingInsert(src, static_cast<VertexId>(rng.NextBounded(256)),
                            1.0 + rng.NextBounded(100));
    } else if (store.Graph().Degree(src) > 0) {
      const auto adj = store.Graph().Neighbors(src);
      const VertexId dst = adj[rng.NextBounded(adj.size())].dst;
      EXPECT_TRUE(store.StreamingDelete(src, dst));
    }
  }
  EXPECT_TRUE(store.CheckInvariants().empty()) << store.CheckInvariants();
}

TEST(BingoStoreTest, StreamingDeleteMissingEdgeReturnsFalse) {
  BingoStore store(graph::DynamicGraph(8), Ga());
  EXPECT_FALSE(store.StreamingDelete(0, 1));
  store.StreamingInsert(0, 1, 2.0);
  EXPECT_TRUE(store.StreamingDelete(0, 1));
  EXPECT_FALSE(store.StreamingDelete(0, 1));
}

TEST(BingoStoreTest, DuplicateEdgesDeleteEarliestFirst) {
  BingoStore store(graph::DynamicGraph(8), Ga());
  store.StreamingInsert(0, 1, 2.0);   // earliest
  store.StreamingInsert(0, 1, 16.0);  // later duplicate
  ASSERT_EQ(store.Graph().Degree(0), 2u);
  ASSERT_TRUE(store.StreamingDelete(0, 1));
  ASSERT_EQ(store.Graph().Degree(0), 1u);
  // The survivor must be the later insertion (bias 16).
  EXPECT_DOUBLE_EQ(store.Graph().NeighborAt(0, 0).bias, 16.0);
  EXPECT_TRUE(store.CheckInvariants().empty());
}

TEST(BingoStoreTest, BatchedInsertThenDeleteOfSameEdgeInOneBatch) {
  // §5.2: one may insert a just-deleted edge back; duplicates carry
  // timestamps and deletion takes the earliest.
  BingoStore store(graph::DynamicGraph(8), Ga());
  store.StreamingInsert(0, 1, 2.0);
  graph::UpdateList batch;
  batch.push_back({Update::Kind::kInsert, 0, 1, 8.0});
  batch.push_back({Update::Kind::kDelete, 0, 1, 0.0});
  batch.push_back({Update::Kind::kInsert, 0, 1, 32.0});
  const auto result = store.ApplyBatch(batch);
  EXPECT_EQ(result.inserted, 2u);
  EXPECT_EQ(result.deleted, 1u);
  // The pre-existing bias-2 copy (earliest) must be the one deleted.
  const auto adj = AdjacencyOf(store, 0);
  EXPECT_EQ(adj.count({1, 2.0}), 0u);
  EXPECT_EQ(adj.count({1, 8.0}), 1u);
  EXPECT_EQ(adj.count({1, 32.0}), 1u);
  EXPECT_TRUE(store.CheckInvariants().empty());
}

TEST(BingoStoreTest, BatchSkipsDeletesOfMissingEdges) {
  BingoStore store(graph::DynamicGraph(8), Ga());
  graph::UpdateList batch;
  batch.push_back({Update::Kind::kDelete, 0, 7, 0.0});
  batch.push_back({Update::Kind::kInsert, 0, 1, 4.0});
  batch.push_back({Update::Kind::kDelete, 0, 1, 0.0});
  batch.push_back({Update::Kind::kDelete, 0, 1, 0.0});  // second has no target
  const auto result = store.ApplyBatch(batch);
  EXPECT_EQ(result.inserted, 1u);
  EXPECT_EQ(result.deleted, 1u);
  EXPECT_EQ(result.skipped_deletes, 2u);
  EXPECT_EQ(store.Graph().NumEdges(), 0u);
}

class WorkloadParamTest
    : public ::testing::TestWithParam<std::tuple<graph::UpdateKind, bool, bool>> {};

TEST_P(WorkloadParamTest, BatchedEqualsStreamingEqualsRebuilt) {
  const auto [kind, adaptive, float_bias] = GetParam();
  const auto edges = TestEdges(8, 3000, 11, float_bias);
  util::Rng rng(13);
  graph::UpdateWorkloadParams wparams;
  wparams.kind = kind;
  wparams.batch_size = 100;
  wparams.num_batches = 4;
  const auto workload = graph::BuildUpdateWorkload(edges, wparams, rng);
  const BingoConfig config = adaptive ? Ga() : Bs();

  BingoStore streaming(
      graph::DynamicGraph::FromEdges(1 << 8, workload.initial_edges), config);
  BingoStore batched(
      graph::DynamicGraph::FromEdges(1 << 8, workload.initial_edges), config);

  streaming.ApplyUpdatesStreaming(workload.updates);
  for (const auto& batch : graph::SplitIntoBatches(workload.updates, 100)) {
    batched.ApplyBatch(batch);
  }
  ExpectStoresEquivalent(streaming, batched);

  // Rebuilt-from-scratch reference: a fresh store over the final edges.
  graph::WeightedEdgeList final_edges;
  for (VertexId v = 0; v < batched.Graph().NumVertices(); ++v) {
    for (const graph::Edge& e : batched.Graph().Neighbors(v)) {
      final_edges.push_back({v, e.dst, e.bias});
    }
  }
  BingoStore rebuilt(graph::DynamicGraph::FromEdges(1 << 8, final_edges), config);
  for (VertexId v = 0; v < batched.Graph().NumVertices(); ++v) {
    const auto pa = batched.SamplerAt(v).ImpliedDistribution(
        batched.Graph().Neighbors(v));
    // Rebuilt adjacency order may differ; compare via (dst, bias) keyed maps.
    std::map<std::pair<VertexId, double>, double> lhs, rhs;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      const auto& e = batched.Graph().NeighborAt(v, static_cast<uint32_t>(i));
      lhs[{e.dst, e.bias}] += pa[i];
    }
    const auto pb = rebuilt.SamplerAt(v).ImpliedDistribution(
        rebuilt.Graph().Neighbors(v));
    for (std::size_t i = 0; i < pb.size(); ++i) {
      const auto& e = rebuilt.Graph().NeighborAt(v, static_cast<uint32_t>(i));
      rhs[{e.dst, e.bias}] += pb[i];
    }
    ASSERT_EQ(lhs.size(), rhs.size()) << "vertex " << v;
    for (const auto& [key, p] : lhs) {
      ASSERT_NEAR(p, rhs.at(key), 1e-9) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadParamTest,
    ::testing::Combine(::testing::Values(graph::UpdateKind::kInsertion,
                                         graph::UpdateKind::kDeletion,
                                         graph::UpdateKind::kMixed),
                       ::testing::Bool(), ::testing::Values(false, true)));

TEST(BingoStoreTest, ParallelBatchMatchesSerialBatch) {
  util::ThreadPool pool(4);
  const auto edges = TestEdges(9, 5000, 21);
  util::Rng rng(22);
  graph::UpdateWorkloadParams wparams;
  wparams.kind = graph::UpdateKind::kMixed;
  wparams.batch_size = 500;
  wparams.num_batches = 2;
  const auto workload = graph::BuildUpdateWorkload(edges, wparams, rng);

  BingoStore serial(
      graph::DynamicGraph::FromEdges(1 << 9, workload.initial_edges), Ga());
  BingoStore parallel(
      graph::DynamicGraph::FromEdges(1 << 9, workload.initial_edges), Ga());
  serial.ApplyBatch(workload.updates, nullptr);
  parallel.ApplyBatch(workload.updates, &pool);
  ExpectStoresEquivalent(serial, parallel);
}

TEST(BingoStoreTest, GaUsesLessMemoryThanBsOnRealGraphs) {
  const auto edges = TestEdges(10, 12000, 31);
  BingoStore ga(graph::DynamicGraph::FromEdges(1 << 10, edges), Ga());
  BingoStore bs(graph::DynamicGraph::FromEdges(1 << 10, edges), Bs());
  EXPECT_LT(ga.MemoryStats().SamplerBytes(), bs.MemoryStats().SamplerBytes());
}

TEST(BingoStoreTest, GroupKindCensusMakesSense) {
  const auto edges = TestEdges(10, 12000, 41);
  BingoStore ga(graph::DynamicGraph::FromEdges(1 << 10, edges), Ga());
  const auto counts = ga.CountGroupKinds();
  EXPECT_EQ(counts[static_cast<int>(GroupKind::kEmpty)], 0u);
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  EXPECT_GT(total, 0u);
  // Degree-derived biases make low bits dense on many vertices.
  EXPECT_GT(counts[static_cast<int>(GroupKind::kDense)], 0u);
  EXPECT_GT(counts[static_cast<int>(GroupKind::kOneElement)], 0u);

  BingoStore bs(graph::DynamicGraph::FromEdges(1 << 10, edges), Bs());
  const auto bs_counts = bs.CountGroupKinds();
  EXPECT_EQ(bs_counts[static_cast<int>(GroupKind::kDense)], 0u);
  EXPECT_EQ(bs_counts[static_cast<int>(GroupKind::kSparse)], 0u);
  EXPECT_EQ(bs_counts[static_cast<int>(GroupKind::kOneElement)], 0u);
}

TEST(BingoStoreTest, MemoryStatsArePopulated) {
  const auto edges = TestEdges(8, 2000, 51);
  BingoStore store(graph::DynamicGraph::FromEdges(1 << 8, edges), Ga());
  const auto stats = store.MemoryStats();
  EXPECT_GT(stats.graph_bytes, 0u);
  EXPECT_GT(stats.SamplerBytes(), 0u);
  EXPECT_EQ(stats.TotalBytes(), stats.graph_bytes + stats.SamplerBytes());
}

TEST(BingoStoreTest, TenRoundWorkloadEndToEnd) {
  // The paper's evaluation loop: 10 rounds of BATCHSIZE updates, audited
  // after every round.
  const auto edges = TestEdges(9, 6000, 61);
  util::Rng rng(62);
  graph::UpdateWorkloadParams wparams;
  wparams.kind = graph::UpdateKind::kMixed;
  wparams.batch_size = 200;
  wparams.num_batches = 10;
  const auto workload = graph::BuildUpdateWorkload(edges, wparams, rng);
  BingoStore store(
      graph::DynamicGraph::FromEdges(1 << 9, workload.initial_edges), Ga());
  uint64_t round = 0;
  for (const auto& batch : graph::SplitIntoBatches(workload.updates, 200)) {
    store.ApplyBatch(batch);
    ASSERT_TRUE(store.CheckInvariants().empty())
        << "round " << round << ": " << store.CheckInvariants();
    ++round;
  }
  EXPECT_EQ(round, 10u);
}

}  // namespace
}  // namespace bingo::core
