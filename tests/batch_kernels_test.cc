// Tests for the SoA batch sampling kernels (src/sampling/batch_kernels.h),
// the SampleBatch entry points layered on them, and the latency histogram.
//
// The load-bearing property is the bit-identity contract: every batched
// path must return exactly what the scalar path returns for the same
// inputs, and every SampleBatch must consume each walker's RNG stream
// exactly as the scalar Sample would. The SIMD lanes are additionally
// pinned against the scalar kernels on identical inputs, so AVX2 drift
// cannot hide behind RNG differences.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/radix.h"
#include "src/core/radix_base.h"
#include "src/core/vertex_sampler.h"
#include "src/graph/dynamic_graph.h"
#include "src/sampling/alias_table.h"
#include "src/sampling/batch_kernels.h"
#include "src/sampling/its.h"
#include "src/util/cpu_features.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace bingo {
namespace {

using sampling::AliasTable;
using sampling::ItsSampler;

// ---------------------------------------------------------------------------
// ItsSearchBatch vs the scalar definition (upper_bound, clamped).

uint32_t ReferenceItsSearch(std::span<const double> cdf, double x) {
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), x);
  const std::size_t idx = static_cast<std::size_t>(it - cdf.begin());
  return static_cast<uint32_t>(std::min(idx, cdf.size() - 1));
}

TEST(ItsSearchBatchTest, MatchesUpperBoundOnRandomCdfs) {
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t size = 1 + rng.NextBounded(300);
    std::vector<double> cdf(size);
    double acc = 0.0;
    for (auto& c : cdf) {
      // Zero-weight entries produce repeated CDF values (ties).
      if (!rng.NextBool(0.3)) {
        acc += 1.0 + static_cast<double>(rng.NextBounded(100));
      }
      c = acc;
    }
    if (acc == 0.0) {
      cdf.back() = acc = 1.0;
    }
    const std::size_t n = 1 + rng.NextBounded(200);
    std::vector<double> xs(n);
    for (auto& x : xs) {
      x = rng.NextUnit() * acc;
    }
    // Hit the boundaries explicitly: 0, exact CDF values, and the top.
    if (n > 3) {
      xs[0] = 0.0;
      xs[1] = cdf[rng.NextBounded(size)];
      xs[2] = std::nextafter(acc, 0.0);
    }
    std::vector<uint32_t> out(n);
    sampling::ItsSearchBatch(cdf, xs.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], ReferenceItsSearch(cdf, xs[i]))
          << "trial " << trial << " lane " << i << " x=" << xs[i];
    }
  }
}

TEST(ItsSearchBatchTest, SingleElementAndClamp) {
  const std::vector<double> cdf = {2.5};
  const double xs[] = {0.0, 1.0, 2.5, 3.0};
  uint32_t out[4];
  sampling::ItsSearchBatch(cdf, xs, out, 4);
  for (uint32_t o : out) {
    EXPECT_EQ(o, 0u);  // past-the-end draws clamp to the last cell
  }
}

// ---------------------------------------------------------------------------
// AliasResolveBatch vs the scalar acceptance rule.

TEST(AliasResolveBatchTest, MatchesScalarRule) {
  util::Rng rng(22);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t size = 1 + rng.NextBounded(64);
    std::vector<double> weights(size);
    for (auto& w : weights) {
      w = rng.NextBool(0.2) ? 0.0 : 1.0 + static_cast<double>(rng.NextBounded(1000));
    }
    if (std::all_of(weights.begin(), weights.end(),
                    [](double w) { return w == 0.0; })) {
      weights[0] = 1.0;
    }
    AliasTable table;
    table.Build(weights);
    const std::size_t n = 1 + rng.NextBounded(150);
    std::vector<uint32_t> slots(n);
    std::vector<double> units(n);
    for (std::size_t i = 0; i < n; ++i) {
      slots[i] = static_cast<uint32_t>(rng.NextBounded(size));
      units[i] = rng.NextUnit();
    }
    std::vector<uint32_t> out(n);
    sampling::AliasResolveBatch(table.Probs(), table.Aliases(), slots.data(),
                                units.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const uint32_t expected = units[i] < table.Probs()[slots[i]]
                                    ? slots[i]
                                    : table.Aliases()[slots[i]];
      ASSERT_EQ(out[i], expected) << "trial " << trial << " lane " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// SplitBiasIntBatch vs core::SplitBias, including the carry edge.

TEST(SplitBiasIntBatchTest, MatchesScalarSplitBiasIncludingCarry) {
  util::Rng rng(33);
  for (double lambda : {1.0, 0.125, 3.7, 1e6}) {
    std::vector<double> biases;
    // frac >= 1 - 2^-33 rounds up and carries into the integer part;
    // frac = 1 - 2^-32 must NOT carry. Both sides of the llround edge.
    biases.push_back((1.0 - 0x1.0p-33) / lambda);
    biases.push_back((1.0 - 0x1.0p-32) / lambda);
    biases.push_back(0.0);
    biases.push_back(1.0);
    biases.push_back(0.5 / lambda);
    for (int i = 0; i < 200; ++i) {
      biases.push_back(rng.NextUnit() * 1e4 / lambda);
    }
    std::vector<uint64_t> out(biases.size());
    sampling::SplitBiasIntBatch(biases.data(), biases.size(), lambda,
                                out.data());
    for (std::size_t i = 0; i < biases.size(); ++i) {
      ASSERT_EQ(out[i], core::SplitBias(biases[i], lambda).int_bits)
          << "lambda=" << lambda << " bias=" << biases[i];
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 lanes vs forced-scalar on identical inputs.

TEST(SimdDispatchTest, Avx2MatchesScalarOnIdenticalInputs) {
  if (util::ActiveSimdLevel() != util::SimdLevel::kAvx2) {
    GTEST_SKIP() << "AVX2 unavailable or disabled; dispatch test is vacuous";
  }
  util::Rng rng(44);
  const std::size_t size = 97;
  std::vector<double> weights(size);
  for (auto& w : weights) {
    w = 1.0 + static_cast<double>(rng.NextBounded(500));
  }
  AliasTable table;
  table.Build(weights);
  ItsSampler its;
  its.Build(weights);

  const std::size_t n = 301;  // deliberately not a multiple of the lane width
  std::vector<uint32_t> slots(n);
  std::vector<double> units(n), xs(n), biases(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots[i] = static_cast<uint32_t>(rng.NextBounded(size));
    units[i] = rng.NextUnit();
    xs[i] = rng.NextUnit() * its.TotalWeight();
    biases[i] = rng.NextUnit() * 1e3;
  }
  std::vector<uint32_t> alias_simd(n), alias_scalar(n);
  std::vector<uint32_t> its_simd(n), its_scalar(n);
  std::vector<uint64_t> bits_simd(n), bits_scalar(n);

  sampling::AliasResolveBatch(table.Probs(), table.Aliases(), slots.data(),
                              units.data(), alias_simd.data(), n);
  sampling::ItsSearchBatch(its.Cdf(), xs.data(), its_simd.data(), n);
  sampling::SplitBiasIntBatch(biases.data(), n, 1.0, bits_simd.data());
  {
    util::ScopedForceScalar force_scalar;
    ASSERT_EQ(util::ActiveSimdLevel(), util::SimdLevel::kScalar);
    sampling::AliasResolveBatch(table.Probs(), table.Aliases(), slots.data(),
                                units.data(), alias_scalar.data(), n);
    sampling::ItsSearchBatch(its.Cdf(), xs.data(), its_scalar.data(), n);
    sampling::SplitBiasIntBatch(biases.data(), n, 1.0, bits_scalar.data());
  }
  EXPECT_EQ(alias_simd, alias_scalar);
  EXPECT_EQ(its_simd, its_scalar);
  EXPECT_EQ(bits_simd, bits_scalar);
}

// ---------------------------------------------------------------------------
// SampleBatch bit-identity: batched draws must equal sequential Sample calls
// AND leave every walker's RNG stream in the same state.

std::vector<util::Rng> MakeStreams(std::size_t n, uint64_t seed) {
  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rngs.push_back(util::Rng::ForStream(seed, i));
  }
  return rngs;
}

std::vector<util::Rng*> Pointers(std::vector<util::Rng>& rngs) {
  std::vector<util::Rng*> ptrs(rngs.size());
  for (std::size_t i = 0; i < rngs.size(); ++i) {
    ptrs[i] = &rngs[i];
  }
  return ptrs;
}

void ExpectStreamsMatch(std::vector<util::Rng>& a, std::vector<util::Rng>& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].Next(), b[i].Next())
        << what << ": walker " << i << " stream position diverged";
  }
}

TEST(SampleBatchTest, AliasTableBitIdentical) {
  util::Rng wrng(55);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{193}}) {
    std::vector<double> weights(40);
    for (auto& w : weights) {
      w = 1.0 + static_cast<double>(wrng.NextBounded(1000));
    }
    AliasTable table;
    table.Build(weights);
    auto batched = MakeStreams(n, 7700 + n);
    auto scalar = batched;  // identical starting states
    std::vector<uint32_t> out_batched(n), out_scalar(n);
    table.SampleBatch(Pointers(batched).data(), n, out_batched.data());
    for (std::size_t i = 0; i < n; ++i) {
      out_scalar[i] = table.Sample(scalar[i]);
    }
    EXPECT_EQ(out_batched, out_scalar) << "n=" << n;
    ExpectStreamsMatch(batched, scalar, "alias");
  }
}

TEST(SampleBatchTest, ItsSamplerBitIdentical) {
  util::Rng wrng(66);
  for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                              std::size_t{200}}) {
    std::vector<double> weights(55);
    for (auto& w : weights) {
      w = wrng.NextBool(0.2) ? 0.0
                             : 1.0 + static_cast<double>(wrng.NextBounded(100));
    }
    weights[0] = 1.0;
    ItsSampler its;
    its.Build(weights);
    auto batched = MakeStreams(n, 8800 + n);
    auto scalar = batched;
    std::vector<uint32_t> out_batched(n), out_scalar(n);
    its.SampleBatch(Pointers(batched).data(), n, out_batched.data());
    for (std::size_t i = 0; i < n; ++i) {
      out_scalar[i] = its.Sample(scalar[i]);
    }
    EXPECT_EQ(out_batched, out_scalar) << "n=" << n;
    ExpectStreamsMatch(batched, scalar, "its");
  }
}

// Builds a star graph on vertex 0 and a Bingo sampler over it, the way
// BingoStore drives one vertex.
struct SamplerFixture {
  core::BingoConfig config;
  graph::DynamicGraph graph{4096};
  core::VertexSampler sampler;

  explicit SamplerFixture(const std::vector<double>& biases,
                          double lambda = 1.0) {
    config.lambda = lambda;
    graph::VertexId dst = 1;
    for (double b : biases) {
      graph.Insert(0, dst++, b);
    }
    sampler.SetConfig(&config);
    sampler.Build(graph.Neighbors(0));
  }

  std::span<const graph::Edge> Adj() const { return graph.Neighbors(0); }
};

TEST(SampleBatchTest, VertexSamplerBitIdentical) {
  util::Rng wrng(77);
  // Mixes of dense rejection groups, uniform groups, and decimal fractions;
  // plus the degenerate single-neighbor and empty cases.
  std::vector<std::vector<double>> cases;
  cases.push_back({});
  cases.push_back({5.0});
  cases.push_back({1.0, 2.0, 4.0, 8.0});
  {
    std::vector<double> mixed(120);
    for (auto& b : mixed) {
      b = 0.25 + wrng.NextUnit() * static_cast<double>(1 + wrng.NextBounded(64));
    }
    cases.push_back(std::move(mixed));
  }
  for (double lambda : {1.0, 4.0}) {
    for (const auto& biases : cases) {
      SamplerFixture fx(biases, lambda);
      const std::size_t n = 160;
      auto batched = MakeStreams(n, 9900);
      auto scalar = batched;
      std::vector<uint32_t> out_batched(n), out_scalar(n);
      fx.sampler.SampleIndexBatch(fx.Adj(), Pointers(batched).data(), n,
                                  out_batched.data());
      for (std::size_t i = 0; i < n; ++i) {
        out_scalar[i] = fx.sampler.SampleIndex(fx.Adj(), scalar[i]);
      }
      EXPECT_EQ(out_batched, out_scalar)
          << "degree=" << biases.size() << " lambda=" << lambda;
      ExpectStreamsMatch(batched, scalar, "vertex_sampler");
    }
  }
}

TEST(SampleBatchTest, VertexSamplerBitIdenticalUnderForcedScalar) {
  util::Rng wrng(78);
  std::vector<double> biases(90);
  for (auto& b : biases) {
    b = 1.0 + static_cast<double>(wrng.NextBounded(200));
  }
  SamplerFixture fx(biases);
  const std::size_t n = 130;
  auto simd_rngs = MakeStreams(n, 4242);
  auto scalar_rngs = simd_rngs;
  std::vector<uint32_t> out_simd(n), out_scalar(n);
  fx.sampler.SampleIndexBatch(fx.Adj(), Pointers(simd_rngs).data(), n,
                              out_simd.data());
  {
    util::ScopedForceScalar force_scalar;
    fx.sampler.SampleIndexBatch(fx.Adj(), Pointers(scalar_rngs).data(), n,
                                out_scalar.data());
  }
  EXPECT_EQ(out_simd, out_scalar);
  ExpectStreamsMatch(simd_rngs, scalar_rngs, "forced_scalar");
}

TEST(SampleBatchTest, RadixBaseBitIdentical) {
  util::Rng wrng(88);
  for (int log2_base : {1, 2, 4}) {
    graph::DynamicGraph g(4096);
    for (int i = 0; i < 70; ++i) {
      g.Insert(0, static_cast<graph::VertexId>(i + 1),
               1.0 + static_cast<double>(wrng.NextBounded(1 << 10)));
    }
    core::RadixBaseVertexSampler sampler(log2_base);
    sampler.Build(g.Neighbors(0));
    const std::size_t n = 150;
    auto batched = MakeStreams(n, 5500 + static_cast<uint64_t>(log2_base));
    auto scalar = batched;
    std::vector<uint32_t> out_batched(n), out_scalar(n);
    sampler.SampleIndexBatch(Pointers(batched).data(), n, out_batched.data());
    for (std::size_t i = 0; i < n; ++i) {
      out_scalar[i] = sampler.SampleIndex(scalar[i]);
    }
    EXPECT_EQ(out_batched, out_scalar) << "log2_base=" << log2_base;
    ExpectStreamsMatch(batched, scalar, "radix_base");
  }
}

// ---------------------------------------------------------------------------
// Distributional check: the batched path must still sample the implied
// distribution (chi-square goodness of fit on pooled draws).

TEST(SampleBatchTest, BatchedDrawsMatchImpliedDistribution) {
  util::Rng wrng(99);
  std::vector<double> biases(24);
  for (auto& b : biases) {
    b = 0.5 + wrng.NextUnit() * static_cast<double>(1 + wrng.NextBounded(32));
  }
  SamplerFixture fx(biases);
  const auto expected = fx.sampler.ImpliedDistribution(fx.Adj());

  const std::size_t kWalkers = 256;
  const int kRounds = 400;
  auto rngs = MakeStreams(kWalkers, 123456);
  auto ptrs = Pointers(rngs);
  std::vector<uint32_t> out(kWalkers);
  std::vector<uint64_t> observed(biases.size(), 0);
  for (int round = 0; round < kRounds; ++round) {
    fx.sampler.SampleIndexBatch(fx.Adj(), ptrs.data(), kWalkers, out.data());
    for (uint32_t idx : out) {
      ASSERT_LT(idx, biases.size());
      ++observed[idx];
    }
  }
  EXPECT_TRUE(util::ChiSquareTestPasses(observed, expected));
}

TEST(SampleBatchTest, AliasBatchedDrawsMatchImpliedDistribution) {
  std::vector<double> weights = {1.0, 5.0, 0.5, 10.0, 2.0, 2.0, 7.5, 0.25};
  AliasTable table;
  table.Build(weights);
  const auto expected = table.ImpliedProbabilities();

  const std::size_t kWalkers = 128;
  auto rngs = MakeStreams(kWalkers, 654321);
  auto ptrs = Pointers(rngs);
  std::vector<uint32_t> out(kWalkers);
  std::vector<uint64_t> observed(weights.size(), 0);
  for (int round = 0; round < 800; ++round) {
    table.SampleBatch(ptrs.data(), kWalkers, out.data());
    for (uint32_t idx : out) {
      ++observed[idx];
    }
  }
  EXPECT_TRUE(util::ChiSquareTestPasses(observed, expected));
}

// ---------------------------------------------------------------------------
// LatencyHistogram: exact count/min/max/mean, bounded-relative-error
// quantiles, and merge.

TEST(LatencyHistogramTest, ExactMomentsAndBoundedQuantiles) {
  util::Rng rng(101);
  util::LatencyHistogram hist;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform latencies from ~100ns to ~1s, the serving range.
    const double ns = std::exp(rng.NextUnit() * std::log(1e9 / 100.0)) * 100.0;
    hist.RecordNanos(static_cast<uint64_t>(ns));
    samples.push_back(static_cast<double>(static_cast<uint64_t>(ns)) * 1e-9);
  }
  EXPECT_EQ(hist.Count(), samples.size());
  const auto [min_it, max_it] = std::minmax_element(samples.begin(), samples.end());
  EXPECT_DOUBLE_EQ(hist.MinSeconds(), *min_it);
  EXPECT_DOUBLE_EQ(hist.MaxSeconds(), *max_it);
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
  }
  EXPECT_NEAR(hist.MeanSeconds(), sum / static_cast<double>(samples.size()),
              1e-12);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = util::SampleQuantile(samples, q);
    const double approx = hist.QuantileSeconds(q);
    // 32 sub-buckets per octave -> <= ~3.2% relative error, plus a little
    // slack for the rank interpolation difference.
    EXPECT_NEAR(approx, exact, exact * 0.05) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeEqualsUnionRecording) {
  util::Rng rng(202);
  util::LatencyHistogram a, b, both;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t ns = 50 + rng.NextBounded(1'000'000'000ULL);
    (i % 2 == 0 ? a : b).RecordNanos(ns);
    both.RecordNanos(ns);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), both.Count());
  EXPECT_DOUBLE_EQ(a.MinSeconds(), both.MinSeconds());
  EXPECT_DOUBLE_EQ(a.MaxSeconds(), both.MaxSeconds());
  EXPECT_DOUBLE_EQ(a.MeanSeconds(), both.MeanSeconds());
  for (double q : {0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(a.QuantileSeconds(q), both.QuantileSeconds(q)) << q;
  }
}

TEST(LatencyHistogramTest, EmptyIsWellDefined) {
  util::LatencyHistogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.QuantileSeconds(0.99), 0.0);
  EXPECT_EQ(hist.MeanSeconds(), 0.0);
}

}  // namespace
}  // namespace bingo
