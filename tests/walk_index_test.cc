// WalkIndexService: the always-fresh walk index mounted on a live service.
//
// Covers the service-integration contract (index-served reads track a
// standalone corpus bit for bit under the always-fresh default), the
// bounded-staleness contract, the UpdateBatcher flush hook on the sharded
// service, and — under the `persistence` ctest label — crash recovery: a
// RecoverWalkIndexService'd corpus must serve walks identical to the
// service that never crashed, via the corpus checkpoint's wal_seq fence
// plus repair replay.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/walk/batcher.h"
#include "src/walk/index_service.h"
#include "src/walk/service.h"
#include "src/walk/sharded_service.h"

namespace bingo::walk {
namespace {

using core::BingoStore;
using graph::VertexId;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/bingo_walk_index_" +
                          std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct TestGraph {
  VertexId num_vertices = 0;
  graph::WeightedEdgeList edges;
};

TestGraph MakeGraph(uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 3);
  const int scale = 7;
  const VertexId n = VertexId{1} << scale;
  auto pairs = graph::GenerateRmat(scale, n * 6, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams params;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  return {n, graph::ToWeightedEdges(csr, biases)};
}

graph::UpdateList RandomBatch(util::Rng& rng, VertexId n, std::size_t count) {
  graph::UpdateList updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(n));
    const auto dst = static_cast<VertexId>(rng.NextBounded(n));
    if (rng.NextBool(0.25)) {
      updates.push_back({graph::Update::Kind::kDelete, src, dst, 0.0});
    } else {
      updates.push_back(
          {graph::Update::Kind::kInsert, src, dst, 1.0 + rng.NextUnit() * 7.0});
    }
  }
  return updates;
}

WalkIndexService::Options SmallIndexOptions() {
  WalkIndexService::Options options;
  options.corpus.walk_length = 20;
  return options;
}

void ExpectIdenticalCorpora(const IncrementalWalkCorpus& a,
                            const IncrementalWalkCorpus& b) {
  ASSERT_EQ(a.NumWalks(), b.NumWalks());
  for (uint64_t w = 0; w < a.NumWalks(); ++w) {
    ASSERT_EQ(a.Walk(w), b.Walk(w)) << "walk " << w;
  }
  EXPECT_EQ(a.VisitCounts(), b.VisitCounts());
  EXPECT_EQ(a.TotalVisits(), b.TotalVisits());
  EXPECT_EQ(a.repair_epoch(), b.repair_epoch());
}

// Always-fresh default: the mounted index's corpus evolves bit-identically
// to a standalone IncrementalWalkCorpus fed the same batches — the mount
// changes where repairs run, never what they produce.
TEST(WalkIndexServiceTest, TracksStandaloneCorpusBitIdentically) {
  const TestGraph g = MakeGraph(1);
  util::ThreadPool pool(4);
  auto service = MakeWalkService(g.edges, g.num_vertices, {}, &pool, &pool);
  WalkIndexService index(*service, SmallIndexOptions(), &pool);

  BingoStore reference(graph::DynamicGraph::FromEdges(g.num_vertices, g.edges));
  IncrementalWalkCorpus standalone(reference, SmallIndexOptions().corpus);
  standalone.Generate(reference);

  util::Rng rng(7);
  for (int round = 0; round < 6; ++round) {
    const graph::UpdateList batch = RandomBatch(rng, g.num_vertices, 40);
    index.ApplyBatch(batch);
    standalone.ApplyUpdates(reference, batch, /*pool=*/nullptr);
    ExpectIdenticalCorpora(index.corpus(), standalone);
    ASSERT_TRUE(index.CheckValid().empty()) << index.CheckValid();
  }
  const WalkIndexStats stats = index.Stats();
  EXPECT_EQ(stats.batches_observed, 6u);
  EXPECT_EQ(stats.repairs, 6u);  // always fresh: one repair per batch
  EXPECT_EQ(stats.pending_updates, 0u);
}

// Index-served reads: QueryWalks returns stored rows in WalkResult shape,
// and PprScores normalizes the corpus visit counts.
TEST(WalkIndexServiceTest, ServesCorpusReads) {
  const TestGraph g = MakeGraph(2);
  util::ThreadPool pool(2);
  auto service = MakeWalkService(g.edges, g.num_vertices, {}, &pool, &pool);
  WalkIndexService index(*service, SmallIndexOptions(), &pool);

  const WalkResult result = index.QueryWalks(/*first_walk=*/5, /*count=*/10);
  ASSERT_EQ(result.path_offsets.size(), 11u);
  for (uint64_t i = 0; i < 10; ++i) {
    const auto& walk = index.corpus().Walk((5 + i) % index.NumWalks());
    ASSERT_EQ(result.path_offsets[i + 1] - result.path_offsets[i],
              walk.size());
    for (std::size_t p = 0; p < walk.size(); ++p) {
      EXPECT_EQ(result.paths[result.path_offsets[i] + p], walk[p]);
    }
  }

  const std::vector<double> scores = index.PprScores();
  ASSERT_EQ(scores.size(), index.VisitCounts().size());
  double total = 0.0;
  for (const double s : scores) {
    ASSERT_GE(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Bounded staleness: below the bound updates queue without repairing; the
// batch that crosses it forces a repair before returning.
TEST(WalkIndexServiceTest, StalenessBoundForcesRepair) {
  const TestGraph g = MakeGraph(3);
  util::ThreadPool pool(2);
  auto service = MakeWalkService(g.edges, g.num_vertices, {}, &pool, &pool);
  WalkIndexService::Options options = SmallIndexOptions();
  options.max_pending_updates = 100;
  WalkIndexService index(*service, options, &pool);

  util::Rng rng(11);
  index.ApplyBatch(RandomBatch(rng, g.num_vertices, 40));
  EXPECT_EQ(index.PendingUpdates(), 40u);  // within the bound: still stale
  EXPECT_EQ(index.Stats().repairs, 0u);

  index.ApplyBatch(RandomBatch(rng, g.num_vertices, 70));  // 110 >= 100
  EXPECT_EQ(index.PendingUpdates(), 0u);
  const WalkIndexStats stats = index.Stats();
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_EQ(stats.forced_repairs, 1u);

  // Refresh() drains whatever is pending on demand.
  index.ApplyBatch(RandomBatch(rng, g.num_vertices, 10));
  EXPECT_EQ(index.PendingUpdates(), 10u);
  index.Refresh();
  EXPECT_EQ(index.PendingUpdates(), 0u);
  ASSERT_TRUE(index.CheckValid().empty()) << index.CheckValid();
}

// The staleness bound must not change WHAT the corpus converges to, only
// when: after a final Refresh, a bounded index matches an always-fresh one
// that drained at the same batch boundaries.
TEST(WalkIndexServiceTest, BoundedIndexConvergesToSameCorpus) {
  const TestGraph g = MakeGraph(4);
  util::ThreadPool pool(2);
  auto fresh_service =
      MakeWalkService(g.edges, g.num_vertices, {}, &pool, &pool);
  auto lazy_service =
      MakeWalkService(g.edges, g.num_vertices, {}, &pool, &pool);
  WalkIndexService fresh(*fresh_service, SmallIndexOptions(), &pool);
  WalkIndexService::Options lazy_options = SmallIndexOptions();
  lazy_options.max_pending_updates = 1000000;  // never forced
  WalkIndexService lazy(*lazy_service, lazy_options, &pool);

  // The fresh index repairs per batch; feed the lazy one the concatenation
  // and drain once — same single repair epoch as one fresh mega-batch.
  util::Rng rng(13);
  graph::UpdateList all;
  for (int round = 0; round < 3; ++round) {
    const graph::UpdateList batch = RandomBatch(rng, g.num_vertices, 30);
    lazy.ApplyBatch(batch);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  fresh.ApplyBatch(all);
  lazy.Refresh();
  ExpectIdenticalCorpora(fresh.corpus(), lazy.corpus());
}

// Sharded live integration: an UpdateBatcher drains into the sharded
// service and announces each applied batch through on_batch_applied; the
// index follows along and is exactly consistent after Flush + Refresh.
TEST(WalkIndexServiceTest, ShardedBatcherKeepsIndexConsistent) {
  const TestGraph g = MakeGraph(5);
  util::ThreadPool pool(4);
  auto service =
      MakeShardedWalkService(g.edges, g.num_vertices, 4, {}, &pool, &pool);
  WalkIndexServiceT<ShardedWalkService>::Options options;
  options.corpus = SmallIndexOptions().corpus;
  WalkIndexServiceT<ShardedWalkService> index(*service, options, &pool);

  BatcherOptions batcher_options;
  batcher_options.max_batch_updates = 64;
  batcher_options.on_batch_applied = [&](int, const graph::UpdateList& batch) {
    index.NotifyApplied(batch);
  };
  UpdateBatcher batcher(*service, batcher_options);

  util::Rng rng(17);
  const graph::UpdateList updates = RandomBatch(rng, g.num_vertices, 500);
  batcher.SubmitAll(updates);
  batcher.Flush();
  index.Refresh();

  const WalkIndexStats stats = index.Stats();
  EXPECT_EQ(stats.updates_observed, updates.size());
  EXPECT_EQ(stats.pending_updates, 0u);
  ASSERT_TRUE(index.CheckValid().empty()) << index.CheckValid();
  const BatcherStats bstats = batcher.Stats();
  EXPECT_EQ(bstats.flushed_updates, updates.size());
  EXPECT_EQ(bstats.drain_errors, 0u);
}

// Growth through the full stack: batches referencing brand-new vertex ids
// grow the store, the composite snapshot, and the index's tables.
TEST(WalkIndexServiceTest, GrowsThroughBrandNewVertices) {
  const TestGraph g = MakeGraph(6);
  util::ThreadPool pool(2);
  auto service = MakeWalkService(g.edges, g.num_vertices, {}, &pool, &pool);
  WalkIndexService index(*service, SmallIndexOptions(), &pool);

  const VertexId fresh = g.num_vertices + 37;
  graph::UpdateList batch;
  batch.push_back({graph::Update::Kind::kInsert, 0, fresh, 1e9});
  batch.push_back({graph::Update::Kind::kInsert, fresh, 1, 1.0});
  index.ApplyBatch(batch);
  {
    const auto snap = service->Acquire();
    ASSERT_GE(snap.store().NumVertices(), fresh + 1);
  }
  EXPECT_GE(index.VisitCounts().size(), static_cast<std::size_t>(fresh + 1));
  ASSERT_TRUE(index.CheckValid().empty()) << index.CheckValid();
}

// ---------------------------------------------------------- persistence --

// Crash recovery serves the identical corpus: checkpoint mid-stream, keep
// updating (WAL only), "crash", recover — the corpus checkpoint restores
// up to its fence and the replay hook re-runs the post-fence repairs
// against the store states the batches produced.
TEST(WalkIndexPersistenceTest, RecoveredIndexServesIdenticalCorpus) {
  const std::string dir = FreshDir("identical");
  const TestGraph g = MakeGraph(7);
  util::ThreadPool pool(4);
  util::Rng rng(23);

  std::vector<std::vector<VertexId>> survivor_walks;
  std::vector<uint64_t> survivor_counts;
  uint64_t survivor_epoch = 0;
  {
    auto service = MakeWalkService(g.edges, g.num_vertices, {}, &pool, &pool);
    WalkIndexService index(*service, SmallIndexOptions(), &pool);
    ASSERT_TRUE(index.AttachWal(dir).ok);
    for (int round = 0; round < 3; ++round) {
      index.ApplyBatch(RandomBatch(rng, g.num_vertices, 50));
    }
    ASSERT_TRUE(index.Checkpoint().ok);
    // Post-checkpoint updates live only in the WAL; their repairs must be
    // re-run by recovery.
    for (int round = 0; round < 3; ++round) {
      index.ApplyBatch(RandomBatch(rng, g.num_vertices, 50));
    }
    for (uint64_t w = 0; w < index.NumWalks(); ++w) {
      survivor_walks.push_back(index.corpus().Walk(w));
    }
    survivor_counts = index.VisitCounts();
    survivor_epoch = index.corpus().repair_epoch();
    // No Checkpoint here: the destructor tears down mid-WAL — the crash.
  }

  WalkIndexRecoveryReport report;
  RecoveredWalkIndexService recovered = RecoverWalkIndexService(
      dir, SmallIndexOptions(), {}, /*num_vertices=*/0, &pool, &pool, {},
      &report);
  ASSERT_TRUE(recovered);
  ASSERT_TRUE(report.service.ok);
  EXPECT_TRUE(report.corpus_restored);
  EXPECT_EQ(report.corpus_batches_replayed, 3u);

  ASSERT_EQ(recovered.index->NumWalks(), survivor_walks.size());
  for (uint64_t w = 0; w < survivor_walks.size(); ++w) {
    ASSERT_EQ(recovered.index->corpus().Walk(w), survivor_walks[w])
        << "walk " << w;
  }
  EXPECT_EQ(recovered.index->VisitCounts(), survivor_counts);
  EXPECT_EQ(recovered.index->corpus().repair_epoch(), survivor_epoch);
  ASSERT_TRUE(recovered.index->CheckValid().empty())
      << recovered.index->CheckValid();

  // The recovered pair keeps working: more updates, another checkpoint.
  recovered.index->ApplyBatch(RandomBatch(rng, g.num_vertices, 50));
  EXPECT_TRUE(recovered.index->Checkpoint().ok);
  std::filesystem::remove_all(dir);
}

// A deleted/corrupt corpus checkpoint degrades to regeneration — recovery
// still succeeds, reports corpus_restored = false, and later checkpoints
// re-establish the corpus file.
TEST(WalkIndexPersistenceTest, MissingCorpusCheckpointFallsBackToRegenerate) {
  const std::string dir = FreshDir("fallback");
  const TestGraph g = MakeGraph(8);
  util::ThreadPool pool(2);
  util::Rng rng(29);
  {
    auto service = MakeWalkService(g.edges, g.num_vertices, {}, &pool, &pool);
    WalkIndexService index(*service, SmallIndexOptions(), &pool);
    ASSERT_TRUE(index.AttachWal(dir).ok);
    index.ApplyBatch(RandomBatch(rng, g.num_vertices, 50));
    ASSERT_TRUE(index.Checkpoint().ok);
  }
  std::filesystem::remove(dir + "/" + kCorpusCheckpointFile);

  WalkIndexRecoveryReport report;
  RecoveredWalkIndexService recovered = RecoverWalkIndexService(
      dir, SmallIndexOptions(), {}, /*num_vertices=*/0, &pool, &pool, {},
      &report);
  ASSERT_TRUE(recovered);
  EXPECT_FALSE(report.corpus_restored);
  EXPECT_EQ(report.corpus_batches_replayed, 0u);
  EXPECT_GT(recovered.index->NumWalks(), 0u);
  ASSERT_TRUE(recovered.index->CheckValid().empty())
      << recovered.index->CheckValid();

  // The regenerated index checkpoints into the same dir; a second recovery
  // then restores instead of regenerating.
  ASSERT_TRUE(recovered.index->Checkpoint().ok);
  WalkIndexRecoveryReport second;
  RecoveredWalkIndexService again = RecoverWalkIndexService(
      dir, SmallIndexOptions(), {}, /*num_vertices=*/0, &pool, &pool, {},
      &second);
  ASSERT_TRUE(again);
  EXPECT_TRUE(second.corpus_restored);
  std::filesystem::remove_all(dir);
}

// AttachWal's checkpoint covers a pre-mount update history: recovery right
// after AttachWal (no WAL suffix) restores with zero replayed repairs.
TEST(WalkIndexPersistenceTest, AttachWalFencesCleanly) {
  const std::string dir = FreshDir("attach");
  const TestGraph g = MakeGraph(9);
  util::ThreadPool pool(2);
  util::Rng rng(31);
  std::vector<std::vector<VertexId>> survivor_walks;
  {
    auto service = MakeWalkService(g.edges, g.num_vertices, {}, &pool, &pool);
    WalkIndexService index(*service, SmallIndexOptions(), &pool);
    index.ApplyBatch(RandomBatch(rng, g.num_vertices, 50));  // pre-durability
    ASSERT_TRUE(index.AttachWal(dir).ok);
    for (uint64_t w = 0; w < index.NumWalks(); ++w) {
      survivor_walks.push_back(index.corpus().Walk(w));
    }
  }
  WalkIndexRecoveryReport report;
  RecoveredWalkIndexService recovered = RecoverWalkIndexService(
      dir, SmallIndexOptions(), {}, /*num_vertices=*/0, &pool, &pool, {},
      &report);
  ASSERT_TRUE(recovered);
  EXPECT_TRUE(report.corpus_restored);
  EXPECT_EQ(report.corpus_batches_replayed, 0u);
  ASSERT_EQ(recovered.index->NumWalks(), survivor_walks.size());
  for (uint64_t w = 0; w < survivor_walks.size(); ++w) {
    ASSERT_EQ(recovered.index->corpus().Walk(w), survivor_walks[w]);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bingo::walk
