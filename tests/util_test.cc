// Unit tests for src/util: RNG, bit ops, stats, memory pool, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/bitops.h"
#include "src/util/histogram.h"
#include "src/util/memory_pool.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace bingo::util {
namespace {

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, StreamsAreIndependentAndDeterministic) {
  Rng s0 = Rng::ForStream(99, 0);
  Rng s0_again = Rng::ForStream(99, 0);
  Rng s1 = Rng::ForStream(99, 1);
  EXPECT_EQ(s0.Next(), s0_again.Next());
  EXPECT_NE(s0.Next(), s1.Next());
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedZeroAndOneReturnZero) {
  Rng rng(7);
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(42);
  constexpr uint64_t kBound = 10;
  constexpr uint64_t kSamples = 100000;
  std::vector<uint64_t> counts(kBound, 0);
  for (uint64_t i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBound)];
  }
  const std::vector<double> expected(kBound, 1.0 / kBound);
  EXPECT_TRUE(ChiSquareTestPasses(counts, expected));
}

TEST(RngTest, NextUnitInHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(11);
  int heads = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.3, 0.01);
}

// ---------------------------------------------------------------- bitops --

TEST(BitopsTest, Popcount) {
  EXPECT_EQ(Popcount(0), 0);
  EXPECT_EQ(Popcount(1), 1);
  EXPECT_EQ(Popcount(0b1011), 3);
  EXPECT_EQ(Popcount(~uint64_t{0}), 64);
}

TEST(BitopsTest, HighestAndLowestBit) {
  EXPECT_EQ(HighestBit(1), 0);
  EXPECT_EQ(HighestBit(0b1000), 3);
  EXPECT_EQ(HighestBit(uint64_t{1} << 63), 63);
  EXPECT_EQ(LowestBit(0b1000), 3);
  EXPECT_EQ(LowestBit(0b1010), 1);
}

TEST(BitopsTest, CeilPow2) {
  EXPECT_EQ(CeilPow2(1), 1u);
  EXPECT_EQ(CeilPow2(2), 2u);
  EXPECT_EQ(CeilPow2(3), 4u);
  EXPECT_EQ(CeilPow2(1023), 1024u);
  EXPECT_EQ(CeilPow2(1024), 1024u);
}

TEST(BitopsTest, ForEachSetBitVisitsAllBitsLowestFirst) {
  std::vector<int> bits;
  ForEachSetBit(0b101101, [&](int k) { bits.push_back(k); });
  EXPECT_EQ(bits, (std::vector<int>{0, 2, 3, 5}));
  ForEachSetBit(0, [&](int) { FAIL() << "no bits expected"; });
}

// ----------------------------------------------------------------- stats --

TEST(StatsTest, ChiSquareAcceptsMatchingDistribution) {
  Rng rng(3);
  const std::vector<double> probs = {0.5, 0.3, 0.2};
  std::vector<uint64_t> counts(3, 0);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextUnit();
    ++counts[u < 0.5 ? 0 : (u < 0.8 ? 1 : 2)];
  }
  EXPECT_TRUE(ChiSquareTestPasses(counts, probs));
}

TEST(StatsTest, ChiSquareRejectsWrongDistribution) {
  // Claim uniform, feed heavily skewed counts.
  const std::vector<double> probs = {0.25, 0.25, 0.25, 0.25};
  const std::vector<uint64_t> counts = {97000, 1000, 1000, 1000};
  EXPECT_FALSE(ChiSquareTestPasses(counts, probs));
}

TEST(StatsTest, ChiSquareCriticalMatchesKnownValues) {
  // chi^2 critical values at alpha=0.05: df=10 -> 18.31, df=30 -> 43.77.
  EXPECT_NEAR(ChiSquareCritical(10, 0.05), 18.31, 0.3);
  EXPECT_NEAR(ChiSquareCritical(30, 0.05), 43.77, 0.5);
}

TEST(StatsTest, TotalVariationDistance) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(TotalVariationDistance(p, q), 0.5);
  EXPECT_DOUBLE_EQ(TotalVariationDistance(p, p), 0.0);
}

TEST(StatsTest, NormalizeSumsToOne) {
  const std::vector<double> w = {2.0, 6.0, 2.0};
  const auto probs = Normalize(w);
  EXPECT_DOUBLE_EQ(probs[0], 0.2);
  EXPECT_DOUBLE_EQ(probs[1], 0.6);
  EXPECT_DOUBLE_EQ(probs[2], 0.2);
}

TEST(StatsTest, NormalizeZeroTotalYieldsZeros) {
  const std::vector<double> w = {0.0, 0.0};
  const auto probs = Normalize(w);
  EXPECT_DOUBLE_EQ(probs[0], 0.0);
  EXPECT_DOUBLE_EQ(probs[1], 0.0);
}

// ----------------------------------------------------------- memory pool --

TEST(MemoryPoolTest, ClassSizeRoundsToPow2) {
  EXPECT_EQ(MemoryPool::ClassSize(1), 16u);
  EXPECT_EQ(MemoryPool::ClassSize(16), 16u);
  EXPECT_EQ(MemoryPool::ClassSize(17), 32u);
  EXPECT_EQ(MemoryPool::ClassSize(4096), 4096u);
  EXPECT_EQ(MemoryPool::ClassSize(4097), 8192u);
}

TEST(MemoryPoolTest, AllocateReturnsDistinctWritableBlocks) {
  MemoryPool pool;
  void* a = pool.Allocate(100);
  void* b = pool.Allocate(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 0xAB, 100);
  std::memset(b, 0xCD, 100);
  EXPECT_EQ(static_cast<unsigned char*>(a)[99], 0xAB);
  EXPECT_EQ(static_cast<unsigned char*>(b)[99], 0xCD);
}

TEST(MemoryPoolTest, FreedBlocksAreRecycled) {
  MemoryPool pool;
  void* a = pool.Allocate(1000);
  pool.Deallocate(a, 1000);
  void* b = pool.Allocate(1000);
  EXPECT_EQ(a, b);  // same size class -> free list pop
}

TEST(MemoryPoolTest, LiveBytesTracksClassSizes) {
  MemoryPool pool;
  EXPECT_EQ(pool.LiveBytes(), 0u);
  void* a = pool.Allocate(100);  // class 128
  EXPECT_EQ(pool.LiveBytes(), 128u);
  void* b = pool.Allocate(17);  // class 32
  EXPECT_EQ(pool.LiveBytes(), 160u);
  pool.Deallocate(a, 100);
  EXPECT_EQ(pool.LiveBytes(), 32u);
  pool.Deallocate(b, 17);
  EXPECT_EQ(pool.LiveBytes(), 0u);
}

TEST(MemoryPoolTest, ZeroByteAllocationIsNull) {
  MemoryPool pool;
  EXPECT_EQ(pool.Allocate(0), nullptr);
  pool.Deallocate(nullptr, 0);  // must be a no-op
}

TEST(MemoryPoolTest, OversizeAllocationsFallThrough) {
  MemoryPool pool;
  const std::size_t big = MemoryPool::kMaxClassBytes * 2;
  void* p = pool.Allocate(big);
  ASSERT_NE(p, nullptr);
  static_cast<char*>(p)[big - 1] = 1;
  EXPECT_GE(pool.ReservedBytes(), big);
  pool.Deallocate(p, big);
  EXPECT_EQ(pool.LiveBytes(), 0u);
}

TEST(MemoryPoolTest, ManySmallAllocationsSpanArenas) {
  MemoryPool pool;
  std::vector<void*> blocks;
  // > one arena worth of 4 KiB blocks
  const std::size_t count = MemoryPool::kArenaBytes / 4096 * 3;
  std::set<void*> unique;
  for (std::size_t i = 0; i < count; ++i) {
    void* p = pool.Allocate(4096);
    blocks.push_back(p);
    unique.insert(p);
  }
  EXPECT_EQ(unique.size(), blocks.size());
  EXPECT_GE(pool.ReservedBytes(), count * 4096);
  for (void* p : blocks) {
    pool.Deallocate(p, 4096);
  }
  EXPECT_EQ(pool.LiveBytes(), 0u);
}

TEST(MemoryPoolTest, ShardSelectionFollowsExecutorWorkerId) {
  // Contention assertion: on executor workers the shard is the worker id
  // mod kNumShards — an exact round-robin, so the workers of one pool can
  // never all collide onto a single shard the way the old process-wide
  // thread stripe could (stripe slots are burned by every thread the
  // process ever creates, and 8 workers with stripe indices {k, k+8, ...}
  // all hash to one shard). Distinct workers => distinct shards, verified
  // on whichever workers execute.
  ThreadPool pool(MemoryPool::kNumShards);
  std::atomic<int> collisions{0};
  pool.ParallelFor(0, 4096, [&](std::size_t) {
    const int worker = ThreadPool::CurrentWorkerId();
    if (worker >= 0 &&
        MemoryPool::CurrentShardIndex() != worker % MemoryPool::kNumShards) {
      collisions.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(collisions.load(), 0);
}

TEST(MemoryPoolTest, FreeListMissStealsFromSiblingShardBeforeCarving) {
  // A block freed on one shard (the blocking caller) must satisfy the next
  // same-class lease on another shard (an executor worker) without fresh
  // arena carving — the property that makes walk chunk buffers
  // allocation-free in steady state. Force the cross-shard pattern: lease
  // and free on this thread, then lease the same class from pool workers.
  MemoryPool pool;
  constexpr std::size_t kBytes = 1 << 16;
  ThreadPool workers(2);
  void* warm = pool.Allocate(kBytes);
  pool.Deallocate(warm, kBytes);  // parked on this thread's shard
  const auto before = pool.Stats();
  std::atomic<void*> stolen{nullptr};
  // Post (not ParallelFor): the caller participates in its own parallel
  // regions, and the point here is a lease from a WORKER shard.
  workers.Post([&] {
    stolen.store(pool.Allocate(kBytes), std::memory_order_release);
  });
  for (int spin = 0; spin < 10000 && stolen.load() == nullptr; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto after = pool.Stats();
  ASSERT_NE(stolen.load(), nullptr);
  EXPECT_EQ(after.FreshAllocations(), before.FreshAllocations())
      << "the sibling shard's parked block must be stolen, not re-carved";
  EXPECT_EQ(after.free_list_hits, before.free_list_hits + 1);
  pool.Deallocate(stolen.load(), kBytes);
  EXPECT_EQ(pool.LiveBytes(), 0u);
}

TEST(MemoryPoolTest, ParallelAllocateDeallocateStress) {
  // Cross-thread churn: each worker allocates, writes a pattern, verifies,
  // and frees; blocks freed by one thread may be recycled by another shard.
  MemoryPool pool;
  ThreadPool workers(4);
  std::atomic<int> failures{0};
  workers.ParallelFor(0, 2000, [&](std::size_t i) {
    Rng rng(i);
    const std::size_t bytes = 16 + rng.NextBounded(4000);
    auto* block = static_cast<unsigned char*>(pool.Allocate(bytes));
    const auto pattern = static_cast<unsigned char>(i & 0xFF);
    std::memset(block, pattern, bytes);
    if (block[0] != pattern || block[bytes - 1] != pattern) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
    pool.Deallocate(block, bytes);
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.LiveBytes(), 0u);
}

// ----------------------------------------------------------- thread pool --

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForChunkedPartitionsContiguously) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.ParallelForChunked(5, 1005, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(lo, hi);
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(10, 10, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [](std::size_t i) {
                         if (i == 50) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::Global().ParallelFor(0, 100, [&](std::size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 100);
}

// ----------------------------------------------------------------- timer --

TEST(TimerTest, AccumulatorSumsScopes) {
  TimeAccumulator acc;
  {
    ScopedAccumulator scope(acc);
  }
  {
    ScopedAccumulator scope(acc);
  }
  EXPECT_GE(acc.Seconds(), 0.0);
  acc.Reset();
  EXPECT_EQ(acc.Seconds(), 0.0);
}

TEST(TimerTest, TimerIsMonotonic) {
  Timer t;
  const double a = t.Seconds();
  const double b = t.Seconds();
  EXPECT_GE(b, a);
}

TEST(HistogramTest, QuantilesStayWithinObservedRange) {
  LatencyHistogram hist;
  hist.RecordSeconds(0.010);
  hist.RecordSeconds(0.020);
  hist.RecordSeconds(0.500);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_GE(hist.QuantileSeconds(q), hist.MinSeconds()) << "q=" << q;
    EXPECT_LE(hist.QuantileSeconds(q), hist.MaxSeconds()) << "q=" << q;
  }
  // A single sample collapses the clamp: every quantile IS the sample,
  // with no bucket-midpoint error.
  LatencyHistogram single;
  single.RecordSeconds(1.0);
  EXPECT_DOUBLE_EQ(single.QuantileSeconds(0.5), 1.0);
  EXPECT_DOUBLE_EQ(single.QuantileSeconds(0.99), 1.0);
}

TEST(HistogramTest, RecordSecondsDropsNanClampsNegative) {
  LatencyHistogram hist;
  hist.RecordSeconds(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(hist.Count(), 0u);
  hist.RecordSeconds(-5.0);  // a backwards clock step records as zero
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_DOUBLE_EQ(hist.MinSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(hist.QuantileSeconds(0.5), 0.0);
}

TEST(HistogramTest, RecordSecondsSaturatesHugeValues) {
  LatencyHistogram hist;
  hist.RecordSeconds(1e300);  // would be UB cast to uint64_t nanoseconds
  hist.RecordSeconds(std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.Count(), 2u);
  const double cap = 1e-9 * 18446744073709551615.0;  // 2^64-1 ns in seconds
  EXPECT_NEAR(hist.MaxSeconds(), cap, 1.0);
  EXPECT_LE(hist.QuantileSeconds(0.99), hist.MaxSeconds());
}

TEST(HistogramTest, MergePreservesBoundsAndRanks) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.RecordSeconds(0.001);
  b.RecordSeconds(1.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.MinSeconds(), 0.001);
  EXPECT_DOUBLE_EQ(a.MaxSeconds(), 1.0);
  EXPECT_LE(a.QuantileSeconds(0.5), a.MaxSeconds());
  EXPECT_GE(a.QuantileSeconds(0.5), a.MinSeconds());
}

}  // namespace
}  // namespace bingo::util
