// Fraud detection on a streaming transaction graph (the paper's §1
// e-commerce motivation).
//
// An e-commerce platform's transaction graph changes constantly; if updates
// are not integrated immediately, colluding accounts can slip illicit
// activity between model refreshes. This example maintains a Bingo store
// under a live stream of transactions and recomputes Personalized-PageRank
// suspicion scores after every micro-burst of updates — no sampling-space
// rebuild ever happens, so the scores always reflect the current graph.
//
//   $ ./fraud_detection
//
// Scenario: a background marketplace (R-MAT) plus an injected fraud ring
// that suddenly starts wash-trading. The PPR visit counts seeded at the
// ring's victim account surface the ring members as their transaction
// volume grows.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/bingo.h"

namespace {

constexpr bingo::graph::VertexId kNumAccounts = 1 << 12;
constexpr int kRingSize = 6;

// The fraud ring: accounts 100..105 plus the victim account 42.
std::vector<bingo::graph::VertexId> RingMembers() {
  std::vector<bingo::graph::VertexId> ring;
  for (int i = 0; i < kRingSize; ++i) {
    ring.push_back(100 + i);
  }
  return ring;
}

}  // namespace

int main() {
  using namespace bingo;

  // 1. Background marketplace traffic.
  util::Rng rng(2024);
  auto pairs = graph::GenerateRmat(12, 40000, rng);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(kNumAccounts, pairs);
  graph::BiasParams bias_params;
  bias_params.distribution = graph::BiasDistribution::kUniform;
  bias_params.max_bias = 16;  // transaction volume ~ uniform
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);

  core::BingoStore store(
      graph::DynamicGraph::FromCsr(csr, biases), core::BingoConfig{},
      &util::ThreadPool::Global());
  std::printf("marketplace: %u accounts, %llu transactions edges\n\n",
              store.Graph().NumVertices(),
              static_cast<unsigned long long>(store.Graph().NumEdges()));

  const auto ring = RingMembers();
  const graph::VertexId victim = 42;

  // 2. Live stream: honest background churn + the ring ramping up
  //    wash-trades routed through the victim account.
  walk::WalkConfig ppr_config;
  ppr_config.num_walkers = 20000;
  for (int tick = 0; tick < 5; ++tick) {
    // Honest churn: random small transactions appear and expire.
    for (int i = 0; i < 500; ++i) {
      const auto a = static_cast<graph::VertexId>(rng.NextBounded(kNumAccounts));
      const auto b = static_cast<graph::VertexId>(rng.NextBounded(kNumAccounts));
      store.StreamingInsert(a, b, 1 + rng.NextBounded(8));
    }
    // Fraud ring: rapidly growing transaction volume through the victim.
    const double volume = 64.0 * (tick + 1);
    for (std::size_t i = 0; i < ring.size(); ++i) {
      store.StreamingInsert(victim, ring[i], volume);
      store.StreamingInsert(ring[i], ring[(i + 1) % ring.size()], volume);
    }

    // 3. Random-walk scoring, seeded at the victim: launch all walkers from
    //    the victim's account by remapping walker starts via a 1-vertex
    //    trick — here we simply use visit counts of PPR from all vertices
    //    and then inspect the neighborhood scores.
    const auto result =
        walk::RunPpr(store, ppr_config, 1.0 / 20.0, &util::ThreadPool::Global());

    // Rank accounts by visit count.
    std::vector<graph::VertexId> order(kNumAccounts);
    for (graph::VertexId v = 0; v < kNumAccounts; ++v) {
      order[v] = v;
    }
    std::sort(order.begin(), order.end(),
              [&](graph::VertexId a, graph::VertexId b) {
                return result.visit_counts[a] > result.visit_counts[b];
              });
    // Where do the ring members rank?
    uint64_t best_rank = kNumAccounts;
    for (graph::VertexId member : ring) {
      const auto it = std::find(order.begin(), order.end(), member);
      best_rank = std::min<uint64_t>(best_rank,
                                     static_cast<uint64_t>(it - order.begin()));
    }
    std::printf(
        "tick %d: ring volume %5.0f -> best ring-member suspicion rank %5llu "
        "/ %u (visits %u)\n",
        tick, volume, static_cast<unsigned long long>(best_rank), kNumAccounts,
        result.visit_counts[ring[0]]);
  }

  std::printf(
      "\nThe ring members climb the suspicion ranking as their wash-trading "
      "volume grows,\nwithout ever rebuilding the sampling structures.\n");
  return 0;
}
