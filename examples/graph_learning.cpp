// Mini-batch sampling for GNN training on a churning graph (the paper's §1
// graph-learning motivation: random walks take ~96% of end-to-end training
// time, so the walk engine is the training bottleneck).
//
// Each "training step" draws a node2vec mini-batch corpus (positive pairs
// for a SkipGram-style objective) while a concurrent stream of graph
// updates lands between steps — the sampling space follows the graph with
// O(K) work per update.
//
//   $ ./graph_learning

#include <cstdio>

#include "src/bingo.h"

int main() {
  using namespace bingo;

  util::Rng rng(99);
  auto pairs = graph::GenerateRmat(12, 60000, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::VertexId n = 1 << 12;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams bias_params;
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);

  core::BingoStore store(
      graph::DynamicGraph::FromCsr(csr, biases), core::BingoConfig{},
      &util::ThreadPool::Global());

  // node2vec configuration, per the paper's defaults (p = 0.5 favours
  // exploration with some backtracking; q = 2 keeps walks local).
  walk::Node2vecParams params;
  params.p = 0.5;
  params.q = 2.0;

  walk::WalkConfig batch_config;
  batch_config.num_walkers = 1024;  // mini-batch of 1024 root vertices
  batch_config.walk_length = 20;
  batch_config.record_paths = true;

  uint64_t total_pairs = 0;
  for (int step = 1; step <= 6; ++step) {
    // The graph churns between training steps.
    graph::UpdateList updates;
    for (int i = 0; i < 2000; ++i) {
      const auto u = static_cast<graph::VertexId>(rng.NextBounded(n));
      const auto v = static_cast<graph::VertexId>(rng.NextBounded(n));
      if (rng.NextBool(0.5)) {
        updates.push_back({graph::Update::Kind::kInsert, u, v,
                           1.0 + static_cast<double>(rng.NextBounded(16))});
      } else if (store.Graph().Degree(u) > 0) {
        const auto adj = store.Graph().Neighbors(u);
        updates.push_back({graph::Update::Kind::kDelete, u,
                           adj[rng.NextBounded(adj.size())].dst, 0.0});
      }
    }
    store.ApplyBatch(updates, &util::ThreadPool::Global());

    // Draw the mini-batch walk corpus.
    util::Timer timer;
    walk::WalkConfig cfg = batch_config;
    cfg.seed = 1000 + step;  // fresh randomness per step
    const auto corpus =
        walk::RunNode2vec(store, cfg, params, &util::ThreadPool::Global());
    // SkipGram positive pairs within a +-2 window.
    uint64_t pairs_in_batch = 0;
    for (std::size_t w = 0; w + 1 < cfg.num_walkers; ++w) {
      const uint64_t len = corpus.path_offsets[w + 1] - corpus.path_offsets[w];
      if (len >= 3) {
        pairs_in_batch += (len - 1) * 2 - 2;  // interior windows
      }
    }
    total_pairs += pairs_in_batch;
    std::printf(
        "step %d: %llu walk steps -> %llu skip-gram pairs in %.3fs "
        "(graph now %llu edges)\n",
        step, static_cast<unsigned long long>(corpus.total_steps),
        static_cast<unsigned long long>(pairs_in_batch), timer.Seconds(),
        static_cast<unsigned long long>(store.Graph().NumEdges()));
  }
  std::printf("\ntotal positive pairs produced: %llu\n",
              static_cast<unsigned long long>(total_pairs));
  return 0;
}
