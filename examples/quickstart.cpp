// Quickstart: build a Bingo store over a small weighted graph, run biased
// walks, stream a few updates, and run walks again.
//
//   $ ./quickstart
//
// This is the minimal end-to-end tour of the public API.

#include <cstdio>

#include "src/bingo.h"

int main() {
  using namespace bingo;

  // 1. A small synthetic power-law graph with degree-derived biases.
  util::Rng rng(42);
  auto pairs = graph::GenerateRmat(/*scale=*/10, /*num_edges=*/8192, rng);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(1 << 10, pairs);
  graph::BiasParams bias_params;  // default: degree-based biases
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);

  // 2. The Bingo store: radix-factorized sampling spaces over a dynamic
  //    graph, with the adaptive group representation enabled.
  core::BingoConfig config;  // adaptive GA mode, integer biases
  core::BingoStore store(
      graph::DynamicGraph::FromCsr(csr, biases), config,
      &util::ThreadPool::Global());
  std::printf("graph: %u vertices, %llu edges, %.2f MiB store\n",
              store.Graph().NumVertices(),
              static_cast<unsigned long long>(store.Graph().NumEdges()),
              store.MemoryBytes() / 1024.0 / 1024.0);

  // 3. Biased DeepWalk: one walker per vertex, length 80, O(1) per step.
  walk::WalkConfig walk_config;
  walk_config.walk_length = 80;
  const auto before = walk::RunDeepWalk(store, walk_config,
                                        &util::ThreadPool::Global());
  std::printf("deepwalk: %llu steps across %llu walkers\n",
              static_cast<unsigned long long>(before.total_steps),
              static_cast<unsigned long long>(before.finished_walkers));

  // 4. Stream some updates (O(K) each — no alias-table rebuild over the
  //    full neighborhood).
  store.StreamingInsert(/*src=*/1, /*dst=*/2, /*bias=*/5.0);
  store.StreamingInsert(1, 3, 9.0);
  store.StreamingDelete(1, 2);
  std::printf("after streaming updates: %llu edges\n",
              static_cast<unsigned long long>(store.Graph().NumEdges()));

  // 5. Or ingest a whole batch at once (one rebuild per touched vertex).
  graph::UpdateList batch;
  for (graph::VertexId v = 0; v < 64; ++v) {
    batch.push_back({graph::Update::Kind::kInsert, v, (v + 7) % 1024, 3.0});
  }
  const auto result = store.ApplyBatch(batch, &util::ThreadPool::Global());
  std::printf("batched: %llu inserted, %llu deleted, %llu skipped\n",
              static_cast<unsigned long long>(result.inserted),
              static_cast<unsigned long long>(result.deleted),
              static_cast<unsigned long long>(result.skipped_deletes));

  // 6. Walks reflect the updates immediately.
  const auto after = walk::RunDeepWalk(store, walk_config,
                                       &util::ThreadPool::Global());
  std::printf("deepwalk after updates: %llu steps\n",
              static_cast<unsigned long long>(after.total_steps));
  return 0;
}
