// Product/friend recommendation with daily batched updates (the paper's §1
// recommendation motivation).
//
// Recommendation pipelines retrain embeddings on a fixed cadence, ingesting
// the day's interaction log as one large batch. This example ingests
// synthetic "daily" batches with Bingo's parallel batched pipeline (§5.2)
// and regenerates a DeepWalk embedding corpus after every day; it also
// demonstrates that walk corpora immediately reflect the ingested batch.
//
//   $ ./recommendation

#include <cstdio>
#include <map>

#include "src/bingo.h"

int main() {
  using namespace bingo;

  // 1. The interaction graph (users x products folded into one id space).
  util::Rng rng(7);
  auto pairs = graph::GenerateRmat(13, 80000, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::VertexId n = 1 << 13;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams bias_params;  // degree-derived interaction strength
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);
  const auto edges = graph::ToWeightedEdges(csr, biases);

  // Hold back a pool of "future" interactions to ingest day by day.
  graph::UpdateWorkloadParams wparams;
  wparams.kind = graph::UpdateKind::kMixed;
  wparams.batch_size = 5000;  // one day's log
  wparams.num_batches = 4;    // four days
  const auto workload = graph::BuildUpdateWorkload(edges, wparams, rng);

  core::BingoStore store(
      graph::DynamicGraph::FromEdges(n, workload.initial_edges),
      core::BingoConfig{}, &util::ThreadPool::Global());

  walk::WalkConfig corpus_config;
  corpus_config.walk_length = 40;
  corpus_config.record_paths = true;

  const auto batches = graph::SplitIntoBatches(workload.updates, 5000);
  for (std::size_t day = 0; day < batches.size(); ++day) {
    util::Timer ingest_timer;
    const auto ingest =
        store.ApplyBatch(batches[day], &util::ThreadPool::Global());
    const double ingest_s = ingest_timer.Seconds();

    util::Timer corpus_timer;
    const auto corpus =
        walk::RunDeepWalk(store, corpus_config, &util::ThreadPool::Global());
    const double corpus_s = corpus_timer.Seconds();

    std::printf(
        "day %zu: ingested %llu inserts / %llu deletes in %.3fs "
        "(%.0f updates/s); corpus: %llu tokens in %.3fs\n",
        day + 1, static_cast<unsigned long long>(ingest.inserted),
        static_cast<unsigned long long>(ingest.deleted), ingest_s,
        (ingest.inserted + ingest.deleted) / ingest_s,
        static_cast<unsigned long long>(corpus.paths.size()), corpus_s);
  }

  // 2. Co-occurrence probe: the corpus is SkipGram-ready — show the top
  //    walk co-occurrences of one "user" as recommendation candidates.
  const graph::VertexId user = 17;
  const auto corpus =
      walk::RunDeepWalk(store, corpus_config, &util::ThreadPool::Global());
  std::map<graph::VertexId, uint32_t> cooccur;
  constexpr int kWindow = 3;
  for (std::size_t w = 0; w + 1 < corpus.path_offsets.size(); ++w) {
    const uint64_t begin = corpus.path_offsets[w];
    const uint64_t end = corpus.path_offsets[w + 1];
    for (uint64_t i = begin; i < end; ++i) {
      if (corpus.paths[i] != user) {
        continue;
      }
      const uint64_t lo = i > begin + kWindow ? i - kWindow : begin;
      const uint64_t hi = std::min(end, i + kWindow + 1);
      for (uint64_t j = lo; j < hi; ++j) {
        if (corpus.paths[j] != user) {
          ++cooccur[corpus.paths[j]];
        }
      }
    }
  }
  std::printf("\ntop recommendation candidates for vertex %u:\n", user);
  std::vector<std::pair<uint32_t, graph::VertexId>> ranked;
  for (const auto& [v, c] : cooccur) {
    ranked.emplace_back(c, v);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    std::printf("  vertex %6u  (co-occurrences %u, currently-linked: %s)\n",
                ranked[i].second, ranked[i].first,
                store.Graph().HasEdge(user, ranked[i].second) ? "yes" : "no");
  }
  return 0;
}
