// 1-D partitioned Bingo with walker transfer (§9.1 supplement).
//
// The paper scales to multiple GPUs by partitioning vertices 1-D across
// devices and transferring *walkers* (tiny) instead of sampling structures
// (huge). This example runs the same workload on 1, 2, and 4 shards and
// reports the walker-migration volume — the communication the multi-GPU
// design trades for replicated structures.
//
//   $ ./multi_shard

#include <cstdio>

#include "src/bingo.h"

int main() {
  using namespace bingo;

  util::Rng rng(5);
  auto pairs = graph::GenerateRmat(13, 100000, rng);
  graph::MakeUndirected(pairs);
  graph::Canonicalize(pairs);
  const graph::VertexId n = 1 << 13;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams bias_params;
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);
  const auto edges = graph::ToWeightedEdges(csr, biases);

  walk::WalkConfig cfg;
  cfg.walk_length = 40;

  for (const int shards : {1, 2, 4}) {
    walk::PartitionedBingoStore store(edges, n, shards, core::BingoConfig{},
                                      &util::ThreadPool::Global());

    // Batched updates route to owning shards and apply in parallel.
    graph::UpdateList updates;
    for (int i = 0; i < 5000; ++i) {
      updates.push_back({graph::Update::Kind::kInsert,
                         static_cast<graph::VertexId>(rng.NextBounded(n)),
                         static_cast<graph::VertexId>(rng.NextBounded(n)),
                         1.0 + rng.NextBounded(32)});
    }
    util::Timer update_timer;
    store.ApplyBatch(updates, &util::ThreadPool::Global());
    const double update_s = update_timer.Seconds();

    util::Timer walk_timer;
    const auto result =
        walk::RunPartitionedDeepWalk(store, cfg, &util::ThreadPool::Global());
    std::printf(
        "%d shard(s): %8.2f MiB total, updates %.3fs, walk %.3fs, "
        "%llu steps, %llu cross-shard walker transfers (%.1f%%)\n",
        shards, store.MemoryBytes() / 1024.0 / 1024.0, update_s,
        walk_timer.Seconds(),
        static_cast<unsigned long long>(result.total_steps),
        static_cast<unsigned long long>(result.walker_migrations),
        result.total_steps == 0
            ? 0.0
            : 100.0 * static_cast<double>(result.walker_migrations) /
                  static_cast<double>(result.total_steps));
  }
  std::printf(
      "\nWalker transfers approach (shards-1)/shards of all steps under "
      "round-robin 1-D partitioning\n(less when the graph's id-locality "
      "keeps hops inside a shard, as R-MAT's low-bit correlation does),\n"
      "while per-shard sampling structures stay untouched — the trade the "
      "paper's multi-GPU design makes.\n");
  return 0;
}
