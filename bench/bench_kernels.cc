// Sampling-kernel microbenchmark: scalar per-walker draws vs the SoA batch
// kernels (src/sampling/batch_kernels.h) behind the fused walk driver.
//
// For each sampler — alias table, ITS, the Bingo vertex sampler, and the
// arbitrary-base radix sampler — a pool of walker RNG streams draws
// `reps x walkers` samples three ways:
//
//   scalar          one Sample call per walker per round
//   batched         one SampleBatch call per round (SIMD lanes + tiling)
//   batched-scalar  SampleBatch with AVX2 force-disabled (tiling only)
//
// All three use identical RNG streams, so outputs must agree draw for draw
// (the bench asserts a checksum match — the bit-identity contract holds in
// the measured configuration, not just in tests). ns/draw and the batched
// speedup go to stdout and, with --json OUT.json, to a JSON file for the
// BENCH_*.json perf trajectory.
//
// Environment knobs: BINGO_BENCH_KWALKERS (default 4096 streams),
// BINGO_BENCH_KREPS (default 200 rounds).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/radix_base.h"
#include "src/core/vertex_sampler.h"
#include "src/graph/dynamic_graph.h"
#include "src/sampling/alias_table.h"
#include "src/sampling/its.h"
#include "src/util/cpu_features.h"
#include "src/util/rng.h"

namespace bingo::bench {
namespace {

struct Cell {
  std::string kernel;
  std::size_t degree = 0;
  double scalar_ns = 0;
  double batched_ns = 0;
  double batched_scalar_ns = 0;
  double Speedup() const {
    return batched_ns > 0 ? scalar_ns / batched_ns : 0.0;
  }
};

std::vector<util::Rng> MakeStreams(std::size_t n, uint64_t seed) {
  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rngs.push_back(util::Rng::ForStream(seed, i));
  }
  return rngs;
}

// Measures one sampler. `scalar(rng)` draws once from one stream;
// `batched(rng_ptrs, n, out)` draws once per stream. Streams are reset to
// the same seed before each timed section, so the checksum comparison
// doubles as a bit-identity assertion over every measured draw.
template <typename ScalarFn, typename BatchFn>
Cell Measure(const char* kernel, std::size_t degree, std::size_t walkers,
             int reps, ScalarFn&& scalar, BatchFn&& batched) {
  Cell cell;
  cell.kernel = kernel;
  cell.degree = degree;
  const double draws = static_cast<double>(walkers) * reps;
  std::vector<uint32_t> out(walkers);

  uint64_t scalar_sum = 0;
  {
    auto rngs = MakeStreams(walkers, 0xbe9c);
    cell.scalar_ns = TimeSec([&] {
                       for (int r = 0; r < reps; ++r) {
                         for (std::size_t i = 0; i < walkers; ++i) {
                           scalar_sum += scalar(rngs[i]);
                         }
                       }
                     }) *
                     1e9 / draws;
  }

  const auto run_batched = [&](uint64_t& sum) {
    auto rngs = MakeStreams(walkers, 0xbe9c);
    std::vector<util::Rng*> ptrs(walkers);
    for (std::size_t i = 0; i < walkers; ++i) {
      ptrs[i] = &rngs[i];
    }
    return TimeSec([&] {
             for (int r = 0; r < reps; ++r) {
               batched(ptrs.data(), walkers, out.data());
               for (std::size_t i = 0; i < walkers; ++i) {
                 sum += out[i];
               }
             }
           }) *
           1e9 / draws;
  };

  uint64_t batched_sum = 0;
  cell.batched_ns = run_batched(batched_sum);
  uint64_t forced_sum = 0;
  {
    util::ScopedForceScalar force_scalar;
    cell.batched_scalar_ns = run_batched(forced_sum);
  }
  if (scalar_sum != batched_sum || scalar_sum != forced_sum) {
    std::fprintf(stderr,
                 "%s: BIT-IDENTITY VIOLATION (scalar %llu, batched %llu, "
                 "forced-scalar %llu)\n",
                 kernel, static_cast<unsigned long long>(scalar_sum),
                 static_cast<unsigned long long>(batched_sum),
                 static_cast<unsigned long long>(forced_sum));
    std::exit(1);
  }
  return cell;
}

// A star adjacency with mixed fractional biases — exercises the dense
// rejection groups, uniform groups, and the decimal group together.
graph::DynamicGraph StarGraph(std::size_t degree, uint64_t seed) {
  util::Rng rng(seed);
  graph::DynamicGraph g(static_cast<graph::VertexId>(degree + 8));
  for (std::size_t i = 0; i < degree; ++i) {
    g.Insert(0, static_cast<graph::VertexId>(i + 1),
             0.25 + rng.NextUnit() * static_cast<double>(
                                         1 + rng.NextBounded(64)));
  }
  return g;
}

}  // namespace
}  // namespace bingo::bench

int main(int argc, char** argv) {
  using namespace bingo;
  bench::TuneAllocator();

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_kernels [--json OUT.json]\n");
      return 2;
    }
  }

  const auto walkers = static_cast<std::size_t>(
      bench::EnvInt("BINGO_BENCH_KWALKERS", 4096));
  const int reps = static_cast<int>(bench::EnvInt("BINGO_BENCH_KREPS", 200));
  const char* simd = util::ToString(util::ActiveSimdLevel());
  std::printf("bench_kernels: %zu walker streams x %d rounds, simd %s\n\n",
              walkers, reps, simd);

  std::vector<bench::Cell> cells;
  for (const std::size_t degree : {64, 1024}) {
    util::Rng wrng(degree);
    std::vector<double> weights(degree);
    for (auto& w : weights) {
      w = 1.0 + static_cast<double>(wrng.NextBounded(1000));
    }

    sampling::AliasTable alias;
    alias.Build(weights);
    cells.push_back(bench::Measure(
        "alias", degree, walkers, reps,
        [&](util::Rng& rng) { return alias.Sample(rng); },
        [&](util::Rng* const* rngs, std::size_t n, uint32_t* out) {
          alias.SampleBatch(rngs, n, out);
        }));

    sampling::ItsSampler its;
    its.Build(weights);
    cells.push_back(bench::Measure(
        "its", degree, walkers, reps,
        [&](util::Rng& rng) { return its.Sample(rng); },
        [&](util::Rng* const* rngs, std::size_t n, uint32_t* out) {
          its.SampleBatch(rngs, n, out);
        }));

    const auto g = bench::StarGraph(degree, degree + 7);
    const auto adj = g.Neighbors(0);
    core::BingoConfig config;
    core::VertexSampler sampler;
    sampler.SetConfig(&config);
    sampler.Build(adj);
    cells.push_back(bench::Measure(
        "bingo_vertex", degree, walkers, reps,
        [&](util::Rng& rng) { return sampler.SampleIndex(adj, rng); },
        [&](util::Rng* const* rngs, std::size_t n, uint32_t* out) {
          sampler.SampleIndexBatch(adj, rngs, n, out);
        }));

    core::RadixBaseVertexSampler radix(/*log2_base=*/2);
    radix.Build(adj);
    cells.push_back(bench::Measure(
        "radix_base", degree, walkers, reps,
        [&](util::Rng& rng) { return radix.SampleIndex(rng); },
        [&](util::Rng* const* rngs, std::size_t n, uint32_t* out) {
          radix.SampleIndexBatch(rngs, n, out);
        }));
  }

  std::printf("%-14s %8s %12s %12s %16s %9s\n", "kernel", "degree",
              "scalar ns", "batched ns", "batched-scalar", "speedup");
  for (const auto& cell : cells) {
    std::printf("%-14s %8zu %12.2f %12.2f %16.2f %8.2fx\n",
                cell.kernel.c_str(), cell.degree, cell.scalar_ns,
                cell.batched_ns, cell.batched_scalar_ns, cell.Speedup());
  }

  std::string json = "{\"bench\":\"kernels\",\"simd\":\"";
  json += simd;
  json += "\",\"walkers\":" + std::to_string(walkers);
  json += ",\"reps\":" + std::to_string(reps) + ",\"cells\":[";
  char buf[256];
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"kernel\":\"%s\",\"degree\":%zu,\"scalar_ns\":%.3f,"
                  "\"batched_ns\":%.3f,\"batched_scalar_ns\":%.3f,"
                  "\"speedup\":%.3f}",
                  i == 0 ? "" : ",", cell.kernel.c_str(), cell.degree,
                  cell.scalar_ns, cell.batched_ns, cell.batched_scalar_ns,
                  cell.Speedup());
    json += buf;
  }
  json += "]}";
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
    std::printf("\njson written to %s\n", json_path.c_str());
  } else {
    std::printf("\n%s\n", json.c_str());
  }
  return 0;
}
