// §9.2 ablation: Bingo with arbitrary radix bases (2, 4, 16, 256).
//
// A larger base shrinks K (the number of digit groups each update touches)
// but widens the per-group subgroup alias tables; this bench measures the
// trade-off: average active groups per vertex, memory, streaming update
// latency, and sampling throughput.

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/radix_base.h"
#include "src/graph/dynamic_graph.h"

int main() {
  using namespace bingo;
  using namespace bingo::bench;

  TuneAllocator();

  graph::BiasParams bias_params;
  bias_params.distribution = graph::BiasDistribution::kUniform;
  bias_params.max_bias = 65535;  // 16 bias bits: K_2 = 16, K_4 = 8, ...
  const auto dataset = StandardDatasets()[1];  // GO stand-in
  const uint64_t updates = EnvInt("BINGO_BENCH_ABL_OPS", 20'000);
  const uint64_t samples = EnvInt("BINGO_BENCH_ABL_SAMPLES", 2'000'000);

  const auto workload = PrepareWorkload(dataset, graph::UpdateKind::kMixed,
                                        bias_params, 23, updates, 1);

  std::printf(
      "Radix-base ablation (§9.2), GO stand-in, 16-bit uniform biases,\n"
      "%llu streaming updates + %llu samples per base\n\n",
      static_cast<unsigned long long>(updates),
      static_cast<unsigned long long>(samples));
  std::printf("%-8s %10s %12s %14s %14s\n", "base", "avg K", "memory MiB",
              "updates (s)", "samples (s)");
  PrintRule(64);

  for (const int r : {1, 2, 4, 8}) {
    core::RadixBaseStore store(
        graph::DynamicGraph::FromEdges(workload.num_vertices,
                                       workload.initial_edges),
        r);
    const double update_s = TimeSec([&] {
      for (const graph::Update& u : workload.batches[0]) {
        if (u.kind == graph::Update::Kind::kInsert) {
          store.StreamingInsert(u.src, u.dst, u.bias);
        } else {
          store.StreamingDelete(u.src, u.dst);
        }
      }
    });
    util::Rng rng(5);
    std::vector<graph::VertexId> starts;
    while (starts.size() < 4096) {
      const auto v = static_cast<graph::VertexId>(
          rng.NextBounded(store.Graph().NumVertices()));
      if (store.Graph().Degree(v) > 0) {
        starts.push_back(v);
      }
    }
    const double sample_s = TimeSec([&] {
      uint64_t sink = 0;
      for (uint64_t s = 0; s < samples; ++s) {
        sink += store.SampleNeighbor(starts[s & 4095], rng);
      }
      if (sink == 42) {
        std::printf("!");
      }
    });
    std::printf("2^%-6d %10.2f %12.1f %14.3f %14.3f\n", r,
                store.AverageActiveGroups(), ToMiB(store.MemoryBytes()),
                update_s, sample_s);
  }
  std::printf(
      "\nexpected shape: avg K shrinks ~1/r with the base; update latency "
      "follows K; sampling stays O(1) across bases\n");
  return 0;
}
