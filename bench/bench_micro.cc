// Table 1 empirical validation (google-benchmark): per-operation cost of
// Bingo vs the three classical samplers as vertex degree grows.
//
//   Sampling:  Bingo O(1), alias O(1), ITS O(log d), rejection O(d·max/sum)
//   Update:    Bingo O(K), alias O(d) rebuild, ITS O(1) append / O(d)
//              delete, rejection O(1)
//
// Expected: *_Sample stay flat for Bingo/alias and grow for ITS (log) and
// skewed rejection; *_InsertDelete grows linearly for alias/ITS and stays
// flat for Bingo.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/dynamic_graph.h"
#include "src/sampling/alias_table.h"
#include "src/sampling/its.h"
#include "src/sampling/rejection.h"
#include "src/sampling/reservoir.h"
#include "src/util/rng.h"

namespace {

using namespace bingo;

std::vector<double> DegreeBiases(int d, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> biases(d);
  for (auto& b : biases) {
    b = 1 + rng.NextBounded(255);
  }
  return biases;
}

graph::DynamicGraph StarGraph(const std::vector<double>& biases) {
  graph::DynamicGraph g(static_cast<graph::VertexId>(biases.size() + 2));
  for (std::size_t i = 0; i < biases.size(); ++i) {
    g.Insert(0, static_cast<graph::VertexId>(i + 1), biases[i]);
  }
  return g;
}

// ---------------------------------------------------------------- sampling --

void BM_BingoSample(benchmark::State& state) {
  const auto biases = DegreeBiases(static_cast<int>(state.range(0)), 1);
  core::BingoStore store(StarGraph(biases));
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.SampleNeighbor(0, rng));
  }
}
BENCHMARK(BM_BingoSample)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_AliasSample(benchmark::State& state) {
  const auto biases = DegreeBiases(static_cast<int>(state.range(0)), 1);
  sampling::AliasTable table;
  table.Build(biases);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_ItsSample(benchmark::State& state) {
  const auto biases = DegreeBiases(static_cast<int>(state.range(0)), 1);
  sampling::ItsSampler its;
  its.Build(biases);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(its.Sample(rng));
  }
}
BENCHMARK(BM_ItsSample)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_RejectionSample(benchmark::State& state) {
  // Skewed biases: rejection's weak spot (max >> mean).
  auto biases = DegreeBiases(static_cast<int>(state.range(0)), 1);
  biases[0] = 100000.0;
  sampling::RejectionSampler sampler;
  sampler.Build(biases);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_RejectionSample)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ReservoirSample(benchmark::State& state) {
  const auto biases = DegreeBiases(static_cast<int>(state.range(0)), 1);
  graph::DynamicGraph g = StarGraph(biases);
  util::Rng rng(7);
  for (auto _ : state) {
    const auto adj = g.Neighbors(0);
    benchmark::DoNotOptimize(sampling::WeightedReservoirPickFn(
        static_cast<uint32_t>(adj.size()),
        [&adj](uint32_t i) { return adj[i].bias; }, rng));
  }
}
BENCHMARK(BM_ReservoirSample)->Arg(64)->Arg(1024)->Arg(16384);

// ----------------------------------------------------------------- updates --

// Paired insert+delete per iteration keeps the degree steady, so the cost
// being measured is one streaming insertion plus one streaming deletion at
// degree d.
void BM_BingoInsertDelete(benchmark::State& state) {
  const auto biases = DegreeBiases(static_cast<int>(state.range(0)), 1);
  core::BingoStore store(StarGraph(biases));
  util::Rng rng(7);
  const auto n = static_cast<graph::VertexId>(biases.size() + 1);
  for (auto _ : state) {
    store.StreamingInsert(0, n, 1 + rng.NextBounded(255));
    store.StreamingDelete(0, n);
  }
}
BENCHMARK(BM_BingoInsertDelete)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_AliasInsertDelete(benchmark::State& state) {
  // KnightKing-style: any update rebuilds the vertex's alias table, O(d).
  const auto biases = DegreeBiases(static_cast<int>(state.range(0)), 1);
  graph::DynamicGraph g = StarGraph(biases);
  sampling::AliasTable table;
  std::vector<double> scratch = biases;
  util::Rng rng(7);
  const auto n = static_cast<graph::VertexId>(biases.size() + 1);
  for (auto _ : state) {
    g.Insert(0, n, 1 + rng.NextBounded(255));
    scratch.push_back(1.0);
    table.Build(scratch);
    g.SwapRemove(0, g.Degree(0) - 1);
    scratch.pop_back();
    table.Build(scratch);
  }
}
BENCHMARK(BM_AliasInsertDelete)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_ItsInsertDelete(benchmark::State& state) {
  const auto biases = DegreeBiases(static_cast<int>(state.range(0)), 1);
  sampling::ItsSampler its;
  its.Build(biases);
  util::Rng rng(7);
  for (auto _ : state) {
    its.Append(1 + rng.NextBounded(255));  // O(1)
    its.RemoveAt(static_cast<uint32_t>(rng.NextBounded(its.Size())));  // O(d)
  }
}
BENCHMARK(BM_ItsInsertDelete)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_RejectionInsertDelete(benchmark::State& state) {
  const auto biases = DegreeBiases(static_cast<int>(state.range(0)), 1);
  sampling::RejectionSampler sampler;
  sampler.Build(biases);
  util::Rng rng(7);
  for (auto _ : state) {
    sampler.Append(1 + rng.NextBounded(200));
    sampler.RemoveAt(static_cast<uint32_t>(rng.NextBounded(sampler.Size())));
  }
}
BENCHMARK(BM_RejectionInsertDelete)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

}  // namespace

BENCHMARK_MAIN();
