// Figure 11 reproduction: memory impact of the adaptive group
// representation (GA) vs the baseline all-regular representation (BS).
//
//   (a) overall sampler memory, BS vs GA, per dataset;
//   (b)-(d) per-category savings: for every group GA classifies as
//       dense/one-element/sparse, the bytes BS would spend (member list +
//       full O(d) inverted index) vs the bytes GA spends;
//   (e) population ratio of the four group kinds.
//
// BS bytes are computed analytically from the GA structure (count and
// degree determine them exactly); this also reproduces the paper's OOM
// observation for TW without having to materialize the blowup.

#include <array>
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "src/core/bingo_store.h"
#include "src/graph/dynamic_graph.h"
#include "src/util/thread_pool.h"

namespace bingo::bench {
namespace {

struct CategoryBytes {
  std::size_t bs = 0;  // bytes the all-regular representation would spend
  std::size_t ga = 0;  // bytes the adaptive representation spends
};

struct Fig11Row {
  std::array<CategoryBytes, 5> by_kind{};  // indexed by GroupKind
  std::array<uint64_t, 5> population{};
  std::size_t bs_total = 0;
  std::size_t ga_total = 0;
};

Fig11Row Analyze(const core::BingoStore& store) {
  Fig11Row row;
  const auto& g = store.Graph();
  for (graph::VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint32_t degree = g.Degree(v);
    const core::VertexSampler& sampler = store.SamplerAt(v);
    for (int k = 0; k < 64; ++k) {
      const core::RadixGroup* group = sampler.GroupAt(k);
      if (group == nullptr || group->Count() == 0) {
        continue;
      }
      const int kind = static_cast<int>(group->Kind());
      // BS representation: member list (4B each) + full inverted index
      // (4B per neighbor index slot).
      const std::size_t bs_bytes =
          std::size_t{group->Count()} * 4 + std::size_t{degree} * 4;
      const std::size_t ga_bytes = group->MemoryBytes();
      row.by_kind[kind].bs += bs_bytes;
      row.by_kind[kind].ga += ga_bytes;
      row.bs_total += bs_bytes;
      row.ga_total += ga_bytes;
      ++row.population[kind];
    }
  }
  return row;
}

double Ratio(std::size_t bs, std::size_t ga) {
  return ga == 0 ? 0.0 : static_cast<double>(bs) / static_cast<double>(ga);
}

}  // namespace
}  // namespace bingo::bench

int main() {
  using namespace bingo;
  using namespace bingo::bench;

  TuneAllocator();
  using core::GroupKind;

  util::ThreadPool pool;
  graph::BiasParams bias_params;

  std::printf(
      "Figure 11: adaptive group representation (GA) vs all-regular (BS)\n\n");
  std::printf("%-5s %12s %12s %8s | %22s %22s %22s\n", "data", "BS MiB",
              "GA MiB", "saving", "dense BS->GA (x)", "one-elem BS->GA (x)",
              "sparse BS->GA (x)");
  PrintRule(112);

  for (const auto& dataset : StandardDatasets()) {
    const auto workload = PrepareWorkload(dataset, graph::UpdateKind::kMixed,
                                          bias_params, 42, 1, 1);
    core::BingoStore store(graph::DynamicGraph::FromEdges(
                               workload.num_vertices, workload.initial_edges),
                           core::BingoConfig{}, &pool);
    const Fig11Row row = Analyze(store);
    const auto& dense = row.by_kind[static_cast<int>(GroupKind::kDense)];
    const auto& one = row.by_kind[static_cast<int>(GroupKind::kOneElement)];
    const auto& sparse = row.by_kind[static_cast<int>(GroupKind::kSparse)];
    const auto ratio_str = [](std::size_t bs, std::size_t ga) {
      char buffer[16];
      if (ga == 0) {
        std::snprintf(buffer, sizeof(buffer), "inf");
      } else {
        std::snprintf(buffer, sizeof(buffer), "%.1fx", Ratio(bs, ga));
      }
      return std::string(buffer);
    };
    std::printf(
        "%-5s %12.2f %12.2f %7.1fx | %9.2f->%-7.2f%6s %9.2f->%-7.2f%5s "
        "%9.2f->%-7.2f%5s\n",
        dataset.abbr, ToMiB(row.bs_total), ToMiB(row.ga_total),
        Ratio(row.bs_total, row.ga_total), ToMiB(dense.bs), ToMiB(dense.ga),
        ratio_str(dense.bs, dense.ga).c_str(), ToMiB(one.bs), ToMiB(one.ga),
        ratio_str(one.bs, one.ga).c_str(), ToMiB(sparse.bs), ToMiB(sparse.ga),
        ratio_str(sparse.bs, sparse.ga).c_str());

    uint64_t total_groups = 0;
    for (uint64_t c : row.population) {
      total_groups += c;
    }
    std::printf(
        "      (e) group ratio: dense %.3f  regular %.3f  sparse %.3f  "
        "one-element %.3f   (%llu groups)\n",
        static_cast<double>(row.population[static_cast<int>(GroupKind::kDense)]) /
            total_groups,
        static_cast<double>(
            row.population[static_cast<int>(GroupKind::kRegular)]) /
            total_groups,
        static_cast<double>(row.population[static_cast<int>(GroupKind::kSparse)]) /
            total_groups,
        static_cast<double>(
            row.population[static_cast<int>(GroupKind::kOneElement)]) /
            total_groups,
        static_cast<unsigned long long>(total_groups));
  }
  std::printf(
      "\nnote: dense-group GA bytes are 0 by construction; the paper reports "
      "the per-category savings as 323.67x / 21.51x / 6.41x and 14.6-22.2x "
      "overall\n");
  return 0;
}
