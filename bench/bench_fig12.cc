// Figure 12 reproduction: streaming vs batched update ingestion throughput
// for insertion / deletion / mixed workloads.
//
// Streaming applies one update at a time (each pays its own inter-group
// rebuild); batched ingests a whole batch per touched vertex with a single
// rebuild (§5.2), parallelized across vertices.

#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "src/core/bingo_store.h"
#include "src/graph/dynamic_graph.h"
#include "src/util/thread_pool.h"

int main() {
  using namespace bingo;
  using namespace bingo::bench;

  TuneAllocator();

  util::ThreadPool pool;
  graph::BiasParams bias_params;
  const int rounds = BenchRounds();
  const uint64_t batch = BenchBatch();

  std::printf(
      "Figure 12: streaming vs batched ingestion (updates/s), %d x %llu "
      "updates\n\n",
      rounds, static_cast<unsigned long long>(batch));
  std::printf("%-10s %-6s %15s %15s %10s\n", "workload", "data", "streaming/s",
              "batched/s", "speedup");
  PrintRule(62);

  for (const graph::UpdateKind kind :
       {graph::UpdateKind::kInsertion, graph::UpdateKind::kDeletion,
        graph::UpdateKind::kMixed}) {
    for (const auto& dataset : StandardDatasets()) {
      const auto workload =
          PrepareWorkload(dataset, kind, bias_params, 77, batch, rounds);
      const uint64_t total_updates =
          static_cast<uint64_t>(workload.batches.size()) * batch;

      // Best of three repetitions, fresh store each time: individual
      // measurements are tens of milliseconds and this host is noisy.
      constexpr int kReps = 3;
      double streaming_s = 1e100;
      double batched_s = 1e100;
      for (int rep = 0; rep < kReps; ++rep) {
        {
          core::BingoStore store(
              graph::DynamicGraph::FromEdges(workload.num_vertices,
                                             workload.initial_edges),
              core::BingoConfig{}, &pool);
          streaming_s = std::min(streaming_s, TimeSec([&] {
                                   for (const auto& b : workload.batches) {
                                     store.ApplyUpdatesStreaming(b);
                                   }
                                 }));
        }
        {
          core::BingoStore store(
              graph::DynamicGraph::FromEdges(workload.num_vertices,
                                             workload.initial_edges),
              core::BingoConfig{}, &pool);
          batched_s = std::min(batched_s, TimeSec([&] {
                                 for (const auto& b : workload.batches) {
                                   store.ApplyBatch(b, &pool);
                                 }
                               }));
        }
      }
      std::printf("%-10s %-6s %15.0f %15.0f %9.1fx\n", graph::ToString(kind),
                  dataset.abbr, total_updates / streaming_s,
                  total_updates / batched_s, streaming_s / batched_s);
    }
  }
  std::printf(
      "\nexpected shape: batched >> streaming (paper: ~1000x on GPU; the gap "
      "here reflects 2 CPU cores + per-vertex batching)\n");
  return 0;
}
