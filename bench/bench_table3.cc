// Table 3 reproduction: Bingo vs KnightKing-like (alias), gSampler-like
// (ITS), FlowWalker-like (reservoir) across {DeepWalk, node2vec, PPR} x
// {Insertion, Deletion, Mixed} x five dataset stand-ins.
//
// Protocol per cell (the paper's §6.1 evaluation workflow): repeat
// `rounds` times { ingest one batch of updates; run the application },
// report total seconds and end-state memory. Bingo ingests with its
// batched pipeline; alias/ITS use the paper's literal reload protocol
// (graph mutation + full structure reconstruction); the reservoir baseline
// mutates only the graph (FlowWalker keeps no sampling structures).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/bingo_store.h"
#include "src/graph/dynamic_graph.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/baseline_stores.h"

namespace bingo::bench {
namespace {

enum class App { kDeepWalk, kNode2vec, kPpr };

const char* ToString(App app) {
  switch (app) {
    case App::kDeepWalk:
      return "DeepWalk";
    case App::kNode2vec:
      return "node2vec";
    case App::kPpr:
      return "PPR";
  }
  return "?";
}

struct CellResult {
  double seconds = 0;
  double memory_mib = 0;
};

template <typename Store>
uint64_t RunApp(const Store& store, App app, graph::VertexId num_vertices,
                util::ThreadPool& pool) {
  walk::WalkConfig cfg;
  cfg.walk_length = 80;
  cfg.num_walkers = std::max<uint64_t>(1, num_vertices / WalkerDiv());
  switch (app) {
    case App::kDeepWalk:
      return walk::RunDeepWalk(store, cfg, &pool).total_steps;
    case App::kNode2vec: {
      walk::Node2vecParams params;  // p = 0.5, q = 2 (paper defaults)
      return walk::RunNode2vec(store, cfg, params, &pool).total_steps;
    }
    case App::kPpr:
      return walk::RunPpr(store, cfg, 1.0 / 80.0, &pool).total_steps;
  }
  return 0;
}

template <typename Store, typename IngestFn>
CellResult RunCell(const PreparedWorkload& workload, App app,
                   util::ThreadPool& pool, IngestFn&& ingest) {
  Store store(graph::DynamicGraph::FromEdges(workload.num_vertices,
                                             workload.initial_edges),
              &pool);
  CellResult result;
  result.seconds = TimeSec([&] {
    for (const auto& batch : workload.batches) {
      ingest(store, batch);
      RunApp(store, app, workload.num_vertices, pool);
    }
  });
  result.memory_mib = ToMiB(store.MemoryBytes());
  return result;
}

// BingoStore's constructor takes a config before the pool; adapt it to the
// common Store(graph, pool) shape used by RunCell.
class BingoCell : public core::BingoStore {
 public:
  BingoCell(graph::DynamicGraph graph, util::ThreadPool* pool)
      : core::BingoStore(std::move(graph), core::BingoConfig{}, pool) {}
};

void PrintRow(const std::string& label, const std::vector<CellResult>& cells,
              double avg_speedup) {
  std::printf("%-22s", label.c_str());
  for (const auto& cell : cells) {
    std::printf(" %9.2fs %8.1fM", cell.seconds, cell.memory_mib);
  }
  if (avg_speedup > 0) {
    std::printf("   %7.2fx", avg_speedup);
  } else {
    std::printf("   %8s", "-");
  }
  std::printf("\n");
  std::fflush(stdout);  // long-running bench: keep progress visible
}

}  // namespace
}  // namespace bingo::bench

int main() {
  using namespace bingo;
  using namespace bingo::bench;

  TuneAllocator();

  util::ThreadPool pool;
  const auto datasets = StandardDatasets();
  const int rounds = BenchRounds();
  const uint64_t batch = BenchBatch();
  graph::BiasParams bias_params;  // degree-derived biases (§6.1 default)

  std::printf(
      "Table 3: Bingo vs SOTA — runtime (s) and memory (MiB) per dataset\n"
      "protocol: %d rounds x %llu updates + app run; walkers = V/%llu, "
      "length 80; node2vec p=0.5 q=2; PPR stop 1/80\n",
      rounds, static_cast<unsigned long long>(batch),
      static_cast<unsigned long long>(WalkerDiv()));
  std::printf("%-22s", "framework");
  for (const auto& d : datasets) {
    std::printf(" %10s %9s", d.abbr, "mem");
  }
  std::printf("   %8s\n", "avg spd");

  for (const App app : {App::kDeepWalk, App::kNode2vec, App::kPpr}) {
    for (const graph::UpdateKind kind :
         {graph::UpdateKind::kInsertion, graph::UpdateKind::kDeletion,
          graph::UpdateKind::kMixed}) {
      PrintRule();
      std::printf("%s - %s\n", ToString(app), graph::ToString(kind));

      std::vector<PreparedWorkload> workloads;
      for (std::size_t i = 0; i < datasets.size(); ++i) {
        workloads.push_back(PrepareWorkload(datasets[i], kind, bias_params,
                                            1000 + i, batch, rounds));
      }

      std::vector<CellResult> bingo_cells;
      for (const auto& w : workloads) {
        bingo_cells.push_back(RunCell<BingoCell>(
            w, app, pool, [&pool](BingoCell& store, const graph::UpdateList& b) {
              store.ApplyBatch(b, &pool);
            }));
      }
      PrintRow("Bingo", bingo_cells, 0);

      const auto speedup_vs_bingo = [&](const std::vector<CellResult>& cells) {
        double total = 0;
        for (std::size_t i = 0; i < cells.size(); ++i) {
          total += cells[i].seconds / bingo_cells[i].seconds;
        }
        return total / static_cast<double>(cells.size());
      };

      std::vector<CellResult> cells;
      for (const auto& w : workloads) {
        cells.push_back(RunCell<walk::AliasStore>(
            w, app, pool,
            [&pool](walk::AliasStore& store, const graph::UpdateList& b) {
              store.ApplyBatchReload(b, &pool);
            }));
      }
      PrintRow("KnightKing (alias)", cells, speedup_vs_bingo(cells));

      cells.clear();
      for (const auto& w : workloads) {
        cells.push_back(RunCell<walk::ItsStore>(
            w, app, pool,
            [&pool](walk::ItsStore& store, const graph::UpdateList& b) {
              store.ApplyBatchReload(b, &pool);
            }));
      }
      PrintRow("gSampler (ITS)", cells, speedup_vs_bingo(cells));

      cells.clear();
      for (const auto& w : workloads) {
        cells.push_back(RunCell<walk::ReservoirStore>(
            w, app, pool,
            [](walk::ReservoirStore& store, const graph::UpdateList& b) {
              store.ApplyBatch(b);
            }));
      }
      PrintRow("FlowWalker (reservoir)", cells, speedup_vs_bingo(cells));
    }
  }

  // ------------------------------------------------------------------------
  // High-frequency update regime — the paper's low-latency streaming
  // motivation (fraud detection, RAG): many small batches, each of which
  // must be live before the next walk query. Rebuild-per-round baselines
  // pay O(E) per batch regardless of batch size, so their cost scales with
  // graph size while Bingo's scales with the update count. (The main table
  // above is walk-dominated, where every O(1) sampler is within a small
  // constant of every other on equal hardware; see EXPERIMENTS.md.)
  // ------------------------------------------------------------------------
  PrintRule();
  const uint64_t small_batch = std::max<uint64_t>(batch / 10, 500);
  const int freq_rounds = rounds * 10;
  std::printf(
      "High-frequency regime (DeepWalk, Mixed): %d rounds x %llu updates, "
      "walkers = V/1000\n",
      freq_rounds, static_cast<unsigned long long>(small_batch));
  {
    std::vector<PreparedWorkload> workloads;
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      workloads.push_back(PrepareWorkload(datasets[i], graph::UpdateKind::kMixed,
                                          bias_params, 2000 + i, small_batch,
                                          freq_rounds));
    }
    const auto run_update_cell = [&](auto& store, const auto& w,
                                     auto&& ingest) -> CellResult {
      CellResult cell;
      cell.seconds = TimeSec([&] {
        for (const auto& b : w.batches) {
          ingest(store, b);
          walk::WalkConfig cfg;
          cfg.walk_length = 80;
          cfg.num_walkers = std::max<uint64_t>(1, w.num_vertices / 1000);
          walk::RunDeepWalk(store, cfg, &pool);
        }
      });
      cell.memory_mib = ToMiB(store.MemoryBytes());
      return cell;
    };

    std::vector<CellResult> bingo_cells;
    for (const auto& w : workloads) {
      BingoCell store(
          graph::DynamicGraph::FromEdges(w.num_vertices, w.initial_edges), &pool);
      bingo_cells.push_back(run_update_cell(
          store, w, [&pool](BingoCell& s, const graph::UpdateList& b) {
            s.ApplyBatch(b, &pool);
          }));
    }
    PrintRow("Bingo", bingo_cells, 0);

    const auto speedup = [&](const std::vector<CellResult>& cells) {
      double total = 0;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        total += cells[i].seconds / bingo_cells[i].seconds;
      }
      return total / static_cast<double>(cells.size());
    };

    std::vector<CellResult> cells;
    for (const auto& w : workloads) {
      walk::AliasStore store(
          graph::DynamicGraph::FromEdges(w.num_vertices, w.initial_edges), &pool);
      cells.push_back(run_update_cell(
          store, w, [&pool](walk::AliasStore& s, const graph::UpdateList& b) {
            s.ApplyBatchReload(b, &pool);
          }));
    }
    PrintRow("KnightKing (alias)", cells, speedup(cells));

    cells.clear();
    for (const auto& w : workloads) {
      walk::ItsStore store(
          graph::DynamicGraph::FromEdges(w.num_vertices, w.initial_edges), &pool);
      cells.push_back(run_update_cell(
          store, w, [&pool](walk::ItsStore& s, const graph::UpdateList& b) {
            s.ApplyBatchReload(b, &pool);
          }));
    }
    PrintRow("gSampler (ITS)", cells, speedup(cells));

    cells.clear();
    for (const auto& w : workloads) {
      walk::ReservoirStore store(
          graph::DynamicGraph::FromEdges(w.num_vertices, w.initial_edges));
      cells.push_back(run_update_cell(
          store, w, [](walk::ReservoirStore& s, const graph::UpdateList& b) {
            s.ApplyBatch(b);
          }));
    }
    PrintRow("FlowWalker (reservoir)", cells, speedup(cells));
  }
  return 0;
}
