// Figure 9 reproduction: group element ratio per radix group for Uniform,
// Gaussian, and Power-law bias distributions.
//
// For each distribution, the printed series is |G_k| / |E|: the fraction of
// edges contributing a sub-bias to radix group 2^k. The paper's observation
// (which motivates the sparse-group optimization): except for the uniform
// distribution, higher groups hold markedly fewer edges.

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/radix.h"
#include "src/util/bitops.h"

namespace bingo::bench {
namespace {

constexpr int kGroups = 10;  // bias range [1, 1023] -> groups 2^0 .. 2^9

std::vector<double> GroupRatios(const graph::Csr& csr,
                                graph::BiasDistribution distribution,
                                uint64_t seed) {
  util::Rng rng(seed);
  graph::BiasParams params;
  params.distribution = distribution;
  params.max_bias = (uint64_t{1} << kGroups) - 1;
  // Gaussian mass centered below max/2 so top radix positions thin out, as
  // in the paper's figure (a mean of exactly max/2 makes the top bit a
  // coin flip and hides the effect).
  params.gauss_mean_fraction = 0.3;
  params.gauss_sigma_fraction = 0.12;
  const auto biases = graph::GenerateBiases(csr, params, rng);
  std::vector<uint64_t> counts(kGroups, 0);
  for (double b : biases) {
    const core::BiasParts parts = core::SplitBias(b, 1.0);
    util::ForEachSetBit(parts.int_bits, [&](int k) { ++counts[k]; });
  }
  std::vector<double> ratios(kGroups);
  for (int k = 0; k < kGroups; ++k) {
    ratios[k] = static_cast<double>(counts[k]) / static_cast<double>(biases.size());
  }
  return ratios;
}

}  // namespace
}  // namespace bingo::bench

int main() {
  using namespace bingo;
  using namespace bingo::bench;

  TuneAllocator();

  // A mid-sized stand-in graph; the ratios depend on the bias distribution,
  // not the topology.
  util::Rng rng(7);
  auto pairs = graph::GenerateRmat(15, 260'000, rng);
  graph::Canonicalize(pairs);
  const graph::Csr csr = graph::Csr::FromPairs(1 << 15, pairs);

  std::printf("Figure 9: group element ratio |G_k|/|E| per radix group\n");
  std::printf("%-10s", "dist");
  for (int k = 0; k < kGroups; ++k) {
    std::printf("  2^%-4d", k);
  }
  std::printf("\n");
  PrintRule(90);

  const struct {
    const char* name;
    graph::BiasDistribution distribution;
  } rows[] = {
      {"Uniform", graph::BiasDistribution::kUniform},
      {"Gauss", graph::BiasDistribution::kGauss},
      {"Power-law", graph::BiasDistribution::kPowerLaw},
  };
  for (const auto& row : rows) {
    const auto ratios = GroupRatios(csr, row.distribution, 11);
    std::printf("%-10s", row.name);
    for (double r : ratios) {
      std::printf("  %5.3f ", r);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected shape: Uniform ~0.5 everywhere; Gauss/Power-law decay in "
      "the high groups (paper Fig 9)\n");
  return 0;
}
