// Figure 16 reproduction: piecewise breakdown of Bingo vs the
// FlowWalker-like baseline.
//   (a) updating time: N streaming insertions (Bingo_I), N streaming
//       deletions (Bingo_D), and FlowWalker_R (graph-only updates — its
//       "reload" — for the same N+N operations);
//   (b) sampling time: M one-step samples on both systems.

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/bingo_store.h"
#include "src/graph/dynamic_graph.h"
#include "src/sampling/alias_table.h"
#include "src/util/thread_pool.h"
#include "src/walk/baseline_stores.h"

namespace {

// Sampling in the paper happens inside random walks, whose step
// distribution concentrates on high-degree vertices. Draw measurement
// vertices degree-weighted to reproduce that context (uniform draws land on
// the power-law tail of degree-1 vertices and hide every O(d) effect).
std::vector<bingo::graph::VertexId> DegreeWeightedStarts(
    const bingo::graph::DynamicGraph& g, std::size_t count, uint64_t seed) {
  std::vector<double> degrees(g.NumVertices());
  for (bingo::graph::VertexId v = 0; v < g.NumVertices(); ++v) {
    degrees[v] = static_cast<double>(g.Degree(v));
  }
  bingo::sampling::AliasTable table;
  table.Build(degrees);
  bingo::util::Rng rng(seed);
  std::vector<bingo::graph::VertexId> starts(count);
  for (auto& v : starts) {
    v = table.Sample(rng);
  }
  return starts;
}

}  // namespace

int main() {
  using namespace bingo;
  using namespace bingo::bench;

  TuneAllocator();

  util::ThreadPool pool;
  graph::BiasParams bias_params;
  const uint64_t ops = EnvInt("BINGO_BENCH_F16_OPS", 100'000);
  const uint64_t samples = EnvInt("BINGO_BENCH_F16_SAMPLES", 1'000'000);

  std::printf(
      "Figure 16: piecewise breakdown, %llu updates / %llu samples\n\n",
      static_cast<unsigned long long>(ops),
      static_cast<unsigned long long>(samples));
  std::printf("%-5s | %10s %10s %12s | %12s %14s %9s\n", "data", "Bingo_I(s)",
              "Bingo_D(s)", "FlowWalker_R", "Bingo_smp(s)", "FlowWalker_smp",
              "speedup");
  PrintRule(96);

  for (const auto& dataset : StandardDatasets()) {
    // One insertion-only stream and one deletion-only stream of `ops` each.
    const auto ins = PrepareWorkload(dataset, graph::UpdateKind::kInsertion,
                                     bias_params, 3, ops, 1);
    const auto del = PrepareWorkload(dataset, graph::UpdateKind::kDeletion,
                                     bias_params, 3, ops, 1);

    double bingo_insert_s = 0;
    double bingo_delete_s = 0;
    double bingo_sample_s = 0;
    {
      core::BingoStore store(
          graph::DynamicGraph::FromEdges(ins.num_vertices, ins.initial_edges),
          core::BingoConfig{}, &pool);
      bingo_insert_s =
          TimeSec([&] { store.ApplyUpdatesStreaming(ins.batches[0]); });
      // Deletions target the same edge universe: rebuild from the deletion
      // workload's initial state.
      core::BingoStore del_store(
          graph::DynamicGraph::FromEdges(del.num_vertices, del.initial_edges),
          core::BingoConfig{}, &pool);
      bingo_delete_s =
          TimeSec([&] { del_store.ApplyUpdatesStreaming(del.batches[0]); });

      util::Rng rng(9);
      const auto starts = DegreeWeightedStarts(store.Graph(), 4096, 9);
      bingo_sample_s = TimeSec([&] {
        uint64_t sink = 0;
        for (uint64_t s = 0; s < samples; ++s) {
          sink += store.SampleNeighbor(starts[s & 4095], rng);
        }
        if (sink == 42) {
          std::printf("!");  // defeat dead-code elimination
        }
      });
    }

    double flow_update_s = 0;
    double flow_sample_s = 0;
    {
      walk::ReservoirStore store(
          graph::DynamicGraph::FromEdges(ins.num_vertices, ins.initial_edges));
      flow_update_s = TimeSec([&] {
        store.ApplyBatch(ins.batches[0]);
        store.ApplyBatch(del.batches[0]);
      });
      util::Rng rng(9);
      const auto starts = DegreeWeightedStarts(store.Graph(), 4096, 9);
      flow_sample_s = TimeSec([&] {
        uint64_t sink = 0;
        for (uint64_t s = 0; s < samples; ++s) {
          sink += store.SampleNeighbor(starts[s & 4095], rng);
        }
        if (sink == 42) {
          std::printf("!");
        }
      });
    }

    std::printf("%-5s | %10.3f %10.3f %12.3f | %12.3f %14.3f %8.1fx\n",
                dataset.abbr, bingo_insert_s, bingo_delete_s, flow_update_s,
                bingo_sample_s, flow_sample_s,
                flow_sample_s / bingo_sample_s);
  }
  std::printf(
      "\nexpected shapes: FlowWalker updates cheapest (no structures); Bingo "
      "deletion <= insertion; Bingo sampling flat while FlowWalker's O(d) "
      "grows with average degree (paper: up to 218.7x on TW)\n");
  return 0;
}
