// bench_linkpred — end-to-end walk quality: temporal link prediction over
// the bias pipeline's walk variants (per "Comparing biased random walks in
// graph embedding", PAPERS.md), embedding-free.
//
// Protocol: edges of an R-MAT stand-in are stamped with logical epochs
// 0..9; the newest band (epochs 8-9) is held out as test positives and the
// rest becomes the train graph. Each variant grows a walk corpus over the
// train store (one walk per vertex), the corpus induces a co-occurrence
// neighborhood per vertex (vertices seen within --window hops of each
// other), and a candidate pair (u, v) is scored by common walk-neighbors
// |N(u) ∩ N(v)|. AUC ranks held-out positives against same-source random
// non-edges.
//
// Variants:
//   static    DeepWalk on the train store, decay off — the baseline.
//   decayed   the same store built with --decay, clock advanced to the
//             first test epoch via an ordinary AdvanceTime batch, so walks
//             are recency-weighted exactly as a serving deployment's.
//   metapath  typed walks (pattern 0,1 = two-mode bipartite) on the
//             untouched train store.
//
// --json OUT.json dumps one flat object (BENCH_linkpred in the perf
// trajectory). Environment knobs: BINGO_BENCH_SCALE (bench/common.h),
// BINGO_BENCH_LP_PAIRS test positives cap (default 2000).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/common.h"
#include "src/core/bingo_store.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/walk/apps.h"

namespace bingo {
namespace {

using graph::VertexId;

constexpr uint32_t kNumEpochs = 10;   // timestamps 0..9
constexpr uint32_t kTestEpoch = 8;    // epochs 8-9 are held out

uint64_t PairKey(VertexId a, VertexId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Co-occurrence neighborhoods from a recorded walk corpus: v's neighborhood
// is every vertex that appeared within `window` hops of v in some walk.
std::vector<std::vector<VertexId>> WalkNeighborhoods(
    const walk::WalkResult& corpus, VertexId num_vertices,
    uint32_t window) {
  std::vector<std::vector<VertexId>> nb(num_vertices);
  const auto& offsets = corpus.path_offsets;
  for (std::size_t w = 0; w + 1 < offsets.size(); ++w) {
    const uint64_t begin = offsets[w];
    const uint64_t end = offsets[w + 1];
    for (uint64_t i = begin; i < end; ++i) {
      const VertexId a = corpus.paths[i];
      const uint64_t stop = std::min<uint64_t>(end, i + 1 + window);
      for (uint64_t j = i + 1; j < stop; ++j) {
        const VertexId b = corpus.paths[j];
        if (a == b) {
          continue;
        }
        nb[a].push_back(b);
        nb[b].push_back(a);
      }
    }
  }
  for (auto& list : nb) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return nb;
}

uint32_t CommonNeighbors(const std::vector<VertexId>& a,
                         const std::vector<VertexId>& b) {
  uint32_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

// Rank-based AUC with the standard tie correction: the probability a random
// positive outscores a random negative (+ half for ties).
double Auc(const std::vector<uint32_t>& pos, const std::vector<uint32_t>& neg) {
  if (pos.empty() || neg.empty()) {
    return 0.5;
  }
  std::vector<uint32_t> sorted_neg = neg;
  std::sort(sorted_neg.begin(), sorted_neg.end());
  double wins = 0.0;
  for (const uint32_t p : pos) {
    const auto lo = std::lower_bound(sorted_neg.begin(), sorted_neg.end(), p);
    const auto hi = std::upper_bound(lo, sorted_neg.end(), p);
    wins += static_cast<double>(lo - sorted_neg.begin()) +
            0.5 * static_cast<double>(hi - lo);
  }
  return wins / (static_cast<double>(pos.size()) *
                 static_cast<double>(sorted_neg.size()));
}

struct VariantResult {
  std::string name;
  double auc = 0.5;
  double walk_seconds = 0.0;
  uint64_t corpus_steps = 0;
};

int Run(int argc, char** argv) {
  bench::TuneAllocator();
  std::string json_path;
  int threads = 4;
  uint32_t length = 40;
  uint32_t window = 5;
  double decay = 0.8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--length") == 0 && i + 1 < argc) {
      length = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--decay") == 0 && i + 1 < argc) {
      decay = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_linkpred [--threads N] [--length L] "
                   "[--window W] [--decay D] [--json OUT.json]\n");
      return 2;
    }
  }
  const auto max_pairs =
      static_cast<std::size_t>(bench::EnvInt("BINGO_BENCH_LP_PAIRS", 2000));

  // --- dataset: timestamped stand-in, newest band held out ----------------
  const bench::Dataset dataset = bench::StandardDatasets()[0];  // AM stand-in
  util::Rng rng(4242);
  auto pairs = graph::GenerateRmat(dataset.rmat_scale, dataset.num_edges, rng);
  graph::Canonicalize(pairs);
  const VertexId n = VertexId{1} << dataset.rmat_scale;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  const auto biases = graph::GenerateBiases(csr, {}, rng);
  auto edges = graph::ToWeightedEdges(csr, biases);
  for (graph::WeightedEdge& e : edges) {
    e.timestamp = static_cast<uint32_t>(rng.NextBounded(kNumEpochs));
  }

  graph::WeightedEdgeList train;
  graph::WeightedEdgeList test;
  std::unordered_set<uint64_t> all_edges;
  all_edges.reserve(edges.size() * 2);
  for (const graph::WeightedEdge& e : edges) {
    all_edges.insert(PairKey(e.src, e.dst));
    all_edges.insert(PairKey(e.dst, e.src));
    (e.timestamp >= kTestEpoch ? test : train).push_back(e);
  }
  std::vector<uint32_t> train_degree(n, 0);
  for (const graph::WeightedEdge& e : train) {
    ++train_degree[e.src];
  }

  // Test positives: held-out newest edges whose endpoints both exist in the
  // train graph (a walk corpus cannot score an unseen vertex). Negatives:
  // same source, random non-edge destination.
  std::vector<std::pair<VertexId, VertexId>> positives;
  std::vector<std::pair<VertexId, VertexId>> negatives;
  for (const graph::WeightedEdge& e : test) {
    if (positives.size() >= max_pairs) {
      break;
    }
    if (train_degree[e.src] == 0 || train_degree[e.dst] == 0) {
      continue;
    }
    VertexId w = graph::kInvalidVertex;
    for (int trial = 0; trial < 64; ++trial) {
      const auto candidate = static_cast<VertexId>(rng.NextBounded(n));
      if (candidate != e.src && train_degree[candidate] > 0 &&
          all_edges.find(PairKey(e.src, candidate)) == all_edges.end()) {
        w = candidate;
        break;
      }
    }
    if (w == graph::kInvalidVertex) {
      continue;
    }
    positives.emplace_back(e.src, e.dst);
    negatives.emplace_back(e.src, w);
  }
  std::printf(
      "bench_linkpred: %s stand-in, %u vertices, %zu train / %zu test "
      "edges, %zu candidate pairs\n",
      dataset.abbr, n, train.size(), test.size(), positives.size());
  if (positives.size() < 32) {
    std::fprintf(stderr, "test split too small to rank\n");
    return 1;
  }

  util::PoolOptions pool_options;
  pool_options.num_threads = threads;
  util::ThreadPool pool(pool_options);

  walk::WalkConfig cfg;
  cfg.num_walkers = n;  // one walk per vertex: full corpus coverage
  cfg.walk_length = length;
  cfg.record_paths = true;

  const auto evaluate = [&](const walk::WalkResult& corpus) {
    const auto nb = WalkNeighborhoods(corpus, n, window);
    std::vector<uint32_t> pos_scores;
    std::vector<uint32_t> neg_scores;
    pos_scores.reserve(positives.size());
    neg_scores.reserve(negatives.size());
    for (const auto& [u, v] : positives) {
      pos_scores.push_back(CommonNeighbors(nb[u], nb[v]));
    }
    for (const auto& [u, v] : negatives) {
      neg_scores.push_back(CommonNeighbors(nb[u], nb[v]));
    }
    return Auc(pos_scores, neg_scores);
  };

  std::vector<VariantResult> results;

  {  // static: plain DeepWalk over the train structure
    const core::BingoStore store(graph::DynamicGraph::FromEdges(n, train));
    VariantResult r{"static"};
    r.walk_seconds = bench::TimeSec([&] {
      const auto corpus = walk::RunDeepWalk(store, cfg, &pool);
      r.corpus_steps = corpus.total_steps;
      r.auc = evaluate(corpus);
    });
    results.push_back(r);
  }
  {  // decayed: recency-weighted biases at the first test epoch
    core::BingoConfig config;
    config.pipeline.decay = decay;
    core::BingoStore store(graph::DynamicGraph::FromEdges(n, train), config);
    store.ApplyBatch({graph::MakeAdvanceTime(kTestEpoch)}, &pool);
    VariantResult r{"decayed"};
    r.walk_seconds = bench::TimeSec([&] {
      const auto corpus = walk::RunDeepWalk(store, cfg, &pool);
      r.corpus_steps = corpus.total_steps;
      r.auc = evaluate(corpus);
    });
    results.push_back(r);
  }
  {  // metapath: two-mode bipartite walks over the same train structure
    const core::BingoStore store(graph::DynamicGraph::FromEdges(n, train));
    VariantResult r{"metapath"};
    r.walk_seconds = bench::TimeSec([&] {
      const auto corpus = walk::RunMetapath(store, cfg, {}, &pool);
      r.corpus_steps = corpus.total_steps;
      r.auc = evaluate(corpus);
    });
    results.push_back(r);
  }

  bench::PrintRule(72);
  std::printf("%-10s %8s %12s %14s\n", "variant", "auc", "walk_sec",
              "corpus_steps");
  bench::PrintRule(72);
  for (const VariantResult& r : results) {
    std::printf("%-10s %8.4f %12.3f %14llu\n", r.name.c_str(), r.auc,
                r.walk_seconds, static_cast<unsigned long long>(r.corpus_steps));
  }

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\"bench\":\"linkpred\",\"dataset\":\"" << dataset.abbr
         << "\",\"vertices\":" << n << ",\"train_edges\":" << train.size()
         << ",\"test_edges\":" << test.size()
         << ",\"pairs\":" << positives.size() << ",\"threads\":" << threads
         << ",\"walk_length\":" << length << ",\"window\":" << window
         << ",\"decay\":" << decay << ",\"epoch\":" << kTestEpoch
         << ",\"variants\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const VariantResult& r = results[i];
      json << (i == 0 ? "" : ",") << "{\"variant\":\"" << r.name
           << "\",\"auc\":" << r.auc << ",\"walk_seconds\":" << r.walk_seconds
           << ",\"corpus_steps\":" << r.corpus_steps << "}";
    }
    json << "]}";
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "%s\n", json.str().c_str());
    std::fclose(out);
    std::printf("json:    %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bingo

int main(int argc, char** argv) { return bingo::Run(argc, argv); }
