// Shared benchmark infrastructure: dataset stand-ins (substitution S2),
// workload preparation (§6.1 protocol), environment knobs, and table
// printing helpers.
//
// Environment knobs (all optional):
//   BINGO_BENCH_SCALE   scales edge counts and the R-MAT vertex scale
//                       (1 = default laptop-sized stand-ins; 2 doubles
//                       edges and adds one vertex-scale step)
//   BINGO_BENCH_ROUNDS  update/walk rounds per cell (paper: 10; default 3)
//   BINGO_BENCH_BATCH   updates per round (paper: 100000; default 10000)
//   BINGO_BENCH_WDIV    walkers = vertices / WDIV (paper: 1; default 10)

#ifndef BINGO_BENCH_COMMON_H_
#define BINGO_BENCH_COMMON_H_

#include <malloc.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/graph/bias.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace bingo::bench {

struct Dataset {
  const char* abbr;   // the paper's dataset this stands in for
  int rmat_scale;     // vertices = 2^rmat_scale
  uint64_t num_edges; // directed edges before canonicalization
};

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atoll(value);
}

// glibc's per-thread malloc arenas interact badly with this benchmark
// pattern (structures built on one thread, mutated from pool workers): every
// cross-thread realloc faults fresh arena pages. A single arena measured
// uniformly faster here at 2 cores; call this first in every bench main.
inline void TuneAllocator() {
#ifdef M_ARENA_MAX
  mallopt(M_ARENA_MAX, 1);
#endif
}

inline int BenchRounds() { return static_cast<int>(EnvInt("BINGO_BENCH_ROUNDS", 3)); }
inline uint64_t BenchBatch() { return EnvInt("BINGO_BENCH_BATCH", 10000); }
inline uint64_t WalkerDiv() { return EnvInt("BINGO_BENCH_WDIV", 10); }

// The five paper graphs, scaled to this machine; see DESIGN.md §3. Relative
// ordering (vertex count, average degree) follows the paper's Table 2.
inline std::vector<Dataset> StandardDatasets() {
  const double scale = EnvDouble("BINGO_BENCH_SCALE", 1.0);
  const int extra = scale >= 2.0 ? 1 : 0;
  const auto e = [scale](uint64_t base) {
    return static_cast<uint64_t>(base * scale);
  };
  return {
      {"AM", 15 + extra, e(260'000)},    // Amazon: 403K vertices, avg 8.4
      {"GO", 16 + extra, e(380'000)},    // Google: 876K vertices, avg 5.8
      {"CT", 17 + extra, e(580'000)},    // Citation: 3.8M vertices, avg 4.4
      {"LJ", 17 + extra, e(1'870'000)},  // LiveJournal: 4.8M, avg 14.3
      {"TW", 18 + extra, e(4'200'000)},  // Twitter: 41.7M, avg 35.2
  };
}

struct PreparedWorkload {
  graph::VertexId num_vertices = 0;
  graph::WeightedEdgeList initial_edges;
  std::vector<graph::UpdateList> batches;  // one per round
};

// Generates the dataset stand-in and the §6.1 update stream for it.
inline PreparedWorkload PrepareWorkload(const Dataset& dataset,
                                        graph::UpdateKind kind,
                                        const graph::BiasParams& bias_params,
                                        uint64_t seed, uint64_t batch_size,
                                        int rounds) {
  util::Rng rng(seed);
  auto pairs = graph::GenerateRmat(dataset.rmat_scale, dataset.num_edges, rng);
  graph::Canonicalize(pairs);
  const graph::VertexId n = graph::VertexId{1} << dataset.rmat_scale;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  const auto biases = graph::GenerateBiases(csr, bias_params, rng);
  const auto edges = graph::ToWeightedEdges(csr, biases);

  graph::UpdateWorkloadParams params;
  params.kind = kind;
  params.batch_size = batch_size;
  params.num_batches = rounds;
  auto workload = graph::BuildUpdateWorkload(edges, params, rng);

  PreparedWorkload prepared;
  prepared.num_vertices = n;
  prepared.initial_edges = std::move(workload.initial_edges);
  prepared.batches = graph::SplitIntoBatches(workload.updates, batch_size);
  return prepared;
}

template <typename Fn>
double TimeSec(Fn&& fn) {
  util::Timer timer;
  fn();
  return timer.Seconds();
}

inline double ToMiB(std::size_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

inline void PrintRule(int width = 110) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

}  // namespace bingo::bench

#endif  // BINGO_BENCH_COMMON_H_
