// Out-of-core engine benchmark (PR 10): throughput under a shrinking
// memory budget, and the streamed-recovery RSS headline.
//
// Section 1 — budget sweep. One DeepWalk corpus workload over the tiered
// store at budgets {unconstrained, 1/2, 1/4, 1/8 of the graph's edge
// bytes}. Every budgeted run's output is checksummed against the
// unconstrained reference: the OOC contract is bit-identity at ANY budget,
// so a checksum mismatch fails the benchmark (exit 1), it is not a data
// point. The interesting numbers are the throughput retention and the
// block reload traffic as the budget shrinks.
//
// Section 2 — recovery comparison. The same durability directory (written
// by the in-memory service's AttachWal/Checkpoint) is recovered twice, each
// in a FRESH child process so getrusage(ru_maxrss) measures that recovery
// alone:
//   full      RecoverWalkService — materializes the snapshot edge list and
//             rebuilds the radix store in RAM (peak O(E));
//   streamed  RecoverOocWalkService — streams the snapshot record-by-record
//             into the on-disk CSR container and mounts it under a budget
//             (peak O(index + budget)).
// The children are separate execs (not forks) because a forked child
// inherits the parent's resident-set high-water mark, which would mask the
// streamed path's savings.
//
// Flags: --threads N (walk pool size), --json OUT.json. Environment knobs:
// BINGO_BENCH_SCALE / ROUNDS / BATCH (bench/common.h), BINGO_BENCH_OOC_BLOCK
// (CSR block bytes, default 256 KiB — small enough that the sweep's
// fractional budgets hold several blocks even at laptop scale).

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/util/resource.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/walk/ooc.h"
#include "src/walk/ooc_service.h"
#include "src/walk/ooc_store.h"
#include "src/walk/service.h"

namespace bingo {
namespace {

struct SweepRow {
  uint64_t budget_bytes;  // 0 = unconstrained
  double fraction;        // of edge bytes (1.0 for unconstrained)
  double msteps_per_sec;
  uint64_t block_loads;
  uint64_t walker_parks;
  std::size_t peak_resident_bytes;
  bool bit_identical;
};

struct RecoveryRow {
  bool ok = false;
  double ms = 0.0;
  uint64_t peak_rss_bytes = 0;
};

// Output fingerprint of a walk: FNV-1a over paths, offsets, visit counts,
// and the step total. Two bit-identical results agree; anything else is a
// determinism bug, not noise.
uint64_t Fingerprint(const walk::WalkResult& result) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(result.total_steps);
  mix(result.finished_walkers);
  for (const graph::VertexId v : result.paths) mix(v);
  for (const uint64_t o : result.path_offsets) mix(o);
  for (const uint32_t c : result.visit_counts) mix(c);
  return h;
}

// Peak RSS of THIS exec image. getrusage's ru_maxrss folds the forked
// parent's high-water mark into signal accounting across execve, so a
// child that uses LESS memory than its parent reads back the parent's
// peak; /proc/self/status VmHWM is per-mm and a fresh exec resets it.
uint64_t ExecPeakRssBytes() {
  std::FILE* in = std::fopen("/proc/self/status", "r");
  if (in == nullptr) {
    return util::PeakRssBytes();
  }
  char line[256];
  uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), in) != nullptr) {
    if (std::sscanf(line, "VmHWM: %" SCNu64, &kib) == 1) {
      break;
    }
  }
  std::fclose(in);
  return kib != 0 ? kib * 1024 : static_cast<uint64_t>(util::PeakRssBytes());
}

// Child mode: recover `dir` via the requested path, then report this
// process's own wall time and RSS high-water to `out_path` as
// "ok ms peak_rss_bytes". Runs in a fresh exec so VmHWM covers exactly
// one recovery.
int RunRecoverChild(const std::string& mode, const std::string& dir,
                    uint64_t budget_bytes, const std::string& out_path) {
  util::ThreadPool pool;
  util::Timer timer;
  bool ok = false;
  if (mode == "full") {
    walk::RecoveryReport report;
    auto service = walk::RecoverWalkService(dir, {}, 0, &pool, &pool, {},
                                            &report);
    ok = service != nullptr && report.ok &&
         service->CheckInvariants().empty();
  } else {
    walk::OocServiceOptions options;
    options.store.memory_budget_bytes = budget_bytes;
    walk::RecoveryReport report;
    std::string error;
    auto service = walk::RecoverOocWalkService(dir, {}, options, &pool, &pool,
                                               &report, &error);
    ok = service != nullptr && report.ok &&
         service->CheckInvariants().empty();
    if (!ok && !error.empty()) {
      std::fprintf(stderr, "streamed recovery failed: %s\n", error.c_str());
    }
  }
  const double ms = timer.Seconds() * 1e3;
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    return 1;
  }
  std::fprintf(out, "%d %.3f %" PRIu64 "\n", ok ? 1 : 0, ms,
               ExecPeakRssBytes());
  std::fclose(out);
  return ok ? 0 : 1;
}

// Execs this binary in child mode and parses its report file.
RecoveryRow SpawnRecovery(const std::string& mode, const std::string& dir,
                          uint64_t budget_bytes, const std::string& out_path) {
  RecoveryRow row;
  const std::string budget = std::to_string(budget_bytes);
  const pid_t pid = fork();
  if (pid < 0) {
    return row;
  }
  if (pid == 0) {
    execl("/proc/self/exe", "bench_ooc", "--recover-child", mode.c_str(),
          dir.c_str(), budget.c_str(), out_path.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return row;
  }
  std::FILE* in = std::fopen(out_path.c_str(), "r");
  if (in == nullptr) {
    return row;
  }
  int ok = 0;
  double ms = 0.0;
  uint64_t rss = 0;
  if (std::fscanf(in, "%d %lf %" SCNu64, &ok, &ms, &rss) == 3) {
    row.ok = ok != 0;
    row.ms = ms;
    row.peak_rss_bytes = rss;
  }
  std::fclose(in);
  std::remove(out_path.c_str());
  return row;
}

}  // namespace
}  // namespace bingo

int main(int argc, char** argv) {
  using namespace bingo;
  bench::TuneAllocator();

  if (argc == 6 && std::strcmp(argv[1], "--recover-child") == 0) {
    return RunRecoverChild(argv[2], argv[3],
                           std::strtoull(argv[4], nullptr, 10), argv[5]);
  }

  std::string json_path;
  util::PoolOptions pool_options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      pool_options.num_threads =
          static_cast<std::size_t>(std::max(0, std::atoi(argv[++i])));
    } else {
      std::fprintf(stderr,
                   "usage: bench_ooc [--threads N] [--json OUT.json]\n");
      return 2;
    }
  }

  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "bingo_bench_ooc").string();
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);

  // One mid-sized stand-in; the sweep's shape (retention vs budget) is what
  // matters, not the absolute scale.
  const bench::Dataset dataset = bench::StandardDatasets()[1];  // GO
  const auto workload =
      bench::PrepareWorkload(dataset, graph::UpdateKind::kMixed, {}, 42,
                             bench::BenchBatch(), bench::BenchRounds());
  const uint64_t edge_bytes =
      workload.initial_edges.size() * sizeof(graph::Edge);
  const uint64_t block_bytes = static_cast<uint64_t>(
      bench::EnvInt("BINGO_BENCH_OOC_BLOCK", 256 * 1024));

  util::ThreadPool pool(pool_options);
  const std::string csr_path = work_dir + "/base.csr";
  std::string error;
  if (!graph::WriteCsrFile(csr_path, workload.num_vertices,
                           workload.initial_edges, block_bytes, &error)) {
    std::fprintf(stderr, "csr write failed: %s\n", error.c_str());
    return 1;
  }

  std::printf(
      "bench_ooc: %s stand-in, %u vertices, %zu edges (%.1f MiB of edge "
      "payload), %" PRIu64 " KiB csr blocks, %zu walk threads\n\n",
      dataset.abbr, workload.num_vertices, workload.initial_edges.size(),
      bench::ToMiB(edge_bytes), block_bytes / 1024, pool.NumThreads());

  // ---- Section 1: budget sweep -------------------------------------------
  walk::WalkConfig cfg;
  cfg.walk_length = 40;
  cfg.record_paths = true;

  const std::vector<double> fractions = {1.0, 0.5, 0.25, 0.125};
  std::vector<SweepRow> sweep;
  uint64_t reference = 0;
  bool all_identical = true;
  std::printf("%-14s %10s %12s %12s %12s %14s %6s\n", "budget", "frac",
              "Msteps/s", "blk loads", "parks", "resident MiB", "ident");
  for (const double frac : fractions) {
    const uint64_t budget =
        frac >= 1.0 ? 0 : static_cast<uint64_t>(edge_bytes * frac);
    walk::TieredStoreOptions options;
    options.memory_budget_bytes = budget;
    auto store = walk::TieredStore::Open(csr_path, {}, options, &pool, &error);
    if (store == nullptr) {
      std::fprintf(stderr, "tiered open failed: %s\n", error.c_str());
      return 1;
    }
    walk::RunOocDeepWalk(*store, cfg, &pool);  // warm the cache + scratch
    double best = 1e30;
    walk::OocWalkResult result;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer timer;
      result = walk::RunOocDeepWalk(*store, cfg, &pool);
      best = std::min(best, timer.Seconds());
      if (!result.error.empty()) {
        std::fprintf(stderr, "ooc walk failed: %s\n", result.error.c_str());
        return 1;
      }
    }
    const uint64_t fp = Fingerprint(result);
    if (budget == 0) {
      reference = fp;
    }
    const bool identical = fp == reference;
    all_identical = all_identical && identical;
    sweep.push_back({budget, frac, result.total_steps / best / 1e6,
                     result.block_loads, result.walker_parks,
                     result.peak_resident_bytes, identical});
    char budget_text[32];
    if (budget == 0) {
      std::snprintf(budget_text, sizeof(budget_text), "unconstrained");
    } else {
      std::snprintf(budget_text, sizeof(budget_text), "%.1f MiB",
                    bench::ToMiB(budget));
    }
    std::printf("%-14s %10.3f %12.2f %12" PRIu64 " %12" PRIu64 " %14.2f %6s\n",
                budget_text, frac, sweep.back().msteps_per_sec,
                sweep.back().block_loads, sweep.back().walker_parks,
                bench::ToMiB(sweep.back().peak_resident_bytes),
                identical ? "yes" : "NO");
  }
  bench::PrintRule(86);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: budgeted output diverged from the unconstrained "
                 "reference (bit-identity contract broken)\n");
    return 1;
  }

  // ---- Section 2: recovery RSS comparison --------------------------------
  // Write the durability directory once (base snapshot + a journaled
  // suffix), then recover it in fresh child processes.
  {
    auto service = walk::MakeWalkService(workload.initial_edges,
                                         workload.num_vertices, {}, &pool,
                                         &pool);
    if (!service->AttachWal(work_dir).ok) {
      std::fprintf(stderr, "attach-wal failed\n");
      return 1;
    }
    for (const auto& batch : workload.batches) {
      service->ApplyBatch(batch);
    }
    if (!service->Checkpoint().ok) {
      std::fprintf(stderr, "checkpoint failed\n");
      return 1;
    }
  }
  const uint64_t recovery_budget = std::max<uint64_t>(edge_bytes / 4, 1);
  const RecoveryRow full =
      SpawnRecovery("full", work_dir, 0, work_dir + "/full.report");
  const RecoveryRow streamed = SpawnRecovery(
      "streamed", work_dir, recovery_budget, work_dir + "/streamed.report");
  std::printf("%-14s %12s %16s\n", "recovery", "ms", "peak rss MiB");
  std::printf("%-14s %12.1f %16.1f  %s\n", "full", full.ms,
              bench::ToMiB(full.peak_rss_bytes), full.ok ? "" : "FAILED");
  std::printf("%-14s %12.1f %16.1f  %s(budget %.1f MiB)\n", "streamed",
              streamed.ms, bench::ToMiB(streamed.peak_rss_bytes),
              streamed.ok ? "" : "FAILED ", bench::ToMiB(recovery_budget));
  bench::PrintRule(86);
  if (!full.ok || !streamed.ok) {
    std::fprintf(stderr, "FAIL: a recovery path did not come back clean\n");
    return 1;
  }
  std::printf(
      "\nstreamed recovery peak rss is %.2fx the full materialization's\n",
      static_cast<double>(streamed.peak_rss_bytes) /
          std::max<uint64_t>(full.peak_rss_bytes, 1));

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\"bench\":\"ooc\",\"dataset\":\"" << dataset.abbr
         << "\",\"vertices\":" << workload.num_vertices
         << ",\"edges\":" << workload.initial_edges.size()
         << ",\"edge_bytes\":" << edge_bytes
         << ",\"csr_block_bytes\":" << block_bytes
         << ",\"threads\":" << pool.NumThreads() << ",\"budget_sweep\":[";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      json << (i > 0 ? "," : "") << "{\"budget_bytes\":" << sweep[i].budget_bytes
           << ",\"fraction\":" << sweep[i].fraction
           << ",\"msteps_per_sec\":" << sweep[i].msteps_per_sec
           << ",\"block_loads\":" << sweep[i].block_loads
           << ",\"walker_parks\":" << sweep[i].walker_parks
           << ",\"peak_resident_bytes\":" << sweep[i].peak_resident_bytes
           << ",\"bit_identical\":" << (sweep[i].bit_identical ? "true" : "false")
           << "}";
    }
    json << "],\"recovery\":{\"full\":{\"ms\":" << full.ms
         << ",\"peak_rss_bytes\":" << full.peak_rss_bytes
         << "},\"streamed\":{\"ms\":" << streamed.ms
         << ",\"peak_rss_bytes\":" << streamed.peak_rss_bytes
         << ",\"budget_bytes\":" << recovery_budget
         << "}},\"peak_rss_bytes\":" << util::PeakRssBytes() << "}\n";
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", json_path.c_str());
      return 1;
    }
    const std::string text = json.str();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    std::printf("json written to %s\n", json_path.c_str());
  }
  std::filesystem::remove_all(work_dir);
  return 0;
}
