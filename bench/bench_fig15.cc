// Figure 15 reproduction: varying evaluation configurations on the LJ
// stand-in.
//   (a) update batch size sweep, gSampler-like vs Bingo (fixed update total);
//   (b) walk length sweep, gSampler-like vs Bingo;
//   (c) bias distribution (Uniform / Gauss / Power-law): Bingo time+memory.

#include <cstdio>

#include "bench/common.h"
#include "src/core/bingo_store.h"
#include "src/graph/dynamic_graph.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/baseline_stores.h"

namespace bingo::bench {
namespace {

Dataset Lj() { return StandardDatasets()[3]; }

uint64_t Walkers(graph::VertexId n) {
  return std::max<uint64_t>(1, n / WalkerDiv());
}

}  // namespace
}  // namespace bingo::bench

int main() {
  using namespace bingo;
  using namespace bingo::bench;

  TuneAllocator();

  util::ThreadPool pool;
  graph::BiasParams bias_params;

  // ---------------------------------------------------- (a) batch size --
  // Fixed total of updates ingested in differently-sized batches. The paper
  // sweeps batches of 1%..10% of a 1M-update total against LiveJournal
  // (updates:edges = 1:68); the default here keeps that ratio against the
  // scaled LJ stand-in. Rebuild-per-batch baselines speed up with batch
  // size (fewer O(E) reloads); Bingo's cost tracks the fixed update total.
  const uint64_t total_updates = EnvInt("BINGO_BENCH_F15_TOTAL", 30'000);
  std::printf("Figure 15(a): batch size sweep, %llu mixed updates (LJ)\n",
              static_cast<unsigned long long>(total_updates));
  std::printf("%-12s %12s %12s\n", "batch", "gSampler (s)", "Bingo (s)");
  PrintRule(40);
  for (const uint64_t batch_pct : {1, 2, 5, 7, 10}) {
    const uint64_t batch = std::max<uint64_t>(1, total_updates * batch_pct / 100);
    const int rounds = static_cast<int>(total_updates / batch);
    const auto workload = PrepareWorkload(Lj(), graph::UpdateKind::kMixed,
                                          bias_params, 15, batch, rounds);
    double its_s = 0;
    {
      walk::ItsStore store(graph::DynamicGraph::FromEdges(
                               workload.num_vertices, workload.initial_edges),
                           &pool);
      its_s = TimeSec([&] {
        for (const auto& b : workload.batches) {
          store.ApplyBatchReload(b, &pool);
        }
      });
    }
    double bingo_s = 0;
    {
      core::BingoStore store(graph::DynamicGraph::FromEdges(
                                 workload.num_vertices, workload.initial_edges),
                             core::BingoConfig{}, &pool);
      bingo_s = TimeSec([&] {
        for (const auto& b : workload.batches) {
          store.ApplyBatch(b, &pool);
        }
      });
    }
    std::printf("%12llu %12.2f %12.2f\n",
                static_cast<unsigned long long>(batch), its_s, bingo_s);
  }

  // ---------------------------------------------------- (b) walk length --
  std::printf("\nFigure 15(b): walk length sweep (LJ, one %llu-update batch)\n",
              static_cast<unsigned long long>(BenchBatch()));
  std::printf("%-12s %12s %12s\n", "length", "gSampler (s)", "Bingo (s)");
  PrintRule(40);
  {
    const auto workload = PrepareWorkload(Lj(), graph::UpdateKind::kMixed,
                                          bias_params, 16, BenchBatch(), 1);
    for (const uint32_t length : {20, 40, 60, 80, 100}) {
      // Fresh stores per sweep point so every point measures the same
      // ingest + walk work (reusing one store would accumulate the batch).
      walk::ItsStore its(graph::DynamicGraph::FromEdges(workload.num_vertices,
                                                        workload.initial_edges),
                         &pool);
      core::BingoStore bingo(graph::DynamicGraph::FromEdges(
                                 workload.num_vertices, workload.initial_edges),
                             core::BingoConfig{}, &pool);
      walk::WalkConfig cfg;
      cfg.walk_length = length;
      cfg.num_walkers = Walkers(workload.num_vertices);
      const double its_s = TimeSec([&] {
        its.ApplyBatchReload(workload.batches[0], &pool);
        walk::RunDeepWalk(its, cfg, &pool);
      });
      const double bingo_s = TimeSec([&] {
        bingo.ApplyBatch(workload.batches[0], &pool);
        walk::RunDeepWalk(bingo, cfg, &pool);
      });
      std::printf("%-12u %12.2f %12.2f\n", length, its_s, bingo_s);
    }
  }

  // ----------------------------------------------- (c) bias distribution --
  std::printf("\nFigure 15(c): bias distributions (LJ, DeepWalk, mixed)\n");
  std::printf("%-12s %12s %12s\n", "dist", "time (s)", "memory MiB");
  PrintRule(40);
  const struct {
    const char* name;
    graph::BiasDistribution distribution;
  } rows[] = {
      {"Uniform", graph::BiasDistribution::kUniform},
      {"Gauss", graph::BiasDistribution::kGauss},
      {"Power-law", graph::BiasDistribution::kPowerLaw},
  };
  for (const auto& row : rows) {
    graph::BiasParams params;
    params.distribution = row.distribution;
    params.max_bias = 255;
    const auto workload = PrepareWorkload(Lj(), graph::UpdateKind::kMixed,
                                          params, 17, BenchBatch(), 1);
    core::BingoStore store(graph::DynamicGraph::FromEdges(
                               workload.num_vertices, workload.initial_edges),
                           core::BingoConfig{}, &pool);
    const double seconds = TimeSec([&] {
      store.ApplyBatch(workload.batches[0], &pool);
      walk::WalkConfig cfg;
      cfg.walk_length = 80;
      cfg.num_walkers = Walkers(workload.num_vertices);
      walk::RunDeepWalk(store, cfg, &pool);
    });
    std::printf("%-12s %12.2f %12.1f\n", row.name, seconds,
                ToMiB(store.MemoryBytes()));
  }
  std::printf(
      "\nexpected shapes: (a) both drop as batches grow, Bingo below "
      "gSampler; (b) gap widens with length; (c) Uniform cheapest (most "
      "dense groups)\n");
  return 0;
}
