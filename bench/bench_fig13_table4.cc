// Figure 13 + Table 4 reproduction.
//
// Fig 13: piecewise time of BS vs GA — the insert/delete step (graph +
// group mutation), the rebuild step (reclassification + inter-group alias
// reconstruction), and sampling (a DeepWalk pass) — per dataset, mixed
// updates.
//
// Table 4: group-kind conversion counts observed while ingesting the LJ
// stand-in's mixed stream (GA mode), as a ratio of all group classification
// checks — the paper reports every cell below 0.5%.

#include <array>
#include <cstdio>

#include "bench/common.h"
#include "src/core/bingo_store.h"
#include "src/core/vertex_sampler.h"
#include "src/graph/dynamic_graph.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/walk/apps.h"

namespace bingo::bench {
namespace {

// An instrumented streaming store built from the library's public per-vertex
// pieces, so that mutation and rebuild can be timed separately (BingoStore
// fuses them inside one call).
class InstrumentedStore {
 public:
  InstrumentedStore(graph::DynamicGraph graph, bool adaptive)
      : graph_(std::move(graph)) {
    config_.adaptive.adaptive = adaptive;
    config_.conversion_stats = &conversions_;
    samplers_.resize(graph_.NumVertices());
    for (graph::VertexId v = 0; v < graph_.NumVertices(); ++v) {
      samplers_[v].SetConfig(&config_);
      samplers_[v].Build(graph_.Neighbors(v));
    }
  }

  void Apply(const graph::UpdateList& updates) {
    for (const graph::Update& u : updates) {
      if (u.kind == graph::Update::Kind::kInsert) {
        {
          util::ScopedAccumulator scope(mutate_);
          const uint32_t idx = graph_.Insert(u.src, u.dst, u.bias);
          samplers_[u.src].InsertEdge(graph_.Neighbors(u.src), idx);
        }
        util::ScopedAccumulator scope(rebuild_);
        samplers_[u.src].FinishUpdate(graph_.Neighbors(u.src));
      } else {
        uint32_t idx = 0;
        {
          util::ScopedAccumulator scope(mutate_);
          const auto found = graph_.FindEarliest(u.src, u.dst);
          if (!found.has_value()) {
            continue;
          }
          idx = *found;
          samplers_[u.src].RemoveEdge(graph_.Neighbors(u.src), idx);
          const auto result = graph_.SwapRemove(u.src, idx);
          if (result.moved) {
            samplers_[u.src].RenameIndex(result.moved_edge.bias,
                                         result.moved_from, result.moved_to);
          }
        }
        util::ScopedAccumulator scope(rebuild_);
        samplers_[u.src].FinishUpdate(graph_.Neighbors(u.src));
      }
    }
  }

  // Store surface for the walk apps (walk::SamplingStore).
  const graph::DynamicGraph& Graph() const { return graph_; }
  graph::VertexId NumVertices() const { return graph_.NumVertices(); }
  graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const {
    const uint32_t idx = samplers_[v].SampleIndex(graph_.Neighbors(v), rng);
    return idx == core::VertexSampler::kNoNeighbor ? graph::kInvalidVertex
                                                   : graph_.NeighborAt(v, idx).dst;
  }

  double MutateSeconds() const { return mutate_.Seconds(); }
  double RebuildSeconds() const { return rebuild_.Seconds(); }
  const core::ConversionStats& Conversions() const { return conversions_; }

  std::array<uint64_t, 5> CountGroupKinds() const {
    std::array<uint64_t, 5> counts{};
    for (const auto& s : samplers_) {
      s.CountGroupKinds(counts);
    }
    return counts;
  }

 private:
  core::BingoConfig config_;
  core::ConversionStats conversions_;
  graph::DynamicGraph graph_;
  std::vector<core::VertexSampler> samplers_;
  util::TimeAccumulator mutate_;
  util::TimeAccumulator rebuild_;
};

}  // namespace
}  // namespace bingo::bench

int main() {
  using namespace bingo;
  using namespace bingo::bench;

  TuneAllocator();
  using core::GroupKind;

  util::ThreadPool pool;
  graph::BiasParams bias_params;
  const uint64_t batch = BenchBatch();
  const int rounds = BenchRounds();

  std::printf(
      "Figure 13: BS vs GA time breakdown (mixed updates + DeepWalk)\n\n");
  std::printf("%-5s %8s | %10s %10s %10s %9s | %10s %10s %10s %9s\n", "data",
              "", "BS:mut", "BS:rebuild", "BS:sample", "BS:total", "GA:mut",
              "GA:rebuild", "GA:sample", "GA:total");
  PrintRule(110);

  for (const auto& dataset : StandardDatasets()) {
    const auto workload = PrepareWorkload(dataset, graph::UpdateKind::kMixed,
                                          bias_params, 99, batch, rounds);
    double totals[2][3] = {};  // [bs/ga][mutate, rebuild, sample]
    for (const bool adaptive : {false, true}) {
      InstrumentedStore store(
          graph::DynamicGraph::FromEdges(workload.num_vertices,
                                         workload.initial_edges),
          adaptive);
      double sample_s = 0;
      for (const auto& b : workload.batches) {
        store.Apply(b);
        sample_s += TimeSec([&] {
          walk::WalkConfig cfg;
          cfg.walk_length = 80;
          cfg.num_walkers =
              std::max<uint64_t>(1, workload.num_vertices / WalkerDiv());
          walk::RunDeepWalk(store, cfg, &pool);
        });
      }
      totals[adaptive ? 1 : 0][0] = store.MutateSeconds();
      totals[adaptive ? 1 : 0][1] = store.RebuildSeconds();
      totals[adaptive ? 1 : 0][2] = sample_s;

      // Table 4 for the LJ stand-in in GA mode.
      if (adaptive && std::string(dataset.abbr) == "LJ") {
        std::printf("\nTable 4: group conversion counts (LJ stand-in, GA)\n");
        const auto kinds = store.CountGroupKinds();
        uint64_t total_groups = 0;
        for (uint64_t c : kinds) {
          total_groups += c;
        }
        const GroupKind order[] = {GroupKind::kDense, GroupKind::kRegular,
                                   GroupKind::kSparse, GroupKind::kOneElement};
        const char* names[] = {"Dense", "Regular", "Sparse", "One-elem"};
        std::printf("%-10s", "from\\to");
        for (const char* n : names) {
          std::printf(" %10s", n);
        }
        std::printf("\n");
        for (int i = 0; i < 4; ++i) {
          std::printf("%-10s", names[i]);
          for (int j = 0; j < 4; ++j) {
            if (i == j) {
              std::printf(" %10s", "-");
            } else {
              const double pct =
                  100.0 * static_cast<double>(
                              store.Conversions().Get(order[i], order[j])) /
                  static_cast<double>(total_groups);
              std::printf(" %9.3f%%", pct);
            }
          }
          std::printf("\n");
        }
        std::printf("\n");
      }
    }
    const auto sum = [](const double* t) { return t[0] + t[1] + t[2]; };
    std::printf("%-5s %8s | %10.3f %10.3f %10.3f %9.3f | %10.3f %10.3f %10.3f "
                "%9.3f\n",
                dataset.abbr, "", totals[0][0], totals[0][1], totals[0][2],
                sum(totals[0]), totals[1][0], totals[1][1], totals[1][2],
                sum(totals[1]));
  }
  std::printf(
      "\nexpected shape: GA total <= ~1.1x BS total (paper: GA is on average "
      "1.09x FASTER) with far less memory (Fig 11)\n");
  return 0;
}
