// Sharded-service scaling sweep: per-batch update latency vs. shard count.
//
// The unsharded WalkService pays 2x a whole-store ApplyBatch per update
// batch regardless of what the batch touches. The sharded service pays 2x
// the touched shards' slice batches, so on a shard-local workload (every
// update's source lands on one shard) the per-batch cost should FALL as
// the shard count grows: the touched shard holds ~1/N of the store, and
// untouched shards do no work at all. A uniform workload shows the other
// regime — every batch touches every shard, and cross-shard parallelism
// plus smaller per-shard rebuild sets carry the win instead.
//
// Two workloads per shard count {1, 2, 4, 8}:
//   local    every update's source maps to shard 0 (mod num_shards), the
//            single-shard-resident workload of the PR acceptance criterion;
//   uniform  the §6.1 mixed stream as-is, sources spread over all shards.
//
// Also reports p50/p99 submit-to-applied latency through the coalescing
// UpdateBatcher at the largest shard count, a walk-throughput sweep over
// executor thread counts {1..16} (the work-stealing executor acceptance
// curve), a walker-transfer superstep sweep (`--app
// deepwalk|node2vec|ppr`, default all three) reporting cross-shard walker
// migrations per step at each shard count, and a persistence section:
// per-checkpoint WAL bytes/latency with the update stream journaled, plus
// the cold recovery time (base load + WAL replay) after a simulated crash.
//
// Flags: --app APP restricts the superstep sweep; --threads N sizes the
// shared executor (default: hardware concurrency); --pin / --numa shape
// its placement; --json OUT.json additionally dumps every section
// machine-readably ({walk_throughput, p50, p99, migrations/step,
// recovery_ms}) so the repo's BENCH_*.json perf trajectory can accumulate.
//
// Environment knobs: BINGO_BENCH_SCALE / ROUNDS / BATCH (bench/common.h).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/bingo_store.h"
#include "src/util/resource.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/update_stream.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/walk/batcher.h"
#include "src/walk/partitioned.h"
#include "src/walk/sharded_service.h"

namespace bingo {
namespace {

struct SweepRow {
  int shards;
  double p50_ms;
  double p99_ms;
  double mean_ms;
  double max_ms;
};

struct WalkRow {
  int threads;
  bool pin;
  double msteps_per_sec;
};

struct SuperstepRow {
  std::string app;
  int shards;
  double msteps_per_sec;
  double migrations_per_step;
  uint64_t supersteps;
};

struct PersistenceRow {
  double base_mib = 0.0;
  double ckpt_kib_per_op = 0.0;
  double ckpt_ms_per_op = 0.0;
  double recovery_ms = 0.0;
  bool recovered_ok = false;
};

// Remaps update sources onto shard 0 of an N-shard service (the residues
// v % N == 0). The stream stays the same size, but as N grows it
// concentrates on the 1/N of the vertex population shard 0 owns, so each
// batch coalesces more updates per touched vertex — the store's one
// rebuild per touched vertex per batch (§5.2) then amortizes harder, and
// the other N-1 shards do no update work at all.
graph::UpdateList MakeShardLocal(const graph::UpdateList& updates,
                                 int num_shards) {
  graph::UpdateList local = updates;
  for (graph::Update& u : local) {
    u.src -= u.src % num_shards;  // nearest shard-0 resident below src
  }
  return local;
}

SweepRow RunSweepCell(const bench::PreparedWorkload& workload,
                      const graph::UpdateList& updates, int num_shards,
                      util::ThreadPool& pool) {
  auto service = walk::MakeShardedWalkService(
      workload.initial_edges, workload.num_vertices, num_shards, {}, &pool,
      &pool);
  walk::ShardedStressOptions options;
  options.query_threads = 0;  // pure update-latency measurement
  options.batch_size = bench::BenchBatch();
  const auto report =
      walk::RunShardedServiceStress(*service, updates, options);
  return {num_shards, report.UpdateSecondsQuantile(0.50) * 1e3,
          report.UpdateSecondsQuantile(0.99) * 1e3,
          report.MeanUpdateSeconds() * 1e3, report.MaxUpdateSeconds() * 1e3};
}

// Walk-throughput sweep over executor sizes: the same DeepWalk corpus
// workload (paths recorded — the allocation-heavy shape) at each thread
// count, on one shared store. This is the acceptance curve of the
// work-stealing executor: throughput at >= 8 threads, with chunk buffers
// leased from pooled scratch instead of allocated per call.
std::vector<WalkRow> RunWalkThroughputSweep(
    const bench::PreparedWorkload& workload,
    const std::vector<int>& thread_counts, bool pin, bool numa,
    util::ThreadPool& build_pool) {
  const core::BingoStore store(
      graph::DynamicGraph::FromEdges(workload.num_vertices,
                                     workload.initial_edges),
      {}, &build_pool);
  std::vector<WalkRow> rows;
  std::printf("%-10s %8s %12s %12s\n", "walk", "threads", "Msteps/s",
              "steps");
  for (const int threads : thread_counts) {
    util::PoolOptions options;
    options.num_threads = static_cast<std::size_t>(threads);
    options.pin_threads = pin;
    options.numa_interleave = numa;
    util::ThreadPool pool(options);
    walk::WalkConfig cfg;
    cfg.walk_length = 40;
    cfg.record_paths = true;
    walk::RunDeepWalk(store, cfg, &pool);  // warm the scratch pool
    double best = 1e30;
    uint64_t steps = 0;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer timer;
      const walk::WalkResult result = walk::RunDeepWalk(store, cfg, &pool);
      best = std::min(best, timer.Seconds());
      steps = result.total_steps;
    }
    rows.push_back({threads, pin, steps / best / 1e6});
    std::printf("%-10s %8d %12.2f %12llu\n", "", threads,
                rows.back().msteps_per_sec,
                static_cast<unsigned long long>(steps));
  }
  bench::PrintRule(70);
  return rows;
}

// Walker-transfer superstep sweep: run the chosen app through
// RunPartitionedWalks at each shard count and report the communication the
// multi-device design would pay — cross-shard walker migrations per step.
std::vector<SuperstepRow> RunSuperstepSweep(
    const bench::PreparedWorkload& workload, const std::string& app,
    const std::vector<int>& shard_counts, util::ThreadPool& pool) {
  std::vector<SuperstepRow> rows;
  std::printf("%-10s %8s %12s %12s %12s %12s\n", app.c_str(), "shards",
              "steps", "Msteps/s", "migr/step", "supersteps");
  for (const int shards : shard_counts) {
    walk::PartitionedBingoStore store(workload.initial_edges,
                                      workload.num_vertices, shards, {},
                                      &pool);
    walk::WalkConfig cfg;
    cfg.walk_length = 40;
    util::Timer timer;
    walk::PartitionedWalkResult result;
    if (app == "node2vec") {
      result = walk::RunPartitionedNode2vec(store, cfg, {}, &pool);
    } else if (app == "ppr") {
      result = walk::RunPartitionedPpr(store, cfg, 1.0 / cfg.walk_length,
                                       &pool);
    } else {
      result = walk::RunPartitionedDeepWalk(store, cfg, &pool);
    }
    const double seconds = timer.Seconds();
    rows.push_back({app, shards, result.total_steps / seconds / 1e6,
                    result.total_steps == 0
                        ? 0.0
                        : static_cast<double>(result.walker_migrations) /
                              static_cast<double>(result.total_steps),
                    result.supersteps});
    std::printf("%-10s %8d %12llu %12.2f %12.3f %12llu\n", "", shards,
                static_cast<unsigned long long>(result.total_steps),
                rows.back().msteps_per_sec, rows.back().migrations_per_step,
                static_cast<unsigned long long>(result.supersteps));
  }
  bench::PrintRule(70);
  return rows;
}

void PrintRows(const char* workload_name, const std::vector<SweepRow>& rows) {
  std::printf("%-10s %8s %12s %12s %12s %12s\n", workload_name, "shards",
              "p50 (ms)", "p99 (ms)", "mean (ms)", "max (ms)");
  for (const SweepRow& row : rows) {
    std::printf("%-10s %8d %12.3f %12.3f %12.3f %12.3f\n", "", row.shards,
                row.p50_ms, row.p99_ms, row.mean_ms, row.max_ms);
  }
  bench::PrintRule(70);
}

}  // namespace
}  // namespace bingo

int main(int argc, char** argv) {
  using namespace bingo;
  bench::TuneAllocator();

  // --app deepwalk|node2vec|ppr restricts the superstep sweep to one
  // application; by default it sweeps all three. --threads/--pin/--numa
  // shape the shared executor; --json OUT.json dumps every section.
  std::vector<std::string> superstep_apps = {"deepwalk", "node2vec", "ppr"};
  std::string json_path;
  util::PoolOptions pool_options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--app") == 0 && i + 1 < argc) {
      const std::string app = argv[++i];
      if (app != "deepwalk" && app != "node2vec" && app != "ppr") {
        std::fprintf(stderr, "unknown --app: %s\n", app.c_str());
        return 2;
      }
      superstep_apps = {app};
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      pool_options.num_threads =
          static_cast<std::size_t>(std::max(0, std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--pin") == 0) {
      pool_options.pin_threads = true;
    } else if (std::strcmp(argv[i], "--numa") == 0) {
      pool_options.numa_interleave = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_sharded_service [--app deepwalk|node2vec|ppr]"
                   " [--threads N] [--pin] [--numa] [--json OUT.json]\n");
      return 2;
    }
  }

  // One mid-sized stand-in is enough for the scaling curve.
  const bench::Dataset dataset = bench::StandardDatasets()[1];  // GO
  const int rounds = std::max(8, bench::BenchRounds() * 3);
  const auto workload =
      bench::PrepareWorkload(dataset, graph::UpdateKind::kMixed, {}, 42,
                             bench::BenchBatch(), rounds);
  graph::UpdateList stream;
  for (const auto& batch : workload.batches) {
    stream.insert(stream.end(), batch.begin(), batch.end());
  }
  util::ThreadPool pool(pool_options);

  std::printf(
      "bench_sharded_service: %s stand-in, %u vertices, %zu initial edges, "
      "%d batches x %llu updates\n"
      "executor: %zu workers, pin %s, numa %s\n\n",
      dataset.abbr, workload.num_vertices, workload.initial_edges.size(),
      rounds, static_cast<unsigned long long>(bench::BenchBatch()),
      pool.NumThreads(), pool_options.pin_threads ? "on" : "off",
      pool_options.numa_interleave ? "interleave" : "off");

  const std::vector<int> shard_counts = {1, 2, 4, 8};

  // Single-shard-resident workload: latency must fall with shard count.
  std::vector<SweepRow> local_rows;
  for (int shards : shard_counts) {
    const auto local = MakeShardLocal(stream, shards);
    local_rows.push_back(RunSweepCell(workload, local, shards, pool));
  }
  PrintRows("local", local_rows);

  std::vector<SweepRow> uniform_rows;
  for (int shards : shard_counts) {
    uniform_rows.push_back(RunSweepCell(workload, stream, shards, pool));
  }
  PrintRows("uniform", uniform_rows);

  // Batcher overhead at the largest shard count: single-edge submits,
  // coalesced per shard, flushed per window.
  SweepRow batcher_row{};
  {
    auto service = walk::MakeShardedWalkService(
        workload.initial_edges, workload.num_vertices, shard_counts.back(), {},
        &pool, &pool);
    walk::ShardedStressOptions options;
    options.query_threads = 0;
    options.batch_size = bench::BenchBatch();
    options.use_batcher = true;
    const auto report = walk::RunShardedServiceStress(*service, stream, options);
    batcher_row = {shard_counts.back(), report.UpdateSecondsQuantile(0.50) * 1e3,
                   report.UpdateSecondsQuantile(0.99) * 1e3,
                   report.MeanUpdateSeconds() * 1e3,
                   report.MaxUpdateSeconds() * 1e3};
    std::printf(
        "batcher    %8d %12.3f %12.3f %12.3f %12.3f  (submit-to-applied)\n",
        batcher_row.shards, batcher_row.p50_ms, batcher_row.p99_ms,
        batcher_row.mean_ms, batcher_row.max_ms);
  }

  // Walk throughput vs executor size: the shared-memory engine driving the
  // whole-graph store, chunk buffers leased from pooled scratch.
  std::printf("\n");
  const std::vector<int> thread_counts = {1, 2, 4, 8, 16};
  const std::vector<WalkRow> walk_rows = RunWalkThroughputSweep(
      workload, thread_counts, pool_options.pin_threads,
      pool_options.numa_interleave, pool);

  // Walker-transfer walk path: the same graph, walked by the superstep
  // driver at each shard count.
  std::vector<SuperstepRow> superstep_rows;
  for (const std::string& app : superstep_apps) {
    const auto rows = RunSuperstepSweep(workload, app, shard_counts, pool);
    superstep_rows.insert(superstep_rows.end(), rows.begin(), rows.end());
  }

  // Persistence: journal the whole stream through the WAL at the largest
  // shard count, checkpoint incrementally per batch window, then measure a
  // cold recovery (base load + WAL replay) — the crash-restart cost.
  PersistenceRow persistence;
  {
    const std::string wal_dir =
        (std::filesystem::temp_directory_path() / "bingo_bench_wal").string();
    std::filesystem::remove_all(wal_dir);
    auto service = walk::MakeShardedWalkService(
        workload.initial_edges, workload.num_vertices, shard_counts.back(), {},
        &pool, &pool);
    util::Timer base_timer;
    const walk::CheckpointResult base = service->AttachWal(wal_dir);
    const double base_seconds = base_timer.Seconds();
    uint64_t incremental_bytes = 0;
    double incremental_seconds = 0.0;
    uint64_t checkpoints = 0;
    for (const auto& batch : workload.batches) {
      service->ApplyBatch(batch, &pool);
      util::Timer ckpt_timer;
      const walk::CheckpointResult ckpt = service->Checkpoint();
      incremental_seconds += ckpt_timer.Seconds();
      incremental_bytes += ckpt.bytes_written;
      ++checkpoints;
    }
    service.reset();  // "crash"

    walk::RecoveryReport report;
    util::Timer recover_timer;
    auto recovered = walk::RecoverShardedWalkService(wal_dir, {}, 0, &pool,
                                                     &pool, {}, &report);
    const double recover_seconds = recover_timer.Seconds();
    persistence.base_mib = base.bytes_written / 1024.0 / 1024.0;
    persistence.ckpt_kib_per_op =
        incremental_bytes / 1024.0 / std::max<uint64_t>(checkpoints, 1);
    persistence.ckpt_ms_per_op =
        incremental_seconds * 1e3 / std::max<uint64_t>(checkpoints, 1);
    persistence.recovery_ms = recover_seconds * 1e3;
    persistence.recovered_ok =
        recovered != nullptr && recovered->CheckInvariants().empty();
    std::printf(
        "persistence  %8d %12s %12s %12s %12s\n", shard_counts.back(),
        "base MiB", "ckpt KiB/op", "ckpt ms/op", "recover ms");
    std::printf(
        "             %8s %12.2f %12.2f %12.3f %12.2f\n", "",
        persistence.base_mib, persistence.ckpt_kib_per_op,
        persistence.ckpt_ms_per_op, persistence.recovery_ms);
    std::printf(
        "             base write %.2fs; recovery replayed %llu wal records "
        "/ %llu updates over %llu base edges (%s)\n",
        base_seconds,
        static_cast<unsigned long long>(report.wal_records_replayed),
        static_cast<unsigned long long>(report.wal_updates_replayed),
        static_cast<unsigned long long>(report.base_edges),
        recovered != nullptr && recovered->CheckInvariants().empty()
            ? "invariants ok"
            : "RECOVERY FAILED");
    bench::PrintRule(70);
    std::filesystem::remove_all(wal_dir);
  }

  // The acceptance check in machine-readable form: mean local-workload
  // latency at the max shard count vs unsharded.
  const double speedup =
      local_rows.front().mean_ms / std::max(1e-9, local_rows.back().mean_ms);
  std::printf("\nlocal-workload mean latency: 1 shard %.3fms -> %d shards "
              "%.3fms (%.2fx)\n",
              local_rows.front().mean_ms, shard_counts.back(),
              local_rows.back().mean_ms, speedup);

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\"bench\":\"bench_sharded_service\",\"dataset\":\""
         << dataset.abbr << "\",\"vertices\":" << workload.num_vertices
         << ",\"initial_edges\":" << workload.initial_edges.size()
         << ",\"executor\":{\"threads\":" << pool.NumThreads() << ",\"pin\":"
         << (pool_options.pin_threads ? "true" : "false") << ",\"numa\":"
         << (pool_options.numa_interleave ? "true" : "false") << "}";
    const auto sweep_section = [&json](const char* name,
                                       const std::vector<SweepRow>& rows) {
      json << ",\"" << name << "\":[";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        json << (i > 0 ? "," : "") << "{\"shards\":" << rows[i].shards
             << ",\"p50_ms\":" << rows[i].p50_ms
             << ",\"p99_ms\":" << rows[i].p99_ms
             << ",\"mean_ms\":" << rows[i].mean_ms
             << ",\"max_ms\":" << rows[i].max_ms << "}";
      }
      json << "]";
    };
    sweep_section("local_update_latency", local_rows);
    sweep_section("uniform_update_latency", uniform_rows);
    sweep_section("batcher_submit_to_applied", {batcher_row});
    json << ",\"walk_throughput\":[";
    for (std::size_t i = 0; i < walk_rows.size(); ++i) {
      json << (i > 0 ? "," : "") << "{\"threads\":" << walk_rows[i].threads
           << ",\"pin\":" << (walk_rows[i].pin ? "true" : "false")
           << ",\"msteps_per_sec\":" << walk_rows[i].msteps_per_sec << "}";
    }
    json << "],\"superstep\":[";
    for (std::size_t i = 0; i < superstep_rows.size(); ++i) {
      json << (i > 0 ? "," : "") << "{\"app\":\"" << superstep_rows[i].app
           << "\",\"shards\":" << superstep_rows[i].shards
           << ",\"msteps_per_sec\":" << superstep_rows[i].msteps_per_sec
           << ",\"migrations_per_step\":"
           << superstep_rows[i].migrations_per_step
           << ",\"supersteps\":" << superstep_rows[i].supersteps << "}";
    }
    json << "],\"persistence\":{\"base_mib\":" << persistence.base_mib
         << ",\"ckpt_kib_per_op\":" << persistence.ckpt_kib_per_op
         << ",\"ckpt_ms_per_op\":" << persistence.ckpt_ms_per_op
         << ",\"recovery_ms\":" << persistence.recovery_ms
         << ",\"recovered_ok\":" << (persistence.recovered_ok ? "true" : "false")
         << "},\"local_mean_latency_speedup\":" << speedup
         << ",\"peak_rss_bytes\":" << util::PeakRssBytes() << "}\n";
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", json_path.c_str());
      return 1;
    }
    const std::string text = json.str();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
