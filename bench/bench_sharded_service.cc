// Sharded-service scaling sweep: per-batch update latency vs. shard count.
//
// The unsharded WalkService pays 2x a whole-store ApplyBatch per update
// batch regardless of what the batch touches. The sharded service pays 2x
// the touched shards' slice batches, so on a shard-local workload (every
// update's source lands on one shard) the per-batch cost should FALL as
// the shard count grows: the touched shard holds ~1/N of the store, and
// untouched shards do no work at all. A uniform workload shows the other
// regime — every batch touches every shard, and cross-shard parallelism
// plus smaller per-shard rebuild sets carry the win instead.
//
// Two workloads per shard count {1, 2, 4, 8}:
//   local    every update's source maps to shard 0 (mod num_shards), the
//            single-shard-resident workload of the PR acceptance criterion;
//   uniform  the §6.1 mixed stream as-is, sources spread over all shards.
//
// Also reports p50/p99 submit-to-applied latency through the coalescing
// UpdateBatcher at the largest shard count.
//
// Environment knobs: BINGO_BENCH_SCALE / ROUNDS / BATCH (bench/common.h).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/graph/update_stream.h"
#include "src/util/thread_pool.h"
#include "src/walk/batcher.h"
#include "src/walk/sharded_service.h"

namespace bingo {
namespace {

struct SweepRow {
  int shards;
  double p50_ms;
  double p99_ms;
  double mean_ms;
  double max_ms;
};

// Remaps update sources onto shard 0 of an N-shard service (the residues
// v % N == 0). The stream stays the same size, but as N grows it
// concentrates on the 1/N of the vertex population shard 0 owns, so each
// batch coalesces more updates per touched vertex — the store's one
// rebuild per touched vertex per batch (§5.2) then amortizes harder, and
// the other N-1 shards do no update work at all.
graph::UpdateList MakeShardLocal(const graph::UpdateList& updates,
                                 int num_shards) {
  graph::UpdateList local = updates;
  for (graph::Update& u : local) {
    u.src -= u.src % num_shards;  // nearest shard-0 resident below src
  }
  return local;
}

SweepRow RunSweepCell(const bench::PreparedWorkload& workload,
                      const graph::UpdateList& updates, int num_shards,
                      util::ThreadPool& pool) {
  auto service = walk::MakeShardedWalkService(
      workload.initial_edges, workload.num_vertices, num_shards, {}, &pool,
      &pool);
  walk::ShardedStressOptions options;
  options.query_threads = 0;  // pure update-latency measurement
  options.batch_size = bench::BenchBatch();
  const auto report =
      walk::RunShardedServiceStress(*service, updates, options);
  return {num_shards, report.UpdateSecondsQuantile(0.50) * 1e3,
          report.UpdateSecondsQuantile(0.99) * 1e3,
          report.MeanUpdateSeconds() * 1e3, report.MaxUpdateSeconds() * 1e3};
}

void PrintRows(const char* workload_name, const std::vector<SweepRow>& rows) {
  std::printf("%-10s %8s %12s %12s %12s %12s\n", workload_name, "shards",
              "p50 (ms)", "p99 (ms)", "mean (ms)", "max (ms)");
  for (const SweepRow& row : rows) {
    std::printf("%-10s %8d %12.3f %12.3f %12.3f %12.3f\n", "", row.shards,
                row.p50_ms, row.p99_ms, row.mean_ms, row.max_ms);
  }
  bench::PrintRule(70);
}

}  // namespace
}  // namespace bingo

int main() {
  using namespace bingo;
  bench::TuneAllocator();

  // One mid-sized stand-in is enough for the scaling curve.
  const bench::Dataset dataset = bench::StandardDatasets()[1];  // GO
  const int rounds = std::max(8, bench::BenchRounds() * 3);
  const auto workload =
      bench::PrepareWorkload(dataset, graph::UpdateKind::kMixed, {}, 42,
                             bench::BenchBatch(), rounds);
  graph::UpdateList stream;
  for (const auto& batch : workload.batches) {
    stream.insert(stream.end(), batch.begin(), batch.end());
  }
  util::ThreadPool pool;

  std::printf(
      "bench_sharded_service: %s stand-in, %u vertices, %zu initial edges, "
      "%d batches x %llu updates\n\n",
      dataset.abbr, workload.num_vertices, workload.initial_edges.size(),
      rounds, static_cast<unsigned long long>(bench::BenchBatch()));

  const std::vector<int> shard_counts = {1, 2, 4, 8};

  // Single-shard-resident workload: latency must fall with shard count.
  std::vector<SweepRow> local_rows;
  for (int shards : shard_counts) {
    const auto local = MakeShardLocal(stream, shards);
    local_rows.push_back(RunSweepCell(workload, local, shards, pool));
  }
  PrintRows("local", local_rows);

  std::vector<SweepRow> uniform_rows;
  for (int shards : shard_counts) {
    uniform_rows.push_back(RunSweepCell(workload, stream, shards, pool));
  }
  PrintRows("uniform", uniform_rows);

  // Batcher overhead at the largest shard count: single-edge submits,
  // coalesced per shard, flushed per window.
  {
    auto service = walk::MakeShardedWalkService(
        workload.initial_edges, workload.num_vertices, shard_counts.back(), {},
        &pool, &pool);
    walk::ShardedStressOptions options;
    options.query_threads = 0;
    options.batch_size = bench::BenchBatch();
    options.use_batcher = true;
    const auto report = walk::RunShardedServiceStress(*service, stream, options);
    std::printf(
        "batcher    %8d %12.3f %12.3f %12.3f %12.3f  (submit-to-applied)\n",
        shard_counts.back(), report.UpdateSecondsQuantile(0.50) * 1e3,
        report.UpdateSecondsQuantile(0.99) * 1e3,
        report.MeanUpdateSeconds() * 1e3, report.MaxUpdateSeconds() * 1e3);
  }

  // The acceptance check in machine-readable form: mean local-workload
  // latency at the max shard count vs unsharded.
  const double speedup =
      local_rows.front().mean_ms / std::max(1e-9, local_rows.back().mean_ms);
  std::printf("\nlocal-workload mean latency: 1 shard %.3fms -> %d shards "
              "%.3fms (%.2fx)\n",
              local_rows.front().mean_ms, shard_counts.back(),
              local_rows.back().mean_ms, speedup);
  return 0;
}
