// Sharded-service scaling sweep: per-batch update latency vs. shard count.
//
// The unsharded WalkService pays 2x a whole-store ApplyBatch per update
// batch regardless of what the batch touches. The sharded service pays 2x
// the touched shards' slice batches, so on a shard-local workload (every
// update's source lands on one shard) the per-batch cost should FALL as
// the shard count grows: the touched shard holds ~1/N of the store, and
// untouched shards do no work at all. A uniform workload shows the other
// regime — every batch touches every shard, and cross-shard parallelism
// plus smaller per-shard rebuild sets carry the win instead.
//
// Two workloads per shard count {1, 2, 4, 8}:
//   local    every update's source maps to shard 0 (mod num_shards), the
//            single-shard-resident workload of the PR acceptance criterion;
//   uniform  the §6.1 mixed stream as-is, sources spread over all shards.
//
// Also reports p50/p99 submit-to-applied latency through the coalescing
// UpdateBatcher at the largest shard count, a walker-transfer superstep
// sweep (`--app deepwalk|node2vec|ppr`, default all three) reporting
// cross-shard walker migrations per step at each shard count, and a
// persistence section: per-checkpoint WAL bytes/latency with the update
// stream journaled, plus the cold recovery time (base load + WAL replay)
// after a simulated crash.
//
// Environment knobs: BINGO_BENCH_SCALE / ROUNDS / BATCH (bench/common.h).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/graph/update_stream.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/walk/batcher.h"
#include "src/walk/partitioned.h"
#include "src/walk/sharded_service.h"

namespace bingo {
namespace {

struct SweepRow {
  int shards;
  double p50_ms;
  double p99_ms;
  double mean_ms;
  double max_ms;
};

// Remaps update sources onto shard 0 of an N-shard service (the residues
// v % N == 0). The stream stays the same size, but as N grows it
// concentrates on the 1/N of the vertex population shard 0 owns, so each
// batch coalesces more updates per touched vertex — the store's one
// rebuild per touched vertex per batch (§5.2) then amortizes harder, and
// the other N-1 shards do no update work at all.
graph::UpdateList MakeShardLocal(const graph::UpdateList& updates,
                                 int num_shards) {
  graph::UpdateList local = updates;
  for (graph::Update& u : local) {
    u.src -= u.src % num_shards;  // nearest shard-0 resident below src
  }
  return local;
}

SweepRow RunSweepCell(const bench::PreparedWorkload& workload,
                      const graph::UpdateList& updates, int num_shards,
                      util::ThreadPool& pool) {
  auto service = walk::MakeShardedWalkService(
      workload.initial_edges, workload.num_vertices, num_shards, {}, &pool,
      &pool);
  walk::ShardedStressOptions options;
  options.query_threads = 0;  // pure update-latency measurement
  options.batch_size = bench::BenchBatch();
  const auto report =
      walk::RunShardedServiceStress(*service, updates, options);
  return {num_shards, report.UpdateSecondsQuantile(0.50) * 1e3,
          report.UpdateSecondsQuantile(0.99) * 1e3,
          report.MeanUpdateSeconds() * 1e3, report.MaxUpdateSeconds() * 1e3};
}

// Walker-transfer superstep sweep: run the chosen app through
// RunPartitionedWalks at each shard count and report the communication the
// multi-device design would pay — cross-shard walker migrations per step.
void RunSuperstepSweep(const bench::PreparedWorkload& workload,
                       const std::string& app,
                       const std::vector<int>& shard_counts,
                       util::ThreadPool& pool) {
  std::printf("%-10s %8s %12s %12s %12s %12s\n", app.c_str(), "shards",
              "steps", "Msteps/s", "migr/step", "supersteps");
  for (const int shards : shard_counts) {
    walk::PartitionedBingoStore store(workload.initial_edges,
                                      workload.num_vertices, shards, {},
                                      &pool);
    walk::WalkConfig cfg;
    cfg.walk_length = 40;
    util::Timer timer;
    walk::PartitionedWalkResult result;
    if (app == "node2vec") {
      result = walk::RunPartitionedNode2vec(store, cfg, {}, &pool);
    } else if (app == "ppr") {
      result = walk::RunPartitionedPpr(store, cfg, 1.0 / cfg.walk_length,
                                       &pool);
    } else {
      result = walk::RunPartitionedDeepWalk(store, cfg, &pool);
    }
    const double seconds = timer.Seconds();
    std::printf("%-10s %8d %12llu %12.2f %12.3f %12llu\n", "", shards,
                static_cast<unsigned long long>(result.total_steps),
                result.total_steps / seconds / 1e6,
                result.total_steps == 0
                    ? 0.0
                    : static_cast<double>(result.walker_migrations) /
                          static_cast<double>(result.total_steps),
                static_cast<unsigned long long>(result.supersteps));
  }
  bench::PrintRule(70);
}

void PrintRows(const char* workload_name, const std::vector<SweepRow>& rows) {
  std::printf("%-10s %8s %12s %12s %12s %12s\n", workload_name, "shards",
              "p50 (ms)", "p99 (ms)", "mean (ms)", "max (ms)");
  for (const SweepRow& row : rows) {
    std::printf("%-10s %8d %12.3f %12.3f %12.3f %12.3f\n", "", row.shards,
                row.p50_ms, row.p99_ms, row.mean_ms, row.max_ms);
  }
  bench::PrintRule(70);
}

}  // namespace
}  // namespace bingo

int main(int argc, char** argv) {
  using namespace bingo;
  bench::TuneAllocator();

  // --app deepwalk|node2vec|ppr restricts the superstep sweep to one
  // application; by default it sweeps all three.
  std::vector<std::string> superstep_apps = {"deepwalk", "node2vec", "ppr"};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--app") == 0 && i + 1 < argc) {
      const std::string app = argv[++i];
      if (app != "deepwalk" && app != "node2vec" && app != "ppr") {
        std::fprintf(stderr, "unknown --app: %s\n", app.c_str());
        return 2;
      }
      superstep_apps = {app};
    } else {
      std::fprintf(stderr,
                   "usage: bench_sharded_service [--app deepwalk|node2vec|ppr]\n");
      return 2;
    }
  }

  // One mid-sized stand-in is enough for the scaling curve.
  const bench::Dataset dataset = bench::StandardDatasets()[1];  // GO
  const int rounds = std::max(8, bench::BenchRounds() * 3);
  const auto workload =
      bench::PrepareWorkload(dataset, graph::UpdateKind::kMixed, {}, 42,
                             bench::BenchBatch(), rounds);
  graph::UpdateList stream;
  for (const auto& batch : workload.batches) {
    stream.insert(stream.end(), batch.begin(), batch.end());
  }
  util::ThreadPool pool;

  std::printf(
      "bench_sharded_service: %s stand-in, %u vertices, %zu initial edges, "
      "%d batches x %llu updates\n\n",
      dataset.abbr, workload.num_vertices, workload.initial_edges.size(),
      rounds, static_cast<unsigned long long>(bench::BenchBatch()));

  const std::vector<int> shard_counts = {1, 2, 4, 8};

  // Single-shard-resident workload: latency must fall with shard count.
  std::vector<SweepRow> local_rows;
  for (int shards : shard_counts) {
    const auto local = MakeShardLocal(stream, shards);
    local_rows.push_back(RunSweepCell(workload, local, shards, pool));
  }
  PrintRows("local", local_rows);

  std::vector<SweepRow> uniform_rows;
  for (int shards : shard_counts) {
    uniform_rows.push_back(RunSweepCell(workload, stream, shards, pool));
  }
  PrintRows("uniform", uniform_rows);

  // Batcher overhead at the largest shard count: single-edge submits,
  // coalesced per shard, flushed per window.
  {
    auto service = walk::MakeShardedWalkService(
        workload.initial_edges, workload.num_vertices, shard_counts.back(), {},
        &pool, &pool);
    walk::ShardedStressOptions options;
    options.query_threads = 0;
    options.batch_size = bench::BenchBatch();
    options.use_batcher = true;
    const auto report = walk::RunShardedServiceStress(*service, stream, options);
    std::printf(
        "batcher    %8d %12.3f %12.3f %12.3f %12.3f  (submit-to-applied)\n",
        shard_counts.back(), report.UpdateSecondsQuantile(0.50) * 1e3,
        report.UpdateSecondsQuantile(0.99) * 1e3,
        report.MeanUpdateSeconds() * 1e3, report.MaxUpdateSeconds() * 1e3);
  }

  // Walker-transfer walk path: the same graph, walked by the superstep
  // driver at each shard count.
  std::printf("\n");
  for (const std::string& app : superstep_apps) {
    RunSuperstepSweep(workload, app, shard_counts, pool);
  }

  // Persistence: journal the whole stream through the WAL at the largest
  // shard count, checkpoint incrementally per batch window, then measure a
  // cold recovery (base load + WAL replay) — the crash-restart cost.
  {
    const std::string wal_dir =
        (std::filesystem::temp_directory_path() / "bingo_bench_wal").string();
    std::filesystem::remove_all(wal_dir);
    auto service = walk::MakeShardedWalkService(
        workload.initial_edges, workload.num_vertices, shard_counts.back(), {},
        &pool, &pool);
    util::Timer base_timer;
    const walk::CheckpointResult base = service->AttachWal(wal_dir);
    const double base_seconds = base_timer.Seconds();
    uint64_t incremental_bytes = 0;
    double incremental_seconds = 0.0;
    uint64_t checkpoints = 0;
    for (const auto& batch : workload.batches) {
      service->ApplyBatch(batch, &pool);
      util::Timer ckpt_timer;
      const walk::CheckpointResult ckpt = service->Checkpoint();
      incremental_seconds += ckpt_timer.Seconds();
      incremental_bytes += ckpt.bytes_written;
      ++checkpoints;
    }
    service.reset();  // "crash"

    walk::RecoveryReport report;
    util::Timer recover_timer;
    auto recovered = walk::RecoverShardedWalkService(wal_dir, {}, 0, &pool,
                                                     &pool, {}, &report);
    const double recover_seconds = recover_timer.Seconds();
    std::printf(
        "persistence  %8d %12s %12s %12s %12s\n", shard_counts.back(),
        "base MiB", "ckpt KiB/op", "ckpt ms/op", "recover ms");
    std::printf(
        "             %8s %12.2f %12.2f %12.3f %12.2f\n", "",
        base.bytes_written / 1024.0 / 1024.0,
        incremental_bytes / 1024.0 / std::max<uint64_t>(checkpoints, 1),
        incremental_seconds * 1e3 / std::max<uint64_t>(checkpoints, 1),
        recover_seconds * 1e3);
    std::printf(
        "             base write %.2fs; recovery replayed %llu wal records "
        "/ %llu updates over %llu base edges (%s)\n",
        base_seconds,
        static_cast<unsigned long long>(report.wal_records_replayed),
        static_cast<unsigned long long>(report.wal_updates_replayed),
        static_cast<unsigned long long>(report.base_edges),
        recovered != nullptr && recovered->CheckInvariants().empty()
            ? "invariants ok"
            : "RECOVERY FAILED");
    bench::PrintRule(70);
    std::filesystem::remove_all(wal_dir);
  }

  // The acceptance check in machine-readable form: mean local-workload
  // latency at the max shard count vs unsharded.
  const double speedup =
      local_rows.front().mean_ms / std::max(1e-9, local_rows.back().mean_ms);
  std::printf("\nlocal-workload mean latency: 1 shard %.3fms -> %d shards "
              "%.3fms (%.2fx)\n",
              local_rows.front().mean_ms, shard_counts.back(),
              local_rows.back().mean_ms, speedup);
  return 0;
}
