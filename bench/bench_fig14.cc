// Figure 14 reproduction: integer vs floating-point biases — runtime and
// memory of Bingo under DeepWalk with mixed updates.
//
// Per the paper, the floating-point bias of an edge is its integer bias
// plus a uniform random fraction in [0, 1); the decimal parts land in the
// per-vertex decimal group (§4.3).

#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "src/core/bingo_store.h"
#include "src/graph/dynamic_graph.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"

namespace bingo::bench {
namespace {

struct Fig14Cell {
  double seconds = 0;
  double memory_mib = 0;
};

Fig14Cell RunOne(const Dataset& dataset, bool floating_point,
                 core::DecimalGroup::Policy policy, util::ThreadPool& pool) {
  graph::BiasParams bias_params;
  bias_params.floating_point = floating_point;
  const auto workload = PrepareWorkload(dataset, graph::UpdateKind::kMixed,
                                        bias_params, 5, BenchBatch(),
                                        BenchRounds());
  core::BingoConfig config;
  config.decimal_policy = policy;
  // Best of two repetitions with a fresh store each: single measurements
  // on this host occasionally absorb multi-hundred-ms scheduler stalls.
  Fig14Cell cell;
  cell.seconds = 1e100;
  for (int rep = 0; rep < 2; ++rep) {
    core::BingoStore store(graph::DynamicGraph::FromEdges(
                               workload.num_vertices, workload.initial_edges),
                           config, &pool);
    cell.seconds = std::min(cell.seconds, TimeSec([&] {
                              for (const auto& b : workload.batches) {
                                store.ApplyBatch(b, &pool);
                                walk::WalkConfig cfg;
                                cfg.walk_length = 80;
                                cfg.num_walkers = std::max<uint64_t>(
                                    1, workload.num_vertices / WalkerDiv());
                                walk::RunDeepWalk(store, cfg, &pool);
                              }
                            }));
    cell.memory_mib = ToMiB(store.MemoryBytes());
  }
  return cell;
}

}  // namespace
}  // namespace bingo::bench

int main() {
  using namespace bingo;
  using namespace bingo::bench;

  TuneAllocator();

  util::ThreadPool pool;
  std::printf(
      "Figure 14: integer vs floating-point bias (DeepWalk, mixed updates)\n"
      "float bias = integer bias + U(0,1); decimal policy default = "
      "rejection\n\n");
  std::printf("%-5s %12s %12s %9s | %12s %12s %9s\n", "data", "int (s)",
              "float (s)", "slowdown", "int MiB", "float MiB", "overhead");
  PrintRule(84);

  double time_ratio_sum = 0;
  double mem_ratio_sum = 0;
  const auto datasets = StandardDatasets();
  for (const auto& dataset : datasets) {
    const Fig14Cell integer =
        RunOne(dataset, false, core::DecimalGroup::Policy::kRejection, pool);
    const Fig14Cell floating =
        RunOne(dataset, true, core::DecimalGroup::Policy::kRejection, pool);
    time_ratio_sum += floating.seconds / integer.seconds;
    mem_ratio_sum += floating.memory_mib / integer.memory_mib;
    std::printf("%-5s %12.2f %12.2f %8.2fx | %12.1f %12.1f %8.2fx\n",
                dataset.abbr, integer.seconds, floating.seconds,
                floating.seconds / integer.seconds, integer.memory_mib,
                floating.memory_mib, floating.memory_mib / integer.memory_mib);
  }
  std::printf("\naverage: %.2fx time, %.2fx memory (paper: 1.02x / 1.08x)\n",
              time_ratio_sum / datasets.size(), mem_ratio_sum / datasets.size());

  // Decimal-policy ablation (ITS vs rejection inside the decimal group).
  std::printf("\ndecimal policy ablation on GO stand-in (float biases):\n");
  for (const auto policy : {core::DecimalGroup::Policy::kRejection,
                            core::DecimalGroup::Policy::kIts}) {
    const Fig14Cell cell = RunOne(datasets[1], true, policy, pool);
    std::printf("  %-10s %8.2fs %10.1f MiB\n",
                policy == core::DecimalGroup::Policy::kIts ? "ITS" : "rejection",
                cell.seconds, cell.memory_mib);
  }
  return 0;
}
