// bench_index — the always-fresh walk index end to end: repair throughput
// while an update stream flows through WalkIndexService, then index-served
// vs re-walk query latency over the same store.
//
// Sections:
//   repair   stream §6.1 mixed update batches through ApplyBatch (always-
//            fresh contract: one corpus repair per batch) and report
//            updates/sec ingested, walks repaired and steps resampled per
//            batch, and the repair-latency p50/p99 from the service's own
//            LatencyHistogram.
//   serve    closed-loop query latency for the same read — `--walkers`
//            stored walks per query — served two ways: a corpus read from
//            the index (QueryWalks, no sampling) vs re-walking from a live
//            snapshot (RunDeepWalk). The acceptance criterion for the
//            index front is p50/p99 strictly below the re-walk front.
//
// --json OUT.json dumps one flat object (BENCH_index in the perf
// trajectory). Environment knobs: BINGO_BENCH_SCALE / ROUNDS / BATCH
// (bench/common.h), BINGO_BENCH_QREPS queries per serving front (default
// 200).

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "bench/common.h"
#include "src/util/histogram.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/walk/apps.h"
#include "src/walk/index_service.h"
#include "src/walk/service.h"

namespace bingo {
namespace {

int Run(int argc, char** argv) {
  bench::TuneAllocator();
  std::string json_path;
  int threads = 4;
  uint64_t walkers = 256;
  uint32_t length = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--walkers") == 0 && i + 1 < argc) {
      walkers = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--length") == 0 && i + 1 < argc) {
      length = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_index [--threads N] [--walkers W] "
                   "[--length L] [--json OUT.json]\n");
      return 2;
    }
  }
  const int rounds = bench::BenchRounds();
  const uint64_t batch = bench::BenchBatch();
  const int query_reps =
      static_cast<int>(bench::EnvInt("BINGO_BENCH_QREPS", 200));

  const bench::Dataset dataset = bench::StandardDatasets()[0];  // AM stand-in
  const auto workload = bench::PrepareWorkload(
      dataset, graph::UpdateKind::kMixed, {}, /*seed=*/42, batch, rounds);

  util::PoolOptions pool_options;
  pool_options.num_threads = threads;
  util::ThreadPool pool(pool_options);
  auto service = walk::MakeWalkService(workload.initial_edges,
                                       workload.num_vertices, {}, &pool, &pool);

  walk::WalkIndexService::Options index_options;
  index_options.corpus.walk_length = length;
  walk::WalkIndexService index(*service, index_options, &pool);
  {
    const walk::WalkIndexStats s = index.Stats();
    std::printf("bench_index: %s stand-in, %u vertices, %zu edges; corpus "
                "%llu walks x %u generated in %.2fs (%.1f MiB)\n",
                dataset.abbr, workload.num_vertices,
                workload.initial_edges.size(),
                static_cast<unsigned long long>(s.corpus_walks), length,
                s.generate_seconds, bench::ToMiB(s.corpus_memory_bytes));
  }

  // --- repair throughput --------------------------------------------------
  util::Timer repair_wall;
  for (const graph::UpdateList& round : workload.batches) {
    index.ApplyBatch(round);
  }
  const double repair_seconds = repair_wall.Seconds();
  const walk::WalkIndexStats stats = index.Stats();
  const double updates_per_sec =
      static_cast<double>(stats.updates_observed) / repair_seconds;
  const double steps_per_sec =
      static_cast<double>(stats.steps_resampled) / repair_seconds;
  std::printf(
      "repair:  %llu updates in %d batches, %.2fs wall (%.0f updates/s)\n",
      static_cast<unsigned long long>(stats.updates_observed), rounds,
      repair_seconds, updates_per_sec);
  std::printf(
      "         %llu walks repaired, %llu steps resampled (%.2f Msteps/s), "
      "repair p50 %.2fms p99 %.2fms\n",
      static_cast<unsigned long long>(stats.walks_repaired),
      static_cast<unsigned long long>(stats.steps_resampled),
      steps_per_sec / 1e6, stats.repair_p50_seconds * 1e3,
      stats.repair_p99_seconds * 1e3);

  // --- index-served vs re-walk query latency ------------------------------
  util::LatencyHistogram index_hist;
  util::LatencyHistogram rewalk_hist;
  for (int i = 0; i < query_reps; ++i) {
    util::Timer timer;
    const walk::WalkResult served =
        index.QueryWalks(static_cast<uint64_t>(i) * walkers, walkers);
    index_hist.RecordSeconds(timer.Seconds());
    if (served.path_offsets.size() != walkers + 1 &&
        served.path_offsets.size() != index.NumWalks() + 1) {
      std::fprintf(stderr, "index front returned a malformed result\n");
      return 1;
    }
  }
  for (int i = 0; i < query_reps; ++i) {
    walk::WalkConfig cfg;
    cfg.num_walkers = walkers;
    cfg.walk_length = length;
    cfg.record_paths = true;  // the index front returns paths; compare fairly
    cfg.seed = 42 + static_cast<uint64_t>(i);
    util::Timer timer;
    const auto snap = service->Acquire();
    const walk::WalkResult walked = walk::RunDeepWalk(snap.store(), cfg, &pool);
    rewalk_hist.RecordSeconds(timer.Seconds());
    if (walked.path_offsets.size() != walkers + 1) {
      std::fprintf(stderr, "re-walk front returned a malformed result\n");
      return 1;
    }
  }
  std::printf(
      "serve:   %llu walks/query x %d queries\n"
      "         index  p50 %.3fms p99 %.3fms max %.3fms\n"
      "         rewalk p50 %.3fms p99 %.3fms max %.3fms\n",
      static_cast<unsigned long long>(walkers), query_reps,
      index_hist.QuantileSeconds(0.50) * 1e3,
      index_hist.QuantileSeconds(0.99) * 1e3, index_hist.MaxSeconds() * 1e3,
      rewalk_hist.QuantileSeconds(0.50) * 1e3,
      rewalk_hist.QuantileSeconds(0.99) * 1e3, rewalk_hist.MaxSeconds() * 1e3);

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\"bench\":\"index\",\"dataset\":\"" << dataset.abbr
         << "\",\"threads\":" << threads
         << ",\"corpus_walks\":" << stats.corpus_walks
         << ",\"walk_length\":" << length
         << ",\"generate_seconds\":" << stats.generate_seconds
         << ",\"updates\":" << stats.updates_observed
         << ",\"repairs\":" << stats.repairs
         << ",\"updates_per_sec\":" << updates_per_sec
         << ",\"walks_repaired\":" << stats.walks_repaired
         << ",\"steps_resampled_per_sec\":" << steps_per_sec
         << ",\"repair_p50_ms\":" << stats.repair_p50_seconds * 1e3
         << ",\"repair_p99_ms\":" << stats.repair_p99_seconds * 1e3
         << ",\"walkers_per_query\":" << walkers
         << ",\"index_p50_ms\":" << index_hist.QuantileSeconds(0.50) * 1e3
         << ",\"index_p99_ms\":" << index_hist.QuantileSeconds(0.99) * 1e3
         << ",\"rewalk_p50_ms\":" << rewalk_hist.QuantileSeconds(0.50) * 1e3
         << ",\"rewalk_p99_ms\":" << rewalk_hist.QuantileSeconds(0.99) * 1e3
         << "}";
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "%s\n", json.str().c_str());
    std::fclose(out);
    std::printf("json:    %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bingo

int main(int argc, char** argv) { return bingo::Run(argc, argv); }
