#include "src/walk/index_service.h"

#include <utility>
#include <vector>

namespace bingo::walk {

template class WalkIndexServiceT<WalkService>;

RecoveredWalkIndexService RecoverWalkIndexService(
    const std::string& dir, WalkIndexService::Options index_options,
    core::BingoConfig config, graph::VertexId num_vertices,
    util::ThreadPool* build_pool, util::ThreadPool* update_pool,
    WalPersistenceOptions options, WalkIndexRecoveryReport* report) {
  WalkIndexRecoveryReport local;
  RecoveredWalkIndexService out;
  const auto finish = [&]() {
    if (report != nullptr) {
      *report = local;
    }
    return std::move(out);
  };

  // Parse the corpus checkpoint first: its wal_seq fence decides which
  // replayed batches still owe the corpus a repair. `num_walks == 0` in
  // the caller's config adopts the checkpoint's walk count (the usual
  // one-walk-per-vertex default is only computable from a live store).
  const std::string corpus_path = dir + "/" + kCorpusCheckpointFile;
  WalkCorpusMeta meta;
  std::vector<std::vector<graph::VertexId>> saved_walks;
  const bool corpus_file_ok = LoadWalkCorpusFile(corpus_path, &meta,
                                                 &saved_walks);
  IncrementalWalkCorpus::Config corpus_config = index_options.corpus;
  if (corpus_file_ok && corpus_config.num_walks == 0) {
    corpus_config.num_walks = meta.num_walks;
  }
  std::optional<IncrementalWalkCorpus> corpus;
  std::optional<uint64_t> fence;
  if (corpus_file_ok) {
    corpus.emplace(graph::VertexId{0}, corpus_config);
    fence = corpus->Restore(meta, std::move(saved_walks));
    if (!fence.has_value()) {
      corpus.reset();  // config mismatch: treat like a missing checkpoint
    }
  }
  local.corpus_restored = fence.has_value();
  local.corpus_wal_seq = fence.value_or(0);

  // Recover the service, re-running the corpus repair for every replayed
  // batch past the fence — in WAL order, each against the snapshot that
  // batch just produced, exactly as the uncrashed service did.
  RecoveryBatchHook hook;
  if (fence.has_value()) {
    hook = [&](uint64_t seq, const graph::UpdateList& batch,
               WalkService& service) {
      if (seq <= *fence) {
        return;  // the checkpointed corpus already reflects this batch
      }
      const WalkService::Snapshot snap = service.Acquire();
      corpus->RepairAfterUpdates(snap.store(), batch, update_pool);
      ++local.corpus_batches_replayed;
    };
  }
  out.service =
      RecoverWalkService(dir, config, num_vertices, build_pool, update_pool,
                         options, &local.service, std::move(hook));
  if (out.service == nullptr) {
    return finish();
  }

  if (corpus.has_value()) {
    out.index = std::make_unique<WalkIndexService>(
        *out.service, index_options, update_pool, std::move(*corpus), dir);
  } else {
    // No usable checkpoint: regenerate from the recovered store. The
    // corpus is fresh and internally consistent, but carries no repair
    // history — only the checkpointed path is bit-identical to the
    // uncrashed corpus.
    const WalkService::Snapshot snap = out.service->Acquire();
    IncrementalWalkCorpus fresh(snap.store().NumVertices(),
                                index_options.corpus);
    fresh.Generate(snap.store(), update_pool);
    out.index = std::make_unique<WalkIndexService>(
        *out.service, index_options, update_pool, std::move(fresh), dir);
  }
  return finish();
}

}  // namespace bingo::walk
