#include "src/walk/sharded_service.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/util/fileio.h"
#include "src/util/stats.h"
#include "src/util/timer.h"
#include "src/walk/batcher.h"

namespace bingo::walk {

namespace {
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "bingo-sharded-wal v1";
}  // namespace

bool WriteShardedWalManifest(const std::string& dir, int num_shards) {
  util::AtomicFileWriter writer(dir + "/" + kManifestName);
  if (!writer.ok()) {
    return false;
  }
  std::ostringstream body;
  body << kManifestHeader << "\nshards " << num_shards << "\n";
  const std::string text = body.str();
  return writer.Write(text.data(), text.size()) && writer.Commit();
}

bool ReadShardedWalManifest(const std::string& dir, int& num_shards) {
  std::ifstream in(dir + "/" + kManifestName);
  if (!in) {
    return false;
  }
  std::string header;
  std::string key;
  if (!std::getline(in, header) || header != kManifestHeader ||
      !(in >> key >> num_shards) || key != "shards" || num_shards <= 0) {
    return false;
  }
  return true;
}

std::string ShardWalDir(const std::string& dir, int shard) {
  return dir + "/shard-" + std::to_string(shard);
}

std::unique_ptr<ShardedWalkService> RecoverShardedWalkService(
    const std::string& dir, core::BingoConfig config,
    graph::VertexId num_vertices, util::ThreadPool* build_pool,
    util::ThreadPool* update_pool, WalPersistenceOptions options,
    RecoveryReport* report) {
  RecoveryReport total;
  const auto fail = [&]() -> std::unique_ptr<ShardedWalkService> {
    if (report != nullptr) {
      *report = total;
    }
    return nullptr;
  };
  int num_shards = 0;
  if (!ReadShardedWalManifest(dir, num_shards)) {
    return fail();
  }
  std::vector<std::unique_ptr<WalkService>> shards;
  shards.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    RecoveryReport shard_report;
    auto shard =
        RecoverWalkService(ShardWalDir(dir, s), config, num_vertices,
                           build_pool, update_pool, options, &shard_report);
    if (shard == nullptr) {
      return fail();
    }
    total.base_edges += shard_report.base_edges;
    total.base_wal_seq += shard_report.base_wal_seq;
    total.wal_records_replayed += shard_report.wal_records_replayed;
    total.wal_updates_replayed += shard_report.wal_updates_replayed;
    total.wal_tail_truncated =
        total.wal_tail_truncated || shard_report.wal_tail_truncated;
    total.num_vertices = std::max(total.num_vertices, shard_report.num_vertices);
    shards.push_back(std::move(shard));
  }
  auto service =
      std::make_unique<ShardedWalkService>(std::move(shards), update_pool);
  service->AdoptWalDir(dir, options);
  total.ok = true;
  if (report != nullptr) {
    *report = total;
  }
  return service;
}

// The composite snapshot is a first-class store view: the store-generic
// engine and apps walk it like any backend.
static_assert(SamplingStore<ShardedWalkService::Snapshot>);
static_assert(AdjacencyStore<ShardedWalkService::Snapshot>);

template class ShardedWalkServiceT<core::BingoStore>;

std::unique_ptr<ShardedWalkService> MakeShardedWalkService(
    const graph::WeightedEdgeList& edges, graph::VertexId num_vertices,
    int num_shards, core::BingoConfig config, util::ThreadPool* build_pool,
    util::ThreadPool* update_pool) {
  // Route once; each shard's factory reads its slice (invoked twice, for
  // the two replicas). Shard stores span the full vertex-id space so
  // vertex ids need no translation — exactly PartitionedBingoStore's
  // layout, which keeps per-vertex samplers bit-identical to the
  // whole-graph store's.
  auto per_shard = std::make_shared<std::vector<graph::WeightedEdgeList>>(
      static_cast<std::size_t>(num_shards));
  for (const graph::WeightedEdge& e : edges) {
    (*per_shard)[e.src % num_shards].push_back(e);
  }
  const auto factory = [per_shard, num_vertices, config,
                        build_pool](int shard) {
    return std::make_unique<core::BingoStore>(
        graph::DynamicGraph::FromEdges(num_vertices, (*per_shard)[shard]),
        config, build_pool);
  };
  return std::make_unique<ShardedWalkService>(num_shards, factory, update_pool);
}

double ShardedStressReport::MeanUpdateSeconds() const {
  if (batch_seconds.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (double s : batch_seconds) {
    total += s;
  }
  return total / static_cast<double>(batch_seconds.size());
}

double ShardedStressReport::MaxUpdateSeconds() const {
  double max_seconds = 0.0;
  for (double s : batch_seconds) {
    max_seconds = std::max(max_seconds, s);
  }
  return max_seconds;
}

double ShardedStressReport::UpdateSecondsQuantile(double q) const {
  return util::SampleQuantile(batch_seconds, q);
}

ShardedStressReport RunShardedServiceStress(
    ShardedWalkService& service, const graph::UpdateList& updates,
    const ShardedStressOptions& options) {
  ShardedStressReport report;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> walk_steps{0};
  std::atomic<uint64_t> inconsistent{0};

  // Query threads run poolless so the writer side has any pool to itself
  // (and so batcher writer tasks can never starve walk chunks).
  const auto query_loop = [&](int thread_id) {
    uint64_t iteration = 0;
    while (!stop.load(std::memory_order_acquire) || iteration == 0) {
      WalkConfig cfg;
      cfg.num_walkers = options.walkers_per_query;
      cfg.walk_length = options.walk_length;
      cfg.seed = options.seed +
                 static_cast<uint64_t>(thread_id) * 0x9e3779b9ULL + iteration;
      const ShardedWalkService::Snapshot snap = service.Acquire();
      const WalkResult result = RunDeepWalk(snap, cfg, nullptr);
      walk_steps.fetch_add(result.total_steps, std::memory_order_relaxed);
      if (!snap.Consistent()) {
        inconsistent.fetch_add(1, std::memory_order_relaxed);
      }
      queries.fetch_add(1, std::memory_order_relaxed);
      ++iteration;
    }
  };

  util::Timer wall;
  std::vector<std::thread> workers;
  workers.reserve(options.query_threads);
  for (int t = 0; t < options.query_threads; ++t) {
    workers.emplace_back(query_loop, t);
  }

  const uint64_t batch_size = std::max<uint64_t>(1, options.batch_size);
  if (options.use_batcher) {
    // Single-edge submissions coalesced by the batcher; each window's
    // latency is submit-to-flushed (what a producer actually waits for).
    BatcherOptions batcher_options;
    batcher_options.max_batch_updates = static_cast<std::size_t>(batch_size);
    UpdateBatcher batcher(service, batcher_options);
    for (std::size_t begin = 0; begin < updates.size(); begin += batch_size) {
      const std::size_t end = std::min(updates.size(), begin + batch_size);
      util::Timer batch_timer;
      for (std::size_t i = begin; i < end; ++i) {
        batcher.Submit(updates[i]);
      }
      batcher.Flush();
      report.batch_seconds.push_back(batch_timer.Seconds());
      ++report.batches;
    }
  } else {
    for (std::size_t begin = 0; begin < updates.size(); begin += batch_size) {
      const std::size_t end = std::min(updates.size(), begin + batch_size);
      const graph::UpdateList batch(updates.begin() + begin,
                                    updates.begin() + end);
      util::Timer batch_timer;
      service.ApplyBatch(batch);
      report.batch_seconds.push_back(batch_timer.Seconds());
      ++report.batches;
    }
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
  report.wall_seconds = wall.Seconds();
  report.queries = queries.load();
  report.walk_steps = walk_steps.load();
  report.inconsistent_snapshots = inconsistent.load();
  return report;
}

}  // namespace bingo::walk
