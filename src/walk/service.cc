#include "src/walk/service.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/util/timer.h"

namespace bingo::walk {

static_assert(WalkStore<core::BingoStore> && AdjacencyStore<core::BingoStore>);

template class WalkServiceT<core::BingoStore>;

std::unique_ptr<WalkService> MakeWalkService(
    const graph::WeightedEdgeList& edges, graph::VertexId num_vertices,
    core::BingoConfig config, util::ThreadPool* build_pool,
    util::ThreadPool* update_pool) {
  const auto factory = [&]() {
    return std::make_unique<core::BingoStore>(
        graph::DynamicGraph::FromEdges(num_vertices, edges), config,
        build_pool);
  };
  return std::make_unique<WalkService>(factory, update_pool);
}

ServiceStressReport RunWalkServiceStress(WalkService& service,
                                         const graph::UpdateList& updates,
                                         const ServiceStressOptions& options) {
  ServiceStressReport report;
  report.min_epoch_observed = UINT64_MAX;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> walk_steps{0};
  std::atomic<uint64_t> inconsistent{0};
  std::atomic<uint64_t> min_epoch{UINT64_MAX};
  std::atomic<uint64_t> max_epoch{0};

  const auto query_loop = [&](int thread_id) {
    uint64_t iteration = 0;
    // Every thread issues at least one query even if updates finish first.
    while (!stop.load(std::memory_order_acquire) || iteration == 0) {
      WalkConfig cfg;
      cfg.num_walkers = options.walkers_per_query;
      cfg.walk_length = options.walk_length;
      cfg.seed = options.seed + static_cast<uint64_t>(thread_id) * 0x9e3779b9ULL +
                 iteration;
      const WalkService::Snapshot snap = service.Acquire();
      const WalkResult result = RunDeepWalk(snap.store(), cfg, nullptr);
      walk_steps.fetch_add(result.total_steps, std::memory_order_relaxed);
      if (!snap.Consistent()) {
        inconsistent.fetch_add(1, std::memory_order_relaxed);
      }
      const uint64_t epoch = snap.epoch();
      uint64_t seen = min_epoch.load(std::memory_order_relaxed);
      while (epoch < seen &&
             !min_epoch.compare_exchange_weak(seen, epoch,
                                              std::memory_order_relaxed)) {
      }
      seen = max_epoch.load(std::memory_order_relaxed);
      while (epoch > seen &&
             !max_epoch.compare_exchange_weak(seen, epoch,
                                              std::memory_order_relaxed)) {
      }
      queries.fetch_add(1, std::memory_order_relaxed);
      ++iteration;
    }
  };

  util::Timer wall;
  std::vector<std::thread> workers;
  workers.reserve(options.query_threads);
  for (int t = 0; t < options.query_threads; ++t) {
    workers.emplace_back(query_loop, t);
  }

  // The calling thread is the single writer, streaming batches.
  const uint64_t batch_size = std::max<uint64_t>(1, options.batch_size);
  for (std::size_t begin = 0; begin < updates.size(); begin += batch_size) {
    const std::size_t end = std::min(updates.size(), begin + batch_size);
    const graph::UpdateList batch(updates.begin() + begin,
                                  updates.begin() + end);
    util::Timer batch_timer;
    service.ApplyBatch(batch);
    const double seconds = batch_timer.Seconds();
    report.update_seconds_total += seconds;
    report.update_seconds_max = std::max(report.update_seconds_max, seconds);
    ++report.batches;
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
  report.wall_seconds = wall.Seconds();
  report.queries = queries.load();
  report.walk_steps = walk_steps.load();
  report.inconsistent_snapshots = inconsistent.load();
  report.min_epoch_observed = min_epoch.load();
  report.max_epoch_observed = max_epoch.load();
  return report;
}

}  // namespace bingo::walk
