#include "src/walk/service.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "src/graph/dynamic_graph.h"
#include "src/graph/io.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace bingo::walk {

static_assert(WalkStore<core::BingoStore> && AdjacencyStore<core::BingoStore>);

template class WalkServiceT<core::BingoStore>;

std::unique_ptr<WalkService> MakeWalkService(
    const graph::WeightedEdgeList& edges, graph::VertexId num_vertices,
    core::BingoConfig config, util::ThreadPool* build_pool,
    util::ThreadPool* update_pool) {
  const auto factory = [&]() {
    return std::make_unique<core::BingoStore>(
        graph::DynamicGraph::FromEdges(num_vertices, edges), config,
        build_pool);
  };
  return std::make_unique<WalkService>(factory, update_pool);
}

std::unique_ptr<WalkService> RecoverWalkService(
    const std::string& dir, core::BingoConfig config,
    graph::VertexId num_vertices, util::ThreadPool* build_pool,
    util::ThreadPool* update_pool, WalPersistenceOptions options,
    RecoveryReport* report, RecoveryBatchHook batch_hook) {
  RecoveryReport local;
  const auto fail = [&]() -> std::unique_ptr<WalkService> {
    if (report != nullptr) {
      *report = local;
    }
    return nullptr;
  };

  graph::WeightedEdgeList edges;
  core::SnapshotInfo info;
  if (!core::LoadSnapshotEdges(dir + "/base.snapshot", edges, &info)) {
    return fail();
  }
  if (info.version >= 2 &&
      info.config_fingerprint != core::ConfigFingerprint(config)) {
    return fail();
  }
  // Resume the decay clock where the snapshot left it; WAL replay then
  // re-applies any AdvanceTime ticks journaled after the checkpoint.
  config.logical_epoch = static_cast<uint32_t>(info.logical_epoch);
  const graph::VertexId n = std::max(
      {num_vertices, info.num_vertices, graph::ImpliedVertexCount(edges)});
  local.base_edges = edges.size();
  local.base_wal_seq = info.wal_seq;
  local.num_vertices = n;

  auto service = MakeWalkService(edges, n, config, build_pool, update_pool);

  // Replay the journaled suffix. Journaling is not armed yet, so the
  // replayed batches are applied without being re-appended.
  const std::string wal_path = dir + "/wal.log";
  const core::WalReplayResult replay = core::ReplayWal(
      wal_path, info.wal_seq,
      [&](uint64_t seq, const graph::UpdateList& batch) {
        service->ApplyBatch(batch);
        if (batch_hook) {
          batch_hook(seq, batch, *service);
        }
      });
  const core::WalOptions wal_options{options.fsync_on_commit};
  std::unique_ptr<core::WalWriter> wal;
  if (!replay.opened || (replay.header_torn && !replay.header_ok)) {
    // Missing WAL, or one torn before its header completed (a crash during
    // AttachWal/compaction): the base alone is the durable state. Start a
    // fresh segment at its sequence number.
    wal = core::WalWriter::Create(wal_path, info.wal_seq, wal_options);
  } else if (!replay.header_ok) {
    return fail();  // a full header that fails validation is corruption
  } else if (replay.last_seq < info.wal_seq) {
    // Pre-compaction segment fully covered by the base (crash between the
    // base and WAL renames): supersede it.
    wal = core::WalWriter::Create(wal_path, info.wal_seq, wal_options);
  } else {
    wal = core::WalWriter::OpenForAppend(wal_path, replay, wal_options);
  }
  if (wal == nullptr) {
    return fail();
  }
  local.wal_records_replayed = replay.records_replayed;
  local.wal_updates_replayed = replay.updates_replayed;
  local.wal_tail_truncated = replay.truncated_tail;
  service->AdoptWal(std::move(wal), dir, options, replay.updates_replayed);
  local.ok = true;
  if (report != nullptr) {
    *report = local;
  }
  return service;
}

double ServiceStressReport::UpdateSecondsQuantile(double q) const {
  return util::SampleQuantile(batch_seconds, q);
}

ServiceStressReport RunWalkServiceStress(WalkService& service,
                                         const graph::UpdateList& updates,
                                         const ServiceStressOptions& options) {
  ServiceStressReport report;
  report.min_epoch_observed = UINT64_MAX;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> walk_steps{0};
  std::atomic<uint64_t> inconsistent{0};
  std::atomic<uint64_t> min_epoch{UINT64_MAX};
  std::atomic<uint64_t> max_epoch{0};

  const auto query_loop = [&](int thread_id) {
    uint64_t iteration = 0;
    // Every thread issues at least one query even if updates finish first.
    while (!stop.load(std::memory_order_acquire) || iteration == 0) {
      WalkConfig cfg;
      cfg.num_walkers = options.walkers_per_query;
      cfg.walk_length = options.walk_length;
      cfg.seed = options.seed + static_cast<uint64_t>(thread_id) * 0x9e3779b9ULL +
                 iteration;
      const WalkService::Snapshot snap = service.Acquire();
      const WalkResult result = RunDeepWalk(snap.store(), cfg, nullptr);
      walk_steps.fetch_add(result.total_steps, std::memory_order_relaxed);
      if (!snap.Consistent()) {
        inconsistent.fetch_add(1, std::memory_order_relaxed);
      }
      const uint64_t epoch = snap.epoch();
      uint64_t seen = min_epoch.load(std::memory_order_relaxed);
      while (epoch < seen &&
             !min_epoch.compare_exchange_weak(seen, epoch,
                                              std::memory_order_relaxed)) {
      }
      seen = max_epoch.load(std::memory_order_relaxed);
      while (epoch > seen &&
             !max_epoch.compare_exchange_weak(seen, epoch,
                                              std::memory_order_relaxed)) {
      }
      queries.fetch_add(1, std::memory_order_relaxed);
      ++iteration;
    }
  };

  util::Timer wall;
  std::vector<std::thread> workers;
  workers.reserve(options.query_threads);
  for (int t = 0; t < options.query_threads; ++t) {
    workers.emplace_back(query_loop, t);
  }

  // The calling thread is the single writer, streaming batches.
  const uint64_t batch_size = std::max<uint64_t>(1, options.batch_size);
  for (std::size_t begin = 0; begin < updates.size(); begin += batch_size) {
    const std::size_t end = std::min(updates.size(), begin + batch_size);
    const graph::UpdateList batch(updates.begin() + begin,
                                  updates.begin() + end);
    util::Timer batch_timer;
    service.ApplyBatch(batch);
    const double seconds = batch_timer.Seconds();
    report.update_seconds_total += seconds;
    report.update_seconds_max = std::max(report.update_seconds_max, seconds);
    report.batch_seconds.push_back(seconds);
    ++report.batches;
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
  report.wall_seconds = wall.Seconds();
  report.queries = queries.load();
  report.walk_steps = walk_steps.load();
  report.inconsistent_snapshots = inconsistent.load();
  report.min_epoch_observed = min_epoch.load();
  report.max_epoch_observed = max_epoch.load();
  return report;
}

}  // namespace bingo::walk
