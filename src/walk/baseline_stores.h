// Baseline sampler stores (substitution S3 in DESIGN.md).
//
// Each store reimplements the sampling strategy of one comparison system
// behind the same surface as BingoStore, so the walk applications and the
// benchmark harness are store-agnostic:
//
//   AliasStore     — KnightKing-like: per-vertex alias tables, O(1) sample,
//                    O(d) rebuild of the affected vertex per update.
//   ItsStore       — gSampler-like: per-vertex CDF arrays, O(log d) sample,
//                    O(1) append on insert, O(d) rebuild on delete.
//   ReservoirStore — FlowWalker-like: no auxiliary structure, O(d) weighted
//                    reservoir pass per sample, updates touch only the graph.
//
// The paper's own evaluation reloads/reconstructs these systems' structures
// after each update round; per-vertex rebuilds (implemented here) are the
// *charitable* variant — they can only shrink Bingo's reported speedups.
// RebuildAll() reproduces the literal reload protocol when wanted.

#ifndef BINGO_SRC_WALK_BASELINE_STORES_H_
#define BINGO_SRC_WALK_BASELINE_STORES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/store_types.h"
#include "src/core/vertex_sampler.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/types.h"
#include "src/sampling/alias_table.h"
#include "src/sampling/its.h"
#include "src/sampling/reservoir.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace bingo::walk {

// Common base: owns the dynamic graph and implements update plumbing; the
// derived classes provide the per-vertex sampling structure. Exposes the
// graph half of the WalkStore / AdjacencyStore surface (src/walk/store.h).
class BaselineStoreBase {
 public:
  explicit BaselineStoreBase(graph::DynamicGraph graph,
                             core::BingoConfig config = {})
      : config_(std::move(config)), graph_(std::move(graph)) {}

  const graph::DynamicGraph& Graph() const { return graph_; }
  // Only the bias pipeline + logical epoch of the config are meaningful
  // here; the radix knobs belong to BingoStore.
  const core::BingoConfig& Config() const { return config_; }
  uint32_t LogicalEpoch() const { return config_.logical_epoch; }

  graph::VertexId NumVertices() const { return graph_.NumVertices(); }
  uint64_t NumEdges() const { return graph_.NumEdges(); }
  bool HasEdge(graph::VertexId src, graph::VertexId dst) const {
    return graph_.HasEdge(src, dst);
  }
  std::span<const graph::Edge> NeighborsOf(graph::VertexId v) const {
    return graph_.Neighbors(v);
  }

 protected:
  // Applies any kAdvanceTime ticks in `updates`: bumps the logical epoch
  // and rescales every stored bias by decay^(age delta). Returns true when
  // biases changed so the caller can rebuild its sampling structures (the
  // baselines' O(n) rebuild is their Table 1 update cost model anyway).
  bool AdvanceEpochFromBatch(const graph::UpdateList& updates);

  double ComposeBias(graph::VertexId src, graph::VertexId dst, double bias,
                     uint32_t timestamp) const {
    return config_.pipeline.Compose(src, dst, bias, timestamp,
                                    config_.logical_epoch);
  }

  core::BingoConfig config_;
  graph::DynamicGraph graph_;
};

class AliasStore : public BaselineStoreBase {
 public:
  explicit AliasStore(graph::DynamicGraph graph, util::ThreadPool* pool = nullptr);
  AliasStore(graph::DynamicGraph graph, core::BingoConfig config,
             util::ThreadPool* pool = nullptr);

  graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const;

  void StreamingInsert(graph::VertexId src, graph::VertexId dst, double bias);
  bool StreamingDelete(graph::VertexId src, graph::VertexId dst);
  core::BatchResult ApplyBatch(const graph::UpdateList& updates,
                               util::ThreadPool* pool = nullptr);

  // The paper's literal Table 3 protocol: mutate the graph, then
  // reconstruct every vertex's table ("reload or reconstruct the
  // corresponding structure after each round of updates", §6.2).
  void ApplyBatchReload(const graph::UpdateList& updates,
                        util::ThreadPool* pool = nullptr);

  // Reconstructs every vertex's table.
  void RebuildAll(util::ThreadPool* pool = nullptr);

  core::StoreMemoryStats MemoryStats() const;
  std::size_t MemoryBytes() const { return MemoryStats().TotalBytes(); }
  std::string CheckInvariants() const;

 private:
  void RebuildVertex(graph::VertexId v);

  std::vector<sampling::AliasTable> tables_;
};

class ItsStore : public BaselineStoreBase {
 public:
  explicit ItsStore(graph::DynamicGraph graph, util::ThreadPool* pool = nullptr);
  ItsStore(graph::DynamicGraph graph, core::BingoConfig config,
           util::ThreadPool* pool = nullptr);

  graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const;

  void StreamingInsert(graph::VertexId src, graph::VertexId dst, double bias);
  bool StreamingDelete(graph::VertexId src, graph::VertexId dst);
  core::BatchResult ApplyBatch(const graph::UpdateList& updates,
                               util::ThreadPool* pool = nullptr);

  // The paper's literal Table 3 protocol (see AliasStore::ApplyBatchReload).
  void ApplyBatchReload(const graph::UpdateList& updates,
                        util::ThreadPool* pool = nullptr);

  void RebuildAll(util::ThreadPool* pool = nullptr);

  core::StoreMemoryStats MemoryStats() const;
  std::size_t MemoryBytes() const { return MemoryStats().TotalBytes(); }
  std::string CheckInvariants() const;

 private:
  void RebuildVertex(graph::VertexId v);

  std::vector<sampling::ItsSampler> cdfs_;
};

class ReservoirStore : public BaselineStoreBase {
 public:
  explicit ReservoirStore(graph::DynamicGraph graph,
                          util::ThreadPool* /*pool*/ = nullptr)
      : BaselineStoreBase(std::move(graph)) {}
  ReservoirStore(graph::DynamicGraph graph, core::BingoConfig config,
                 util::ThreadPool* /*pool*/ = nullptr)
      : BaselineStoreBase(std::move(graph), std::move(config)) {}

  graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const;

  void StreamingInsert(graph::VertexId src, graph::VertexId dst, double bias) {
    graph_.Insert(src, dst, bias);
  }
  bool StreamingDelete(graph::VertexId src, graph::VertexId dst);
  core::BatchResult ApplyBatch(const graph::UpdateList& updates,
                               util::ThreadPool* pool = nullptr);

  core::StoreMemoryStats MemoryStats() const {
    core::StoreMemoryStats stats;
    stats.graph_bytes = graph_.MemoryBytes();
    return stats;
  }
  std::size_t MemoryBytes() const { return graph_.MemoryBytes(); }
  std::string CheckInvariants() const { return {}; }  // graph is the structure
};

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_BASELINE_STORES_H_
