#include "src/walk/analytics.h"

#include <algorithm>

namespace bingo::walk {

std::vector<std::pair<graph::VertexId, double>> TopK(
    const std::vector<double>& scores, std::size_t k, graph::VertexId exclude) {
  std::vector<std::pair<graph::VertexId, double>> ranked;
  ranked.reserve(scores.size());
  for (graph::VertexId v = 0; v < scores.size(); ++v) {
    if (v != exclude && scores[v] > 0.0) {
      ranked.emplace_back(v, scores[v]);
    }
  }
  const std::size_t take = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(take),
                    ranked.end(), [](const auto& a, const auto& b) {
                      return a.second != b.second ? a.second > b.second
                                                  : a.first < b.first;
                    });
  ranked.resize(take);
  return ranked;
}

}  // namespace bingo::walk
