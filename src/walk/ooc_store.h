// TieredStore: the out-of-core walk store — an mmap-backed immutable CSR
// base tier (graph/csr_mmap.h) under a dynamic BingoStore overlay, glued by
// the walk-aware block cache (core/block_cache.h).
//
// Tiering rule: a vertex starts on the base tier (its adjacency is the CSR
// file's edge run). The first ApplyBatch update touching a base vertex
// *promotes* it — its base edges are folded into the overlay as synthetic
// inserts (original biases and timestamps, canonical order) ahead of the
// real updates, in one overlay batch — after which the overlay alone owns
// that vertex. New vertices beyond the CSR's range live on the overlay from
// birth. ApplyBatch semantics (duplicate-edge deletion rule, batch results,
// vertex growth, epoch ticks) are therefore exactly the overlay store's.
//
// Sampling semantics: exact inverse-transform sampling over the adjacency
// in canonical order — ONE NextUnit() variate per successful draw, zero on
// dead ends — for base and promoted vertices alike. Base draws scan the
// CSR edge run against the file's precomputed per-vertex bias total (the
// writer accumulated it in the same order, so the ITS is exact); promoted
// draws scan the overlay adjacency. This is deliberately its *own* sampler
// semantics (like the alias/ITS baseline stores): bit-identity holds
// between any two TieredStore walks of the same history — across cache
// budgets, thread counts, and drivers — not against the radix BingoStore.
//
// Residency contract (see block_cache.h): with no budget, any thread may
// demand-fault a block; with a budget, only the out-of-core scheduler maps
// and evicts between passes, and transparent reads of non-resident blocks
// go through pread into a per-thread buffer. NeighborsOf spans over base
// vertices are valid until the calling thread's next base-edge access to a
// *different* vertex (HasEdge deliberately uses a separate stack buffer so
// node2vec's probe loop never invalidates the span it holds).
//
// Constraints: the bias pipeline must be identity (base biases are
// pre-composed into the file; a decay/type gate would need to re-compose
// tiered edges it cannot reach), enforced by Open. AdvanceTime ticks pass
// through to the overlay, where — given the identity pipeline — they are
// bias no-ops.

#ifndef BINGO_SRC_WALK_OOC_STORE_H_
#define BINGO_SRC_WALK_OOC_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/core/block_cache.h"
#include "src/graph/csr_mmap.h"
#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace bingo::walk {

struct TieredStoreOptions {
  // Block-cache resident-byte budget; 0 = unconstrained (demand-map all).
  std::size_t memory_budget_bytes = 0;
  bool verify_crc = true;
};

class TieredStore {
 public:
  // Construct via Open(); a default-constructed store is empty and unusable.
  TieredStore() = default;

  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  // Opens a CSR container and mounts an empty overlay over it. Fails (with
  // a message) on a corrupt container or a non-identity bias pipeline.
  static std::unique_ptr<TieredStore> Open(const std::string& csr_path,
                                           core::BingoConfig config = {},
                                           TieredStoreOptions options = {},
                                           util::ThreadPool* pool = nullptr,
                                           std::string* error = nullptr);

  // ---- WalkStore / BatchSamplingStore / AdjacencyStore surface ----

  graph::VertexId NumVertices() const { return overlay_->NumVertices(); }
  uint64_t NumEdges() const { return base_live_edges_ + overlay_->NumEdges(); }

  graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const;
  // out[i] is bit-identical to SampleNeighbor(v, *rngs[i]) in sequence; the
  // base-edge run is fetched once for the whole lane batch.
  void SampleNeighborBatch(graph::VertexId v, util::Rng* const* rngs,
                           std::size_t n, graph::VertexId* out) const;
  void PrefetchVertex(graph::VertexId v) const;

  bool HasEdge(graph::VertexId src, graph::VertexId dst) const;
  std::span<const graph::Edge> NeighborsOf(graph::VertexId v) const;

  core::BatchResult ApplyBatch(const graph::UpdateList& updates,
                               util::ThreadPool* pool = nullptr);
  core::StoreMemoryStats MemoryStats() const;
  std::string CheckInvariants() const;

  // One block fetch amortizes even short fused runs on this store.
  static constexpr std::size_t kMinBatchRun = 2;

  // ---- block scheduling surface (walk/ooc.h driver) ----

  // CSR blocks 0..csr blocks-1, plus one virtual always-resident RAM block
  // holding every promoted and overlay-born vertex.
  uint32_t NumBlocks() const { return csr_.NumBlocks() + 1; }
  uint32_t RamBlock() const { return csr_.NumBlocks(); }
  uint32_t BlockOf(graph::VertexId v) const {
    if (v >= csr_.NumVertices() || promoted_[v] != 0) {
      return RamBlock();
    }
    return csr_.BlockOfVertex(v);
  }
  bool Budgeted() const { return cache_->Budgeted(); }

  // Scheduler hooks: map (evicting under budget) + pin, unpin, rank input,
  // rank query. All no-ops / -1 for the virtual RAM block.
  bool PrepareBlock(uint32_t b) const;
  void FinishBlockPass(uint32_t b) const;
  void SetParked(uint32_t b, uint64_t walkers) const;
  int64_t PickNextBlock() const { return cache_->PickNext(); }
  core::BlockCacheStats CacheStats() const { return cache_->Stats(); }

  // At most one out-of-core driver may run on a budgeted store at a time
  // (eviction between its passes would yank blocks from under a concurrent
  // pass). Engine/fused/superstep walks are always safe concurrently.
  bool TryBeginExclusiveWalk() const {
    return !exclusive_walk_.exchange(true, std::memory_order_acquire);
  }
  void EndExclusiveWalk() const {
    exclusive_walk_.store(false, std::memory_order_release);
  }

  // ---- superstep adapter (walk/partitioned.h walk-aware scheduling) ----

  int NumShards() const { return static_cast<int>(NumBlocks()); }
  int ShardOf(graph::VertexId v) const { return static_cast<int>(BlockOf(v)); }
  void PrepareShard(int s) const;

  // ---- introspection ----

  const graph::CsrMmap& Csr() const { return csr_; }
  const core::BingoStore& Overlay() const { return *overlay_; }
  uint64_t BaseLiveEdges() const { return base_live_edges_; }
  uint64_t PromotedVertices() const { return promoted_count_; }

 private:
  bool Promoted(graph::VertexId v) const {
    return v >= csr_.NumVertices() || promoted_[v] != 0;
  }
  // The base-tier edge run of an unpromoted vertex: resident block span,
  // transparent demand-map (unconstrained), or per-thread pread buffer
  // (budgeted, non-resident).
  std::span<const graph::Edge> BaseEdgesFor(graph::VertexId v) const;

  graph::CsrMmap csr_;
  std::unique_ptr<core::BlockCache> cache_;  // holds &csr_: store is pinned
  std::unique_ptr<core::BingoStore> overlay_;
  std::vector<uint8_t> promoted_;  // per base vertex
  uint64_t base_live_edges_ = 0;
  uint64_t promoted_count_ = 0;
  uint64_t uid_ = 0;  // keys the per-thread pread buffer across stores
  mutable std::atomic<bool> exclusive_walk_{false};
  mutable std::atomic<bool> io_failed_{false};
};

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_OOC_STORE_H_
