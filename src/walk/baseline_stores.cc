#include "src/walk/baseline_stores.h"

#include <algorithm>
#include <unordered_set>

namespace bingo::walk {

namespace {

// Rebuild-affected-vertices plumbing shared by AliasStore and ItsStore:
// apply all graph mutations, then rebuild each touched vertex once.
template <typename Store>
void ApplyBatchRebuilding(Store& store, graph::DynamicGraph& g,
                          const graph::UpdateList& updates,
                          util::ThreadPool* pool) {
  std::unordered_set<graph::VertexId> touched;
  touched.reserve(updates.size());
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kInsert) {
      g.Insert(u.src, u.dst, u.bias);
      touched.insert(u.src);
    } else {
      const auto idx = g.FindEarliest(u.src, u.dst);
      if (idx.has_value()) {
        g.SwapRemove(u.src, *idx);
        touched.insert(u.src);
      }
    }
  }
  std::vector<graph::VertexId> order(touched.begin(), touched.end());
  const auto rebuild_range = [&store, &order](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      store.RebuildVertexPublic(order[i]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, order.size(), rebuild_range, 256);
  } else {
    rebuild_range(0, order.size());
  }
}

// Applies updates to the graph only (no sampling-structure maintenance).
void ApplyUpdatesToGraph(graph::DynamicGraph& g, const graph::UpdateList& updates) {
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kInsert) {
      g.Insert(u.src, u.dst, u.bias);
    } else {
      const auto idx = g.FindEarliest(u.src, u.dst);
      if (idx.has_value()) {
        g.SwapRemove(u.src, *idx);
      }
    }
  }
}

std::vector<double> BiasesOf(const graph::DynamicGraph& g, graph::VertexId v) {
  const auto adj = g.Neighbors(v);
  std::vector<double> biases(adj.size());
  for (std::size_t i = 0; i < adj.size(); ++i) {
    biases[i] = adj[i].bias;
  }
  return biases;
}

}  // namespace

// -------------------------------------------------------------- AliasStore --

AliasStore::AliasStore(graph::DynamicGraph graph, util::ThreadPool* pool)
    : BaselineStoreBase(std::move(graph)) {
  tables_.resize(graph_.NumVertices());
  RebuildAll(pool);
}

void AliasStore::RebuildVertex(graph::VertexId v) {
  tables_[v].Build(BiasesOf(graph_, v));
}

void AliasStore::RebuildAll(util::ThreadPool* pool) {
  const auto range = [this](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      RebuildVertex(static_cast<graph::VertexId>(v));
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, tables_.size(), range, 1024);
  } else {
    range(0, tables_.size());
  }
}

graph::VertexId AliasStore::SampleNeighbor(graph::VertexId v, util::Rng& rng) const {
  const sampling::AliasTable& table = tables_[v];
  if (table.Empty() || table.TotalWeight() <= 0.0) {
    return graph::kInvalidVertex;
  }
  return graph_.NeighborAt(v, table.Sample(rng)).dst;
}

void AliasStore::StreamingInsert(graph::VertexId src, graph::VertexId dst,
                                 double bias) {
  graph_.Insert(src, dst, bias);
  RebuildVertex(src);  // O(d): the alias method's update cost (Table 1)
}

bool AliasStore::StreamingDelete(graph::VertexId src, graph::VertexId dst) {
  const auto idx = graph_.FindEarliest(src, dst);
  if (!idx.has_value()) {
    return false;
  }
  graph_.SwapRemove(src, *idx);
  RebuildVertex(src);
  return true;
}

void AliasStore::ApplyBatchReload(const graph::UpdateList& updates,
                                  util::ThreadPool* pool) {
  ApplyUpdatesToGraph(graph_, updates);
  RebuildAll(pool);
}

void AliasStore::ApplyBatch(const graph::UpdateList& updates,
                            util::ThreadPool* pool) {
  struct Adapter {
    AliasStore& store;
    void RebuildVertexPublic(graph::VertexId v) { store.RebuildVertex(v); }
  } adapter{*this};
  ApplyBatchRebuilding(adapter, graph_, updates, pool);
}

std::size_t AliasStore::MemoryBytes() const {
  std::size_t total = graph_.MemoryBytes() + tables_.capacity() * sizeof(tables_[0]);
  for (const auto& t : tables_) {
    total += t.MemoryBytes();
  }
  return total;
}

// ---------------------------------------------------------------- ItsStore --

ItsStore::ItsStore(graph::DynamicGraph graph, util::ThreadPool* pool)
    : BaselineStoreBase(std::move(graph)) {
  cdfs_.resize(graph_.NumVertices());
  RebuildAll(pool);
}

void ItsStore::RebuildVertex(graph::VertexId v) {
  cdfs_[v].Build(BiasesOf(graph_, v));
}

void ItsStore::RebuildAll(util::ThreadPool* pool) {
  const auto range = [this](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      RebuildVertex(static_cast<graph::VertexId>(v));
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, cdfs_.size(), range, 1024);
  } else {
    range(0, cdfs_.size());
  }
}

graph::VertexId ItsStore::SampleNeighbor(graph::VertexId v, util::Rng& rng) const {
  const sampling::ItsSampler& cdf = cdfs_[v];
  if (cdf.Size() == 0 || cdf.TotalWeight() <= 0.0) {
    return graph::kInvalidVertex;
  }
  return graph_.NeighborAt(v, cdf.Sample(rng)).dst;
}

void ItsStore::StreamingInsert(graph::VertexId src, graph::VertexId dst,
                               double bias) {
  graph_.Insert(src, dst, bias);
  cdfs_[src].Append(bias);  // O(1): ITS insertion (Table 1)
}

bool ItsStore::StreamingDelete(graph::VertexId src, graph::VertexId dst) {
  const auto idx = graph_.FindEarliest(src, dst);
  if (!idx.has_value()) {
    return false;
  }
  graph_.SwapRemove(src, *idx);
  RebuildVertex(src);  // O(d): swap-remove reorders, so the CDF is rebuilt
  return true;
}

void ItsStore::ApplyBatchReload(const graph::UpdateList& updates,
                                util::ThreadPool* pool) {
  ApplyUpdatesToGraph(graph_, updates);
  RebuildAll(pool);
}

void ItsStore::ApplyBatch(const graph::UpdateList& updates, util::ThreadPool* pool) {
  struct Adapter {
    ItsStore& store;
    void RebuildVertexPublic(graph::VertexId v) { store.RebuildVertex(v); }
  } adapter{*this};
  ApplyBatchRebuilding(adapter, graph_, updates, pool);
}

std::size_t ItsStore::MemoryBytes() const {
  std::size_t total = graph_.MemoryBytes() + cdfs_.capacity() * sizeof(cdfs_[0]);
  for (const auto& c : cdfs_) {
    total += c.MemoryBytes();
  }
  return total;
}

// ----------------------------------------------------------- ReservoirStore --

graph::VertexId ReservoirStore::SampleNeighbor(graph::VertexId v,
                                               util::Rng& rng) const {
  const auto adj = graph_.Neighbors(v);
  if (adj.empty()) {
    return graph::kInvalidVertex;
  }
  const uint32_t pick = sampling::WeightedReservoirPickFn(
      static_cast<uint32_t>(adj.size()),
      [&adj](uint32_t i) { return adj[i].bias; }, rng);
  return pick == 0xFFFFFFFFu ? graph::kInvalidVertex : adj[pick].dst;
}

bool ReservoirStore::StreamingDelete(graph::VertexId src, graph::VertexId dst) {
  const auto idx = graph_.FindEarliest(src, dst);
  if (!idx.has_value()) {
    return false;
  }
  graph_.SwapRemove(src, *idx);
  return true;
}

void ReservoirStore::ApplyBatch(const graph::UpdateList& updates,
                                util::ThreadPool* /*pool*/) {
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kInsert) {
      graph_.Insert(u.src, u.dst, u.bias);
    } else {
      const auto idx = graph_.FindEarliest(u.src, u.dst);
      if (idx.has_value()) {
        graph_.SwapRemove(u.src, *idx);
      }
    }
  }
}

}  // namespace bingo::walk
