#include "src/walk/baseline_stores.h"

#include <algorithm>
#include <cmath>

#include "src/walk/store.h"

namespace bingo::walk {

static_assert(WalkStore<AliasStore> && AdjacencyStore<AliasStore>);
static_assert(WalkStore<ItsStore> && AdjacencyStore<ItsStore>);
static_assert(WalkStore<ReservoirStore> && AdjacencyStore<ReservoirStore>);

namespace {

// Rebuild-affected-vertices plumbing shared by AliasStore and ItsStore:
// apply all graph mutations, then rebuild each touched vertex once.
template <typename Store>
core::BatchResult ApplyBatchRebuilding(Store& store, graph::DynamicGraph& g,
                                       const core::BingoConfig& config,
                                       const graph::UpdateList& updates,
                                       util::ThreadPool* pool) {
  core::BatchResult result;
  // Sorted+uniqued below instead of a hash set: the rebuild loop iterates
  // this, and rebuild order must not depend on hash order (determinism
  // contract; bingo_lint rule unordered-iteration).
  std::vector<graph::VertexId> touched;
  touched.reserve(updates.size());
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      continue;  // handled by AdvanceEpochFromBatch before this loop
    }
    if (u.kind == graph::Update::Kind::kInsert) {
      g.Insert(u.src, u.dst,
               config.pipeline.Compose(u.src, u.dst, u.bias, u.timestamp,
                                       config.logical_epoch),
               u.timestamp);
      touched.push_back(u.src);
      ++result.inserted;
    } else {
      const auto idx = g.FindEarliest(u.src, u.dst);
      if (idx.has_value()) {
        g.SwapRemove(u.src, *idx);
        touched.push_back(u.src);
        ++result.deleted;
      } else {
        ++result.skipped_deletes;
      }
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  const std::vector<graph::VertexId>& order = touched;
  const auto rebuild_range = [&store, &order](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      store.RebuildVertexPublic(order[i]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, order.size(), rebuild_range, 256);
  } else {
    rebuild_range(0, order.size());
  }
  return result;
}

// Applies updates to the graph only (no sampling-structure maintenance).
void ApplyUpdatesToGraph(graph::DynamicGraph& g,
                         const core::BingoConfig& config,
                         const graph::UpdateList& updates) {
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      continue;  // handled by AdvanceEpochFromBatch before this loop
    }
    if (u.kind == graph::Update::Kind::kInsert) {
      g.Insert(u.src, u.dst,
               config.pipeline.Compose(u.src, u.dst, u.bias, u.timestamp,
                                       config.logical_epoch),
               u.timestamp);
    } else {
      const auto idx = g.FindEarliest(u.src, u.dst);
      if (idx.has_value()) {
        g.SwapRemove(u.src, *idx);
      }
    }
  }
}

double BiasSum(const graph::DynamicGraph& g, graph::VertexId v) {
  double total = 0.0;
  for (const graph::Edge& e : g.Neighbors(v)) {
    total += e.bias;
  }
  return total;
}

// Sampler weight must track the adjacency bias mass (loose tolerance:
// the structures accumulate in different orders).
bool WeightMatches(double structure_total, double bias_total) {
  const double scale = std::max({1.0, structure_total, bias_total});
  return std::abs(structure_total - bias_total) <= 1e-6 * scale;
}

// Shared audit for AliasStore/ItsStore: one sampling structure per vertex,
// sized to the degree, with weight equal to the adjacency bias sum.
// `Structure` needs Size() and TotalWeight().
template <typename Structure>
std::string CheckPerVertexStructures(const graph::DynamicGraph& g,
                                     const std::vector<Structure>& structures,
                                     const char* what) {
  if (structures.size() != g.NumVertices()) {
    return std::string(what) + " count != vertex count";
  }
  for (graph::VertexId v = 0; v < g.NumVertices(); ++v) {
    if (structures[v].Size() != g.Degree(v)) {
      return "vertex " + std::to_string(v) + ": " + what + " size " +
             std::to_string(structures[v].Size()) + " != degree " +
             std::to_string(g.Degree(v));
    }
    if (!WeightMatches(structures[v].TotalWeight(), BiasSum(g, v))) {
      return "vertex " + std::to_string(v) + ": " + what + " weight drift";
    }
  }
  return {};
}

std::vector<double> BiasesOf(const graph::DynamicGraph& g, graph::VertexId v) {
  const auto adj = g.Neighbors(v);
  std::vector<double> biases(adj.size());
  for (std::size_t i = 0; i < adj.size(); ++i) {
    biases[i] = adj[i].bias;
  }
  return biases;
}

}  // namespace

// ------------------------------------------------------- BaselineStoreBase --

bool BaselineStoreBase::AdvanceEpochFromBatch(const graph::UpdateList& updates) {
  uint32_t advance_to = config_.logical_epoch;
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      advance_to = std::max(advance_to, u.timestamp);
    }
  }
  const uint32_t old_epoch = config_.logical_epoch;
  if (advance_to == old_epoch) {
    return false;
  }
  config_.logical_epoch = advance_to;
  if (!config_.pipeline.DecayActive()) {
    return false;
  }
  bool changed = false;
  for (graph::VertexId v = 0; v < graph_.NumVertices(); ++v) {
    const auto adj = graph_.Neighbors(v);
    for (uint32_t i = 0; i < adj.size(); ++i) {
      const double factor = config_.pipeline.RescaleFactor(
          old_epoch, advance_to, adj[i].timestamp);
      if (factor != 1.0) {
        graph_.SetBias(v, i, adj[i].bias * factor);
        changed = true;
      }
    }
  }
  return changed;
}

// -------------------------------------------------------------- AliasStore --

AliasStore::AliasStore(graph::DynamicGraph graph, util::ThreadPool* pool)
    : AliasStore(std::move(graph), core::BingoConfig{}, pool) {}

AliasStore::AliasStore(graph::DynamicGraph graph, core::BingoConfig config,
                       util::ThreadPool* pool)
    : BaselineStoreBase(std::move(graph), std::move(config)) {
  tables_.resize(graph_.NumVertices());
  RebuildAll(pool);
}

void AliasStore::RebuildVertex(graph::VertexId v) {
  tables_[v].Build(BiasesOf(graph_, v));
}

void AliasStore::RebuildAll(util::ThreadPool* pool) {
  const auto range = [this](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      RebuildVertex(static_cast<graph::VertexId>(v));
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, tables_.size(), range, 1024);
  } else {
    range(0, tables_.size());
  }
}

graph::VertexId AliasStore::SampleNeighbor(graph::VertexId v, util::Rng& rng) const {
  const sampling::AliasTable& table = tables_[v];
  if (table.Empty() || table.TotalWeight() <= 0.0) {
    return graph::kInvalidVertex;
  }
  return graph_.NeighborAt(v, table.Sample(rng)).dst;
}

void AliasStore::StreamingInsert(graph::VertexId src, graph::VertexId dst,
                                 double bias) {
  graph_.Insert(src, dst, bias);
  RebuildVertex(src);  // O(d): the alias method's update cost (Table 1)
}

bool AliasStore::StreamingDelete(graph::VertexId src, graph::VertexId dst) {
  const auto idx = graph_.FindEarliest(src, dst);
  if (!idx.has_value()) {
    return false;
  }
  graph_.SwapRemove(src, *idx);
  RebuildVertex(src);
  return true;
}

void AliasStore::ApplyBatchReload(const graph::UpdateList& updates,
                                  util::ThreadPool* pool) {
  AdvanceEpochFromBatch(updates);
  ApplyUpdatesToGraph(graph_, config_, updates);
  RebuildAll(pool);
}

core::BatchResult AliasStore::ApplyBatch(const graph::UpdateList& updates,
                                         util::ThreadPool* pool) {
  if (AdvanceEpochFromBatch(updates)) {
    RebuildAll(pool);  // decay touched every table's weights
  }
  struct Adapter {
    AliasStore& store;
    void RebuildVertexPublic(graph::VertexId v) { store.RebuildVertex(v); }
  } adapter{*this};
  return ApplyBatchRebuilding(adapter, graph_, config_, updates, pool);
}

core::StoreMemoryStats AliasStore::MemoryStats() const {
  core::StoreMemoryStats stats;
  stats.graph_bytes = graph_.MemoryBytes();
  stats.sampler_fixed_bytes = tables_.capacity() * sizeof(tables_[0]);
  for (const auto& t : tables_) {
    stats.sampler_dynamic_bytes += t.MemoryBytes();
  }
  return stats;
}

std::string AliasStore::CheckInvariants() const {
  return CheckPerVertexStructures(graph_, tables_, "alias table");
}

// ---------------------------------------------------------------- ItsStore --

ItsStore::ItsStore(graph::DynamicGraph graph, util::ThreadPool* pool)
    : ItsStore(std::move(graph), core::BingoConfig{}, pool) {}

ItsStore::ItsStore(graph::DynamicGraph graph, core::BingoConfig config,
                   util::ThreadPool* pool)
    : BaselineStoreBase(std::move(graph), std::move(config)) {
  cdfs_.resize(graph_.NumVertices());
  RebuildAll(pool);
}

void ItsStore::RebuildVertex(graph::VertexId v) {
  cdfs_[v].Build(BiasesOf(graph_, v));
}

void ItsStore::RebuildAll(util::ThreadPool* pool) {
  const auto range = [this](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      RebuildVertex(static_cast<graph::VertexId>(v));
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, cdfs_.size(), range, 1024);
  } else {
    range(0, cdfs_.size());
  }
}

graph::VertexId ItsStore::SampleNeighbor(graph::VertexId v, util::Rng& rng) const {
  const sampling::ItsSampler& cdf = cdfs_[v];
  if (cdf.Size() == 0 || cdf.TotalWeight() <= 0.0) {
    return graph::kInvalidVertex;
  }
  return graph_.NeighborAt(v, cdf.Sample(rng)).dst;
}

void ItsStore::StreamingInsert(graph::VertexId src, graph::VertexId dst,
                               double bias) {
  graph_.Insert(src, dst, bias);
  cdfs_[src].Append(bias);  // O(1): ITS insertion (Table 1)
}

bool ItsStore::StreamingDelete(graph::VertexId src, graph::VertexId dst) {
  const auto idx = graph_.FindEarliest(src, dst);
  if (!idx.has_value()) {
    return false;
  }
  graph_.SwapRemove(src, *idx);
  RebuildVertex(src);  // O(d): swap-remove reorders, so the CDF is rebuilt
  return true;
}

void ItsStore::ApplyBatchReload(const graph::UpdateList& updates,
                                util::ThreadPool* pool) {
  AdvanceEpochFromBatch(updates);
  ApplyUpdatesToGraph(graph_, config_, updates);
  RebuildAll(pool);
}

core::BatchResult ItsStore::ApplyBatch(const graph::UpdateList& updates,
                                       util::ThreadPool* pool) {
  if (AdvanceEpochFromBatch(updates)) {
    RebuildAll(pool);  // decay touched every CDF's weights
  }
  struct Adapter {
    ItsStore& store;
    void RebuildVertexPublic(graph::VertexId v) { store.RebuildVertex(v); }
  } adapter{*this};
  return ApplyBatchRebuilding(adapter, graph_, config_, updates, pool);
}

core::StoreMemoryStats ItsStore::MemoryStats() const {
  core::StoreMemoryStats stats;
  stats.graph_bytes = graph_.MemoryBytes();
  stats.sampler_fixed_bytes = cdfs_.capacity() * sizeof(cdfs_[0]);
  for (const auto& c : cdfs_) {
    stats.sampler_dynamic_bytes += c.MemoryBytes();
  }
  return stats;
}

std::string ItsStore::CheckInvariants() const {
  return CheckPerVertexStructures(graph_, cdfs_, "CDF");
}

// ----------------------------------------------------------- ReservoirStore --

graph::VertexId ReservoirStore::SampleNeighbor(graph::VertexId v,
                                               util::Rng& rng) const {
  const auto adj = graph_.Neighbors(v);
  if (adj.empty()) {
    return graph::kInvalidVertex;
  }
  const uint32_t pick = sampling::WeightedReservoirPickFn(
      static_cast<uint32_t>(adj.size()),
      [&adj](uint32_t i) { return adj[i].bias; }, rng);
  return pick == 0xFFFFFFFFu ? graph::kInvalidVertex : adj[pick].dst;
}

bool ReservoirStore::StreamingDelete(graph::VertexId src, graph::VertexId dst) {
  const auto idx = graph_.FindEarliest(src, dst);
  if (!idx.has_value()) {
    return false;
  }
  graph_.SwapRemove(src, *idx);
  return true;
}

core::BatchResult ReservoirStore::ApplyBatch(const graph::UpdateList& updates,
                                             util::ThreadPool* /*pool*/) {
  // Reservoir samples straight off the adjacency biases, so the epoch
  // rescale alone is the whole re-bucketing step.
  AdvanceEpochFromBatch(updates);
  core::BatchResult result;
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      continue;
    }
    if (u.kind == graph::Update::Kind::kInsert) {
      graph_.Insert(u.src, u.dst,
                    ComposeBias(u.src, u.dst, u.bias, u.timestamp),
                    u.timestamp);
      ++result.inserted;
    } else {
      const auto idx = graph_.FindEarliest(u.src, u.dst);
      if (idx.has_value()) {
        graph_.SwapRemove(u.src, *idx);
        ++result.deleted;
      } else {
        ++result.skipped_deletes;
      }
    }
  }
  return result;
}

}  // namespace bingo::walk
