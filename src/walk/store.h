// The store concept: the seam between sampler backends and the walk stack.
//
// Every backend — core::BingoStore, the alias/ITS/rejection baseline stores
// (walk/baseline_stores.h), and the sharded PartitionedBingoStore
// (walk/partitioned.h) — models WalkStore, so the engine (walk/engine.h),
// the applications (walk/apps.h), the analytics (walk/analytics.h), the
// incremental corpus (walk/incremental.h), the WalkService front-end
// (walk/service.h), the CLI, and the benchmark harnesses are written once
// against this surface and run unchanged on any backend.
//
// Determinism contract: a store must be a pure function of (initial edges,
// applied updates) — SampleNeighbor(v, rng) may consume any number of
// variates from `rng` but must not depend on hidden mutable state. Together
// with the engine's per-walker RNG streams this makes every workload
// bit-reproducible on each backend for any thread count, and bit-identical
// across backends that share sampler semantics (e.g. BingoStore vs.
// PartitionedBingoStore at any shard count, whose per-vertex samplers see
// the same adjacency). Backends with different sampling algorithms map the
// same RNG stream to different — identically distributed — choices.

#ifndef BINGO_SRC_WALK_STORE_H_
#define BINGO_SRC_WALK_STORE_H_

#include <concepts>
#include <span>
#include <string>

#include "src/core/store_types.h"
#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace bingo::walk {

// Minimal surface required to drive first-order walks. SampleNeighbor
// returns kInvalidVertex on dead ends. The walk engine and applications
// constrain on this (or AdjacencyStore), so ad-hoc instrumented stores in
// the benchmark harnesses stay cheap to write.
template <typename S>
concept SamplingStore =
    requires(const S& cs, graph::VertexId v, util::Rng& rng) {
      { cs.SampleNeighbor(v, rng) } -> std::same_as<graph::VertexId>;
      { cs.NumVertices() } -> std::convertible_to<graph::VertexId>;
    };

// Stores that additionally expose a lane-batched draw — out[i] must be
// bit-identical to SampleNeighbor(v, *rngs[i]) evaluated sequentially —
// plus an advisory prefetch hook. The fused walk passes (walk/fused.h) use
// these when present and fall back to per-walker SampleNeighbor otherwise,
// so modeling this concept is an optimization, never a requirement.
template <typename S>
concept BatchSamplingStore =
    SamplingStore<S> &&
    requires(const S& cs, graph::VertexId v, util::Rng* const* rngs,
             std::size_t n, graph::VertexId* out) {
      { cs.SampleNeighborBatch(v, rngs, n, out) };
      { cs.PrefetchVertex(v) };
    };

// Stores that can additionally answer adjacency probes: needed by
// node2vec's distance test (HasEdge) and uniform sampling (NeighborsOf).
template <typename S>
concept AdjacencyStore =
    SamplingStore<S> &&
    requires(const S& cs, graph::VertexId v) {
      { cs.HasEdge(v, v) } -> std::same_as<bool>;
      { cs.NeighborsOf(v) } -> std::convertible_to<std::span<const graph::Edge>>;
    };

// The full store surface: sampling plus batched dynamic updates and
// introspection. Every shipped backend models this; WalkService, the CLI,
// and the benchmark harnesses are written against it.
template <typename S>
concept WalkStore =
    SamplingStore<S> &&
    requires(const S& cs, S& s, const graph::UpdateList& updates,
             util::ThreadPool* pool) {
      { s.ApplyBatch(updates, pool) } -> std::same_as<core::BatchResult>;
      { cs.MemoryStats() } -> std::same_as<core::StoreMemoryStats>;
      { cs.CheckInvariants() } -> std::same_as<std::string>;
    };

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_STORE_H_
