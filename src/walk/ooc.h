// Out-of-core walk driver: block-pass scheduling over a TieredStore (or any
// store modeling BlockScheduledStore).
//
// Execution model (the randgraph engine's discipline, adapted to this
// repo's determinism contract): walkers live in per-block queues keyed by
// the block of their current vertex. Each scheduling round picks one block
// — the virtual RAM block first whenever it has walkers (draining it costs
// no I/O), otherwise the block with the most parked walkers (the cache's
// rank query) — maps it under the resident-byte budget, and runs one
// parallel *pass*: every queued walker advances stickily while its current
// vertex stays inside the block, then retires or parks in the queue of the
// block it crossed into. Queues past a threshold spill to disk as raw
// walker records (56 bytes each: id, position, length, RNG state) and
// drain back when their block is scheduled.
//
// Determinism: a walker's variate sequence is exactly the engine's —
// ForStream(seed, id), one StepperNext per hop, one Terminate draw after
// every successful hop — and its full state travels with it through queues
// and spill files. Walk output (steps, finished count, paths, visits) is
// therefore bit-identical to RunWalks on the same store at ANY cache
// budget, spill threshold, thread count, or block schedule.
//
// Concurrency: one RunOocWalks at a time per *budgeted* store (eviction
// between passes would yank mappings from under a concurrent pass); the
// driver enforces this via the store's exclusive-walk gate and reports an
// error instead of corrupting. Unconstrained stores only ever add
// mappings, so anything may run concurrently.

#ifndef BINGO_SRC_WALK_OOC_H_
#define BINGO_SRC_WALK_OOC_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/block_cache.h"
#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/scratch.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/engine.h"
#include "src/walk/store.h"

namespace bingo::walk {

// One parked walker: everything needed to resume its walk bit-exactly.
// Fixed-size and trivially copyable so spill files are raw record arrays.
struct OocWalker {
  uint64_t id = 0;
  graph::VertexId cur = graph::kInvalidVertex;
  graph::VertexId prev = graph::kInvalidVertex;
  uint32_t len = 0;  // successful steps taken so far
  util::Rng rng;
};
static_assert(std::is_trivially_copyable_v<OocWalker>,
              "spill files store raw OocWalker records");

struct OocWalkOptions {
  // Park queues at or past this walker count spill to disk after each
  // merge. 0 = never spill.
  std::size_t spill_threshold_walkers = 0;
  // Directory for spill files (required when spilling is enabled).
  std::string spill_dir;
};

struct OocWalkResult : WalkResult {
  uint64_t block_passes = 0;
  uint64_t walker_parks = 0;     // cross-block queue handoffs
  uint64_t spilled_walkers = 0;  // walker records written to spill files
  uint64_t block_loads = 0;      // cache loads attributable to this walk
  uint64_t block_evictions = 0;
  std::size_t peak_resident_bytes = 0;
  std::string error;  // non-empty: the walk aborted (results partial)
};

// Disk spill for park queues: one lazily-created file of raw OocWalker
// records per block. Single-scheduler use only (no internal locking).
class WalkerSpill {
 public:
  // Disabled when dir is empty. Spill files are removed on Drain and in
  // the destructor.
  WalkerSpill(std::string dir, uint32_t num_blocks);
  ~WalkerSpill();

  WalkerSpill(const WalkerSpill&) = delete;
  WalkerSpill& operator=(const WalkerSpill&) = delete;

  bool Enabled() const { return !dir_.empty(); }
  uint64_t Spilled(uint32_t block) const { return counts_[block]; }

  bool Spill(uint32_t block, const OocWalker* walkers, std::size_t count);
  // Appends block's spilled walkers (oldest first) to `out`, removes the
  // file. False on I/O failure (records may be lost; caller aborts).
  bool Drain(uint32_t block, std::vector<OocWalker>& out);

 private:
  std::string PathFor(uint32_t block) const;

  std::string dir_;
  std::vector<uint64_t> counts_;
};

// Stores the out-of-core driver can schedule: sampling plus the block
// surface (residency, rank-based scheduling, the exclusive-walk gate).
template <typename S>
concept BlockScheduledStore =
    SamplingStore<S> &&
    requires(const S& cs, graph::VertexId v, uint32_t b, uint64_t n) {
      { cs.NumBlocks() } -> std::convertible_to<uint32_t>;
      { cs.RamBlock() } -> std::convertible_to<uint32_t>;
      { cs.BlockOf(v) } -> std::convertible_to<uint32_t>;
      { cs.PrepareBlock(b) } -> std::convertible_to<bool>;
      { cs.FinishBlockPass(b) };
      { cs.SetParked(b, n) };
      { cs.PickNextBlock() } -> std::convertible_to<int64_t>;
      { cs.CacheStats() } -> std::convertible_to<core::BlockCacheStats>;
      { cs.Budgeted() } -> std::convertible_to<bool>;
      { cs.TryBeginExclusiveWalk() } -> std::convertible_to<bool>;
      { cs.EndExclusiveWalk() };
    };

template <typename Store, typename Stepper>
  requires BlockScheduledStore<Store>
OocWalkResult RunOocWalks(const Store& store, const WalkConfig& cfg,
                          const Stepper& stepper,
                          util::ThreadPool* pool = nullptr,
                          const OocWalkOptions& options = {}) {
  const graph::VertexId num_vertices =
      static_cast<graph::VertexId>(store.NumVertices());
  const uint64_t num_walkers =
      cfg.num_walkers == 0 ? num_vertices : cfg.num_walkers;
  OocWalkResult result;
  if (cfg.record_paths) {
    result.path_offsets.assign(num_walkers + 1, 0);
  }
  if (num_vertices == 0 || num_walkers == 0 ||
      (cfg.start_vertex != graph::kInvalidVertex &&
       cfg.start_vertex >= num_vertices)) {
    return result;
  }
  const bool exclusive = store.Budgeted();
  if (exclusive && !store.TryBeginExclusiveWalk()) {
    result.error =
        "concurrent out-of-core walks on one budgeted store are "
        "unsupported; use the engine driver for concurrent queries";
    return result;
  }
  const core::BlockCacheStats before = store.CacheStats();
  const uint32_t num_blocks = store.NumBlocks();
  const uint32_t ram = store.RamBlock();

  std::atomic<uint64_t> total_steps{0};
  std::atomic<uint64_t> finished_walkers{0};
  std::vector<std::atomic<uint32_t>> visit_acc(cfg.count_visits ? num_vertices
                                                                : 0);
  util::MemoryPool* scratch =
      pool != nullptr ? &pool->ScratchMemory() : nullptr;
  // Paths are keyed by walker id — exactly one pass (and one chunk within
  // it) appends to a given walker's buffer at a time.
  std::vector<util::ScratchVector<graph::VertexId>> walker_paths;
  if (cfg.record_paths) {
    walker_paths.reserve(num_walkers);
    for (uint64_t w = 0; w < num_walkers; ++w) {
      walker_paths.emplace_back(scratch);
    }
  }

  std::vector<std::vector<OocWalker>> queues(num_blocks);
  WalkerSpill spill(options.spill_threshold_walkers > 0 ? options.spill_dir
                                                        : std::string(),
                    num_blocks);
  uint64_t live = 0;
  for (uint64_t w = 0; w < num_walkers; ++w) {
    OocWalker walker;
    walker.id = w;
    walker.rng = util::Rng::ForStream(cfg.seed, w);
    walker.cur = cfg.start_vertex != graph::kInvalidVertex
                     ? cfg.start_vertex
                     : static_cast<graph::VertexId>(w % num_vertices);
    if (cfg.record_paths) {
      walker_paths[w].push_back(walker.cur);
    }
    if (cfg.count_visits) {
      visit_acc[walker.cur].fetch_add(1, std::memory_order_relaxed);
    }
    if (cfg.walk_length == 0) {
      continue;  // records its start, never runs — matches the engine
    }
    queues[store.BlockOf(walker.cur)].push_back(walker);
    ++live;
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    if (b != ram) {
      store.SetParked(b, queues[b].size());
    }
  }

  constexpr std::size_t kGrain = 256;
  std::vector<OocWalker> run;
  while (live > 0) {
    // RAM-block walkers drain first (no I/O to schedule); otherwise load
    // the block with the most parked walkers.
    int64_t picked = queues[ram].empty() ? store.PickNextBlock()
                                         : static_cast<int64_t>(ram);
    if (picked < 0) {
      result.error = "ooc scheduler: live walkers but no runnable block";
      break;
    }
    const uint32_t b = static_cast<uint32_t>(picked);
    ++result.block_passes;
    if (!store.PrepareBlock(b)) {
      result.error = "ooc scheduler: mapping a block failed (corrupt CSR?)";
      break;
    }
    run.clear();
    if (spill.Enabled() && spill.Spilled(b) > 0 && !spill.Drain(b, run)) {
      result.error = "ooc scheduler: draining a spill file failed";
      break;
    }
    run.insert(run.end(), queues[b].begin(), queues[b].end());
    queues[b].clear();
    if (run.empty()) {
      result.error = "ooc scheduler: scheduled an empty block";
      break;
    }

    const util::ChunkPlan plan =
        pool != nullptr
            ? util::ComputeChunkPlan(run.size(), kGrain, pool->NumThreads())
            : util::ChunkPlan{1, run.size()};
    std::vector<util::ScratchVector<OocWalker>> outboxes(plan.num_chunks);
    const auto run_chunk = [&](std::size_t chunk, std::size_t lo,
                               std::size_t hi) {
      uint64_t steps = 0;
      uint64_t finished = 0;
      util::ScratchVector<OocWalker> moved(scratch);
      util::ScratchVector<uint32_t> local_visits(scratch);
      if (cfg.count_visits) {
        local_visits.assign(num_vertices, 0);
      }
      for (std::size_t i = lo; i < hi; ++i) {
        OocWalker w = run[i];
        for (;;) {
          // Exactly the engine's per-hop variate order: one StepperNext,
          // then one Terminate draw after every successful hop.
          const graph::VertexId next =
              StepperNext(stepper, w.cur, w.prev, w.len, w.rng);
          if (next == graph::kInvalidVertex) {
            if (w.len > 0) {
              ++finished;
            }
            break;
          }
          w.prev = w.cur;
          w.cur = next;
          ++w.len;
          ++steps;
          if (cfg.record_paths) {
            walker_paths[w.id].push_back(next);
          }
          if (cfg.count_visits) {
            ++local_visits[next];
          }
          const bool term = stepper.Terminate(w.rng);
          if (term || w.len >= cfg.walk_length) {
            ++finished;
            break;
          }
          if (store.BlockOf(w.cur) != b) {
            moved.push_back(w);  // crossed out: park for its new block
            break;
          }
        }
      }
      total_steps.fetch_add(steps, std::memory_order_relaxed);
      finished_walkers.fetch_add(finished, std::memory_order_relaxed);
      if (cfg.count_visits) {
        for (graph::VertexId v = 0; v < num_vertices; ++v) {
          if (local_visits[v] != 0) {
            visit_acc[v].fetch_add(local_visits[v],
                                   std::memory_order_relaxed);
          }
        }
      }
      outboxes[chunk] = std::move(moved);
    };
    if (pool != nullptr) {
      pool->ParallelForChunks(0, run.size(), run_chunk, kGrain);
    } else {
      run_chunk(0, 0, run.size());
    }
    store.FinishBlockPass(b);

    uint64_t parked = 0;
    for (const auto& moved : outboxes) {
      for (const OocWalker& w : moved) {
        queues[store.BlockOf(w.cur)].push_back(w);
        ++parked;
      }
    }
    result.walker_parks += parked;
    live -= run.size() - parked;

    if (spill.Enabled()) {
      for (uint32_t q = 0; q < num_blocks; ++q) {
        if (q != ram &&
            queues[q].size() >= options.spill_threshold_walkers &&
            !queues[q].empty()) {
          if (spill.Spill(q, queues[q].data(), queues[q].size())) {
            result.spilled_walkers += queues[q].size();
            queues[q].clear();
            queues[q].shrink_to_fit();
          }
        }
      }
    }
    for (uint32_t q = 0; q < num_blocks; ++q) {
      if (q != ram) {
        store.SetParked(q, queues[q].size() + spill.Spilled(q));
      }
    }
  }
  if (exclusive) {
    store.EndExclusiveWalk();
  }

  const core::BlockCacheStats after = store.CacheStats();
  result.block_loads = after.loads - before.loads;
  result.block_evictions = after.evictions - before.evictions;
  result.peak_resident_bytes = after.peak_resident_bytes;
  result.total_steps = total_steps.load(std::memory_order_relaxed);
  result.finished_walkers = finished_walkers.load(std::memory_order_relaxed);
  if (cfg.count_visits) {
    result.visit_counts.resize(num_vertices);
    for (graph::VertexId v = 0; v < num_vertices; ++v) {
      result.visit_counts[v] = visit_acc[v].load(std::memory_order_relaxed);
    }
  }
  if (cfg.record_paths) {
    for (uint64_t w = 0; w < num_walkers; ++w) {
      result.path_offsets[w + 1] = walker_paths[w].size();
    }
    for (std::size_t i = 1; i < result.path_offsets.size(); ++i) {
      result.path_offsets[i] += result.path_offsets[i - 1];
    }
    result.paths.resize(result.path_offsets.back());
    for (uint64_t w = 0; w < num_walkers; ++w) {
      uint64_t cursor = result.path_offsets[w];
      for (const graph::VertexId v : walker_paths[w]) {
        result.paths[cursor++] = v;
      }
    }
  }
  return result;
}

// Application entry points, mirroring walk/apps.h config normalization
// exactly so OOC output is comparable record for record.

template <typename Store>
  requires BlockScheduledStore<Store>
OocWalkResult RunOocDeepWalk(const Store& store, const WalkConfig& cfg,
                             util::ThreadPool* pool = nullptr,
                             const OocWalkOptions& options = {}) {
  internal::FirstOrderStepper<Store> stepper{store};
  return RunOocWalks(store, cfg, stepper, pool, options);
}

template <typename Store>
  requires BlockScheduledStore<Store> && AdjacencyStore<Store>
OocWalkResult RunOocNode2vec(const Store& store, const WalkConfig& cfg,
                             const Node2vecParams& params = {},
                             util::ThreadPool* pool = nullptr,
                             const OocWalkOptions& options = {}) {
  internal::Node2vecStepper<Store> stepper{store, params,
                                           Node2vecFMax(params)};
  return RunOocWalks(store, cfg, stepper, pool, options);
}

template <typename Store>
  requires BlockScheduledStore<Store>
OocWalkResult RunOocPpr(const Store& store, WalkConfig cfg,
                        double stop_probability = 1.0 / 80.0,
                        util::ThreadPool* pool = nullptr,
                        const OocWalkOptions& options = {}) {
  cfg.count_visits = true;
  cfg.walk_length = PprCappedWalkLength(cfg.walk_length);
  internal::PprStepper<Store> stepper{store, stop_probability};
  return RunOocWalks(store, cfg, stepper, pool, options);
}

template <typename Store>
  requires BlockScheduledStore<Store> && AdjacencyStore<Store>
OocWalkResult RunOocMetapath(const Store& store, const WalkConfig& cfg,
                             const MetapathParams& params = {},
                             util::ThreadPool* pool = nullptr,
                             const OocWalkOptions& options = {}) {
  internal::MetapathStepper<Store> stepper{store, params};
  return RunOocWalks(store, cfg, stepper, pool, options);
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_OOC_H_
