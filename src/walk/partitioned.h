// 1-D partitioned Bingo (§9.1 supplement).
//
// The paper scales Bingo to multiple GPUs with KnightKing-style 1-D graph
// partitioning: each device owns the out-edges (and sampling structures) of
// a slice of the vertex set, and walkers — not sampling structures — are
// transferred between devices. Here each shard is a BingoStore and shards
// execute on pool threads; the superstep walk driver moves walkers between
// per-shard queues exactly like the walker-transfer design.

#ifndef BINGO_SRC_WALK_PARTITIONED_H_
#define BINGO_SRC_WALK_PARTITIONED_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/scratch.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/engine.h"
#include "src/walk/store.h"

namespace bingo::walk {

class PartitionedBingoStore {
 public:
  // Round-robin 1-D partitioning: vertex v lives on shard v % num_shards.
  PartitionedBingoStore(const graph::WeightedEdgeList& edges,
                        graph::VertexId num_vertices, int num_shards,
                        core::BingoConfig config = {},
                        util::ThreadPool* pool = nullptr);

  int NumShards() const { return static_cast<int>(shards_.size()); }
  graph::VertexId NumVertices() const { return num_vertices_; }

  int ShardOf(graph::VertexId v) const {
    return static_cast<int>(v % shards_.size());
  }

  graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const {
    return shards_[ShardOf(v)]->SampleNeighbor(v, rng);
  }

  // Adjacency probes route to the shard owning the source's out-edges, so
  // the sharded store answers them exactly like the whole-graph store.
  bool HasEdge(graph::VertexId src, graph::VertexId dst) const {
    return shards_[ShardOf(src)]->HasEdge(src, dst);
  }
  std::span<const graph::Edge> NeighborsOf(graph::VertexId v) const {
    return shards_[ShardOf(v)]->NeighborsOf(v);
  }
  uint64_t NumEdges() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->NumEdges();
    }
    return total;
  }

  void StreamingInsert(graph::VertexId src, graph::VertexId dst, double bias) {
    shards_[ShardOf(src)]->StreamingInsert(src, dst, bias);
  }
  bool StreamingDelete(graph::VertexId src, graph::VertexId dst) {
    return shards_[ShardOf(src)]->StreamingDelete(src, dst);
  }

  // Routes updates to their owning shards, then applies each shard's slice
  // as one batch; shards run in parallel.
  core::BatchResult ApplyBatch(const graph::UpdateList& updates,
                               util::ThreadPool* pool = nullptr);

  const core::BingoStore& Shard(int s) const { return *shards_[s]; }

  core::StoreMemoryStats MemoryStats() const;
  std::size_t MemoryBytes() const { return MemoryStats().TotalBytes(); }
  std::string CheckInvariants() const;

 private:
  graph::VertexId num_vertices_ = 0;
  std::vector<std::unique_ptr<core::BingoStore>> shards_;
};

// A store the superstep driver can route walkers over: sampling plus 1-D
// vertex-to-shard ownership. PartitionedBingoStore models this; so can any
// future multi-device front-end.
template <typename S>
concept ShardRoutedStore =
    SamplingStore<S> && requires(const S& cs, graph::VertexId v) {
      { cs.NumShards() } -> std::convertible_to<int>;
      { cs.ShardOf(v) } -> std::convertible_to<int>;
    };

// Stores whose shards need residency work before a pass — the out-of-core
// tiered store (walk/ooc_store.h) maps a shard's CSR block. The superstep
// driver then goes walk-aware: shards run one at a time, most-loaded queue
// first, each prepared just before its pass, so a budgeted block cache
// serves the whole walk with a single resident block.
template <typename S>
concept ShardPreparableStore =
    ShardRoutedStore<S> && requires(const S& cs, int s) {
      { cs.PrepareShard(s) };
    };

// The engine's full WalkResult accounting (steps, finishers, paths, visit
// counts — parity by construction), plus the walker-transfer communication
// counters.
struct PartitionedWalkResult : WalkResult {
  uint64_t walker_migrations = 0;  // cross-shard transfers (communication)
  uint64_t supersteps = 0;
};

// Store- and stepper-generic walker-transfer driver: every superstep
// advances each live walker one hop on its owning shard, then routes it to
// the shard of its new vertex. Walkers carry (cur, prev, len) — second-order
// steppers work across shard hops because adjacency probes route to the
// source's owning shard — and one persistent RNG stream each
// (ForStream(seed, id), state carried in the walker record), so distinct
// walkers can never collide onto one variate sequence and results are
// identical for any shard count, any thread count, and bit-identical to the
// shared-memory engine driving the same stepper over a store with the same
// sampler semantics.
template <ShardRoutedStore Store, typename Stepper>
PartitionedWalkResult RunPartitionedWalks(const Store& store,
                                          const WalkConfig& cfg,
                                          const Stepper& stepper,
                                          util::ThreadPool* pool = nullptr) {
  struct Walker {
    uint64_t id;
    graph::VertexId cur;
    graph::VertexId prev;
    uint32_t len;
    util::Rng rng;
  };
  static_assert(std::is_trivially_copyable_v<Walker>);
  const graph::VertexId num_vertices =
      static_cast<graph::VertexId>(store.NumVertices());
  const uint64_t num_walkers =
      cfg.num_walkers == 0 ? num_vertices : cfg.num_walkers;
  const int num_shards = store.NumShards();

  PartitionedWalkResult result;
  if (cfg.record_paths) {
    result.path_offsets.assign(num_walkers + 1, 0);
  }
  if (num_vertices == 0 || num_walkers == 0 ||
      (cfg.start_vertex != graph::kInvalidVertex &&
       cfg.start_vertex >= num_vertices)) {
    return result;  // same guard as the engine: no valid start, no walks
  }
  if (cfg.count_visits) {
    result.visit_counts.assign(num_vertices, 0);
  }

  // Every transient buffer of the superstep machinery — per-shard walker
  // queues, the outbox matrix, per-walker path buffers, per-shard visit
  // accumulators — leases recycled blocks from the executor's scratch pool,
  // so repeated runs (the serving path) allocate nothing in steady state.
  util::MemoryPool* scratch =
      pool != nullptr ? &pool->ScratchMemory() : nullptr;

  // Per-walker path buffers, indexed by walker id. A walker lives on exactly
  // one shard queue per superstep, so its buffer has a single writer.
  std::vector<util::ScratchVector<graph::VertexId>> walker_paths;
  if (cfg.record_paths) {
    walker_paths.reserve(num_walkers);
    for (uint64_t w = 0; w < num_walkers; ++w) {
      walker_paths.emplace_back(scratch);
    }
  }
  // Per-shard visit accumulators merged after the run (additions commute).
  std::vector<util::ScratchVector<uint32_t>> shard_visits;
  if (cfg.count_visits) {
    shard_visits.reserve(num_shards);
    for (int s = 0; s < num_shards; ++s) {
      shard_visits.emplace_back(scratch);
      shard_visits.back().assign(num_vertices, 0);
    }
  }

  std::vector<util::ScratchVector<Walker>> queues;
  queues.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    queues.emplace_back(scratch);
  }
  for (uint64_t w = 0; w < num_walkers; ++w) {
    const graph::VertexId start =
        cfg.start_vertex != graph::kInvalidVertex
            ? cfg.start_vertex
            : static_cast<graph::VertexId>(w % num_vertices);
    if (cfg.record_paths) {
      walker_paths[w].push_back(start);
    }
    if (cfg.count_visits) {
      ++shard_visits[store.ShardOf(start)][start];
    }
    if (cfg.walk_length > 0) {
      queues[store.ShardOf(start)].push_back(
          Walker{w, start, graph::kInvalidVertex, 0,
                 util::Rng::ForStream(cfg.seed, w)});
    }
  }

  std::vector<std::vector<util::ScratchVector<Walker>>> outboxes(num_shards);
  for (auto& row : outboxes) {
    row.reserve(num_shards);
    for (int to = 0; to < num_shards; ++to) {
      row.emplace_back(scratch);
    }
  }
  std::atomic<uint64_t> total_steps{0};
  std::atomic<uint64_t> finished_walkers{0};

  bool any_live = false;
  for (const auto& q : queues) {
    any_live = any_live || !q.empty();
  }
  std::vector<int> shard_order;  // walk-aware dispatch order (see below)
  while (any_live) {
    ++result.supersteps;
    const auto run_shard = [&](std::size_t s) {
      uint64_t local_steps = 0;
      uint64_t local_finished = 0;
      for (Walker walker : queues[s]) {
        // walker.len counts hops already taken == the step index the engine
        // would pass, so step-aware steppers stay bit-identical here.
        const graph::VertexId next = StepperNext(
            stepper, walker.cur, walker.prev, walker.len, walker.rng);
        if (next == graph::kInvalidVertex) {
          local_finished += walker.len > 0 ? 1 : 0;
          continue;  // dead end (or rejection-exhausted): walker retires
        }
        ++local_steps;
        walker.prev = walker.cur;
        walker.cur = next;
        ++walker.len;
        if (cfg.record_paths) {
          walker_paths[walker.id].push_back(next);
        }
        if (cfg.count_visits) {
          ++shard_visits[s][next];
        }
        // Same variate order as the engine: one Terminate draw after every
        // successful step, including the final one.
        const bool terminate = stepper.Terminate(walker.rng);
        if (terminate || walker.len >= cfg.walk_length) {
          ++local_finished;
          continue;
        }
        outboxes[s][store.ShardOf(next)].push_back(walker);
      }
      queues[s].clear();
      total_steps.fetch_add(local_steps, std::memory_order_relaxed);
      finished_walkers.fetch_add(local_finished, std::memory_order_relaxed);
    };
    if constexpr (ShardPreparableStore<Store>) {
      // Walk-aware order: non-empty shards, most parked walkers first
      // (ties: lowest id), residency prepared just before each pass.
      // Sequential by design — a budgeted cache then never needs more than
      // one resident block. Bit-identity is unaffected: walkers carry their
      // own RNG streams and the merge phases commute.
      shard_order.clear();
      for (int s = 0; s < num_shards; ++s) {
        if (!queues[s].empty()) {
          shard_order.push_back(s);
        }
      }
      std::sort(shard_order.begin(), shard_order.end(), [&](int a, int b) {
        if (queues[a].size() != queues[b].size()) {
          return queues[a].size() > queues[b].size();
        }
        return a < b;
      });
      for (const int s : shard_order) {
        store.PrepareShard(s);
        run_shard(static_cast<std::size_t>(s));
      }
    } else if (pool != nullptr) {
      pool->ParallelFor(0, static_cast<std::size_t>(num_shards), run_shard);
    } else {
      for (int s = 0; s < num_shards; ++s) {
        run_shard(static_cast<std::size_t>(s));
      }
    }

    // Exchange phase: deliver outboxes (the walker transfer).
    any_live = false;
    for (int from = 0; from < num_shards; ++from) {
      for (int to = 0; to < num_shards; ++to) {
        auto& box = outboxes[from][to];
        if (box.empty()) {
          continue;
        }
        if (from != to) {
          result.walker_migrations += box.size();
        }
        queues[to].append(box.begin(), box.end());
        box.clear();
        any_live = true;
      }
    }
  }
  result.total_steps = total_steps.load(std::memory_order_relaxed);
  result.finished_walkers = finished_walkers.load(std::memory_order_relaxed);

  if (cfg.count_visits) {
    for (const auto& visits : shard_visits) {
      for (graph::VertexId v = 0; v < num_vertices; ++v) {
        result.visit_counts[v] += visits[v];
      }
    }
  }
  if (cfg.record_paths) {
    for (uint64_t w = 0; w < num_walkers; ++w) {
      result.path_offsets[w + 1] =
          result.path_offsets[w] + walker_paths[w].size();
    }
    result.paths.reserve(result.path_offsets.back());
    for (uint64_t w = 0; w < num_walkers; ++w) {
      result.paths.insert(result.paths.end(), walker_paths[w].begin(),
                          walker_paths[w].end());
    }
  }
  return result;
}

// Application entry points on the walker-transfer path, mirroring
// RunDeepWalk / RunNode2vec / RunPpr / RunSimpleSampling in apps.h: the
// same steppers drive both execution models.
template <ShardRoutedStore Store>
PartitionedWalkResult RunPartitionedDeepWalk(const Store& store,
                                             const WalkConfig& cfg,
                                             util::ThreadPool* pool = nullptr) {
  internal::FirstOrderStepper<Store> stepper{store};
  return RunPartitionedWalks(store, cfg, stepper, pool);
}

template <ShardRoutedStore Store>
  requires AdjacencyStore<Store>
PartitionedWalkResult RunPartitionedNode2vec(const Store& store,
                                             const WalkConfig& cfg,
                                             const Node2vecParams& params = {},
                                             util::ThreadPool* pool = nullptr) {
  internal::Node2vecStepper<Store> stepper{store, params,
                                           Node2vecFMax(params)};
  return RunPartitionedWalks(store, cfg, stepper, pool);
}

template <ShardRoutedStore Store>
PartitionedWalkResult RunPartitionedPpr(const Store& store, WalkConfig cfg,
                                        double stop_probability = 1.0 / 80.0,
                                        util::ThreadPool* pool = nullptr) {
  cfg.count_visits = true;
  cfg.walk_length = PprCappedWalkLength(cfg.walk_length);
  internal::PprStepper<Store> stepper{store, stop_probability};
  return RunPartitionedWalks(store, cfg, stepper, pool);
}

template <ShardRoutedStore Store>
  requires AdjacencyStore<Store>
PartitionedWalkResult RunPartitionedSimpleSampling(
    const Store& store, const WalkConfig& cfg,
    util::ThreadPool* pool = nullptr) {
  internal::UniformStepper<Store> stepper{store};
  return RunPartitionedWalks(store, cfg, stepper, pool);
}

template <ShardRoutedStore Store>
  requires AdjacencyStore<Store>
PartitionedWalkResult RunPartitionedMetapath(const Store& store,
                                             const WalkConfig& cfg,
                                             const MetapathParams& params = {},
                                             util::ThreadPool* pool = nullptr) {
  internal::MetapathStepper<Store> stepper{store, params};
  return RunPartitionedWalks(store, cfg, stepper, pool);
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_PARTITIONED_H_
