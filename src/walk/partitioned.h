// 1-D partitioned Bingo (§9.1 supplement).
//
// The paper scales Bingo to multiple GPUs with KnightKing-style 1-D graph
// partitioning: each device owns the out-edges (and sampling structures) of
// a slice of the vertex set, and walkers — not sampling structures — are
// transferred between devices. Here each shard is a BingoStore and shards
// execute on pool threads; the superstep walk driver moves walkers between
// per-shard queues exactly like the walker-transfer design.

#ifndef BINGO_SRC_WALK_PARTITIONED_H_
#define BINGO_SRC_WALK_PARTITIONED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/walk/engine.h"

namespace bingo::walk {

class PartitionedBingoStore {
 public:
  // Round-robin 1-D partitioning: vertex v lives on shard v % num_shards.
  PartitionedBingoStore(const graph::WeightedEdgeList& edges,
                        graph::VertexId num_vertices, int num_shards,
                        core::BingoConfig config = {},
                        util::ThreadPool* pool = nullptr);

  int NumShards() const { return static_cast<int>(shards_.size()); }
  graph::VertexId NumVertices() const { return num_vertices_; }

  int ShardOf(graph::VertexId v) const {
    return static_cast<int>(v % shards_.size());
  }

  graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const {
    return shards_[ShardOf(v)]->SampleNeighbor(v, rng);
  }

  // Adjacency probes route to the shard owning the source's out-edges, so
  // the sharded store answers them exactly like the whole-graph store.
  bool HasEdge(graph::VertexId src, graph::VertexId dst) const {
    return shards_[ShardOf(src)]->HasEdge(src, dst);
  }
  std::span<const graph::Edge> NeighborsOf(graph::VertexId v) const {
    return shards_[ShardOf(v)]->NeighborsOf(v);
  }
  uint64_t NumEdges() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->NumEdges();
    }
    return total;
  }

  void StreamingInsert(graph::VertexId src, graph::VertexId dst, double bias) {
    shards_[ShardOf(src)]->StreamingInsert(src, dst, bias);
  }
  bool StreamingDelete(graph::VertexId src, graph::VertexId dst) {
    return shards_[ShardOf(src)]->StreamingDelete(src, dst);
  }

  // Routes updates to their owning shards, then applies each shard's slice
  // as one batch; shards run in parallel.
  core::BatchResult ApplyBatch(const graph::UpdateList& updates,
                               util::ThreadPool* pool = nullptr);

  const core::BingoStore& Shard(int s) const { return *shards_[s]; }

  core::StoreMemoryStats MemoryStats() const;
  std::size_t MemoryBytes() const { return MemoryStats().TotalBytes(); }
  std::string CheckInvariants() const;

 private:
  graph::VertexId num_vertices_ = 0;
  std::vector<std::unique_ptr<core::BingoStore>> shards_;
};

struct PartitionedWalkResult {
  uint64_t total_steps = 0;
  uint64_t walker_migrations = 0;  // cross-shard transfers (communication)
  uint64_t supersteps = 0;
};

// First-order walks over the partitioned store using the walker-transfer
// execution model: every superstep advances each live walker one hop on its
// owning shard, then routes it to the shard of its new vertex.
PartitionedWalkResult RunPartitionedDeepWalk(const PartitionedBingoStore& store,
                                             const WalkConfig& cfg,
                                             util::ThreadPool* pool = nullptr);

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_PARTITIONED_H_
