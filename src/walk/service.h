// WalkService: an epoch-versioned concurrent front-end over any store.
//
// The paper's headline property is O(1) biased sampling that stays fast
// while the graph mutates; this subsystem supplies the serving-side
// concurrency story: many walk queries run concurrently with batched
// updates, and no query ever observes a half-rebuilt vertex sampler.
//
// Design — left/right replication with snapshot epochs:
//
//   * The service owns TWO replicas of the store, built identically.
//     Queries Acquire() the front replica; ApplyBatch mutates the back
//     replica, publishes it (epoch++), then replays the same batch on the
//     old front so the pair converges. A replica is only mutated after its
//     readers have drained, so snapshots are immutable for their lifetime.
//   * Readers never wait for an in-flight store mutation: Acquire is one
//     brief critical section on the front mutex (shared with the writer's
//     O(1) pointer flip, never held across a store mutation) plus a
//     reader-count increment; the walk itself runs lock-free on the frozen
//     replica.
//   * Snapshot::Consistent() exposes a seqlock-style validation: the
//     replica's version counter is even and unchanged since Acquire, i.e.
//     the writer respected the drain protocol. Tests assert it after every
//     concurrent query.
//
// Update latency is 2x a store ApplyBatch (each batch is applied to both
// replicas) — the cost of never blocking readers. Memory is 2x one store.
// This mirrors snapshot semantics of core/snapshot.h (sampling structures
// are a pure function of the edge multiset, Theorem 4.1): both replicas are
// rebuilt from the same edges and replay the same update stream, so they
// stay bit-identical without copying derived state between them.
//
// Caveat: a thread must not call ApplyBatch — nor CheckInvariants or
// MemoryStats, which take the writer lock — while holding one of its own
// live Snapshots: the writer waits for that reader to drain and would
// deadlock (directly, or via the lock a concurrent writer already holds).

#ifndef BINGO_SRC_WALK_SERVICE_H_
#define BINGO_SRC_WALK_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "src/core/bingo_store.h"
#include "src/core/store_types.h"
#include "src/graph/types.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/store.h"

namespace bingo::walk {

struct ServiceStats {
  uint64_t epoch = 0;            // snapshots published since construction
  uint64_t queries_served = 0;   // snapshots handed out
  uint64_t batches_applied = 0;
  uint64_t updates_applied = 0;  // individual update requests ingested
  uint64_t drain_spins = 0;      // writer yields spent waiting for readers
};

template <WalkStore Store>
class WalkServiceT {
 public:
  // `factory` is invoked twice; each call must produce an identical store
  // (the store is a pure function of its inputs — Theorem 4.1).
  explicit WalkServiceT(const std::function<std::unique_ptr<Store>()>& factory,
                        util::ThreadPool* update_pool = nullptr)
      : update_pool_(update_pool) {
    replicas_[0].store = factory();
    replicas_[1].store = factory();
  }

  WalkServiceT(const WalkServiceT&) = delete;
  WalkServiceT& operator=(const WalkServiceT&) = delete;

  // An immutable view of one published epoch. Movable, not copyable; the
  // replica it pins cannot be mutated until it is destroyed.
  class Snapshot {
   public:
    Snapshot(Snapshot&& other) noexcept
        : store_(other.store_),
          readers_(other.readers_),
          version_(other.version_),
          version_at_acquire_(other.version_at_acquire_),
          epoch_(other.epoch_) {
      other.readers_ = nullptr;
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    Snapshot& operator=(Snapshot&&) = delete;
    ~Snapshot() {
      if (readers_ != nullptr) {
        // Release: our reads of the store happen-before the writer's
        // mutation (it acquires the counter before touching the replica).
        readers_->fetch_sub(1, std::memory_order_release);
      }
    }

    const Store& store() const { return *store_; }
    uint64_t epoch() const { return epoch_; }

    // True while the pinned replica has not been mutated since Acquire.
    // Under the service protocol this holds for the snapshot's whole
    // lifetime; a false return means the writer violated the drain.
    bool Consistent() const {
      const uint64_t v = version_->load(std::memory_order_acquire);
      return v == version_at_acquire_ && (v % 2) == 0;
    }

   private:
    friend class WalkServiceT;
    Snapshot(const Store* store, std::atomic<int64_t>* readers,
             const std::atomic<uint64_t>* version, uint64_t version_at_acquire,
             uint64_t epoch)
        : store_(store),
          readers_(readers),
          version_(version),
          version_at_acquire_(version_at_acquire),
          epoch_(epoch) {}

    const Store* store_;
    std::atomic<int64_t>* readers_;
    const std::atomic<uint64_t>* version_;
    uint64_t version_at_acquire_;
    uint64_t epoch_;
  };

  Snapshot Acquire() const {
    std::lock_guard<std::mutex> lock(front_mutex_);
    const Replica& r = replicas_[front_];
    r.readers.fetch_add(1, std::memory_order_relaxed);
    queries_.fetch_add(1, std::memory_order_relaxed);
    return Snapshot(r.store.get(), &r.readers, &r.version,
                    r.version.load(std::memory_order_relaxed),
                    epoch_.load(std::memory_order_relaxed));
  }

  uint64_t Epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Runs `fn(const Store&)` on a frozen snapshot and returns its result.
  template <typename Fn>
  auto Query(Fn&& fn) const {
    const Snapshot snap = Acquire();
    return std::forward<Fn>(fn)(snap.store());
  }

  // Convenience walk queries (one snapshot per call).
  WalkResult DeepWalk(const WalkConfig& cfg,
                      util::ThreadPool* pool = nullptr) const {
    return Query([&](const Store& s) { return RunDeepWalk(s, cfg, pool); });
  }
  WalkResult Ppr(const WalkConfig& cfg, double stop_probability = 1.0 / 80.0,
                 util::ThreadPool* pool = nullptr) const {
    return Query(
        [&](const Store& s) { return RunPpr(s, cfg, stop_probability, pool); });
  }
  WalkResult Node2vec(const WalkConfig& cfg, const Node2vecParams& params = {},
                      util::ThreadPool* pool = nullptr) const
    requires AdjacencyStore<Store>
  {
    return Query(
        [&](const Store& s) { return RunNode2vec(s, cfg, params, pool); });
  }

  // Applies one update batch: back replica first, publish (epoch++), then
  // replay on the old front. Writers are serialized; readers never wait.
  core::BatchResult ApplyBatch(const graph::UpdateList& updates) {
    std::lock_guard<std::mutex> wlock(update_mutex_);
    int back;
    {
      std::lock_guard<std::mutex> lock(front_mutex_);
      back = 1 - front_;
    }
    const core::BatchResult result = MutateReplica(replicas_[back], updates);
    {
      std::lock_guard<std::mutex> lock(front_mutex_);
      front_ = back;
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    const core::BatchResult replay = MutateReplica(replicas_[1 - back], updates);
    if (!(replay == result)) {
      // Replaying the identical batch on an identical replica must produce
      // the identical outcome; anything else means the pair diverged.
      replicas_diverged_.store(true, std::memory_order_relaxed);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    updates_count_.fetch_add(updates.size(), std::memory_order_relaxed);
    return result;
  }

  ServiceStats Stats() const {
    ServiceStats stats;
    stats.epoch = Epoch();
    stats.queries_served = queries_.load(std::memory_order_relaxed);
    stats.batches_applied = batches_.load(std::memory_order_relaxed);
    stats.updates_applied = updates_count_.load(std::memory_order_relaxed);
    stats.drain_spins = drain_spins_.load(std::memory_order_relaxed);
    return stats;
  }

  core::StoreMemoryStats MemoryStats() const {
    std::lock_guard<std::mutex> lock(update_mutex_);
    core::StoreMemoryStats total = replicas_[0].store->MemoryStats();
    total += replicas_[1].store->MemoryStats();
    return total;
  }

  // Audits both replicas and their agreement. Takes the writer lock, so it
  // must not race updates; queries may continue.
  std::string CheckInvariants() const {
    std::lock_guard<std::mutex> lock(update_mutex_);
    for (int i = 0; i < 2; ++i) {
      const std::string err = replicas_[i].store->CheckInvariants();
      if (!err.empty()) {
        return "replica " + std::to_string(i) + ": " + err;
      }
    }
    if (replicas_diverged_.load(std::memory_order_relaxed)) {
      return "replicas diverged: a batch replayed with a different outcome";
    }
    if (replicas_[0].store->NumVertices() != replicas_[1].store->NumVertices()) {
      return "replica vertex counts diverged";
    }
    if constexpr (requires { replicas_[0].store->NumEdges(); }) {
      if (replicas_[0].store->NumEdges() != replicas_[1].store->NumEdges()) {
        return "replica edge counts diverged";
      }
    }
    return {};
  }

 private:
  struct Replica {
    std::unique_ptr<Store> store;
    // Snapshots currently pinning this replica.
    mutable std::atomic<int64_t> readers{0};
    // Seqlock-style: odd while the writer mutates, bumped twice per batch.
    std::atomic<uint64_t> version{0};
  };

  core::BatchResult MutateReplica(Replica& r, const graph::UpdateList& updates) {
    // Drain: the release-decrement in ~Snapshot pairs with this acquire
    // load, ordering every reader access before our writes.
    while (r.readers.load(std::memory_order_acquire) != 0) {
      drain_spins_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    r.version.fetch_add(1, std::memory_order_release);  // odd: mutating
    const core::BatchResult result = r.store->ApplyBatch(updates, update_pool_);
    r.version.fetch_add(1, std::memory_order_release);  // even: stable
    return result;
  }

  Replica replicas_[2];
  mutable std::mutex front_mutex_;  // guards front_ flips and Acquire
  int front_ = 0;
  std::atomic<uint64_t> epoch_{0};
  mutable std::mutex update_mutex_;  // serializes writers
  util::ThreadPool* update_pool_;
  mutable std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> updates_count_{0};
  std::atomic<uint64_t> drain_spins_{0};
  std::atomic<bool> replicas_diverged_{false};
};

// The BingoStore instantiation is compiled once in service.cc.
extern template class WalkServiceT<core::BingoStore>;

using WalkService = WalkServiceT<core::BingoStore>;

// Builds a BingoStore-backed service over `edges` (both replicas built with
// `build_pool`; batches applied with `update_pool`).
std::unique_ptr<WalkService> MakeWalkService(
    const graph::WeightedEdgeList& edges, graph::VertexId num_vertices,
    core::BingoConfig config = {}, util::ThreadPool* build_pool = nullptr,
    util::ThreadPool* update_pool = nullptr);

// ------------------------------------------------------- stress driving --
//
// Shared by tests/walk_service_test.cc and `bingo_cli serve-bench`: N query
// threads issue walk queries against snapshots while the calling thread
// streams update batches through ApplyBatch.

struct ServiceStressOptions {
  int query_threads = 4;
  uint64_t batch_size = 1000;       // updates per ApplyBatch
  uint64_t walkers_per_query = 256;
  uint32_t walk_length = 10;
  uint64_t seed = 42;
};

struct ServiceStressReport {
  uint64_t queries = 0;
  uint64_t walk_steps = 0;               // neighbor samples served
  uint64_t inconsistent_snapshots = 0;   // protocol violations (must be 0)
  uint64_t min_epoch_observed = 0;
  uint64_t max_epoch_observed = 0;
  uint64_t batches = 0;
  double wall_seconds = 0.0;
  double update_seconds_total = 0.0;
  double update_seconds_max = 0.0;

  double SamplesPerSecond() const {
    return wall_seconds > 0.0 ? static_cast<double>(walk_steps) / wall_seconds
                              : 0.0;
  }
  double MeanUpdateSeconds() const {
    return batches > 0 ? update_seconds_total / static_cast<double>(batches)
                       : 0.0;
  }
};

ServiceStressReport RunWalkServiceStress(WalkService& service,
                                         const graph::UpdateList& updates,
                                         const ServiceStressOptions& options);

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_SERVICE_H_
