// WalkService: an epoch-versioned concurrent front-end over any store.
//
// The paper's headline property is O(1) biased sampling that stays fast
// while the graph mutates; this subsystem supplies the serving-side
// concurrency story: many walk queries run concurrently with batched
// updates, and no query ever observes a half-rebuilt vertex sampler.
//
// Design — left/right replication with snapshot epochs:
//
//   * The service owns TWO replicas of the store, built identically.
//     Queries Acquire() the front replica; ApplyBatch mutates the back
//     replica, publishes it (epoch++), then replays the same batch on the
//     old front so the pair converges. A replica is only mutated after its
//     readers have drained, so snapshots are immutable for their lifetime.
//   * Readers never wait for an in-flight store mutation: Acquire is one
//     brief critical section on the front mutex (shared with the writer's
//     O(1) pointer flip, never held across a store mutation) plus a
//     reader-count increment; the walk itself runs lock-free on the frozen
//     replica.
//   * Snapshot::Consistent() exposes a seqlock-style validation: the
//     replica's version counter is even and unchanged since Acquire, i.e.
//     the writer respected the drain protocol. Tests assert it after every
//     concurrent query.
//
// Update latency is 2x a store ApplyBatch (each batch is applied to both
// replicas) — the cost of never blocking readers. Memory is 2x one store.
// This mirrors snapshot semantics of core/snapshot.h (sampling structures
// are a pure function of the edge multiset, Theorem 4.1): both replicas are
// rebuilt from the same edges and replay the same update stream, so they
// stay bit-identical without copying derived state between them.
//
// Caveat: a thread must not call ApplyBatch — nor CheckInvariants or
// MemoryStats, which take the writer lock — while holding one of its own
// live Snapshots: the writer waits for that reader to drain and would
// deadlock (directly, or via the lock a concurrent writer already holds).

#ifndef BINGO_SRC_WALK_SERVICE_H_
#define BINGO_SRC_WALK_SERVICE_H_

#include <atomic>
#include <concepts>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/core/snapshot.h"
#include "src/core/store_types.h"
#include "src/core/wal.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/types.h"
#include "src/util/fileio.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/store.h"

namespace bingo::walk {

struct ServiceStats {
  uint64_t epoch = 0;            // snapshots published since construction
  uint64_t queries_served = 0;   // snapshots handed out
  uint64_t batches_applied = 0;
  uint64_t updates_applied = 0;  // individual update requests ingested
  uint64_t drain_spins = 0;      // writer yields spent waiting for readers
  uint64_t wal_records = 0;      // batches journaled to the WAL
  uint64_t wal_updates = 0;      // updates journaled to the WAL
  uint64_t checkpoints = 0;      // Checkpoint() calls that succeeded
  uint64_t compactions = 0;      // checkpoints that rewrote the base
};

// Stores that can participate in WAL-backed checkpointing: their durable
// state is the graph + config (Theorem 4.1 — sampling structures are a pure
// function of the adjacency), and they rebuild deterministically from a
// bulk-loaded graph.
template <typename S>
concept CheckpointableStore =
    requires(const S& s) {
      { s.Graph() } -> std::convertible_to<const graph::DynamicGraph&>;
      { s.Config() } -> std::convertible_to<const core::BingoConfig&>;
      { s.NumEdges() } -> std::convertible_to<uint64_t>;
    } &&
    std::constructible_from<S, graph::DynamicGraph, core::BingoConfig,
                            util::ThreadPool*>;

// Durability knobs for the WAL-backed checkpointing of a service.
struct WalPersistenceOptions {
  // fsync the WAL after every journaled batch: ApplyBatch returns only once
  // the batch is on disk. Off, durability is deferred to Checkpoint()/
  // SyncWal() (group commit) — a crash can lose batches since the last sync.
  bool fsync_on_commit = false;
  // Compact (rewrite the base, O(E)) once the journaled delta exceeds this
  // fraction of the store's live edge count; below it a checkpoint is just
  // a WAL sync, O(delta) bytes.
  double compact_fraction = 0.5;
};

// Outcome of one AttachWal/Checkpoint call.
struct CheckpointResult {
  bool ok = false;
  bool compacted = false;       // rewrote the base (O(E)); else O(delta)
  uint64_t bytes_written = 0;   // bytes this call persisted
  uint64_t wal_seq = 0;         // the durable state covers updates <= seq
};

// Outcome of RecoverWalkService / RecoverShardedWalkService.
struct RecoveryReport {
  bool ok = false;
  uint64_t base_edges = 0;            // edges loaded from base snapshot(s)
  uint64_t base_wal_seq = 0;          // sum of base header wal_seq values
  uint64_t wal_records_replayed = 0;  // complete records applied
  uint64_t wal_updates_replayed = 0;
  bool wal_tail_truncated = false;    // a torn tail was dropped (crash mid-append)
  graph::VertexId num_vertices = 0;
};

template <WalkStore Store>
class WalkServiceT {
 public:
  // `factory` is invoked twice; each call must produce an identical store
  // (the store is a pure function of its inputs — Theorem 4.1).
  explicit WalkServiceT(const std::function<std::unique_ptr<Store>()>& factory,
                        util::ThreadPool* update_pool = nullptr)
      : update_pool_(update_pool) {
    replicas_[0].store = factory();
    replicas_[1].store = factory();
  }

  WalkServiceT(const WalkServiceT&) = delete;
  WalkServiceT& operator=(const WalkServiceT&) = delete;

  // An immutable view of one published epoch. Movable, not copyable; the
  // replica it pins cannot be mutated until it is destroyed.
  class Snapshot {
   public:
    Snapshot(Snapshot&& other) noexcept
        : store_(other.store_),
          readers_(other.readers_),
          version_(other.version_),
          version_at_acquire_(other.version_at_acquire_),
          epoch_(other.epoch_) {
      other.readers_ = nullptr;
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    Snapshot& operator=(Snapshot&&) = delete;
    ~Snapshot() {
      if (readers_ != nullptr) {
        // Release: our reads of the store happen-before the writer's
        // mutation (it acquires the counter before touching the replica).
        readers_->fetch_sub(1, std::memory_order_release);
      }
    }

    const Store& store() const { return *store_; }
    uint64_t epoch() const { return epoch_; }

    // True while the pinned replica has not been mutated since Acquire.
    // Under the service protocol this holds for the snapshot's whole
    // lifetime; a false return means the writer violated the drain.
    bool Consistent() const {
      const uint64_t v = version_->load(std::memory_order_acquire);
      return v == version_at_acquire_ && (v % 2) == 0;
    }

   private:
    friend class WalkServiceT;
    Snapshot(const Store* store, std::atomic<int64_t>* readers,
             const std::atomic<uint64_t>* version, uint64_t version_at_acquire,
             uint64_t epoch)
        : store_(store),
          readers_(readers),
          version_(version),
          version_at_acquire_(version_at_acquire),
          epoch_(epoch) {}

    const Store* store_;
    std::atomic<int64_t>* readers_;
    const std::atomic<uint64_t>* version_;
    uint64_t version_at_acquire_;
    uint64_t epoch_;
  };

  Snapshot Acquire() const BINGO_EXCLUDES(front_mutex_) {
    util::MutexLock lock(front_mutex_);
    const Replica& r = replicas_[front_];
    r.readers.fetch_add(1, std::memory_order_relaxed);
    queries_.fetch_add(1, std::memory_order_relaxed);
    return Snapshot(r.store.get(), &r.readers, &r.version,
                    r.version.load(std::memory_order_relaxed),
                    epoch_.load(std::memory_order_relaxed));
  }

  uint64_t Epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Runs `fn(const Store&)` on a frozen snapshot and returns its result.
  template <typename Fn>
  auto Query(Fn&& fn) const {
    const Snapshot snap = Acquire();
    return std::forward<Fn>(fn)(snap.store());
  }

  // Convenience walk queries (one snapshot per call).
  WalkResult DeepWalk(const WalkConfig& cfg,
                      util::ThreadPool* pool = nullptr) const {
    return Query([&](const Store& s) { return RunDeepWalk(s, cfg, pool); });
  }
  WalkResult Ppr(const WalkConfig& cfg, double stop_probability = 1.0 / 80.0,
                 util::ThreadPool* pool = nullptr) const {
    return Query(
        [&](const Store& s) { return RunPpr(s, cfg, stop_probability, pool); });
  }
  WalkResult Node2vec(const WalkConfig& cfg, const Node2vecParams& params = {},
                      util::ThreadPool* pool = nullptr) const
    requires AdjacencyStore<Store>
  {
    return Query(
        [&](const Store& s) { return RunNode2vec(s, cfg, params, pool); });
  }

  // Applies one update batch: back replica first, publish (epoch++), then
  // replay on the old front. Writers are serialized; readers never wait.
  // With a WAL attached the batch is journaled BEFORE either replica is
  // touched (write-ahead), so recovery never misses an applied batch; a
  // journaling failure poisons the WAL (surfaced by CheckInvariants) and
  // the next Checkpoint() repairs durability by compacting.
  core::BatchResult ApplyBatch(const graph::UpdateList& updates)
      BINGO_EXCLUDES(update_mutex_, front_mutex_) {
    util::MutexLock wlock(update_mutex_);
    if (wal_ != nullptr) {
      if (wal_->Append(updates)) {
        wal_records_.fetch_add(1, std::memory_order_relaxed);
        wal_updates_.fetch_add(updates.size(), std::memory_order_relaxed);
        wal_updates_since_base_.fetch_add(updates.size(),
                                          std::memory_order_relaxed);
      } else {
        wal_failed_.store(true, std::memory_order_relaxed);
      }
    }
    int back;
    {
      util::MutexLock lock(front_mutex_);
      back = 1 - front_;
    }
    const core::BatchResult result = MutateReplica(replicas_[back], updates);
    {
      util::MutexLock lock(front_mutex_);
      front_ = back;
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    const core::BatchResult replay = MutateReplica(replicas_[1 - back], updates);
    if (!(replay == result)) {
      // Replaying the identical batch on an identical replica must produce
      // the identical outcome; anything else means the pair diverged.
      replicas_diverged_.store(true, std::memory_order_relaxed);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    updates_count_.fetch_add(updates.size(), std::memory_order_relaxed);
    return result;
  }

  // Advances the temporal-decay logical epoch as an ordinary one-update
  // batch, so the tick is journaled, applied to both replicas, and replayed
  // on recovery like any other mutation.
  void AdvanceTime(uint32_t new_epoch) {
    ApplyBatch({graph::MakeAdvanceTime(new_epoch)});
  }

  // --- durability: WAL-backed incremental checkpointing --------------------
  //
  // AttachWal(dir) makes `dir` the service's durability directory: it
  // writes a full base snapshot (`base.snapshot`), starts a fresh WAL
  // segment (`wal.log`), and journals every subsequent ApplyBatch before it
  // is applied. Checkpoint() is then incremental — a WAL fsync, O(delta)
  // bytes — until the journaled delta exceeds compact_fraction of the live
  // edge count, at which point it compacts: a new base is written
  // atomically and the WAL is reset (also atomically; a crash between the
  // two renames recovers correctly because replay skips records the base
  // already covers).
  //
  // Bit-identical recovery: writing a base also CANONICALIZES the live
  // replicas — both are rebuilt from the canonical edge list the base
  // persists, through the same publish protocol as ApplyBatch (queries keep
  // running, epoch advances). From then on the live state is, bit for bit,
  // `bulk-load(base) + replay(journaled batches)` — exactly what
  // RecoverWalkService reconstructs — so a recovered service walks
  // identically to one that never crashed, and keeps doing so under further
  // updates. (Canonicalization preserves every per-vertex distribution and
  // the duplicate-deletion order; only the internal adjacency/sampler
  // layout is normalized, the same normalization recovery performs.)
  //
  // The ApplyBatch caveat applies: never call these while holding a live
  // Snapshot of this service.

  // Attaches `dir` (created if needed) and writes the initial full base.
  CheckpointResult AttachWal(const std::string& dir,
                             WalPersistenceOptions options = {})
    requires CheckpointableStore<Store>
  {
    util::MutexLock wlock(update_mutex_);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    wal_dir_ = dir;
    persist_options_ = options;
    wal_.reset();
    // If `dir` already holds a WAL segment (re-attach over an old
    // durability dir), stamp the base past its last sequence: should we
    // crash after the base rename but before the WAL reset, recovery must
    // skip every stale record — the base subsumes this service's state.
    uint64_t base_seq = 0;
    const core::WalReplayResult stale =
        core::ReplayWal(dir + "/wal.log", UINT64_MAX, nullptr);
    if (stale.header_ok) {
      base_seq = stale.last_seq;
    }
    CheckpointResult result = WriteBaseLocked(base_seq);
    if (result.ok) {
      checkpoints_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  }

  // Checkpoints into the attached directory. `force_compact` overrides the
  // delta-fraction policy (the sharded service uses it to make compaction a
  // whole-service decision).
  CheckpointResult Checkpoint(
      std::optional<bool> force_compact = std::nullopt)
    requires CheckpointableStore<Store>
  {
    util::MutexLock wlock(update_mutex_);
    CheckpointResult result;
    if (wal_ == nullptr) {
      return result;  // not attached
    }
    const uint64_t delta =
        wal_updates_since_base_.load(std::memory_order_relaxed);
    const uint64_t live_edges = replicas_[0].store->NumEdges();
    const bool compact = force_compact.value_or(
        wal_failed_.load(std::memory_order_relaxed) ||
        static_cast<double>(delta) >
            persist_options_.compact_fraction *
                static_cast<double>(std::max<uint64_t>(live_edges, 1)));
    if (compact) {
      result = WriteBaseLocked(wal_->LastSeq());
      if (result.ok) {
        checkpoints_.fetch_add(1, std::memory_order_relaxed);
        compactions_.fetch_add(1, std::memory_order_relaxed);
      }
      return result;
    }
    if (!wal_->Sync()) {
      wal_failed_.store(true, std::memory_order_relaxed);
      return result;
    }
    result.ok = true;
    result.compacted = false;
    result.bytes_written = wal_->BytesWritten() - wal_bytes_at_last_checkpoint_;
    result.wal_seq = wal_->LastSeq();
    wal_bytes_at_last_checkpoint_ = wal_->BytesWritten();
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  // fsyncs the attached WAL (true when none is attached).
  bool SyncWal() BINGO_EXCLUDES(update_mutex_) {
    util::MutexLock wlock(update_mutex_);
    if (wal_ == nullptr) {
      return true;
    }
    if (!wal_->Sync()) {
      wal_failed_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  bool WalAttached() const BINGO_EXCLUDES(update_mutex_) {
    util::MutexLock wlock(update_mutex_);
    return wal_ != nullptr;
  }

  // Updates journaled since the current base (the incremental delta).
  uint64_t WalUpdatesSinceBase() const {
    return wal_updates_since_base_.load(std::memory_order_relaxed);
  }

  // True after an Append/Sync failure: the journal is behind the live
  // store. The next Checkpoint() repairs durability by compacting.
  bool WalFailed() const {
    return wal_failed_.load(std::memory_order_relaxed);
  }

  // Recovery hook: adopt an already-positioned WAL writer for `dir` after
  // the caller rebuilt this service from dir's base + replayed its WAL.
  // Journaling resumes with the next ApplyBatch.
  void AdoptWal(std::unique_ptr<core::WalWriter> wal, const std::string& dir,
                WalPersistenceOptions options, uint64_t updates_since_base)
      BINGO_EXCLUDES(update_mutex_) {
    util::MutexLock wlock(update_mutex_);
    wal_ = std::move(wal);
    wal_dir_ = dir;
    persist_options_ = options;
    wal_updates_since_base_.store(updates_since_base,
                                  std::memory_order_relaxed);
    wal_bytes_at_last_checkpoint_ = wal_ != nullptr ? wal_->BytesWritten() : 0;
  }

  ServiceStats Stats() const {
    ServiceStats stats;
    stats.epoch = Epoch();
    stats.queries_served = queries_.load(std::memory_order_relaxed);
    stats.batches_applied = batches_.load(std::memory_order_relaxed);
    stats.updates_applied = updates_count_.load(std::memory_order_relaxed);
    stats.drain_spins = drain_spins_.load(std::memory_order_relaxed);
    stats.wal_records = wal_records_.load(std::memory_order_relaxed);
    stats.wal_updates = wal_updates_.load(std::memory_order_relaxed);
    stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    stats.compactions = compactions_.load(std::memory_order_relaxed);
    return stats;
  }

  core::StoreMemoryStats MemoryStats() const BINGO_EXCLUDES(update_mutex_) {
    util::MutexLock lock(update_mutex_);
    core::StoreMemoryStats total = replicas_[0].store->MemoryStats();
    total += replicas_[1].store->MemoryStats();
    return total;
  }

  // Audits both replicas and their agreement. Takes the writer lock, so it
  // must not race updates; queries may continue.
  std::string CheckInvariants() const BINGO_EXCLUDES(update_mutex_) {
    util::MutexLock lock(update_mutex_);
    for (int i = 0; i < 2; ++i) {
      const std::string err = replicas_[i].store->CheckInvariants();
      if (!err.empty()) {
        return "replica " + std::to_string(i) + ": " + err;
      }
    }
    if (replicas_diverged_.load(std::memory_order_relaxed)) {
      return "replicas diverged: a batch replayed with a different outcome";
    }
    if (wal_failed_.load(std::memory_order_relaxed)) {
      return "wal append/sync failed: journal is behind the live store";
    }
    if (replicas_[0].store->NumVertices() != replicas_[1].store->NumVertices()) {
      return "replica vertex counts diverged";
    }
    if constexpr (requires { replicas_[0].store->NumEdges(); }) {
      if (replicas_[0].store->NumEdges() != replicas_[1].store->NumEdges()) {
        return "replica edge counts diverged";
      }
    }
    return {};
  }

 private:
  struct Replica {
    std::unique_ptr<Store> store;
    // Snapshots currently pinning this replica.
    mutable std::atomic<int64_t> readers{0};
    // Seqlock-style: odd while the writer mutates, bumped twice per batch.
    std::atomic<uint64_t> version{0};
  };

  // Writers are serialized by update_mutex_; the replica itself is guarded
  // by the drain/seqlock protocol (readers pin it via Snapshot), which a
  // mutex annotation cannot express — the seqlock tests and TSan cover it.
  core::BatchResult MutateReplica(Replica& r, const graph::UpdateList& updates)
      BINGO_REQUIRES(update_mutex_) {
    // Drain: the release-decrement in ~Snapshot pairs with this acquire
    // load, ordering every reader access before our writes.
    while (r.readers.load(std::memory_order_acquire) != 0) {
      drain_spins_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    r.version.fetch_add(1, std::memory_order_release);  // odd: mutating
    const core::BatchResult result = r.store->ApplyBatch(updates, update_pool_);
    r.version.fetch_add(1, std::memory_order_release);  // even: stable
    return result;
  }

  // Replaces one replica's store with a canonical rebuild, under the same
  // drain/seqlock protocol as MutateReplica.
  void RebuildReplica(Replica& r, const graph::WeightedEdgeList& edges)
    requires CheckpointableStore<Store>
  {
    update_mutex_.AssertHeld();
    while (r.readers.load(std::memory_order_acquire) != 0) {
      drain_spins_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    r.version.fetch_add(1, std::memory_order_release);  // odd: mutating
    const graph::VertexId n = r.store->NumVertices();
    const core::BingoConfig config = r.store->Config();
    r.store = std::make_unique<Store>(graph::DynamicGraph::FromEdges(n, edges),
                                      config, update_pool_);
    r.version.fetch_add(1, std::memory_order_release);  // even: stable
  }

  // Writes dir/base.snapshot covering wal_seq and starts a fresh WAL
  // segment; canonicalizes the replicas first so live state == what
  // recovery rebuilds. Caller holds update_mutex_ and owns the checkpoint/
  // compaction counters.
  CheckpointResult WriteBaseLocked(uint64_t wal_seq)
    requires CheckpointableStore<Store>
  {
    update_mutex_.AssertHeld();
    CheckpointResult result;
    result.compacted = true;
    result.wal_seq = wal_seq;

    // Canonicalize: both replicas become the bulk-load of the canonical
    // edge list the base persists (publish protocol, back first).
    const graph::WeightedEdgeList edges =
        core::CanonicalEdgeList(replicas_[0].store->Graph());
    int back;
    {
      util::MutexLock lock(front_mutex_);
      back = 1 - front_;
    }
    RebuildReplica(replicas_[back], edges);
    {
      util::MutexLock lock(front_mutex_);
      front_ = back;
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    RebuildReplica(replicas_[1 - back], edges);

    uint64_t base_bytes = 0;
    const Store& store = *replicas_[0].store;
    if (!core::SaveGraphSnapshot(store.Graph(), store.Config(),
                                 wal_dir_ + "/base.snapshot", wal_seq,
                                 &base_bytes)) {
      return result;
    }
    // Fresh WAL segment, crash-safe: the new file is complete (and fsync'd)
    // before it is renamed over wal.log. A crash between the base rename
    // and this one is benign — replay skips records with seq <= wal_seq.
    const std::string tmp = wal_dir_ + "/wal.log.new";
    auto wal = core::WalWriter::Create(
        tmp, wal_seq, core::WalOptions{persist_options_.fsync_on_commit});
    if (wal == nullptr) {
      return result;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, wal_dir_ + "/wal.log", ec);
    if (ec) {
      return result;
    }
    util::FsyncDirectory(wal_dir_);
    wal_ = std::move(wal);
    wal_failed_.store(false, std::memory_order_relaxed);
    wal_updates_since_base_.store(0, std::memory_order_relaxed);
    wal_bytes_at_last_checkpoint_ = wal_->BytesWritten();
    result.ok = true;
    result.bytes_written = base_bytes + wal_->BytesWritten();
    return result;
  }

  Replica replicas_[2];
  mutable util::Mutex front_mutex_;  // guards front_ flips and Acquire
  int front_ BINGO_GUARDED_BY(front_mutex_) = 0;
  std::atomic<uint64_t> epoch_{0};
  mutable util::Mutex update_mutex_;  // serializes writers
  util::ThreadPool* update_pool_;
  mutable std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> updates_count_{0};
  std::atomic<uint64_t> drain_spins_{0};
  std::atomic<bool> replicas_diverged_{false};

  // Persistence state (update_mutex_ guards it; counters are atomic so
  // Stats() stays lock-free).
  std::unique_ptr<core::WalWriter> wal_ BINGO_GUARDED_BY(update_mutex_);
  std::string wal_dir_ BINGO_GUARDED_BY(update_mutex_);
  WalPersistenceOptions persist_options_ BINGO_GUARDED_BY(update_mutex_);
  uint64_t wal_bytes_at_last_checkpoint_ BINGO_GUARDED_BY(update_mutex_) = 0;
  std::atomic<uint64_t> wal_updates_since_base_{0};
  std::atomic<uint64_t> wal_records_{0};
  std::atomic<uint64_t> wal_updates_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<bool> wal_failed_{false};
};

// The BingoStore instantiation is compiled once in service.cc.
extern template class WalkServiceT<core::BingoStore>;

using WalkService = WalkServiceT<core::BingoStore>;

// Builds a BingoStore-backed service over `edges` (both replicas built with
// `build_pool`; batches applied with `update_pool`).
std::unique_ptr<WalkService> MakeWalkService(
    const graph::WeightedEdgeList& edges, graph::VertexId num_vertices,
    core::BingoConfig config = {}, util::ThreadPool* build_pool = nullptr,
    util::ThreadPool* update_pool = nullptr);

// Rebuilds a BingoStore-backed service from a durability directory written
// by AttachWal/Checkpoint: bulk-loads `dir`/base.snapshot, replays the
// longest valid prefix of `dir`/wal.log past the base's sequence number,
// drops any torn tail, and re-arms journaling so the recovered service
// checkpoints incrementally from where the crashed one stopped. The result
// is bit-identical — walks and all — to a service that never crashed and
// had applied exactly the recovered batches. Returns nullptr when the base
// is missing/corrupt, the WAL header is corrupt, or `config` does not match
// the base's fingerprint. `num_vertices` 0 = the base header's count.
// `batch_hook`, when set, observes every replayed batch right after the
// service applied it (in WAL order, with its sequence number). The walk
// index layer uses this to re-run corpus repairs against the exact store
// state each batch produced — the step that makes a recovered corpus
// bit-identical to one that never crashed.
using RecoveryBatchHook =
    std::function<void(uint64_t seq, const graph::UpdateList& batch,
                       WalkService& service)>;

std::unique_ptr<WalkService> RecoverWalkService(
    const std::string& dir, core::BingoConfig config = {},
    graph::VertexId num_vertices = 0, util::ThreadPool* build_pool = nullptr,
    util::ThreadPool* update_pool = nullptr, WalPersistenceOptions options = {},
    RecoveryReport* report = nullptr, RecoveryBatchHook batch_hook = {});

// ------------------------------------------------------- stress driving --
//
// Shared by tests/walk_service_test.cc and `bingo_cli serve-bench`: N query
// threads issue walk queries against snapshots while the calling thread
// streams update batches through ApplyBatch.

struct ServiceStressOptions {
  int query_threads = 4;
  uint64_t batch_size = 1000;       // updates per ApplyBatch
  uint64_t walkers_per_query = 256;
  uint32_t walk_length = 10;
  uint64_t seed = 42;
};

struct ServiceStressReport {
  uint64_t queries = 0;
  uint64_t walk_steps = 0;               // neighbor samples served
  uint64_t inconsistent_snapshots = 0;   // protocol violations (must be 0)
  uint64_t min_epoch_observed = 0;
  uint64_t max_epoch_observed = 0;
  uint64_t batches = 0;
  double wall_seconds = 0.0;
  double update_seconds_total = 0.0;
  double update_seconds_max = 0.0;
  std::vector<double> batch_seconds;  // per-batch update latency, in order

  double SamplesPerSecond() const {
    return wall_seconds > 0.0 ? static_cast<double>(walk_steps) / wall_seconds
                              : 0.0;
  }
  double MeanUpdateSeconds() const {
    return batches > 0 ? update_seconds_total / static_cast<double>(batches)
                       : 0.0;
  }
  // Latency percentile over the recorded batches (q in [0, 1]).
  double UpdateSecondsQuantile(double q) const;
};

ServiceStressReport RunWalkServiceStress(WalkService& service,
                                         const graph::UpdateList& updates,
                                         const ServiceStressOptions& options);

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_SERVICE_H_
