#include "src/walk/batcher.h"

#include <algorithm>
#include <chrono>

namespace bingo::walk {

UpdateBatcher::UpdateBatcher(ShardedWalkService& service, BatcherOptions options,
                             util::ThreadPool* pool)
    : service_(service), options_(options) {
  if (pool == nullptr) {
    // Private writer pool: one thread per shard is enough to keep every
    // shard's drain independent; cap it so huge shard counts stay sane.
    util::PoolOptions pool_options = options_.writer_pool;
    if (pool_options.num_threads == 0) {
      pool_options.num_threads = std::min<std::size_t>(
          static_cast<std::size_t>(service_.NumShards()), 4);
    }
    owned_pool_ = std::make_unique<util::ThreadPool>(pool_options);
    pool = owned_pool_.get();
  }
  pool_ = pool;
  queues_.reserve(service_.NumShards());
  for (int s = 0; s < service_.NumShards(); ++s) {
    queues_.push_back(std::make_unique<ShardQueue>());
  }
  if (options_.auto_flush) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

UpdateBatcher::~UpdateBatcher() {
  if (flusher_.joinable()) {
    {
      util::MutexLock lock(flusher_mutex_);
      stopping_ = true;
    }
    flusher_cv_.NotifyAll();
    flusher_.join();
  }
  // Drain the leftovers. After Flush returns no writer task of ours is
  // queued or running (every posted task holds an active_drainers_ ref from
  // post to retire), so members — and an owned pool — can die safely.
  Flush();
}

void UpdateBatcher::ScheduleDrain(int shard, uint64_t BatcherStats::*reason) {
  {
    util::MutexLock lock(stats_mutex_);
    ++(stats_.*reason);
  }
  {
    util::MutexLock lock(idle_mutex_);
    ++active_drainers_;
  }
  pool_->Post([this, shard] { DrainLoop(shard); });
}

void UpdateBatcher::Submit(const graph::Update& update) {
  const int s = service_.ShardOf(update.src);
  ShardQueue& q = *queues_[s];
  // Count the update before the drainer can see it: queue_depth is
  // decremented by the drain that swaps it out, and counting afterwards
  // could underflow the depth if that drain wins the race.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  bool start_drain = false;
  {
    util::MutexLock lock(q.mutex);
    if (q.pending.empty()) {
      q.oldest.Reset();  // staleness clock starts at the first queued update
    }
    q.pending.push_back(update);
    if (!q.drain_active && q.pending.size() >= options_.max_batch_updates) {
      q.drain_active = true;
      start_drain = true;
    }
  }
  if (start_drain) {
    ScheduleDrain(s, &BatcherStats::size_flushes);
  }
}

void UpdateBatcher::SubmitAll(const graph::UpdateList& updates) {
  for (const graph::Update& u : updates) {
    Submit(u);
  }
}

void UpdateBatcher::DrainLoop(int s) {
  ShardQueue& q = *queues_[s];
  for (;;) {
    graph::UpdateList batch;
    {
      util::MutexLock lock(q.mutex);
      if (q.pending.empty()) {
        q.drain_active = false;
        break;
      }
      batch.swap(q.pending);
    }
    util::Timer timer;
    core::BatchResult result;
    bool applied = true;
    try {
      result = service_.ApplyShardBatch(s, batch);
    } catch (...) {
      // A throwing apply must not kill the drainer (the queue would wedge
      // with drain_active set and Flush would hang). Count the loss and
      // keep draining; Stats() surfaces the divergence.
      applied = false;
    }
    const double seconds = timer.Seconds();
    queue_depth_.fetch_sub(static_cast<int64_t>(batch.size()),
                           std::memory_order_relaxed);
    {
      util::MutexLock lock(stats_mutex_);
      ++stats_.batches;
      stats_.flush_seconds_total += seconds;
      stats_.flush_seconds_max = std::max(stats_.flush_seconds_max, seconds);
      if (applied) {
        stats_.flushed_updates += batch.size();
        stats_.applied += result;
      } else {
        ++stats_.drain_errors;
        stats_.dropped_updates += batch.size();
      }
    }
    if (applied && options_.on_batch_applied) {
      // After the stats update, outside every batcher lock: the callback
      // may take its own (e.g. the walk-index mutex) without ordering
      // against queue or stats mutexes. Dropped batches are not reported —
      // the callback sees exactly the updates the service saw.
      options_.on_batch_applied(s, batch);
    }
  }
  // Retire. Notifying under the mutex makes it safe for a Flush caller to
  // destroy the batcher as soon as its wait returns.
  util::MutexLock lock(idle_mutex_);
  --active_drainers_;
  idle_cv_.NotifyAll();
}

void UpdateBatcher::Flush() {
  for (;;) {
    // Kick a drainer for every shard with pending work and none in flight.
    for (int s = 0; s < service_.NumShards(); ++s) {
      ShardQueue& q = *queues_[s];
      bool start_drain = false;
      {
        util::MutexLock lock(q.mutex);
        if (!q.drain_active && !q.pending.empty()) {
          q.drain_active = true;
          start_drain = true;
        }
      }
      if (start_drain) {
        ScheduleDrain(s, &BatcherStats::manual_flushes);
      }
    }
    {
      util::MutexLock lock(idle_mutex_);
      while (active_drainers_ != 0) {
        idle_cv_.Wait(idle_mutex_);
      }
    }
    // A drainer may have retired just as new work landed (or a racing
    // Submit slipped in between its empty-check and our wait); re-scan and
    // go again until a fully idle pass.
    bool all_empty = true;
    for (const auto& queue : queues_) {
      util::MutexLock lock(queue->mutex);
      if (!queue->pending.empty() || queue->drain_active) {
        all_empty = false;
        break;
      }
    }
    if (all_empty) {
      if (options_.sync_wal_on_flush) {
        service_.SyncWal();
      }
      return;
    }
  }
}

BatcherStats UpdateBatcher::Stats() const {
  util::MutexLock lock(stats_mutex_);
  BatcherStats stats = stats_;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.queue_depth = static_cast<std::size_t>(
      std::max<int64_t>(0, queue_depth_.load(std::memory_order_relaxed)));
  stats.pool_post_errors = pool_->PostErrors();
  return stats;
}

void UpdateBatcher::FlusherLoop() {
  // Sweep at half the staleness bound so a queued update waits at most
  // ~1.5x max_delay_seconds before its drain starts.
  const auto interval = std::chrono::duration<double>(
      std::max(options_.max_delay_seconds / 2.0, 1e-4));
  util::MutexLock lock(flusher_mutex_);
  while (!stopping_) {
    flusher_cv_.WaitFor(flusher_mutex_, interval);
    if (stopping_) {
      return;
    }
    lock.Unlock();
    for (int s = 0; s < service_.NumShards(); ++s) {
      ShardQueue& q = *queues_[s];
      bool start_drain = false;
      {
        util::MutexLock qlock(q.mutex);
        if (!q.drain_active && !q.pending.empty() &&
            q.oldest.Seconds() >= options_.max_delay_seconds) {
          q.drain_active = true;
          start_drain = true;
        }
      }
      if (start_drain) {
        ScheduleDrain(s, &BatcherStats::time_flushes);
      }
    }
    lock.Lock();
  }
}

}  // namespace bingo::walk
