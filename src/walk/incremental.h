// Incremental walk-corpus maintenance on top of Bingo.
//
// The paper positions Bingo as orthogonal to systems like Wharf and FIRM
// (§7.2): those systems track which previously-computed walks a graph
// update invalidates, then rebuild each stale walk's sampling space from
// scratch — the step Bingo replaces with O(K) updates and O(1) resampling
// ("once the calculated random walks are identified, Bingo can help them
// rapidly update the random walks").
//
// This module implements the walk-maintenance half so the combination is
// usable end to end: it keeps a corpus of first-order walks, finds the
// walks affected by an update batch through a vertex -> walks index, and
// resamples each affected walk from its first visit to an updated vertex.
//
// Affected-walk semantics: an update with source vertex u changes u's
// transition distribution (insertions, deletions, and bias updates all do),
// so every walk that visits u must be resampled from its first visit to u.
// Transitions before that position are untouched: their source vertices'
// distributions did not change, and edges out of untouched vertices cannot
// have been deleted.
//
// The index may contain stale entries (a repaired walk's old suffix);
// candidates are verified against the actual walk before repair, and the
// index is rebuilt once the stale fraction crosses a threshold.
//
// The corpus is store-generic (src/walk/store.h): any backend that can
// sample, batch-apply updates, and answer HasEdge can maintain a corpus.
// `IncrementalWalkCorpus` aliases the BingoStore instantiation.

#ifndef BINGO_SRC_WALK_INCREMENTAL_H_
#define BINGO_SRC_WALK_INCREMENTAL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/walk/store.h"

namespace bingo::core {
class BingoStore;
}  // namespace bingo::core

namespace bingo::walk {

template <typename Store>
class IncrementalWalkCorpusT {
 public:
  struct Config {
    uint64_t num_walks = 0;     // 0 = one per vertex
    uint32_t walk_length = 80;  // maximum steps per walk
    uint64_t seed = 42;
    // Rebuild the vertex->walks index when stale entries exceed this
    // fraction of live ones.
    double index_rebuild_threshold = 1.0;
  };

  struct RepairStats {
    uint64_t updates_applied = 0;
    uint64_t candidate_walks = 0;  // index hits (may include stale entries)
    uint64_t walks_repaired = 0;
    uint64_t steps_resampled = 0;
    bool index_rebuilt = false;
  };

  IncrementalWalkCorpusT(const Store& store, Config config);

  // (Re)generates every walk from the store's current state and rebuilds
  // the index.
  void Generate(const Store& store, util::ThreadPool* pool = nullptr);

  // Applies `updates` to the store (batched, §5.2), then repairs every walk
  // that visits an updated source vertex.
  RepairStats ApplyUpdates(Store& store, const graph::UpdateList& updates,
                           util::ThreadPool* pool = nullptr);

  uint64_t NumWalks() const { return walks_.size(); }
  const std::vector<graph::VertexId>& Walk(uint64_t w) const { return walks_[w]; }

  // Sum of (len - 1) over all walks: the corpus's transition count.
  uint64_t TotalSteps() const;

  // Verifies that every transition of every walk is a live edge of the
  // store's graph. Returns the first violation or empty.
  std::string CheckWalksValid(const Store& store) const;

  std::size_t MemoryBytes() const;

 private:
  void ExtendWalk(const Store& store, uint64_t walk_id,
                  std::size_t from_position, util::Rng& rng);
  void IndexWalkSuffix(uint64_t walk_id, std::size_t from_position);
  void RebuildIndex();

  Config config_;
  std::vector<std::vector<graph::VertexId>> walks_;
  // vertex -> walk ids that visited it (append-only between rebuilds, so it
  // can contain stale or duplicate entries; consumers verify).
  std::vector<std::vector<uint32_t>> index_;
  uint64_t live_index_entries_ = 0;
  uint64_t stale_index_entries_ = 0;
  uint64_t repair_epoch_ = 0;
};

using IncrementalWalkCorpus = IncrementalWalkCorpusT<core::BingoStore>;

// The BingoStore instantiation is compiled once in incremental.cc.
extern template class IncrementalWalkCorpusT<core::BingoStore>;

// ------------------------------------------------------- implementations --

template <typename Store>
IncrementalWalkCorpusT<Store>::IncrementalWalkCorpusT(const Store& store,
                                                      Config config)
    : config_(config) {
  if (config_.num_walks == 0) {
    config_.num_walks = store.NumVertices();
  }
  walks_.resize(config_.num_walks);
  index_.resize(store.NumVertices());
}

template <typename Store>
void IncrementalWalkCorpusT<Store>::ExtendWalk(const Store& store,
                                               uint64_t walk_id,
                                               std::size_t from_position,
                                               util::Rng& rng) {
  std::vector<graph::VertexId>& walk = walks_[walk_id];
  walk.resize(from_position + 1);
  graph::VertexId cur = walk[from_position];
  while (walk.size() <= config_.walk_length) {
    const graph::VertexId next = store.SampleNeighbor(cur, rng);
    if (next == graph::kInvalidVertex) {
      break;
    }
    walk.push_back(next);
    cur = next;
  }
}

template <typename Store>
void IncrementalWalkCorpusT<Store>::IndexWalkSuffix(uint64_t walk_id,
                                                    std::size_t from_position) {
  const std::vector<graph::VertexId>& walk = walks_[walk_id];
  // Index each visited vertex once per walk (consecutive duplicates and
  // revisits add no information for the affected-walk query).
  for (std::size_t i = from_position; i < walk.size(); ++i) {
    auto& bucket = index_[walk[i]];
    if (bucket.empty() || bucket.back() != static_cast<uint32_t>(walk_id)) {
      bucket.push_back(static_cast<uint32_t>(walk_id));
      ++live_index_entries_;
    }
  }
}

template <typename Store>
void IncrementalWalkCorpusT<Store>::RebuildIndex() {
  for (auto& bucket : index_) {
    bucket.clear();
  }
  live_index_entries_ = 0;
  stale_index_entries_ = 0;
  for (uint64_t w = 0; w < walks_.size(); ++w) {
    IndexWalkSuffix(w, 0);
  }
}

template <typename Store>
void IncrementalWalkCorpusT<Store>::Generate(const Store& store,
                                             util::ThreadPool* pool) {
  const graph::VertexId n = store.NumVertices();
  if (n == 0) {  // no start vertices: every walk is empty
    for (auto& walk : walks_) {
      walk.clear();
    }
    RebuildIndex();
    return;
  }
  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      util::Rng rng = util::Rng::ForStream(config_.seed, w);
      walks_[w].clear();
      walks_[w].push_back(static_cast<graph::VertexId>(w % n));
      ExtendWalk(store, w, 0, rng);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, walks_.size(), run_range, 256);
  } else {
    run_range(0, walks_.size());
  }
  RebuildIndex();
}

template <typename Store>
typename IncrementalWalkCorpusT<Store>::RepairStats
IncrementalWalkCorpusT<Store>::ApplyUpdates(Store& store,
                                            const graph::UpdateList& updates,
                                            util::ThreadPool* pool) {
  RepairStats stats;
  stats.updates_applied = updates.size();
  ++repair_epoch_;

  // 1. Ingest the batch (O(K) per touched group, one rebuild per vertex).
  store.ApplyBatch(updates, pool);

  // 2. Updated source vertices = the distributions that changed.
  std::unordered_set<graph::VertexId> touched;
  touched.reserve(updates.size());
  for (const graph::Update& u : updates) {
    touched.insert(u.src);
  }

  // 3. Candidate walks from the index; dedup across touched vertices.
  std::unordered_set<uint32_t> candidates;
  for (const graph::VertexId v : touched) {
    if (v < index_.size()) {
      candidates.insert(index_[v].begin(), index_[v].end());
    }
  }
  stats.candidate_walks = candidates.size();

  // 4. Verify and repair: resample from the first visit of any touched
  //    vertex. Candidates whose recorded visit was repaired away are stale
  //    index hits and are skipped. Repairs run serially: the per-walk work
  //    is O(walk_length) with O(1) resampling, and the shared index
  //    bookkeeping would otherwise need locking.
  std::vector<uint32_t> to_repair(candidates.begin(), candidates.end());
  std::sort(to_repair.begin(), to_repair.end());  // deterministic order
  for (const uint32_t w : to_repair) {
    std::vector<graph::VertexId>& walk = walks_[w];
    std::size_t first = walk.size();
    for (std::size_t p = 0; p < walk.size(); ++p) {
      if (touched.count(walk[p])) {
        first = p;
        break;
      }
    }
    if (first == walk.size()) {
      continue;  // stale index entry
    }
    util::Rng rng = util::Rng::ForStream(config_.seed ^ (repair_epoch_ << 32), w);
    const std::size_t old_suffix = walk.size() - first;
    ExtendWalk(store, w, first, rng);
    stale_index_entries_ += old_suffix;
    ++stats.walks_repaired;
    stats.steps_resampled += walk.size() - first - 1;
    IndexWalkSuffix(w, first);
  }

  // 5. Compact the index once stale entries dominate.
  if (live_index_entries_ > 0 &&
      static_cast<double>(stale_index_entries_) >
          config_.index_rebuild_threshold *
              static_cast<double>(live_index_entries_)) {
    RebuildIndex();
    stats.index_rebuilt = true;
  }
  return stats;
}

template <typename Store>
uint64_t IncrementalWalkCorpusT<Store>::TotalSteps() const {
  uint64_t steps = 0;
  for (const auto& walk : walks_) {
    steps += walk.empty() ? 0 : walk.size() - 1;
  }
  return steps;
}

template <typename Store>
std::string IncrementalWalkCorpusT<Store>::CheckWalksValid(
    const Store& store) const {
  for (uint64_t w = 0; w < walks_.size(); ++w) {
    const auto& walk = walks_[w];
    for (std::size_t i = 1; i < walk.size(); ++i) {
      if (!store.HasEdge(walk[i - 1], walk[i])) {
        return "walk " + std::to_string(w) + " transition " +
               std::to_string(walk[i - 1]) + "->" + std::to_string(walk[i]) +
               " is not a live edge";
      }
    }
  }
  return {};
}

template <typename Store>
std::size_t IncrementalWalkCorpusT<Store>::MemoryBytes() const {
  std::size_t total = walks_.capacity() * sizeof(walks_[0]) +
                      index_.capacity() * sizeof(index_[0]);
  for (const auto& walk : walks_) {
    total += walk.capacity() * sizeof(graph::VertexId);
  }
  for (const auto& bucket : index_) {
    total += bucket.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_INCREMENTAL_H_
