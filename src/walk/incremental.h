// Incremental walk-corpus maintenance on top of Bingo.
//
// The paper positions Bingo as orthogonal to systems like Wharf and FIRM
// (§7.2): those systems track which previously-computed walks a graph
// update invalidates, then rebuild each stale walk's sampling space from
// scratch — the step Bingo replaces with O(K) updates and O(1) resampling
// ("once the calculated random walks are identified, Bingo can help them
// rapidly update the random walks").
//
// This module implements the walk-maintenance half so the combination is
// usable end to end: it keeps a corpus of first-order walks, finds the
// walks affected by an update batch through a vertex -> walks index, and
// resamples each affected walk from its first visit to an updated vertex.
// WalkIndexServiceT (src/walk/index_service.h) mounts a corpus on a live
// WalkService/ShardedWalkService and serves queries from it.
//
// Affected-walk semantics: an update with source vertex u changes u's
// transition distribution (insertions, deletions, and bias updates all do),
// so every walk that visits u must be resampled from its first visit to u.
// Transitions before that position are untouched: their source vertices'
// distributions did not change, and edges out of untouched vertices cannot
// have been deleted.
//
// The index may contain stale entries (a repaired walk's old suffix);
// candidates are verified against the actual walk before repair, and the
// index is rebuilt once the stale fraction crosses a threshold. The index
// (and the visit-count table) grow whenever the store's vertex set grows —
// an update batch may introduce brand-new vertex ids, and repaired walks
// must index through them, not skip (or overflow) them.
//
// Determinism: walk w's content depends only on (seed, repair history of w)
// — generation draws from ForStream(seed, w) and each repair in epoch e
// draws from ForStream(seed ^ (e << 32), w). Repairs therefore parallelize
// per walk with no cross-walk RNG coupling: resampling fans out over the
// executor while index/counter bookkeeping stays serial, so the corpus is
// bit-identical across thread counts.
//
// Reads (Generate / RepairAfterUpdates / CheckWalksValid) are generic over
// any sampling view — a concrete store or a service snapshot; the class's
// Store parameter only pins the legacy ApplyUpdates(Store&) entry point.
// `IncrementalWalkCorpus` aliases the BingoStore instantiation.

#ifndef BINGO_SRC_WALK_INCREMENTAL_H_
#define BINGO_SRC_WALK_INCREMENTAL_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/walk/store.h"

namespace bingo::core {
class BingoStore;
}  // namespace bingo::core

namespace bingo::walk {

// On-disk metadata of a corpus checkpoint. `wal_seq` fences the file
// against the service WAL: the corpus reflects every update with seq <=
// wal_seq and none after, so recovery replays repairs for (wal_seq, tip].
struct WalkCorpusMeta {
  uint64_t wal_seq = 0;
  uint64_t repair_epoch = 0;
  uint64_t seed = 0;
  uint64_t num_walks = 0;
  uint32_t walk_length = 0;
};

// Versioned + CRC'd corpus checkpoint (AtomicFileWriter temp+rename, header
// and payload checksummed, counts validated against file size before any
// allocation). Implemented in incremental.cc.
bool SaveWalkCorpusFile(const std::string& path, const WalkCorpusMeta& meta,
                        const std::vector<std::vector<graph::VertexId>>& walks,
                        uint64_t* bytes_written = nullptr,
                        std::string* error = nullptr);
bool LoadWalkCorpusFile(const std::string& path, WalkCorpusMeta* meta,
                        std::vector<std::vector<graph::VertexId>>* walks,
                        std::string* error = nullptr);

template <typename Store>
class IncrementalWalkCorpusT {
 public:
  struct Config {
    uint64_t num_walks = 0;     // 0 = one per vertex
    uint32_t walk_length = 80;  // maximum steps per walk
    uint64_t seed = 42;
    // Rebuild the vertex->walks index when stale entries exceed this
    // fraction of live ones.
    double index_rebuild_threshold = 1.0;
  };

  struct RepairStats {
    uint64_t updates_applied = 0;
    uint64_t candidate_walks = 0;  // index hits (may include stale entries)
    uint64_t walks_repaired = 0;
    uint64_t steps_resampled = 0;
    bool index_rebuilt = false;
  };

  IncrementalWalkCorpusT(graph::VertexId num_vertices, Config config);

  template <typename View>
    requires requires(const View& v) { v.NumVertices(); }
  IncrementalWalkCorpusT(const View& view, Config config)
      : IncrementalWalkCorpusT(
            static_cast<graph::VertexId>(view.NumVertices()), config) {}

  // (Re)generates every walk from the view's current state and rebuilds
  // the index and visit counts.
  template <typename View>
  void Generate(const View& view, util::ThreadPool* pool = nullptr);

  // Applies `updates` to the store (batched, §5.2), then repairs every walk
  // that visits an updated source vertex.
  RepairStats ApplyUpdates(Store& store, const graph::UpdateList& updates,
                           util::ThreadPool* pool = nullptr);

  // Repair half of ApplyUpdates, for callers whose store mutates through a
  // service: `view` must already reflect `updates` (e.g. a post-ApplyBatch
  // snapshot). Resampling parallelizes per walk on `pool`; output is
  // bit-identical to the serial order.
  template <typename View>
  RepairStats RepairAfterUpdates(const View& view,
                                 const graph::UpdateList& updates,
                                 util::ThreadPool* pool = nullptr);

  uint64_t NumWalks() const { return walks_.size(); }
  const std::vector<graph::VertexId>& Walk(uint64_t w) const { return walks_[w]; }

  // Sum of (len - 1) over all walks: the corpus's transition count.
  uint64_t TotalSteps() const;

  // Visits per vertex across all walk positions (maintained incrementally
  // under repairs). Normalizing gives the corpus's PPR-style score vector.
  const std::vector<uint64_t>& VisitCounts() const { return visit_counts_; }
  uint64_t TotalVisits() const { return total_visits_; }

  // Verifies that every transition of every walk is a live edge of the
  // view's graph. Returns the first violation or empty.
  template <typename View>
  std::string CheckWalksValid(const View& view) const;

  std::size_t MemoryBytes() const;

  const Config& config() const { return config_; }
  uint64_t live_index_entries() const { return live_index_entries_; }
  uint64_t stale_index_entries() const { return stale_index_entries_; }
  uint64_t repair_epoch() const { return repair_epoch_; }

  // Writes the corpus checkpoint, fencing it at `wal_seq`.
  bool SaveTo(const std::string& path, uint64_t wal_seq,
              uint64_t* bytes_written = nullptr,
              std::string* error = nullptr) const;

  // Restores walks + repair epoch from a checkpoint whose config matches
  // (seed / walk_length / num_walks), rebuilding the index and visit
  // counts. Returns the checkpoint's wal_seq fence, or nullopt on any
  // mismatch or corruption (corpus untouched in that case).
  std::optional<uint64_t> LoadFrom(const std::string& path,
                                   std::string* error = nullptr);

  // LoadFrom's adoption half for callers that already parsed a checkpoint:
  // verifies `meta` against the config, then installs the walks and rebuilds
  // the derived tables. Returns the wal_seq fence, nullopt on mismatch.
  std::optional<uint64_t> Restore(
      const WalkCorpusMeta& meta,
      std::vector<std::vector<graph::VertexId>>&& walks);

 private:
  template <typename View>
  void ExtendWalk(const View& view, uint64_t walk_id,
                  std::size_t from_position, util::Rng& rng);
  void IndexWalkSuffix(uint64_t walk_id, std::size_t from_position,
                       graph::VertexId skip_vertex = graph::kInvalidVertex);
  void RebuildIndex();
  void RebuildVisitCounts();
  // Grows the vertex-indexed tables; no-op when already large enough.
  void EnsureVertexCapacity(std::size_t num_vertices);

  Config config_;
  std::vector<std::vector<graph::VertexId>> walks_;
  // vertex -> walk ids that visited it (append-only between rebuilds, so it
  // can contain stale or duplicate entries; consumers verify).
  std::vector<std::vector<uint32_t>> index_;
  std::vector<uint64_t> visit_counts_;
  uint64_t total_visits_ = 0;
  uint64_t live_index_entries_ = 0;
  uint64_t stale_index_entries_ = 0;
  uint64_t repair_epoch_ = 0;
};

using IncrementalWalkCorpus = IncrementalWalkCorpusT<core::BingoStore>;

// The BingoStore instantiation is compiled once in incremental.cc.
extern template class IncrementalWalkCorpusT<core::BingoStore>;

// ------------------------------------------------------- implementations --

template <typename Store>
IncrementalWalkCorpusT<Store>::IncrementalWalkCorpusT(
    graph::VertexId num_vertices, Config config)
    : config_(config) {
  if (config_.num_walks == 0) {
    config_.num_walks = num_vertices;
  }
  walks_.resize(config_.num_walks);
  index_.resize(num_vertices);
  visit_counts_.resize(num_vertices, 0);
}

template <typename Store>
void IncrementalWalkCorpusT<Store>::EnsureVertexCapacity(
    std::size_t num_vertices) {
  if (num_vertices > index_.size()) {
    index_.resize(num_vertices);
  }
  if (num_vertices > visit_counts_.size()) {
    visit_counts_.resize(num_vertices, 0);
  }
}

template <typename Store>
template <typename View>
void IncrementalWalkCorpusT<Store>::ExtendWalk(const View& view,
                                               uint64_t walk_id,
                                               std::size_t from_position,
                                               util::Rng& rng) {
  std::vector<graph::VertexId>& walk = walks_[walk_id];
  walk.resize(from_position + 1);
  graph::VertexId cur = walk[from_position];
  while (walk.size() <= config_.walk_length) {
    const graph::VertexId next = view.SampleNeighbor(cur, rng);
    if (next == graph::kInvalidVertex) {
      break;
    }
    walk.push_back(next);
    cur = next;
  }
}

template <typename Store>
void IncrementalWalkCorpusT<Store>::IndexWalkSuffix(
    uint64_t walk_id, std::size_t from_position, graph::VertexId skip_vertex) {
  const std::vector<graph::VertexId>& walk = walks_[walk_id];
  // Index each visited vertex once per walk (consecutive duplicates and
  // revisits add no information for the affected-walk query). A repair
  // passes its pivot as `skip_vertex`: the pivot's original entry is still
  // live, so re-appending it would only inflate the bucket.
  for (std::size_t i = from_position; i < walk.size(); ++i) {
    const graph::VertexId v = walk[i];
    if (v == skip_vertex) {
      continue;
    }
    if (v >= index_.size()) {
      // The walk stepped into a vertex the tables have not seen yet (an
      // update batch can both create the vertex and route walks into it).
      EnsureVertexCapacity(static_cast<std::size_t>(v) + 1);
    }
    auto& bucket = index_[v];
    if (bucket.empty() || bucket.back() != static_cast<uint32_t>(walk_id)) {
      bucket.push_back(static_cast<uint32_t>(walk_id));
      ++live_index_entries_;
    }
  }
}

template <typename Store>
void IncrementalWalkCorpusT<Store>::RebuildIndex() {
  for (auto& bucket : index_) {
    bucket.clear();
  }
  live_index_entries_ = 0;
  stale_index_entries_ = 0;
  for (uint64_t w = 0; w < walks_.size(); ++w) {
    IndexWalkSuffix(w, 0);
  }
}

template <typename Store>
void IncrementalWalkCorpusT<Store>::RebuildVisitCounts() {
  std::fill(visit_counts_.begin(), visit_counts_.end(), 0);
  total_visits_ = 0;
  for (const auto& walk : walks_) {
    for (const graph::VertexId v : walk) {
      if (v >= visit_counts_.size()) {
        EnsureVertexCapacity(static_cast<std::size_t>(v) + 1);
      }
      ++visit_counts_[v];
      ++total_visits_;
    }
  }
}

template <typename Store>
template <typename View>
void IncrementalWalkCorpusT<Store>::Generate(const View& view,
                                             util::ThreadPool* pool) {
  const graph::VertexId n = view.NumVertices();
  EnsureVertexCapacity(n);
  if (n == 0) {  // no start vertices: every walk is empty
    for (auto& walk : walks_) {
      walk.clear();
    }
    RebuildIndex();
    RebuildVisitCounts();
    return;
  }
  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      util::Rng rng = util::Rng::ForStream(config_.seed, w);
      walks_[w].clear();
      walks_[w].push_back(static_cast<graph::VertexId>(w % n));
      ExtendWalk(view, w, 0, rng);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, walks_.size(), run_range, 256);
  } else {
    run_range(0, walks_.size());
  }
  RebuildIndex();
  RebuildVisitCounts();
}

template <typename Store>
typename IncrementalWalkCorpusT<Store>::RepairStats
IncrementalWalkCorpusT<Store>::ApplyUpdates(Store& store,
                                            const graph::UpdateList& updates,
                                            util::ThreadPool* pool) {
  // 1. Ingest the batch (O(K) per touched group, one rebuild per vertex).
  store.ApplyBatch(updates, pool);
  // 2..5. Repair against the mutated store.
  return RepairAfterUpdates(store, updates, pool);
}

template <typename Store>
template <typename View>
typename IncrementalWalkCorpusT<Store>::RepairStats
IncrementalWalkCorpusT<Store>::RepairAfterUpdates(
    const View& view, const graph::UpdateList& updates,
    util::ThreadPool* pool) {
  RepairStats stats;
  stats.updates_applied = updates.size();
  ++repair_epoch_;

  // The batch may have grown the vertex set (edges to brand-new ids);
  // size the index and visit table before any unchecked suffix write.
  EnsureVertexCapacity(view.NumVertices());

  // Updated source vertices = the distributions that changed. Kept as a
  // sorted+uniqued vector (not a hash set): candidate discovery and the
  // pivot scan below iterate it, and walk output must never depend on
  // hash order (bingo_lint rule unordered-iteration).
  std::vector<graph::VertexId> touched;
  touched.reserve(updates.size());
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      // A horizonless decay tick rescales every edge of a vertex by the
      // same factor, so no per-vertex distribution changes — no repairs.
      // (Its src is kInvalidVertex, not a real touched vertex.)
      continue;
    }
    touched.push_back(u.src);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Candidate walks from the index; dedup across touched vertices.
  std::vector<uint32_t> candidates;
  for (const graph::VertexId v : touched) {
    if (v < index_.size()) {
      candidates.insert(candidates.end(), index_[v].begin(),
                        index_[v].end());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  stats.candidate_walks = candidates.size();

  // Verify candidates and account for the suffixes about to be replaced
  // (serial: shared counters). A candidate whose recorded visit was
  // repaired away is a stale index hit and is skipped. The pivot
  // walk[first] keeps both its position and its index entry — only the
  // entries the old suffix contributed beyond it go stale.
  struct RepairTask {
    uint32_t walk;
    uint32_t first;
  };
  std::vector<RepairTask> tasks;
  tasks.reserve(candidates.size());
  const std::vector<uint32_t>& to_repair = candidates;  // already sorted
  std::vector<graph::VertexId> old_suffix;  // scratch, reused per walk
  for (const uint32_t w : to_repair) {
    std::vector<graph::VertexId>& walk = walks_[w];
    std::size_t first = walk.size();
    for (std::size_t p = 0; p < walk.size(); ++p) {
      if (std::binary_search(touched.begin(), touched.end(), walk[p])) {
        first = p;
        break;
      }
    }
    if (first == walk.size()) {
      continue;  // stale index entry
    }
    const graph::VertexId pivot = walk[first];
    old_suffix.clear();
    for (std::size_t i = first + 1; i < walk.size(); ++i) {
      --visit_counts_[walk[i]];
      --total_visits_;
      if (walk[i] != pivot) {
        old_suffix.push_back(walk[i]);
      }
    }
    std::sort(old_suffix.begin(), old_suffix.end());
    stale_index_entries_ += static_cast<uint64_t>(
        std::unique(old_suffix.begin(), old_suffix.end()) -
        old_suffix.begin());
    tasks.push_back({w, static_cast<uint32_t>(first)});
  }

  // Resample the affected suffixes in parallel: each task owns its walk and
  // its own ForStream(seed ^ epoch, walk) stream, so thread count and steal
  // order cannot change the output.
  const auto resample = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      util::Rng rng = util::Rng::ForStream(
          config_.seed ^ (repair_epoch_ << 32), tasks[i].walk);
      ExtendWalk(view, tasks[i].walk, tasks[i].first, rng);
    }
  };
  if (pool != nullptr && tasks.size() > 1) {
    pool->ParallelForChunked(0, tasks.size(), resample, 16);
  } else {
    resample(0, tasks.size());
  }

  // Serial bookkeeping over the new suffixes.
  for (const RepairTask& t : tasks) {
    const std::vector<graph::VertexId>& walk = walks_[t.walk];
    stats.steps_resampled += walk.size() - t.first - 1;
    for (std::size_t i = t.first + 1; i < walk.size(); ++i) {
      const graph::VertexId v = walk[i];
      if (v >= visit_counts_.size()) {
        EnsureVertexCapacity(static_cast<std::size_t>(v) + 1);
      }
      ++visit_counts_[v];
      ++total_visits_;
    }
    IndexWalkSuffix(t.walk, t.first + 1, /*skip_vertex=*/walk[t.first]);
  }
  stats.walks_repaired = tasks.size();

  // Compact the index once stale entries dominate.
  if (live_index_entries_ > 0 &&
      static_cast<double>(stale_index_entries_) >
          config_.index_rebuild_threshold *
              static_cast<double>(live_index_entries_)) {
    RebuildIndex();
    stats.index_rebuilt = true;
  }
  return stats;
}

template <typename Store>
uint64_t IncrementalWalkCorpusT<Store>::TotalSteps() const {
  uint64_t steps = 0;
  for (const auto& walk : walks_) {
    steps += walk.empty() ? 0 : walk.size() - 1;
  }
  return steps;
}

template <typename Store>
template <typename View>
std::string IncrementalWalkCorpusT<Store>::CheckWalksValid(
    const View& view) const {
  for (uint64_t w = 0; w < walks_.size(); ++w) {
    const auto& walk = walks_[w];
    for (std::size_t i = 1; i < walk.size(); ++i) {
      if (!view.HasEdge(walk[i - 1], walk[i])) {
        return "walk " + std::to_string(w) + " transition " +
               std::to_string(walk[i - 1]) + "->" + std::to_string(walk[i]) +
               " is not a live edge";
      }
    }
  }
  return {};
}

template <typename Store>
std::size_t IncrementalWalkCorpusT<Store>::MemoryBytes() const {
  std::size_t total = walks_.capacity() * sizeof(walks_[0]) +
                      index_.capacity() * sizeof(index_[0]) +
                      visit_counts_.capacity() * sizeof(uint64_t);
  for (const auto& walk : walks_) {
    total += walk.capacity() * sizeof(graph::VertexId);
  }
  for (const auto& bucket : index_) {
    total += bucket.capacity() * sizeof(uint32_t);
  }
  return total;
}

template <typename Store>
bool IncrementalWalkCorpusT<Store>::SaveTo(const std::string& path,
                                           uint64_t wal_seq,
                                           uint64_t* bytes_written,
                                           std::string* error) const {
  WalkCorpusMeta meta;
  meta.wal_seq = wal_seq;
  meta.repair_epoch = repair_epoch_;
  meta.seed = config_.seed;
  meta.num_walks = walks_.size();
  meta.walk_length = config_.walk_length;
  return SaveWalkCorpusFile(path, meta, walks_, bytes_written, error);
}

template <typename Store>
std::optional<uint64_t> IncrementalWalkCorpusT<Store>::LoadFrom(
    const std::string& path, std::string* error) {
  WalkCorpusMeta meta;
  std::vector<std::vector<graph::VertexId>> walks;
  if (!LoadWalkCorpusFile(path, &meta, &walks, error)) {
    return std::nullopt;
  }
  const auto fence = Restore(meta, std::move(walks));
  if (!fence.has_value() && error != nullptr) {
    *error = "corpus checkpoint config mismatch";
  }
  return fence;
}

template <typename Store>
std::optional<uint64_t> IncrementalWalkCorpusT<Store>::Restore(
    const WalkCorpusMeta& meta,
    std::vector<std::vector<graph::VertexId>>&& walks) {
  if (meta.seed != config_.seed || meta.walk_length != config_.walk_length ||
      meta.num_walks != walks_.size() || meta.num_walks != walks.size()) {
    return std::nullopt;
  }
  walks_ = std::move(walks);
  repair_epoch_ = meta.repair_epoch;
  RebuildIndex();
  RebuildVisitCounts();
  return meta.wal_seq;
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_INCREMENTAL_H_
