// Incremental walk-corpus maintenance on top of Bingo.
//
// The paper positions Bingo as orthogonal to systems like Wharf and FIRM
// (§7.2): those systems track which previously-computed walks a graph
// update invalidates, then rebuild each stale walk's sampling space from
// scratch — the step Bingo replaces with O(K) updates and O(1) resampling
// ("once the calculated random walks are identified, Bingo can help them
// rapidly update the random walks").
//
// This module implements the walk-maintenance half so the combination is
// usable end to end: it keeps a corpus of first-order walks, finds the
// walks affected by an update batch through a vertex -> walks index, and
// resamples each affected walk from its first visit to an updated vertex.
//
// Affected-walk semantics: an update with source vertex u changes u's
// transition distribution (insertions, deletions, and bias updates all do),
// so every walk that visits u must be resampled from its first visit to u.
// Transitions before that position are untouched: their source vertices'
// distributions did not change, and edges out of untouched vertices cannot
// have been deleted.
//
// The index may contain stale entries (a repaired walk's old suffix);
// candidates are verified against the actual walk before repair, and the
// index is rebuilt once the stale fraction crosses a threshold.

#ifndef BINGO_SRC_WALK_INCREMENTAL_H_
#define BINGO_SRC_WALK_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace bingo::walk {

class IncrementalWalkCorpus {
 public:
  struct Config {
    uint64_t num_walks = 0;     // 0 = one per vertex
    uint32_t walk_length = 80;  // maximum steps per walk
    uint64_t seed = 42;
    // Rebuild the vertex->walks index when stale entries exceed this
    // fraction of live ones.
    double index_rebuild_threshold = 1.0;
  };

  struct RepairStats {
    uint64_t updates_applied = 0;
    uint64_t candidate_walks = 0;  // index hits (may include stale entries)
    uint64_t walks_repaired = 0;
    uint64_t steps_resampled = 0;
    bool index_rebuilt = false;
  };

  IncrementalWalkCorpus(const core::BingoStore& store, Config config);

  // (Re)generates every walk from the store's current state and rebuilds
  // the index.
  void Generate(const core::BingoStore& store, util::ThreadPool* pool = nullptr);

  // Applies `updates` to the store (batched, §5.2), then repairs every walk
  // that visits an updated source vertex.
  RepairStats ApplyUpdates(core::BingoStore& store,
                           const graph::UpdateList& updates,
                           util::ThreadPool* pool = nullptr);

  uint64_t NumWalks() const { return walks_.size(); }
  const std::vector<graph::VertexId>& Walk(uint64_t w) const { return walks_[w]; }

  // Sum of (len - 1) over all walks: the corpus's transition count.
  uint64_t TotalSteps() const;

  // Verifies that every transition of every walk is a live edge of the
  // store's graph. Returns the first violation or empty.
  std::string CheckWalksValid(const core::BingoStore& store) const;

  std::size_t MemoryBytes() const;

 private:
  void ExtendWalk(const core::BingoStore& store, uint64_t walk_id,
                  std::size_t from_position, util::Rng& rng);
  void IndexWalkSuffix(uint64_t walk_id, std::size_t from_position);
  void RebuildIndex();

  Config config_;
  std::vector<std::vector<graph::VertexId>> walks_;
  // vertex -> walk ids that visited it (append-only between rebuilds, so it
  // can contain stale or duplicate entries; consumers verify).
  std::vector<std::vector<uint32_t>> index_;
  uint64_t live_index_entries_ = 0;
  uint64_t stale_index_entries_ = 0;
  uint64_t repair_epoch_ = 0;
};

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_INCREMENTAL_H_
