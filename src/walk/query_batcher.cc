#include "src/walk/query_batcher.h"

namespace bingo::walk {

// Compiled once; every other TU links against these (see the extern
// template declarations in the header).
template class QueryBatcherT<WalkService>;
template class QueryBatcherT<ShardedWalkService>;

}  // namespace bingo::walk
