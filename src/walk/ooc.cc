#include "src/walk/ooc.h"

#include <cstdio>

namespace bingo::walk {

WalkerSpill::WalkerSpill(std::string dir, uint32_t num_blocks)
    : dir_(std::move(dir)), counts_(num_blocks, 0) {}

WalkerSpill::~WalkerSpill() {
  if (dir_.empty()) {
    return;
  }
  for (uint32_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] > 0) {
      std::remove(PathFor(b).c_str());
    }
  }
}

std::string WalkerSpill::PathFor(uint32_t block) const {
  return dir_ + "/park-" + std::to_string(block) + ".bin";
}

bool WalkerSpill::Spill(uint32_t block, const OocWalker* walkers,
                        std::size_t count) {
  if (dir_.empty() || count == 0) {
    return false;
  }
  std::FILE* f = std::fopen(PathFor(block).c_str(), "ab");
  if (f == nullptr) {
    return false;
  }
  const std::size_t written = std::fwrite(walkers, sizeof(OocWalker), count, f);
  const bool ok = std::fclose(f) == 0 && written == count;
  if (ok) {
    counts_[block] += count;
  }
  return ok;
}

bool WalkerSpill::Drain(uint32_t block, std::vector<OocWalker>& out) {
  const uint64_t count = counts_[block];
  if (count == 0) {
    return true;
  }
  const std::string path = PathFor(block);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  const std::size_t base = out.size();
  out.resize(base + static_cast<std::size_t>(count));
  const std::size_t read =
      std::fread(out.data() + base, sizeof(OocWalker),
                 static_cast<std::size_t>(count), f);
  std::fclose(f);
  std::remove(path.c_str());
  counts_[block] = 0;
  if (read != count) {
    out.resize(base + read);
    return false;
  }
  return true;
}

}  // namespace bingo::walk
