// Parallel random-walk driver.
//
// The paper launches one walker per vertex and advances walks step by step,
// each step being one sample (§6 implementation notes iii). This driver
// runs walkers in parallel on the work-stealing executor with deterministic
// per-walker RNG streams; results are identical for any thread count, any
// steal order, any pinning, and for any store backend driving the stepper
// (see src/walk/store.h).
//
// A Stepper supplies the application logic:
//
//   struct Stepper {
//     // Next vertex, or graph::kInvalidVertex to stop (dead end / reject).
//     graph::VertexId Next(graph::VertexId cur, graph::VertexId prev,
//                          util::Rng& rng) const;
//     // Post-step termination test (e.g. PPR's stop probability).
//     bool Terminate(util::Rng& rng) const;
//   };
//
// Step-aware steppers (metapath walks, whose eligible target type is a
// function of the step index) instead expose
//   Next(cur, prev, uint32_t step, rng)
// where `step` is the 0-based index of the transition being taken. Every
// driver dispatches through StepperNext below, so both shapes run on the
// engine, the superstep model, and the fused pass without adaptation.
//
// Merging is lock-free end to end: step/walker totals and per-vertex visit
// counts accumulate through relaxed atomics, and per-chunk path buffers
// land in a pre-sized slot array indexed by chunk id — the executor's chunk
// plan is a pure function of (range, grain, thread count), so every chunk
// has exactly one writer and its slot. The buffers themselves are
// ScratchVectors leasing recycled blocks from the executor's scratch
// MemoryPool (sharded by worker id): in the steady state a RunWalks call
// performs zero system allocations for chunk buffers.

#ifndef BINGO_SRC_WALK_ENGINE_H_
#define BINGO_SRC_WALK_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/scratch.h"
#include "src/util/thread_pool.h"
#include "src/walk/store.h"

namespace bingo::walk {

struct WalkConfig {
  uint64_t num_walkers = 0;   // 0 = one per vertex
  uint32_t walk_length = 80;  // maximum steps (stops earlier on dead ends)
  uint64_t seed = 42;
  bool record_paths = false;   // collect full paths (embedding corpora)
  bool count_visits = false;   // per-vertex visit frequencies (PPR)
  // When set, every walker starts here instead of at (walker id mod
  // num_vertices) — single-source queries (personalized PageRank) run on
  // the same engine and merge path as whole-graph workloads.
  graph::VertexId start_vertex = graph::kInvalidVertex;
};

// Uniform dispatch over the two stepper shapes. `step` is the 0-based index
// of the transition about to be taken (== number of hops already taken);
// classic steppers never see it, so their variate sequences are untouched.
template <typename Stepper>
graph::VertexId StepperNext(const Stepper& stepper, graph::VertexId cur,
                            graph::VertexId prev, uint32_t step,
                            util::Rng& rng) {
  if constexpr (requires { stepper.Next(cur, prev, step, rng); }) {
    return stepper.Next(cur, prev, step, rng);
  } else {
    return stepper.Next(cur, prev, rng);
  }
}

struct WalkResult {
  uint64_t total_steps = 0;       // edges traversed across all walkers
  uint64_t finished_walkers = 0;  // walkers that took at least one step
  // Flattened paths when record_paths: walker i owns
  // paths[path_offsets[i] .. path_offsets[i+1]).
  std::vector<graph::VertexId> paths;
  std::vector<uint64_t> path_offsets;
  // Visit frequencies when count_visits (includes start vertices).
  std::vector<uint32_t> visit_counts;
};

template <typename Stepper>
WalkResult RunWalks(graph::VertexId num_vertices, const WalkConfig& cfg,
                    const Stepper& stepper, util::ThreadPool* pool = nullptr) {
  const uint64_t num_walkers =
      cfg.num_walkers == 0 ? num_vertices : cfg.num_walkers;
  WalkResult result;
  if (cfg.record_paths) {
    result.path_offsets.assign(num_walkers + 1, 0);
  }
  if (num_vertices == 0 || num_walkers == 0 ||
      (cfg.start_vertex != graph::kInvalidVertex &&
       cfg.start_vertex >= num_vertices)) {
    return result;  // nowhere (or nowhere valid) to start a walker
  }

  std::atomic<uint64_t> total_steps{0};
  std::atomic<uint64_t> finished_walkers{0};
  // Shared visit accumulator; merged with relaxed fetch_add (additions
  // commute, so the result stays deterministic).
  std::vector<std::atomic<uint32_t>> visit_acc(cfg.count_visits ? num_vertices
                                                                : 0);

  // One slot per chunk of the executor's deterministic plan (a single slot
  // on the serial path). Each chunk task moves its leased buffers into its
  // own slot — no merge lock, single writer by construction.
  constexpr std::size_t kGrain = 256;
  const util::ChunkPlan plan =
      pool != nullptr
          ? util::ComputeChunkPlan(num_walkers, kGrain, pool->NumThreads())
          : util::ChunkPlan{1, static_cast<std::size_t>(num_walkers)};
  util::MemoryPool* scratch = pool != nullptr ? &pool->ScratchMemory() : nullptr;
  struct ChunkOutput {
    util::ScratchVector<graph::VertexId> paths;
    util::ScratchVector<uint64_t> lengths;  // per walker, when recording
  };
  std::vector<ChunkOutput> chunks(cfg.record_paths ? plan.num_chunks : 0);

  const auto run_chunk = [&](std::size_t chunk, std::size_t lo,
                             std::size_t hi) {
    uint64_t steps = 0;
    uint64_t finished = 0;
    ChunkOutput out{util::ScratchVector<graph::VertexId>(scratch),
                    util::ScratchVector<uint64_t>(scratch)};
    if (cfg.record_paths) {
      // Upper bound (start + walk_length per walker), capped so huge PPR
      // caps don't balloon transient chunk buffers.
      out.paths.reserve(std::min<uint64_t>(
          (hi - lo) * (uint64_t{cfg.walk_length} + 1), uint64_t{1} << 20));
      out.lengths.reserve(hi - lo);
    }
    util::ScratchVector<uint32_t> local_visits(scratch);
    if (cfg.count_visits) {
      local_visits.assign(num_vertices, 0);
    }
    for (std::size_t w = lo; w < hi; ++w) {
      util::Rng rng = util::Rng::ForStream(cfg.seed, w);
      graph::VertexId cur =
          cfg.start_vertex != graph::kInvalidVertex
              ? cfg.start_vertex
              : static_cast<graph::VertexId>(w % num_vertices);
      graph::VertexId prev = graph::kInvalidVertex;
      uint64_t len = 0;
      if (cfg.record_paths) {
        out.paths.push_back(cur);
        ++len;
      }
      if (cfg.count_visits) {
        ++local_visits[cur];
      }
      uint32_t step = 0;
      for (; step < cfg.walk_length; ++step) {
        const graph::VertexId next = StepperNext(stepper, cur, prev, step, rng);
        if (next == graph::kInvalidVertex) {
          break;
        }
        prev = cur;
        cur = next;
        ++steps;
        if (cfg.record_paths) {
          out.paths.push_back(cur);
          ++len;
        }
        if (cfg.count_visits) {
          ++local_visits[cur];
        }
        if (stepper.Terminate(rng)) {
          ++step;
          break;
        }
      }
      if (step > 0) {
        ++finished;
      }
      if (cfg.record_paths) {
        out.lengths.push_back(len);
      }
    }
    total_steps.fetch_add(steps, std::memory_order_relaxed);
    finished_walkers.fetch_add(finished, std::memory_order_relaxed);
    if (cfg.count_visits) {
      for (graph::VertexId v = 0; v < num_vertices; ++v) {
        if (local_visits[v] != 0) {
          visit_acc[v].fetch_add(local_visits[v], std::memory_order_relaxed);
        }
      }
    }
    if (cfg.record_paths) {
      chunks[chunk] = std::move(out);
    }
  };

  if (pool != nullptr) {
    pool->ParallelForChunks(0, num_walkers, run_chunk, kGrain);
  } else {
    run_chunk(0, 0, num_walkers);
  }

  result.total_steps = total_steps.load(std::memory_order_relaxed);
  result.finished_walkers = finished_walkers.load(std::memory_order_relaxed);
  if (cfg.count_visits) {
    result.visit_counts.resize(num_vertices);
    for (graph::VertexId v = 0; v < num_vertices; ++v) {
      result.visit_counts[v] = visit_acc[v].load(std::memory_order_relaxed);
    }
  }

  if (cfg.record_paths) {
    // Stitch per-chunk buffers into the flattened layout. Chunk c covers
    // walkers [c * chunk_size, ...), per the executor's plan.
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      const std::size_t begin = c * plan.chunk_size;
      for (std::size_t i = 0; i < chunks[c].lengths.size(); ++i) {
        result.path_offsets[begin + i + 1] = chunks[c].lengths[i];
      }
    }
    for (std::size_t i = 1; i < result.path_offsets.size(); ++i) {
      result.path_offsets[i] += result.path_offsets[i - 1];
    }
    result.paths.resize(result.path_offsets.back());
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      uint64_t cursor = result.path_offsets[c * plan.chunk_size];
      for (graph::VertexId v : chunks[c].paths) {
        result.paths[cursor++] = v;
      }
    }
  }
  return result;
}

// Store-generic entry point: walkers start one-per-vertex (or cfg-sized)
// over the store's vertex space. Works with any WalkStore backend.
template <typename Store, typename Stepper>
  requires SamplingStore<Store>
WalkResult RunWalks(const Store& store, const WalkConfig& cfg,
                    const Stepper& stepper, util::ThreadPool* pool = nullptr) {
  return RunWalks(static_cast<graph::VertexId>(store.NumVertices()), cfg,
                  stepper, pool);
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_ENGINE_H_
