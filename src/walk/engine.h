// Parallel random-walk driver.
//
// The paper launches one walker per vertex and advances walks step by step,
// each step being one sample (§6 implementation notes iii). This driver
// runs walkers in parallel on the thread pool with deterministic per-walker
// RNG streams; results are identical for any thread count and for any
// store backend driving the stepper (see src/walk/store.h).
//
// A Stepper supplies the application logic:
//
//   struct Stepper {
//     // Next vertex, or graph::kInvalidVertex to stop (dead end / reject).
//     graph::VertexId Next(graph::VertexId cur, graph::VertexId prev,
//                          util::Rng& rng) const;
//     // Post-step termination test (e.g. PPR's stop probability).
//     bool Terminate(util::Rng& rng) const;
//   };
//
// Merging is contention-free: step/walker totals and per-vertex visit
// counts accumulate through relaxed atomics outside any critical section;
// the only lock guards the per-chunk path-buffer list, and holds it just
// long enough to move a buffer in.

#ifndef BINGO_SRC_WALK_ENGINE_H_
#define BINGO_SRC_WALK_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/walk/store.h"

namespace bingo::walk {

struct WalkConfig {
  uint64_t num_walkers = 0;   // 0 = one per vertex
  uint32_t walk_length = 80;  // maximum steps (stops earlier on dead ends)
  uint64_t seed = 42;
  bool record_paths = false;   // collect full paths (embedding corpora)
  bool count_visits = false;   // per-vertex visit frequencies (PPR)
  // When set, every walker starts here instead of at (walker id mod
  // num_vertices) — single-source queries (personalized PageRank) run on
  // the same engine and merge path as whole-graph workloads.
  graph::VertexId start_vertex = graph::kInvalidVertex;
};

struct WalkResult {
  uint64_t total_steps = 0;       // edges traversed across all walkers
  uint64_t finished_walkers = 0;  // walkers that took at least one step
  // Flattened paths when record_paths: walker i owns
  // paths[path_offsets[i] .. path_offsets[i+1]).
  std::vector<graph::VertexId> paths;
  std::vector<uint64_t> path_offsets;
  // Visit frequencies when count_visits (includes start vertices).
  std::vector<uint32_t> visit_counts;
};

template <typename Stepper>
WalkResult RunWalks(graph::VertexId num_vertices, const WalkConfig& cfg,
                    const Stepper& stepper, util::ThreadPool* pool = nullptr) {
  const uint64_t num_walkers =
      cfg.num_walkers == 0 ? num_vertices : cfg.num_walkers;
  WalkResult result;
  if (cfg.record_paths) {
    result.path_offsets.assign(num_walkers + 1, 0);
  }
  if (num_vertices == 0 || num_walkers == 0 ||
      (cfg.start_vertex != graph::kInvalidVertex &&
       cfg.start_vertex >= num_vertices)) {
    return result;  // nowhere (or nowhere valid) to start a walker
  }

  std::atomic<uint64_t> total_steps{0};
  std::atomic<uint64_t> finished_walkers{0};
  // Shared visit accumulator; merged with relaxed fetch_add (additions
  // commute, so the result stays deterministic).
  std::vector<std::atomic<uint32_t>> visit_acc(cfg.count_visits ? num_vertices
                                                                : 0);

  std::mutex chunk_mutex;  // guards `chunks` only
  struct ChunkOutput {
    uint64_t begin = 0;
    std::vector<graph::VertexId> paths;
    std::vector<uint64_t> lengths;  // per walker, when recording
  };
  std::vector<ChunkOutput> chunks;

  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    uint64_t steps = 0;
    uint64_t finished = 0;
    ChunkOutput out;
    out.begin = lo;
    if (cfg.record_paths) {
      // Upper bound (start + walk_length per walker), capped so huge PPR
      // caps don't balloon transient chunk buffers.
      out.paths.reserve(std::min<uint64_t>(
          (hi - lo) * (uint64_t{cfg.walk_length} + 1), uint64_t{1} << 20));
      out.lengths.reserve(hi - lo);
    }
    std::vector<uint32_t> local_visits;
    if (cfg.count_visits) {
      local_visits.assign(num_vertices, 0);
    }
    for (std::size_t w = lo; w < hi; ++w) {
      util::Rng rng = util::Rng::ForStream(cfg.seed, w);
      graph::VertexId cur =
          cfg.start_vertex != graph::kInvalidVertex
              ? cfg.start_vertex
              : static_cast<graph::VertexId>(w % num_vertices);
      graph::VertexId prev = graph::kInvalidVertex;
      uint64_t len = 0;
      if (cfg.record_paths) {
        out.paths.push_back(cur);
        ++len;
      }
      if (cfg.count_visits) {
        ++local_visits[cur];
      }
      uint32_t step = 0;
      for (; step < cfg.walk_length; ++step) {
        const graph::VertexId next = stepper.Next(cur, prev, rng);
        if (next == graph::kInvalidVertex) {
          break;
        }
        prev = cur;
        cur = next;
        ++steps;
        if (cfg.record_paths) {
          out.paths.push_back(cur);
          ++len;
        }
        if (cfg.count_visits) {
          ++local_visits[cur];
        }
        if (stepper.Terminate(rng)) {
          ++step;
          break;
        }
      }
      if (step > 0) {
        ++finished;
      }
      if (cfg.record_paths) {
        out.lengths.push_back(len);
      }
    }
    total_steps.fetch_add(steps, std::memory_order_relaxed);
    finished_walkers.fetch_add(finished, std::memory_order_relaxed);
    if (cfg.count_visits) {
      for (graph::VertexId v = 0; v < num_vertices; ++v) {
        if (local_visits[v] != 0) {
          visit_acc[v].fetch_add(local_visits[v], std::memory_order_relaxed);
        }
      }
    }
    if (cfg.record_paths) {
      std::lock_guard<std::mutex> lock(chunk_mutex);
      chunks.push_back(std::move(out));
    }
  };

  if (pool != nullptr) {
    pool->ParallelForChunked(0, num_walkers, run_range, 256);
  } else {
    run_range(0, num_walkers);
  }

  result.total_steps = total_steps.load(std::memory_order_relaxed);
  result.finished_walkers = finished_walkers.load(std::memory_order_relaxed);
  if (cfg.count_visits) {
    result.visit_counts.resize(num_vertices);
    for (graph::VertexId v = 0; v < num_vertices; ++v) {
      result.visit_counts[v] = visit_acc[v].load(std::memory_order_relaxed);
    }
  }

  if (cfg.record_paths) {
    // Stitch per-chunk buffers into the flattened layout.
    for (const ChunkOutput& chunk : chunks) {
      for (std::size_t i = 0; i < chunk.lengths.size(); ++i) {
        result.path_offsets[chunk.begin + i + 1] = chunk.lengths[i];
      }
    }
    for (std::size_t i = 1; i < result.path_offsets.size(); ++i) {
      result.path_offsets[i] += result.path_offsets[i - 1];
    }
    result.paths.resize(result.path_offsets.back());
    for (const ChunkOutput& chunk : chunks) {
      uint64_t cursor = result.path_offsets[chunk.begin];
      for (graph::VertexId v : chunk.paths) {
        result.paths[cursor++] = v;
      }
    }
  }
  return result;
}

// Store-generic entry point: walkers start one-per-vertex (or cfg-sized)
// over the store's vertex space. Works with any WalkStore backend.
template <typename Store, typename Stepper>
  requires SamplingStore<Store>
WalkResult RunWalks(const Store& store, const WalkConfig& cfg,
                    const Stepper& stepper, util::ThreadPool* pool = nullptr) {
  return RunWalks(static_cast<graph::VertexId>(store.NumVertices()), cfg,
                  stepper, pool);
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_ENGINE_H_
