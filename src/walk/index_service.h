// Always-fresh walk index: a service layer that keeps an incremental walk
// corpus (src/walk/incremental.h) mounted on a live WalkService or
// ShardedWalkService and serves walk reads, visit counts, and PPR-style
// scores FROM the corpus instead of re-walking per query.
//
// Contract
//   * Updates flow through ApplyBatch (or are announced by NotifyApplied
//     when an UpdateBatcher already applied them). Each observed update is
//     queued; a repair pass drains the queue by resampling exactly the
//     walks whose suffix crossed an updated vertex (the Wharf/FIRM
//     maintenance step, with Bingo's O(1) redraws underneath).
//   * Bounded staleness: with Options::max_pending_updates == 0 (default)
//     every batch repairs synchronously — reads are always fresh. With a
//     bound N > 0, reads may trail the live store by at most N updates;
//     crossing the bound forces a repair before ApplyBatch/NotifyApplied
//     returns. Refresh() forces the corpus fresh at any time.
//   * Determinism: corpus contents depend only on (seed, sequence of
//     repair drains), never on thread count — repairs parallelize per
//     walk with per-walk ForStream RNG streams (see incremental.h). With
//     the always-fresh default, the corpus is bit-identical to a
//     standalone IncrementalWalkCorpus::ApplyUpdates over the same
//     batches.
//   * Persistence (unsharded service): AttachWal/Checkpoint write a
//     versioned+CRC'd corpus checkpoint (corpus.walks) next to the
//     service's base.snapshot + wal.log, fenced by the WAL sequence the
//     service just made durable. RecoverWalkIndexService restores the
//     corpus and replays repairs for WAL records past the fence — batch by
//     batch, against the store state each batch produced — so a recovered
//     index serves the identical corpus to one that never crashed.
//
// Thread safety: reads take a shared lock; ApplyBatch/NotifyApplied/
// Refresh/checkpointing serialize on an exclusive lock. Do not mutate the
// wrapped service directly while an index service is mounted on it — the
// index would silently go stale past its bound.

#ifndef BINGO_SRC_WALK_INDEX_SERVICE_H_
#define BINGO_SRC_WALK_INDEX_SERVICE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/types.h"
#include "src/util/histogram.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/walk/engine.h"
#include "src/walk/incremental.h"
#include "src/walk/service.h"

namespace bingo::walk {

inline constexpr const char kCorpusCheckpointFile[] = "corpus.walks";

// Counters + repair-latency quantiles for one WalkIndexServiceT.
struct WalkIndexStats {
  uint64_t batches_observed = 0;
  uint64_t updates_observed = 0;
  uint64_t repairs = 0;          // drain passes (one corpus epoch each)
  uint64_t forced_repairs = 0;   // drains triggered by the staleness bound
  uint64_t candidate_walks = 0;
  uint64_t walks_repaired = 0;
  uint64_t steps_resampled = 0;
  uint64_t index_rebuilds = 0;
  uint64_t pending_updates = 0;  // updates not yet reflected in the corpus
  uint64_t corpus_walks = 0;
  uint64_t corpus_steps = 0;
  double generate_seconds = 0.0;
  double repair_p50_seconds = 0.0;
  double repair_p99_seconds = 0.0;
  double repair_max_seconds = 0.0;
  std::size_t corpus_memory_bytes = 0;
};

template <typename Service>
class WalkIndexServiceT {
 public:
  struct Options {
    IncrementalWalkCorpus::Config corpus;
    // Staleness bound: maximum updates the corpus may trail the live
    // store. 0 = repair on every observed batch (always fresh).
    uint64_t max_pending_updates = 0;
  };

  // Generates the corpus from the service's current state.
  explicit WalkIndexServiceT(Service& service, Options options = {},
                             util::ThreadPool* pool = nullptr)
      : service_(&service),
        options_(options),
        pool_(pool),
        corpus_(ServiceNumVertices(service), options.corpus) {
    util::Timer timer;
    const auto snap = service_->Acquire();
    corpus_.Generate(ViewOf(snap), pool_);
    generate_seconds_ = timer.Seconds();
  }

  // Adopts an already-populated corpus (the recovery path). `wal_dir` is
  // the durability directory the corpus checkpoint lives in (empty = not
  // persisted yet).
  WalkIndexServiceT(Service& service, Options options, util::ThreadPool* pool,
                    IncrementalWalkCorpus corpus, std::string wal_dir)
      : service_(&service),
        options_(options),
        pool_(pool),
        corpus_(std::move(corpus)),
        wal_dir_(std::move(wal_dir)) {}

  WalkIndexServiceT(const WalkIndexServiceT&) = delete;
  WalkIndexServiceT& operator=(const WalkIndexServiceT&) = delete;

  Service& service() { return *service_; }

  // --- update path --------------------------------------------------------

  // Applies the batch through the wrapped service, then repairs the corpus
  // per the staleness contract.
  core::BatchResult ApplyBatch(const graph::UpdateList& updates)
      BINGO_EXCLUDES(mutex_) {
    util::WriterLock lock(mutex_);
    const core::BatchResult result = service_->ApplyBatch(updates);
    ObserveLocked(updates);
    return result;
  }

  // Announces updates some other actor (an UpdateBatcher drain) already
  // applied to the service; repairs per the staleness contract.
  void NotifyApplied(const graph::UpdateList& updates) BINGO_EXCLUDES(mutex_) {
    util::WriterLock lock(mutex_);
    ObserveLocked(updates);
  }

  // Forces the corpus fresh; returns the drain's repair stats (zeroes when
  // nothing was pending).
  IncrementalWalkCorpus::RepairStats Refresh() BINGO_EXCLUDES(mutex_) {
    util::WriterLock lock(mutex_);
    return RepairPendingLocked();
  }

  uint64_t PendingUpdates() const BINGO_EXCLUDES(mutex_) {
    util::ReaderLock lock(mutex_);
    return pending_.size();
  }

  // --- index-served reads (bounded staleness) -----------------------------

  uint64_t NumWalks() const BINGO_EXCLUDES(mutex_) {
    util::ReaderLock lock(mutex_);
    return corpus_.NumWalks();
  }

  uint64_t TotalSteps() const BINGO_EXCLUDES(mutex_) {
    util::ReaderLock lock(mutex_);
    return corpus_.TotalSteps();
  }

  // `count` stored walks starting at `first_walk` (wrapping modulo the
  // corpus size), in engine WalkResult shape: walker i of the result owns
  // paths[path_offsets[i] .. path_offsets[i+1]). Serving cost is a copy of
  // the requested rows — no sampling.
  WalkResult QueryWalks(uint64_t first_walk, uint64_t count) const
      BINGO_EXCLUDES(mutex_) {
    util::ReaderLock lock(mutex_);
    WalkResult result;
    const uint64_t n = corpus_.NumWalks();
    if (n == 0 || count == 0) {
      result.path_offsets.assign(1, 0);
      return result;
    }
    count = std::min(count, n);
    result.path_offsets.reserve(count + 1);
    result.path_offsets.push_back(0);
    for (uint64_t i = 0; i < count; ++i) {
      const auto& walk = corpus_.Walk((first_walk + i) % n);
      result.paths.insert(result.paths.end(), walk.begin(), walk.end());
      result.path_offsets.push_back(result.paths.size());
      if (walk.size() > 1) {
        result.total_steps += walk.size() - 1;
        ++result.finished_walkers;
      }
    }
    return result;
  }

  // Visits per vertex across the whole corpus (position 0 included).
  std::vector<uint64_t> VisitCounts() const BINGO_EXCLUDES(mutex_) {
    util::ReaderLock lock(mutex_);
    return corpus_.VisitCounts();
  }

  // Normalized visit frequencies — the corpus's PPR-style score vector.
  std::vector<double> PprScores() const BINGO_EXCLUDES(mutex_) {
    util::ReaderLock lock(mutex_);
    const auto& counts = corpus_.VisitCounts();
    std::vector<double> scores(counts.size(), 0.0);
    const uint64_t total = corpus_.TotalVisits();
    if (total == 0) {
      return scores;
    }
    for (std::size_t v = 0; v < counts.size(); ++v) {
      scores[v] = static_cast<double>(counts[v]) / static_cast<double>(total);
    }
    return scores;
  }

  // Audits every corpus transition against a live snapshot. Exact only
  // when the corpus is fresh (Refresh() first if a staleness bound is
  // set): a legally-stale corpus may hold walks through deleted edges.
  std::string CheckValid() const BINGO_EXCLUDES(mutex_) {
    util::ReaderLock lock(mutex_);
    const auto snap = service_->Acquire();
    return corpus_.CheckWalksValid(ViewOf(snap));
  }

  // Direct corpus access for tests/tools; take no concurrent writers. The
  // analysis is off here on purpose: handing out an unlocked reference is
  // exactly the single-threaded escape hatch the comment above demands, and
  // annotating it away would just push the suppression to every test.
  const IncrementalWalkCorpus& corpus() const BINGO_NO_THREAD_SAFETY_ANALYSIS {
    return corpus_;
  }

  WalkIndexStats Stats() const BINGO_EXCLUDES(mutex_) {
    util::ReaderLock lock(mutex_);
    WalkIndexStats out = counters_;
    out.pending_updates = pending_.size();
    out.corpus_walks = corpus_.NumWalks();
    out.corpus_steps = corpus_.TotalSteps();
    out.generate_seconds = generate_seconds_;
    out.repair_p50_seconds = repair_hist_.QuantileSeconds(0.5);
    out.repair_p99_seconds = repair_hist_.QuantileSeconds(0.99);
    out.repair_max_seconds = repair_hist_.MaxSeconds();
    out.corpus_memory_bytes = corpus_.MemoryBytes();
    return out;
  }

  // --- persistence (unsharded service) ------------------------------------
  //
  // The corpus checkpoint rides along with the service's durability dir:
  // repair pending first (so corpus state == store state at the fence),
  // checkpoint the service, then write corpus.walks fenced at the WAL
  // sequence the service call reported durable.

  CheckpointResult AttachWal(const std::string& dir,
                             WalPersistenceOptions options = {})
    requires requires(Service& s) {
      s.Checkpoint(std::optional<bool>{});
    }
  {
    util::WriterLock lock(mutex_);
    RepairPendingLocked();
    CheckpointResult result = service_->AttachWal(dir, options);
    if (result.ok) {
      wal_dir_ = dir;
      if (!corpus_.SaveTo(dir + "/" + kCorpusCheckpointFile,
                          result.wal_seq)) {
        result.ok = false;
      }
    }
    return result;
  }

  CheckpointResult Checkpoint(std::optional<bool> force_compact = std::nullopt)
    requires requires(Service& s) {
      s.Checkpoint(std::optional<bool>{});
    }
  {
    util::WriterLock lock(mutex_);
    RepairPendingLocked();
    CheckpointResult result = service_->Checkpoint(force_compact);
    if (result.ok && !wal_dir_.empty()) {
      if (!corpus_.SaveTo(wal_dir_ + "/" + kCorpusCheckpointFile,
                          result.wal_seq)) {
        result.ok = false;
      }
    }
    return result;
  }

 private:
  template <typename Snap>
  static decltype(auto) ViewOf(const Snap& snap) {
    // WalkServiceT snapshots expose the store; the sharded composite
    // snapshot models the store concepts itself.
    if constexpr (requires { snap.store(); }) {
      return snap.store();
    } else {
      return (snap);
    }
  }

  static graph::VertexId ServiceNumVertices(Service& service) {
    const auto snap = service.Acquire();
    return static_cast<graph::VertexId>(ViewOf(snap).NumVertices());
  }

  void ObserveLocked(const graph::UpdateList& updates) BINGO_REQUIRES(mutex_) {
    ++counters_.batches_observed;
    counters_.updates_observed += updates.size();
    pending_.insert(pending_.end(), updates.begin(), updates.end());
    if (pending_.empty()) {
      return;
    }
    if (options_.max_pending_updates == 0) {
      RepairPendingLocked();
    } else if (pending_.size() >= options_.max_pending_updates) {
      ++counters_.forced_repairs;
      RepairPendingLocked();
    }
  }

  IncrementalWalkCorpus::RepairStats RepairPendingLocked()
      BINGO_REQUIRES(mutex_) {
    IncrementalWalkCorpus::RepairStats stats;
    if (pending_.empty()) {
      return stats;
    }
    util::Timer timer;
    {
      const auto snap = service_->Acquire();
      stats = corpus_.RepairAfterUpdates(ViewOf(snap), pending_, pool_);
    }
    repair_hist_.RecordSeconds(timer.Seconds());
    pending_.clear();
    ++counters_.repairs;
    counters_.candidate_walks += stats.candidate_walks;
    counters_.walks_repaired += stats.walks_repaired;
    counters_.steps_resampled += stats.steps_resampled;
    counters_.index_rebuilds += stats.index_rebuilt ? 1 : 0;
    return stats;
  }

  Service* service_;
  Options options_;
  util::ThreadPool* pool_;

  mutable util::SharedMutex mutex_;
  IncrementalWalkCorpus corpus_ BINGO_GUARDED_BY(mutex_);
  graph::UpdateList pending_ BINGO_GUARDED_BY(mutex_);
  WalkIndexStats counters_ BINGO_GUARDED_BY(mutex_);
  util::LatencyHistogram repair_hist_ BINGO_GUARDED_BY(mutex_);
  double generate_seconds_ = 0.0;  // written once in the ctor, then const
  std::string wal_dir_ BINGO_GUARDED_BY(mutex_);
};

using WalkIndexService = WalkIndexServiceT<WalkService>;

extern template class WalkIndexServiceT<WalkService>;

// ------------------------------------------------------------- recovery --

struct WalkIndexRecoveryReport {
  RecoveryReport service;            // base + WAL replay outcome
  bool corpus_restored = false;      // checkpoint adopted (else regenerated)
  uint64_t corpus_wal_seq = 0;       // fence of the restored checkpoint
  uint64_t corpus_batches_replayed = 0;  // repairs re-run past the fence
};

struct RecoveredWalkIndexService {
  std::unique_ptr<WalkService> service;
  std::unique_ptr<WalkIndexService> index;

  explicit operator bool() const {
    return service != nullptr && index != nullptr;
  }
};

// Rebuilds a WalkService + mounted index from a durability directory
// written through WalkIndexService::AttachWal/Checkpoint. The service
// recovers as RecoverWalkService does; the corpus checkpoint is restored
// and, for every WAL record past its fence, the repair is re-run against
// the exact store state that batch produced — so the recovered corpus is
// bit-identical to the uncrashed one. A missing/corrupt/mismatched corpus
// checkpoint falls back to regenerating from the recovered store (reported
// via corpus_restored = false).
RecoveredWalkIndexService RecoverWalkIndexService(
    const std::string& dir, WalkIndexService::Options index_options = {},
    core::BingoConfig config = {}, graph::VertexId num_vertices = 0,
    util::ThreadPool* build_pool = nullptr,
    util::ThreadPool* update_pool = nullptr, WalPersistenceOptions options = {},
    WalkIndexRecoveryReport* report = nullptr);

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_INDEX_SERVICE_H_
