// The paper's random walk applications (§2.2, §6.1), store-agnostic:
//
//   DeepWalk       — biased first-order walks, fixed length (default 80).
//   node2vec       — second-order walks; the transition probability is
//                    modulated by f(w, v) in {1/p, 1, 1/q} depending on the
//                    distance between the previous vertex w and candidate v
//                    (Eq 1). Sampling uses KnightKing's approach, which the
//                    paper adopts (§7.3): draw from the static structure,
//                    then accept with probability f / f_max.
//   PPR            — walks with termination probability 1/80; the output is
//                    per-vertex visit frequencies.
//   SimpleSampling — unbiased uniform walks (the random_walk_simple_sampling
//                    kernel).
//
// Every application is written against the store concept (src/walk/store.h)
// and runs unchanged on BingoStore, the baseline stores, and
// PartitionedBingoStore. First-order apps need only SamplingStore; node2vec
// and uniform sampling probe adjacency and need AdjacencyStore.

#ifndef BINGO_SRC_WALK_APPS_H_
#define BINGO_SRC_WALK_APPS_H_

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "src/walk/engine.h"
#include "src/walk/store.h"

namespace bingo::walk {

struct Node2vecParams {
  double p = 0.5;  // return parameter
  double q = 2.0;  // in-out parameter
};

// Typed / metapath walks. Vertex types partition the id space modularly —
// TypeOf(v) = v % num_types, the same rule core::BiasPipeline uses for its
// type gate — and a walk follows a cyclic pattern of types: a walker's
// step s (0-based) must land on a vertex of type pattern[(s + 1) %
// pattern.size()], with the start conventionally occupying pattern[0].
// Two-mode bipartite walks (user–item) are the two-type metapath {0, 1}.
struct MetapathParams {
  uint32_t num_types = 2;
  std::vector<uint32_t> pattern = {0, 1};

  uint32_t TypeOf(graph::VertexId v) const {
    return num_types <= 1 ? 0 : static_cast<uint32_t>(v % num_types);
  }
  bool Valid() const {
    if (num_types == 0 || pattern.empty()) {
      return false;
    }
    return std::all_of(pattern.begin(), pattern.end(),
                       [&](uint32_t t) { return t < num_types; });
  }
};

namespace internal {

template <SamplingStore Store>
struct FirstOrderStepper {
  // Declares that Next is exactly one store.SampleNeighbor(cur, rng) —
  // no prev dependence, no extra variates — so the fused driver
  // (walk/fused.h) may resolve same-vertex walker groups through
  // SampleNeighborBatch without changing any walker's variate sequence.
  static constexpr bool kFirstOrder = true;
  const Store& store;
  graph::VertexId Next(graph::VertexId cur, graph::VertexId /*prev*/,
                       util::Rng& rng) const {
    return store.SampleNeighbor(cur, rng);
  }
  bool Terminate(util::Rng& /*rng*/) const { return false; }
};

template <SamplingStore Store>
struct PprStepper {
  // Next is one SampleNeighbor; the stop draw happens in Terminate, after
  // the step, so batched Next resolution keeps per-walker draw order.
  static constexpr bool kFirstOrder = true;
  const Store& store;
  double stop_probability;
  graph::VertexId Next(graph::VertexId cur, graph::VertexId /*prev*/,
                       util::Rng& rng) const {
    return store.SampleNeighbor(cur, rng);
  }
  bool Terminate(util::Rng& rng) const { return rng.NextBool(stop_probability); }
};

template <AdjacencyStore Store>
struct Node2vecStepper {
  // Second-order: Next's draw count depends on prev (rejection loop), so
  // the fused driver keeps it scalar per walker (prefetch still applies).
  static constexpr bool kFirstOrder = false;
  const Store& store;
  Node2vecParams params;
  double f_max;
  // Bounded retry count guards against pathological all-reject states
  // (e.g. p and q both huge on a vertex whose only neighbor is prev).
  static constexpr int kMaxTrials = 128;

  // f(prev, candidate) in {1/p, 1, 1/q} by distance (Eq 1).
  double BiasFactor(graph::VertexId prev, graph::VertexId candidate) const {
    if (candidate == prev) {
      return 1.0 / params.p;  // distance 0
    }
    if (store.HasEdge(prev, candidate)) {
      return 1.0;  // distance 1
    }
    return 1.0 / params.q;  // distance 2
  }

  graph::VertexId Next(graph::VertexId cur, graph::VertexId prev,
                       util::Rng& rng) const {
    if (prev == graph::kInvalidVertex) {
      return store.SampleNeighbor(cur, rng);  // first hop is first-order
    }
    for (int trial = 0; trial < kMaxTrials; ++trial) {
      const graph::VertexId candidate = store.SampleNeighbor(cur, rng);
      if (candidate == graph::kInvalidVertex) {
        return graph::kInvalidVertex;
      }
      if (rng.NextUnit() * f_max < BiasFactor(prev, candidate)) {
        return candidate;
      }
    }
    // All trials rejected (acceptance probability can be arbitrarily small
    // when p and q are huge). Killing the walker here would bias the corpus
    // toward truncated walks; instead pay one exact f-weighted draw over the
    // adjacency — the distribution the rejection loop was approximating.
    return ExactDraw(cur, prev, rng);
  }

  graph::VertexId ExactDraw(graph::VertexId cur, graph::VertexId prev,
                            util::Rng& rng) const {
    const std::span<const graph::Edge> adj = store.NeighborsOf(cur);
    double total = 0.0;
    for (const graph::Edge& e : adj) {
      total += e.bias * BiasFactor(prev, e.dst);
    }
    if (!(total > 0.0)) {
      return graph::kInvalidVertex;  // no out-edges (or zero-weight ones)
    }
    double draw = rng.NextUnit() * total;
    for (const graph::Edge& e : adj) {
      draw -= e.bias * BiasFactor(prev, e.dst);
      if (draw < 0.0) {
        return e.dst;
      }
    }
    return adj.back().dst;  // float round-off: clamp to the last cell
  }

  bool Terminate(util::Rng& /*rng*/) const { return false; }
};

template <AdjacencyStore Store>
struct MetapathStepper {
  // Step-aware (Next takes the step index): the eligible target type is a
  // function of the walk position, so the draw is an exact bias-weighted
  // scan over the type-matching neighbors — like node2vec's ExactDraw, it
  // stays scalar in the fused driver but gains the layout and prefetching.
  static constexpr bool kFirstOrder = false;
  const Store& store;
  MetapathParams params;

  graph::VertexId Next(graph::VertexId cur, graph::VertexId /*prev*/,
                       uint32_t step, util::Rng& rng) const {
    const uint32_t want =
        params.pattern[(step + 1) % params.pattern.size()];
    const std::span<const graph::Edge> adj = store.NeighborsOf(cur);
    double total = 0.0;
    for (const graph::Edge& e : adj) {
      if (params.TypeOf(e.dst) == want) {
        total += e.bias;
      }
    }
    if (!(total > 0.0)) {
      return graph::kInvalidVertex;  // no eligible neighbor: walker retires
    }
    double draw = rng.NextUnit() * total;
    graph::VertexId last = graph::kInvalidVertex;
    for (const graph::Edge& e : adj) {
      if (params.TypeOf(e.dst) != want) {
        continue;
      }
      last = e.dst;
      draw -= e.bias;
      if (draw < 0.0) {
        return e.dst;
      }
    }
    return last;  // float round-off: clamp to the last eligible cell
  }

  bool Terminate(util::Rng& /*rng*/) const { return false; }
};

template <AdjacencyStore Store>
struct UniformStepper {
  static constexpr bool kFirstOrder = false;
  const Store& store;
  graph::VertexId Next(graph::VertexId cur, graph::VertexId /*prev*/,
                       util::Rng& rng) const {
    const auto adj = store.NeighborsOf(cur);
    if (adj.empty()) {
      return graph::kInvalidVertex;
    }
    return adj[rng.NextBounded(adj.size())].dst;
  }
  bool Terminate(util::Rng& /*rng*/) const { return false; }
};

}  // namespace internal

template <SamplingStore Store>
WalkResult RunDeepWalk(const Store& store, const WalkConfig& cfg,
                       util::ThreadPool* pool = nullptr) {
  internal::FirstOrderStepper<Store> stepper{store};
  return RunWalks(store, cfg, stepper, pool);
}

// The rejection bound f_max = max f(·,·); shared by both execution models'
// node2vec entry points so their steppers can't drift apart.
inline double Node2vecFMax(const Node2vecParams& params) {
  return std::max({1.0 / params.p, 1.0, 1.0 / params.q});
}

template <AdjacencyStore Store>
WalkResult RunNode2vec(const Store& store, const WalkConfig& cfg,
                       const Node2vecParams& params = {},
                       util::ThreadPool* pool = nullptr) {
  internal::Node2vecStepper<Store> stepper{store, params,
                                           Node2vecFMax(params)};
  return RunWalks(store, cfg, stepper, pool);
}

// The paper parameterizes PPR by stop probability (expected length 1/p);
// the 16x cap only guards the geometric tail. Saturates rather than wraps:
// a caller-supplied length near 2^32 must not collapse the cap to ~0. Both
// execution models (RunPpr, RunPartitionedPpr) share this so they stay
// bit-identical.
inline uint32_t PprCappedWalkLength(uint32_t walk_length) {
  const uint32_t base = std::max<uint32_t>(walk_length, 1);
  return base > std::numeric_limits<uint32_t>::max() / 16
             ? std::numeric_limits<uint32_t>::max()
             : base * 16;
}

template <SamplingStore Store>
WalkResult RunPpr(const Store& store, WalkConfig cfg,
                  double stop_probability = 1.0 / 80.0,
                  util::ThreadPool* pool = nullptr) {
  cfg.count_visits = true;
  cfg.walk_length = PprCappedWalkLength(cfg.walk_length);
  internal::PprStepper<Store> stepper{store, stop_probability};
  return RunWalks(store, cfg, stepper, pool);
}

template <AdjacencyStore Store>
WalkResult RunSimpleSampling(const Store& store, const WalkConfig& cfg,
                             util::ThreadPool* pool = nullptr) {
  internal::UniformStepper<Store> stepper{store};
  return RunWalks(store, cfg, stepper, pool);
}

// Metapath-constrained walks (two-mode bipartite with the default {0, 1}
// pattern). Exact per-step draws over the type-matching neighbors; runs on
// every AdjacencyStore backend and both execution models bit-identically.
template <AdjacencyStore Store>
WalkResult RunMetapath(const Store& store, const WalkConfig& cfg,
                       const MetapathParams& params = {},
                       util::ThreadPool* pool = nullptr) {
  internal::MetapathStepper<Store> stepper{store, params};
  return RunWalks(store, cfg, stepper, pool);
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_APPS_H_
