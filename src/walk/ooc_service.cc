#include "src/walk/ooc_service.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/core/wal.h"
#include "src/graph/io.h"
#include "src/graph/types.h"

namespace bingo::walk {

template class WalkServiceT<TieredStore>;

bool BuildCsrFromSnapshot(const std::string& snapshot_path,
                          const std::string& csr_path, uint64_t block_bytes,
                          core::SnapshotInfo* info, std::string* error) {
  core::SnapshotInfo local_info;
  core::SnapshotInfo* out_info = info != nullptr ? info : &local_info;
  // v2/v3: one streamed pass, O(1) resident. StreamSnapshotEdges fills the
  // header before the first record, so the writer (which needs the vertex
  // count) is constructed lazily inside the callback.
  std::unique_ptr<graph::CsrFileWriter> writer;
  const bool streamed = core::StreamSnapshotEdges(
      snapshot_path, out_info, [&](const graph::WeightedEdge& e) {
        if (writer == nullptr) {
          writer = std::make_unique<graph::CsrFileWriter>(
              csr_path, out_info->num_vertices, block_bytes);
        }
        graph::Edge edge;
        edge.dst = e.dst;
        edge.timestamp = e.timestamp;
        edge.bias = e.bias;
        return writer->ok() && writer->Append(e.src, edge);
      });
  if (streamed) {
    if (writer == nullptr) {  // edge-free snapshot
      writer = std::make_unique<graph::CsrFileWriter>(
          csr_path, out_info->num_vertices, block_bytes);
    }
    return writer->Finish(error);
  }
  writer.reset();  // abandon the tentative side file (CRC or I/O failure)

  // Legacy v1 (or a short v2/v3 read): fall back to a materialized load.
  graph::WeightedEdgeList edges;
  if (!core::LoadSnapshotEdges(snapshot_path, edges, out_info)) {
    if (error != nullptr) {
      *error = "build-csr: snapshot unreadable or corrupt: " + snapshot_path;
    }
    return false;
  }
  const graph::VertexId n =
      std::max(out_info->num_vertices, graph::ImpliedVertexCount(edges));
  out_info->num_vertices = n;
  return graph::WriteCsrFile(csr_path, n, edges, block_bytes, error);
}

std::unique_ptr<OocWalkService> MakeOocWalkService(
    const std::string& csr_path, core::BingoConfig config,
    TieredStoreOptions options, util::ThreadPool* build_pool,
    util::ThreadPool* update_pool, std::string* error) {
  // The service factory runs twice and cannot report failure, so both
  // replicas are opened here first.
  std::vector<std::unique_ptr<TieredStore>> replicas;
  for (int i = 0; i < 2; ++i) {
    auto store = TieredStore::Open(csr_path, config, options, build_pool,
                                   error);
    if (store == nullptr) {
      return nullptr;
    }
    replicas.push_back(std::move(store));
  }
  return std::make_unique<OocWalkService>(
      [&replicas]() {
        auto store = std::move(replicas.back());
        replicas.pop_back();
        return store;
      },
      update_pool);
}

std::unique_ptr<OocWalkService> RecoverOocWalkService(
    const std::string& dir, core::BingoConfig config, OocServiceOptions options,
    util::ThreadPool* build_pool, util::ThreadPool* update_pool,
    RecoveryReport* report, std::string* error) {
  RecoveryReport local;
  const auto fail = [&]() -> std::unique_ptr<OocWalkService> {
    if (report != nullptr) {
      *report = local;
    }
    return nullptr;
  };

  core::SnapshotInfo info;
  if (!BuildCsrFromSnapshot(dir + "/base.snapshot", dir + "/base.csr",
                            options.csr_block_bytes, &info, error)) {
    return fail();
  }
  if (info.version >= 2 &&
      info.config_fingerprint != core::ConfigFingerprint(config)) {
    if (error != nullptr) {
      *error = "recover: base snapshot fingerprint does not match config";
    }
    return fail();
  }
  // Resume the decay clock where the snapshot left it (with the identity
  // pipeline the tier requires, this is bookkeeping only).
  config.logical_epoch = static_cast<uint32_t>(info.logical_epoch);
  local.base_edges = info.num_edges;
  local.base_wal_seq = info.wal_seq;
  local.num_vertices = info.num_vertices;

  auto service = MakeOocWalkService(dir + "/base.csr", config, options.store,
                                    build_pool, update_pool, error);
  if (service == nullptr) {
    return fail();
  }

  // Replay the journaled suffix; each batch promotes the base vertices it
  // touches, exactly as live updates would. Journaling is not armed yet.
  const std::string wal_path = dir + "/wal.log";
  const core::WalReplayResult replay = core::ReplayWal(
      wal_path, info.wal_seq,
      [&](uint64_t /*seq*/, const graph::UpdateList& batch) {
        service->ApplyBatch(batch);
      });
  // The same decision tree as the in-memory RecoverWalkService: a missing
  // or pre-header-torn WAL, or one fully covered by the base, is superseded
  // by a fresh segment; a complete-but-invalid header is corruption.
  const core::WalOptions wal_options{options.wal.fsync_on_commit};
  std::unique_ptr<core::WalWriter> wal;
  if (!replay.opened || (replay.header_torn && !replay.header_ok)) {
    wal = core::WalWriter::Create(wal_path, info.wal_seq, wal_options);
  } else if (!replay.header_ok) {
    if (error != nullptr) {
      *error = "recover: wal header is corrupt: " + wal_path;
    }
    return fail();
  } else if (replay.last_seq < info.wal_seq) {
    wal = core::WalWriter::Create(wal_path, info.wal_seq, wal_options);
  } else {
    wal = core::WalWriter::OpenForAppend(wal_path, replay, wal_options);
  }
  if (wal == nullptr) {
    if (error != nullptr) {
      *error = "recover: could not re-arm the wal: " + wal_path;
    }
    return fail();
  }
  local.wal_records_replayed = replay.records_replayed;
  local.wal_updates_replayed = replay.updates_replayed;
  local.wal_tail_truncated = replay.truncated_tail;
  service->AdoptWal(std::move(wal), dir, options.wal,
                    replay.updates_replayed);
  local.ok = true;
  if (report != nullptr) {
    *report = local;
  }
  return service;
}

}  // namespace bingo::walk
