#include "src/walk/partitioned.h"

#include <atomic>

#include "src/walk/store.h"

namespace bingo::walk {

static_assert(WalkStore<PartitionedBingoStore> &&
              AdjacencyStore<PartitionedBingoStore>);

PartitionedBingoStore::PartitionedBingoStore(const graph::WeightedEdgeList& edges,
                                             graph::VertexId num_vertices,
                                             int num_shards,
                                             core::BingoConfig config,
                                             util::ThreadPool* pool)
    : num_vertices_(num_vertices) {
  std::vector<graph::WeightedEdgeList> per_shard(num_shards);
  for (const graph::WeightedEdge& e : edges) {
    per_shard[e.src % num_shards].push_back(e);
  }
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<core::BingoStore>(
        graph::DynamicGraph::FromEdges(num_vertices, per_shard[s]), config,
        pool));
  }
}

core::BatchResult PartitionedBingoStore::ApplyBatch(
    const graph::UpdateList& updates, util::ThreadPool* pool) {
  std::vector<graph::UpdateList> per_shard(shards_.size());
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      // The clock tick is global state: broadcast so every shard advances
      // its epoch (src is kInvalidVertex and must not route).
      for (auto& slice : per_shard) {
        slice.push_back(u);
      }
      continue;
    }
    per_shard[ShardOf(u.src)].push_back(u);
  }
  std::atomic<uint64_t> inserted{0};
  std::atomic<uint64_t> deleted{0};
  std::atomic<uint64_t> skipped{0};
  const auto run_shard = [&](std::size_t s) {
    // Shards are independent; each applies its slice without inner
    // parallelism (the outer loop is the parallel dimension).
    const core::BatchResult r = shards_[s]->ApplyBatch(per_shard[s], nullptr);
    inserted.fetch_add(r.inserted, std::memory_order_relaxed);
    deleted.fetch_add(r.deleted, std::memory_order_relaxed);
    skipped.fetch_add(r.skipped_deletes, std::memory_order_relaxed);
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, shards_.size(), run_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      run_shard(s);
    }
  }
  // A slice referencing brand-new vertex ids grows its owning shard store
  // (BingoStore::ApplyBatch materializes every referenced id); mirror the
  // widest shard so the composite reports the same vertex count as the
  // whole-graph store would after the same batch.
  for (const auto& shard : shards_) {
    num_vertices_ = std::max(num_vertices_, shard->NumVertices());
  }
  return core::BatchResult{inserted.load(), deleted.load(), skipped.load()};
}

core::StoreMemoryStats PartitionedBingoStore::MemoryStats() const {
  core::StoreMemoryStats total;
  for (const auto& shard : shards_) {
    total += shard->MemoryStats();
  }
  return total;
}

std::string PartitionedBingoStore::CheckInvariants() const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string err = shards_[s]->CheckInvariants();
    if (!err.empty()) {
      return "shard " + std::to_string(s) + ": " + err;
    }
  }
  return {};
}

static_assert(ShardRoutedStore<PartitionedBingoStore>);

}  // namespace bingo::walk
