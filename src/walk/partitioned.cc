#include "src/walk/partitioned.h"

#include <atomic>

#include "src/walk/store.h"

namespace bingo::walk {

static_assert(WalkStore<PartitionedBingoStore> &&
              AdjacencyStore<PartitionedBingoStore>);

PartitionedBingoStore::PartitionedBingoStore(const graph::WeightedEdgeList& edges,
                                             graph::VertexId num_vertices,
                                             int num_shards,
                                             core::BingoConfig config,
                                             util::ThreadPool* pool)
    : num_vertices_(num_vertices) {
  std::vector<graph::WeightedEdgeList> per_shard(num_shards);
  for (const graph::WeightedEdge& e : edges) {
    per_shard[e.src % num_shards].push_back(e);
  }
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<core::BingoStore>(
        graph::DynamicGraph::FromEdges(num_vertices, per_shard[s]), config,
        pool));
  }
}

core::BatchResult PartitionedBingoStore::ApplyBatch(
    const graph::UpdateList& updates, util::ThreadPool* pool) {
  std::vector<graph::UpdateList> per_shard(shards_.size());
  for (const graph::Update& u : updates) {
    per_shard[ShardOf(u.src)].push_back(u);
  }
  std::atomic<uint64_t> inserted{0};
  std::atomic<uint64_t> deleted{0};
  std::atomic<uint64_t> skipped{0};
  const auto run_shard = [&](std::size_t s) {
    // Shards are independent; each applies its slice without inner
    // parallelism (the outer loop is the parallel dimension).
    const core::BatchResult r = shards_[s]->ApplyBatch(per_shard[s], nullptr);
    inserted.fetch_add(r.inserted, std::memory_order_relaxed);
    deleted.fetch_add(r.deleted, std::memory_order_relaxed);
    skipped.fetch_add(r.skipped_deletes, std::memory_order_relaxed);
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, shards_.size(), run_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      run_shard(s);
    }
  }
  return core::BatchResult{inserted.load(), deleted.load(), skipped.load()};
}

core::StoreMemoryStats PartitionedBingoStore::MemoryStats() const {
  core::StoreMemoryStats total;
  for (const auto& shard : shards_) {
    total += shard->MemoryStats();
  }
  return total;
}

std::string PartitionedBingoStore::CheckInvariants() const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string err = shards_[s]->CheckInvariants();
    if (!err.empty()) {
      return "shard " + std::to_string(s) + ": " + err;
    }
  }
  return {};
}

PartitionedWalkResult RunPartitionedDeepWalk(const PartitionedBingoStore& store,
                                             const WalkConfig& cfg,
                                             util::ThreadPool* pool) {
  struct Walker {
    uint64_t id;
    graph::VertexId cur;
    uint32_t steps;
  };
  const uint64_t num_walkers =
      cfg.num_walkers == 0 ? store.NumVertices() : cfg.num_walkers;
  const int num_shards = store.NumShards();

  std::vector<std::vector<Walker>> queues(num_shards);
  for (uint64_t w = 0; w < num_walkers; ++w) {
    const graph::VertexId start =
        static_cast<graph::VertexId>(w % store.NumVertices());
    queues[store.ShardOf(start)].push_back(Walker{w, start, 0});
  }

  PartitionedWalkResult result;
  std::vector<std::vector<std::vector<Walker>>> outboxes(
      num_shards, std::vector<std::vector<Walker>>(num_shards));

  bool any_live = true;
  while (any_live) {
    ++result.supersteps;
    std::atomic<uint64_t> steps{0};
    const auto run_shard = [&](std::size_t s) {
      uint64_t local_steps = 0;
      for (Walker walker : queues[s]) {
        // Per-walker stream keyed by (walker id, step) keeps the walk
        // deterministic under any shard count.
        util::Rng rng = util::Rng::ForStream(
            cfg.seed ^ (uint64_t{walker.steps} << 40), walker.id);
        const graph::VertexId next = store.SampleNeighbor(walker.cur, rng);
        if (next == graph::kInvalidVertex) {
          continue;  // dead end: walker retires
        }
        ++local_steps;
        walker.cur = next;
        ++walker.steps;
        if (walker.steps < cfg.walk_length) {
          outboxes[s][store.ShardOf(next)].push_back(walker);
        }
      }
      queues[s].clear();
      steps.fetch_add(local_steps, std::memory_order_relaxed);
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, static_cast<std::size_t>(num_shards), run_shard);
    } else {
      for (int s = 0; s < num_shards; ++s) {
        run_shard(static_cast<std::size_t>(s));
      }
    }
    result.total_steps += steps.load();

    // Exchange phase: deliver outboxes (the walker transfer).
    any_live = false;
    for (int from = 0; from < num_shards; ++from) {
      for (int to = 0; to < num_shards; ++to) {
        auto& box = outboxes[from][to];
        if (box.empty()) {
          continue;
        }
        if (from != to) {
          result.walker_migrations += box.size();
        }
        queues[to].insert(queues[to].end(), box.begin(), box.end());
        box.clear();
        any_live = true;
      }
    }
    any_live = any_live || [&] {
      for (const auto& q : queues) {
        if (!q.empty()) {
          return true;
        }
      }
      return false;
    }();
  }
  return result;
}

}  // namespace bingo::walk
