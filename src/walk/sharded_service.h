// ShardedWalkService: per-shard replica pairs with independent epochs.
//
// WalkService (walk/service.h) pays 2x a whole-store ApplyBatch per update
// batch — update latency scales with the full store even when the batch
// touches a handful of vertices. This subsystem shards the service the same
// way PartitionedBingoStore shards the store: vertex v's out-edges (and its
// sampler) live on shard v % num_shards, and each shard is an independent
// WalkServiceT replica pair with its own epoch, writer lock, and drain
// protocol. A batch touching one shard pays 2x *that shard's* ApplyBatch;
// batches touching disjoint shards apply fully in parallel, and queries
// against untouched shards never wait at all.
//
// Queries Acquire() a multi-shard Snapshot: one per-shard snapshot each,
// composed into a view that models the store concepts (SamplingStore, and
// AdjacencyStore when the backend does), so the store-generic walk engine
// runs on it unchanged. Each per-shard snapshot is immutable for its
// lifetime (the inner service guarantees it); the composite is therefore
// per-shard consistent. It is NOT a global serialization point: two shards
// may be pinned at epochs published by different batches. At any quiescent
// point (no in-flight writer) the composite equals one whole-graph store —
// tests/sharded_fuzz_test.cc pins walks to the unsharded store bit for bit.
//
// Update latency model: unsharded, every batch costs 2 x ApplyBatch(whole
// store). Sharded, a batch B costs max over touched shards s of
// 2 x ApplyBatch(shard s slice of B) when routed in parallel — for a
// single-shard-resident workload that is 2 x (1/N)-store work, and
// bench/bench_sharded_service.cc measures exactly this curve.
//
// The caveat of walk/service.h carries over per shard: a thread must not
// apply updates to a shard — nor call CheckInvariants/MemoryStats — while
// holding a live Snapshot of its own (every Snapshot pins all shards).

#ifndef BINGO_SRC_WALK_SHARDED_SERVICE_H_
#define BINGO_SRC_WALK_SHARDED_SERVICE_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/core/store_types.h"
#include "src/graph/types.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/service.h"
#include "src/walk/store.h"

namespace bingo::walk {

struct ShardedServiceStats {
  int num_shards = 0;
  uint64_t epoch = 0;            // sum of shard epochs (batches x shards hit)
  uint64_t min_shard_epoch = 0;  // spread shows routing skew
  uint64_t max_shard_epoch = 0;
  uint64_t queries_served = 0;   // composite snapshots handed out
  uint64_t batches_applied = 0;  // per-shard batches (one multi-shard
                                 // ApplyBatch counts once per shard hit)
  uint64_t updates_applied = 0;
  uint64_t drain_spins = 0;
  uint64_t wal_records = 0;      // per-shard batches journaled
  uint64_t wal_updates = 0;
  uint64_t checkpoints = 0;      // per-shard checkpoint operations
  uint64_t compactions = 0;
};

// Durability manifest for a sharded checkpoint directory: records the shard
// count so recovery can rebuild the same layout. Written atomically.
bool WriteShardedWalManifest(const std::string& dir, int num_shards);
bool ReadShardedWalManifest(const std::string& dir, int& num_shards);

// Per-shard subdirectory of a sharded durability directory.
std::string ShardWalDir(const std::string& dir, int shard);

template <WalkStore Store>
class ShardedWalkServiceT {
 public:
  using ShardService = WalkServiceT<Store>;

  // `factory(shard)` is invoked twice per shard and must produce identical
  // stores for a given shard: each holds the out-edges of the vertices with
  // v % num_shards == shard, over the full vertex-id space.
  ShardedWalkServiceT(
      int num_shards,
      const std::function<std::unique_ptr<Store>(int shard)>& factory,
      util::ThreadPool* update_pool = nullptr)
      : route_pool_(update_pool) {
    assert(num_shards > 0);
    shards_.reserve(num_shards);
    for (int s = 0; s < num_shards; ++s) {
      // Shard replicas rebuild sequentially: the pool's parallel dimension
      // is across shards (ApplyBatch routes slices onto it), and nesting
      // ParallelFor inside pool tasks can starve this fixed-size pool.
      shards_.push_back(std::make_unique<ShardService>(
          [&factory, s] { return factory(s); }, /*update_pool=*/nullptr));
    }
  }

  // Recovery path: adopt already-built shard services (one per shard, e.g.
  // each RecoverWalkService'd from its shard directory).
  explicit ShardedWalkServiceT(
      std::vector<std::unique_ptr<ShardService>> shards,
      util::ThreadPool* update_pool = nullptr)
      : shards_(std::move(shards)), route_pool_(update_pool) {
    assert(!shards_.empty());
  }

  ShardedWalkServiceT(const ShardedWalkServiceT&) = delete;
  ShardedWalkServiceT& operator=(const ShardedWalkServiceT&) = delete;

  int NumShards() const { return static_cast<int>(shards_.size()); }
  int ShardOf(graph::VertexId v) const {
    return static_cast<int>(v % shards_.size());
  }

  // A composite of one pinned snapshot per shard, modeling the store
  // concepts so the engine and apps walk it like any backend.
  class Snapshot {
   public:
    Snapshot(Snapshot&&) noexcept = default;
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    Snapshot& operator=(Snapshot&&) = delete;

    graph::VertexId NumVertices() const {
      // Shards grow lazily when a batch slice references brand-new vertex
      // ids, so a new vertex materializes only on the shards whose slices
      // mention it; the widest shard carries the true count (reads of an
      // id a shard has not materialized answer "isolated", matching the
      // whole-graph store).
      graph::VertexId n = 0;
      for (const auto& snap : shards_) {
        n = std::max(n,
                     static_cast<graph::VertexId>(snap.store().NumVertices()));
      }
      return n;
    }
    graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const {
      return ShardFor(v).SampleNeighbor(v, rng);
    }
    void SampleNeighborBatch(graph::VertexId v, util::Rng* const* rngs,
                             std::size_t n, graph::VertexId* out) const
      requires BatchSamplingStore<Store>
    {
      ShardFor(v).SampleNeighborBatch(v, rngs, n, out);
    }
    void PrefetchVertex(graph::VertexId v) const
      requires BatchSamplingStore<Store>
    {
      ShardFor(v).PrefetchVertex(v);
    }
    bool HasEdge(graph::VertexId src, graph::VertexId dst) const
      requires AdjacencyStore<Store>
    {
      return ShardFor(src).HasEdge(src, dst);
    }
    std::span<const graph::Edge> NeighborsOf(graph::VertexId v) const
      requires AdjacencyStore<Store>
    {
      return ShardFor(v).NeighborsOf(v);
    }

    // Sum of pinned shard epochs; advances by one per shard a batch hit.
    uint64_t epoch() const {
      uint64_t total = 0;
      for (const auto& snap : shards_) {
        total += snap.epoch();
      }
      return total;
    }

    // True while no pinned shard replica has been mutated since Acquire.
    bool Consistent() const {
      for (const auto& snap : shards_) {
        if (!snap.Consistent()) {
          return false;
        }
      }
      return true;
    }

    const Store& shard_store(int s) const {
      return shards_[static_cast<std::size_t>(s)].store();
    }

   private:
    friend class ShardedWalkServiceT;
    explicit Snapshot(std::vector<typename ShardService::Snapshot> shards)
        : shards_(std::move(shards)) {}

    const Store& ShardFor(graph::VertexId v) const {
      return shards_[v % shards_.size()].store();
    }

    std::vector<typename ShardService::Snapshot> shards_;
  };

  Snapshot Acquire() const {
    std::vector<typename ShardService::Snapshot> snaps;
    snaps.reserve(shards_.size());
    for (const auto& shard : shards_) {
      snaps.push_back(shard->Acquire());
    }
    queries_.fetch_add(1, std::memory_order_relaxed);
    return Snapshot(std::move(snaps));
  }

  // Runs `fn(const Snapshot&)` on a freshly acquired composite snapshot.
  template <typename Fn>
  auto Query(Fn&& fn) const {
    const Snapshot snap = Acquire();
    return std::forward<Fn>(fn)(snap);
  }

  WalkResult DeepWalk(const WalkConfig& cfg,
                      util::ThreadPool* pool = nullptr) const {
    return Query([&](const Snapshot& s) { return RunDeepWalk(s, cfg, pool); });
  }
  WalkResult Ppr(const WalkConfig& cfg, double stop_probability = 1.0 / 80.0,
                 util::ThreadPool* pool = nullptr) const {
    return Query(
        [&](const Snapshot& s) { return RunPpr(s, cfg, stop_probability, pool); });
  }
  WalkResult Node2vec(const WalkConfig& cfg, const Node2vecParams& params = {},
                      util::ThreadPool* pool = nullptr) const
    requires AdjacencyStore<Store>
  {
    return Query(
        [&](const Snapshot& s) { return RunNode2vec(s, cfg, params, pool); });
  }

  // Routes `updates` by source vertex and applies each shard's slice as one
  // batch through that shard's replica-pair protocol; slices run in
  // parallel on `pool` (falls back to the construction-time update pool,
  // then to sequential). Call from a non-pool thread only: slices ride the
  // pool's fixed workers. Accounting is exact: slices partition the batch
  // by vertex, and a store batch is applied insert->delete->rebuild per
  // vertex, so the summed BatchResult equals an unsharded store's.
  core::BatchResult ApplyBatch(const graph::UpdateList& updates,
                               util::ThreadPool* pool = nullptr) {
    std::vector<graph::UpdateList> per_shard(shards_.size());
    for (const graph::Update& u : updates) {
      if (u.kind == graph::Update::Kind::kAdvanceTime) {
        // Global clock tick: every shard must advance (and journal the
        // tick in its own WAL so per-shard recovery replays it). src is
        // kInvalidVertex and must not route.
        for (auto& slice : per_shard) {
          slice.push_back(u);
        }
        continue;
      }
      per_shard[ShardOf(u.src)].push_back(u);
    }
    if (pool == nullptr) {
      pool = route_pool_;
    }
    std::atomic<uint64_t> inserted{0};
    std::atomic<uint64_t> deleted{0};
    std::atomic<uint64_t> skipped{0};
    const auto run_shard = [&](std::size_t s) {
      if (per_shard[s].empty()) {
        return;  // untouched shard: no epoch bump, no replica work
      }
      const core::BatchResult r = shards_[s]->ApplyBatch(per_shard[s]);
      inserted.fetch_add(r.inserted, std::memory_order_relaxed);
      deleted.fetch_add(r.deleted, std::memory_order_relaxed);
      skipped.fetch_add(r.skipped_deletes, std::memory_order_relaxed);
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, shards_.size(), run_shard);
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        run_shard(s);
      }
    }
    return core::BatchResult{inserted.load(), deleted.load(), skipped.load()};
  }

  // Applies a pre-routed slice (every update's source must map to `shard`)
  // through that shard's protocol. Thread-safe across shards — this is the
  // batcher's drain entry point; concurrent calls for distinct shards
  // proceed fully in parallel.
  core::BatchResult ApplyShardBatch(int shard,
                                    const graph::UpdateList& updates) {
    return shards_[static_cast<std::size_t>(shard)]->ApplyBatch(updates);
  }

  // Advances the logical epoch on every shard (broadcast via ApplyBatch, so
  // each shard journals and replica-applies the tick).
  void AdvanceTime(uint32_t new_epoch, util::ThreadPool* pool = nullptr) {
    ApplyBatch({graph::MakeAdvanceTime(new_epoch)}, pool);
  }

  // --- durability: per-shard base + WAL segments ---------------------------
  //
  // The sharded layout mirrors the routing: `dir`/MANIFEST records the
  // shard count, and shard s keeps its own base.snapshot + wal.log under
  // `dir`/shard-s. Each shard journals exactly the batch slices its
  // replica pair applies (ApplyBatch routing, ApplyShardBatch, and the
  // UpdateBatcher's drains all funnel through the shard service), so
  // per-shard recovery replays per-shard apply order — the only order that
  // determines a vertex's state. Checkpoint() makes the compaction decision
  // for the WHOLE service (aggregate delta vs aggregate edges) so
  // canonicalization stays a service-wide point that differential
  // references can mirror.

  // Attaches `dir` (created if needed); writes the manifest and every
  // shard's initial base. Aggregated result (ok = all shards ok).
  CheckpointResult AttachWal(const std::string& dir,
                             WalPersistenceOptions options = {})
    requires CheckpointableStore<Store>
  {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    CheckpointResult total;
    if (!WriteShardedWalManifest(dir, NumShards())) {
      return total;
    }
    wal_dir_ = dir;
    persist_options_ = options;
    total.ok = true;
    total.compacted = true;
    for (int s = 0; s < NumShards(); ++s) {
      const CheckpointResult r =
          shards_[static_cast<std::size_t>(s)]->AttachWal(ShardWalDir(dir, s),
                                                          options);
      total.ok = total.ok && r.ok;
      total.bytes_written += r.bytes_written;
    }
    wal_attached_ = total.ok;
    return total;
  }

  // Incremental checkpoint of every shard; compacts all shards (or none)
  // based on the aggregate journaled delta vs the aggregate edge count.
  CheckpointResult Checkpoint()
    requires CheckpointableStore<Store>
  {
    CheckpointResult total;
    if (!wal_attached_) {
      return total;
    }
    uint64_t delta = 0;
    uint64_t live_edges = 0;
    bool any_wal_failed = false;
    for (const auto& shard : shards_) {
      delta += shard->WalUpdatesSinceBase();
      any_wal_failed = any_wal_failed || shard->WalFailed();
      live_edges += shard->Query(
          [](const Store& s) { return static_cast<uint64_t>(s.NumEdges()); });
    }
    // A failed shard journal means un-journaled applied batches; compacting
    // every shard rewrites the bases past the gap (the same self-repair the
    // unsharded Checkpoint's default policy performs).
    const bool compact =
        any_wal_failed ||
        static_cast<double>(delta) >
            persist_options_.compact_fraction *
                static_cast<double>(std::max<uint64_t>(live_edges, 1));
    total.ok = true;
    total.compacted = compact;
    for (auto& shard : shards_) {
      const CheckpointResult r = shard->Checkpoint(compact);
      total.ok = total.ok && r.ok;
      total.bytes_written += r.bytes_written;
      total.wal_seq += r.wal_seq;  // sum across shards (per-shard sequences)
    }
    return total;
  }

  // fsyncs every shard's WAL (the batcher's durable-flush hook).
  bool SyncWal() {
    bool ok = true;
    for (auto& shard : shards_) {
      ok = shard->SyncWal() && ok;
    }
    return ok;
  }

  bool WalAttached() const { return wal_attached_; }

  // Recovery hook: mark `dir` attached after the shards were recovered with
  // their WALs already adopted.
  void AdoptWalDir(const std::string& dir, WalPersistenceOptions options) {
    wal_dir_ = dir;
    persist_options_ = options;
    wal_attached_ = true;
  }

  // Sum of shard epochs.
  uint64_t Epoch() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->Epoch();
    }
    return total;
  }

  ShardedServiceStats Stats() const {
    ShardedServiceStats stats;
    stats.num_shards = NumShards();
    stats.min_shard_epoch = UINT64_MAX;
    for (const auto& shard : shards_) {
      const ServiceStats s = shard->Stats();
      stats.epoch += s.epoch;
      stats.min_shard_epoch = std::min(stats.min_shard_epoch, s.epoch);
      stats.max_shard_epoch = std::max(stats.max_shard_epoch, s.epoch);
      stats.batches_applied += s.batches_applied;
      stats.updates_applied += s.updates_applied;
      stats.drain_spins += s.drain_spins;
      stats.wal_records += s.wal_records;
      stats.wal_updates += s.wal_updates;
      stats.checkpoints += s.checkpoints;
      stats.compactions += s.compactions;
    }
    stats.queries_served = queries_.load(std::memory_order_relaxed);
    return stats;
  }

  core::StoreMemoryStats MemoryStats() const {
    core::StoreMemoryStats total;
    for (const auto& shard : shards_) {
      total += shard->MemoryStats();
    }
    return total;
  }

  std::string CheckInvariants() const {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::string err = shards_[s]->CheckInvariants();
      if (!err.empty()) {
        return "shard " + std::to_string(s) + ": " + err;
      }
    }
    return {};
  }

  ShardService& Shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }

 private:
  std::vector<std::unique_ptr<ShardService>> shards_;
  util::ThreadPool* route_pool_;
  mutable std::atomic<uint64_t> queries_{0};

  // Persistence state (per-shard WALs live in the shard services).
  std::string wal_dir_;
  WalPersistenceOptions persist_options_;
  bool wal_attached_ = false;
};

// The BingoStore instantiation is compiled once in sharded_service.cc.
extern template class ShardedWalkServiceT<core::BingoStore>;

using ShardedWalkService = ShardedWalkServiceT<core::BingoStore>;

// Builds a BingoStore-backed sharded service over `edges`: shard s holds
// the out-edges of vertices with v % num_shards == s (2 replicas each).
// `build_pool` parallelizes replica construction; `update_pool` becomes the
// default cross-shard routing pool for ApplyBatch.
std::unique_ptr<ShardedWalkService> MakeShardedWalkService(
    const graph::WeightedEdgeList& edges, graph::VertexId num_vertices,
    int num_shards, core::BingoConfig config = {},
    util::ThreadPool* build_pool = nullptr,
    util::ThreadPool* update_pool = nullptr);

// Rebuilds a sharded service from a durability directory written by
// AttachWal/Checkpoint: reads the manifest, recovers every shard from its
// base + WAL (torn tails dropped, journaling re-armed), and reassembles the
// composite. The recovered service walks bit-identically to one that never
// crashed and had applied exactly the recovered per-shard batches. Returns
// nullptr if the manifest or any shard fails to recover; `report`
// aggregates the per-shard recoveries.
std::unique_ptr<ShardedWalkService> RecoverShardedWalkService(
    const std::string& dir, core::BingoConfig config = {},
    graph::VertexId num_vertices = 0, util::ThreadPool* build_pool = nullptr,
    util::ThreadPool* update_pool = nullptr, WalPersistenceOptions options = {},
    RecoveryReport* report = nullptr);

// ------------------------------------------------------- stress driving --
//
// Shared by `bingo_cli serve-bench --store sharded` and
// bench/bench_sharded_service.cc: N query threads walk composite snapshots
// while the calling thread streams update batches, either directly through
// ApplyBatch or coalesced through an UpdateBatcher (see walk/batcher.h).

struct ShardedStressOptions {
  int query_threads = 4;
  uint64_t batch_size = 1000;  // updates per ApplyBatch / per flush window
  uint64_t walkers_per_query = 256;
  uint32_t walk_length = 10;
  uint64_t seed = 42;
  bool use_batcher = false;  // submit single edges + flush, vs direct batches
};

struct ShardedStressReport {
  uint64_t queries = 0;
  uint64_t walk_steps = 0;
  uint64_t inconsistent_snapshots = 0;  // protocol violations (must be 0)
  uint64_t batches = 0;
  double wall_seconds = 0.0;
  std::vector<double> batch_seconds;  // per-batch update latency, in order

  double SamplesPerSecond() const {
    return wall_seconds > 0.0 ? static_cast<double>(walk_steps) / wall_seconds
                              : 0.0;
  }
  double MeanUpdateSeconds() const;
  double MaxUpdateSeconds() const;
  // Latency percentile over the recorded batches (q in [0, 1]).
  double UpdateSecondsQuantile(double q) const;
};

ShardedStressReport RunShardedServiceStress(ShardedWalkService& service,
                                            const graph::UpdateList& updates,
                                            const ShardedStressOptions& options);

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_SHARDED_SERVICE_H_
