// Walk-derived analytics (§1): the paper motivates random walks through
// applications that consume visit frequencies — personalized PageRank,
// SimRank vertex similarity, and Random Walk Domination ("launch many
// random walks and use the visit frequency of each vertex ... to derive
// PageRank value, vertex similarity, and influence").
//
// These helpers turn a store + walk engine into those end products.

#ifndef BINGO_SRC_WALK_ANALYTICS_H_
#define BINGO_SRC_WALK_ANALYTICS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/engine.h"
#include "src/walk/store.h"

namespace bingo::walk {

// ----------------------------------------------------------- PPR queries --

struct PprQueryConfig {
  uint64_t num_walkers = 10000;
  double stop_probability = 1.0 / 80.0;
  uint32_t max_length = 1280;
  uint64_t seed = 42;
};

// Monte-Carlo personalized PageRank from a single source: visit
// frequencies of walks restarted at `source`, normalized to sum 1.
template <SamplingStore Store>
std::vector<double> PersonalizedPageRank(const Store& store,
                                         graph::VertexId source,
                                         const PprQueryConfig& config = {},
                                         util::ThreadPool* pool = nullptr);

// Top-k vertices of a score vector, largest first, excluding `exclude`.
std::vector<std::pair<graph::VertexId, double>> TopK(
    const std::vector<double>& scores, std::size_t k,
    graph::VertexId exclude = graph::kInvalidVertex);

// ------------------------------------------------------ SimRank estimate --

// Monte-Carlo SimRank s(a, b): the expected discounted first-meeting time
// of two independent walkers starting at a and b (Jeh & Widom's random
// surfer-pairs model, estimated by simulation with decay factor c).
template <SamplingStore Store>
double SimRankEstimate(const Store& store, graph::VertexId a, graph::VertexId b,
                       double decay = 0.8, uint64_t num_pairs = 20000,
                       uint32_t max_length = 16, uint64_t seed = 42);

// ------------------------------------------------- random walk domination --

// Greedy k-seed selection maximizing walk coverage (Li et al.'s random-walk
// domination, hit-and-cover form): repeatedly picks the vertex covering the
// most yet-uncovered walks from a corpus of short walks.
template <SamplingStore Store>
std::vector<graph::VertexId> RandomWalkDomination(const Store& store,
                                                  std::size_t k,
                                                  uint32_t walk_length = 8,
                                                  uint64_t seed = 42,
                                                  util::ThreadPool* pool = nullptr);

// ------------------------------------------------------- implementations --

template <SamplingStore Store>
std::vector<double> PersonalizedPageRank(const Store& store,
                                         graph::VertexId source,
                                         const PprQueryConfig& config,
                                         util::ThreadPool* pool) {
  if (config.num_walkers == 0) {
    // Zero walkers means an empty query here, unlike WalkConfig's
    // one-per-vertex default.
    return std::vector<double>(store.NumVertices(), 0.0);
  }
  // All walkers start at `source`: the engine's start-vertex override runs
  // the query on the same driver and lock-free merge path as whole-graph
  // workloads, so the walk loop (and its per-walker RNG streams) lives in
  // exactly one place — engine.h.
  WalkConfig cfg;
  cfg.num_walkers = config.num_walkers;
  cfg.walk_length = config.max_length;
  cfg.seed = config.seed;
  cfg.count_visits = true;
  cfg.start_vertex = source;
  internal::PprStepper<Store> stepper{store, config.stop_probability};
  const WalkResult result = RunWalks(store, cfg, stepper, pool);

  uint64_t total = 0;
  for (const uint32_t c : result.visit_counts) {
    total += c;
  }
  // Always one score per vertex, even when the engine ran no walks (e.g. an
  // out-of-range source leaves visit_counts empty).
  std::vector<double> scores(store.NumVertices(), 0.0);
  if (total > 0) {
    for (std::size_t v = 0; v < result.visit_counts.size(); ++v) {
      scores[v] = static_cast<double>(result.visit_counts[v]) /
                  static_cast<double>(total);
    }
  }
  return scores;
}

template <SamplingStore Store>
double SimRankEstimate(const Store& store, graph::VertexId a, graph::VertexId b,
                       double decay, uint64_t num_pairs, uint32_t max_length,
                       uint64_t seed) {
  if (a == b) {
    return 1.0;
  }
  double total = 0.0;
  for (uint64_t pair = 0; pair < num_pairs; ++pair) {
    util::Rng rng = util::Rng::ForStream(seed, pair);
    graph::VertexId x = a;
    graph::VertexId y = b;
    for (uint32_t t = 1; t <= max_length; ++t) {
      x = store.SampleNeighbor(x, rng);
      y = store.SampleNeighbor(y, rng);
      if (x == graph::kInvalidVertex || y == graph::kInvalidVertex) {
        break;
      }
      if (x == y) {
        // First meeting at time t contributes c^t.
        double contribution = 1.0;
        for (uint32_t i = 0; i < t; ++i) {
          contribution *= decay;
        }
        total += contribution;
        break;
      }
    }
  }
  return total / static_cast<double>(num_pairs);
}

template <SamplingStore Store>
std::vector<graph::VertexId> RandomWalkDomination(const Store& store,
                                                  std::size_t k,
                                                  uint32_t walk_length,
                                                  uint64_t seed,
                                                  util::ThreadPool* pool) {
  WalkConfig cfg;
  cfg.walk_length = walk_length;
  cfg.seed = seed;
  cfg.record_paths = true;
  const WalkResult corpus =
      RunWalks(store, cfg, internal::FirstOrderStepper<Store>{store}, pool);

  // Derived from the corpus itself, so it can't desync from however the
  // engine resolved the walker count.
  const std::size_t num_walks =
      corpus.path_offsets.empty() ? 0 : corpus.path_offsets.size() - 1;
  // vertex -> walks it appears on.
  std::vector<std::vector<uint32_t>> covers(store.NumVertices());
  for (std::size_t w = 0; w < num_walks; ++w) {
    for (uint64_t i = corpus.path_offsets[w]; i < corpus.path_offsets[w + 1];
         ++i) {
      auto& bucket = covers[corpus.paths[i]];
      if (bucket.empty() || bucket.back() != static_cast<uint32_t>(w)) {
        bucket.push_back(static_cast<uint32_t>(w));
      }
    }
  }
  std::vector<bool> covered(num_walks, false);
  std::vector<graph::VertexId> seeds;
  seeds.reserve(k);
  for (std::size_t round = 0; round < k; ++round) {
    graph::VertexId best = graph::kInvalidVertex;
    std::size_t best_gain = 0;
    for (graph::VertexId v = 0; v < covers.size(); ++v) {
      std::size_t gain = 0;
      for (uint32_t w : covers[v]) {
        gain += covered[w] ? 0 : 1;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best == graph::kInvalidVertex) {
      break;  // everything coverable is covered
    }
    for (uint32_t w : covers[best]) {
      covered[w] = true;
    }
    seeds.push_back(best);
  }
  return seeds;
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_ANALYTICS_H_
