// Walk-derived analytics (§1): the paper motivates random walks through
// applications that consume visit frequencies — personalized PageRank,
// SimRank vertex similarity, and Random Walk Domination ("launch many
// random walks and use the visit frequency of each vertex ... to derive
// PageRank value, vertex similarity, and influence").
//
// These helpers turn a store + walk engine into those end products.

#ifndef BINGO_SRC_WALK_ANALYTICS_H_
#define BINGO_SRC_WALK_ANALYTICS_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/engine.h"
#include "src/walk/store.h"

namespace bingo::walk {

// ----------------------------------------------------------- PPR queries --

struct PprQueryConfig {
  uint64_t num_walkers = 10000;
  double stop_probability = 1.0 / 80.0;
  uint32_t max_length = 1280;
  uint64_t seed = 42;
};

// Monte-Carlo personalized PageRank from a single source: visit
// frequencies of walks restarted at `source`, normalized to sum 1.
template <SamplingStore Store>
std::vector<double> PersonalizedPageRank(const Store& store,
                                         graph::VertexId source,
                                         const PprQueryConfig& config = {},
                                         util::ThreadPool* pool = nullptr);

// Top-k vertices of a score vector, largest first, excluding `exclude`.
std::vector<std::pair<graph::VertexId, double>> TopK(
    const std::vector<double>& scores, std::size_t k,
    graph::VertexId exclude = graph::kInvalidVertex);

// ------------------------------------------------------ SimRank estimate --

// Monte-Carlo SimRank s(a, b): the expected discounted first-meeting time
// of two independent walkers starting at a and b (Jeh & Widom's random
// surfer-pairs model, estimated by simulation with decay factor c).
template <SamplingStore Store>
double SimRankEstimate(const Store& store, graph::VertexId a, graph::VertexId b,
                       double decay = 0.8, uint64_t num_pairs = 20000,
                       uint32_t max_length = 16, uint64_t seed = 42);

// ------------------------------------------------- random walk domination --

// Greedy k-seed selection maximizing walk coverage (Li et al.'s random-walk
// domination, hit-and-cover form): repeatedly picks the vertex covering the
// most yet-uncovered walks from a corpus of short walks.
template <SamplingStore Store>
std::vector<graph::VertexId> RandomWalkDomination(const Store& store,
                                                  std::size_t k,
                                                  uint32_t walk_length = 8,
                                                  uint64_t seed = 42,
                                                  util::ThreadPool* pool = nullptr);

// ------------------------------------------------------- implementations --

template <SamplingStore Store>
std::vector<double> PersonalizedPageRank(const Store& store,
                                         graph::VertexId source,
                                         const PprQueryConfig& config,
                                         util::ThreadPool* pool) {
  struct SourcePprStepper {
    const Store& store;
    double stop_probability;
    graph::VertexId Next(graph::VertexId cur, graph::VertexId /*prev*/,
                         util::Rng& rng) const {
      return store.SampleNeighbor(cur, rng);
    }
    bool Terminate(util::Rng& rng) const {
      return rng.NextBool(stop_probability);
    }
  };
  // All walkers start at `source`: run the generic engine with one walker
  // per stream but remap starts by walking a single-vertex id space and
  // translating. Simpler: drive the walks directly here. Merging follows
  // the engine's lock-free pattern: chunk-local counts flushed through
  // relaxed atomics (additions commute, so the result is deterministic).
  std::vector<std::atomic<uint32_t>> visit_acc(store.NumVertices());
  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    std::vector<uint32_t> local(store.NumVertices(), 0);
    SourcePprStepper stepper{store, config.stop_probability};
    for (std::size_t w = lo; w < hi; ++w) {
      util::Rng rng = util::Rng::ForStream(config.seed, w);
      graph::VertexId cur = source;
      ++local[cur];
      for (uint32_t step = 0; step < config.max_length; ++step) {
        const graph::VertexId next = stepper.Next(cur, graph::kInvalidVertex, rng);
        if (next == graph::kInvalidVertex) {
          break;
        }
        cur = next;
        ++local[cur];
        if (stepper.Terminate(rng)) {
          break;
        }
      }
    }
    for (std::size_t v = 0; v < local.size(); ++v) {
      if (local[v] != 0) {
        visit_acc[v].fetch_add(local[v], std::memory_order_relaxed);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, config.num_walkers, run_range, 512);
  } else {
    run_range(0, config.num_walkers);
  }
  uint64_t total = 0;
  for (const auto& c : visit_acc) {
    total += c.load(std::memory_order_relaxed);
  }
  std::vector<double> scores(visit_acc.size(), 0.0);
  if (total > 0) {
    for (std::size_t v = 0; v < visit_acc.size(); ++v) {
      scores[v] = static_cast<double>(visit_acc[v].load(std::memory_order_relaxed)) /
                  static_cast<double>(total);
    }
  }
  return scores;
}

template <SamplingStore Store>
double SimRankEstimate(const Store& store, graph::VertexId a, graph::VertexId b,
                       double decay, uint64_t num_pairs, uint32_t max_length,
                       uint64_t seed) {
  if (a == b) {
    return 1.0;
  }
  double total = 0.0;
  for (uint64_t pair = 0; pair < num_pairs; ++pair) {
    util::Rng rng = util::Rng::ForStream(seed, pair);
    graph::VertexId x = a;
    graph::VertexId y = b;
    for (uint32_t t = 1; t <= max_length; ++t) {
      x = store.SampleNeighbor(x, rng);
      y = store.SampleNeighbor(y, rng);
      if (x == graph::kInvalidVertex || y == graph::kInvalidVertex) {
        break;
      }
      if (x == y) {
        // First meeting at time t contributes c^t.
        double contribution = 1.0;
        for (uint32_t i = 0; i < t; ++i) {
          contribution *= decay;
        }
        total += contribution;
        break;
      }
    }
  }
  return total / static_cast<double>(num_pairs);
}

template <SamplingStore Store>
std::vector<graph::VertexId> RandomWalkDomination(const Store& store,
                                                  std::size_t k,
                                                  uint32_t walk_length,
                                                  uint64_t seed,
                                                  util::ThreadPool* pool) {
  WalkConfig cfg;
  cfg.walk_length = walk_length;
  cfg.seed = seed;
  cfg.record_paths = true;
  const WalkResult corpus =
      RunWalks(store, cfg, internal::FirstOrderStepper<Store>{store}, pool);

  const std::size_t num_walks = cfg.num_walkers == 0
                                    ? store.NumVertices()
                                    : cfg.num_walkers;
  // vertex -> walks it appears on.
  std::vector<std::vector<uint32_t>> covers(store.NumVertices());
  for (std::size_t w = 0; w < num_walks; ++w) {
    for (uint64_t i = corpus.path_offsets[w]; i < corpus.path_offsets[w + 1];
         ++i) {
      auto& bucket = covers[corpus.paths[i]];
      if (bucket.empty() || bucket.back() != static_cast<uint32_t>(w)) {
        bucket.push_back(static_cast<uint32_t>(w));
      }
    }
  }
  std::vector<bool> covered(num_walks, false);
  std::vector<graph::VertexId> seeds;
  seeds.reserve(k);
  for (std::size_t round = 0; round < k; ++round) {
    graph::VertexId best = graph::kInvalidVertex;
    std::size_t best_gain = 0;
    for (graph::VertexId v = 0; v < covers.size(); ++v) {
      std::size_t gain = 0;
      for (uint32_t w : covers[v]) {
        gain += covered[w] ? 0 : 1;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best == graph::kInvalidVertex) {
      break;  // everything coverable is covered
    }
    for (uint32_t w : covers[best]) {
      covered[w] = true;
    }
    seeds.push_back(best);
  }
  return seeds;
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_ANALYTICS_H_
