#include "src/walk/ooc_store.h"

#include <algorithm>
#include <utility>

namespace bingo::walk {

namespace {

// Per-thread staging buffer for budgeted-mode preads of one vertex's base
// edge run. Keyed by (store uid, vertex) so a repeated probe of the same
// vertex — node2vec's rejection loop — reads the file once; the base tier
// is immutable, so there is nothing to invalidate.
struct TlsEdgeBuffer {
  uint64_t store_uid = 0;
  graph::VertexId vertex = graph::kInvalidVertex;
  std::vector<graph::Edge> edges;
};

thread_local TlsEdgeBuffer tls_edge_buffer;

std::atomic<uint64_t> next_store_uid{1};

// Exact inverse-transform draw over `edges` with precomputed `total`:
// one NextUnit() variate when a draw is possible, zero on dead ends. The
// total must be the forward sum of the span's biases (writer-accumulated
// for base runs), so the clamp to the last edge only absorbs float dust.
graph::VertexId SampleIts(std::span<const graph::Edge> edges, double total,
                          util::Rng& rng) {
  if (edges.empty() || !(total > 0)) {
    return graph::kInvalidVertex;
  }
  double draw = rng.NextUnit() * total;
  for (const graph::Edge& e : edges) {
    draw -= e.bias;
    if (draw < 0) {
      return e.dst;
    }
  }
  return edges.back().dst;
}

double SpanTotal(std::span<const graph::Edge> edges) {
  double total = 0;
  for (const graph::Edge& e : edges) {
    total += e.bias;
  }
  return total;
}

}  // namespace

std::unique_ptr<TieredStore> TieredStore::Open(const std::string& csr_path,
                                               core::BingoConfig config,
                                               TieredStoreOptions options,
                                               util::ThreadPool* pool,
                                               std::string* error) {
  auto store = std::make_unique<TieredStore>();
  if (!graph::CsrMmap::Open(csr_path, &store->csr_, error)) {
    return nullptr;
  }
  if (config.pipeline.Active()) {
    if (error != nullptr) {
      *error = "tiered store: the out-of-core tier requires the identity "
               "bias pipeline (base biases are pre-composed into the CSR "
               "file; decay/type gates cannot re-compose tiered edges)";
    }
    return nullptr;
  }
  store->cache_ = std::make_unique<core::BlockCache>(
      &store->csr_, core::BlockCacheOptions{options.memory_budget_bytes,
                                            options.verify_crc});
  store->overlay_ = std::make_unique<core::BingoStore>(
      graph::DynamicGraph::FromEdges(store->csr_.NumVertices(),
                                     graph::WeightedEdgeList{}),
      config, pool);
  store->promoted_.assign(store->csr_.NumVertices(), 0);
  store->base_live_edges_ = store->csr_.NumEdges();
  store->uid_ = next_store_uid.fetch_add(1, std::memory_order_relaxed);
  return store;
}

std::span<const graph::Edge> TieredStore::BaseEdgesFor(
    graph::VertexId v) const {
  const uint64_t degree = csr_.Degree(v);
  if (degree == 0) {
    return {};
  }
  const uint32_t b = csr_.BlockOfVertex(v);
  const graph::Edge* blk = cache_->Resident(b);
  if (blk == nullptr && !cache_->Budgeted()) {
    std::string err;
    if (cache_->Load(b, &err)) {
      blk = cache_->Resident(b);
    }
  }
  const uint64_t first = csr_.EdgeOffset(v);
  if (blk != nullptr) {
    return {blk + (first - csr_.BlockFirstEdge(b)),
            static_cast<std::size_t>(degree)};
  }
  TlsEdgeBuffer& buf = tls_edge_buffer;
  if (buf.store_uid != uid_ || buf.vertex != v) {
    buf.edges.resize(static_cast<std::size_t>(degree));
    if (!csr_.ReadEdges(first, degree, buf.edges.data())) {
      io_failed_.store(true, std::memory_order_relaxed);
      buf.vertex = graph::kInvalidVertex;
      return {};
    }
    buf.store_uid = uid_;
    buf.vertex = v;
  }
  return {buf.edges.data(), static_cast<std::size_t>(degree)};
}

graph::VertexId TieredStore::SampleNeighbor(graph::VertexId v,
                                            util::Rng& rng) const {
  if (Promoted(v)) {
    const auto adj = overlay_->NeighborsOf(v);
    return SampleIts(adj, SpanTotal(adj), rng);
  }
  return SampleIts(BaseEdgesFor(v), csr_.TotalBias(v), rng);
}

void TieredStore::SampleNeighborBatch(graph::VertexId v,
                                      util::Rng* const* rngs, std::size_t n,
                                      graph::VertexId* out) const {
  std::span<const graph::Edge> adj;
  double total = 0;
  if (Promoted(v)) {
    adj = overlay_->NeighborsOf(v);
    total = SpanTotal(adj);
  } else {
    adj = BaseEdgesFor(v);
    total = csr_.TotalBias(v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = SampleIts(adj, total, *rngs[i]);
  }
}

void TieredStore::PrefetchVertex(graph::VertexId v) const {
  if (Promoted(v)) {
    overlay_->PrefetchVertex(v);
  }
}

bool TieredStore::HasEdge(graph::VertexId src, graph::VertexId dst) const {
  if (Promoted(src)) {
    return overlay_->HasEdge(src, dst);
  }
  const uint64_t degree = csr_.Degree(src);
  if (degree == 0) {
    return false;
  }
  const uint32_t b = csr_.BlockOfVertex(src);
  const graph::Edge* blk = cache_->Resident(b);
  if (blk == nullptr && !cache_->Budgeted()) {
    std::string err;
    if (cache_->Load(b, &err)) {
      blk = cache_->Resident(b);
    }
  }
  const uint64_t first = csr_.EdgeOffset(src);
  if (blk != nullptr) {
    const graph::Edge* run = blk + (first - csr_.BlockFirstEdge(b));
    for (uint64_t i = 0; i < degree; ++i) {
      if (run[i].dst == dst) {
        return true;
      }
    }
    return false;
  }
  // Chunked pread scan on a fixed stack buffer — deliberately NOT the
  // per-thread vertex buffer, which the caller may be holding as a
  // NeighborsOf span (node2vec probes prev's adjacency mid-scan of cur's).
  graph::Edge chunk[256];
  for (uint64_t i = 0; i < degree; i += 256) {
    const uint64_t take = std::min<uint64_t>(256, degree - i);
    if (!csr_.ReadEdges(first + i, take, chunk)) {
      io_failed_.store(true, std::memory_order_relaxed);
      return false;
    }
    for (uint64_t j = 0; j < take; ++j) {
      if (chunk[j].dst == dst) {
        return true;
      }
    }
  }
  return false;
}

std::span<const graph::Edge> TieredStore::NeighborsOf(
    graph::VertexId v) const {
  if (Promoted(v)) {
    return overlay_->NeighborsOf(v);
  }
  return BaseEdgesFor(v);
}

core::BatchResult TieredStore::ApplyBatch(const graph::UpdateList& updates,
                                          util::ThreadPool* pool) {
  // First edge update touching a base vertex promotes it: fold its base
  // run into the overlay as synthetic inserts ahead of the real updates,
  // in ONE overlay batch, so the duplicate-deletion rule sees base edges
  // (older timestamps, canonical order) exactly as the in-memory store
  // would.
  std::vector<graph::VertexId> to_promote;
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      continue;  // no edge; passes through (identity pipeline => no-op)
    }
    if (u.src < csr_.NumVertices() && promoted_[u.src] == 0) {
      to_promote.push_back(u.src);
    }
  }
  std::sort(to_promote.begin(), to_promote.end());
  to_promote.erase(std::unique(to_promote.begin(), to_promote.end()),
                   to_promote.end());

  uint64_t synthetic = 0;
  graph::UpdateList combined;
  std::vector<graph::Edge> run;
  for (const graph::VertexId v : to_promote) {
    const uint64_t degree = csr_.Degree(v);
    run.resize(static_cast<std::size_t>(degree));
    if (degree > 0 &&
        !csr_.ReadEdges(csr_.EdgeOffset(v), degree, run.data())) {
      io_failed_.store(true, std::memory_order_relaxed);
      return core::BatchResult{};  // nothing applied; CheckInvariants flags
    }
    for (const graph::Edge& e : run) {
      graph::Update u;
      u.kind = graph::Update::Kind::kInsert;
      u.src = v;
      u.dst = e.dst;
      u.bias = e.bias;
      u.timestamp = e.timestamp;
      combined.push_back(u);
    }
    synthetic += degree;
  }
  core::BatchResult result;
  if (combined.empty()) {
    result = overlay_->ApplyBatch(updates, pool);
  } else {
    combined.insert(combined.end(), updates.begin(), updates.end());
    result = overlay_->ApplyBatch(combined, pool);
    result.inserted -= synthetic;
  }
  for (const graph::VertexId v : to_promote) {
    promoted_[v] = 1;
    base_live_edges_ -= csr_.Degree(v);
  }
  promoted_count_ += to_promote.size();
  return result;
}

bool TieredStore::PrepareBlock(uint32_t b) const {
  if (b >= csr_.NumBlocks()) {
    return true;  // the virtual RAM block is always resident
  }
  std::string err;
  if (!cache_->Load(b, &err)) {
    io_failed_.store(true, std::memory_order_relaxed);
    return false;
  }
  cache_->BeginUse(b);
  return true;
}

void TieredStore::FinishBlockPass(uint32_t b) const {
  if (b < csr_.NumBlocks()) {
    cache_->EndUse(b);
  }
}

void TieredStore::SetParked(uint32_t b, uint64_t walkers) const {
  if (b < csr_.NumBlocks()) {
    cache_->SetParked(b, walkers);
  }
}

void TieredStore::PrepareShard(int s) const {
  // Superstep adapter: map the shard's block before its (sequential) pass.
  // No pin — passes never overlap, and in-pass reads of other blocks go
  // through Resident()/pread, never a map.
  if (s >= 0 && static_cast<uint32_t>(s) < csr_.NumBlocks()) {
    std::string err;
    if (!cache_->Load(static_cast<uint32_t>(s), &err)) {
      io_failed_.store(true, std::memory_order_relaxed);
    }
  }
}

core::StoreMemoryStats TieredStore::MemoryStats() const {
  core::StoreMemoryStats stats = overlay_->MemoryStats();
  stats.graph_bytes += csr_.IndexBytes() + cache_->Stats().resident_bytes;
  return stats;
}

std::string TieredStore::CheckInvariants() const {
  std::string err = overlay_->CheckInvariants();
  if (!err.empty()) {
    return err;
  }
  if (io_failed_.load(std::memory_order_relaxed)) {
    return "tiered store: a CSR read or map failed during sampling/apply";
  }
  err = cache_->CheckAccounting();
  if (!err.empty()) {
    return err;
  }
  uint64_t live = 0;
  for (graph::VertexId v = 0; v < csr_.NumVertices(); ++v) {
    if (promoted_[v] == 0) {
      live += csr_.Degree(v);
    }
  }
  if (live != base_live_edges_) {
    return "tiered store: base live-edge accounting diverged from the "
           "promotion bitmap";
  }
  return "";
}

}  // namespace bingo::walk
