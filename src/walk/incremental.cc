#include "src/walk/incremental.h"

#include "src/core/bingo_store.h"

namespace bingo::walk {

// The corpus is a header template; keep the common BingoStore instantiation
// compiled once here.
template class IncrementalWalkCorpusT<core::BingoStore>;

}  // namespace bingo::walk
