#include "src/walk/incremental.h"

#include <algorithm>
#include <unordered_set>

namespace bingo::walk {

IncrementalWalkCorpus::IncrementalWalkCorpus(const core::BingoStore& store,
                                             Config config)
    : config_(config) {
  if (config_.num_walks == 0) {
    config_.num_walks = store.Graph().NumVertices();
  }
  walks_.resize(config_.num_walks);
  index_.resize(store.Graph().NumVertices());
}

void IncrementalWalkCorpus::ExtendWalk(const core::BingoStore& store,
                                       uint64_t walk_id,
                                       std::size_t from_position,
                                       util::Rng& rng) {
  std::vector<graph::VertexId>& walk = walks_[walk_id];
  walk.resize(from_position + 1);
  graph::VertexId cur = walk[from_position];
  while (walk.size() <= config_.walk_length) {
    const graph::VertexId next = store.SampleNeighbor(cur, rng);
    if (next == graph::kInvalidVertex) {
      break;
    }
    walk.push_back(next);
    cur = next;
  }
}

void IncrementalWalkCorpus::IndexWalkSuffix(uint64_t walk_id,
                                            std::size_t from_position) {
  const std::vector<graph::VertexId>& walk = walks_[walk_id];
  // Index each visited vertex once per walk (consecutive duplicates and
  // revisits add no information for the affected-walk query).
  for (std::size_t i = from_position; i < walk.size(); ++i) {
    auto& bucket = index_[walk[i]];
    if (bucket.empty() || bucket.back() != static_cast<uint32_t>(walk_id)) {
      bucket.push_back(static_cast<uint32_t>(walk_id));
      ++live_index_entries_;
    }
  }
}

void IncrementalWalkCorpus::RebuildIndex() {
  for (auto& bucket : index_) {
    bucket.clear();
  }
  live_index_entries_ = 0;
  stale_index_entries_ = 0;
  for (uint64_t w = 0; w < walks_.size(); ++w) {
    IndexWalkSuffix(w, 0);
  }
}

void IncrementalWalkCorpus::Generate(const core::BingoStore& store,
                                     util::ThreadPool* pool) {
  const graph::VertexId n = store.Graph().NumVertices();
  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      util::Rng rng = util::Rng::ForStream(config_.seed, w);
      walks_[w].clear();
      walks_[w].push_back(static_cast<graph::VertexId>(w % n));
      ExtendWalk(store, w, 0, rng);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, walks_.size(), run_range, 256);
  } else {
    run_range(0, walks_.size());
  }
  RebuildIndex();
}

IncrementalWalkCorpus::RepairStats IncrementalWalkCorpus::ApplyUpdates(
    core::BingoStore& store, const graph::UpdateList& updates,
    util::ThreadPool* pool) {
  RepairStats stats;
  stats.updates_applied = updates.size();
  ++repair_epoch_;

  // 1. Ingest the batch (O(K) per touched group, one rebuild per vertex).
  store.ApplyBatch(updates, pool);

  // 2. Updated source vertices = the distributions that changed.
  std::unordered_set<graph::VertexId> touched;
  touched.reserve(updates.size());
  for (const graph::Update& u : updates) {
    touched.insert(u.src);
  }

  // 3. Candidate walks from the index; dedup across touched vertices.
  std::unordered_set<uint32_t> candidates;
  for (const graph::VertexId v : touched) {
    if (v < index_.size()) {
      candidates.insert(index_[v].begin(), index_[v].end());
    }
  }
  stats.candidate_walks = candidates.size();

  // 4. Verify and repair: resample from the first visit of any touched
  //    vertex. Candidates whose recorded visit was repaired away are stale
  //    index hits and are skipped. Repairs run serially: the per-walk work
  //    is O(walk_length) with O(1) resampling, and the shared index
  //    bookkeeping would otherwise need locking.
  std::vector<uint32_t> to_repair(candidates.begin(), candidates.end());
  std::sort(to_repair.begin(), to_repair.end());  // deterministic order
  for (const uint32_t w : to_repair) {
    std::vector<graph::VertexId>& walk = walks_[w];
    std::size_t first = walk.size();
    for (std::size_t p = 0; p < walk.size(); ++p) {
      if (touched.count(walk[p])) {
        first = p;
        break;
      }
    }
    if (first == walk.size()) {
      continue;  // stale index entry
    }
    util::Rng rng = util::Rng::ForStream(config_.seed ^ (repair_epoch_ << 32), w);
    const std::size_t old_suffix = walk.size() - first;
    ExtendWalk(store, w, first, rng);
    stale_index_entries_ += old_suffix;
    ++stats.walks_repaired;
    stats.steps_resampled += walk.size() - first - 1;
    IndexWalkSuffix(w, first);
  }

  // 5. Compact the index once stale entries dominate.
  if (live_index_entries_ > 0 &&
      static_cast<double>(stale_index_entries_) >
          config_.index_rebuild_threshold *
              static_cast<double>(live_index_entries_)) {
    RebuildIndex();
    stats.index_rebuilt = true;
  }
  return stats;
}

uint64_t IncrementalWalkCorpus::TotalSteps() const {
  uint64_t steps = 0;
  for (const auto& walk : walks_) {
    steps += walk.empty() ? 0 : walk.size() - 1;
  }
  return steps;
}

std::string IncrementalWalkCorpus::CheckWalksValid(
    const core::BingoStore& store) const {
  for (uint64_t w = 0; w < walks_.size(); ++w) {
    const auto& walk = walks_[w];
    for (std::size_t i = 1; i < walk.size(); ++i) {
      if (!store.Graph().HasEdge(walk[i - 1], walk[i])) {
        return "walk " + std::to_string(w) + " transition " +
               std::to_string(walk[i - 1]) + "->" + std::to_string(walk[i]) +
               " is not a live edge";
      }
    }
  }
  return {};
}

std::size_t IncrementalWalkCorpus::MemoryBytes() const {
  std::size_t total = walks_.capacity() * sizeof(walks_[0]) +
                      index_.capacity() * sizeof(index_[0]);
  for (const auto& walk : walks_) {
    total += walk.capacity() * sizeof(graph::VertexId);
  }
  for (const auto& bucket : index_) {
    total += bucket.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace bingo::walk
