#include "src/walk/incremental.h"

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/bingo_store.h"
#include "src/util/checksum.h"
#include "src/util/fileio.h"
#include "src/util/serial.h"

namespace bingo::walk {

// The corpus is a header template; keep the common BingoStore instantiation
// compiled once here.
template class IncrementalWalkCorpusT<core::BingoStore>;

namespace {

// Corpus checkpoint format v1:
//   u64 magic | u32 version | WalkCorpusMeta fields | u64 total_vertices
//   | u32 header_crc | payload | u32 payload_crc
// payload = per walk: u32 len, then len * u32 vertex ids.
// Counts are validated against the file size before any allocation (the
// same untrusted-resize rule as graph/io v2).
constexpr uint64_t kCorpusMagic = 0x73656B6C57474E42ull;  // "BNGWlkes"
constexpr uint32_t kCorpusVersion = 1;

void SetError(std::string* error, const char* msg) {
  if (error != nullptr) {
    *error = msg;
  }
}

}  // namespace

bool SaveWalkCorpusFile(const std::string& path, const WalkCorpusMeta& meta,
                        const std::vector<std::vector<graph::VertexId>>& walks,
                        uint64_t* bytes_written, std::string* error) {
  uint64_t total_vertices = 0;
  for (const auto& walk : walks) {
    total_vertices += walk.size();
  }

  std::string header;
  util::AppendPod(header, kCorpusMagic);
  util::AppendPod(header, kCorpusVersion);
  util::AppendPod(header, meta.wal_seq);
  util::AppendPod(header, meta.repair_epoch);
  util::AppendPod(header, meta.seed);
  util::AppendPod(header, static_cast<uint64_t>(walks.size()));
  util::AppendPod(header, meta.walk_length);
  util::AppendPod(header, total_vertices);
  util::AppendPod(header, util::Crc32c(header.data(), header.size()));

  std::string payload;
  payload.reserve(walks.size() * sizeof(uint32_t) +
                  total_vertices * sizeof(graph::VertexId));
  for (const auto& walk : walks) {
    util::AppendPod(payload, static_cast<uint32_t>(walk.size()));
    for (const graph::VertexId v : walk) {
      util::AppendPod(payload, v);
    }
  }
  const uint32_t payload_crc = util::Crc32c(payload.data(), payload.size());

  util::AtomicFileWriter writer(path);
  if (!writer.ok() || !writer.Write(header.data(), header.size()) ||
      !writer.Write(payload.data(), payload.size()) ||
      !writer.Write(&payload_crc, sizeof(payload_crc)) || !writer.Commit()) {
    SetError(error, "corpus checkpoint write failed");
    return false;
  }
  if (bytes_written != nullptr) {
    *bytes_written = writer.bytes_written();
  }
  return true;
}

bool LoadWalkCorpusFile(const std::string& path, WalkCorpusMeta* meta,
                        std::vector<std::vector<graph::VertexId>>* walks,
                        std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "corpus checkpoint missing or unreadable");
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::size_t offset = 0;

  uint64_t magic = 0;
  uint32_t version = 0;
  WalkCorpusMeta parsed;
  uint64_t num_walks = 0;
  uint64_t total_vertices = 0;
  uint32_t header_crc = 0;
  if (!util::ReadPod(data, offset, magic) ||
      !util::ReadPod(data, offset, version) ||
      !util::ReadPod(data, offset, parsed.wal_seq) ||
      !util::ReadPod(data, offset, parsed.repair_epoch) ||
      !util::ReadPod(data, offset, parsed.seed) ||
      !util::ReadPod(data, offset, num_walks) ||
      !util::ReadPod(data, offset, parsed.walk_length) ||
      !util::ReadPod(data, offset, total_vertices)) {
    SetError(error, "corpus checkpoint truncated header");
    return false;
  }
  const std::size_t crc_covered = offset;
  if (!util::ReadPod(data, offset, header_crc)) {
    SetError(error, "corpus checkpoint truncated header");
    return false;
  }
  if (magic != kCorpusMagic || version != kCorpusVersion) {
    SetError(error, "corpus checkpoint bad magic/version");
    return false;
  }
  if (header_crc != util::Crc32c(data.data(), crc_covered)) {
    SetError(error, "corpus checkpoint header checksum mismatch");
    return false;
  }
  parsed.num_walks = num_walks;

  // Counts vs file size, before any resize. The per-item byte costs bound
  // the counts by the file size, which also keeps the product below.
  if (num_walks > data.size() / sizeof(uint32_t) ||
      total_vertices > data.size() / sizeof(graph::VertexId)) {
    SetError(error, "corpus checkpoint size mismatch");
    return false;
  }
  const uint64_t payload_bytes =
      num_walks * sizeof(uint32_t) + total_vertices * sizeof(graph::VertexId);
  if (data.size() - offset != payload_bytes + sizeof(uint32_t)) {
    SetError(error, "corpus checkpoint size mismatch");
    return false;
  }
  const uint32_t payload_crc_expected = util::Crc32c(
      data.data() + offset, static_cast<std::size_t>(payload_bytes));

  std::vector<std::vector<graph::VertexId>> parsed_walks;
  parsed_walks.resize(static_cast<std::size_t>(num_walks));
  uint64_t remaining = total_vertices;
  for (auto& walk : parsed_walks) {
    uint32_t len = 0;
    if (!util::ReadPod(data, offset, len) || len > remaining) {
      SetError(error, "corpus checkpoint corrupt walk length");
      return false;
    }
    remaining -= len;
    walk.resize(len);
    for (uint32_t i = 0; i < len; ++i) {
      if (!util::ReadPod(data, offset, walk[i])) {
        SetError(error, "corpus checkpoint truncated payload");
        return false;
      }
    }
  }
  if (remaining != 0) {
    SetError(error, "corpus checkpoint vertex count mismatch");
    return false;
  }
  uint32_t payload_crc = 0;
  if (!util::ReadPod(data, offset, payload_crc) ||
      payload_crc != payload_crc_expected) {
    SetError(error, "corpus checkpoint payload checksum mismatch");
    return false;
  }

  *meta = parsed;
  *walks = std::move(parsed_walks);
  return true;
}

}  // namespace bingo::walk
