// QueryBatcher: async coalescing front-end for walk queries.
//
// UpdateBatcher (walk/batcher.h) coalesces streaming updates into the
// store's batched-apply path; this is its serving-side twin. Callers hand
// the service one walk query at a time (Submit returns a future), and the
// batcher coalesces concurrent queries into size/time-bounded dispatch
// batches, each executed against ONE service snapshot as fused engine
// passes (walk/fused.h):
//
//   * Submit enqueues the query and returns immediately. A dispatch fires
//     when `max_batch_queries` are waiting or when the oldest query has
//     waited `max_delay_seconds` — the familiar throughput/latency knob.
//   * One dispatcher thread swaps the queue out, groups queries that share
//     an application + parameters (DeepWalk; PPR by stop probability;
//     node2vec by p,q), orders groups by the shard of their start vertex
//     (sharded services; keeps consecutive chunk tasks shard-local), and
//     runs each group as one fused pass — all of the group's walkers
//     advance together per step, with lane-batched SIMD draws and adjacency
//     prefetch where the store supports them.
//   * Every query in a dispatch batch observes the same snapshot epoch, so
//     a batch is a consistent point-in-time read — exactly what a single
//     Query() call sees, amortized over the batch.
//
// BIT-IDENTITY. The fused pass guarantees each query's WalkResult is
// bit-for-bit what the per-query service path (service.DeepWalk/Ppr/
// Node2vec with the same WalkConfig) returns against the same epoch —
// batching changes throughput and tail latency, never results.
//
// Ordering: queries are read-only, so cross-query order within a batch is
// immaterial; the epoch a query observes is the one current at dispatch
// (bounded by max_delay_seconds, same staleness bound UpdateBatcher gives
// writes).
//
// Walk execution scratch comes from the walk pool's MemoryPool lease
// machinery, so a warmed-up batcher performs no system allocations inside
// the fused passes; per-query result/promise plumbing is ordinary heap.

#ifndef BINGO_SRC_WALK_QUERY_BATCHER_H_
#define BINGO_SRC_WALK_QUERY_BATCHER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "src/graph/types.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/walk/fused.h"
#include "src/walk/service.h"
#include "src/walk/sharded_service.h"

namespace bingo::walk {

enum class WalkApp : uint8_t { kDeepWalk, kPpr, kNode2vec };

// One walk query as the batcher sees it: the application selector plus the
// engine config and per-application parameters.
struct WalkQuery {
  WalkApp app = WalkApp::kDeepWalk;
  WalkConfig cfg;
  double stop_probability = 1.0 / 80.0;  // PPR only
  Node2vecParams node2vec;               // node2vec only
};

struct QueryBatcherOptions {
  std::size_t max_batch_queries = 64;  // size trigger
  double max_delay_seconds = 0.0005;   // latency bound for a waiting query
};

struct QueryBatcherStats {
  uint64_t submitted = 0;         // queries accepted by Submit
  uint64_t completed = 0;         // futures fulfilled
  uint64_t dispatches = 0;        // dispatch batches executed
  uint64_t fused_groups = 0;      // fused passes run (groups across batches)
  uint64_t size_dispatches = 0;   // triggered by max_batch_queries
  uint64_t time_dispatches = 0;   // triggered by max_delay_seconds
  uint64_t drain_dispatches = 0;  // triggered by shutdown/flush drain
  uint64_t max_batch = 0;         // largest dispatch batch seen
  std::size_t queue_depth = 0;    // queries queued or dispatching right now

  // Mean queries per dispatch; >1 means coalescing is working.
  double CoalesceRatio() const {
    return dispatches > 0 ? static_cast<double>(completed) /
                                static_cast<double>(dispatches)
                          : 0.0;
  }
};

// `Service` is WalkServiceT<...> or ShardedWalkServiceT<...> — anything
// with Query(fn) handing fn a store-concept view.
template <typename Service>
class QueryBatcherT {
 public:
  // The batcher does not own `service`; it must outlive the batcher.
  // `walk_pool` parallelizes the fused passes (nullptr = serial walks); it
  // may be shared with query threads — dispatch never blocks on readers.
  explicit QueryBatcherT(Service& service, QueryBatcherOptions options = {},
                         util::ThreadPool* walk_pool = nullptr)
      : service_(service), options_(options), walk_pool_(walk_pool) {
    dispatcher_ = std::thread([this] { DispatcherLoop(); });
  }

  // Completes every pending query, then stops the dispatcher.
  ~QueryBatcherT() {
    {
      util::MutexLock lock(mutex_);
      stopping_ = true;
    }
    cv_.NotifyAll();
    dispatcher_.join();
  }

  QueryBatcherT(const QueryBatcherT&) = delete;
  QueryBatcherT& operator=(const QueryBatcherT&) = delete;

  // Queues one query; the future resolves with its WalkResult (bit-identical
  // to the per-query service path at the dispatch epoch). Thread-safe.
  std::future<WalkResult> Submit(WalkQuery query) {
    Pending pending;
    pending.query = std::move(query);
    pending.arrival = std::chrono::steady_clock::now();
    if constexpr (requires(const Service& s, graph::VertexId v) {
                    { s.ShardOf(v) };
                  }) {
      if (pending.query.cfg.start_vertex != graph::kInvalidVertex) {
        pending.shard = service_.ShardOf(pending.query.cfg.start_vertex);
      }
    }
    std::future<WalkResult> future = pending.promise.get_future();
    {
      util::MutexLock lock(mutex_);
      queue_.push_back(std::move(pending));
      submitted_ += 1;
    }
    cv_.NotifyAll();
    return future;
  }

  // Synchronous convenience: submit and wait.
  WalkResult Run(WalkQuery query) { return Submit(std::move(query)).get(); }

  // Returns once every query Submit()ed before this call has completed.
  void Flush() BINGO_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    while (!(queue_.empty() && in_flight_ == 0)) {
      idle_cv_.Wait(mutex_);
    }
  }

  QueryBatcherStats Stats() const BINGO_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    QueryBatcherStats stats = stats_;
    stats.submitted = submitted_;
    stats.queue_depth = queue_.size() + in_flight_;
    return stats;
  }

 private:
  struct Pending {
    WalkQuery query;
    std::promise<WalkResult> promise;
    std::chrono::steady_clock::time_point arrival;
    int shard = 0;
  };

  // Group identity: queries fuse when they run the same application with
  // the same per-application parameters (WalkConfig may differ freely).
  static bool SameGroup(const WalkQuery& a, const WalkQuery& b) {
    if (a.app != b.app) {
      return false;
    }
    switch (a.app) {
      case WalkApp::kDeepWalk:
        return true;
      case WalkApp::kPpr:
        return a.stop_probability == b.stop_probability;
      case WalkApp::kNode2vec:
        return a.node2vec.p == b.node2vec.p && a.node2vec.q == b.node2vec.q;
    }
    return false;
  }

  static bool OrderBefore(const Pending& a, const Pending& b) {
    if (a.query.app != b.query.app) {
      return a.query.app < b.query.app;
    }
    if (a.query.stop_probability != b.query.stop_probability) {
      return a.query.stop_probability < b.query.stop_probability;
    }
    if (a.query.node2vec.p != b.query.node2vec.p) {
      return a.query.node2vec.p < b.query.node2vec.p;
    }
    if (a.query.node2vec.q != b.query.node2vec.q) {
      return a.query.node2vec.q < b.query.node2vec.q;
    }
    return a.shard < b.shard;  // shard-local chunk order within a group
  }

  void DispatcherLoop() BINGO_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    while (true) {
      if (queue_.empty()) {
        if (stopping_) {
          break;
        }
        while (!stopping_ && queue_.empty()) {
          cv_.Wait(mutex_);
        }
        continue;
      }
      uint64_t QueryBatcherStats::*trigger = &QueryBatcherStats::drain_dispatches;
      if (!stopping_ && queue_.size() < options_.max_batch_queries) {
        const auto deadline =
            queue_.front().arrival +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options_.max_delay_seconds));
        // wait_until-with-predicate, unrolled so the predicate's guarded
        // reads stay inside this REQUIRES context (a lambda would not).
        bool sized;
        for (;;) {
          sized = stopping_ || queue_.size() >= options_.max_batch_queries;
          if (sized) {
            break;
          }
          if (cv_.WaitUntil(mutex_, deadline) == std::cv_status::timeout) {
            sized = stopping_ || queue_.size() >= options_.max_batch_queries;
            break;
          }
        }
        trigger = sized && !stopping_ ? &QueryBatcherStats::size_dispatches
                                      : &QueryBatcherStats::time_dispatches;
        if (stopping_) {
          trigger = &QueryBatcherStats::drain_dispatches;
        }
      } else if (!stopping_) {
        trigger = &QueryBatcherStats::size_dispatches;
      }
      std::vector<Pending> batch;
      batch.swap(queue_);
      in_flight_ = batch.size();
      stats_.dispatches += 1;
      stats_.*trigger += 1;
      stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
      lock.Unlock();
      const uint64_t groups = RunBatch(batch);
      lock.Lock();
      stats_.fused_groups += groups;
      stats_.completed += batch.size();
      in_flight_ = 0;
      idle_cv_.NotifyAll();
    }
    idle_cv_.NotifyAll();
  }

  // Executes one dispatch batch against a single snapshot; returns the
  // number of fused groups run.
  uint64_t RunBatch(std::vector<Pending>& batch) {
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Pending& a, const Pending& b) {
                       return OrderBefore(a, b);
                     });
    uint64_t groups = 0;
    service_.Query([&](const auto& view) {
      std::size_t a = 0;
      while (a < batch.size()) {
        std::size_t b = a + 1;
        while (b < batch.size() &&
               SameGroup(batch[a].query, batch[b].query)) {
          ++b;
        }
        RunGroup(view, std::span<Pending>(batch.data() + a, b - a));
        ++groups;
        a = b;
      }
      return 0;
    });
    return groups;
  }

  template <typename View>
  void RunGroup(const View& view, std::span<Pending> group) {
    std::vector<WalkConfig> cfgs;
    cfgs.reserve(group.size());
    for (const Pending& p : group) {
      cfgs.push_back(p.query.cfg);
    }
    std::vector<WalkResult> results(group.size());
    try {
      const WalkQuery& head = group.front().query;
      switch (head.app) {
        case WalkApp::kDeepWalk:
          RunDeepWalkFused(view, std::span<const WalkConfig>(cfgs),
                           std::span<WalkResult>(results), walk_pool_);
          break;
        case WalkApp::kPpr:
          RunPprFused(view, std::span<const WalkConfig>(cfgs),
                      std::span<WalkResult>(results), head.stop_probability,
                      walk_pool_);
          break;
        case WalkApp::kNode2vec:
          if constexpr (AdjacencyStore<View>) {
            RunNode2vecFused(view, std::span<const WalkConfig>(cfgs),
                             std::span<WalkResult>(results), head.node2vec,
                             walk_pool_);
          } else {
            throw std::logic_error(
                "node2vec queries need an adjacency-capable store");
          }
          break;
      }
    } catch (...) {
      for (Pending& p : group) {
        p.promise.set_exception(std::current_exception());
      }
      return;
    }
    for (std::size_t i = 0; i < group.size(); ++i) {
      group[i].promise.set_value(std::move(results[i]));
    }
  }

  Service& service_;
  const QueryBatcherOptions options_;
  util::ThreadPool* walk_pool_;

  mutable util::Mutex mutex_;
  util::CondVar cv_;       // wakes the dispatcher
  util::CondVar idle_cv_;  // wakes Flush waiters
  std::vector<Pending> queue_ BINGO_GUARDED_BY(mutex_);
  std::size_t in_flight_ BINGO_GUARDED_BY(mutex_) = 0;
  uint64_t submitted_ BINGO_GUARDED_BY(mutex_) = 0;
  QueryBatcherStats stats_ BINGO_GUARDED_BY(mutex_);
  bool stopping_ BINGO_GUARDED_BY(mutex_) = false;
  std::thread dispatcher_;
};

// The shipped instantiations are compiled once in query_batcher.cc.
extern template class QueryBatcherT<WalkService>;
extern template class QueryBatcherT<ShardedWalkService>;

using QueryBatcher = QueryBatcherT<WalkService>;
using ShardedQueryBatcher = QueryBatcherT<ShardedWalkService>;

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_QUERY_BATCHER_H_
