// Fused walk passes: many queries, one step-synchronous engine sweep.
//
// The per-query driver (walk/engine.h) advances one walker to completion
// before touching the next, so every step pays an isolated pointer chase
// into the sampler of a cold vertex. This driver executes a GROUP of walk
// queries as one pass: the union of all queries' walkers is chunked onto
// the executor, and within a chunk all walkers advance together step by
// step in structure-of-arrays form. That layout is what unlocks the PR's
// two serving optimizations:
//
//   * Batched draws — walkers of a chunk standing on the same vertex at the
//     same step resolve their next hop through the store's lane-batched
//     SampleNeighborBatch (SIMD alias/ITS/radix kernels,
//     src/sampling/batch_kernels.h) instead of d independent scalar draws.
//   * Software prefetch — while one vertex's group is being resolved, the
//     next group's sampler state and adjacency head are prefetched
//     (store.PrefetchVertex), hiding the chase behind real work.
//
// BIT-IDENTITY. Each walker of query q owns the RNG stream
// Rng::ForStream(cfg_q.seed, walker_id) and nothing else consumes from it.
// Every reordering this driver performs is across walkers; within a walker
// the variate order of the scalar engine (Next draws, then the Terminate
// draw, per step) is preserved exactly — the batched draw path is itself
// bit-identical per walker (see BatchSamplingStore). Hence every query's
// WalkResult is bit-for-bit what RunWalks(store, cfg_q, stepper, pool)
// returns, for any store, thread count, and SIMD level. Tests pin this
// (tests/query_batcher_test.cc).
//
// Steppers advertise `kFirstOrder` (walk/apps.h): only first-order steppers
// (DeepWalk, PPR) use the batched-draw path; second-order node2vec keeps
// scalar per-walker draws (its variate count depends on prev) but still
// gains the fused layout and prefetching.
//
// Scratch discipline matches the engine: every per-chunk buffer is a
// ScratchVector leasing from the executor's MemoryPool, so a warmed-up
// fused pass performs zero system allocations for chunk state.

#ifndef BINGO_SRC_WALK_FUSED_H_
#define BINGO_SRC_WALK_FUSED_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/types.h"
#include "src/util/rng.h"
#include "src/util/scratch.h"
#include "src/util/thread_pool.h"
#include "src/walk/apps.h"
#include "src/walk/engine.h"
#include "src/walk/store.h"

namespace bingo::walk {

namespace fused_internal {

// Satisfied only by steppers that declare themselves first-order (Next is
// exactly one SampleNeighbor draw, independent of prev).
template <typename Stepper>
concept FirstOrderTagged = requires { requires Stepper::kFirstOrder; };

template <typename Store, typename Stepper>
inline constexpr bool kBatchDraws =
    BatchSamplingStore<Store> && FirstOrderTagged<Stepper>;

// Same slot-merge layout as the engine's per-chunk output: walker-major
// contiguous paths plus per-walker lengths.
struct ChunkPaths {
  util::ScratchVector<graph::VertexId> paths;
  util::ScratchVector<uint64_t> lengths;
};

// Walkers standing alone on a vertex go through the scalar stepper; only
// runs at least this long pay the batch kernel's tile setup.
inline constexpr std::size_t kMinBatchRun = 4;
// Lookahead distance for the scalar prefetch path.
inline constexpr std::size_t kPrefetchAhead = 8;

// Stores may advertise their own break-even run length via a static
// kMinBatchRun member — the out-of-core tiered store fetches the edge run
// once per lane batch, so even a run of 2 amortizes (walk/ooc_store.h).
template <typename Store>
constexpr std::size_t MinBatchRunFor() {
  if constexpr (requires { Store::kMinBatchRun; }) {
    return Store::kMinBatchRun;
  } else {
    return kMinBatchRun;
  }
}

// Advances walkers [lo, hi) of one query to completion, step-synchronously.
template <typename Store, typename Stepper>
void RunFusedChunk(const Store& store, const Stepper& stepper,
                   const WalkConfig& cfg, graph::VertexId num_vertices,
                   uint64_t lo, uint64_t hi, util::MemoryPool* scratch,
                   std::atomic<uint64_t>& total_steps,
                   std::atomic<uint64_t>& finished_walkers,
                   std::span<std::atomic<uint32_t>> visit_acc,
                   ChunkPaths* out_paths) {
  const std::size_t n = static_cast<std::size_t>(hi - lo);
  const uint32_t walk_length = cfg.walk_length;
  // Walker-major SoA state. Paths land in a fixed-stride slab (row i =
  // walker lo + i) because walkers finish at different steps; the slab is
  // compacted into the engine's walker-major chunk layout at the end.
  const uint64_t stride = uint64_t{walk_length} + 1;
  util::ScratchVector<util::Rng> rngs(scratch);
  util::ScratchVector<graph::VertexId> curs(scratch);
  util::ScratchVector<graph::VertexId> prevs(scratch);
  util::ScratchVector<graph::VertexId> nexts(scratch);
  util::ScratchVector<uint32_t> alive(scratch);
  util::ScratchVector<uint8_t> took_step(scratch);
  util::ScratchVector<graph::VertexId> slab(scratch);
  util::ScratchVector<uint64_t> lens(scratch);
  util::ScratchVector<uint32_t> local_visits(scratch);
  util::ScratchVector<uint64_t> order(scratch);    // (cur << 32) | local id
  util::ScratchVector<util::Rng*> rng_ptrs(scratch);
  util::ScratchVector<graph::VertexId> batch_out(scratch);

  rngs.reserve(n);
  curs.reserve(n);
  prevs.assign(n, graph::kInvalidVertex);
  nexts.assign(n, graph::kInvalidVertex);
  alive.reserve(n);
  took_step.assign(n, 0);
  if (cfg.record_paths) {
    slab.assign(static_cast<std::size_t>(n * stride), 0);
    lens.assign(n, 0);
  }
  if (cfg.count_visits) {
    local_visits.assign(num_vertices, 0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    rngs.push_back(util::Rng::ForStream(cfg.seed, lo + i));
    const graph::VertexId start =
        cfg.start_vertex != graph::kInvalidVertex
            ? cfg.start_vertex
            : static_cast<graph::VertexId>((lo + i) % num_vertices);
    curs.push_back(start);
    alive.push_back(static_cast<uint32_t>(i));
    if (cfg.record_paths) {
      slab[static_cast<std::size_t>(i * stride)] = start;
      lens[i] = 1;
    }
    if (cfg.count_visits) {
      ++local_visits[start];
    }
  }

  uint64_t steps_local = 0;
  uint64_t finished_local = 0;
  std::size_t num_alive = n;
  for (uint32_t step = 0; step < walk_length && num_alive > 0; ++step) {
    // Phase 1: resolve every live walker's next vertex into nexts[]. Draw
    // order within each walker's own stream matches the scalar engine.
    if constexpr (kBatchDraws<Store, Stepper>) {
      order.clear();
      for (std::size_t j = 0; j < num_alive; ++j) {
        const uint32_t i = alive[j];
        order.push_back((uint64_t{curs[i]} << 32) | i);
      }
      // Group same-vertex walkers; keys are unique (low bits are walker
      // ids) so plain sort is deterministic.
      std::sort(order.begin(), order.end());
      if (num_alive > 1) {
        batch_out.reserve(num_alive);
      }
      std::size_t a = 0;
      while (a < num_alive) {
        const graph::VertexId v =
            static_cast<graph::VertexId>(order[a] >> 32);
        std::size_t b = a + 1;
        while (b < num_alive &&
               static_cast<graph::VertexId>(order[b] >> 32) == v) {
          ++b;
        }
        if (b < num_alive) {
          // Warm the next group's sampler + adjacency while this group
          // resolves.
          store.PrefetchVertex(static_cast<graph::VertexId>(order[b] >> 32));
        }
        const std::size_t run = b - a;
        if (run >= MinBatchRunFor<Store>()) {
          rng_ptrs.clear();
          for (std::size_t t = a; t < b; ++t) {
            rng_ptrs.push_back(&rngs[static_cast<uint32_t>(order[t])]);
          }
          store.SampleNeighborBatch(v, rng_ptrs.data(), run,
                                    batch_out.data());
          for (std::size_t t = 0; t < run; ++t) {
            nexts[static_cast<uint32_t>(order[a + t])] = batch_out[t];
          }
        } else {
          for (std::size_t t = a; t < b; ++t) {
            const uint32_t i = static_cast<uint32_t>(order[t]);
            nexts[i] = StepperNext(stepper, curs[i], prevs[i], step, rngs[i]);
          }
        }
        a = b;
      }
    } else {
      for (std::size_t j = 0; j < num_alive; ++j) {
        if constexpr (requires(graph::VertexId v) {
                        store.PrefetchVertex(v);
                      }) {
          if (j + kPrefetchAhead < num_alive) {
            store.PrefetchVertex(curs[alive[j + kPrefetchAhead]]);
          }
        }
        const uint32_t i = alive[j];
        nexts[i] = StepperNext(stepper, curs[i], prevs[i], step, rngs[i]);
      }
    }
    // Phase 2: apply the step. Dead ends drop out silently; survivors draw
    // their Terminate variate (after their Next draws — scalar order).
    std::size_t keep = 0;
    for (std::size_t j = 0; j < num_alive; ++j) {
      const uint32_t i = alive[j];
      const graph::VertexId next = nexts[i];
      if (next == graph::kInvalidVertex) {
        continue;
      }
      prevs[i] = curs[i];
      curs[i] = next;
      ++steps_local;
      if (!took_step[i]) {
        took_step[i] = 1;
        ++finished_local;
      }
      if (cfg.record_paths) {
        slab[static_cast<std::size_t>(i * stride + lens[i])] = next;
        ++lens[i];
      }
      if (cfg.count_visits) {
        ++local_visits[next];
      }
      if (stepper.Terminate(rngs[i])) {
        continue;
      }
      alive[keep++] = i;
    }
    num_alive = keep;
  }

  total_steps.fetch_add(steps_local, std::memory_order_relaxed);
  finished_walkers.fetch_add(finished_local, std::memory_order_relaxed);
  if (cfg.count_visits) {
    for (graph::VertexId v = 0; v < num_vertices; ++v) {
      if (local_visits[v] != 0) {
        visit_acc[v].fetch_add(local_visits[v], std::memory_order_relaxed);
      }
    }
  }
  if (cfg.record_paths && out_paths != nullptr) {
    ChunkPaths out{util::ScratchVector<graph::VertexId>(scratch),
                   util::ScratchVector<uint64_t>(scratch)};
    uint64_t total_len = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total_len += lens[i];
    }
    out.paths.reserve(static_cast<std::size_t>(total_len));
    out.lengths.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const graph::VertexId* row = slab.data() + i * stride;
      out.paths.append(row, row + lens[i]);
      out.lengths.push_back(lens[i]);
    }
    *out_paths = std::move(out);
  }
}

}  // namespace fused_internal

// Runs `cfgs.size()` queries that share one stepper as a single fused pass
// and writes results[q] — bit-identical to RunWalks(store, cfgs[q],
// stepper, pool) — for each. Queries may differ in every WalkConfig field.
template <typename Store, typename Stepper>
  requires SamplingStore<Store>
void RunFusedQueries(const Store& store, std::span<const WalkConfig> cfgs,
                     const Stepper& stepper, std::span<WalkResult> results,
                     util::ThreadPool* pool = nullptr) {
  assert(results.size() == cfgs.size());
  const graph::VertexId num_vertices =
      static_cast<graph::VertexId>(store.NumVertices());
  constexpr std::size_t kChunk = 256;
  // Path slabs are stride-allocated; beyond this length (PPR-capped
  // lengths, notably) the scalar engine records more compactly.
  constexpr uint32_t kMaxRecordedLength = 1024;

  struct QueryState {
    bool fused = false;
    uint64_t num_walkers = 0;
    std::size_t num_chunks = 0;
    std::atomic<uint64_t> steps{0};
    std::atomic<uint64_t> finished{0};
    std::vector<std::atomic<uint32_t>> visits;
    std::vector<fused_internal::ChunkPaths> chunks;
  };
  struct Task {
    uint32_t query;
    uint32_t chunk;
    uint64_t lo;
    uint64_t hi;
  };

  std::vector<QueryState> states(cfgs.size());
  std::vector<Task> tasks;
  for (std::size_t q = 0; q < cfgs.size(); ++q) {
    const WalkConfig& cfg = cfgs[q];
    WalkResult& result = results[q];
    result = WalkResult{};
    const uint64_t num_walkers =
        cfg.num_walkers == 0 ? num_vertices : cfg.num_walkers;
    if (cfg.record_paths) {
      result.path_offsets.assign(num_walkers + 1, 0);
    }
    if (num_vertices == 0 || num_walkers == 0 ||
        (cfg.start_vertex != graph::kInvalidVertex &&
         cfg.start_vertex >= num_vertices)) {
      continue;  // engine semantics: nowhere (valid) to start
    }
    if (cfg.record_paths && cfg.walk_length >= kMaxRecordedLength) {
      result = RunWalks(num_vertices, cfg, stepper, pool);
      continue;
    }
    QueryState& state = states[q];
    state.fused = true;
    state.num_walkers = num_walkers;
    state.num_chunks =
        static_cast<std::size_t>((num_walkers + kChunk - 1) / kChunk);
    if (cfg.count_visits) {
      state.visits = std::vector<std::atomic<uint32_t>>(num_vertices);
    }
    if (cfg.record_paths) {
      state.chunks.resize(state.num_chunks);
    }
    for (std::size_t c = 0; c < state.num_chunks; ++c) {
      tasks.push_back(Task{static_cast<uint32_t>(q),
                           static_cast<uint32_t>(c), c * kChunk,
                           std::min<uint64_t>(num_walkers, (c + 1) * kChunk)});
    }
  }
  if (tasks.empty()) {
    return;
  }

  util::MemoryPool* scratch =
      pool != nullptr ? &pool->ScratchMemory() : nullptr;
  const auto run_task = [&](std::size_t t) {
    const Task& task = tasks[t];
    QueryState& state = states[task.query];
    const WalkConfig& cfg = cfgs[task.query];
    fused_internal::RunFusedChunk(
        store, stepper, cfg, num_vertices, task.lo, task.hi, scratch,
        state.steps, state.finished,
        std::span<std::atomic<uint32_t>>(state.visits),
        cfg.record_paths ? &state.chunks[task.chunk] : nullptr);
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, tasks.size(), run_task);
  } else {
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      run_task(t);
    }
  }

  for (std::size_t q = 0; q < cfgs.size(); ++q) {
    QueryState& state = states[q];
    if (!state.fused) {
      continue;
    }
    const WalkConfig& cfg = cfgs[q];
    WalkResult& result = results[q];
    result.total_steps = state.steps.load(std::memory_order_relaxed);
    result.finished_walkers = state.finished.load(std::memory_order_relaxed);
    if (cfg.count_visits) {
      result.visit_counts.resize(num_vertices);
      for (graph::VertexId v = 0; v < num_vertices; ++v) {
        result.visit_counts[v] =
            state.visits[v].load(std::memory_order_relaxed);
      }
    }
    if (cfg.record_paths) {
      // Engine-identical stitch: chunk c covers walkers [c*kChunk, ...).
      for (std::size_t c = 0; c < state.chunks.size(); ++c) {
        const std::size_t begin = c * kChunk;
        for (std::size_t i = 0; i < state.chunks[c].lengths.size(); ++i) {
          result.path_offsets[begin + i + 1] = state.chunks[c].lengths[i];
        }
      }
      for (std::size_t i = 1; i < result.path_offsets.size(); ++i) {
        result.path_offsets[i] += result.path_offsets[i - 1];
      }
      result.paths.resize(result.path_offsets.back());
      for (std::size_t c = 0; c < state.chunks.size(); ++c) {
        uint64_t cursor = result.path_offsets[c * kChunk];
        for (graph::VertexId v : state.chunks[c].paths) {
          result.paths[cursor++] = v;
        }
      }
    }
  }
}

// Single-query convenience: one fused pass over one query.
template <typename Store, typename Stepper>
  requires SamplingStore<Store>
WalkResult RunFusedWalks(const Store& store, const WalkConfig& cfg,
                         const Stepper& stepper,
                         util::ThreadPool* pool = nullptr) {
  WalkResult result;
  RunFusedQueries(store, std::span<const WalkConfig>(&cfg, 1), stepper,
                  std::span<WalkResult>(&result, 1), pool);
  return result;
}

// --- fused application entry points ----------------------------------------
//
// Mirrors of RunDeepWalk / RunPpr / RunNode2vec (walk/apps.h) over a query
// group. Config normalization (PPR's visit counting and capped length) is
// identical to the per-query entry points so the two paths cannot drift.

template <SamplingStore Store>
void RunDeepWalkFused(const Store& store, std::span<const WalkConfig> cfgs,
                      std::span<WalkResult> results,
                      util::ThreadPool* pool = nullptr) {
  internal::FirstOrderStepper<Store> stepper{store};
  RunFusedQueries(store, cfgs, stepper, results, pool);
}

template <SamplingStore Store>
void RunPprFused(const Store& store, std::span<const WalkConfig> cfgs,
                 std::span<WalkResult> results,
                 double stop_probability = 1.0 / 80.0,
                 util::ThreadPool* pool = nullptr) {
  std::vector<WalkConfig> adjusted(cfgs.begin(), cfgs.end());
  for (WalkConfig& cfg : adjusted) {
    cfg.count_visits = true;
    cfg.walk_length = PprCappedWalkLength(cfg.walk_length);
  }
  internal::PprStepper<Store> stepper{store, stop_probability};
  RunFusedQueries(store, std::span<const WalkConfig>(adjusted), stepper,
                  results, pool);
}

template <AdjacencyStore Store>
void RunNode2vecFused(const Store& store, std::span<const WalkConfig> cfgs,
                      std::span<WalkResult> results,
                      const Node2vecParams& params = {},
                      util::ThreadPool* pool = nullptr) {
  internal::Node2vecStepper<Store> stepper{store, params,
                                           Node2vecFMax(params)};
  RunFusedQueries(store, cfgs, stepper, results, pool);
}

template <AdjacencyStore Store>
void RunMetapathFused(const Store& store, std::span<const WalkConfig> cfgs,
                      std::span<WalkResult> results,
                      const MetapathParams& params = {},
                      util::ThreadPool* pool = nullptr) {
  internal::MetapathStepper<Store> stepper{store, params};
  RunFusedQueries(store, cfgs, stepper, results, pool);
}

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_FUSED_H_
