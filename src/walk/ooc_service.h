// Out-of-core walk service: WalkServiceT over the tiered store, plus
// streamed recovery.
//
// The service machinery (left/right replicas, snapshot epochs, WAL
// journaling) is store-generic; this unit instantiates it for TieredStore
// and supplies the out-of-core recovery path. TieredStore is not
// CheckpointableStore — its base tier lives in the CSR file, not a
// DynamicGraph — so AttachWal/Checkpoint compile out; durability for an
// OOC service means: the CSR file + the WAL (adopted via AdoptWal, so
// post-recovery batches keep journaling and a later in-memory service can
// recover the combined state).
//
// Streamed recovery is the memory headline: BuildCsrFromSnapshot converts
// dir/base.snapshot into the on-disk CSR container record by record
// (core::StreamSnapshotEdges — O(1) resident, never a materialized edge
// list), then two TieredStores mount it with a block-cache budget. Peak
// recovery RSS is O(index + budget), not O(E) — bench/bench_ooc.cc
// measures the gap against full-snapshot materialization.

#ifndef BINGO_SRC_WALK_OOC_SERVICE_H_
#define BINGO_SRC_WALK_OOC_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/snapshot.h"
#include "src/graph/csr_mmap.h"
#include "src/util/thread_pool.h"
#include "src/walk/ooc_store.h"
#include "src/walk/service.h"

namespace bingo::walk {

// The TieredStore instantiation is compiled once in ooc_service.cc.
extern template class WalkServiceT<TieredStore>;

using OocWalkService = WalkServiceT<TieredStore>;

struct OocServiceOptions {
  TieredStoreOptions store;  // per-replica cache budget + CRC policy
  // Block size target when recovery builds the CSR container.
  uint64_t csr_block_bytes = graph::kDefaultCsrBlockBytes;
  WalPersistenceOptions wal;
};

// Streams `snapshot_path` (v2/v3: record by record, O(1) memory; legacy v1
// falls back to a materialized load) into a CSR container at `csr_path`,
// written atomically. `*info` (optional) receives the snapshot header.
bool BuildCsrFromSnapshot(const std::string& snapshot_path,
                          const std::string& csr_path, uint64_t block_bytes,
                          core::SnapshotInfo* info = nullptr,
                          std::string* error = nullptr);

// Builds an OOC service over an existing CSR container: both replicas are
// opened up front (so open failures surface here, not inside the service
// factory). Returns nullptr with `*error` set on failure.
std::unique_ptr<OocWalkService> MakeOocWalkService(
    const std::string& csr_path, core::BingoConfig config = {},
    TieredStoreOptions options = {}, util::ThreadPool* build_pool = nullptr,
    util::ThreadPool* update_pool = nullptr, std::string* error = nullptr);

// Rebuilds an OOC service from a durability directory written by an
// in-memory service's AttachWal/Checkpoint: streams dir/base.snapshot into
// dir/base.csr, mounts two tiered replicas under the configured budget,
// replays the longest valid prefix of dir/wal.log past the base's sequence
// number (promoting touched vertices exactly as live updates would), and
// adopts the WAL so journaling resumes. Walks on the recovered service are
// bit-identical to any other TieredStore walk of the same history. Returns
// nullptr when the base is missing/corrupt, the WAL header is corrupt, or
// `config` does not match the base's fingerprint.
std::unique_ptr<OocWalkService> RecoverOocWalkService(
    const std::string& dir, core::BingoConfig config = {},
    OocServiceOptions options = {}, util::ThreadPool* build_pool = nullptr,
    util::ThreadPool* update_pool = nullptr, RecoveryReport* report = nullptr,
    std::string* error = nullptr);

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_OOC_SERVICE_H_
