// UpdateBatcher: async coalescing front-end for the sharded service.
//
// Streaming producers hand the service one edge at a time, but the store's
// batched-update path amortizes one sampler rebuild per touched vertex per
// batch (§5.2) — applying single-edge updates individually forfeits that.
// The batcher sits in front of ShardedWalkService and coalesces Submit()ed
// updates into size/time-bounded per-shard batches:
//
//   * Submit routes the update to its shard's queue (ShardOf(src), the same
//     routing the service itself uses) under that shard's queue mutex.
//   * A shard whose queue reaches `max_batch_updates` gets a writer task
//     posted to the thread pool. One writer task is in flight per shard at
//     a time; it repeatedly swaps the queue out and applies it through
//     ApplyShardBatch until the queue is empty, so per-shard update order
//     is preserved and bursts coalesce into large batches automatically.
//   * A background flusher thread sweeps queues whose oldest update has
//     waited `max_delay_seconds`, bounding staleness under trickle load.
//   * Flush() drains everything synchronously: every update Submit()ed
//     before the call is applied when it returns.
//
// Durability: when the sharded service has a WAL attached (walk/service.h),
// every drained batch is journaled BEFORE it is applied — the journal
// happens inside the shard's ApplyBatch, so batched single-edge submits
// survive a crash exactly like direct batches. An update still sitting in a
// queue is NOT yet durable; Flush() (optionally with sync_wal_on_flush) is
// the commit point a producer can wait on.
//
// Ordering: per-shard FIFO (one drainer per shard). Updates to different
// shards may apply in any order — the same independence the sharded
// service itself exposes. Do not share the writer pool with threads that
// run walk queries while a flush is pending: writer tasks spin waiting for
// that shard's readers to drain, and on a fixed-size pool they can starve
// the walk chunks those readers are waiting on. By default the batcher
// owns a small private pool, which is always safe.

#ifndef BINGO_SRC_WALK_BATCHER_H_
#define BINGO_SRC_WALK_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/store_types.h"
#include "src/graph/types.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/walk/sharded_service.h"

namespace bingo::walk {

struct BatcherOptions {
  std::size_t max_batch_updates = 1024;  // size trigger, per shard
  double max_delay_seconds = 0.002;      // staleness bound under trickle load
  bool auto_flush = true;                // run the background flusher thread
  // fsync every shard WAL at the end of Flush(): with a WAL attached to the
  // service, a true Flush() return then means every update Submit()ed
  // before the call is applied AND durable. Without it (or with the
  // service's fsync_on_commit), durability follows the service's policy.
  bool sync_wal_on_flush = false;
  // Shape of the private writer pool when no pool is passed in:
  // num_threads == 0 keeps the default heuristic (min(shards, 4));
  // pinning/NUMA flags pass straight to the executor.
  util::PoolOptions writer_pool;
  // Invoked from the writer task after each batch is successfully applied,
  // with no batcher lock held (the shard queue may already be refilling).
  // Per-shard calls are ordered like the drains themselves; calls for
  // different shards race. Intended consumer: WalkIndexService::
  // NotifyApplied, which keeps the walk corpus' staleness accounting in
  // step with batched writes. The callback must not Submit() back into the
  // batcher or block on a live service Snapshot.
  std::function<void(int shard, const graph::UpdateList& batch)>
      on_batch_applied;
};

struct BatcherStats {
  uint64_t submitted = 0;        // updates accepted by Submit
  uint64_t flushed_updates = 0;  // updates applied to the service
  uint64_t batches = 0;          // ApplyShardBatch calls issued
  uint64_t size_flushes = 0;     // drains triggered by max_batch_updates
  uint64_t time_flushes = 0;     // drains triggered by max_delay_seconds
  uint64_t manual_flushes = 0;   // drains triggered by Flush()
  // Batches whose ApplyShardBatch threw. The writer task survives (the
  // drainer catches, retires cleanly, and later drains proceed), but the
  // failed batch's updates are DROPPED — a nonzero count means the service
  // and the submitted stream have diverged. dropped_updates totals them.
  uint64_t drain_errors = 0;
  uint64_t dropped_updates = 0;
  // Fire-and-forget tasks whose exceptions the writer pool's executor
  // swallowed (see ThreadPool::PostErrors). With an owned pool and the
  // drainer catch above, this stays 0 — it is the backstop's backstop.
  uint64_t pool_post_errors = 0;
  std::size_t queue_depth = 0;   // updates queued or draining right now
  double flush_seconds_total = 0.0;  // time inside ApplyShardBatch
  double flush_seconds_max = 0.0;    // slowest single batch
  core::BatchResult applied;         // accounting across all drained batches

  // Mean updates per applied batch; >1 means coalescing is working.
  double CoalesceRatio() const {
    return batches > 0
               ? static_cast<double>(flushed_updates) / static_cast<double>(batches)
               : 0.0;
  }
};

class UpdateBatcher {
 public:
  // The batcher does not own `service`; it must outlive the batcher. With
  // `pool == nullptr` the batcher owns a private writer pool (safe
  // default); a caller-provided pool must not be shared with walk-query
  // threads (see the header comment).
  explicit UpdateBatcher(ShardedWalkService& service, BatcherOptions options = {},
                         util::ThreadPool* pool = nullptr);

  // Drains everything still queued, then stops the writer machinery.
  ~UpdateBatcher();

  UpdateBatcher(const UpdateBatcher&) = delete;
  UpdateBatcher& operator=(const UpdateBatcher&) = delete;

  // Queues one update; returns immediately. Thread-safe.
  void Submit(const graph::Update& update);

  // Convenience: queue a whole list (each update routed independently).
  void SubmitAll(const graph::UpdateList& updates);

  // Applies every update Submit()ed before this call. Safe from any thread
  // that holds no live service Snapshot (drains wait for readers).
  void Flush();

  BatcherStats Stats() const;

 private:
  struct ShardQueue {
    util::Mutex mutex;
    graph::UpdateList pending BINGO_GUARDED_BY(mutex);
    // Age of the oldest pending update.
    util::Timer oldest BINGO_GUARDED_BY(mutex);
    // One writer task in flight per shard.
    bool drain_active BINGO_GUARDED_BY(mutex) = false;
  };

  // Posts a writer task for `shard` and charges the trigger to `reason`.
  // The caller must have set the shard's drain_active flag (it owns the
  // sole right to start this shard's drainer).
  void ScheduleDrain(int shard, uint64_t BatcherStats::*reason);

  // The writer task: drains shard `s` until its queue stays empty.
  void DrainLoop(int s);

  void FlusherLoop();

  ShardedWalkService& service_;
  const BatcherOptions options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_;  // owned_pool_.get() or caller's

  std::vector<std::unique_ptr<ShardQueue>> queues_;

  // Submit-side counters are lock-free so concurrent submitters to
  // disjoint shards never serialize on a global lock; the mutex guards
  // only the drain-side aggregates.
  std::atomic<uint64_t> submitted_{0};
  std::atomic<int64_t> queue_depth_{0};
  mutable util::Mutex stats_mutex_;
  BatcherStats stats_ BINGO_GUARDED_BY(stats_mutex_);

  // Signaled whenever a drainer retires; Flush waits on it. A writer task
  // holds one active_drainers_ ref from post to retire, so zero means no
  // batcher code is running or queued on the pool.
  util::Mutex idle_mutex_;
  util::CondVar idle_cv_;
  int active_drainers_ BINGO_GUARDED_BY(idle_mutex_) = 0;

  // Background flusher (time trigger).
  util::Mutex flusher_mutex_;
  util::CondVar flusher_cv_;
  bool stopping_ BINGO_GUARDED_BY(flusher_mutex_) = false;
  std::thread flusher_;
};

}  // namespace bingo::walk

#endif  // BINGO_SRC_WALK_BATCHER_H_
