#include "src/util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace bingo::util {

AtomicFileWriter::AtomicFileWriter(const std::string& path)
    : path_(path), tmp_path_(path + ".tmp") {
  // O_TRUNC: a temp left behind by a crashed writer is stale by definition.
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    Abort();
  }
}

void AtomicFileWriter::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(tmp_path_.c_str());
  }
}

bool AtomicFileWriter::Write(const void* data, std::size_t len) {
  if (fd_ < 0) {
    return false;
  }
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd_, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      Abort();
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
    bytes_ += static_cast<uint64_t>(n);
  }
  return true;
}

bool AtomicFileWriter::Commit() {
  if (fd_ < 0) {
    return false;
  }
  if (::fsync(fd_) != 0) {
    Abort();
    return false;
  }
  ::close(fd_);
  fd_ = -1;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp_path_.c_str());
    return false;
  }
  committed_ = true;
  // Make the rename durable. The parent is everything before the last '/'
  // ("." when the path has none).
  const std::size_t slash = path_.find_last_of('/');
  FsyncDirectory(slash == std::string::npos ? "." : path_.substr(0, slash + 1));
  return true;
}

bool FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace bingo::util
