// Deterministic pseudo-random number generation for samplers and walkers.
//
// Random walk engines draw billions of variates, so the generator must be
// cheap, splittable (every walker gets an independent stream), and fully
// deterministic under a fixed seed so that tests and benchmarks are
// reproducible. We use Xoshiro256++ seeded through SplitMix64, the
// combination recommended by the Xoshiro authors.

#ifndef BINGO_SRC_UTIL_RNG_H_
#define BINGO_SRC_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <limits>

namespace bingo::util {

// SplitMix64: used to expand a single 64-bit seed into generator state and to
// derive independent per-walker seeds. Passes BigCrush when used alone.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256++ 1.0. Fast general-purpose generator with 2^256-1 period.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  // Derives an independent stream for worker `stream_id` from `base_seed`.
  static Rng ForStream(uint64_t base_seed, uint64_t stream_id) {
    SplitMix64 sm(base_seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    return Rng(sm.Next());
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  uint64_t NextBounded(uint64_t bound) {
    if (bound <= 1) {
      return 0;
    }
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(Next()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  uint32_t NextU32() { return static_cast<uint32_t>(Next() >> 32); }

  // Uniform double in [0, 1) with 53 bits of entropy.
  double NextUnit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli(p) draw.
  bool NextBool(double p) { return NextUnit() < p; }

  // std::uniform_random_bit_generator interface so <random> distributions
  // can be layered on top when convenient (e.g. Gaussian bias generation).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return std::numeric_limits<uint64_t>::max(); }
  uint64_t operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_RNG_H_
