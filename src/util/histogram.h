// Fixed-capacity log-linear latency histogram (HDR-histogram layout).
//
// The open-loop serve benchmark records one latency sample per query; at
// thousands of QPS over minutes that is millions of samples, and the old
// store-every-sample accounting grew memory linearly with run length. This
// histogram stores a constant ~12 KiB regardless of sample count: values
// (nanoseconds) are bucketed into 32 linear sub-buckets per power-of-two
// octave, giving a guaranteed relative error under 1/32 (~3.2%) across the
// full range [0, ~2^49 ns ≈ 6.5 days]. Values below 32 ns are exact.
//
// Quantiles follow the rank convention of util::SampleQuantile (rank
// q*(count-1) over the sorted samples), returning the representative
// midpoint of the bucket holding that rank — so histogram p50/p99 agree
// with the sample-vector definition up to bucket resolution.
//
// Not thread-safe: each recording thread owns a histogram and the reporter
// Merge()s them (the same pattern as the engine's per-chunk accumulators).

#ifndef BINGO_SRC_UTIL_HISTOGRAM_H_
#define BINGO_SRC_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace bingo::util {

class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
  static constexpr int kOctaves = 44;  // highest distinguishable ~2^49 ns
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kSubBuckets) * (kOctaves + 1);

  void RecordNanos(uint64_t ns) {
    ++counts_[BucketIndex(ns)];
    ++count_;
    sum_ns_ += ns;
    if (ns < min_ns_) {
      min_ns_ = ns;
    }
    if (ns > max_ns_) {
      max_ns_ = ns;
    }
  }

  void RecordSeconds(double seconds) {
    if (std::isnan(seconds)) {
      return;  // NaN carries no rank information; dropping beats poisoning
    }
    if (seconds < 0.0) {
      seconds = 0.0;
    }
    // Saturate before the cast: double -> uint64_t is UB once the value
    // exceeds what uint64_t can hold (DBL_MAX seconds is ~1.8e317 ns).
    const double ns = seconds * 1e9;
    constexpr double kMaxRepresentable = 18446744073709549568.0;  // < 2^64
    RecordNanos(ns >= kMaxRepresentable
                    ? std::numeric_limits<uint64_t>::max()
                    : static_cast<uint64_t>(ns));
  }

  void Merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    if (other.min_ns_ < min_ns_) {
      min_ns_ = other.min_ns_;
    }
    if (other.max_ns_ > max_ns_) {
      max_ns_ = other.max_ns_;
    }
  }

  uint64_t Count() const { return count_; }
  double MinSeconds() const { return count_ == 0 ? 0.0 : 1e-9 * static_cast<double>(min_ns_); }
  double MaxSeconds() const { return count_ == 0 ? 0.0 : 1e-9 * static_cast<double>(max_ns_); }
  double MeanSeconds() const {
    return count_ == 0 ? 0.0
                       : 1e-9 * static_cast<double>(sum_ns_) /
                             static_cast<double>(count_);
  }

  // Value at rank q*(count-1), q in [0, 1]. 0 when empty.
  double QuantileSeconds(double q) const {
    if (count_ == 0) {
      return 0.0;
    }
    if (q < 0.0) {
      q = 0.0;
    }
    if (q > 1.0) {
      q = 1.0;
    }
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      cumulative += counts_[i];
      if (cumulative > rank) {
        // Clamp the representative midpoint into the observed range: the
        // extreme buckets hold min/max samples whose midpoint can lie
        // outside [min_ns_, max_ns_] (p99 must never exceed MaxSeconds).
        const uint64_t mid =
            std::clamp(BucketMidNanos(i), min_ns_, max_ns_);
        return 1e-9 * static_cast<double>(mid);
      }
    }
    return 1e-9 * static_cast<double>(max_ns_);
  }

  static constexpr std::size_t MemoryBytes() { return sizeof(LatencyHistogram); }

 private:
  static std::size_t BucketIndex(uint64_t ns) {
    if (ns < kSubBuckets) {
      return static_cast<std::size_t>(ns);
    }
    const int msb = 63 - std::countl_zero(ns);
    const int octave = msb - kSubBucketBits;  // >= 0
    const uint64_t sub = (ns >> octave) - kSubBuckets;  // in [0, kSubBuckets)
    const std::size_t idx =
        kSubBuckets + static_cast<std::size_t>(octave) * kSubBuckets +
        static_cast<std::size_t>(sub);
    return idx < kNumBuckets ? idx : kNumBuckets - 1;
  }

  // Midpoint of the bucket's value range (exact for the linear region).
  static uint64_t BucketMidNanos(std::size_t idx) {
    if (idx < kSubBuckets) {
      return idx;
    }
    const std::size_t octave = (idx - kSubBuckets) / kSubBuckets;
    const uint64_t sub = (idx - kSubBuckets) % kSubBuckets;
    const uint64_t lower = (kSubBuckets + sub) << octave;
    const uint64_t width = uint64_t{1} << octave;
    return lower + width / 2;
  }

  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ns_ = 0;
  uint64_t min_ns_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ns_ = 0;
};

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_HISTOGRAM_H_
