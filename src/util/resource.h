// Process resource introspection for the benchmark harnesses: peak RSS so
// memory-footprint wins land in the BENCH_*.json trajectory alongside
// throughput and recovery_ms.

#ifndef BINGO_SRC_UTIL_RESOURCE_H_
#define BINGO_SRC_UTIL_RESOURCE_H_

#include <sys/resource.h>

#include <cstdint>

namespace bingo::util {

// High-water resident set size of the calling process, in bytes (Linux
// reports ru_maxrss in KiB). Process-wide and monotone: to attribute a
// peak to one scenario, fork and read the child's rusage (bench_ooc does).
inline uint64_t PeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_RESOURCE_H_
