#include "src/util/memory_pool.h"

#include <algorithm>
#include <atomic>
#include <new>
#include <thread>

#include "src/util/bitops.h"
#include "src/util/thread_pool.h"

namespace bingo::util {

namespace {
// Stable per-thread stripe for OFF-pool threads, round-robin across thread
// creation order. Executor workers never reach this — their shard is their
// worker id, which is dense within a pool by construction.
int ThreadStripeIndex() {
  static std::atomic<int> next{0};
  thread_local int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}
}  // namespace

std::size_t MemoryPool::ClassSize(std::size_t bytes) {
  return CeilPow2(std::max(bytes, kMinClassBytes));
}

int MemoryPool::ClassIndex(std::size_t bytes) {
  const std::size_t cls = ClassSize(bytes);
  return HighestBit(cls) - HighestBit(kMinClassBytes);
}

int MemoryPool::CurrentShardIndex() {
  const int worker = ThreadPool::CurrentWorkerId();
  if (worker >= 0) {
    return worker % kNumShards;
  }
  return ThreadStripeIndex() % kNumShards;
}

MemoryPool::Shard& MemoryPool::LocalShard() {
  return shards_[CurrentShardIndex()];
}

void* MemoryPool::Allocate(std::size_t bytes) {
  if (bytes == 0) {
    return nullptr;
  }
  const std::size_t cls = ClassSize(bytes);
  const int self = CurrentShardIndex();
  Shard& shard = shards_[self];
  const int class_index = ClassIndex(bytes);
  {
    MutexLock lock(shard.mutex);
    ++shard.allocations;
    shard.live_bytes += static_cast<std::ptrdiff_t>(cls);
    if (cls > kMaxClassBytes) {
      shard.reserved_bytes += cls;
      ++shard.oversize;
      return ::operator new(cls);
    }
    auto& free_list = shard.free_lists[class_index];
    if (!free_list.empty()) {
      void* block = free_list.back();
      free_list.pop_back();
      ++shard.free_list_hits;
      return block;
    }
  }
  // Local miss: steal a recycled block of this class from a sibling shard
  // before carving fresh memory. Scratch buffers are leased on executor
  // workers but often freed by the blocking caller (a different shard) —
  // without the steal, blocks would pile up on the caller's shard while
  // every worker keeps carving, and the steady state would never become
  // allocation-free. Locks are taken one shard at a time (no ordering
  // hazard); the scan only runs on the miss path.
  for (int i = 1; i < kNumShards; ++i) {
    Shard& victim = shards_[(self + i) % kNumShards];
    void* block = nullptr;
    {
      MutexLock lock(victim.mutex);
      auto& free_list = victim.free_lists[class_index];
      if (!free_list.empty()) {
        block = free_list.back();
        free_list.pop_back();
      }
    }
    if (block != nullptr) {
      MutexLock lock(shard.mutex);
      ++shard.free_list_hits;
      return block;
    }
  }
  // Carve from the shard's newest arena; start a new arena if it won't fit.
  MutexLock lock(shard.mutex);
  const std::size_t arena_size = std::max(cls, kArenaBytes);
  if (shard.arenas.empty() || shard.arena_used + cls > kArenaBytes ||
      cls > kArenaBytes) {
    shard.arenas.push_back(std::make_unique<std::byte[]>(arena_size));
    shard.arena_used = 0;
    shard.reserved_bytes += arena_size;
  }
  void* block = shard.arenas.back().get() + shard.arena_used;
  shard.arena_used += cls;
  ++shard.carves;
  return block;
}

void MemoryPool::Deallocate(void* ptr, std::size_t bytes) {
  if (ptr == nullptr || bytes == 0) {
    return;
  }
  const std::size_t cls = ClassSize(bytes);
  Shard& shard = LocalShard();
  MutexLock lock(shard.mutex);
  shard.live_bytes -= static_cast<std::ptrdiff_t>(cls);
  if (cls > kMaxClassBytes) {
    shard.reserved_bytes -= static_cast<std::ptrdiff_t>(cls);
    ::operator delete(ptr);
    return;
  }
  shard.free_lists[ClassIndex(bytes)].push_back(ptr);
}

std::size_t MemoryPool::ReservedBytes() const {
  std::ptrdiff_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.reserved_bytes;
  }
  return static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, total));
}

std::size_t MemoryPool::LiveBytes() const {
  std::ptrdiff_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.live_bytes;
  }
  return static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, total));
}

MemoryPool::AllocStats MemoryPool::Stats() const {
  AllocStats stats;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    stats.allocations += shard.allocations;
    stats.free_list_hits += shard.free_list_hits;
    stats.carves += shard.carves;
    stats.oversize += shard.oversize;
  }
  return stats;
}

}  // namespace bingo::util
