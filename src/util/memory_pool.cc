#include "src/util/memory_pool.h"

#include <algorithm>
#include <atomic>
#include <new>
#include <thread>

#include "src/util/bitops.h"

namespace bingo::util {

namespace {
// Stable per-thread shard index, striped round-robin across threads.
int ThreadShardIndex() {
  static std::atomic<int> next{0};
  thread_local int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}
}  // namespace

std::size_t MemoryPool::ClassSize(std::size_t bytes) {
  return CeilPow2(std::max(bytes, kMinClassBytes));
}

int MemoryPool::ClassIndex(std::size_t bytes) {
  const std::size_t cls = ClassSize(bytes);
  return HighestBit(cls) - HighestBit(kMinClassBytes);
}

MemoryPool::Shard& MemoryPool::LocalShard() {
  return shards_[ThreadShardIndex() % kNumShards];
}

void* MemoryPool::Allocate(std::size_t bytes) {
  if (bytes == 0) {
    return nullptr;
  }
  const std::size_t cls = ClassSize(bytes);
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.live_bytes += static_cast<std::ptrdiff_t>(cls);
  if (cls > kMaxClassBytes) {
    shard.reserved_bytes += cls;
    return ::operator new(cls);
  }
  auto& free_list = shard.free_lists[ClassIndex(bytes)];
  if (!free_list.empty()) {
    void* block = free_list.back();
    free_list.pop_back();
    return block;
  }
  // Carve from the shard's newest arena; start a new arena if it won't fit.
  const std::size_t arena_size = std::max(cls, kArenaBytes);
  if (shard.arenas.empty() || shard.arena_used + cls > kArenaBytes ||
      cls > kArenaBytes) {
    shard.arenas.push_back(std::make_unique<std::byte[]>(arena_size));
    shard.arena_used = 0;
    shard.reserved_bytes += arena_size;
  }
  void* block = shard.arenas.back().get() + shard.arena_used;
  shard.arena_used += cls;
  return block;
}

void MemoryPool::Deallocate(void* ptr, std::size_t bytes) {
  if (ptr == nullptr || bytes == 0) {
    return;
  }
  const std::size_t cls = ClassSize(bytes);
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.live_bytes -= static_cast<std::ptrdiff_t>(cls);
  if (cls > kMaxClassBytes) {
    shard.reserved_bytes -= static_cast<std::ptrdiff_t>(cls);
    ::operator delete(ptr);
    return;
  }
  shard.free_lists[ClassIndex(bytes)].push_back(ptr);
}

std::size_t MemoryPool::ReservedBytes() const {
  std::ptrdiff_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.reserved_bytes;
  }
  return static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, total));
}

std::size_t MemoryPool::LiveBytes() const {
  std::ptrdiff_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.live_bytes;
  }
  return static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, total));
}

}  // namespace bingo::util
