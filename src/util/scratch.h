// Pooled scratch buffers for executor workers.
//
// The walk engine and the walker-transfer driver used to heap-allocate
// fresh chunk/queue buffers on every call and merge them under a lock. A
// ScratchVector instead leases its backing from a MemoryPool (normally the
// executor's ScratchMemory()): growth is a size-class free-list pop, and
// destruction parks the block back on the free list — after a warm-up pass
// the steady state performs ZERO system allocations for chunk buffers
// (pinned by MemoryPool::Stats in tests). The MemoryPool shards by executor
// worker id, so concurrent leases from different workers never contend and
// recycled blocks stay with the worker (and, when pinned, the NUMA node)
// that last touched them.
//
// Restricted to trivially copyable T on purpose: growth is a memcpy, no
// constructors run, and a buffer handed back to the pool needs no cleanup.
// With a null MemoryPool the vector falls back to operator new — callers on
// the poolless serial path keep working unchanged.

#ifndef BINGO_SRC_UTIL_SCRATCH_H_
#define BINGO_SRC_UTIL_SCRATCH_H_

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#include "src/util/memory_pool.h"

namespace bingo::util {

template <typename T>
class ScratchVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "scratch buffers relocate by memcpy");

 public:
  ScratchVector() = default;
  explicit ScratchVector(MemoryPool* backing) : backing_(backing) {}

  ScratchVector(ScratchVector&& other) noexcept
      : backing_(other.backing_),
        data_(other.data_),
        size_(other.size_),
        capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  ScratchVector& operator=(ScratchVector&& other) noexcept {
    if (this != &other) {
      Release();
      backing_ = other.backing_;
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }
  ScratchVector(const ScratchVector&) = delete;
  ScratchVector& operator=(const ScratchVector&) = delete;

  ~ScratchVector() { Release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }

  void clear() { size_ = 0; }  // keeps the leased capacity

  void reserve(std::size_t n) {
    if (n > capacity_) {
      Grow(n);
    }
  }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      // Copy before growing: Grow hands the old block back to the (shared)
      // pool, so a self-referencing argument (v.push_back(v[0])) would
      // otherwise read through freed memory a concurrent lease may reuse.
      const T copy = value;
      Grow(size_ + 1);
      data_[size_++] = copy;
      return;
    }
    data_[size_++] = value;
  }

  void append(const T* first, const T* last) {
    const std::size_t n = static_cast<std::size_t>(last - first);
    if (n == 0) {
      return;
    }
    if (size_ + n > capacity_) {
      Grow(size_ + n);
    }
    std::memcpy(data_ + size_, first, n * sizeof(T));
    size_ += n;
  }

  // Fills with `n` copies of `value` (the per-chunk visit accumulators).
  void assign(std::size_t n, const T& value) {
    clear();
    reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      data_[i] = value;
    }
    size_ = n;
  }

 private:
  void Grow(std::size_t needed) {
    // Doubling lands exactly on the pool's power-of-two size classes, so a
    // regrown buffer of a recycled size is a free-list pop.
    std::size_t new_capacity = capacity_ == 0 ? 16 : capacity_ * 2;
    while (new_capacity < needed) {
      new_capacity *= 2;
    }
    T* fresh = static_cast<T*>(Allocate(new_capacity * sizeof(T)));
    if (size_ > 0) {
      std::memcpy(fresh, data_, size_ * sizeof(T));
    }
    if (data_ != nullptr) {
      Deallocate(data_, capacity_ * sizeof(T));
    }
    data_ = fresh;
    capacity_ = new_capacity;
  }

  void Release() {
    if (data_ != nullptr) {
      Deallocate(data_, capacity_ * sizeof(T));
      data_ = nullptr;
    }
    size_ = 0;
    capacity_ = 0;
  }

  void* Allocate(std::size_t bytes) {
    return backing_ != nullptr ? backing_->Allocate(bytes)
                               : ::operator new(bytes);
  }
  void Deallocate(void* p, std::size_t bytes) {
    if (backing_ != nullptr) {
      backing_->Deallocate(p, bytes);
    } else {
      ::operator delete(p);
    }
  }

  MemoryPool* backing_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_SCRATCH_H_
