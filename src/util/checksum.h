// CRC-32C (Castagnoli) for on-disk integrity checks: snapshot sections and
// WAL record frames checksum their payloads so a torn write or bit rot is
// detected at load time instead of materializing as a corrupt store.

#ifndef BINGO_SRC_UTIL_CHECKSUM_H_
#define BINGO_SRC_UTIL_CHECKSUM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace bingo::util {

namespace detail {
inline constexpr std::array<uint32_t, 256> kCrc32cTable = [] {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}();
}  // namespace detail

// Standard reflected CRC-32C. Chunked use: pass the previous return value
// as `seed` (the default 0 starts a fresh checksum).
inline uint32_t Crc32c(const void* data, std::size_t len, uint32_t seed = 0) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = detail::kCrc32cTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_CHECKSUM_H_
