#include "src/util/numa.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <thread>

namespace bingo::util {

std::vector<int> ParseCpuList(const std::string& list) {
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto parse_int = [&](int& out) {
    if (i >= list.size() || !std::isdigit(static_cast<unsigned char>(list[i]))) {
      return false;
    }
    long value = 0;
    while (i < list.size() && std::isdigit(static_cast<unsigned char>(list[i]))) {
      value = value * 10 + (list[i] - '0');
      if (value > 1 << 20) {  // no machine has a million CPUs
        return false;
      }
      ++i;
    }
    out = static_cast<int>(value);
    return true;
  };
  while (i < list.size()) {
    int lo = 0;
    if (!parse_int(lo)) {
      break;
    }
    int hi = lo;
    if (i < list.size() && list[i] == '-') {
      ++i;
      if (!parse_int(hi) || hi < lo) {
        break;
      }
    }
    for (int cpu = lo; cpu <= hi; ++cpu) {
      cpus.push_back(cpu);
    }
    if (i < list.size() && list[i] == ',') {
      ++i;
    } else {
      break;  // end of list, or trailing junk (newline)
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

namespace {

CpuTopology SingleNodeFallback() {
  CpuTopology topology;
  const int n = std::max(1u, std::thread::hardware_concurrency());
  topology.cpus_of_node.emplace_back();
  for (int cpu = 0; cpu < n; ++cpu) {
    topology.cpus_of_node[0].push_back(cpu);
  }
  return topology;
}

}  // namespace

CpuTopology DetectCpuTopology() {
  CpuTopology topology;
  // Node ids need not be contiguous (offlined or unpopulated nodes leave
  // gaps), so probe the ids the kernel declares possible instead of
  // stopping at the first missing node%d directory. A missing/unreadable
  // `possible` file degrades to probing a dense prefix.
  std::vector<int> node_ids;
  bool ids_declared = false;
  {
    std::ifstream possible("/sys/devices/system/node/possible");
    std::string list;
    if (possible && std::getline(possible, list)) {
      node_ids = ParseCpuList(list);  // same "0-2,4" format as cpulists
      ids_declared = !node_ids.empty();
    }
  }
  if (!ids_declared) {
    for (int node = 0; node < 1024; ++node) {
      node_ids.push_back(node);
    }
  }
  for (const int node : node_ids) {
    std::ifstream in("/sys/devices/system/node/node" + std::to_string(node) +
                     "/cpulist");
    if (!in) {
      if (!ids_declared) {
        break;  // dense probe: first missing directory ends the id space
      }
      continue;  // declared id with no directory (offlined): keep going
    }
    std::string list;
    std::getline(in, list);
    auto cpus = ParseCpuList(list);
    if (!cpus.empty()) {  // memory-only nodes hold no CPUs; skip them
      topology.cpus_of_node.push_back(std::move(cpus));
    }
  }
  if (topology.cpus_of_node.empty() || topology.NumCpus() == 0) {
    return SingleNodeFallback();
  }
  return topology;
}

std::vector<int> PlanWorkerCpus(const CpuTopology& topology,
                                std::size_t num_workers, bool numa_interleave) {
  std::vector<int> plan;
  plan.reserve(num_workers);
  if (topology.NumCpus() == 0) {
    return plan;
  }
  if (!numa_interleave) {
    // Dense: concatenate node CPU lists and wrap.
    std::vector<int> flat;
    for (const auto& cpus : topology.cpus_of_node) {
      flat.insert(flat.end(), cpus.begin(), cpus.end());
    }
    for (std::size_t w = 0; w < num_workers; ++w) {
      plan.push_back(flat[w % flat.size()]);
    }
    return plan;
  }
  // Interleaved: rotate over nodes, taking each node's next unused CPU;
  // nodes that run out keep wrapping within themselves.
  std::vector<std::size_t> cursor(topology.cpus_of_node.size(), 0);
  std::size_t node = 0;
  for (std::size_t w = 0; w < num_workers; ++w) {
    const auto& cpus = topology.cpus_of_node[node];
    plan.push_back(cpus[cursor[node] % cpus.size()]);
    ++cursor[node];
    node = (node + 1) % topology.cpus_of_node.size();
  }
  return plan;
}

int NodeOfCpu(const CpuTopology& topology, int cpu) {
  for (std::size_t node = 0; node < topology.cpus_of_node.size(); ++node) {
    const auto& cpus = topology.cpus_of_node[node];
    if (std::binary_search(cpus.begin(), cpus.end(), cpu)) {
      return static_cast<int>(node);
    }
  }
  return 0;
}

}  // namespace bingo::util
