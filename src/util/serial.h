// Little-endian POD (de)serialization shared by the persistence formats
// (graph/io, core/snapshot, core/wal), so bounds handling lives in one
// place. All on-disk multi-byte fields go through these helpers.

#ifndef BINGO_SRC_UTIL_SERIAL_H_
#define BINGO_SRC_UTIL_SERIAL_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace bingo::util {

template <typename T>
inline void AppendPod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Reads a T at `offset`, advancing it. False (offset untouched) when fewer
// than sizeof(T) bytes remain.
template <typename T>
inline bool ReadPod(std::string_view data, std::size_t& offset, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (data.size() < offset || data.size() - offset < sizeof(T)) {
    return false;
  }
  std::memcpy(&value, data.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_SERIAL_H_
