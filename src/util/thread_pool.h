// Fixed-size thread pool with a blocking ParallelFor.
//
// The paper executes batched graph updates and walker advancement as CUDA
// kernels (one thread block per vertex / per walker). Substitution S1 in
// DESIGN.md maps that execution model onto a CPU pool: work items are
// vertices or walker chunks, scheduled round-robin with a grain size.

#ifndef BINGO_SRC_UTIL_THREAD_POOL_H_
#define BINGO_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bingo::util {

class ThreadPool {
 public:
  // `num_threads == 0` selects the hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t NumThreads() const { return workers_.size(); }

  // Runs fn(i) for every i in [begin, end), partitioned into contiguous
  // chunks of at least `grain` iterations. Blocks until all iterations are
  // done. The first exception thrown by any chunk is rethrown on the caller.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t grain = 1);

  // Runs fn(chunk_begin, chunk_end) over contiguous chunks; lower dispatch
  // overhead than per-index ParallelFor for tight loops.
  void ParallelForChunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 1);

  // Fire-and-forget task submission (the batcher's writer tasks). The caller
  // owns completion tracking; tasks still queued at destruction run before
  // the workers exit. A posted task must not block waiting for another
  // posted task to *start* — workers are a fixed set, and this pool does not
  // steal work while a task blocks.
  void Post(std::function<void()> task) { Enqueue(std::move(task)); }

  // Global pool shared by the library (walk engine, batched updates).
  static ThreadPool& Global();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_THREAD_POOL_H_
