// Work-stealing executor with a blocking ParallelFor.
//
// The paper executes batched graph updates and walker advancement as CUDA
// kernels (one thread block per vertex / per walker). Substitution S1 in
// DESIGN.md maps that execution model onto a CPU pool: work items are
// vertices or walker chunks, scheduled with a grain size.
//
// Execution model (this class is still named ThreadPool for source
// compatibility, but it is a work-stealing executor):
//
//   * Every worker owns a deque. Tasks submitted from a worker push onto
//     its own deque and are popped LIFO (the hot, cache-resident end);
//     idle workers steal FIFO from the cold end of a victim's deque, so a
//     stolen task is the oldest — and least cache-warm — one. External
//     submitters (non-pool threads) round-robin across worker deques.
//   * ParallelFor / ParallelForChunked / ParallelForChunks do not enqueue
//     one closure per chunk. They publish a claim context (an atomic chunk
//     cursor over a deterministic chunk plan) and enqueue up to NumThreads
//     runner tasks that loop claiming chunks; the CALLER runs the same
//     claim loop before blocking. Caller participation makes nested
//     parallelism safe: a ParallelFor issued from inside a pool task
//     drains its own chunks even when every worker is busy, so the
//     fixed-size pool can never deadlock on nesting.
//   * Chunk ids are a pure function of (range, grain, NumThreads) — see
//     ComputeChunkPlan — never of steal order, so callers may index
//     pre-sized result slots by chunk id and results stay bit-identical
//     for any interleaving at a fixed thread count; deterministic merges
//     (the walk engine's per-walker buffers) make them identical across
//     thread counts too.
//
// Placement (PoolOptions): `pin_threads` pins worker i to the CPU chosen by
// util::PlanWorkerCpus over the sysfs NUMA topology; `numa_interleave`
// spreads consecutive workers round-robin across NUMA nodes instead of
// packing node 0 first. On single-node machines (or when sysfs/affinity is
// unavailable) both degrade to a flat pool — detection never fails, pinning
// failure is recorded, not fatal. WorkerNumaNode exposes the plan.
//
// Scratch: the pool owns a MemoryPool (ScratchMemory) from which walk
// chunk buffers and walker-transfer queues lease their backing
// (util::ScratchVector). MemoryPool shards by CurrentWorkerId on pool
// threads, so leases are uncontended and recycled buffers stay on the
// worker — and, when pinned, on the NUMA node — that last touched them.

#ifndef BINGO_SRC_UTIL_THREAD_POOL_H_
#define BINGO_SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace bingo::util {

class MemoryPool;

struct PoolOptions {
  std::size_t num_threads = 0;   // 0 selects the hardware concurrency
  bool pin_threads = false;      // pin worker i to its planned CPU
  bool numa_interleave = false;  // spread workers round-robin across nodes
};

// Deterministic chunking shared by the ParallelFor family and by callers
// that pre-size per-chunk result slots: chunk c covers
// [begin + c * chunk_size, min(end, begin + (c+1) * chunk_size)).
struct ChunkPlan {
  std::size_t num_chunks = 0;
  std::size_t chunk_size = 0;
};

// Pure function of its arguments (notably NOT of load or steal order):
// at most num_threads * 4 chunks of at least `grain` iterations each.
ChunkPlan ComputeChunkPlan(std::size_t total, std::size_t grain,
                           std::size_t num_threads);

class ThreadPool {
 public:
  // `num_threads == 0` selects the hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0)
      : ThreadPool(PoolOptions{num_threads, false, false}) {}
  explicit ThreadPool(const PoolOptions& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t NumThreads() const { return workers_.size(); }
  const PoolOptions& Options() const { return options_; }

  // Runs fn(i) for every i in [begin, end), partitioned into contiguous
  // chunks of at least `grain` iterations. Blocks until all iterations are
  // done. The first exception thrown by any chunk is rethrown on the caller.
  // Safe to call from inside a pool task (the caller claims chunks itself).
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t grain = 1);

  // Runs fn(chunk_begin, chunk_end) over contiguous chunks; lower dispatch
  // overhead than per-index ParallelFor for tight loops.
  void ParallelForChunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 1);

  // Like ParallelForChunked but also hands fn the chunk id, which follows
  // ComputeChunkPlan(end - begin, grain, NumThreads()) exactly: callers may
  // write chunk results into a pre-sized slot array with no merge lock.
  void ParallelForChunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
      std::size_t grain = 1);

  // Fire-and-forget task submission (the batcher's writer tasks). The
  // caller owns completion tracking; tasks still queued at destruction run
  // before the workers exit (including tasks they post in turn). Unlike the
  // single-queue pool this executor steals, so a posted task that blocks
  // only stalls one worker — but a posted task still must not wait for
  // another posted task to *start*, since all workers may be blocked.
  //
  // Exception contract: a posted task that throws does NOT take down the
  // worker or the process. The exception is swallowed at the worker loop,
  // counted in PostErrors(), and the worker moves to the next task. Callers
  // that need the error (e.g. UpdateBatcher) must catch inside the task.
  void Post(std::function<void()> task);

  // Posted tasks whose uncaught exceptions were swallowed by a worker.
  uint64_t PostErrors() const {
    return post_errors_.load(std::memory_order_relaxed);
  }

  // Worker id of the calling thread in [0, NumThreads()) when it is a
  // worker of ANY live ThreadPool, -1 otherwise (external threads, and the
  // main thread). Ids are stable for a worker's lifetime; MemoryPool keys
  // its shard choice off this.
  static int CurrentWorkerId();
  // The pool the calling worker belongs to, or nullptr off-pool.
  static ThreadPool* CurrentPool();

  // NUMA node of `worker`'s planned CPU (0 on single-node machines or when
  // pinning is off — the plan still exists, it is just not enforced).
  int WorkerNumaNode(std::size_t worker) const;
  // True when pin_threads was requested and every worker pinned cleanly.
  // Valid as soon as the constructor returns: with pin_threads set, the
  // constructor waits until every worker has attempted its pin.
  bool AffinityApplied() const {
    return pin_failures_.load(std::memory_order_relaxed) == 0 &&
           options_.pin_threads;
  }

  // Pool-owned scratch backing store for per-worker walk buffers and
  // walker-transfer queues (see util/scratch.h). Thread-safe; sharded by
  // worker id on pool threads.
  MemoryPool& ScratchMemory() { return *scratch_; }

  // Global pool shared by the library (walk engine, batched updates).
  static ThreadPool& Global();

 private:
  // One deque per worker. The mutex is per-worker, so local pushes/pops and
  // steals only contend when a thief actually hits this worker. `size`
  // mirrors tasks.size() (updated under the mutex, read lock-free) so a
  // steal sweep can skip empty victims without touching their locks.
  struct WorkerQueue {
    Mutex mutex;
    std::deque<std::function<void()>> tasks BINGO_GUARDED_BY(mutex);
    std::atomic<std::size_t> size{0};
  };

  void Enqueue(std::function<void()> task);
  void WorkerLoop(std::size_t id);
  bool TryRunOneTask(std::size_t self);  // local pop, then steal sweep
  void NotifyOne();

  PoolOptions options_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::vector<int> cpu_plan_;        // worker -> planned CPU
  std::vector<int> node_plan_;       // worker -> NUMA node of that CPU

  std::atomic<uint64_t> pending_{0};  // tasks sitting in deques
  std::atomic<std::size_t> next_external_{0};  // round-robin for Post
  std::atomic<uint64_t> post_errors_{0};
  std::atomic<uint64_t> pin_failures_{0};
  std::atomic<std::size_t> workers_started_{0};  // pin attempts completed
  Mutex sleep_mutex_;
  CondVar sleep_cv_;
  std::atomic<int> sleepers_{0};  // workers inside sleep_cv_.Wait
  bool stop_ BINGO_GUARDED_BY(sleep_mutex_) = false;

  std::unique_ptr<MemoryPool> scratch_;
};

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_THREAD_POOL_H_
