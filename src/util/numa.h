// CPU / NUMA topology detection for the work-stealing executor.
//
// The paper's GPU habitat gets memory locality for free from per-block
// shared memory; on CPU the executor has to build it, and the first step is
// knowing where the cores live. This reads the Linux sysfs topology
// (/sys/devices/system/node/node*/cpulist) and degrades gracefully: on a
// machine without sysfs, without NUMA, or on a non-Linux kernel it reports
// one node holding every CPU, and the executor behaves exactly like a flat
// pool. No libnuma dependency — detection is a file parse, placement is
// plain pthread affinity.

#ifndef BINGO_SRC_UTIL_NUMA_H_
#define BINGO_SRC_UTIL_NUMA_H_

#include <cstddef>
#include <string>
#include <vector>

namespace bingo::util {

struct CpuTopology {
  // cpus_of_node[n] lists the online CPU ids of NUMA node n, ascending.
  // Always at least one node; the single-node fallback puts every CPU in
  // node 0.
  std::vector<std::vector<int>> cpus_of_node;

  int NumNodes() const { return static_cast<int>(cpus_of_node.size()); }
  int NumCpus() const {
    std::size_t total = 0;
    for (const auto& cpus : cpus_of_node) {
      total += cpus.size();
    }
    return static_cast<int>(total);
  }
};

// Parses a sysfs cpulist string ("0-3,8,10-11") into ascending CPU ids.
// Malformed input yields the longest valid prefix (sysfs is trusted but a
// parse must never throw).
std::vector<int> ParseCpuList(const std::string& list);

// Reads the sysfs node topology. Falls back to one node containing CPUs
// [0, hardware_concurrency) when sysfs is absent or unreadable.
CpuTopology DetectCpuTopology();

// Plans one CPU per worker from the topology. With `numa_interleave` the
// assignment round-robins across nodes (worker 0 -> node 0's first CPU,
// worker 1 -> node 1's first CPU, ...) so walkers and their scratch spread
// over every memory controller; otherwise workers fill node 0's CPUs first
// (dense packing keeps a small pool on one node's cache hierarchy). More
// workers than CPUs wrap around. The returned vector has one entry per
// worker: the CPU to pin to.
std::vector<int> PlanWorkerCpus(const CpuTopology& topology,
                                std::size_t num_workers, bool numa_interleave);

// Node owning `cpu` in `topology`, or 0 when unknown.
int NodeOfCpu(const CpuTopology& topology, int cpu);

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_NUMA_H_
