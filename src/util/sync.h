// Annotated synchronization primitives: the repo's ONLY sanctioned mutex
// layer (tools/lint/bingo_lint.py rejects raw std::mutex/std::shared_mutex
// anywhere else).
//
// The serving stack's locking protocol — dual-replica epochs, per-shard
// writer locks, drain threads, a shared-mutex-guarded walk corpus — used to
// live in comments and in whichever interleavings the TSan tests happened
// to execute. These wrappers carry Clang Thread Safety Analysis attributes
// ("C/C++ Thread Safety Analysis", Hutchins et al.; the abseil Mutex
// idiom), so the protocol is a compile-time contract: a Clang build with
// -Wthread-safety -Werror rejects any access to a BINGO_GUARDED_BY member
// without its lock and any call to a BINGO_REQUIRES method while unlocked.
// Under GCC (and any non-Clang compiler) every attribute compiles out and
// the wrappers are zero-cost forwarding shims over the std primitives.
//
// Usage rules the analysis enforces (see tests/static_analysis/):
//   * Annotate every member a mutex protects: `int x BINGO_GUARDED_BY(mu_);`
//   * Private *Locked() helpers declare their contract:
//     `void DrainLocked() BINGO_REQUIRES(mu_);`
//   * Scope locks with MutexLock / WriterLock / ReaderLock; for condition
//     waits, write explicit `while (!pred) cv_.Wait(mu_);` loops — a
//     predicate lambda would be analyzed as an unannotated function and
//     lose the capability context.
//   * Public entry points that take a lock internally may declare
//     BINGO_EXCLUDES(mu_) so re-entry from a callback deadlock is caught
//     at compile time.

#ifndef BINGO_SRC_UTIL_SYNC_H_
#define BINGO_SRC_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --------------------------------------------- thread-safety attributes --
// Clang-only; every other compiler sees empty macros. (GCC would accept
// unknown __attribute__ spellings with -Wattributes noise; gating on
// __clang__ keeps non-Clang builds warning-clean.)
#if defined(__clang__) && !defined(SWIG)
#define BINGO_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define BINGO_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

// A type that models a lockable resource.
#define BINGO_CAPABILITY(x) BINGO_THREAD_ANNOTATION__(capability(x))

// A RAII type whose lifetime holds a capability.
#define BINGO_SCOPED_CAPABILITY BINGO_THREAD_ANNOTATION__(scoped_lockable)

// Data members protected by a mutex (the pointee, for PT_).
#define BINGO_GUARDED_BY(x) BINGO_THREAD_ANNOTATION__(guarded_by(x))
#define BINGO_PT_GUARDED_BY(x) BINGO_THREAD_ANNOTATION__(pt_guarded_by(x))

// Lock-ordering declarations (checked under -Wthread-safety-beta).
#define BINGO_ACQUIRED_BEFORE(...) \
  BINGO_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define BINGO_ACQUIRED_AFTER(...) \
  BINGO_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

// Function contracts: must hold the capability on entry (and still on exit).
#define BINGO_REQUIRES(...) \
  BINGO_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define BINGO_REQUIRES_SHARED(...) \
  BINGO_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

// Function acquires/releases the capability.
#define BINGO_ACQUIRE(...) \
  BINGO_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define BINGO_ACQUIRE_SHARED(...) \
  BINGO_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define BINGO_RELEASE(...) \
  BINGO_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define BINGO_RELEASE_SHARED(...) \
  BINGO_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define BINGO_RELEASE_GENERIC(...) \
  BINGO_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

// Function attempts the acquisition; first argument is the success value.
#define BINGO_TRY_ACQUIRE(...) \
  BINGO_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define BINGO_TRY_ACQUIRE_SHARED(...) \
  BINGO_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

// Function must NOT hold the capability (deadlock-by-re-entry guard).
#define BINGO_EXCLUDES(...) \
  BINGO_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (teaches the analysis).
#define BINGO_ASSERT_CAPABILITY(x) \
  BINGO_THREAD_ANNOTATION__(assert_capability(x))
#define BINGO_ASSERT_SHARED_CAPABILITY(x) \
  BINGO_THREAD_ANNOTATION__(assert_shared_capability(x))

// Function returns a reference to the named capability.
#define BINGO_RETURN_CAPABILITY(x) \
  BINGO_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch: disables the analysis inside one function. Every use MUST
// carry a justification comment; bingo_lint's fixtures keep the discipline
// honest, and code review keeps the count near zero.
#define BINGO_NO_THREAD_SAFETY_ANALYSIS \
  BINGO_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace bingo::util {

class CondVar;

// Annotated exclusive mutex. Same cost and semantics as std::mutex; the
// annotations are the only addition.
class BINGO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BINGO_ACQUIRE() { mu_.lock(); }
  void Unlock() BINGO_RELEASE() { mu_.unlock(); }
  bool TryLock() BINGO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Tells the analysis (not the runtime) that the lock is held — for code
  // reached only from REQUIRES contexts the analysis cannot see through.
  void AssertHeld() const BINGO_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Annotated shared (reader/writer) mutex over std::shared_mutex.
class BINGO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() BINGO_ACQUIRE() { mu_.lock(); }
  void Unlock() BINGO_RELEASE() { mu_.unlock(); }
  bool TryLock() BINGO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() BINGO_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() BINGO_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() BINGO_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void AssertHeld() const BINGO_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const BINGO_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive lock on a Mutex. Relockable: Unlock()/Lock() let a
// long-running section (the query dispatcher) drop the lock around work
// that must not hold it, with the analysis tracking the state across the
// gap. Destruction releases iff currently held.
class BINGO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BINGO_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() BINGO_RELEASE() {
    if (held_) {
      mu_.Unlock();
    }
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() BINGO_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() BINGO_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

// Scoped exclusive lock on a SharedMutex (the writer side).
class BINGO_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) BINGO_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() BINGO_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped shared lock on a SharedMutex (the reader side).
class BINGO_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) BINGO_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() BINGO_RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to the annotated Mutex. No predicate overloads
// on purpose: a predicate lambda is analyzed as an unannotated function and
// would warn on every guarded read inside it — callers write the explicit
// `while (!pred) cv.Wait(mu);` loop, which the analysis checks end to end.
//
// Implementation detail: std::condition_variable needs a unique_lock, so
// each wait adopts the already-held std::mutex and releases the adoption
// before returning — no extra locking, identical wakeup semantics.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) BINGO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& rel_time)
      BINGO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, rel_time);
    lock.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      BINGO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_SYNC_H_
