// Wall-clock timing utilities used by the benchmark harness and the
// piecewise breakdown experiments (Fig 13, Fig 16).

#ifndef BINGO_SRC_UTIL_TIMER_H_
#define BINGO_SRC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace bingo::util {

// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across disjoint phases, e.g. Bingo's insert/delete vs
// rebuild vs sampling split in Fig 13.
class TimeAccumulator {
 public:
  void Add(double seconds) { total_ += seconds; }
  double Seconds() const { return total_; }
  void Reset() { total_ = 0.0; }

 private:
  double total_ = 0.0;
};

// RAII guard that adds its lifetime to a TimeAccumulator.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(TimeAccumulator& acc) : acc_(acc) {}
  ~ScopedAccumulator() { acc_.Add(timer_.Seconds()); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  TimeAccumulator& acc_;
  Timer timer_;
};

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_TIMER_H_
