// Bit-manipulation helpers shared by the radix decomposition (§4.1) and the
// size-class memory pool.

#ifndef BINGO_SRC_UTIL_BITOPS_H_
#define BINGO_SRC_UTIL_BITOPS_H_

#include <bit>
#include <cstdint>

namespace bingo::util {

// Number of set bits; the paper's t = popc(w_i), the number of groups an
// edge's bias contributes sub-biases to.
inline int Popcount(uint64_t x) { return std::popcount(x); }

// Index of the highest set bit; 2^HighestBit(w) is the most significant
// radix group of bias w. Undefined for x == 0 by contract.
inline int HighestBit(uint64_t x) { return 63 - std::countl_zero(x); }

// Index of the lowest set bit. Undefined for x == 0 by contract.
inline int LowestBit(uint64_t x) { return std::countr_zero(x); }

// Smallest power of two >= x (x >= 1).
inline uint64_t CeilPow2(uint64_t x) { return std::bit_ceil(x); }

// True if x is a power of two (x > 0).
inline bool IsPow2(uint64_t x) { return std::has_single_bit(x); }

// Visits the index of every set bit of `bits`, lowest first. This is the
// iteration primitive of Eq. (3): D(w) = {2^k | w & 2^k != 0}.
template <typename Fn>
inline void ForEachSetBit(uint64_t bits, Fn&& fn) {
  while (bits != 0) {
    const int k = std::countr_zero(bits);
    fn(k);
    bits &= bits - 1;
  }
}

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_BITOPS_H_
