#include "src/util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <utility>

#include "src/util/memory_pool.h"
#include "src/util/numa.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace bingo::util {

namespace {

// Worker identity of the calling thread. Set once at worker startup; -1 /
// nullptr everywhere else (external threads, the main thread).
thread_local int tls_worker_id = -1;
thread_local ThreadPool* tls_pool = nullptr;

bool EnvFlag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

}  // namespace

ChunkPlan ComputeChunkPlan(std::size_t total, std::size_t grain,
                           std::size_t num_threads) {
  ChunkPlan plan;
  if (total == 0) {
    return plan;
  }
  grain = std::max<std::size_t>(1, grain);
  num_threads = std::max<std::size_t>(1, num_threads);
  const std::size_t max_chunks = (total + grain - 1) / grain;
  plan.num_chunks = std::min(max_chunks, num_threads * 4);
  plan.chunk_size = (total + plan.num_chunks - 1) / plan.num_chunks;
  // Re-derive the count from the rounded-up size: ceil-div twice can
  // overshoot (e.g. 131073 items into 512 chunks of 257 puts chunk 511
  // past the end), and an empty trailing chunk would hand callers lo > hi.
  // After this every chunk is non-empty: (num_chunks-1)*chunk_size < total.
  plan.num_chunks = (total + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

int ThreadPool::CurrentWorkerId() { return tls_worker_id; }
ThreadPool* ThreadPool::CurrentPool() { return tls_pool; }

ThreadPool::ThreadPool(const PoolOptions& options)
    : options_(options), scratch_(std::make_unique<MemoryPool>()) {
  std::size_t num_threads = options_.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  options_.num_threads = num_threads;

  const CpuTopology topology = DetectCpuTopology();
  cpu_plan_ = PlanWorkerCpus(topology, num_threads, options_.numa_interleave);
  node_plan_.reserve(cpu_plan_.size());
  for (const int cpu : cpu_plan_) {
    node_plan_.push_back(NodeOfCpu(topology, cpu));
  }

  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  if (options_.pin_threads) {
    // Pinning happens on the worker threads; wait for every attempt so
    // AffinityApplied() is meaningful the moment construction returns.
    while (workers_started_.load(std::memory_order_acquire) < num_threads) {
      std::this_thread::yield();
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(sleep_mutex_);
    stop_ = true;
  }
  sleep_cv_.NotifyAll();
  for (auto& w : workers_) {
    w.join();
  }
}

int ThreadPool::WorkerNumaNode(std::size_t worker) const {
  return worker < node_plan_.size() ? node_plan_[worker] : 0;
}

void ThreadPool::NotifyOne() {
  // Busy-pool fast path: when no worker sleeps, skip the mutex entirely —
  // otherwise every enqueue of every concurrent caller serializes on one
  // lock, the disease the single-queue pool had. The seq_cst fence pairing
  // with the sleep path (pending_ fetch_add / sleepers_ fetch_add are both
  // seq_cst) guarantees a worker between its sleepers_ increment and its
  // predicate check observes our pending_ increment, so a zero read here
  // can never strand a task.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) {
    return;
  }
  // Empty critical section: a worker between its predicate check and its
  // wait holds sleep_mutex_, so taking it here orders this notify after
  // that worker is actually waiting (no lost wakeup).
  { MutexLock lock(sleep_mutex_); }
  sleep_cv_.NotifyOne();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  std::size_t target;
  if (tls_pool == this && tls_worker_id >= 0) {
    target = static_cast<std::size_t>(tls_worker_id);  // LIFO hot end
  } else {
    target = next_external_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  // pending_ rises before the task is visible so a concurrent pop can never
  // drive the counter below zero (seq_cst: see NotifyOne).
  pending_.fetch_add(1, std::memory_order_seq_cst);
  {
    WorkerQueue& q = *queues_[target];
    MutexLock lock(q.mutex);
    q.tasks.push_back(std::move(task));
    q.size.store(q.tasks.size(), std::memory_order_relaxed);
  }
  NotifyOne();
}

void ThreadPool::Post(std::function<void()> task) { Enqueue(std::move(task)); }

bool ThreadPool::TryRunOneTask(std::size_t self) {
  std::function<void()> task;
  {
    // Local LIFO pop: the most recently pushed task is the cache-warm one.
    WorkerQueue& q = *queues_[self];
    MutexLock lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      q.size.store(q.tasks.size(), std::memory_order_relaxed);
    }
  }
  if (!task) {
    // Steal sweep, FIFO from the victim's cold end. The lock-free size
    // probe skips empty victims (a stale nonzero just costs one lock; a
    // stale zero is caught by the pending_-gated sleep protocol).
    for (std::size_t i = 1; i < queues_.size() && !task; ++i) {
      WorkerQueue& q = *queues_[(self + i) % queues_.size()];
      if (q.size.load(std::memory_order_relaxed) == 0) {
        continue;
      }
      MutexLock lock(q.mutex);
      if (!q.tasks.empty()) {
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
        q.size.store(q.tasks.size(), std::memory_order_relaxed);
      }
    }
  }
  if (!task) {
    return false;
  }
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  try {
    task();
  } catch (...) {
    // Post contract: a throwing fire-and-forget task must not take down the
    // worker. ParallelFor chunks capture their own exceptions, so anything
    // reaching here came from Post.
    post_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void ThreadPool::WorkerLoop(std::size_t id) {
  tls_worker_id = static_cast<int>(id);
  tls_pool = this;
#if defined(__linux__)
  if (options_.pin_threads && id < cpu_plan_.size()) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu_plan_[id], &set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
      pin_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
#else
  if (options_.pin_threads) {
    pin_failures_.fetch_add(1, std::memory_order_relaxed);
  }
#endif
  workers_started_.fetch_add(1, std::memory_order_release);
  for (;;) {
    if (TryRunOneTask(id)) {
      continue;
    }
    MutexLock lock(sleep_mutex_);
    if (stop_ && pending_.load(std::memory_order_seq_cst) == 0) {
      return;  // drained: queued work (and work it posted) has run
    }
    // Declare the intent to sleep BEFORE the predicate's pending_ read
    // (both seq_cst): an enqueuer either sees sleepers_ > 0 and notifies,
    // or its pending_ increment is visible to our predicate — never
    // neither. That is what lets NotifyOne skip the mutex on busy pools.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    while (!(stop_ || pending_.load(std::memory_order_seq_cst) > 0)) {
      sleep_cv_.Wait(sleep_mutex_);
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stop_ && pending_.load(std::memory_order_seq_cst) == 0) {
      return;
    }
  }
}

namespace {

// Shared state of one ParallelForChunks call. Runner tasks hold it through
// a shared_ptr so a runner that wakes after the caller already returned
// (every chunk claimed by faster participants) still touches live memory;
// `fn` is only dereferenced while the caller is provably still blocked
// (a chunk remained unclaimed).
struct ChunkContext {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk_size = 0;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex error_mutex;
  std::exception_ptr first_error BINGO_GUARDED_BY(error_mutex);
  Mutex done_mutex;
  CondVar done_cv;
};

// The claim loop: every participant — enqueued runners AND the caller —
// races the atomic cursor over the deterministic chunk plan. Work-stealing
// at chunk granularity with no per-chunk queue traffic.
void RunClaimLoop(ChunkContext& ctx) {
  for (;;) {
    const std::size_t c = ctx.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= ctx.num_chunks) {
      return;
    }
    const std::size_t lo = ctx.begin + c * ctx.chunk_size;
    const std::size_t hi = std::min(ctx.end, lo + ctx.chunk_size);
    // lo < hi is ComputeChunkPlan's non-empty-chunk invariant; if it ever
    // broke, skip fn but still count the chunk done (a silent no-op beats
    // handing fn an inverted range or hanging the caller's done wait).
    if (lo < hi) {
      try {
        (*ctx.fn)(c, lo, hi);
      } catch (...) {
        MutexLock lock(ctx.error_mutex);
        if (!ctx.first_error) {
          ctx.first_error = std::current_exception();
        }
      }
    }
    if (ctx.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        ctx.num_chunks) {
      MutexLock lock(ctx.done_mutex);
      ctx.done_cv.NotifyAll();
    }
  }
}

}  // namespace

void ThreadPool::ParallelForChunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) {
    return;
  }
  const ChunkPlan plan = ComputeChunkPlan(end - begin, grain, NumThreads());
  if (plan.num_chunks <= 1) {
    fn(0, begin, end);
    return;
  }
  auto ctx = std::make_shared<ChunkContext>();
  ctx->fn = &fn;
  ctx->begin = begin;
  ctx->end = end;
  ctx->chunk_size = plan.chunk_size;
  ctx->num_chunks = plan.num_chunks;
  // The caller claims chunks too, so enqueue at most num_chunks - 1 helpers
  // (and never more than the worker count).
  const std::size_t runners = std::min(plan.num_chunks - 1, NumThreads());
  for (std::size_t r = 0; r < runners; ++r) {
    Enqueue([ctx] { RunClaimLoop(*ctx); });
  }
  RunClaimLoop(*ctx);
  {
    MutexLock lock(ctx->done_mutex);
    while (ctx->done.load(std::memory_order_acquire) != ctx->num_chunks) {
      ctx->done_cv.Wait(ctx->done_mutex);
    }
  }
  // Read the error under its mutex: the chunk that recorded it may have run
  // on a worker, and the done-counter handshake alone does not make the
  // unguarded read well-ordered for the analysis (or for TSan).
  std::exception_ptr first_error;
  {
    MutexLock lock(ctx->error_mutex);
    first_error = ctx->first_error;
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::ParallelForChunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  ParallelForChunks(
      begin, end,
      [&fn](std::size_t, std::size_t lo, std::size_t hi) { fn(lo, hi); },
      grain);
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t grain) {
  ParallelForChunks(
      begin, end,
      [&fn](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          fn(i);
        }
      },
      grain);
}

ThreadPool& ThreadPool::Global() {
  // Environment knobs so deployments can shape the library-wide pool
  // without code changes: BINGO_THREADS=N, BINGO_PIN=1, BINGO_NUMA=1.
  static ThreadPool pool(PoolOptions{
      static_cast<std::size_t>(std::max<long long>(
          0, std::getenv("BINGO_THREADS") != nullptr
                 ? std::atoll(std::getenv("BINGO_THREADS"))
                 : 0)),
      EnvFlag("BINGO_PIN"), EnvFlag("BINGO_NUMA")});
  return pool;
}

}  // namespace bingo::util
