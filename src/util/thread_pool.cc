#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace bingo::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelForChunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) {
    return;
  }
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;
  const std::size_t max_chunks = (total + grain - 1) / grain;
  const std::size_t num_chunks = std::min(max_chunks, NumThreads() * 4);
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk_size = (total + num_chunks - 1) / num_chunks;

  std::atomic<std::size_t> remaining{num_chunks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    Enqueue([&, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t grain) {
  ParallelForChunked(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          fn(i);
        }
      },
      grain);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bingo::util
