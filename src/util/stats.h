// Statistical helpers for validating samplers.
//
// Tests validate Bingo's transition probabilities in two ways:
//   1. Exactly, by reconstructing the implied distribution from the data
//     structure (no randomness involved); helpers here compare distributions.
//   2. Statistically, by drawing samples and running a chi-square
//     goodness-of-fit test against the expected distribution.

#ifndef BINGO_SRC_UTIL_STATS_H_
#define BINGO_SRC_UTIL_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace bingo::util {

// Pearson's chi-square statistic for observed counts vs expected
// probabilities. Cells with expected count below `min_expected` are pooled
// into their neighbor to keep the chi-square approximation valid.
double ChiSquareStatistic(std::span<const uint64_t> observed,
                          std::span<const double> expected_probs,
                          double min_expected = 5.0);

// Approximate upper critical value of the chi-square distribution with `df`
// degrees of freedom at the given right-tail probability, via the
// Wilson-Hilferty cube approximation (accurate to ~1% for df >= 3).
double ChiSquareCritical(int df, double alpha);

// Convenience: true if observed counts are consistent with expected_probs at
// significance `alpha` (i.e. the test does NOT reject).
bool ChiSquareTestPasses(std::span<const uint64_t> observed,
                         std::span<const double> expected_probs,
                         double alpha = 1e-3);

// Total variation distance between two probability vectors (0 = identical).
double TotalVariationDistance(std::span<const double> p, std::span<const double> q);

// Largest |p_i - q_i| / max(q_i, eps) over all cells.
double MaxRelativeError(std::span<const double> p, std::span<const double> q,
                        double eps = 1e-12);

// Normalizes nonnegative weights into a probability vector. Zero total
// yields an all-zero vector.
std::vector<double> Normalize(std::span<const double> weights);

// Linearly interpolated quantile (q in [0, 1]) of an unsorted sample, the
// shared latency-percentile definition of every stress/bench report (p50
// and p99 must mean the same thing across BENCH_*.json emitters). Empty
// samples yield 0.
double SampleQuantile(std::span<const double> samples, double q);

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_STATS_H_
