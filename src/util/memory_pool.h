// Size-class slab allocator for dynamic adjacency arrays (Hornet's design,
// substitution S5 in DESIGN.md).
//
// Hornet keeps per-vertex dynamic arrays in pooled blocks whose capacities
// are powers of two, so that growing a vertex's neighbor list is a
// free-list pop instead of a device allocation. The paper attributes
// Bingo's deletion-faster-than-insertion behaviour (§6.2) to exactly this:
// freed blocks go back to the free list and are recycled "offline", while
// insertion may have to grow into a fresh block immediately.
//
// The pool is sharded so parallel writers do not serialize on one lock. On
// an executor worker the shard is the WORKER ID modulo kNumShards — an
// exact round-robin, so the workers of one pool can never collide onto a
// single shard (the old thread-identity stripe could: identities are
// assigned per thread creation across the whole process, and unrelated
// short-lived threads burn stripe slots). Off-pool threads still use the
// process-wide stripe. Blocks may be freed into a different shard than they
// were carved from — blocks of one size class are interchangeable and
// arena memory is only released when the whole pool dies. A shard whose
// free list misses STEALS a recycled block from a sibling shard before
// carving fresh arena space (scratch buffers are leased on workers but
// freed by blocking callers; stealing is what makes the warm steady state
// allocation-free instead of leaking pooled blocks onto one shard).
//
// Blocks above `kMaxClassBytes` fall through to the system allocator.

#ifndef BINGO_SRC_UTIL_MEMORY_POOL_H_
#define BINGO_SRC_UTIL_MEMORY_POOL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/sync.h"

namespace bingo::util {

class MemoryPool {
 public:
  static constexpr std::size_t kMinClassBytes = 16;
  static constexpr std::size_t kMaxClassBytes = std::size_t{1} << 26;  // 64 MiB
  static constexpr std::size_t kArenaBytes = std::size_t{1} << 22;     // 4 MiB
  static constexpr int kNumShards = 8;

  MemoryPool() = default;
  ~MemoryPool() = default;

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  // Returns a block of at least `bytes` bytes (rounded up to its size
  // class). `bytes == 0` returns nullptr. Thread-safe.
  void* Allocate(std::size_t bytes);

  // Returns a block obtained from Allocate(bytes). The same `bytes` value
  // (pre-rounding) must be passed back. Thread-safe.
  void Deallocate(void* ptr, std::size_t bytes);

  // Capacity actually reserved for a request of `bytes` (its size class).
  static std::size_t ClassSize(std::size_t bytes);

  // Bytes held in arenas plus oversize allocations (i.e. what the pool has
  // taken from the system).
  std::size_t ReservedBytes() const;

  // Bytes currently handed out to callers (rounded to class sizes).
  std::size_t LiveBytes() const;

  // Allocation-path accounting, summed over shards. In a warm steady state
  // every Allocate is a free-list hit: tests pin "zero per-call buffer
  // allocations" by asserting `carves + oversize` stops growing.
  struct AllocStats {
    uint64_t allocations = 0;     // Allocate() calls served
    uint64_t free_list_hits = 0;  // served by recycling a freed block
    uint64_t carves = 0;          // served by carving (maybe new) arena space
    uint64_t oversize = 0;        // served by the system allocator
    // Allocations that the pool had to take fresh memory for.
    uint64_t FreshAllocations() const { return carves + oversize; }
  };
  AllocStats Stats() const;

  // Shard the calling thread would allocate from right now (worker id on an
  // executor thread, process-wide stripe otherwise). Exposed so tests can
  // assert the contention story: distinct workers => distinct shards.
  static int CurrentShardIndex();

 private:
  static constexpr int kNumClasses = 23;  // 16 B ... 64 MiB

  struct Shard {
    mutable Mutex mutex;
    std::vector<std::unique_ptr<std::byte[]>> arenas BINGO_GUARDED_BY(mutex);
    // Bytes used in the newest arena.
    std::size_t arena_used BINGO_GUARDED_BY(mutex) = 0;
    // Signed deltas: a block (or oversize allocation) may be freed via a
    // different shard than it was taken from; only the cross-shard sums are
    // meaningful, and those are always the true totals.
    std::ptrdiff_t reserved_bytes BINGO_GUARDED_BY(mutex) = 0;
    std::ptrdiff_t live_bytes BINGO_GUARDED_BY(mutex) = 0;
    uint64_t allocations BINGO_GUARDED_BY(mutex) = 0;
    uint64_t free_list_hits BINGO_GUARDED_BY(mutex) = 0;
    uint64_t carves BINGO_GUARDED_BY(mutex) = 0;
    uint64_t oversize BINGO_GUARDED_BY(mutex) = 0;
    std::vector<void*> free_lists[kNumClasses] BINGO_GUARDED_BY(mutex);
  };

  static int ClassIndex(std::size_t bytes);
  Shard& LocalShard();

  // live_bytes is tracked per shard as a signed delta (a block may be freed
  // into a different shard than it was taken from); the public LiveBytes()
  // sums the deltas, which is always the true total.
  std::array<Shard, kNumShards> shards_;
};

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_MEMORY_POOL_H_
