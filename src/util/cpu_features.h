// Runtime CPU feature detection for the SIMD sampling kernels.
//
// The batch kernels (src/sampling/batch_kernels.h) ship two bit-identical
// implementations per kernel: a portable scalar path and an AVX2 path built
// with per-function target attributes (the library itself is compiled for
// the baseline ISA, so the AVX2 code is only *executed* after runtime
// detection says the CPU has it). Dispatch resolves per call from
// ActiveSimdLevel(), which folds together:
//
//   1. hardware detection (cpuid, via __builtin_cpu_supports),
//   2. the BINGO_DISABLE_AVX2 environment variable (any value other than
//      "0"/"" forces the scalar path — CI runs the whole suite this way so
//      the portable path can never rot), and
//   3. a process-local test override (ScopedForceScalar) so a single test
//      binary can exercise both paths and assert they agree bit for bit.
//
// Because both paths are bit-identical by construction, dispatch is a pure
// performance decision: walk outputs never depend on the host CPU.

#ifndef BINGO_SRC_UTIL_CPU_FEATURES_H_
#define BINGO_SRC_UTIL_CPU_FEATURES_H_

namespace bingo::util {

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

const char* ToString(SimdLevel level);

// Raw hardware capability (cpuid), independent of overrides. Cached after
// the first call.
bool CpuSupportsAvx2();

// The level dispatch actually uses right now: hardware capability gated by
// BINGO_DISABLE_AVX2 (read once) and by any live ScopedForceScalar.
SimdLevel ActiveSimdLevel();

// RAII test hook: forces ActiveSimdLevel() to kScalar for its lifetime.
// Nestable; not thread-safe against concurrent construction (tests force
// from one thread).
class ScopedForceScalar {
 public:
  ScopedForceScalar();
  ~ScopedForceScalar();
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;
};

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_CPU_FEATURES_H_
