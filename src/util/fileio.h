// Crash-safe file primitives shared by the persistence layer (graph/io,
// core/snapshot, core/wal): atomic whole-file replacement and directory
// fsync, so a crash mid-save never destroys the previous good file.

#ifndef BINGO_SRC_UTIL_FILEIO_H_
#define BINGO_SRC_UTIL_FILEIO_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace bingo::util {

// Writes a file durably and atomically: bytes land in `<path>.tmp`, are
// fsync'd, and the temp is renamed over `path`; the parent directory is
// fsync'd afterwards so the rename itself survives a crash. Any failure —
// or destruction without Commit() — unlinks the temp and leaves an existing
// file at `path` untouched.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(const std::string& path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // False when the temp file could not be created (or a Write failed);
  // Commit() will refuse and the target is guaranteed untouched.
  bool ok() const { return fd_ >= 0; }

  bool Write(const void* data, std::size_t len);

  // fsync + close + rename over the target + fsync the parent directory.
  // After a true return the new contents are durable under the final name.
  bool Commit();

  uint64_t bytes_written() const { return bytes_; }

 private:
  void Abort();

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  bool committed_ = false;
  uint64_t bytes_ = 0;
};

// fsyncs directory `dir`, making completed renames/creates inside it
// durable. Returns false if the directory cannot be opened or synced.
bool FsyncDirectory(const std::string& dir);

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_FILEIO_H_
