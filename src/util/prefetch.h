// Software prefetch helpers for the fused walk hot path.
//
// The fused multi-query driver (src/walk/fused.h) knows, while sampling for
// walker i, which vertex walker i+D will sample from next — the classic
// setting for software prefetching: issue a non-blocking load of that
// vertex's sampler/adjacency metadata now so the line is resident when the
// walker reaches it. __builtin_prefetch compiles to PREFETCHT0 on x86 and
// PRFM on aarch64; on compilers without it this degrades to a no-op, which
// is always correct (prefetching is a pure hint, never semantics).

#ifndef BINGO_SRC_UTIL_PREFETCH_H_
#define BINGO_SRC_UTIL_PREFETCH_H_

#include <cstddef>

namespace bingo::util {

inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

// Prefetches the first cache lines of an array region (capped: streaming a
// long adjacency through the prefetcher would evict more than it warms).
inline void PrefetchReadRange(const void* addr, std::size_t bytes) {
  constexpr std::size_t kLine = 64;
  constexpr std::size_t kMaxLines = 4;
  const char* p = static_cast<const char*>(addr);
  const std::size_t lines = (bytes + kLine - 1) / kLine;
  for (std::size_t i = 0; i < (lines < kMaxLines ? lines : kMaxLines); ++i) {
    PrefetchRead(p + i * kLine);
  }
}

}  // namespace bingo::util

#endif  // BINGO_SRC_UTIL_PREFETCH_H_
