#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace bingo::util {

double ChiSquareStatistic(std::span<const uint64_t> observed,
                          std::span<const double> expected_probs,
                          double min_expected) {
  const uint64_t total =
      std::accumulate(observed.begin(), observed.end(), uint64_t{0});
  if (total == 0) {
    return 0.0;
  }
  // Pool small-expectation cells together so every contributing cell has an
  // expected count of at least `min_expected`.
  double stat = 0.0;
  double pooled_obs = 0.0;
  double pooled_exp = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probs[i] * static_cast<double>(total);
    pooled_obs += static_cast<double>(observed[i]);
    pooled_exp += expected;
    if (pooled_exp >= min_expected) {
      const double diff = pooled_obs - pooled_exp;
      stat += diff * diff / pooled_exp;
      pooled_obs = 0.0;
      pooled_exp = 0.0;
    }
  }
  if (pooled_exp > 0.0) {
    const double diff = pooled_obs - pooled_exp;
    stat += diff * diff / pooled_exp;
  }
  return stat;
}

double ChiSquareCritical(int df, double alpha) {
  if (df <= 0) {
    return 0.0;
  }
  // Wilson-Hilferty: X^2_{df,alpha} ~ df * (1 - 2/(9 df) + z * sqrt(2/(9 df)))^3.
  // Inverse-normal via Acklam-style rational approximation on the tail.
  const double p = 1.0 - alpha;
  // Beasley-Springer-Moro inverse normal approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double z;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    z = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    z = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double n = static_cast<double>(df);
  const double term = 1.0 - 2.0 / (9.0 * n) + z * std::sqrt(2.0 / (9.0 * n));
  return n * term * term * term;
}

bool ChiSquareTestPasses(std::span<const uint64_t> observed,
                         std::span<const double> expected_probs, double alpha) {
  // Degrees of freedom: cells with nonzero expectation, minus one. Pooling
  // in the statistic only reduces df, so this is conservative in the
  // direction of more-willing-to-reject; tests use loose alpha anyway.
  int cells = 0;
  for (double p : expected_probs) {
    if (p > 0.0) {
      ++cells;
    }
  }
  if (cells <= 1) {
    return true;
  }
  const double stat = ChiSquareStatistic(observed, expected_probs);
  return stat <= ChiSquareCritical(cells - 1, alpha);
}

double TotalVariationDistance(std::span<const double> p, std::span<const double> q) {
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    sum += std::abs(p[i] - q[i]);
  }
  return 0.5 * sum;
}

double MaxRelativeError(std::span<const double> p, std::span<const double> q,
                        double eps) {
  double worst = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    worst = std::max(worst, std::abs(p[i] - q[i]) / std::max(q[i], eps));
  }
  return worst;
}

std::vector<double> Normalize(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<double> out(weights.size(), 0.0);
  if (total <= 0.0) {
    return out;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out[i] = weights[i] / total;
  }
  return out;
}

double SampleQuantile(std::span<const double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace bingo::util
