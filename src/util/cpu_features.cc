#include "src/util/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bingo::util {

namespace {

// >0 while one or more ScopedForceScalar objects are alive.
std::atomic<int> force_scalar_depth{0};

bool DetectAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool Avx2DisabledByEnv() {
  const char* value = std::getenv("BINGO_DISABLE_AVX2");
  if (value == nullptr || value[0] == '\0') {
    return false;
  }
  return std::strcmp(value, "0") != 0;
}

}  // namespace

const char* ToString(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "scalar";
}

bool CpuSupportsAvx2() {
  static const bool supported = DetectAvx2();
  return supported;
}

SimdLevel ActiveSimdLevel() {
  // Hardware capability and the environment kill-switch are immutable for
  // the process lifetime; only the test override is dynamic.
  static const bool enabled = DetectAvx2() && !Avx2DisabledByEnv();
  if (!enabled || force_scalar_depth.load(std::memory_order_relaxed) > 0) {
    return SimdLevel::kScalar;
  }
  return SimdLevel::kAvx2;
}

ScopedForceScalar::ScopedForceScalar() {
  force_scalar_depth.fetch_add(1, std::memory_order_relaxed);
}

ScopedForceScalar::~ScopedForceScalar() {
  force_scalar_depth.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace bingo::util
